// Package token defines the lexical tokens of the P4-16 subset accepted by
// bf4's frontend, plus source positions used in diagnostics.
package token

import "fmt"

// Kind identifies a token class.
type Kind int

// Token kinds.
const (
	ILLEGAL Kind = iota
	EOF

	IDENT  // ipv4_lpm
	INT    // 10, 0xff, 8w255 (width-prefixed)
	STRING // "..." (annotations only)

	// Operators and punctuation.
	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACKET  // [
	RBRACKET  // ]
	LANGLE    // <
	RANGLE    // >
	COMMA     // ,
	SEMICOLON // ;
	COLON     // :
	DOT       // .
	ASSIGN    // =
	AT        // @
	QUESTION  // ?

	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %
	AMP     // &
	PIPE    // |
	CARET   // ^
	TILDE   // ~
	NOT     // !

	SHL // <<
	SHR // >>
	EQ  // ==
	NEQ // !=
	LEQ // <=
	GEQ // >=
	AND // &&
	OR  // ||

	PLUSPLUS // ++ (concatenation)

	// Keywords.
	KwAction
	KwActions
	KwApply
	KwBit
	KwBool
	KwConst
	KwControl
	KwDefault
	KwDefaultAction
	KwElse
	KwEntries
	KwEnum
	KwError
	KwExit
	KwFalse
	KwHeader
	KwIf
	KwIn
	KwInout
	KwKey
	KwOut
	KwPackage
	KwParser
	KwRegister
	KwReturn
	KwSize
	KwState
	KwStruct
	KwSwitch
	KwTable
	KwTransition
	KwTrue
	KwTypedef
	KwVarbit
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "IDENT", INT: "INT", STRING: "STRING",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACKET: "[",
	RBRACKET: "]", LANGLE: "<", RANGLE: ">", COMMA: ",", SEMICOLON: ";",
	COLON: ":", DOT: ".", ASSIGN: "=", AT: "@", QUESTION: "?", PLUS: "+",
	MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%", AMP: "&", PIPE: "|",
	CARET: "^", TILDE: "~", NOT: "!", SHL: "<<", SHR: ">>", EQ: "==",
	NEQ: "!=", LEQ: "<=", GEQ: ">=", AND: "&&", OR: "||", PLUSPLUS: "++",
	KwAction: "action", KwActions: "actions", KwApply: "apply", KwBit: "bit",
	KwBool: "bool", KwConst: "const", KwControl: "control",
	KwDefault: "default", KwDefaultAction: "default_action", KwElse: "else",
	KwEntries: "entries", KwEnum: "enum", KwError: "error", KwExit: "exit",
	KwFalse: "false", KwHeader: "header", KwIf: "if", KwIn: "in",
	KwInout: "inout", KwKey: "key", KwOut: "out", KwPackage: "package",
	KwParser: "parser", KwRegister: "register", KwReturn: "return",
	KwSize: "size", KwState: "state", KwStruct: "struct", KwSwitch: "switch",
	KwTable: "table", KwTransition: "transition", KwTrue: "true",
	KwTypedef: "typedef", KwVarbit: "varbit",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to kinds.
var Keywords = map[string]Kind{
	"action": KwAction, "actions": KwActions, "apply": KwApply,
	"bit": KwBit, "bool": KwBool, "const": KwConst, "control": KwControl,
	"default": KwDefault, "default_action": KwDefaultAction, "else": KwElse,
	"entries": KwEntries, "enum": KwEnum, "error": KwError, "exit": KwExit,
	"false": KwFalse, "header": KwHeader, "if": KwIf, "in": KwIn,
	"inout": KwInout, "key": KwKey, "out": KwOut, "package": KwPackage,
	"parser": KwParser, "register": KwRegister, "return": KwReturn,
	"size": KwSize, "state": KwState, "struct": KwStruct,
	"switch": KwSwitch, "table": KwTable, "transition": KwTransition,
	"true": KwTrue, "typedef": KwTypedef, "varbit": KwVarbit,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position is set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a lexeme with its kind and position. For INT tokens, Lit holds
// the raw spelling (including any width prefix such as "8w255").
type Token struct {
	Kind Kind
	Lit  string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, STRING:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}
