package lexer

import (
	"testing"

	"bf4/internal/p4/token"
)

func kinds(src string) []token.Kind {
	var out []token.Kind
	for _, t := range New(src).All() {
		out = append(out, t.Kind)
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	got := kinds("table nat { key = { x: exact; } }")
	want := []token.Kind{
		token.KwTable, token.IDENT, token.LBRACE, token.KwKey, token.ASSIGN,
		token.LBRACE, token.IDENT, token.COLON, token.IDENT, token.SEMICOLON,
		token.RBRACE, token.RBRACE, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	got := kinds("== != <= >= << >> && || ++ = < > & | ! ~ ^")
	want := []token.Kind{
		token.EQ, token.NEQ, token.LEQ, token.GEQ, token.SHL, token.SHR,
		token.AND, token.OR, token.PLUSPLUS, token.ASSIGN, token.LANGLE,
		token.RANGLE, token.AMP, token.PIPE, token.NOT, token.TILDE,
		token.CARET, token.EOF,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct{ src, lit string }{
		{"42", "42"},
		{"0xFF", "0xFF"},
		{"0b1010", "0b1010"},
		{"8w255", "8w255"},
		{"9w0x1FF", "9w0x1FF"},
		{"1w0b1", "1w0b1"},
		{"4s7", "4s7"},
		{"32w0xdead_beef", "32w0xdead_beef"},
	}
	for _, c := range cases {
		toks := New(c.src).All()
		if toks[0].Kind != token.INT || toks[0].Lit != c.lit {
			t.Errorf("%q: got %v", c.src, toks[0])
		}
		if toks[1].Kind != token.EOF {
			t.Errorf("%q: trailing token %v", c.src, toks[1])
		}
	}
}

func TestCommentsAndPreprocessor(t *testing.T) {
	src := `
#include <core.p4>
// line comment
/* block
   comment */
header h { bit<8> x; }
`
	got := kinds(src)
	want := []token.Kind{
		token.KwHeader, token.IDENT, token.LBRACE, token.KwBit, token.LANGLE,
		token.INT, token.RANGLE, token.IDENT, token.SEMICOLON, token.RBRACE,
		token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestPositions(t *testing.T) {
	toks := New("a\n  b").All()
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestUnterminatedComment(t *testing.T) {
	l := New("/* never closed")
	l.All()
	if len(l.Errors()) == 0 {
		t.Fatal("expected error for unterminated comment")
	}
}

func TestIllegalChar(t *testing.T) {
	l := New("$")
	toks := l.All()
	if toks[0].Kind != token.ILLEGAL {
		t.Fatalf("got %v, want ILLEGAL", toks[0])
	}
	if len(l.Errors()) == 0 {
		t.Fatal("expected lexical error")
	}
}

func TestKeywordsVsIdents(t *testing.T) {
	toks := New("tables applying if0 if").All()
	want := []token.Kind{token.IDENT, token.IDENT, token.IDENT, token.KwIf, token.EOF}
	for i := range want {
		if toks[i].Kind != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, toks[i], want[i])
		}
	}
}
