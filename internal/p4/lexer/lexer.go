// Package lexer tokenizes P4-16 source for bf4's frontend. It handles
// line and block comments, width-prefixed integer literals (8w255,
// 0x0800, 1w0b1), preprocessor-style lines (#include — skipped, the
// corpus is self-contained), and @annotations (lexed as AT + tokens).
package lexer

import (
	"fmt"

	"bf4/internal/p4/token"
)

// Lexer scans a P4 source buffer into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int

	errs []error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...interface{}) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	ch := l.src[l.off]
	l.off++
	if ch == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return ch
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isDigit(ch byte) bool { return ch >= '0' && ch <= '9' }
func isHexDigit(ch byte) bool {
	return isDigit(ch) || (ch >= 'a' && ch <= 'f') || (ch >= 'A' && ch <= 'F')
}
func isLetter(ch byte) bool {
	return ch == '_' || (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		ch := l.peek()
		switch {
		case ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n':
			l.advance()
		case ch == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case ch == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		case ch == '#':
			// Preprocessor line (e.g. #include <core.p4>): skip to EOL.
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// Next returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	ch := l.advance()
	switch {
	case isLetter(ch):
		return l.identOrKeyword(pos, ch)
	case isDigit(ch):
		return l.number(pos, ch)
	}
	mk := func(k token.Kind) token.Token { return token.Token{Kind: k, Pos: pos} }
	switch ch {
	case '(':
		return mk(token.LPAREN)
	case ')':
		return mk(token.RPAREN)
	case '{':
		return mk(token.LBRACE)
	case '}':
		return mk(token.RBRACE)
	case '[':
		return mk(token.LBRACKET)
	case ']':
		return mk(token.RBRACKET)
	case ',':
		return mk(token.COMMA)
	case ';':
		return mk(token.SEMICOLON)
	case ':':
		return mk(token.COLON)
	case '.':
		return mk(token.DOT)
	case '@':
		return mk(token.AT)
	case '?':
		return mk(token.QUESTION)
	case '~':
		return mk(token.TILDE)
	case '^':
		return mk(token.CARET)
	case '%':
		return mk(token.PERCENT)
	case '/':
		return mk(token.SLASH)
	case '*':
		return mk(token.STAR)
	case '+':
		if l.peek() == '+' {
			l.advance()
			return mk(token.PLUSPLUS)
		}
		return mk(token.PLUS)
	case '-':
		return mk(token.MINUS)
	case '=':
		if l.peek() == '=' {
			l.advance()
			return mk(token.EQ)
		}
		return mk(token.ASSIGN)
	case '!':
		if l.peek() == '=' {
			l.advance()
			return mk(token.NEQ)
		}
		return mk(token.NOT)
	case '<':
		switch l.peek() {
		case '<':
			l.advance()
			return mk(token.SHL)
		case '=':
			l.advance()
			return mk(token.LEQ)
		}
		return mk(token.LANGLE)
	case '>':
		switch l.peek() {
		case '>':
			l.advance()
			return mk(token.SHR)
		case '=':
			l.advance()
			return mk(token.GEQ)
		}
		return mk(token.RANGLE)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return mk(token.AND)
		}
		return mk(token.AMP)
	case '|':
		if l.peek() == '|' {
			l.advance()
			return mk(token.OR)
		}
		return mk(token.PIPE)
	case '"':
		start := l.off
		for l.off < len(l.src) && l.peek() != '"' {
			l.advance()
		}
		lit := l.src[start:l.off]
		if l.off < len(l.src) {
			l.advance()
		} else {
			l.errorf(pos, "unterminated string")
		}
		return token.Token{Kind: token.STRING, Lit: lit, Pos: pos}
	}
	l.errorf(pos, "unexpected character %q", ch)
	return token.Token{Kind: token.ILLEGAL, Lit: string(ch), Pos: pos}
}

func (l *Lexer) identOrKeyword(pos token.Pos, first byte) token.Token {
	start := l.off - 1
	for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
		l.advance()
	}
	lit := l.src[start:l.off]
	if k, ok := token.Keywords[lit]; ok {
		return token.Token{Kind: k, Lit: lit, Pos: pos}
	}
	return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}
}

// number scans integer literals: 42, 0xff, 0b101, and width-prefixed
// forms such as 8w255, 9w0x1ff, 1w0b1, 4s7 (signed widths are accepted and
// treated as unsigned by the subset).
func (l *Lexer) number(pos token.Pos, first byte) token.Token {
	start := l.off - 1
	consumeDigits := func(hex bool) {
		for l.off < len(l.src) {
			ch := l.peek()
			if ch == '_' || isDigit(ch) || (hex && isHexDigit(ch)) {
				l.advance()
				continue
			}
			break
		}
	}
	scanMagnitude := func() {
		if l.peek() == 'x' || l.peek() == 'X' {
			l.advance()
			consumeDigits(true)
			return
		}
		if l.peek() == 'b' || l.peek() == 'B' {
			l.advance()
			consumeDigits(false)
			return
		}
		consumeDigits(false)
	}
	if first == '0' && (l.peek() == 'x' || l.peek() == 'X' || l.peek() == 'b' || l.peek() == 'B') {
		scanMagnitude()
	} else {
		consumeDigits(false)
		// Width prefix? e.g. 8w..., 8s...
		if l.peek() == 'w' || l.peek() == 's' {
			l.advance()
			if l.off < len(l.src) && (isDigit(l.peek()) || l.peek() == '0') {
				first2 := l.advance()
				if first2 == '0' && (l.peek() == 'x' || l.peek() == 'X' || l.peek() == 'b' || l.peek() == 'B') {
					scanMagnitude()
				} else {
					consumeDigits(false)
				}
			} else {
				l.errorf(pos, "width prefix without magnitude")
			}
		}
	}
	return token.Token{Kind: token.INT, Lit: l.src[start:l.off], Pos: pos}
}

// All scans the entire input, returning every token including the final
// EOF. Mostly a testing convenience.
func (l *Lexer) All() []token.Token {
	var out []token.Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out
		}
	}
}
