package parser

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanicsOnRandomInput: arbitrary byte soup must produce
// errors, never panics.
func TestParserNeverPanicsOnRandomInput(t *testing.T) {
	prop := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", data, r)
				ok = false
			}
		}()
		Parse(string(data))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParserNeverPanicsOnMutatedSource: random mutations of a valid
// program (deletions, swaps, truncations) must not panic either — this
// exercises deep error-recovery paths plain noise never reaches.
func TestParserNeverPanicsOnMutatedSource(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	base := miniNAT
	for iter := 0; iter < 400; iter++ {
		b := []byte(base)
		switch iter % 4 {
		case 0: // truncate
			if len(b) > 1 {
				b = b[:rng.Intn(len(b))]
			}
		case 1: // delete a span
			if len(b) > 20 {
				i := rng.Intn(len(b) - 10)
				j := i + rng.Intn(10)
				b = append(b[:i], b[j:]...)
			}
		case 2: // random byte flips
			for k := 0; k < 5; k++ {
				b[rng.Intn(len(b))] = byte(rng.Intn(128))
			}
		case 3: // duplicate a span
			i := rng.Intn(len(b) / 2)
			j := i + rng.Intn(len(b)/2)
			b = append(b[:j], append([]byte(string(b[i:j])), b[j:]...)...)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("iter %d: panic: %v\ninput:\n%s", iter, r, b)
				}
			}()
			Parse(string(b))
		}()
	}
}

// TestDeepNestingBounded: pathological nesting must not blow the stack.
func TestDeepNestingBounded(t *testing.T) {
	depth := 2000
	expr := strings.Repeat("(", depth) + "x" + strings.Repeat(")", depth)
	func() {
		defer func() { recover() }()
		ParseExpr(expr)
	}()
	// Deeply nested blocks in a control.
	body := strings.Repeat("if (x == 8w0) { ", 500) + "y = 8w1;" + strings.Repeat(" }", 500)
	src := "control c(inout bit<8> x, inout bit<8> y) { apply { " + body + " } }"
	func() {
		defer func() { recover() }()
		Parse(src)
	}()
}
