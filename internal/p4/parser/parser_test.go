package parser

import (
	"strings"
	"testing"

	"bf4/internal/p4/ast"
)

// miniNAT is a condensed version of the paper's running example
// (Figure 1) and doubles as the canonical parse test.
const miniNAT = `
#include <core.p4>
#include <v1model.p4>

typedef bit<32> ip4Addr_t;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<8>  ttl;
    ip4Addr_t srcAddr;
    ip4Addr_t dstAddr;
}

struct meta_t {
    bit<1>  do_forward;
    bit<32> ipv4_sa;
    bit<32> nhop_ipv4;
}

struct metadata {
    meta_t meta;
}

struct headers {
    ethernet_t ethernet;
    ipv4_t     ipv4;
}

parser MyParser(packet_in packet, out headers hdr, inout metadata meta,
                inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        packet.extract(hdr.ipv4);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t standard_metadata) {
    action drop_() {
        mark_to_drop(standard_metadata);
    }
    action nat_hit_int_to_ext(bit<32> a, bit<9> p) {
        meta.meta.do_forward = 1w1;
        meta.meta.ipv4_sa = a;
        standard_metadata.egress_spec = p;
    }
    table nat {
        key = {
            hdr.ipv4.isValid(): exact;
            hdr.ipv4.srcAddr: ternary;
        }
        actions = {
            drop_;
            nat_hit_int_to_ext;
        }
        default_action = drop_();
        size = 128;
    }
    action set_nhop(bit<32> nhop_ipv4, bit<9> port) {
        meta.meta.nhop_ipv4 = nhop_ipv4;
        standard_metadata.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table ipv4_lpm {
        key = { meta.meta.nhop_ipv4: lpm; }
        actions = { set_nhop; drop_; }
    }
    apply {
        nat.apply();
        if (meta.meta.do_forward == 1w1) {
            ipv4_lpm.apply();
        }
    }
}

control MyEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t standard_metadata) {
    apply { }
}

control MyDeparser(packet_out packet, in headers hdr) {
    apply {
        packet.emit(hdr.ethernet);
        packet.emit(hdr.ipv4);
    }
}

V1Switch(MyParser(), MyIngress(), MyEgress(), MyDeparser()) main;
`

func TestParseMiniNAT(t *testing.T) {
	prog, err := Parse(miniNAT)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	var headers, structs, parsers, controls, insts int
	for _, d := range prog.Decls {
		switch d.(type) {
		case *ast.HeaderDecl:
			headers++
		case *ast.StructDecl:
			structs++
		case *ast.ParserDecl:
			parsers++
		case *ast.ControlDecl:
			controls++
		case *ast.InstantiationDecl:
			insts++
		}
	}
	if headers != 2 || structs != 3 || parsers != 1 || controls != 3 || insts != 1 {
		t.Fatalf("decl counts: headers=%d structs=%d parsers=%d controls=%d insts=%d",
			headers, structs, parsers, controls, insts)
	}
}

func findControl(t *testing.T, prog *ast.Program, name string) *ast.ControlDecl {
	t.Helper()
	for _, d := range prog.Decls {
		if c, ok := d.(*ast.ControlDecl); ok && c.Name == name {
			return c
		}
	}
	t.Fatalf("control %s not found", name)
	return nil
}

func TestTableStructure(t *testing.T) {
	prog, err := Parse(miniNAT)
	if err != nil {
		t.Fatal(err)
	}
	ing := findControl(t, prog, "MyIngress")
	var nat *ast.TableDecl
	for _, l := range ing.Locals {
		if tb, ok := l.(*ast.TableDecl); ok && tb.Name == "nat" {
			nat = tb
		}
	}
	if nat == nil {
		t.Fatal("table nat not found")
	}
	if len(nat.Keys) != 2 {
		t.Fatalf("nat keys = %d, want 2", len(nat.Keys))
	}
	if nat.Keys[0].MatchKind != "exact" || nat.Keys[1].MatchKind != "ternary" {
		t.Fatalf("match kinds: %s, %s", nat.Keys[0].MatchKind, nat.Keys[1].MatchKind)
	}
	if got := ast.PathString(nat.Keys[0].Expr); got != "hdr.ipv4.isValid()" {
		t.Fatalf("key 0 path = %q", got)
	}
	if len(nat.Actions) != 2 || nat.Actions[1].Name != "nat_hit_int_to_ext" {
		t.Fatalf("actions: %+v", nat.Actions)
	}
	if nat.Default == nil || nat.Default.Name != "drop_" {
		t.Fatalf("default action: %+v", nat.Default)
	}
	if nat.Size != 128 {
		t.Fatalf("size = %d", nat.Size)
	}
}

func TestParserStates(t *testing.T) {
	prog, err := Parse(miniNAT)
	if err != nil {
		t.Fatal(err)
	}
	var pd *ast.ParserDecl
	for _, d := range prog.Decls {
		if x, ok := d.(*ast.ParserDecl); ok {
			pd = x
		}
	}
	if pd == nil || len(pd.States) != 2 {
		t.Fatalf("parser states: %+v", pd)
	}
	start := pd.States[0]
	if start.Trans == nil || start.Trans.Select == nil {
		t.Fatal("start state must have a select transition")
	}
	if len(start.Trans.Select.Cases) != 2 {
		t.Fatalf("select cases = %d", len(start.Trans.Select.Cases))
	}
	if start.Trans.Select.Cases[1].Next != "accept" {
		t.Fatalf("default case target = %s", start.Trans.Select.Cases[1].Next)
	}
	if _, ok := start.Trans.Select.Cases[1].Values[0].(*ast.DefaultExpr); !ok {
		t.Fatal("second case must be default")
	}
}

func TestIntLitForms(t *testing.T) {
	cases := []struct {
		src   string
		width int
		val   int64
	}{
		{"42", 0, 42},
		{"0xFF", 0, 255},
		{"0b101", 0, 5},
		{"8w255", 8, 255},
		{"9w0x1FF", 9, 511},
		{"1w0b1", 1, 1},
		{"4s7", 4, 7},
		{"32w0xdead_beef", 32, 0xdeadbeef},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		lit, ok := e.(*ast.IntLit)
		if !ok {
			t.Errorf("%q: not an IntLit: %T", c.src, e)
			continue
		}
		if lit.Width != c.width || lit.Val.Int64() != c.val {
			t.Errorf("%q: got width=%d val=%d, want %d/%d", c.src, lit.Width, lit.Val.Int64(), c.width, c.val)
		}
	}
}

func TestExprPrecedence(t *testing.T) {
	e, err := ParseExpr("a + b * c == d << 2 & e")
	if err != nil {
		t.Fatal(err)
	}
	// ((a + (b*c)) == ((d << 2) & e)): check the tree shape directly.
	eq, ok := e.(*ast.BinaryExpr)
	if !ok || eq.Op.String() != "==" {
		t.Fatalf("root is %T (%s), want ==", e, ast.PrintExpr(e))
	}
	if l, ok := eq.X.(*ast.BinaryExpr); !ok || l.Op.String() != "+" {
		t.Fatalf("lhs of == is %s", ast.PrintExpr(eq.X))
	}
	if r, ok := eq.Y.(*ast.BinaryExpr); !ok || r.Op.String() != "&" {
		t.Fatalf("rhs of == is %s", ast.PrintExpr(eq.Y))
	}
	// The printed form must re-parse to the same shape.
	e2, err := ParseExpr(ast.PrintExpr(e))
	if err != nil {
		t.Fatal(err)
	}
	if ast.PrintExpr(e2) != ast.PrintExpr(e) {
		t.Fatalf("round trip: %q vs %q", ast.PrintExpr(e2), ast.PrintExpr(e))
	}
}

func TestTernaryAndCast(t *testing.T) {
	e, err := ParseExpr("(bit<9>)(x ? a : b)")
	if err != nil {
		t.Fatal(err)
	}
	cast, ok := e.(*ast.CastExpr)
	if !ok {
		t.Fatalf("not a cast: %T", e)
	}
	if _, ok := cast.X.(*ast.TernaryExpr); !ok {
		t.Fatalf("cast operand not ternary: %T", cast.X)
	}
}

func TestSwitchStmt(t *testing.T) {
	src := `
control c(inout bit<8> x) {
    action a1() { x = 1; }
    action a2() { x = 2; }
    table t {
        key = { x: exact; }
        actions = { a1; a2; }
    }
    apply {
        switch (t.apply().action_run) {
            a1: { x = 10; }
            a2: { x = 20; }
            default: { x = 30; }
        }
    }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := findControl(t, prog, "c")
	sw, ok := c.Apply.Stmts[0].(*ast.SwitchStmt)
	if !ok {
		t.Fatalf("not a switch: %T", c.Apply.Stmts[0])
	}
	if len(sw.Cases) != 3 || sw.Cases[2].Label != "" {
		t.Fatalf("switch cases: %+v", sw.Cases)
	}
	if ast.PathString(sw.Table) != "t" {
		t.Fatalf("switch table: %v", sw.Table)
	}
}

func TestHeaderStacks(t *testing.T) {
	src := `
header vlan_t { bit<16> tci; }
struct headers { vlan_t[4] vlan; }
parser P(packet_in b, out headers hdr) {
    state start {
        b.extract(hdr.vlan.next);
        transition select(hdr.vlan[0].tci) {
            16w1: start;
            default: accept;
        }
    }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var hs *ast.StructDecl
	for _, d := range prog.Decls {
		if s, ok := d.(*ast.StructDecl); ok && s.Name == "headers" {
			hs = s
		}
	}
	st, ok := hs.Fields[0].Type.(*ast.StackType)
	if !ok || st.Size != 4 {
		t.Fatalf("stack type: %+v", hs.Fields[0].Type)
	}
}

func TestRegisterDecl(t *testing.T) {
	src := `
control c(inout bit<8> x) {
    register<bit<32>>(1024) counts;
    apply {
        counts.write((bit<32>)x, 32w1);
        counts.read(x, (bit<32>)x);
    }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := findControl(t, prog, "c")
	reg, ok := c.Locals[0].(*ast.RegisterDecl)
	if !ok || reg.Size != 1024 || reg.Name != "counts" {
		t.Fatalf("register: %+v", c.Locals[0])
	}
}

func TestRoundTripThroughPrinter(t *testing.T) {
	prog, err := Parse(miniNAT)
	if err != nil {
		t.Fatal(err)
	}
	printed := ast.Print(prog)
	prog2, err := Parse(printed)
	if err != nil {
		t.Fatalf("re-parse of printed program failed: %v\n--- printed ---\n%s", err, printed)
	}
	printed2 := ast.Print(prog2)
	if printed != printed2 {
		t.Fatalf("printer not idempotent:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
}

func TestErrorRecovery(t *testing.T) {
	src := `
header h1 { bit<8> x; }
header h2 { bit<8> %%%; }
header h3 { bit<8> z; }
`
	prog, err := Parse(src)
	if err == nil {
		t.Fatal("expected parse errors")
	}
	// h1 must still have been parsed despite the error in h2.
	found := false
	for _, d := range prog.Decls {
		if h, ok := d.(*ast.HeaderDecl); ok && h.Name == "h1" {
			found = true
		}
	}
	if !found {
		t.Fatal("h1 lost during error recovery")
	}
	if !strings.Contains(err.Error(), "2") && !strings.Contains(err.Error(), "3") {
		t.Fatalf("error lacks position info: %v", err)
	}
}

func TestAnnotationsSkipped(t *testing.T) {
	src := `
@name("ingress.t") @hidden
header h { bit<8> x; }
control c(inout h hh) {
    @name(".a1") action a1() { hh.x = 1; }
    apply { a1(); }
}
`
	if _, err := Parse(src); err != nil {
		t.Fatalf("annotations must be skipped: %v", err)
	}
}
