package parser

import (
	"strings"
	"testing"
)

// TestLexicalErrorsSurface: lexer diagnostics (formerly dropped on the
// floor) must come back from Parse, positioned and listed before any
// parse errors they caused.
func TestLexicalErrorsSurface(t *testing.T) {
	_, err := Parse("header h_t { bit<8> f; } /* never closed")
	if err == nil {
		t.Fatal("unterminated block comment parsed without error")
	}
	if !strings.Contains(err.Error(), "unterminated block comment") {
		t.Fatalf("error %q does not mention the unterminated comment", err)
	}
	if !strings.Contains(err.Error(), "1:26") {
		t.Fatalf("error %q lacks the line:col of the comment opener", err)
	}
}

func TestLexicalErrorBeforeParseErrors(t *testing.T) {
	// The unterminated string swallows the rest of the line, which also
	// breaks the surrounding declaration; the root cause must be first.
	src := "const bit<8> x = \"oops;\nheader h_t { }"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("unterminated string parsed without error")
	}
	if !strings.Contains(err.Error(), "unterminated string") {
		t.Fatalf("first error %q should be the lexical root cause", err)
	}
}

// TestParseErrorsCarryLineCol: syntax errors point at the offending
// token, not 0:0 and not the start of the file.
func TestParseErrorsCarryLineCol(t *testing.T) {
	src := "header h_t {\n  bit<8> f\n}\n"
	_, err := Parse(src) // missing ';' after the field
	if err == nil {
		t.Fatal("missing semicolon parsed without error")
	}
	if !strings.Contains(err.Error(), "3:") {
		t.Fatalf("error %q does not point at line 3 where the '}' was found", err)
	}
}

// TestParseFilePrefixesFilename: ParseFile diagnostics read
// file:line:col so editors and CI annotations can jump to them.
func TestParseFilePrefixesFilename(t *testing.T) {
	_, err := ParseFile("broken.p4", "header h_t { bit<8> f }\n")
	if err == nil {
		t.Fatal("expected a parse error")
	}
	for _, line := range strings.Split(err.Error(), "\n") {
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "broken.p4:") {
			t.Fatalf("diagnostic line %q not prefixed with the filename", line)
		}
	}
}

// TestPrefixFilePassthrough: nil errors and empty filenames are left
// alone.
func TestPrefixFilePassthrough(t *testing.T) {
	if err := PrefixFile("f.p4", nil); err != nil {
		t.Fatalf("PrefixFile(nil) = %v, want nil", err)
	}
	_, err := Parse("header h_t { bit<8> f }")
	if got := PrefixFile("", err); got != err {
		t.Fatalf("empty filename must not rewrap: got %v", got)
	}
}
