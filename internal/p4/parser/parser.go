// Package parser implements a recursive-descent parser for bf4's P4-16
// subset (see package ast for the grammar's shape). It is error-tolerant
// in the small — errors are accumulated and parsing continues at the next
// synchronization point — so a single diagnostic run reports multiple
// problems, matching p4c's behaviour.
package parser

import (
	"errors"
	"fmt"
	"math/big"
	"strings"

	"bf4/internal/p4/ast"
	"bf4/internal/p4/lexer"
	"bf4/internal/p4/token"
)

// Parse parses a complete P4 program.
func Parse(src string) (*ast.Program, error) {
	p := newParser(src)
	prog := p.parseProgram()
	if errs := p.allErrors(); len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return prog, errors.New(strings.Join(msgs, "\n"))
	}
	return prog, nil
}

// ParseFile is Parse with a filename attached to every diagnostic:
// errors print file:line:col: message instead of line:col: message.
func ParseFile(filename, src string) (*ast.Program, error) {
	prog, err := Parse(src)
	if err != nil {
		return prog, PrefixFile(filename, err)
	}
	return prog, nil
}

// PrefixFile prepends filename: to every line of a frontend diagnostic
// (parser and typechecker errors are one line:col-prefixed message per
// line). A nil error or empty filename passes through unchanged.
func PrefixFile(filename string, err error) error {
	if err == nil || filename == "" {
		return err
	}
	lines := strings.Split(err.Error(), "\n")
	for i, l := range lines {
		lines[i] = filename + ":" + l
	}
	return errors.New(strings.Join(lines, "\n"))
}

// ParseExpr parses a single expression (used by the spec parser and tests).
func ParseExpr(src string) (ast.Expr, error) {
	p := newParser(src)
	e := p.parseExpr()
	if errs := p.allErrors(); len(errs) > 0 {
		return nil, errs[0]
	}
	if p.tok.Kind != token.EOF {
		return nil, fmt.Errorf("%s: trailing input after expression", p.tok.Pos)
	}
	return e, nil
}

type parser struct {
	lex  *lexer.Lexer
	tok  token.Token
	next token.Token
	errs []error
}

func newParser(src string) *parser {
	p := &parser{lex: lexer.New(src)}
	p.tok = p.lex.Next()
	p.next = p.lex.Next()
	return p
}

func (p *parser) advance() {
	p.tok = p.next
	p.next = p.lex.Next()
}

func (p *parser) errorf(pos token.Pos, format string, args ...interface{}) {
	if len(p.errs) < 50 {
		p.errs = append(p.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
	}
}

// allErrors merges the lexer's diagnostics (unterminated comments and
// strings, illegal characters — previously dropped entirely) with the
// parser's own. Lexical errors come first: they are usually the root
// cause of the parse errors that follow.
func (p *parser) allErrors() []error {
	lexErrs := p.lex.Errors()
	if len(lexErrs) == 0 {
		return p.errs
	}
	out := make([]error, 0, len(lexErrs)+len(p.errs))
	out = append(out, lexErrs...)
	return append(out, p.errs...)
}

func (p *parser) expect(k token.Kind) token.Token {
	t := p.tok
	if t.Kind != k {
		// `>>` closes two nested angle brackets (register<bit<32>>): split
		// it into two RANGLE tokens.
		if k == token.RANGLE && t.Kind == token.SHR {
			p.tok = token.Token{Kind: token.RANGLE, Pos: t.Pos}
			return token.Token{Kind: token.RANGLE, Pos: t.Pos}
		}
		p.errorf(t.Pos, "expected %v, found %v", k, t)
		return t
	}
	p.advance()
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.tok.Kind == k {
		p.advance()
		return true
	}
	return false
}

// progress returns a checkpoint of the current token; stalled reports
// whether the parser failed to move past it (error-recovery loops use the
// pair to guarantee forward progress on malformed input).
func (p *parser) progress() token.Token { return p.tok }

func (p *parser) stalled(mark token.Token) bool {
	return p.tok.Kind == mark.Kind && p.tok.Pos == mark.Pos && p.tok.Kind != token.EOF
}

// skipTo advances past tokens until one of the kinds (or EOF) is current.
func (p *parser) skipTo(kinds ...token.Kind) {
	for p.tok.Kind != token.EOF {
		for _, k := range kinds {
			if p.tok.Kind == k {
				return
			}
		}
		p.advance()
	}
}

// skipAnnotation consumes @name or @name(...) annotations.
func (p *parser) skipAnnotation() { p.parseAnnotation() }

// parseAnnotation consumes @name or @name(...) and returns the
// annotation's name ("" when malformed). Arguments are discarded — the
// subset only cares which annotations are present (e.g. @sensitive).
func (p *parser) parseAnnotation() string {
	p.expect(token.AT)
	name := ""
	if p.tok.Kind == token.IDENT {
		name = p.tok.Lit
		p.advance()
	}
	if p.tok.Kind == token.LPAREN {
		depth := 0
		for p.tok.Kind != token.EOF {
			switch p.tok.Kind {
			case token.LPAREN:
				depth++
			case token.RPAREN:
				depth--
				if depth == 0 {
					p.advance()
					return name
				}
			}
			p.advance()
		}
	}
	return name
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for p.tok.Kind != token.EOF {
		d := p.parseTopDecl()
		if d != nil {
			prog.Decls = append(prog.Decls, d)
		}
	}
	return prog
}

func (p *parser) parseTopDecl() ast.Decl {
	for p.tok.Kind == token.AT {
		p.skipAnnotation()
	}
	switch p.tok.Kind {
	case token.KwHeader:
		return p.parseHeader()
	case token.KwStruct:
		return p.parseStruct()
	case token.KwTypedef:
		return p.parseTypedef()
	case token.KwConst:
		return p.parseConst()
	case token.KwParser:
		return p.parseParser()
	case token.KwControl:
		return p.parseControl()
	case token.KwError, token.KwEnum, token.KwPackage:
		// Declarations tolerated and skipped: error lists, enums and
		// package prototypes don't affect verification in the subset.
		p.skipBraceBlockOrSemi()
		return nil
	case token.IDENT:
		return p.parseInstantiation()
	case token.EOF:
		return nil
	default:
		p.errorf(p.tok.Pos, "unexpected token %v at top level", p.tok)
		p.advance()
		return nil
	}
}

// skipBraceBlockOrSemi consumes either `... { ... }` or `... ;`.
func (p *parser) skipBraceBlockOrSemi() {
	for p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.LBRACE:
			depth := 0
			for p.tok.Kind != token.EOF {
				switch p.tok.Kind {
				case token.LBRACE:
					depth++
				case token.RBRACE:
					depth--
					if depth == 0 {
						p.advance()
						return
					}
				}
				p.advance()
			}
			return
		case token.SEMICOLON:
			p.advance()
			return
		}
		p.advance()
	}
}

func (p *parser) parseType() ast.Type {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.KwBit:
		p.advance()
		p.expect(token.LANGLE)
		w := p.parseIntValue()
		p.expect(token.RANGLE)
		return &ast.BitType{P: pos, Width: w}
	case token.KwBool:
		p.advance()
		return &ast.BoolType{P: pos}
	case token.IDENT:
		name := p.tok.Lit
		p.advance()
		return &ast.NamedType{P: pos, Name: name}
	default:
		p.errorf(pos, "expected type, found %v", p.tok)
		p.advance()
		return &ast.BitType{P: pos, Width: 1}
	}
}

// parseIntValue parses a plain integer token into an int.
func (p *parser) parseIntValue() int {
	t := p.expect(token.INT)
	_, v, err := ParseIntLit(t.Lit)
	if err != nil {
		p.errorf(t.Pos, "%v", err)
		return 0
	}
	return int(v.Int64())
}

// ParseIntLit decodes a P4 integer literal: returns the declared width
// (0 if unsized) and the magnitude. Accepted forms: 42, 0x2A, 0b101010,
// 8w255, 9w0x1FF, 4s7, with optional underscores.
func ParseIntLit(lit string) (width int, val *big.Int, err error) {
	s := strings.ReplaceAll(lit, "_", "")
	if i := strings.IndexAny(s, "ws"); i > 0 && !strings.HasPrefix(s, "0x") && !strings.HasPrefix(s, "0X") && !strings.HasPrefix(s, "0b") && !strings.HasPrefix(s, "0B") {
		w := new(big.Int)
		if _, ok := w.SetString(s[:i], 10); !ok {
			return 0, nil, fmt.Errorf("bad width in literal %q", lit)
		}
		width = int(w.Int64())
		s = s[i+1:]
	}
	val = new(big.Int)
	base := 10
	switch {
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		base, s = 16, s[2:]
	case strings.HasPrefix(s, "0b") || strings.HasPrefix(s, "0B"):
		base, s = 2, s[2:]
	}
	if _, ok := val.SetString(s, base); !ok {
		return 0, nil, fmt.Errorf("bad integer literal %q", lit)
	}
	return width, val, nil
}

func (p *parser) parseHeader() ast.Decl {
	pos := p.tok.Pos
	p.expect(token.KwHeader)
	name := p.expect(token.IDENT).Lit
	p.expect(token.LBRACE)
	d := &ast.HeaderDecl{P: pos, Name: name}
	d.Fields = p.parseFields()
	p.expect(token.RBRACE)
	return d
}

func (p *parser) parseStruct() ast.Decl {
	pos := p.tok.Pos
	p.expect(token.KwStruct)
	name := p.expect(token.IDENT).Lit
	p.expect(token.LBRACE)
	d := &ast.StructDecl{P: pos, Name: name}
	d.Fields = p.parseFields()
	p.expect(token.RBRACE)
	return d
}

func (p *parser) parseFields() []*ast.Field {
	var fields []*ast.Field
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		mark := p.progress()
		var annots []string
		for p.tok.Kind == token.AT {
			if a := p.parseAnnotation(); a != "" {
				annots = append(annots, a)
			}
		}
		pos := p.tok.Pos
		typ := p.parseType()
		// Header stack field: elem[size] name.
		if p.accept(token.LBRACKET) {
			size := p.parseIntValue()
			p.expect(token.RBRACKET)
			typ = &ast.StackType{P: pos, Elem: typ, Size: size}
		}
		name := p.expect(token.IDENT).Lit
		p.expect(token.SEMICOLON)
		fields = append(fields, &ast.Field{P: pos, Name: name, Type: typ, Annots: annots})
		if p.stalled(mark) {
			p.advance()
		}
	}
	return fields
}

func (p *parser) parseTypedef() ast.Decl {
	pos := p.tok.Pos
	p.expect(token.KwTypedef)
	typ := p.parseType()
	name := p.expect(token.IDENT).Lit
	p.expect(token.SEMICOLON)
	return &ast.TypedefDecl{P: pos, Name: name, Type: typ}
}

func (p *parser) parseConst() ast.Decl {
	pos := p.tok.Pos
	p.expect(token.KwConst)
	typ := p.parseType()
	name := p.expect(token.IDENT).Lit
	p.expect(token.ASSIGN)
	val := p.parseExpr()
	p.expect(token.SEMICOLON)
	return &ast.ConstDecl{P: pos, Name: name, Type: typ, Value: val}
}

func (p *parser) parseParams() []*ast.Param {
	p.expect(token.LPAREN)
	var params []*ast.Param
	for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
		pos := p.tok.Pos
		dir := ""
		switch p.tok.Kind {
		case token.KwIn:
			dir = "in"
			p.advance()
		case token.KwOut:
			dir = "out"
			p.advance()
		case token.KwInout:
			dir = "inout"
			p.advance()
		}
		typ := p.parseType()
		name := p.expect(token.IDENT).Lit
		params = append(params, &ast.Param{P: pos, Dir: dir, Name: name, Type: typ})
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	return params
}

func (p *parser) parseParser() ast.Decl {
	pos := p.tok.Pos
	p.expect(token.KwParser)
	name := p.expect(token.IDENT).Lit
	params := p.parseParams()
	p.expect(token.LBRACE)
	d := &ast.ParserDecl{P: pos, Name: name, Params: params}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		for p.tok.Kind == token.AT {
			p.skipAnnotation()
		}
		if p.tok.Kind == token.KwState {
			d.States = append(d.States, p.parseState())
			continue
		}
		if l := p.parseLocalDecl(); l != nil {
			d.Locals = append(d.Locals, l)
		}
	}
	p.expect(token.RBRACE)
	return d
}

func (p *parser) parseState() *ast.StateDecl {
	pos := p.tok.Pos
	p.expect(token.KwState)
	name := p.expect(token.IDENT).Lit
	p.expect(token.LBRACE)
	st := &ast.StateDecl{P: pos, Name: name}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		if p.tok.Kind == token.KwTransition {
			st.Trans = p.parseTransition()
			break
		}
		st.Stmts = append(st.Stmts, p.parseStmt())
	}
	p.expect(token.RBRACE)
	return st
}

func (p *parser) parseTransition() *ast.Transition {
	pos := p.tok.Pos
	p.expect(token.KwTransition)
	if p.tok.Kind == token.IDENT && p.tok.Lit == "select" {
		p.advance()
		p.expect(token.LPAREN)
		sel := &ast.SelectExpr{P: pos}
		for {
			sel.Exprs = append(sel.Exprs, p.parseExpr())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
		p.expect(token.LBRACE)
		for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
			mark := p.progress()
			sel.Cases = append(sel.Cases, p.parseSelectCase())
			if p.stalled(mark) {
				p.advance()
			}
		}
		p.expect(token.RBRACE)
		return &ast.Transition{P: pos, Select: sel}
	}
	var next string
	switch p.tok.Kind {
	case token.IDENT:
		next = p.tok.Lit
		p.advance()
	default:
		p.errorf(p.tok.Pos, "expected state name after transition, found %v", p.tok)
		p.skipTo(token.SEMICOLON, token.RBRACE)
	}
	p.expect(token.SEMICOLON)
	return &ast.Transition{P: pos, Next: next}
}

func (p *parser) parseSelectCase() *ast.SelectCase {
	pos := p.tok.Pos
	c := &ast.SelectCase{P: pos}
	if p.accept(token.LPAREN) {
		for {
			c.Values = append(c.Values, p.parseSelectValue())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
	} else {
		c.Values = append(c.Values, p.parseSelectValue())
	}
	p.expect(token.COLON)
	c.Next = p.expect(token.IDENT).Lit
	p.expect(token.SEMICOLON)
	return c
}

func (p *parser) parseSelectValue() ast.Expr {
	if p.tok.Kind == token.KwDefault {
		pos := p.tok.Pos
		p.advance()
		return &ast.DefaultExpr{P: pos}
	}
	return p.parseExpr()
}

func (p *parser) parseControl() ast.Decl {
	pos := p.tok.Pos
	p.expect(token.KwControl)
	name := p.expect(token.IDENT).Lit
	params := p.parseParams()
	p.expect(token.LBRACE)
	d := &ast.ControlDecl{P: pos, Name: name, Params: params}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		for p.tok.Kind == token.AT {
			p.skipAnnotation()
		}
		if p.tok.Kind == token.KwApply {
			p.advance()
			d.Apply = p.parseBlock()
			continue
		}
		if l := p.parseLocalDecl(); l != nil {
			d.Locals = append(d.Locals, l)
		}
	}
	p.expect(token.RBRACE)
	if d.Apply == nil {
		d.Apply = &ast.BlockStmt{P: pos}
	}
	return d
}

// parseLocalDecl parses control-/parser-local declarations: actions,
// tables, registers, constants and variables.
func (p *parser) parseLocalDecl() ast.Decl {
	switch p.tok.Kind {
	case token.KwAction:
		pos := p.tok.Pos
		p.advance()
		name := p.expect(token.IDENT).Lit
		params := p.parseParams()
		body := p.parseBlock()
		return &ast.ActionDecl{P: pos, Name: name, Params: params, Body: body}
	case token.KwTable:
		return p.parseTable()
	case token.KwRegister:
		pos := p.tok.Pos
		p.advance()
		p.expect(token.LANGLE)
		elem := p.parseType()
		p.expect(token.RANGLE)
		p.expect(token.LPAREN)
		size := p.parseIntValue()
		p.expect(token.RPAREN)
		name := p.expect(token.IDENT).Lit
		p.expect(token.SEMICOLON)
		return &ast.RegisterDecl{P: pos, Name: name, ElemType: elem, Size: size}
	case token.KwConst:
		return p.parseConst()
	case token.KwBit, token.KwBool, token.IDENT:
		pos := p.tok.Pos
		typ := p.parseType()
		name := p.expect(token.IDENT).Lit
		var init ast.Expr
		if p.accept(token.ASSIGN) {
			init = p.parseExpr()
		}
		p.expect(token.SEMICOLON)
		return &ast.VarDecl{P: pos, Name: name, Type: typ, Init: init}
	default:
		p.errorf(p.tok.Pos, "unexpected token %v in declaration context", p.tok)
		p.advance()
		return nil
	}
}

func (p *parser) parseTable() ast.Decl {
	pos := p.tok.Pos
	p.expect(token.KwTable)
	name := p.expect(token.IDENT).Lit
	p.expect(token.LBRACE)
	d := &ast.TableDecl{P: pos, Name: name}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		mark := p.progress()
		for p.tok.Kind == token.AT {
			p.skipAnnotation()
		}
		switch p.tok.Kind {
		case token.KwKey:
			p.advance()
			p.expect(token.ASSIGN)
			p.expect(token.LBRACE)
			for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
				kmark := p.progress()
				kpos := p.tok.Pos
				e := p.parseExpr()
				p.expect(token.COLON)
				mk := p.expect(token.IDENT).Lit
				p.expect(token.SEMICOLON)
				d.Keys = append(d.Keys, &ast.TableKey{P: kpos, Expr: e, MatchKind: mk})
				if p.stalled(kmark) {
					p.advance()
				}
			}
			p.expect(token.RBRACE)
			p.accept(token.SEMICOLON)
		case token.KwActions:
			p.advance()
			p.expect(token.ASSIGN)
			p.expect(token.LBRACE)
			for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
				amark := p.progress()
				for p.tok.Kind == token.AT {
					p.skipAnnotation()
				}
				apos := p.tok.Pos
				aname := p.expect(token.IDENT).Lit
				ref := &ast.ActionRef{P: apos, Name: aname}
				if p.accept(token.LPAREN) {
					for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
						ref.Args = append(ref.Args, p.parseExpr())
						if !p.accept(token.COMMA) {
							break
						}
					}
					p.expect(token.RPAREN)
				}
				p.expect(token.SEMICOLON)
				d.Actions = append(d.Actions, ref)
				if p.stalled(amark) {
					p.advance()
				}
			}
			p.expect(token.RBRACE)
			p.accept(token.SEMICOLON)
		case token.KwDefaultAction:
			p.advance()
			p.expect(token.ASSIGN)
			apos := p.tok.Pos
			aname := p.expect(token.IDENT).Lit
			ref := &ast.ActionRef{P: apos, Name: aname}
			if p.accept(token.LPAREN) {
				for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
					ref.Args = append(ref.Args, p.parseExpr())
					if !p.accept(token.COMMA) {
						break
					}
				}
				p.expect(token.RPAREN)
			}
			p.expect(token.SEMICOLON)
			d.Default = ref
		case token.KwSize:
			p.advance()
			p.expect(token.ASSIGN)
			d.Size = p.parseIntValue()
			p.expect(token.SEMICOLON)
		case token.KwConst:
			// const entries / const default_action: accept the const and
			// re-dispatch.
			p.advance()
		case token.KwEntries:
			// Static entries are not part of the subset; skip the block.
			p.advance()
			p.expect(token.ASSIGN)
			p.skipBraceBlockOrSemi()
		case token.IDENT:
			// Unknown property (counters, meters, implementation...): skip.
			p.advance()
			if p.accept(token.ASSIGN) {
				p.skipTo(token.SEMICOLON, token.RBRACE)
				p.accept(token.SEMICOLON)
			}
		default:
			p.errorf(p.tok.Pos, "unexpected token %v in table", p.tok)
			p.advance()
		}
		if p.stalled(mark) {
			p.advance()
		}
	}
	p.expect(token.RBRACE)
	return d
}

func (p *parser) parseInstantiation() ast.Decl {
	pos := p.tok.Pos
	typeName := p.expect(token.IDENT).Lit
	// Optional type arguments: V1Switch<H, M>(...).
	if p.tok.Kind == token.LANGLE {
		depth := 0
		for p.tok.Kind != token.EOF {
			if p.tok.Kind == token.LANGLE {
				depth++
			}
			if p.tok.Kind == token.RANGLE {
				depth--
				if depth == 0 {
					p.advance()
					break
				}
			}
			p.advance()
		}
	}
	d := &ast.InstantiationDecl{P: pos, TypeName: typeName}
	p.expect(token.LPAREN)
	for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
		d.Args = append(d.Args, p.parseExpr())
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	d.Name = p.expect(token.IDENT).Lit
	p.expect(token.SEMICOLON)
	return d
}

// ---------------------------------------------------------------- stmts

func (p *parser) parseBlock() *ast.BlockStmt {
	pos := p.tok.Pos
	p.expect(token.LBRACE)
	b := &ast.BlockStmt{P: pos}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	p.expect(token.RBRACE)
	return b
}

// parseStmtOrBlock wraps a single statement in a block if needed (P4
// allows unbraced if bodies).
func (p *parser) parseStmtOrBlock() *ast.BlockStmt {
	if p.tok.Kind == token.LBRACE {
		return p.parseBlock()
	}
	s := p.parseStmt()
	return &ast.BlockStmt{P: s.Pos(), Stmts: []ast.Stmt{s}}
}

func (p *parser) parseStmt() ast.Stmt {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.SEMICOLON:
		p.advance()
		return &ast.EmptyStmt{P: pos}
	case token.KwIf:
		p.advance()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		then := p.parseStmtOrBlock()
		st := &ast.IfStmt{P: pos, Cond: cond, Then: then}
		if p.accept(token.KwElse) {
			if p.tok.Kind == token.KwIf {
				st.Else = p.parseStmt()
			} else {
				st.Else = p.parseStmtOrBlock()
			}
		}
		return st
	case token.KwSwitch:
		return p.parseSwitch()
	case token.KwExit:
		p.advance()
		p.expect(token.SEMICOLON)
		return &ast.ExitStmt{P: pos}
	case token.KwReturn:
		p.advance()
		p.expect(token.SEMICOLON)
		return &ast.ReturnStmt{P: pos}
	case token.KwBit, token.KwBool:
		typ := p.parseType()
		name := p.expect(token.IDENT).Lit
		var init ast.Expr
		if p.accept(token.ASSIGN) {
			init = p.parseExpr()
		}
		p.expect(token.SEMICOLON)
		return &ast.VarDeclStmt{Decl: &ast.VarDecl{P: pos, Name: name, Type: typ, Init: init}}
	case token.IDENT:
		// Could be a typed declaration (Type name = ...) or an
		// assignment/call. Disambiguate with one token of lookahead:
		// IDENT IDENT is a declaration.
		if p.next.Kind == token.IDENT {
			typ := p.parseType()
			name := p.expect(token.IDENT).Lit
			var init ast.Expr
			if p.accept(token.ASSIGN) {
				init = p.parseExpr()
			}
			p.expect(token.SEMICOLON)
			return &ast.VarDeclStmt{Decl: &ast.VarDecl{P: pos, Name: name, Type: typ, Init: init}}
		}
		return p.parseSimpleStmt()
	default:
		p.errorf(pos, "unexpected token %v in statement", p.tok)
		p.advance()
		return &ast.EmptyStmt{P: pos}
	}
}

func (p *parser) parseSimpleStmt() ast.Stmt {
	pos := p.tok.Pos
	lhs := p.parseExpr()
	if p.accept(token.ASSIGN) {
		rhs := p.parseExpr()
		p.expect(token.SEMICOLON)
		return &ast.AssignStmt{P: pos, LHS: lhs, RHS: rhs}
	}
	p.expect(token.SEMICOLON)
	if call, ok := lhs.(*ast.CallExpr); ok {
		return &ast.CallStmt{P: pos, Call: call}
	}
	p.errorf(pos, "expression statement must be a call")
	return &ast.EmptyStmt{P: pos}
}

func (p *parser) parseSwitch() ast.Stmt {
	pos := p.tok.Pos
	p.expect(token.KwSwitch)
	p.expect(token.LPAREN)
	// Expect t.apply().action_run.
	e := p.parseExpr()
	p.expect(token.RPAREN)
	var table ast.Expr
	if m, ok := e.(*ast.Member); ok && m.Name == "action_run" {
		if call, ok := m.X.(*ast.CallExpr); ok {
			if fm, ok := call.Fun.(*ast.Member); ok && fm.Name == "apply" {
				table = fm.X
			}
		}
	}
	if table == nil {
		p.errorf(pos, "switch expression must be <table>.apply().action_run")
		table = &ast.Ident{P: pos, Name: "_invalid"}
	}
	st := &ast.SwitchStmt{P: pos, Table: table}
	p.expect(token.LBRACE)
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		cpos := p.tok.Pos
		label := ""
		if p.tok.Kind == token.KwDefault {
			p.advance()
		} else {
			label = p.expect(token.IDENT).Lit
		}
		p.expect(token.COLON)
		c := &ast.SwitchCase{P: cpos, Label: label}
		if p.tok.Kind == token.LBRACE {
			c.Body = p.parseBlock()
		}
		st.Cases = append(st.Cases, c)
	}
	p.expect(token.RBRACE)
	return st
}

// ---------------------------------------------------------------- exprs

// Binary operator precedence (higher binds tighter).
func binaryPrec(k token.Kind) int {
	switch k {
	case token.OR:
		return 1
	case token.AND:
		return 2
	case token.EQ, token.NEQ:
		return 3
	case token.LANGLE, token.RANGLE, token.LEQ, token.GEQ:
		return 4
	case token.PIPE:
		return 5
	case token.CARET:
		return 6
	case token.AMP:
		return 7
	case token.SHL, token.SHR:
		return 8
	case token.PLUS, token.MINUS, token.PLUSPLUS:
		return 9
	case token.STAR, token.SLASH, token.PERCENT:
		return 10
	default:
		return 0
	}
}

func (p *parser) parseExpr() ast.Expr {
	return p.parseTernary()
}

func (p *parser) parseTernary() ast.Expr {
	cond := p.parseBinary(1)
	if p.tok.Kind == token.QUESTION {
		pos := p.tok.Pos
		p.advance()
		then := p.parseExpr()
		p.expect(token.COLON)
		els := p.parseExpr()
		return &ast.TernaryExpr{P: pos, Cond: cond, Then: then, Else: els}
	}
	return cond
}

func (p *parser) parseBinary(minPrec int) ast.Expr {
	lhs := p.parseUnary()
	for {
		prec := binaryPrec(p.tok.Kind)
		if prec == 0 || prec < minPrec {
			return lhs
		}
		op := p.tok.Kind
		pos := p.tok.Pos
		p.advance()
		rhs := p.parseBinary(prec + 1)
		lhs = &ast.BinaryExpr{P: pos, Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() ast.Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.MINUS, token.TILDE, token.NOT:
		op := p.tok.Kind
		p.advance()
		return &ast.UnaryExpr{P: pos, Op: op, X: p.parseUnary()}
	case token.LPAREN:
		// Cast: (bit<N>)x or (bool)x. Otherwise a parenthesized expr.
		if p.next.Kind == token.KwBit || p.next.Kind == token.KwBool {
			p.advance()
			typ := p.parseType()
			p.expect(token.RPAREN)
			return &ast.CastExpr{P: pos, Type: typ, X: p.parseUnary()}
		}
		p.advance()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return p.parsePostfix(e)
	}
	return p.parsePostfix(p.parsePrimary())
}

func (p *parser) parsePrimary() ast.Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.IDENT:
		name := p.tok.Lit
		p.advance()
		return &ast.Ident{P: pos, Name: name}
	case token.INT:
		lit := p.tok.Lit
		p.advance()
		w, v, err := ParseIntLit(lit)
		if err != nil {
			p.errorf(pos, "%v", err)
			v = big.NewInt(0)
		}
		return &ast.IntLit{P: pos, Width: w, Val: v}
	case token.KwTrue:
		p.advance()
		return &ast.BoolLit{P: pos, Val: true}
	case token.KwFalse:
		p.advance()
		return &ast.BoolLit{P: pos, Val: false}
	case token.KwDefault:
		p.advance()
		return &ast.DefaultExpr{P: pos}
	default:
		p.errorf(pos, "unexpected token %v in expression", p.tok)
		p.advance()
		return &ast.IntLit{P: pos, Val: big.NewInt(0)}
	}
}

func (p *parser) parsePostfix(e ast.Expr) ast.Expr {
	for {
		pos := p.tok.Pos
		switch p.tok.Kind {
		case token.DOT:
			p.advance()
			var name string
			switch p.tok.Kind {
			case token.IDENT:
				name = p.tok.Lit
				p.advance()
			case token.KwApply:
				name = "apply"
				p.advance()
			default:
				p.errorf(p.tok.Pos, "expected member name, found %v", p.tok)
				p.advance()
			}
			e = &ast.Member{P: pos, X: e, Name: name}
		case token.LBRACKET:
			p.advance()
			idx := p.parseExpr()
			p.expect(token.RBRACKET)
			e = &ast.IndexExpr{P: pos, X: e, Index: idx}
		case token.LPAREN:
			p.advance()
			call := &ast.CallExpr{P: pos, Fun: e}
			for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
				call.Args = append(call.Args, p.parseExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
			e = call
		default:
			return e
		}
	}
}
