package ast

import (
	"fmt"
	"strings"

	"bf4/internal/p4/token"
)

// Print renders the program back to P4 source. The output is not
// byte-identical to the input (comments and layout are normalized) but
// parses to an equivalent AST; bf4 uses it to emit fixed programs with the
// keys added by the Fixes algorithm.
func Print(p *Program) string {
	pr := &printer{}
	for i, d := range p.Decls {
		if i > 0 {
			pr.nl()
		}
		pr.decl(d)
	}
	return pr.b.String()
}

// PrintExpr renders a single expression.
func PrintExpr(e Expr) string {
	pr := &printer{}
	pr.expr(e, 0)
	return pr.b.String()
}

// PrintType renders a type reference.
func PrintType(t Type) string {
	pr := &printer{}
	pr.typ(t)
	return pr.b.String()
}

// PrintStmt renders a single statement.
func PrintStmt(s Stmt) string {
	pr := &printer{}
	pr.stmt(s)
	return strings.TrimRight(pr.b.String(), "\n")
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) w(s string)                        { p.b.WriteString(s) }
func (p *printer) f(format string, a ...interface{}) { fmt.Fprintf(&p.b, format, a...) }

func (p *printer) nl() {
	p.w("\n")
}

func (p *printer) line(s string) {
	p.w(strings.Repeat("    ", p.indent))
	p.w(s)
	p.nl()
}

func (p *printer) open(s string) {
	p.line(s + " {")
	p.indent++
}

func (p *printer) close(suffix string) {
	p.indent--
	p.line("}" + suffix)
}

func (p *printer) typ(t Type) {
	switch x := t.(type) {
	case *BitType:
		p.f("bit<%d>", x.Width)
	case *BoolType:
		p.w("bool")
	case *NamedType:
		p.w(x.Name)
	case *StackType:
		p.typ(x.Elem)
		p.f("[%d]", x.Size)
	default:
		p.w("/*?type?*/")
	}
}

func (p *printer) params(params []*Param) {
	p.w("(")
	for i, pa := range params {
		if i > 0 {
			p.w(", ")
		}
		if pa.Dir != "" {
			p.w(pa.Dir + " ")
		}
		p.typ(pa.Type)
		p.w(" " + pa.Name)
	}
	p.w(")")
}

func (p *printer) decl(d Decl) {
	ind := strings.Repeat("    ", p.indent)
	switch x := d.(type) {
	case *HeaderDecl:
		p.open("header " + x.Name)
		for _, f := range x.Fields {
			p.w(strings.Repeat("    ", p.indent))
			p.typ(f.Type)
			p.w(" " + f.Name + ";")
			p.nl()
		}
		p.close("")
	case *StructDecl:
		p.open("struct " + x.Name)
		for _, f := range x.Fields {
			p.w(strings.Repeat("    ", p.indent))
			p.typ(f.Type)
			p.w(" " + f.Name + ";")
			p.nl()
		}
		p.close("")
	case *TypedefDecl:
		p.w(ind + "typedef ")
		p.typ(x.Type)
		p.w(" " + x.Name + ";")
		p.nl()
	case *ConstDecl:
		p.w(ind + "const ")
		p.typ(x.Type)
		p.w(" " + x.Name + " = ")
		p.expr(x.Value, 0)
		p.w(";")
		p.nl()
	case *ParserDecl:
		p.w(ind + "parser " + x.Name)
		p.params(x.Params)
		p.w(" {")
		p.nl()
		p.indent++
		for _, l := range x.Locals {
			p.decl(l)
		}
		for _, st := range x.States {
			p.open("state " + st.Name)
			for _, s := range st.Stmts {
				p.stmt(s)
			}
			if st.Trans != nil {
				p.transition(st.Trans)
			}
			p.close("")
		}
		p.close("")
	case *ControlDecl:
		p.w(ind + "control " + x.Name)
		p.params(x.Params)
		p.w(" {")
		p.nl()
		p.indent++
		for _, l := range x.Locals {
			p.decl(l)
		}
		p.open("apply")
		for _, s := range x.Apply.Stmts {
			p.stmt(s)
		}
		p.close("")
		p.close("")
	case *ActionDecl:
		p.w(ind + "action " + x.Name)
		p.params(x.Params)
		p.w(" {")
		p.nl()
		p.indent++
		for _, s := range x.Body.Stmts {
			p.stmt(s)
		}
		p.close("")
	case *TableDecl:
		p.open("table " + x.Name)
		if len(x.Keys) > 0 {
			p.open("key =")
			for _, k := range x.Keys {
				p.w(strings.Repeat("    ", p.indent))
				p.expr(k.Expr, 0)
				p.w(": " + k.MatchKind + ";")
				p.nl()
			}
			p.close("")
		}
		p.open("actions =")
		for _, a := range x.Actions {
			p.line(a.Name + ";")
		}
		p.close("")
		if x.Default != nil {
			p.w(strings.Repeat("    ", p.indent))
			p.w("default_action = " + x.Default.Name + "(")
			for i, a := range x.Default.Args {
				if i > 0 {
					p.w(", ")
				}
				p.expr(a, 0)
			}
			p.w(");")
			p.nl()
		}
		if x.Size > 0 {
			p.line(fmt.Sprintf("size = %d;", x.Size))
		}
		p.close("")
	case *RegisterDecl:
		p.w(ind + "register<")
		p.typ(x.ElemType)
		p.f(">(%d) %s;", x.Size, x.Name)
		p.nl()
	case *VarDecl:
		p.w(ind)
		p.typ(x.Type)
		p.w(" " + x.Name)
		if x.Init != nil {
			p.w(" = ")
			p.expr(x.Init, 0)
		}
		p.w(";")
		p.nl()
	case *InstantiationDecl:
		p.w(ind + x.TypeName + "(")
		for i, a := range x.Args {
			if i > 0 {
				p.w(", ")
			}
			p.expr(a, 0)
		}
		p.w(") " + x.Name + ";")
		p.nl()
	default:
		p.line(fmt.Sprintf("/* unprintable decl %T */", d))
	}
}

func (p *printer) transition(t *Transition) {
	ind := strings.Repeat("    ", p.indent)
	if t.Select == nil {
		p.line("transition " + t.Next + ";")
		return
	}
	p.w(ind + "transition select(")
	for i, e := range t.Select.Exprs {
		if i > 0 {
			p.w(", ")
		}
		p.expr(e, 0)
	}
	p.w(") {")
	p.nl()
	p.indent++
	for _, c := range t.Select.Cases {
		p.w(strings.Repeat("    ", p.indent))
		if len(c.Values) > 1 {
			p.w("(")
		}
		for i, v := range c.Values {
			if i > 0 {
				p.w(", ")
			}
			p.expr(v, 0)
		}
		if len(c.Values) > 1 {
			p.w(")")
		}
		p.w(": " + c.Next + ";")
		p.nl()
	}
	p.close("")
}

func (p *printer) stmt(s Stmt) {
	ind := strings.Repeat("    ", p.indent)
	switch x := s.(type) {
	case *AssignStmt:
		p.w(ind)
		p.expr(x.LHS, 0)
		p.w(" = ")
		p.expr(x.RHS, 0)
		p.w(";")
		p.nl()
	case *CallStmt:
		p.w(ind)
		p.expr(x.Call, 0)
		p.w(";")
		p.nl()
	case *IfStmt:
		p.w(ind + "if (")
		p.expr(x.Cond, 0)
		p.w(") {")
		p.nl()
		p.indent++
		for _, st := range x.Then.Stmts {
			p.stmt(st)
		}
		p.indent--
		switch e := x.Else.(type) {
		case nil:
			p.line("}")
		case *BlockStmt:
			p.line("} else {")
			p.indent++
			for _, st := range e.Stmts {
				p.stmt(st)
			}
			p.close("")
		case *IfStmt:
			p.w(ind + "} else ")
			// Render nested else-if without its leading indent.
			sub := &printer{indent: p.indent}
			sub.stmt(e)
			p.w(strings.TrimPrefix(sub.b.String(), ind))
		}
	case *BlockStmt:
		p.open("")
		for _, st := range x.Stmts {
			p.stmt(st)
		}
		p.close("")
	case *SwitchStmt:
		p.w(ind + "switch (")
		p.expr(x.Table, 0)
		p.w(".apply().action_run) {")
		p.nl()
		p.indent++
		for _, c := range x.Cases {
			label := c.Label
			if label == "" {
				label = "default"
			}
			if c.Body == nil {
				p.line(label + ":")
				continue
			}
			p.open(label + ":")
			for _, st := range c.Body.Stmts {
				p.stmt(st)
			}
			p.close("")
		}
		p.close("")
	case *ExitStmt:
		p.line("exit;")
	case *ReturnStmt:
		p.line("return;")
	case *VarDeclStmt:
		p.decl(x.Decl)
	case *EmptyStmt:
		p.line(";")
	default:
		p.line(fmt.Sprintf("/* unprintable stmt %T */", s))
	}
}

// precedence for parenthesization decisions.
func prec(op token.Kind) int {
	switch op {
	case token.OR:
		return 1
	case token.AND:
		return 2
	case token.EQ, token.NEQ:
		return 3
	case token.LANGLE, token.RANGLE, token.LEQ, token.GEQ:
		return 4
	case token.PIPE:
		return 5
	case token.CARET:
		return 6
	case token.AMP:
		return 7
	case token.SHL, token.SHR:
		return 8
	case token.PLUS, token.MINUS, token.PLUSPLUS:
		return 9
	case token.STAR, token.SLASH, token.PERCENT:
		return 10
	default:
		return 11
	}
}

func (p *printer) expr(e Expr, parentPrec int) {
	switch x := e.(type) {
	case *Ident:
		p.w(x.Name)
	case *Member:
		p.expr(x.X, 12)
		p.w("." + x.Name)
	case *IndexExpr:
		p.expr(x.X, 12)
		p.w("[")
		p.expr(x.Index, 0)
		p.w("]")
	case *CallExpr:
		p.expr(x.Fun, 12)
		p.w("(")
		for i, a := range x.Args {
			if i > 0 {
				p.w(", ")
			}
			p.expr(a, 0)
		}
		p.w(")")
	case *IntLit:
		if x.Width > 0 {
			p.f("%dw%s", x.Width, x.Val.String())
		} else {
			p.w(x.Val.String())
		}
	case *BoolLit:
		if x.Val {
			p.w("true")
		} else {
			p.w("false")
		}
	case *UnaryExpr:
		p.w(x.Op.String())
		p.expr(x.X, 11)
	case *BinaryExpr:
		pr := prec(x.Op)
		if pr < parentPrec {
			p.w("(")
		}
		p.expr(x.X, pr)
		p.w(" " + x.Op.String() + " ")
		p.expr(x.Y, pr+1)
		if pr < parentPrec {
			p.w(")")
		}
	case *CastExpr:
		p.w("(")
		p.typ(x.Type)
		p.w(")")
		p.expr(x.X, 11)
	case *TernaryExpr:
		if parentPrec > 0 {
			p.w("(")
		}
		p.expr(x.Cond, 1)
		p.w(" ? ")
		p.expr(x.Then, 1)
		p.w(" : ")
		p.expr(x.Else, 0)
		if parentPrec > 0 {
			p.w(")")
		}
	case *DefaultExpr:
		p.w("default")
	default:
		p.f("/* unprintable expr %T */", e)
	}
}
