// Package ast defines the abstract syntax tree for bf4's P4-16 subset.
// The subset covers everything the benchmark corpus uses: headers, structs,
// typedefs, constants, parsers with select transitions and header stacks,
// controls with actions, tables (exact/ternary/lpm keys), registers,
// V1Model intrinsics, and the V1Switch package instantiation.
package ast

import (
	"math/big"

	"bf4/internal/p4/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------- types

// Type is a syntactic type reference.
type Type interface {
	Node
	typeNode()
}

// BitType is bit<Width>.
type BitType struct {
	P     token.Pos
	Width int
}

// BoolType is bool.
type BoolType struct {
	P token.Pos
}

// NamedType refers to a typedef, header, struct or extern type by name.
type NamedType struct {
	P    token.Pos
	Name string
}

// StackType is a header stack type: Elem[Size].
type StackType struct {
	P    token.Pos
	Elem Type
	Size int
}

func (t *BitType) Pos() token.Pos   { return t.P }
func (t *BoolType) Pos() token.Pos  { return t.P }
func (t *NamedType) Pos() token.Pos { return t.P }
func (t *StackType) Pos() token.Pos { return t.P }
func (*BitType) typeNode()          {}
func (*BoolType) typeNode()         {}
func (*NamedType) typeNode()        {}
func (*StackType) typeNode()        {}

// ---------------------------------------------------------------- decls

// Program is a parsed compilation unit.
type Program struct {
	Decls []Decl
}

// Decl is a top-level or control-local declaration.
type Decl interface {
	Node
	declNode()
}

// Field is a header or struct field. Annots holds the names of the
// annotations attached to the field (e.g. "sensitive" for @sensitive);
// arguments are discarded.
type Field struct {
	P      token.Pos
	Name   string
	Type   Type
	Annots []string
}

func (f *Field) Pos() token.Pos { return f.P }

// HeaderDecl declares a header type.
type HeaderDecl struct {
	P      token.Pos
	Name   string
	Fields []*Field
}

// StructDecl declares a struct type (metadata bundles, the `headers`
// struct, etc.).
type StructDecl struct {
	P      token.Pos
	Name   string
	Fields []*Field
}

// TypedefDecl declares a type alias.
type TypedefDecl struct {
	P    token.Pos
	Name string
	Type Type
}

// ConstDecl declares a compile-time constant.
type ConstDecl struct {
	P     token.Pos
	Name  string
	Type  Type
	Value Expr
}

// Param is a parser/control/action parameter. Dir is "", "in", "out" or
// "inout".
type Param struct {
	P    token.Pos
	Dir  string
	Name string
	Type Type
}

func (p *Param) Pos() token.Pos { return p.P }

// ParserDecl declares a parser with its states.
type ParserDecl struct {
	P      token.Pos
	Name   string
	Params []*Param
	Locals []Decl
	States []*StateDecl
}

// StateDecl is one parser state.
type StateDecl struct {
	P     token.Pos
	Name  string
	Stmts []Stmt
	Trans *Transition // nil means implicit transition to reject
}

func (s *StateDecl) Pos() token.Pos { return s.P }

// Transition is a parser state transition: either a direct jump or a
// select expression.
type Transition struct {
	P      token.Pos
	Next   string // direct transition target ("" if Select != nil)
	Select *SelectExpr
}

func (t *Transition) Pos() token.Pos { return t.P }

// SelectExpr is select(e1, e2, ...) { cases }.
type SelectExpr struct {
	P     token.Pos
	Exprs []Expr
	Cases []*SelectCase
}

func (s *SelectExpr) Pos() token.Pos { return s.P }

// SelectCase is one arm of a select. Values holds one expression per
// select key; a DefaultExpr value matches anything.
type SelectCase struct {
	P      token.Pos
	Values []Expr
	Next   string
}

func (s *SelectCase) Pos() token.Pos { return s.P }

// ControlDecl declares a control block with local declarations (actions,
// tables, registers, variables) and an apply block.
type ControlDecl struct {
	P      token.Pos
	Name   string
	Params []*Param
	Locals []Decl
	Apply  *BlockStmt
}

// ActionDecl declares an action.
type ActionDecl struct {
	P      token.Pos
	Name   string
	Params []*Param
	Body   *BlockStmt
}

// TableKey is one key of a table: an expression and its match kind
// (exact, ternary or lpm).
type TableKey struct {
	P         token.Pos
	Expr      Expr
	MatchKind string
}

func (k *TableKey) Pos() token.Pos { return k.P }

// ActionRef references an action in a table's action list or default.
type ActionRef struct {
	P    token.Pos
	Name string
	Args []Expr
}

func (a *ActionRef) Pos() token.Pos { return a.P }

// TableDecl declares a match-action table.
type TableDecl struct {
	P       token.Pos
	Name    string
	Keys    []*TableKey
	Actions []*ActionRef
	Default *ActionRef // nil if unspecified
	Size    int        // 0 if unspecified
}

// RegisterDecl declares a register extern instance:
// register<bit<W>>(size) name;
type RegisterDecl struct {
	P        token.Pos
	Name     string
	ElemType Type
	Size     int
}

// VarDecl declares a local variable, optionally initialized.
type VarDecl struct {
	P    token.Pos
	Name string
	Type Type
	Init Expr // may be nil
}

// InstantiationDecl is a package or extern instantiation, most importantly
// V1Switch(Parser(), VerifyChecksum(), Ingress(), Egress(),
// ComputeChecksum(), Deparser()) main;
type InstantiationDecl struct {
	P        token.Pos
	TypeName string
	Args     []Expr
	Name     string
}

func (d *HeaderDecl) Pos() token.Pos        { return d.P }
func (d *StructDecl) Pos() token.Pos        { return d.P }
func (d *TypedefDecl) Pos() token.Pos       { return d.P }
func (d *ConstDecl) Pos() token.Pos         { return d.P }
func (d *ParserDecl) Pos() token.Pos        { return d.P }
func (d *ControlDecl) Pos() token.Pos       { return d.P }
func (d *ActionDecl) Pos() token.Pos        { return d.P }
func (d *TableDecl) Pos() token.Pos         { return d.P }
func (d *RegisterDecl) Pos() token.Pos      { return d.P }
func (d *VarDecl) Pos() token.Pos           { return d.P }
func (d *InstantiationDecl) Pos() token.Pos { return d.P }

func (*HeaderDecl) declNode()        {}
func (*StructDecl) declNode()        {}
func (*TypedefDecl) declNode()       {}
func (*ConstDecl) declNode()         {}
func (*ParserDecl) declNode()        {}
func (*ControlDecl) declNode()       {}
func (*ActionDecl) declNode()        {}
func (*TableDecl) declNode()         {}
func (*RegisterDecl) declNode()      {}
func (*VarDecl) declNode()           {}
func (*InstantiationDecl) declNode() {}

// ---------------------------------------------------------------- stmts

// Stmt is a statement.
type Stmt interface {
	Node
	stmtNode()
}

// AssignStmt is lhs = rhs;
type AssignStmt struct {
	P        token.Pos
	LHS, RHS Expr
}

// CallStmt is an expression statement consisting of a call, e.g.
// t.apply(); mark_to_drop(standard_metadata); hdr.ipv4.setValid();
type CallStmt struct {
	P    token.Pos
	Call *CallExpr
}

// IfStmt is if (cond) then [else else]; Else is *BlockStmt, *IfStmt or nil.
type IfStmt struct {
	P    token.Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt
}

// BlockStmt is { stmts }.
type BlockStmt struct {
	P     token.Pos
	Stmts []Stmt
}

// SwitchStmt is switch (t.apply().action_run) { cases }. The only switch
// form in P4-16 and in this subset.
type SwitchStmt struct {
	P     token.Pos
	Table Expr // the table.apply() call's receiver (a table name Ident)
	Cases []*SwitchCase
}

// SwitchCase is one arm of a switch. Label is an action name, or "" for
// default. A nil Body denotes a fall-through label.
type SwitchCase struct {
	P     token.Pos
	Label string
	Body  *BlockStmt
}

func (c *SwitchCase) Pos() token.Pos { return c.P }

// ExitStmt terminates pipeline processing.
type ExitStmt struct {
	P token.Pos
}

// ReturnStmt returns from the current control/action.
type ReturnStmt struct {
	P token.Pos
}

// VarDeclStmt wraps a local variable declaration in statement position.
type VarDeclStmt struct {
	Decl *VarDecl
}

// EmptyStmt is a stray semicolon.
type EmptyStmt struct {
	P token.Pos
}

func (s *AssignStmt) Pos() token.Pos  { return s.P }
func (s *CallStmt) Pos() token.Pos    { return s.P }
func (s *IfStmt) Pos() token.Pos      { return s.P }
func (s *BlockStmt) Pos() token.Pos   { return s.P }
func (s *SwitchStmt) Pos() token.Pos  { return s.P }
func (s *ExitStmt) Pos() token.Pos    { return s.P }
func (s *ReturnStmt) Pos() token.Pos  { return s.P }
func (s *VarDeclStmt) Pos() token.Pos { return s.Decl.P }
func (s *EmptyStmt) Pos() token.Pos   { return s.P }

func (*AssignStmt) stmtNode()  {}
func (*CallStmt) stmtNode()    {}
func (*IfStmt) stmtNode()      {}
func (*BlockStmt) stmtNode()   {}
func (*SwitchStmt) stmtNode()  {}
func (*ExitStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()  {}
func (*VarDeclStmt) stmtNode() {}
func (*EmptyStmt) stmtNode()   {}

// ---------------------------------------------------------------- exprs

// Expr is an expression.
type Expr interface {
	Node
	exprNode()
}

// Ident is a bare identifier.
type Ident struct {
	P    token.Pos
	Name string
}

// Member is x.name (field access, header access, or method selection).
type Member struct {
	P    token.Pos
	X    Expr
	Name string
}

// IndexExpr is x[i] (header stack indexing or register-style access).
type IndexExpr struct {
	P     token.Pos
	X     Expr
	Index Expr
}

// CallExpr is fun(args...). fun is an Ident (extern/action) or Member
// (method such as isValid/apply/extract/read/write).
type CallExpr struct {
	P    token.Pos
	Fun  Expr
	Args []Expr
}

// IntLit is an integer literal. Width is 0 for unsized literals.
type IntLit struct {
	P     token.Pos
	Width int
	Val   *big.Int
}

// BoolLit is true or false.
type BoolLit struct {
	P   token.Pos
	Val bool
}

// UnaryExpr is op x, with Op one of MINUS, TILDE, NOT.
type UnaryExpr struct {
	P  token.Pos
	Op token.Kind
	X  Expr
}

// BinaryExpr is x op y.
type BinaryExpr struct {
	P    token.Pos
	Op   token.Kind
	X, Y Expr
}

// CastExpr is (type) x.
type CastExpr struct {
	P    token.Pos
	Type Type
	X    Expr
}

// TernaryExpr is cond ? a : b.
type TernaryExpr struct {
	P                token.Pos
	Cond, Then, Else Expr
}

// DefaultExpr is the `default` keyword in a select case.
type DefaultExpr struct {
	P token.Pos
}

func (e *Ident) Pos() token.Pos       { return e.P }
func (e *Member) Pos() token.Pos      { return e.P }
func (e *IndexExpr) Pos() token.Pos   { return e.P }
func (e *CallExpr) Pos() token.Pos    { return e.P }
func (e *IntLit) Pos() token.Pos      { return e.P }
func (e *BoolLit) Pos() token.Pos     { return e.P }
func (e *UnaryExpr) Pos() token.Pos   { return e.P }
func (e *BinaryExpr) Pos() token.Pos  { return e.P }
func (e *CastExpr) Pos() token.Pos    { return e.P }
func (e *TernaryExpr) Pos() token.Pos { return e.P }
func (e *DefaultExpr) Pos() token.Pos { return e.P }

func (*Ident) exprNode()       {}
func (*Member) exprNode()      {}
func (*IndexExpr) exprNode()   {}
func (*CallExpr) exprNode()    {}
func (*IntLit) exprNode()      {}
func (*BoolLit) exprNode()     {}
func (*UnaryExpr) exprNode()   {}
func (*BinaryExpr) exprNode()  {}
func (*CastExpr) exprNode()    {}
func (*TernaryExpr) exprNode() {}
func (*DefaultExpr) exprNode() {}

// PathString renders a member/index/ident chain as a dotted path, e.g.
// "hdr.ipv4.ttl" or "hdr.vlan_tag_[0].pcp". Returns "" for expressions
// that are not simple paths.
func PathString(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *Member:
		base := PathString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Name
	case *IndexExpr:
		base := PathString(x.X)
		if base == "" {
			return ""
		}
		if lit, ok := x.Index.(*IntLit); ok {
			return base + "[" + lit.Val.String() + "]"
		}
		return ""
	case *CallExpr:
		// isValid() in key position: hdr.x.isValid()
		if m, ok := x.Fun.(*Member); ok && len(x.Args) == 0 {
			base := PathString(m.X)
			if base == "" {
				return ""
			}
			return base + "." + m.Name + "()"
		}
		return ""
	default:
		return ""
	}
}
