package ast

import (
	"math/big"
	"strings"
	"testing"

	"bf4/internal/p4/token"
)

func TestPathString(t *testing.T) {
	hdr := &Ident{Name: "hdr"}
	ipv4 := &Member{X: hdr, Name: "ipv4"}
	cases := []struct {
		expr Expr
		want string
	}{
		{hdr, "hdr"},
		{ipv4, "hdr.ipv4"},
		{&Member{X: ipv4, Name: "ttl"}, "hdr.ipv4.ttl"},
		{&IndexExpr{X: &Member{X: hdr, Name: "vlan"}, Index: &IntLit{Val: big.NewInt(1)}}, "hdr.vlan[1]"},
		{&CallExpr{Fun: &Member{X: ipv4, Name: "isValid"}}, "hdr.ipv4.isValid()"},
		// Non-paths degrade to "".
		{&BinaryExpr{Op: token.PLUS, X: hdr, Y: hdr}, ""},
		{&CallExpr{Fun: &Member{X: ipv4, Name: "isValid"}, Args: []Expr{hdr}}, ""},
		{&IndexExpr{X: hdr, Index: hdr}, ""},
	}
	for _, c := range cases {
		if got := PathString(c.expr); got != c.want {
			t.Errorf("PathString = %q, want %q", got, c.want)
		}
	}
}

func TestPrintExprForms(t *testing.T) {
	a, b := &Ident{Name: "a"}, &Ident{Name: "b"}
	cases := []struct {
		expr Expr
		want string
	}{
		{&IntLit{Width: 8, Val: big.NewInt(255)}, "8w255"},
		{&IntLit{Val: big.NewInt(7)}, "7"},
		{&BoolLit{Val: true}, "true"},
		{&UnaryExpr{Op: token.NOT, X: a}, "!a"},
		{&BinaryExpr{Op: token.PLUS, X: a, Y: b}, "a + b"},
		{&CastExpr{Type: &BitType{Width: 9}, X: a}, "(bit<9>)a"},
		{&TernaryExpr{Cond: a, Then: b, Else: a}, "a ? b : a"},
		{&DefaultExpr{}, "default"},
		// Nested precedence: (a + b) * b needs parens.
		{&BinaryExpr{Op: token.STAR, X: &BinaryExpr{Op: token.PLUS, X: a, Y: b}, Y: b}, "(a + b) * b"},
	}
	for _, c := range cases {
		if got := PrintExpr(c.expr); got != c.want {
			t.Errorf("PrintExpr = %q, want %q", got, c.want)
		}
	}
}

func TestPrintType(t *testing.T) {
	if got := PrintType(&BitType{Width: 48}); got != "bit<48>" {
		t.Errorf("got %q", got)
	}
	if got := PrintType(&BoolType{}); got != "bool" {
		t.Errorf("got %q", got)
	}
	if got := PrintType(&StackType{Elem: &NamedType{Name: "vlan_t"}, Size: 2}); got != "vlan_t[2]" {
		t.Errorf("got %q", got)
	}
}

func TestPrintStmt(t *testing.T) {
	s := &IfStmt{
		Cond: &Ident{Name: "c"},
		Then: &BlockStmt{Stmts: []Stmt{
			&AssignStmt{LHS: &Ident{Name: "x"}, RHS: &IntLit{Width: 8, Val: big.NewInt(1)}},
		}},
		Else: &BlockStmt{Stmts: []Stmt{&ExitStmt{}}},
	}
	out := PrintStmt(s)
	for _, want := range []string{"if (c)", "x = 8w1;", "exit;", "} else {"} {
		if !strings.Contains(out, want) {
			t.Errorf("PrintStmt lacks %q:\n%s", want, out)
		}
	}
}

func TestPrintTableWithSynthesizedKey(t *testing.T) {
	prog := &Program{Decls: []Decl{
		&ControlDecl{
			Name:   "c",
			Params: []*Param{{Dir: "inout", Name: "hdr", Type: &NamedType{Name: "headers"}}},
			Locals: []Decl{
				&TableDecl{
					Name: "t",
					Keys: []*TableKey{
						{Expr: &Member{X: &Ident{Name: "hdr"}, Name: "f"}, MatchKind: "exact"},
						{Expr: &CallExpr{Fun: &Member{X: &Member{X: &Ident{Name: "hdr"}, Name: "h"}, Name: "isValid"}}, MatchKind: "exact"},
					},
					Actions: []*ActionRef{{Name: "NoAction"}},
					Size:    64,
				},
			},
			Apply: &BlockStmt{},
		},
	}}
	out := Print(prog)
	for _, want := range []string{"hdr.f: exact;", "hdr.h.isValid(): exact;", "size = 64;"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print lacks %q:\n%s", want, out)
		}
	}
}
