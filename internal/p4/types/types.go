// Package types implements name resolution and type checking for bf4's
// P4-16 subset, in the role p4c's midend plays for the paper's
// implementation. It resolves typedefs, injects the V1Model builtins
// (standard_metadata_t, packet_in/out, mark_to_drop, NoAction, ...),
// assigns a semantic type to every expression, and identifies the V1Switch
// pipeline (parser, ingress, egress, deparser) that the verifier stitches
// together.
package types

import (
	"errors"
	"fmt"
	"math/big"
	"strings"

	"bf4/internal/p4/ast"
)

// Type is the semantic type of an expression.
type Type interface {
	String() string
}

// BitsType is bit<Width>.
type BitsType struct {
	Width int
}

// BoolT is the boolean type.
type BoolT struct{}

// InfIntType is the type of unsized integer literals, coercible to any
// BitsType.
type InfIntType struct{}

// HeaderT is a header instance type.
type HeaderT struct {
	Decl *ast.HeaderDecl
}

// StructT is a struct instance type.
type StructT struct {
	Decl *ast.StructDecl
}

// StackT is a header stack type.
type StackT struct {
	Elem *HeaderT
	Size int
}

// TableT is the type of a table name.
type TableT struct {
	Decl *ast.TableDecl
}

// ActionT is the type of an action name.
type ActionT struct {
	Decl *ast.ActionDecl
}

// RegisterT is a register extern instance.
type RegisterT struct {
	Decl      *ast.RegisterDecl
	ElemWidth int
}

// ExternT is an opaque extern object (packet_in, packet_out).
type ExternT struct {
	Name string
}

// VoidT is the type of calls used as statements.
type VoidT struct{}

func (t *BitsType) String() string { return fmt.Sprintf("bit<%d>", t.Width) }
func (*BoolT) String() string      { return "bool" }
func (*InfIntType) String() string { return "int" }
func (t *HeaderT) String() string  { return "header " + t.Decl.Name }
func (t *StructT) String() string  { return "struct " + t.Decl.Name }
func (t *StackT) String() string   { return fmt.Sprintf("%s[%d]", t.Elem.Decl.Name, t.Size) }
func (t *TableT) String() string   { return "table " + t.Decl.Name }
func (t *ActionT) String() string  { return "action " + t.Decl.Name }
func (t *RegisterT) String() string {
	return fmt.Sprintf("register<bit<%d>>(%d)", t.ElemWidth, t.Decl.Size)
}
func (t *ExternT) String() string { return "extern " + t.Name }
func (*VoidT) String() string     { return "void" }

// WidthOf returns the bit width of t, treating bool as width 1; returns 0
// for non-scalar types.
func WidthOf(t Type) int {
	switch x := t.(type) {
	case *BitsType:
		return x.Width
	case *BoolT:
		return 1
	default:
		return 0
	}
}

// Pipeline identifies the V1Model blocks of a program.
type Pipeline struct {
	Parser   *ast.ParserDecl
	Ingress  *ast.ControlDecl
	Egress   *ast.ControlDecl
	Deparser *ast.ControlDecl
	// Checksum controls, present when the program instantiates all six
	// V1Switch arguments; ignored by the verifier.
	VerifyChecksum  *ast.ControlDecl
	ComputeChecksum *ast.ControlDecl
}

// Scope resolves names within one parser or control.
type Scope struct {
	Owner     ast.Decl // *ast.ParserDecl or *ast.ControlDecl
	Params    map[string]*ast.Param
	Actions   map[string]*ast.ActionDecl
	Tables    map[string]*ast.TableDecl
	Registers map[string]*ast.RegisterDecl
	Vars      map[string]*ast.VarDecl
}

// Info is the result of type checking.
type Info struct {
	Types    map[ast.Expr]Type
	Headers  map[string]*ast.HeaderDecl
	Structs  map[string]*ast.StructDecl
	Typedefs map[string]ast.Type
	Consts   map[string]*ConstVal
	Scopes   map[ast.Decl]*Scope // keyed by *ParserDecl / *ControlDecl
	Pipeline Pipeline

	errs []error
}

// ConstVal is the evaluated value of a const declaration.
type ConstVal struct {
	Width int
	Val   *big.Int
}

// standardMetadata is the builtin v1model standard_metadata_t.
var standardMetadata = &ast.StructDecl{
	Name: "standard_metadata_t",
	Fields: []*ast.Field{
		{Name: "ingress_port", Type: &ast.BitType{Width: 9}},
		{Name: "egress_spec", Type: &ast.BitType{Width: 9}},
		{Name: "egress_port", Type: &ast.BitType{Width: 9}},
		{Name: "instance_type", Type: &ast.BitType{Width: 32}},
		{Name: "packet_length", Type: &ast.BitType{Width: 32}},
		{Name: "enq_timestamp", Type: &ast.BitType{Width: 32}},
		{Name: "enq_qdepth", Type: &ast.BitType{Width: 19}},
		{Name: "deq_timedelta", Type: &ast.BitType{Width: 32}},
		{Name: "deq_qdepth", Type: &ast.BitType{Width: 19}},
		{Name: "ingress_global_timestamp", Type: &ast.BitType{Width: 48}},
		{Name: "egress_global_timestamp", Type: &ast.BitType{Width: 48}},
		{Name: "mcast_grp", Type: &ast.BitType{Width: 16}},
		{Name: "egress_rid", Type: &ast.BitType{Width: 16}},
		{Name: "checksum_error", Type: &ast.BitType{Width: 1}},
		{Name: "priority", Type: &ast.BitType{Width: 3}},
	},
}

// NoAction is the builtin empty action.
var NoAction = &ast.ActionDecl{Name: "NoAction", Body: &ast.BlockStmt{}}

// Builtin extern functions callable as statements; all are modelled as
// no-ops or havoc by the IR builder.
var builtinFuncs = map[string]bool{
	"mark_to_drop": true, "random": true, "hash": true, "digest": true,
	"clone": true, "clone3": true, "resubmit": true, "recirculate": true,
	"truncate": true, "verify_checksum": true, "update_checksum": true,
	"verify_checksum_with_payload": true, "update_checksum_with_payload": true,
	"log_msg": true, "assert": true, "assume": true,
}

func (in *Info) errorf(n ast.Node, format string, args ...interface{}) {
	if len(in.errs) < 50 {
		pos := ""
		if n != nil && n.Pos().IsValid() {
			pos = n.Pos().String() + ": "
		}
		in.errs = append(in.errs, fmt.Errorf("%s%s", pos, fmt.Sprintf(format, args...)))
	}
}

// Check type-checks the program.
func Check(prog *ast.Program) (*Info, error) {
	in := &Info{
		Types:    make(map[ast.Expr]Type),
		Headers:  make(map[string]*ast.HeaderDecl),
		Structs:  make(map[string]*ast.StructDecl),
		Typedefs: make(map[string]ast.Type),
		Consts:   make(map[string]*ConstVal),
		Scopes:   make(map[ast.Decl]*Scope),
	}
	in.Structs[standardMetadata.Name] = standardMetadata

	// Pass 1: collect type and const declarations.
	for _, d := range prog.Decls {
		switch x := d.(type) {
		case *ast.HeaderDecl:
			if _, dup := in.Headers[x.Name]; dup {
				in.errorf(x, "duplicate header %s", x.Name)
			}
			in.Headers[x.Name] = x
		case *ast.StructDecl:
			if _, dup := in.Structs[x.Name]; dup && x != standardMetadata {
				in.errorf(x, "duplicate struct %s", x.Name)
			}
			in.Structs[x.Name] = x
		case *ast.TypedefDecl:
			in.Typedefs[x.Name] = x.Type
		case *ast.ConstDecl:
			w := 0
			if bt, ok := in.resolveAST(x.Type).(*ast.BitType); ok {
				w = bt.Width
			}
			v := in.constEval(x.Value)
			if v == nil {
				in.errorf(x, "const %s: initializer is not a constant expression", x.Name)
				v = big.NewInt(0)
			}
			in.Consts[x.Name] = &ConstVal{Width: w, Val: v}
		}
	}

	// Pass 1.5: validate that all field types resolve.
	for _, d := range prog.Decls {
		switch x := d.(type) {
		case *ast.HeaderDecl:
			for _, f := range x.Fields {
				in.ResolveType(f.Type)
			}
		case *ast.StructDecl:
			for _, f := range x.Fields {
				in.ResolveType(f.Type)
			}
		}
	}

	// Pass 2: build scopes and check bodies.
	for _, d := range prog.Decls {
		switch x := d.(type) {
		case *ast.ParserDecl:
			in.checkParser(x)
		case *ast.ControlDecl:
			in.checkControl(x)
		}
	}

	in.resolvePipeline(prog)

	if len(in.errs) > 0 {
		msgs := make([]string, len(in.errs))
		for i, e := range in.errs {
			msgs[i] = e.Error()
		}
		return in, errors.New(strings.Join(msgs, "\n"))
	}
	return in, nil
}

// resolveAST resolves typedef chains at the syntax level.
func (in *Info) resolveAST(t ast.Type) ast.Type {
	for i := 0; i < 32; i++ {
		nt, ok := t.(*ast.NamedType)
		if !ok {
			return t
		}
		under, ok := in.Typedefs[nt.Name]
		if !ok {
			return t
		}
		t = under
	}
	return t
}

// ResolveType converts a syntactic type to a semantic one.
func (in *Info) ResolveType(t ast.Type) Type {
	switch x := in.resolveAST(t).(type) {
	case *ast.BitType:
		return &BitsType{Width: x.Width}
	case *ast.BoolType:
		return &BoolT{}
	case *ast.StackType:
		elem := in.ResolveType(x.Elem)
		h, ok := elem.(*HeaderT)
		if !ok {
			in.errorf(x, "header stack element must be a header type")
			return &VoidT{}
		}
		return &StackT{Elem: h, Size: x.Size}
	case *ast.NamedType:
		if h, ok := in.Headers[x.Name]; ok {
			return &HeaderT{Decl: h}
		}
		if s, ok := in.Structs[x.Name]; ok {
			return &StructT{Decl: s}
		}
		switch x.Name {
		case "packet_in", "packet_out":
			return &ExternT{Name: x.Name}
		}
		in.errorf(x, "unknown type %s", x.Name)
		return &VoidT{}
	default:
		in.errorf(t, "unsupported type")
		return &VoidT{}
	}
}

// constEval evaluates a constant expression, or returns nil.
func (in *Info) constEval(e ast.Expr) *big.Int {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Val
	case *ast.BoolLit:
		if x.Val {
			return big.NewInt(1)
		}
		return big.NewInt(0)
	case *ast.Ident:
		if c, ok := in.Consts[x.Name]; ok {
			return c.Val
		}
		return nil
	case *ast.UnaryExpr:
		v := in.constEval(x.X)
		if v == nil {
			return nil
		}
		switch x.Op.String() {
		case "-":
			return new(big.Int).Neg(v)
		case "~":
			return new(big.Int).Not(v)
		}
		return nil
	case *ast.BinaryExpr:
		a, b := in.constEval(x.X), in.constEval(x.Y)
		if a == nil || b == nil {
			return nil
		}
		switch x.Op.String() {
		case "+":
			return new(big.Int).Add(a, b)
		case "-":
			return new(big.Int).Sub(a, b)
		case "*":
			return new(big.Int).Mul(a, b)
		case "<<":
			return new(big.Int).Lsh(a, uint(b.Uint64()))
		case ">>":
			return new(big.Int).Rsh(a, uint(b.Uint64()))
		case "&":
			return new(big.Int).And(a, b)
		case "|":
			return new(big.Int).Or(a, b)
		case "^":
			return new(big.Int).Xor(a, b)
		}
		return nil
	case *ast.CastExpr:
		return in.constEval(x.X)
	default:
		return nil
	}
}

func (in *Info) newScope(owner ast.Decl, params []*ast.Param, locals []ast.Decl) *Scope {
	sc := &Scope{
		Owner:     owner,
		Params:    make(map[string]*ast.Param),
		Actions:   map[string]*ast.ActionDecl{"NoAction": NoAction},
		Tables:    make(map[string]*ast.TableDecl),
		Registers: make(map[string]*ast.RegisterDecl),
		Vars:      make(map[string]*ast.VarDecl),
	}
	for _, p := range params {
		sc.Params[p.Name] = p
	}
	for _, l := range locals {
		switch x := l.(type) {
		case *ast.ActionDecl:
			sc.Actions[x.Name] = x
		case *ast.TableDecl:
			sc.Tables[x.Name] = x
		case *ast.RegisterDecl:
			sc.Registers[x.Name] = x
		case *ast.VarDecl:
			sc.Vars[x.Name] = x
		}
	}
	in.Scopes[owner] = sc
	return sc
}

func (in *Info) checkParser(p *ast.ParserDecl) {
	sc := in.newScope(p, p.Params, p.Locals)
	seen := map[string]bool{"accept": true, "reject": true}
	for _, st := range p.States {
		if seen[st.Name] {
			in.errorf(st, "duplicate state %s", st.Name)
		}
		seen[st.Name] = true
	}
	for _, st := range p.States {
		for _, s := range st.Stmts {
			in.checkStmt(sc, s, nil)
		}
		if st.Trans == nil {
			continue
		}
		if st.Trans.Select != nil {
			for _, e := range st.Trans.Select.Exprs {
				in.checkExpr(sc, e, nil)
			}
			for _, c := range st.Trans.Select.Cases {
				if !seen[c.Next] {
					in.errorf(c, "transition to unknown state %s", c.Next)
				}
				for _, v := range c.Values {
					in.checkExpr(sc, v, nil)
				}
			}
		} else if !seen[st.Trans.Next] {
			in.errorf(st.Trans, "transition to unknown state %s", st.Trans.Next)
		}
	}
}

func (in *Info) checkControl(c *ast.ControlDecl) {
	sc := in.newScope(c, c.Params, c.Locals)
	for _, l := range c.Locals {
		switch x := l.(type) {
		case *ast.ActionDecl:
			in.checkAction(sc, x)
		case *ast.TableDecl:
			in.checkTable(sc, x)
		case *ast.VarDecl:
			if x.Init != nil {
				in.checkExpr(sc, x.Init, nil)
			}
		}
	}
	for _, s := range c.Apply.Stmts {
		in.checkStmt(sc, s, nil)
	}
}

func (in *Info) checkAction(sc *Scope, a *ast.ActionDecl) {
	locals := map[string]*ast.Param{}
	for _, p := range a.Params {
		locals[p.Name] = p
	}
	for _, s := range a.Body.Stmts {
		in.checkStmt(sc, s, locals)
	}
}

func (in *Info) checkTable(sc *Scope, t *ast.TableDecl) {
	for _, k := range t.Keys {
		kt := in.checkExpr(sc, k.Expr, nil)
		switch k.MatchKind {
		case "exact", "ternary", "lpm":
		default:
			in.errorf(k, "table %s: unsupported match kind %q", t.Name, k.MatchKind)
		}
		if WidthOf(kt) == 0 {
			in.errorf(k, "table %s: key %s has non-scalar type %s", t.Name, ast.PathString(k.Expr), kt)
		}
	}
	for _, a := range t.Actions {
		if _, ok := sc.Actions[a.Name]; !ok {
			in.errorf(a, "table %s: unknown action %s", t.Name, a.Name)
		}
	}
	if t.Default != nil {
		if _, ok := sc.Actions[t.Default.Name]; !ok {
			in.errorf(t.Default, "table %s: unknown default action %s", t.Name, t.Default.Name)
		}
		for _, arg := range t.Default.Args {
			in.checkExpr(sc, arg, nil)
		}
	}
}

func (in *Info) checkStmt(sc *Scope, s ast.Stmt, actionParams map[string]*ast.Param) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		lt := in.checkExpr(sc, x.LHS, actionParams)
		rt := in.checkExpr(sc, x.RHS, actionParams)
		if !assignable(lt, rt) {
			in.errorf(x, "cannot assign %s to %s", rt, lt)
		}
	case *ast.CallStmt:
		in.checkExpr(sc, x.Call, actionParams)
	case *ast.IfStmt:
		ct := in.checkExpr(sc, x.Cond, actionParams)
		if _, ok := ct.(*BoolT); !ok {
			in.errorf(x.Cond, "if condition must be bool, got %s", ct)
		}
		in.checkStmt(sc, x.Then, actionParams)
		if x.Else != nil {
			in.checkStmt(sc, x.Else, actionParams)
		}
	case *ast.BlockStmt:
		for _, st := range x.Stmts {
			in.checkStmt(sc, st, actionParams)
		}
	case *ast.SwitchStmt:
		tt := in.checkExpr(sc, x.Table, actionParams)
		tbl, ok := tt.(*TableT)
		if !ok {
			in.errorf(x, "switch must apply a table, got %s", tt)
			return
		}
		valid := map[string]bool{}
		for _, a := range tbl.Decl.Actions {
			valid[a.Name] = true
		}
		for _, c := range x.Cases {
			if c.Label != "" && !valid[c.Label] {
				in.errorf(c, "switch case %s is not an action of table %s", c.Label, tbl.Decl.Name)
			}
			if c.Body != nil {
				in.checkStmt(sc, c.Body, actionParams)
			}
		}
	case *ast.VarDeclStmt:
		sc.Vars[x.Decl.Name] = x.Decl
		if x.Decl.Init != nil {
			lt := in.ResolveType(x.Decl.Type)
			rt := in.checkExpr(sc, x.Decl.Init, actionParams)
			if !assignable(lt, rt) {
				in.errorf(x.Decl, "cannot initialize %s with %s", lt, rt)
			}
		}
	case *ast.ExitStmt, *ast.ReturnStmt, *ast.EmptyStmt:
	default:
		in.errorf(s, "unsupported statement %T", s)
	}
}

// assignable reports whether a value of type rt can be assigned to lt.
func assignable(lt, rt Type) bool {
	switch l := lt.(type) {
	case *BitsType:
		switch r := rt.(type) {
		case *BitsType:
			return l.Width == r.Width
		case *InfIntType:
			return true
		case *BoolT:
			return l.Width == 1 // tolerated: bit<1> <-> bool coercion
		}
		return false
	case *BoolT:
		switch rt.(type) {
		case *BoolT, *InfIntType:
			return true
		case *BitsType:
			return rt.(*BitsType).Width == 1
		}
		return false
	case *HeaderT:
		r, ok := rt.(*HeaderT)
		return ok && r.Decl == l.Decl
	default:
		return false
	}
}

func (in *Info) checkExpr(sc *Scope, e ast.Expr, actionParams map[string]*ast.Param) Type {
	t := in.typeOf(sc, e, actionParams)
	in.Types[e] = t
	return t
}

func (in *Info) typeOf(sc *Scope, e ast.Expr, actionParams map[string]*ast.Param) Type {
	switch x := e.(type) {
	case *ast.IntLit:
		if x.Width > 0 {
			return &BitsType{Width: x.Width}
		}
		return &InfIntType{}
	case *ast.BoolLit:
		return &BoolT{}
	case *ast.DefaultExpr:
		return &InfIntType{}
	case *ast.Ident:
		if actionParams != nil {
			if p, ok := actionParams[x.Name]; ok {
				return in.ResolveType(p.Type)
			}
		}
		if p, ok := sc.Params[x.Name]; ok {
			return in.ResolveType(p.Type)
		}
		if v, ok := sc.Vars[x.Name]; ok {
			return in.ResolveType(v.Type)
		}
		if a, ok := sc.Actions[x.Name]; ok {
			return &ActionT{Decl: a}
		}
		if t, ok := sc.Tables[x.Name]; ok {
			return &TableT{Decl: t}
		}
		if r, ok := sc.Registers[x.Name]; ok {
			return &RegisterT{Decl: r, ElemWidth: WidthOf(in.ResolveType(r.ElemType))}
		}
		if c, ok := in.Consts[x.Name]; ok {
			if c.Width > 0 {
				return &BitsType{Width: c.Width}
			}
			return &InfIntType{}
		}
		in.errorf(x, "undefined: %s", x.Name)
		return &VoidT{}
	case *ast.Member:
		return in.memberType(sc, x, actionParams)
	case *ast.IndexExpr:
		xt := in.checkExpr(sc, x.X, actionParams)
		in.checkExpr(sc, x.Index, actionParams)
		if st, ok := xt.(*StackT); ok {
			return st.Elem
		}
		in.errorf(x, "cannot index %s", xt)
		return &VoidT{}
	case *ast.CallExpr:
		return in.callType(sc, x, actionParams)
	case *ast.UnaryExpr:
		xt := in.checkExpr(sc, x.X, actionParams)
		switch x.Op.String() {
		case "!":
			if _, ok := xt.(*BoolT); !ok {
				in.errorf(x, "operator ! requires bool, got %s", xt)
			}
			return &BoolT{}
		default: // - ~
			if _, ok := xt.(*BitsType); ok {
				return xt
			}
			if _, ok := xt.(*InfIntType); ok {
				return xt
			}
			in.errorf(x, "operator %s requires bits, got %s", x.Op, xt)
			return &VoidT{}
		}
	case *ast.BinaryExpr:
		return in.binaryType(sc, x, actionParams)
	case *ast.CastExpr:
		in.checkExpr(sc, x.X, actionParams)
		return in.ResolveType(x.Type)
	case *ast.TernaryExpr:
		ct := in.checkExpr(sc, x.Cond, actionParams)
		if _, ok := ct.(*BoolT); !ok {
			in.errorf(x.Cond, "ternary condition must be bool, got %s", ct)
		}
		tt := in.checkExpr(sc, x.Then, actionParams)
		et := in.checkExpr(sc, x.Else, actionParams)
		if _, ok := tt.(*InfIntType); ok {
			return et
		}
		if !assignable(tt, et) && !assignable(et, tt) {
			in.errorf(x, "ternary branches disagree: %s vs %s", tt, et)
		}
		return tt
	default:
		in.errorf(e, "unsupported expression %T", e)
		return &VoidT{}
	}
}

func (in *Info) memberType(sc *Scope, m *ast.Member, actionParams map[string]*ast.Param) Type {
	xt := in.checkExpr(sc, m.X, actionParams)
	switch base := xt.(type) {
	case *StructT:
		for _, f := range base.Decl.Fields {
			if f.Name == m.Name {
				return in.ResolveType(f.Type)
			}
		}
		in.errorf(m, "struct %s has no field %s", base.Decl.Name, m.Name)
		return &VoidT{}
	case *HeaderT:
		for _, f := range base.Decl.Fields {
			if f.Name == m.Name {
				return in.ResolveType(f.Type)
			}
		}
		// Methods resolved at call sites; here a bare member of a header
		// that is not a field is an error unless it's a method name.
		switch m.Name {
		case "isValid", "setValid", "setInvalid":
			return &VoidT{} // call-position only
		}
		in.errorf(m, "header %s has no field %s", base.Decl.Name, m.Name)
		return &VoidT{}
	case *StackT:
		switch m.Name {
		case "next", "last":
			return base.Elem
		case "lastIndex", "nextIndex":
			return &BitsType{Width: 32}
		case "push_front", "pop_front":
			return &VoidT{}
		}
		in.errorf(m, "header stack has no member %s", m.Name)
		return &VoidT{}
	case *TableT:
		if m.Name == "apply" {
			return &VoidT{}
		}
		in.errorf(m, "table has no member %s", m.Name)
		return &VoidT{}
	case *RegisterT:
		if m.Name == "read" || m.Name == "write" {
			return &VoidT{}
		}
		in.errorf(m, "register has no member %s", m.Name)
		return &VoidT{}
	case *ExternT:
		switch m.Name {
		case "extract", "emit", "advance", "lookahead", "length":
			return &VoidT{}
		}
		in.errorf(m, "extern %s has no member %s", base.Name, m.Name)
		return &VoidT{}
	default:
		in.errorf(m, "cannot select %s from %s", m.Name, xt)
		return &VoidT{}
	}
}

func (in *Info) callType(sc *Scope, c *ast.CallExpr, actionParams map[string]*ast.Param) Type {
	for _, a := range c.Args {
		in.checkExpr(sc, a, actionParams)
	}
	switch fun := c.Fun.(type) {
	case *ast.Ident:
		if a, ok := sc.Actions[fun.Name]; ok {
			in.Types[c.Fun] = &ActionT{Decl: a}
			if len(c.Args) != len(a.Params) {
				in.errorf(c, "action %s called with %d args, want %d", a.Name, len(c.Args), len(a.Params))
			}
			return &VoidT{}
		}
		if builtinFuncs[fun.Name] {
			in.Types[c.Fun] = &VoidT{}
			return &VoidT{}
		}
		in.errorf(c, "undefined function %s", fun.Name)
		return &VoidT{}
	case *ast.Member:
		recvT := in.checkExpr(sc, fun.X, actionParams)
		in.Types[fun] = &VoidT{}
		switch base := recvT.(type) {
		case *HeaderT:
			switch fun.Name {
			case "isValid":
				return &BoolT{}
			case "setValid", "setInvalid":
				return &VoidT{}
			}
			in.errorf(c, "header %s has no method %s", base.Decl.Name, fun.Name)
		case *StackT:
			switch fun.Name {
			case "push_front", "pop_front":
				return &VoidT{}
			}
			in.errorf(c, "header stack has no method %s", fun.Name)
		case *TableT:
			if fun.Name == "apply" {
				return &VoidT{}
			}
			in.errorf(c, "table %s has no method %s", base.Decl.Name, fun.Name)
		case *RegisterT:
			switch fun.Name {
			case "read", "write":
				if len(c.Args) != 2 {
					in.errorf(c, "register.%s takes 2 arguments", fun.Name)
				}
				return &VoidT{}
			}
			in.errorf(c, "register has no method %s", fun.Name)
		case *ExternT:
			switch fun.Name {
			case "extract", "emit", "advance":
				return &VoidT{}
			case "lookahead":
				return &InfIntType{}
			}
			in.errorf(c, "extern %s has no method %s", base.Name, fun.Name)
		default:
			in.errorf(c, "cannot call method %s on %s", fun.Name, recvT)
		}
		return &VoidT{}
	default:
		in.errorf(c, "unsupported call target")
		return &VoidT{}
	}
}

func (in *Info) binaryType(sc *Scope, b *ast.BinaryExpr, actionParams map[string]*ast.Param) Type {
	xt := in.checkExpr(sc, b.X, actionParams)
	yt := in.checkExpr(sc, b.Y, actionParams)
	op := b.Op.String()
	switch op {
	case "&&", "||":
		if _, ok := xt.(*BoolT); !ok {
			in.errorf(b.X, "operator %s requires bool, got %s", op, xt)
		}
		if _, ok := yt.(*BoolT); !ok {
			in.errorf(b.Y, "operator %s requires bool, got %s", op, yt)
		}
		return &BoolT{}
	case "==", "!=":
		if !comparable2(xt, yt) {
			in.errorf(b, "cannot compare %s with %s", xt, yt)
		}
		return &BoolT{}
	case "<", ">", "<=", ">=":
		if !comparable2(xt, yt) {
			in.errorf(b, "cannot compare %s with %s", xt, yt)
		}
		return &BoolT{}
	case "++":
		xw, yw := WidthOf(xt), WidthOf(yt)
		if xw == 0 || yw == 0 {
			in.errorf(b, "concatenation requires sized operands")
			return &VoidT{}
		}
		return &BitsType{Width: xw + yw}
	default: // arithmetic / bitwise / shifts
		if _, ok := xt.(*BitsType); ok {
			if !comparable2(xt, yt) && op != "<<" && op != ">>" {
				in.errorf(b, "operator %s: mismatched widths %s vs %s", op, xt, yt)
			}
			return xt
		}
		if _, ok := xt.(*InfIntType); ok {
			if _, ok := yt.(*BitsType); ok {
				return yt
			}
			return &InfIntType{}
		}
		in.errorf(b, "operator %s requires bits, got %s", op, xt)
		return &VoidT{}
	}
}

// comparable2 reports whether two scalar types can be compared.
func comparable2(a, b Type) bool {
	switch x := a.(type) {
	case *BitsType:
		switch y := b.(type) {
		case *BitsType:
			return x.Width == y.Width
		case *InfIntType:
			return true
		case *BoolT:
			return x.Width == 1
		}
	case *InfIntType:
		switch b.(type) {
		case *BitsType, *InfIntType:
			return true
		}
	case *BoolT:
		switch y := b.(type) {
		case *BoolT, *InfIntType:
			return true
		case *BitsType:
			return y.Width == 1
		}
	}
	return false
}

// resolvePipeline extracts the V1Switch blocks, or falls back to
// kind/name-based discovery when no instantiation is present.
func (in *Info) resolvePipeline(prog *ast.Program) {
	parsers := map[string]*ast.ParserDecl{}
	controls := map[string]*ast.ControlDecl{}
	var firstParser *ast.ParserDecl
	var controlOrder []*ast.ControlDecl
	for _, d := range prog.Decls {
		switch x := d.(type) {
		case *ast.ParserDecl:
			parsers[x.Name] = x
			if firstParser == nil {
				firstParser = x
			}
		case *ast.ControlDecl:
			controls[x.Name] = x
			controlOrder = append(controlOrder, x)
		}
	}

	var inst *ast.InstantiationDecl
	for _, d := range prog.Decls {
		if x, ok := d.(*ast.InstantiationDecl); ok && x.Name == "main" {
			inst = x
		}
	}
	pl := &in.Pipeline
	if inst != nil {
		names := make([]string, 0, len(inst.Args))
		for _, a := range inst.Args {
			if call, ok := a.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					names = append(names, id.Name)
					continue
				}
			}
			names = append(names, "")
		}
		pick := func(i int) *ast.ControlDecl {
			if i < len(names) {
				return controls[names[i]]
			}
			return nil
		}
		if len(names) > 0 {
			pl.Parser = parsers[names[0]]
		}
		switch len(names) {
		case 6: // V1Switch(p, vc, ig, eg, cc, dep)
			pl.VerifyChecksum, pl.Ingress, pl.Egress = pick(1), pick(2), pick(3)
			pl.ComputeChecksum, pl.Deparser = pick(4), pick(5)
		case 4: // abbreviated V1Switch(p, ig, eg, dep)
			pl.Ingress, pl.Egress, pl.Deparser = pick(1), pick(2), pick(3)
		case 3:
			pl.Ingress, pl.Egress = pick(1), pick(2)
		case 2:
			pl.Ingress = pick(1)
		}
		if pl.Parser == nil {
			in.errorf(inst, "V1Switch: cannot resolve parser %q", names)
		}
		if pl.Ingress == nil {
			in.errorf(inst, "V1Switch: cannot resolve ingress control")
		}
		return
	}

	// Fallback: first parser; controls by name heuristics then by order.
	pl.Parser = firstParser
	for _, c := range controlOrder {
		lname := strings.ToLower(c.Name)
		switch {
		case strings.Contains(lname, "ingress") && pl.Ingress == nil:
			pl.Ingress = c
		case strings.Contains(lname, "egress") && pl.Egress == nil:
			pl.Egress = c
		case strings.Contains(lname, "deparser") && pl.Deparser == nil:
			pl.Deparser = c
		}
	}
	if pl.Ingress == nil && len(controlOrder) > 0 {
		pl.Ingress = controlOrder[0]
	}
}

// ScopeOf returns the scope of a parser or control declaration.
func (in *Info) ScopeOf(d ast.Decl) *Scope { return in.Scopes[d] }

// TypeOf returns the checked type of an expression (nil if unchecked).
func (in *Info) TypeOf(e ast.Expr) Type { return in.Types[e] }
