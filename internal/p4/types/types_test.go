package types

import (
	"strings"
	"testing"

	"bf4/internal/p4/ast"
	"bf4/internal/p4/parser"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

const okProgram = `
typedef bit<32> addr_t;
const bit<16> TYPE_IPV4 = 0x800;

header ipv4_t {
    bit<8> ttl;
    addr_t srcAddr;
    addr_t dstAddr;
}

struct metadata { bit<1> do_forward; }
struct headers { ipv4_t ipv4; }

parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    register<bit<32>>(64) regs;
    action set_nhop(addr_t next, bit<9> port) {
        smeta.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
        hdr.ipv4.dstAddr = next;
    }
    table lpm {
        key = { hdr.ipv4.dstAddr: lpm; hdr.ipv4.isValid(): exact; }
        actions = { set_nhop; NoAction; }
        default_action = NoAction();
    }
    apply {
        if (hdr.ipv4.isValid() && hdr.ipv4.ttl > 8w0) {
            lpm.apply();
        }
        regs.write((bit<32>)hdr.ipv4.ttl, hdr.ipv4.srcAddr);
    }
}

control Eg(inout headers hdr, inout metadata meta,
           inout standard_metadata_t smeta) { apply { } }
control Dep(packet_out pkt, in headers hdr) {
    apply { pkt.emit(hdr.ipv4); }
}

V1Switch(P(), Ing(), Eg(), Dep()) main;
`

func TestCheckOK(t *testing.T) {
	prog := mustParse(t, okProgram)
	info, err := Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	pl := info.Pipeline
	if pl.Parser == nil || pl.Parser.Name != "P" {
		t.Fatalf("parser not resolved: %+v", pl.Parser)
	}
	if pl.Ingress == nil || pl.Ingress.Name != "Ing" {
		t.Fatalf("ingress not resolved")
	}
	if pl.Egress == nil || pl.Deparser == nil {
		t.Fatalf("egress/deparser not resolved")
	}
}

func TestTypedefResolution(t *testing.T) {
	prog := mustParse(t, okProgram)
	info, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	got := info.ResolveType(&ast.NamedType{Name: "addr_t"})
	bits, ok := got.(*BitsType)
	if !ok || bits.Width != 32 {
		t.Fatalf("addr_t resolved to %s", got)
	}
}

func TestConstEval(t *testing.T) {
	prog := mustParse(t, okProgram)
	info, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	c := info.Consts["TYPE_IPV4"]
	if c == nil || c.Val.Int64() != 0x800 || c.Width != 16 {
		t.Fatalf("TYPE_IPV4 = %+v", c)
	}
}

func TestStandardMetadataBuiltin(t *testing.T) {
	prog := mustParse(t, okProgram)
	info, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	smeta := info.Structs["standard_metadata_t"]
	if smeta == nil {
		t.Fatal("standard_metadata_t missing")
	}
	found := false
	for _, f := range smeta.Fields {
		if f.Name == "egress_spec" {
			found = true
			if bt := f.Type.(*ast.BitType); bt.Width != 9 {
				t.Fatalf("egress_spec width %d", bt.Width)
			}
		}
	}
	if !found {
		t.Fatal("egress_spec missing")
	}
}

func errContains(t *testing.T, src, want string) {
	t.Helper()
	prog, perr := parser.Parse(src)
	if perr != nil {
		t.Fatalf("parse: %v", perr)
	}
	_, err := Check(prog)
	if err == nil {
		t.Fatalf("expected error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

func TestErrors(t *testing.T) {
	t.Run("unknown type", func(t *testing.T) {
		errContains(t, `header h { nope_t x; }
control c(inout h hh) { apply { } }`, "unknown type")
	})
	t.Run("unknown field", func(t *testing.T) {
		errContains(t, `header h { bit<8> x; }
control c(inout h hh) { apply { hh.y = 8w0; } }`, "no field y")
	})
	t.Run("width mismatch", func(t *testing.T) {
		errContains(t, `header h { bit<8> x; bit<16> y; }
control c(inout h hh) { apply { hh.x = hh.y; } }`, "cannot assign")
	})
	t.Run("non-bool condition", func(t *testing.T) {
		errContains(t, `header h { bit<8> x; }
control c(inout h hh) { apply { if (hh.x + 8w1) { hh.x = 8w0; } } }`, "must be bool")
	})
	t.Run("unknown action in table", func(t *testing.T) {
		errContains(t, `header h { bit<8> x; }
control c(inout h hh) {
  table t { key = { hh.x: exact; } actions = { missing; } }
  apply { t.apply(); } }`, "unknown action")
	})
	t.Run("bad match kind", func(t *testing.T) {
		errContains(t, `header h { bit<8> x; }
control c(inout h hh) {
  action a() { hh.x = 8w0; }
  table t { key = { hh.x: range; } actions = { a; } }
  apply { t.apply(); } }`, "match kind")
	})
	t.Run("action arity", func(t *testing.T) {
		errContains(t, `header h { bit<8> x; }
control c(inout h hh) {
  action a(bit<8> v) { hh.x = v; }
  apply { a(); } }`, "called with 0 args")
	})
	t.Run("undefined name", func(t *testing.T) {
		errContains(t, `header h { bit<8> x; }
control c(inout h hh) { apply { hh.x = nothere; } }`, "undefined")
	})
	t.Run("compare width mismatch", func(t *testing.T) {
		errContains(t, `header h { bit<8> x; bit<16> y; }
control c(inout h hh) { apply { if (hh.x == hh.y) { hh.x = 8w0; } } }`, "cannot compare")
	})
}

func TestExprTypes(t *testing.T) {
	prog := mustParse(t, okProgram)
	info, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Find the lpm table keys and verify their types.
	ing := info.Pipeline.Ingress
	sc := info.ScopeOf(ing)
	tbl := sc.Tables["lpm"]
	if tbl == nil {
		t.Fatal("table lpm missing")
	}
	kt := info.TypeOf(tbl.Keys[0].Expr)
	if bits, ok := kt.(*BitsType); !ok || bits.Width != 32 {
		t.Fatalf("dstAddr key type = %s", kt)
	}
	kt2 := info.TypeOf(tbl.Keys[1].Expr)
	if _, ok := kt2.(*BoolT); !ok {
		t.Fatalf("isValid key type = %s", kt2)
	}
}

func TestSwitchCaseValidation(t *testing.T) {
	errContains(t, `header h { bit<8> x; }
control c(inout h hh) {
  action a1() { hh.x = 1; }
  table t { key = { hh.x: exact; } actions = { a1; } }
  apply {
    switch (t.apply().action_run) {
      not_an_action: { hh.x = 2; }
    }
  }
}`, "not an action")
}

func TestHeaderStackTypes(t *testing.T) {
	src := `
header vlan_t { bit<16> tci; }
struct headers { vlan_t[2] vlan; }
control c(inout headers hdr) {
    apply {
        hdr.vlan[0].tci = hdr.vlan[1].tci;
        hdr.vlan[1].tci = 16w5;
    }
}
`
	prog := mustParse(t, src)
	if _, err := Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestPipelineFallbackWithoutMain(t *testing.T) {
	src := `
header h { bit<8> x; }
struct headers { h hh; }
parser TheParser(packet_in pkt, out headers hdr) {
    state start { pkt.extract(hdr.hh); transition accept; }
}
control MyIngressThing(inout headers hdr) { apply { } }
control MyEgressThing(inout headers hdr) { apply { } }
`
	prog := mustParse(t, src)
	info, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if info.Pipeline.Parser == nil || info.Pipeline.Parser.Name != "TheParser" {
		t.Fatal("fallback parser resolution failed")
	}
	if info.Pipeline.Ingress == nil || info.Pipeline.Ingress.Name != "MyIngressThing" {
		t.Fatalf("fallback ingress resolution failed: %+v", info.Pipeline.Ingress)
	}
	if info.Pipeline.Egress == nil || info.Pipeline.Egress.Name != "MyEgressThing" {
		t.Fatal("fallback egress resolution failed")
	}
}

func TestSixArgV1Switch(t *testing.T) {
	src := `
header h { bit<8> x; }
struct headers { h hh; }
struct metadata { bit<1> m; }
parser P(packet_in pkt, out headers hdr, inout metadata meta, inout standard_metadata_t sm) {
    state start { transition accept; }
}
control VC(inout headers hdr, inout metadata meta) { apply { } }
control Ing(inout headers hdr, inout metadata meta, inout standard_metadata_t sm) { apply { } }
control Eg(inout headers hdr, inout metadata meta, inout standard_metadata_t sm) { apply { } }
control CC(inout headers hdr, inout metadata meta) { apply { } }
control Dep(packet_out pkt, in headers hdr) { apply { } }
V1Switch(P(), VC(), Ing(), Eg(), CC(), Dep()) main;
`
	prog := mustParse(t, src)
	info, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	pl := info.Pipeline
	if pl.Ingress.Name != "Ing" || pl.Egress.Name != "Eg" || pl.Deparser.Name != "Dep" {
		t.Fatalf("six-arg pipeline wrong: %+v", pl)
	}
	if pl.VerifyChecksum.Name != "VC" || pl.ComputeChecksum.Name != "CC" {
		t.Fatal("checksum controls wrong")
	}
}
