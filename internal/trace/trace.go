// Package trace generates deterministic controller-update workloads for
// the shim benchmarks (paper §5.3: 2000 production updates replayed
// against the assertion-bearing tables of switch.p4). Entries are drawn
// per table schema — random key values and masks, random actions and
// parameters — with a configurable fraction shaped to violate validity
// assertions, so rejection paths are exercised too.
package trace

import (
	"math/big"
	"math/rand"

	"bf4/internal/dataplane"
	"bf4/internal/shim"
	"bf4/internal/spec"
)

// Generator produces update workloads for one spec file.
type Generator struct {
	rng  *rand.Rand
	file *spec.File
	// FaultyFraction of updates target validity-style assertion
	// violations (isValid-shaped keys set to 0 with nonzero masks
	// elsewhere). Default 0.3.
	FaultyFraction float64
}

// NewGenerator returns a deterministic generator for the given seed.
func NewGenerator(seed int64, file *spec.File) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), file: file, FaultyFraction: 0.3}
}

// tablesWithAssertions lists the tables any assertion mentions.
func (g *Generator) tablesWithAssertions() []*spec.TableSchema {
	var out []*spec.TableSchema
	for _, t := range g.file.Tables {
		if len(g.file.AssertionsFor(t.Name)) > 0 {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return g.file.Tables
	}
	return out
}

// Updates generates n inserts across assertion-bearing tables.
func (g *Generator) Updates(n int) []*shim.Update {
	tables := g.tablesWithAssertions()
	if len(tables) == 0 {
		return nil
	}
	out := make([]*shim.Update, 0, n)
	for i := 0; i < n; i++ {
		t := tables[g.rng.Intn(len(tables))]
		faulty := g.rng.Float64() < g.FaultyFraction
		out = append(out, &shim.Update{Table: t.Name, Entry: g.entry(t, faulty)})
	}
	return out
}

func (g *Generator) entry(t *spec.TableSchema, faulty bool) *dataplane.Entry {
	e := &dataplane.Entry{Priority: g.rng.Intn(100)}
	for _, k := range t.Keys {
		isValidityKey := k.Width == 1 && len(k.Path) > 9 && k.Path[len(k.Path)-9:] == "isValid()"
		var km dataplane.KeyMatch
		switch k.MatchKind {
		case "exact":
			v := g.randBits(k.Width)
			if isValidityKey {
				if faulty {
					v = big.NewInt(0) // expect an invalid header: suspicious
				} else {
					v = big.NewInt(1)
				}
			}
			km = dataplane.KeyMatch{Value: v, PrefixLen: -1}
		case "ternary":
			mask := g.randBits(k.Width)
			if faulty && mask.Sign() == 0 {
				mask = big.NewInt(1)
			}
			km = dataplane.KeyMatch{Value: g.randBits(k.Width), Mask: mask, PrefixLen: -1}
		case "lpm":
			km = dataplane.KeyMatch{Value: g.randBits(k.Width), PrefixLen: g.rng.Intn(k.Width + 1)}
		default:
			km = dataplane.KeyMatch{Value: g.randBits(k.Width), PrefixLen: -1}
		}
		e.Keys = append(e.Keys, km)
	}
	// Pick an action (avoid NoAction when alternatives exist, mirroring
	// real controllers).
	var candidates []*spec.ActionSchema
	for _, a := range t.Actions {
		if a.Name != "NoAction" {
			candidates = append(candidates, a)
		}
	}
	if len(candidates) == 0 {
		candidates = t.Actions
	}
	if len(candidates) > 0 {
		a := candidates[g.rng.Intn(len(candidates))]
		e.Action = a.Name
		for _, p := range a.Params {
			e.Params = append(e.Params, g.randBits(p.Width))
		}
	}
	return e
}

func (g *Generator) randBits(w int) *big.Int {
	if w <= 0 {
		return big.NewInt(0)
	}
	v := new(big.Int)
	for i := 0; i < w; i += 32 {
		v.Lsh(v, 32)
		v.Or(v, big.NewInt(int64(g.rng.Uint32())))
	}
	mask := new(big.Int).Lsh(big.NewInt(1), uint(w))
	mask.Sub(mask, big.NewInt(1))
	return v.And(v, mask)
}
