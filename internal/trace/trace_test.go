package trace

import (
	"testing"

	"bf4/internal/spec"
)

func testSpec() *spec.File {
	return &spec.File{
		Program: "test",
		Tables: []*spec.TableSchema{
			{
				Name:   "nat",
				Prefix: "pcn_nat$0",
				Keys: []spec.KeySchema{
					{Path: "hdr.ipv4.isValid()", MatchKind: "exact", Width: 1},
					{Path: "hdr.ipv4.srcAddr", MatchKind: "ternary", Width: 32},
					{Path: "meta.nhop", MatchKind: "lpm", Width: 32},
				},
				Actions: []*spec.ActionSchema{
					{Name: "drop_", Index: 0},
					{Name: "nat_hit", Index: 1, Params: []spec.ParamSchema{{Name: "a", Width: 32}}},
					{Name: "NoAction", Index: 2},
				},
				Default: "drop_",
			},
			{
				Name:   "quiet",
				Prefix: "pcn_quiet$0",
				Keys:   []spec.KeySchema{{Path: "meta.x", MatchKind: "exact", Width: 8}},
				Actions: []*spec.ActionSchema{
					{Name: "NoAction", Index: 0},
				},
				Default: "NoAction",
			},
		},
		Assertions: []*spec.Assertion{
			{Table: "nat", Source: "fast-infer", Forbidden: []string{"|pcn_nat$0.hit|"},
				Vars: map[string]int{"pcn_nat$0.hit": 0}},
		},
	}
}

func TestDeterminism(t *testing.T) {
	f := testSpec()
	a := NewGenerator(42, f).Updates(50)
	b := NewGenerator(42, f).Updates(50)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Table != b[i].Table || a[i].Entry.Action != b[i].Entry.Action {
			t.Fatalf("update %d differs between same-seed generators", i)
		}
		for j := range a[i].Entry.Keys {
			if a[i].Entry.Keys[j].Value.Cmp(b[i].Entry.Keys[j].Value) != 0 {
				t.Fatalf("update %d key %d differs", i, j)
			}
		}
	}
	c := NewGenerator(43, f).Updates(50)
	same := true
	for i := range a {
		if a[i].Entry.Keys[1].Value.Cmp(c[i].Entry.Keys[1].Value) != 0 {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestUpdatesTargetAssertionTables(t *testing.T) {
	f := testSpec()
	ups := NewGenerator(1, f).Updates(100)
	for _, u := range ups {
		if u.Table != "nat" {
			t.Fatalf("update targeted %s; only nat carries assertions", u.Table)
		}
	}
}

func TestEntryShape(t *testing.T) {
	f := testSpec()
	ups := NewGenerator(1, f).Updates(200)
	sawFaultyValidity := false
	for _, u := range ups {
		e := u.Entry
		if len(e.Keys) != 3 {
			t.Fatalf("entry has %d keys, want 3", len(e.Keys))
		}
		// Validity key stays in {0,1}.
		v := e.Keys[0].Value.Int64()
		if v != 0 && v != 1 {
			t.Fatalf("validity key = %d", v)
		}
		if v == 0 {
			sawFaultyValidity = true
		}
		// Ternary key carries a mask; lpm a prefix length.
		if e.Keys[1].Mask == nil {
			t.Fatal("ternary key lacks mask")
		}
		if e.Keys[2].PrefixLen < 0 || e.Keys[2].PrefixLen > 32 {
			t.Fatalf("lpm prefix = %d", e.Keys[2].PrefixLen)
		}
		// Actions come from the schema, never NoAction when alternatives
		// exist.
		if e.Action == "NoAction" {
			t.Fatal("generator picked NoAction despite alternatives")
		}
		if e.Action == "nat_hit" && len(e.Params) != 1 {
			t.Fatalf("nat_hit with %d params", len(e.Params))
		}
	}
	if !sawFaultyValidity {
		t.Fatal("faulty fraction produced no suspicious entries")
	}
}

func TestWidthsRespected(t *testing.T) {
	f := testSpec()
	ups := NewGenerator(9, f).Updates(100)
	for _, u := range ups {
		if u.Entry.Keys[1].Value.BitLen() > 32 {
			t.Fatalf("32-bit key value has %d bits", u.Entry.Keys[1].Value.BitLen())
		}
		for _, p := range u.Entry.Params {
			if p.BitLen() > 32 {
				t.Fatalf("32-bit param has %d bits", p.BitLen())
			}
		}
	}
}
