// Package absdom is a term-level abstract domain for the QF_BV fragment
// internal/smt works in: every term is mapped to an over-approximation of
// the values it can take under any variable assignment. Two cooperating
// lattices are maintained per bitvector term — known bits (each bit is
// known-0, known-1, or unknown, the "tristate" domain production
// compilers call known-bits) and an unsigned interval [lo, hi] — with a
// reduction step that lets each tighten the other (forced high bits
// narrow the interval; a narrow interval pins the common high-bit prefix).
// Boolean terms get the three-valued lattice {true, false, unknown}.
//
// The analysis is computed bottom-up over the hash-consed term DAG with
// memoization on Term.ID(), so shared subterms are analyzed exactly once
// and analyzing a formula costs one pass over its distinct nodes. The
// rewrite engine (internal/smt/rewrite) consults the domain to fold
// decided comparisons, narrow operand widths and discharge conditions;
// internal/analysis uses it as an abstract evaluator for constant
// propagation.
//
// Soundness contract: for every term t and every environment env,
// Eval(t, env) ∈ γ(Of(t)). It is enforced mechanically by exhaustive
// transfer-function enumeration at small widths and by differential
// fuzzing against smt.Eval (see the package tests).
package absdom

import (
	"fmt"
	"math/big"

	"bf4/internal/smt"
)

var (
	bigZero = new(big.Int)
	bigOne  = big.NewInt(1)
)

// mask returns 2^w - 1.
func mask(w int) *big.Int {
	m := new(big.Int).Lsh(bigOne, uint(w))
	return m.Sub(m, bigOne)
}

// Value is an abstract value: an over-approximation of the concrete
// values a term may evaluate to. The zero Value is invalid; use the
// constructors. Values are immutable — the big.Int fields must never be
// mutated after construction.
type Value struct {
	sort smt.Sort

	// Boolean terms: mayT/mayF report whether true/false are possible.
	mayT, mayF bool

	// Bitvector terms: known-bits masks (zeros has a 1 where the bit is
	// known 0, ones where it is known 1; zeros∧ones = ∅) and inclusive
	// unsigned bounds lo ≤ hi. Invariant: the set
	// {x | x&zeros = 0, x&ones = ones, lo ≤ x ≤ hi} is non-empty.
	zeros, ones *big.Int
	lo, hi      *big.Int
}

// Sort returns the sort the value abstracts.
func (v Value) Sort() smt.Sort { return v.sort }

// TopBool is the unknown boolean value.
func TopBool() Value { return Value{sort: smt.BoolSort, mayT: true, mayF: true} }

// ConstBool abstracts a single boolean.
func ConstBool(b bool) Value { return Value{sort: smt.BoolSort, mayT: b, mayF: !b} }

// TopBV is the unconstrained bitvector value of width w.
func TopBV(w int) Value {
	return Value{sort: smt.BV(w), zeros: bigZero, ones: bigZero, lo: bigZero, hi: mask(w)}
}

// ConstBV abstracts the single bitvector value x (which must lie in
// [0, 2^w)).
func ConstBV(x *big.Int, w int) Value {
	z := new(big.Int).AndNot(mask(w), x)
	return Value{sort: smt.BV(w), zeros: z, ones: x, lo: x, hi: x}
}

// MakeBV builds a reduced bitvector value from known-bit masks and
// unsigned bounds; nil masks/bounds default to the unconstrained ones.
// It panics if the description is contradictory (empty concretization) —
// by construction a sound analysis never produces one.
func MakeBV(w int, zeros, ones, lo, hi *big.Int) Value {
	if zeros == nil {
		zeros = bigZero
	}
	if ones == nil {
		ones = bigZero
	}
	if lo == nil {
		lo = bigZero
	}
	if hi == nil {
		hi = mask(w)
	}
	v := Value{sort: smt.BV(w), zeros: zeros, ones: ones, lo: lo, hi: hi}
	return v.reduce()
}

// Decided reports whether a boolean value is a single truth value, and
// which.
func (v Value) Decided() (val, ok bool) {
	if !v.sort.IsBool() {
		return false, false
	}
	switch {
	case v.mayT && !v.mayF:
		return true, true
	case v.mayF && !v.mayT:
		return false, true
	}
	return false, false
}

// MayBool reports which truth values are possible (boolean values only).
func (v Value) MayBool() (mayTrue, mayFalse bool) { return v.mayT, v.mayF }

// KnownBits returns the known-bit masks of a bitvector value: zeros has a
// set bit where the term's bit is forced 0, ones where it is forced 1.
// The caller must not mutate the results.
func (v Value) KnownBits() (zeros, ones *big.Int) { return v.zeros, v.ones }

// Bounds returns the inclusive unsigned bounds. The caller must not
// mutate the results.
func (v Value) Bounds() (lo, hi *big.Int) { return v.lo, v.hi }

// Singleton returns the single concrete value of a fully-determined
// bitvector value, or ok=false. The caller must not mutate the result.
func (v Value) Singleton() (x *big.Int, ok bool) {
	if v.sort.IsBool() || v.lo.Cmp(v.hi) != 0 {
		return nil, false
	}
	return v.lo, true
}

// ContainsBV reports x ∈ γ(v) for a bitvector value.
func (v Value) ContainsBV(x *big.Int) bool {
	if v.sort.IsBool() {
		return false
	}
	if new(big.Int).And(x, v.zeros).Sign() != 0 {
		return false
	}
	if new(big.Int).And(x, v.ones).Cmp(v.ones) != 0 {
		return false
	}
	return v.lo.Cmp(x) <= 0 && x.Cmp(v.hi) <= 0
}

// ContainsBool reports b ∈ γ(v) for a boolean value.
func (v Value) ContainsBool(b bool) bool {
	if !v.sort.IsBool() {
		return false
	}
	if b {
		return v.mayT
	}
	return v.mayF
}

// Contains reports whether the concrete evaluation result x (booleans as
// 0/1, the smt.Eval convention) lies in γ(v).
func (v Value) Contains(x *big.Int) bool {
	if v.sort.IsBool() {
		return v.ContainsBool(x.Sign() != 0)
	}
	return v.ContainsBV(x)
}

func (v Value) String() string {
	if v.sort.IsBool() {
		switch {
		case v.mayT && v.mayF:
			return "bool⊤"
		case v.mayT:
			return "true"
		case v.mayF:
			return "false"
		}
		return "bool⊥"
	}
	w := v.sort.Width
	bits := make([]byte, w)
	for i := 0; i < w; i++ {
		switch {
		case v.zeros.Bit(i) == 1:
			bits[w-1-i] = '0'
		case v.ones.Bit(i) == 1:
			bits[w-1-i] = '1'
		default:
			bits[w-1-i] = '?'
		}
	}
	return fmt.Sprintf("{bits=%s, [%s,%s]}", bits, v.lo, v.hi)
}

// join returns the least upper bound of two values of the same sort.
func join(a, b Value) Value {
	if a.sort != b.sort {
		panic(fmt.Sprintf("absdom: join of different sorts %v vs %v", a.sort, b.sort))
	}
	if a.sort.IsBool() {
		return Value{sort: a.sort, mayT: a.mayT || b.mayT, mayF: a.mayF || b.mayF}
	}
	lo := a.lo
	if b.lo.Cmp(lo) < 0 {
		lo = b.lo
	}
	hi := a.hi
	if b.hi.Cmp(hi) > 0 {
		hi = b.hi
	}
	v := Value{
		sort:  a.sort,
		zeros: new(big.Int).And(a.zeros, b.zeros),
		ones:  new(big.Int).And(a.ones, b.ones),
		lo:    lo,
		hi:    hi,
	}
	return v.reduce()
}

// reduce mutually tightens the known-bits and interval components until
// they agree: the bit masks bound the interval (the smallest member has
// every unknown bit 0, the largest every unknown bit 1), and the bounds
// pin the common high-bit prefix of lo and hi. It panics if the value is
// contradictory — a sound transfer function can never produce one.
func (v Value) reduce() Value {
	w := v.sort.Width
	m := mask(w)
	zeros := new(big.Int).Set(v.zeros)
	ones := new(big.Int).Set(v.ones)
	lo := new(big.Int).Set(v.lo)
	hi := new(big.Int).Set(v.hi)
	for {
		if new(big.Int).And(zeros, ones).Sign() != 0 || lo.Cmp(hi) > 0 {
			panic(fmt.Sprintf("absdom: empty abstraction (soundness bug): %s", Value{sort: v.sort, zeros: zeros, ones: ones, lo: lo, hi: hi}))
		}
		changed := false
		// Bits → interval: unknown = m &^ (zeros|ones); the least member
		// sets only the known ones, the greatest also every unknown bit.
		unknown := new(big.Int).Or(zeros, ones)
		unknown.AndNot(m, unknown)
		bmin := ones
		bmax := new(big.Int).Or(ones, unknown)
		if lo.Cmp(bmin) < 0 {
			lo.Set(bmin)
			changed = true
		}
		if hi.Cmp(bmax) > 0 {
			hi.Set(bmax)
			changed = true
		}
		// Interval → bits: bits above the highest differing bit of lo and
		// hi are equal in every member of [lo, hi].
		diff := new(big.Int).Xor(lo, hi)
		top := diff.BitLen() // bits top..w-1 agree
		for i := top; i < w; i++ {
			if lo.Bit(i) == 1 {
				if ones.Bit(i) == 0 {
					ones.SetBit(ones, i, 1)
					changed = true
				}
			} else if zeros.Bit(i) == 0 {
				zeros.SetBit(zeros, i, 1)
				changed = true
			}
		}
		if !changed {
			return Value{sort: v.sort, zeros: zeros, ones: ones, lo: lo, hi: hi}
		}
	}
}
