package absdom

import (
	"fmt"
	"math/big"
	"testing"

	"bf4/internal/smt"
)

// The exhaustive soundness check: for every transfer function, every
// abstract input pair drawn from the enumerated families, and every pair
// of concrete values in the inputs' concretizations, the concrete result
// of the operator must lie in the concretization of the transferred
// output. Widths 1 and 2 enumerate the FULL abstract domain (every
// reduced known-bits × interval combination); widths 3 and 4 enumerate
// the known-bits family and the interval family separately (the full
// product is quadratically larger but adds no new transfer-function
// paths: reduce() folds either component into the other).
//
// Concrete operator semantics are computed in uint64 for speed and
// cross-checked against smt.Eval by TestConcreteOracle below, so a
// divergence between this file's oracle and the real evaluator cannot go
// unnoticed.

func cmask(w int) uint64 { return 1<<uint(w) - 1 }

func csigned(a uint64, w int) int64 {
	if a&(1<<uint(w-1)) != 0 {
		return int64(a) - int64(1)<<uint(w)
	}
	return int64(a)
}

// binOp is a width-preserving binary bitvector operator.
type binOp struct {
	name  string
	build func(f *smt.Factory, x, y *smt.Term) *smt.Term
	eval  func(a, b uint64, w int) uint64
}

var binOps = []binOp{
	{"add", func(f *smt.Factory, x, y *smt.Term) *smt.Term { return f.Add(x, y) },
		func(a, b uint64, w int) uint64 { return (a + b) & cmask(w) }},
	{"sub", func(f *smt.Factory, x, y *smt.Term) *smt.Term { return f.Sub(x, y) },
		func(a, b uint64, w int) uint64 { return (a - b) & cmask(w) }},
	{"mul", func(f *smt.Factory, x, y *smt.Term) *smt.Term { return f.Mul(x, y) },
		func(a, b uint64, w int) uint64 { return (a * b) & cmask(w) }},
	{"bvand", func(f *smt.Factory, x, y *smt.Term) *smt.Term { return f.BVAnd(x, y) },
		func(a, b uint64, w int) uint64 { return a & b }},
	{"bvor", func(f *smt.Factory, x, y *smt.Term) *smt.Term { return f.BVOr(x, y) },
		func(a, b uint64, w int) uint64 { return a | b }},
	{"bvxor", func(f *smt.Factory, x, y *smt.Term) *smt.Term { return f.BVXor(x, y) },
		func(a, b uint64, w int) uint64 { return a ^ b }},
	{"shl", func(f *smt.Factory, x, y *smt.Term) *smt.Term { return f.Shl(x, y) },
		func(a, b uint64, w int) uint64 {
			if b >= uint64(w) {
				return 0
			}
			return (a << b) & cmask(w)
		}},
	{"lshr", func(f *smt.Factory, x, y *smt.Term) *smt.Term { return f.Lshr(x, y) },
		func(a, b uint64, w int) uint64 {
			if b >= uint64(w) {
				return 0
			}
			return a >> b
		}},
	{"ashr", func(f *smt.Factory, x, y *smt.Term) *smt.Term { return f.Ashr(x, y) },
		func(a, b uint64, w int) uint64 {
			sh := b
			if sh > uint64(w) {
				sh = uint64(w)
			}
			return uint64(csigned(a, w)>>sh) & cmask(w)
		}},
}

type unOp struct {
	name  string
	build func(f *smt.Factory, x *smt.Term) *smt.Term
	eval  func(a uint64, w int) uint64
}

var unOps = []unOp{
	{"neg", func(f *smt.Factory, x *smt.Term) *smt.Term { return f.Neg(x) },
		func(a uint64, w int) uint64 { return (-a) & cmask(w) }},
	{"bvnot", func(f *smt.Factory, x *smt.Term) *smt.Term { return f.BVNot(x) },
		func(a uint64, w int) uint64 { return ^a & cmask(w) }},
}

type cmpOp struct {
	name  string
	build func(f *smt.Factory, x, y *smt.Term) *smt.Term
	eval  func(a, b uint64, w int) bool
}

var cmpOps = []cmpOp{
	{"eq", func(f *smt.Factory, x, y *smt.Term) *smt.Term { return f.Eq(x, y) },
		func(a, b uint64, w int) bool { return a == b }},
	{"ult", func(f *smt.Factory, x, y *smt.Term) *smt.Term { return f.Ult(x, y) },
		func(a, b uint64, w int) bool { return a < b }},
	{"ule", func(f *smt.Factory, x, y *smt.Term) *smt.Term { return f.Ule(x, y) },
		func(a, b uint64, w int) bool { return a <= b }},
	{"slt", func(f *smt.Factory, x, y *smt.Term) *smt.Term { return f.Slt(x, y) },
		func(a, b uint64, w int) bool { return csigned(a, w) < csigned(b, w) }},
	{"sle", func(f *smt.Factory, x, y *smt.Term) *smt.Term { return f.Sle(x, y) },
		func(a, b uint64, w int) bool { return csigned(a, w) <= csigned(b, w) }},
}

// enumBits returns every known-bits state of width w (3^w values), with
// the interval left at its reduced default.
func enumBits(w int) []Value {
	out := []Value{}
	var rec func(i int, zeros, ones uint64)
	rec = func(i int, zeros, ones uint64) {
		if i == w {
			out = append(out, MakeBV(w,
				new(big.Int).SetUint64(zeros), new(big.Int).SetUint64(ones), nil, nil))
			return
		}
		rec(i+1, zeros|1<<uint(i), ones)
		rec(i+1, zeros, ones|1<<uint(i))
		rec(i+1, zeros, ones)
	}
	rec(0, 0, 0)
	return out
}

// enumIntervals returns every interval 0 ≤ lo ≤ hi < 2^w, with the bit
// masks left at their reduced defaults.
func enumIntervals(w int) []Value {
	var out []Value
	for lo := uint64(0); lo <= cmask(w); lo++ {
		for hi := lo; hi <= cmask(w); hi++ {
			out = append(out, MakeBV(w, nil, nil,
				new(big.Int).SetUint64(lo), new(big.Int).SetUint64(hi)))
		}
	}
	return out
}

// enumFull returns every non-empty known-bits × interval combination.
func enumFull(w int) []Value {
	var out []Value
	var rec func(i int, zeros, ones uint64)
	rec = func(i int, zeros, ones uint64) {
		if i < w {
			rec(i+1, zeros|1<<uint(i), ones)
			rec(i+1, zeros, ones|1<<uint(i))
			rec(i+1, zeros, ones)
			return
		}
		for lo := uint64(0); lo <= cmask(w); lo++ {
			for hi := lo; hi <= cmask(w); hi++ {
				empty := true
				for x := lo; x <= hi; x++ {
					if x&zeros == 0 && x&ones == ones {
						empty = false
						break
					}
				}
				if empty {
					continue
				}
				out = append(out, MakeBV(w,
					new(big.Int).SetUint64(zeros), new(big.Int).SetUint64(ones),
					new(big.Int).SetUint64(lo), new(big.Int).SetUint64(hi)))
			}
		}
	}
	rec(0, 0, 0)
	return out
}

// families returns the abstract-value families exercised at width w,
// each paired with its precomputed concretization.
type absVal struct {
	v     Value
	gamma []uint64
}

func families(w int) []absVal {
	var vals []Value
	if w <= 2 {
		vals = enumFull(w)
	} else {
		vals = append(enumBits(w), enumIntervals(w)...)
	}
	out := make([]absVal, 0, len(vals))
	for _, v := range vals {
		var g []uint64
		for x := uint64(0); x <= cmask(w); x++ {
			if v.ContainsBV(new(big.Int).SetUint64(x)) {
				g = append(g, x)
			}
		}
		if len(g) == 0 {
			panic("empty concretization escaped reduce")
		}
		out = append(out, absVal{v, g})
	}
	return out
}

// u64Checker extracts a Value's components once so the inner loops check
// membership without big.Int allocation. Only valid for w ≤ 64.
type u64Checker struct {
	zeros, ones, lo, hi uint64
}

func mkChecker(v Value) u64Checker {
	z, o := v.KnownBits()
	lo, hi := v.Bounds()
	return u64Checker{z.Uint64(), o.Uint64(), lo.Uint64(), hi.Uint64()}
}

func (c u64Checker) contains(x uint64) bool {
	return x&c.zeros == 0 && x&c.ones == c.ones && c.lo <= x && x <= c.hi
}

// ofWith computes t's abstract value with the leaves preseeded: the test's
// way of injecting arbitrary abstract inputs into the real transfer code.
func ofWith(t *smt.Term, seed map[uint32]Value) Value {
	a := NewAnalyzer()
	for id, v := range seed {
		a.memo[id] = v
	}
	return a.Of(t)
}

func TestTransferExhaustive(t *testing.T) {
	f := smt.NewFactory()
	for _, w := range []int{1, 2, 3, 4} {
		fam := families(w)
		x := f.BVVar(fmt.Sprintf("X%d", w), w)
		y := f.BVVar(fmt.Sprintf("Y%d", w), w)

		for _, op := range binOps {
			tm := op.build(f, x, y)
			for _, A := range fam {
				for _, B := range fam {
					out := ofWith(tm, map[uint32]Value{x.ID(): A.v, y.ID(): B.v})
					ck := mkChecker(out)
					for _, a := range A.gamma {
						for _, b := range B.gamma {
							if c := op.eval(a, b, w); !ck.contains(c) {
								t.Fatalf("w=%d %s: %s op %s -> %s excludes %s(%d,%d)=%d",
									w, op.name, A.v, B.v, out, op.name, a, b, c)
							}
						}
					}
				}
			}
		}

		for _, op := range unOps {
			tm := op.build(f, x)
			for _, A := range fam {
				out := ofWith(tm, map[uint32]Value{x.ID(): A.v})
				ck := mkChecker(out)
				for _, a := range A.gamma {
					if c := op.eval(a, w); !ck.contains(c) {
						t.Fatalf("w=%d %s: %s -> %s excludes %s(%d)=%d",
							w, op.name, A.v, out, op.name, a, c)
					}
				}
			}
		}

		for _, op := range cmpOps {
			tm := op.build(f, x, y)
			for _, A := range fam {
				for _, B := range fam {
					out := ofWith(tm, map[uint32]Value{x.ID(): A.v, y.ID(): B.v})
					for _, a := range A.gamma {
						for _, b := range B.gamma {
							if c := op.eval(a, b, w); !out.ContainsBool(c) {
								t.Fatalf("w=%d %s: %s op %s -> %s excludes %s(%d,%d)=%v",
									w, op.name, A.v, B.v, out, op.name, a, b, c)
							}
						}
					}
				}
			}
		}

		// Ite over every three-valued condition.
		c := f.BoolVar(fmt.Sprintf("C%d", w))
		ite := f.Ite(c, x, y)
		for _, cv := range []Value{ConstBool(true), ConstBool(false), TopBool()} {
			for _, A := range fam {
				for _, B := range fam {
					out := ofWith(ite, map[uint32]Value{c.ID(): cv, x.ID(): A.v, y.ID(): B.v})
					ck := mkChecker(out)
					mayT, mayF := cv.MayBool()
					if mayT {
						for _, a := range A.gamma {
							if !ck.contains(a) {
								t.Fatalf("w=%d ite(true): %s/%s/%s -> %s excludes %d", w, cv, A.v, B.v, out, a)
							}
						}
					}
					if mayF {
						for _, b := range B.gamma {
							if !ck.contains(b) {
								t.Fatalf("w=%d ite(false): %s/%s/%s -> %s excludes %d", w, cv, A.v, B.v, out, b)
							}
						}
					}
				}
			}
		}
	}
}

// TestTransferExhaustiveWidthChanging covers the operators that change
// width: extract (every hi:lo slice of every source width ≤ 4), concat
// (every width split summing to ≤ 4), and the extensions.
func TestTransferExhaustiveWidthChanging(t *testing.T) {
	f := smt.NewFactory()

	for ws := 1; ws <= 4; ws++ {
		fam := families(ws)
		x := f.BVVar(fmt.Sprintf("EX%d", ws), ws)
		for hi := 0; hi < ws; hi++ {
			for lo := 0; lo <= hi; lo++ {
				tm := f.Extract(x, hi, lo)
				for _, A := range fam {
					out := ofWith(tm, map[uint32]Value{x.ID(): A.v})
					ck := mkChecker(out)
					for _, a := range A.gamma {
						c := (a >> uint(lo)) & cmask(hi-lo+1)
						if !ck.contains(c) {
							t.Fatalf("extract[%d:%d] w=%d: %s -> %s excludes %d", hi, lo, ws, A.v, out, c)
						}
					}
				}
			}
		}

		for wt := ws + 1; wt <= 4; wt++ {
			zx := f.ZExt(x, wt)
			sx := f.SExt(x, wt)
			for _, A := range fam {
				seed := map[uint32]Value{x.ID(): A.v}
				zo := ofWith(zx, seed)
				zc := mkChecker(zo)
				so := ofWith(sx, seed)
				sc := mkChecker(so)
				for _, a := range A.gamma {
					if !zc.contains(a) {
						t.Fatalf("zext %d->%d: %s -> %s excludes %d", ws, wt, A.v, zo, a)
					}
					se := uint64(csigned(a, ws)) & cmask(wt)
					if !sc.contains(se) {
						t.Fatalf("sext %d->%d: %s -> %s excludes %d", ws, wt, A.v, so, se)
					}
				}
			}
		}
	}

	for wa := 1; wa <= 3; wa++ {
		for wb := 1; wa+wb <= 4; wb++ {
			fa, fb := families(wa), families(wb)
			x := f.BVVar(fmt.Sprintf("CA%d_%d", wa, wb), wa)
			y := f.BVVar(fmt.Sprintf("CB%d_%d", wa, wb), wb)
			tm := f.Concat(x, y)
			for _, A := range fa {
				for _, B := range fb {
					out := ofWith(tm, map[uint32]Value{x.ID(): A.v, y.ID(): B.v})
					ck := mkChecker(out)
					for _, a := range A.gamma {
						for _, b := range B.gamma {
							c := a<<uint(wb) | b
							if !ck.contains(c) {
								t.Fatalf("concat %d+%d: %s ++ %s -> %s excludes %d", wa, wb, A.v, B.v, out, c)
							}
						}
					}
				}
			}
		}
	}
}

// TestTransferExhaustiveBool covers the boolean connectives over every
// three-valued input combination.
func TestTransferExhaustiveBool(t *testing.T) {
	f := smt.NewFactory()
	p := f.BoolVar("P")
	q := f.BoolVar("Q")
	r := f.BoolVar("R")
	tri := []Value{ConstBool(true), ConstBool(false), TopBool()}
	gammaB := func(v Value) []bool {
		var g []bool
		mayT, mayF := v.MayBool()
		if mayT {
			g = append(g, true)
		}
		if mayF {
			g = append(g, false)
		}
		return g
	}
	type boolOp struct {
		name  string
		term  *smt.Term
		arity int
		eval  func(a, b, c bool) bool
	}
	ops := []boolOp{
		{"not", f.Not(p), 1, func(a, _, _ bool) bool { return !a }},
		{"and", f.And(p, q), 2, func(a, b, _ bool) bool { return a && b }},
		{"or", f.Or(p, q), 2, func(a, b, _ bool) bool { return a || b }},
		{"xor", f.Xor(p, q), 2, func(a, b, _ bool) bool { return a != b }},
		{"implies", f.Implies(p, q), 2, func(a, b, _ bool) bool { return !a || b }},
		{"eq", f.Eq(p, q), 2, func(a, b, _ bool) bool { return a == b }},
		{"ite", f.Ite(p, q, r), 3, func(a, b, c bool) bool {
			if a {
				return b
			}
			return c
		}},
		{"and3", f.And(p, q, r), 3, func(a, b, c bool) bool { return a && b && c }},
		{"or3", f.Or(p, q, r), 3, func(a, b, c bool) bool { return a || b || c }},
	}
	for _, op := range ops {
		for _, A := range tri {
			for _, B := range tri {
				for _, C := range tri {
					out := ofWith(op.term, map[uint32]Value{p.ID(): A, q.ID(): B, r.ID(): C})
					for _, a := range gammaB(A) {
						for _, b := range gammaB(B) {
							for _, c := range gammaB(C) {
								if v := op.eval(a, b, c); !out.ContainsBool(v) {
									t.Fatalf("%s: %s,%s,%s -> %s excludes %v", op.name, A, B, C, out, v)
								}
							}
						}
					}
					if op.arity < 3 {
						break
					}
				}
				if op.arity < 2 {
					break
				}
			}
		}
	}
}

// TestConcreteOracle pins this file's uint64 operator semantics to the
// real evaluator: every (op, a, b) at widths 1–3 must agree with smt.Eval
// on a variable term under the corresponding environment.
func TestConcreteOracle(t *testing.T) {
	f := smt.NewFactory()
	for _, w := range []int{1, 2, 3} {
		x := f.BVVar(fmt.Sprintf("OX%d", w), w)
		y := f.BVVar(fmt.Sprintf("OY%d", w), w)
		env := make(smt.Env)
		for a := uint64(0); a <= cmask(w); a++ {
			for b := uint64(0); b <= cmask(w); b++ {
				env.SetUint64(x.Name(), a)
				env.SetUint64(y.Name(), b)
				for _, op := range binOps {
					got := smt.Eval(op.build(f, x, y), env).Uint64()
					if want := op.eval(a, b, w); got != want {
						t.Fatalf("oracle %s w=%d (%d,%d): eval=%d oracle=%d", op.name, w, a, b, got, want)
					}
				}
				for _, op := range unOps {
					got := smt.Eval(op.build(f, x), env).Uint64()
					if want := op.eval(a, w); got != want {
						t.Fatalf("oracle %s w=%d (%d): eval=%d oracle=%d", op.name, w, a, got, want)
					}
				}
				for _, op := range cmpOps {
					got := smt.EvalBool(op.build(f, x, y), env)
					if want := op.eval(a, b, w); got != want {
						t.Fatalf("oracle %s w=%d (%d,%d): eval=%v oracle=%v", op.name, w, a, b, got, want)
					}
				}
			}
		}
	}
}
