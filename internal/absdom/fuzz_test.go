package absdom_test

import (
	"testing"

	"bf4/internal/absdom"
	"bf4/internal/smt"
	"bf4/internal/smt/termgen"
)

// FuzzAbsdom is the differential soundness harness for the abstract
// domain: termgen turns the fuzz input into a random well-sorted term DAG
// plus a concrete assignment for every variable, and the concrete
// evaluation must lie in the concretization of the abstract value —
// Eval(t, env) ∈ γ(Of(t)) for every term and environment the fuzzer can
// reach. Seeds live in testdata/fuzz/FuzzAbsdom; CI runs the target for a
// fuzz-smoke interval on every push.
func FuzzAbsdom(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 3, 1, 7, 9, 2, 0xff, 0x80, 5, 4, 1})
	f.Add([]byte("absdom differential seed"))
	f.Add([]byte{1, 9, 2, 13, 0, 0xf0, 0x0f, 6, 6, 6, 0x55, 0xaa, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		fac := smt.NewFactory()
		g := termgen.New(fac, data)
		tm := g.Term()
		env := g.Env()
		got := smt.Eval(tm, env)
		v := absdom.NewAnalyzer().Of(tm)
		if !v.Contains(got) {
			t.Fatalf("unsound abstraction: Eval=%v not in %s for term\n%s", got, v, tm)
		}
	})
}

// FuzzAbsdomShared re-analyzes two terms drawn from one generator with a
// single Analyzer, so the memo built for the first is reused by the
// second (they share variables and often subterms). The memoized path
// must be just as sound as the fresh one.
func FuzzAbsdomShared(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte("shared-memo seed: two terms, one analyzer"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fac := smt.NewFactory()
		g := termgen.New(fac, data)
		t1 := g.Term()
		t2 := g.Term()
		env := g.Env()
		a := absdom.NewAnalyzer()
		for _, tm := range []*smt.Term{t1, t2} {
			got := smt.Eval(tm, env)
			if v := a.Of(tm); !v.Contains(got) {
				t.Fatalf("unsound memoized abstraction: Eval=%v not in %s for term\n%s", got, v, tm)
			}
		}
	})
}
