package absdom

import (
	"fmt"
	"math/big"

	"bf4/internal/smt"
)

// Analyzer computes abstract values bottom-up over a term DAG, memoized
// on Term.ID() so shared nodes are transferred exactly once. One Analyzer
// may be reused across many terms of the same factory (the memo then
// spans them, which is exactly what makes analyzing a whole verification
// report cheap). Not safe for concurrent use.
type Analyzer struct {
	memo map[uint32]Value
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{memo: make(map[uint32]Value)}
}

// Of returns the abstract value of t, computing and memoizing the values
// of every reachable subterm.
func (a *Analyzer) Of(t *smt.Term) Value {
	if v, ok := a.memo[t.ID()]; ok {
		return v
	}
	// Iterative post-order DFS: conditions from wide corpus programs can
	// be deep enough to threaten the goroutine stack under recursion.
	type frame struct {
		t    *smt.Term
		next int
	}
	stack := []frame{{t: t}}
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if _, done := a.memo[fr.t.ID()]; done {
			stack = stack[:len(stack)-1]
			continue
		}
		args := fr.t.Args()
		if fr.next < len(args) {
			child := args[fr.next]
			fr.next++
			if _, done := a.memo[child.ID()]; !done {
				stack = append(stack, frame{t: child})
			}
			continue
		}
		a.memo[fr.t.ID()] = transfer(fr.t, a.memo)
		stack = stack[:len(stack)-1]
	}
	return a.memo[t.ID()]
}

// transfer computes one node's abstract value from its (already
// memoized) arguments' values.
func transfer(t *smt.Term, memo map[uint32]Value) Value {
	arg := func(i int) Value { return memo[t.Arg(i).ID()] }
	w := t.Sort().Width
	switch t.Op() {
	case smt.OpTrue:
		return ConstBool(true)
	case smt.OpFalse:
		return ConstBool(false)
	case smt.OpVar:
		if t.Sort().IsBool() {
			return TopBool()
		}
		return TopBV(w)
	case smt.OpConst:
		return ConstBV(t.Const(), w)

	case smt.OpNot:
		x := arg(0)
		return Value{sort: smt.BoolSort, mayT: x.mayF, mayF: x.mayT}
	case smt.OpAnd:
		mayT, mayF := true, false
		for i := range t.Args() {
			x := arg(i)
			mayT = mayT && x.mayT
			mayF = mayF || x.mayF
		}
		return Value{sort: smt.BoolSort, mayT: mayT, mayF: mayF}
	case smt.OpOr:
		mayT, mayF := false, true
		for i := range t.Args() {
			x := arg(i)
			mayT = mayT || x.mayT
			mayF = mayF && x.mayF
		}
		return Value{sort: smt.BoolSort, mayT: mayT, mayF: mayF}
	case smt.OpXor:
		return triXor(arg(0), arg(1))
	case smt.OpImplies:
		x, y := arg(0), arg(1)
		// x -> y  ≡  ¬x ∨ y
		return Value{sort: smt.BoolSort, mayT: x.mayF || y.mayT, mayF: x.mayT && y.mayF}

	case smt.OpIte:
		cond, x, y := arg(0), arg(1), arg(2)
		if val, ok := cond.Decided(); ok {
			if val {
				return x
			}
			return y
		}
		return join(x, y)

	case smt.OpEq:
		x, y := arg(0), arg(1)
		if x.sort.IsBool() {
			// Both decided: equality is decided. One side impossible for a
			// truth value the other forces: decided false, etc.
			v := triXor(x, y)
			return Value{sort: smt.BoolSort, mayT: v.mayF, mayF: v.mayT}
		}
		return transferEq(x, y)
	case smt.OpUlt:
		return transferUlt(arg(0), arg(1), true)
	case smt.OpUle:
		return transferUlt(arg(0), arg(1), false)
	case smt.OpSlt:
		return transferSlt(arg(0), arg(1), true)
	case smt.OpSle:
		return transferSlt(arg(0), arg(1), false)

	case smt.OpAdd:
		return transferAdd(arg(0), arg(1), w, false)
	case smt.OpSub:
		return transferAdd(arg(0), notBits(arg(1), w), w, true)
	case smt.OpNeg:
		return transferAdd(ConstBV(bigZero, w), notBits(arg(0), w), w, true)
	case smt.OpMul:
		return transferMul(arg(0), arg(1), w)

	case smt.OpBVAnd:
		x, y := arg(0), arg(1)
		return MakeBV(w,
			new(big.Int).Or(x.zeros, y.zeros),
			new(big.Int).And(x.ones, y.ones),
			nil, minBig(x.hi, y.hi))
	case smt.OpBVOr:
		x, y := arg(0), arg(1)
		return MakeBV(w,
			new(big.Int).And(x.zeros, y.zeros),
			new(big.Int).Or(x.ones, y.ones),
			maxBig(x.lo, y.lo), nil)
	case smt.OpBVXor:
		x, y := arg(0), arg(1)
		zeros := new(big.Int).And(x.zeros, y.zeros)
		zeros.Or(zeros, new(big.Int).And(x.ones, y.ones))
		ones := new(big.Int).And(x.zeros, y.ones)
		ones.Or(ones, new(big.Int).And(x.ones, y.zeros))
		return MakeBV(w, zeros, ones, nil, nil)
	case smt.OpBVNot:
		x := notBits(arg(0), w)
		return MakeBV(w, x.zeros, x.ones, x.lo, x.hi)

	case smt.OpShl:
		return transferShl(arg(0), arg(1), w)
	case smt.OpLshr:
		return transferLshr(arg(0), arg(1), w)
	case smt.OpAshr:
		return transferAshr(arg(0), arg(1), w)

	case smt.OpConcat:
		x, y := arg(0), arg(1)
		wy := t.Arg(1).Sort().Width
		sh := func(v *big.Int) *big.Int { return new(big.Int).Lsh(v, uint(wy)) }
		return MakeBV(w,
			new(big.Int).Or(sh(x.zeros), y.zeros),
			new(big.Int).Or(sh(x.ones), y.ones),
			new(big.Int).Add(sh(x.lo), y.lo),
			new(big.Int).Add(sh(x.hi), y.hi))
	case smt.OpExtract:
		hi, lo := t.ExtractBounds()
		x := arg(0)
		m := mask(hi - lo + 1)
		zeros := new(big.Int).Rsh(x.zeros, uint(lo))
		zeros.And(zeros, m)
		ones := new(big.Int).Rsh(x.ones, uint(lo))
		ones.And(ones, m)
		var ilo, ihi *big.Int
		if lo == 0 && x.hi.Cmp(m) <= 0 {
			ilo, ihi = x.lo, x.hi
		}
		return MakeBV(hi-lo+1, zeros, ones, ilo, ihi)
	case smt.OpZExt:
		x := arg(0)
		wx := t.Arg(0).Sort().Width
		zeros := new(big.Int).Lsh(mask(w-wx), uint(wx))
		zeros.Or(zeros, x.zeros)
		return MakeBV(w, zeros, x.ones, x.lo, x.hi)
	case smt.OpSExt:
		return transferSExt(arg(0), t.Arg(0).Sort().Width, w)

	default:
		panic(fmt.Sprintf("absdom: unknown op %v", t.Op()))
	}
}

func triXor(x, y Value) Value {
	return Value{
		sort: smt.BoolSort,
		mayT: (x.mayT && y.mayF) || (x.mayF && y.mayT),
		mayF: (x.mayT && y.mayT) || (x.mayF && y.mayF),
	}
}

func minBig(a, b *big.Int) *big.Int {
	if a.Cmp(b) <= 0 {
		return a
	}
	return b
}

func maxBig(a, b *big.Int) *big.Int {
	if a.Cmp(b) >= 0 {
		return a
	}
	return b
}

// notBits returns the bitwise complement of x as a width-w value
// (known bits swap; the interval maps antitonically).
func notBits(x Value, w int) Value {
	m := mask(w)
	return Value{
		sort:  smt.BV(w),
		zeros: x.ones,
		ones:  x.zeros,
		lo:    new(big.Int).AndNot(m, x.hi),
		hi:    new(big.Int).AndNot(m, x.lo),
	}
}

// transferEq decides bitvector equality where the domains allow: known
// bits that conflict, or disjoint intervals, force false; two equal
// singletons force true.
func transferEq(x, y Value) Value {
	if new(big.Int).And(x.ones, y.zeros).Sign() != 0 ||
		new(big.Int).And(y.ones, x.zeros).Sign() != 0 {
		return ConstBool(false)
	}
	if x.hi.Cmp(y.lo) < 0 || y.hi.Cmp(x.lo) < 0 {
		return ConstBool(false)
	}
	if x.lo.Cmp(x.hi) == 0 && y.lo.Cmp(y.hi) == 0 && x.lo.Cmp(y.lo) == 0 {
		return ConstBool(true)
	}
	return TopBool()
}

// transferUlt handles unsigned < (strict) and <= (!strict).
func transferUlt(x, y Value, strict bool) Value {
	if strict {
		if x.hi.Cmp(y.lo) < 0 {
			return ConstBool(true)
		}
		if x.lo.Cmp(y.hi) >= 0 {
			return ConstBool(false)
		}
	} else {
		if x.hi.Cmp(y.lo) <= 0 {
			return ConstBool(true)
		}
		if x.lo.Cmp(y.hi) > 0 {
			return ConstBool(false)
		}
	}
	return TopBool()
}

// signedBounds maps an unsigned interval of width w to signed bounds.
func signedBounds(x Value, w int) (smin, smax *big.Int) {
	half := new(big.Int).Lsh(bigOne, uint(w-1))
	span := new(big.Int).Lsh(bigOne, uint(w))
	switch {
	case x.hi.Cmp(half) < 0: // entirely non-negative
		return x.lo, x.hi
	case x.lo.Cmp(half) >= 0: // entirely negative
		return new(big.Int).Sub(x.lo, span), new(big.Int).Sub(x.hi, span)
	default: // straddles the sign wrap: only the trivial signed bounds
		return new(big.Int).Neg(half), new(big.Int).Sub(half, bigOne)
	}
}

func transferSlt(x, y Value, strict bool) Value {
	w := x.sort.Width
	xmin, xmax := signedBounds(x, w)
	ymin, ymax := signedBounds(y, w)
	if strict {
		if xmax.Cmp(ymin) < 0 {
			return ConstBool(true)
		}
		if xmin.Cmp(ymax) >= 0 {
			return ConstBool(false)
		}
	} else {
		if xmax.Cmp(ymin) <= 0 {
			return ConstBool(true)
		}
		if xmin.Cmp(ymax) > 0 {
			return ConstBool(false)
		}
	}
	return TopBool()
}

// transferAdd abstracts x + y + cin (mod 2^w): the known-bits component
// is a tristate ripple-carry adder, the interval component the exact sum
// when it cannot wrap (or wraps uniformly). Sub and Neg route through it
// as x + ¬y + 1.
func transferAdd(x, y Value, w int, cin bool) Value {
	// Tristate ripple carry: 0/1 known, 2 unknown.
	const unknown = 2
	bitOf := func(v Value, i int) int {
		switch {
		case v.zeros.Bit(i) == 1:
			return 0
		case v.ones.Bit(i) == 1:
			return 1
		}
		return unknown
	}
	carry := 0
	if cin {
		carry = 1
	}
	zeros, ones := new(big.Int), new(big.Int)
	for i := 0; i < w; i++ {
		a, b := bitOf(x, i), bitOf(y, i)
		if a != unknown && b != unknown && carry != unknown {
			s := a + b + carry
			if s&1 == 1 {
				ones.SetBit(ones, i, 1)
			} else {
				zeros.SetBit(zeros, i, 1)
			}
			carry = s >> 1
			continue
		}
		// Carry-out is known when two inputs are known and equal
		// (majority decided regardless of the third).
		known := []int{}
		for _, v := range [3]int{a, b, carry} {
			if v != unknown {
				known = append(known, v)
			}
		}
		if len(known) == 2 && known[0] == known[1] {
			carry = known[0]
		} else {
			carry = unknown
		}
	}
	// Interval: exact when the concrete sum range stays on one side of
	// the wrap boundary.
	span := new(big.Int).Lsh(bigOne, uint(w))
	add := new(big.Int)
	if cin {
		add = bigOne
	}
	lo := new(big.Int).Add(x.lo, y.lo)
	lo.Add(lo, add)
	hi := new(big.Int).Add(x.hi, y.hi)
	hi.Add(hi, add)
	var ilo, ihi *big.Int
	switch {
	case hi.Cmp(span) < 0:
		ilo, ihi = lo, hi
	case lo.Cmp(span) >= 0:
		ilo, ihi = lo.Sub(lo, span), hi.Sub(hi, span)
	}
	return MakeBV(w, zeros, ones, ilo, ihi)
}

// transferMul abstracts x * y (mod 2^w): the interval is exact when the
// product cannot wrap; the low bits keep the sum of the operands' known
// trailing zeros.
func transferMul(x, y Value, w int) Value {
	span := new(big.Int).Lsh(bigOne, uint(w))
	var ilo, ihi *big.Int
	if p := new(big.Int).Mul(x.hi, y.hi); p.Cmp(span) < 0 {
		ihi = p
		ilo = new(big.Int).Mul(x.lo, y.lo)
	}
	tz := trailingKnownZeros(x, w) + trailingKnownZeros(y, w)
	if tz > w {
		tz = w
	}
	zeros := mask(tz)
	return MakeBV(w, zeros, nil, ilo, ihi)
}

// trailingKnownZeros counts consecutive known-0 bits from bit 0.
func trailingKnownZeros(x Value, w int) int {
	n := 0
	for n < w && x.zeros.Bit(n) == 1 {
		n++
	}
	return n
}

func transferShl(x, y Value, w int) Value {
	if s, ok := y.Singleton(); ok {
		if s.Cmp(big.NewInt(int64(w))) >= 0 {
			return ConstBV(bigZero, w)
		}
		sh := uint(s.Uint64())
		m := mask(w)
		zeros := new(big.Int).Lsh(x.zeros, sh)
		zeros.Or(zeros, mask(int(sh)))
		zeros.And(zeros, m)
		// Bits shifted out of range are irrelevant; bits shifted in are 0.
		ones := new(big.Int).Lsh(x.ones, sh)
		ones.And(ones, m)
		var ilo, ihi *big.Int
		if h := new(big.Int).Lsh(x.hi, sh); h.Cmp(m) <= 0 {
			ilo, ihi = new(big.Int).Lsh(x.lo, sh), h
		}
		return MakeBV(w, zeros, ones, ilo, ihi)
	}
	// Unknown shift: the known minimum shift still forces low zeros (a
	// shift ≥ w yields 0, which also has them).
	minSh := 0
	if y.lo.Cmp(big.NewInt(int64(w))) >= 0 {
		return ConstBV(bigZero, w)
	}
	minSh = int(y.lo.Uint64())
	tz := trailingKnownZeros(x, w) + minSh
	if tz > w {
		tz = w
	}
	return MakeBV(w, mask(tz), nil, nil, nil)
}

func transferLshr(x, y Value, w int) Value {
	if s, ok := y.Singleton(); ok {
		if s.Cmp(big.NewInt(int64(w))) >= 0 {
			return ConstBV(bigZero, w)
		}
		sh := uint(s.Uint64())
		zeros := new(big.Int).Rsh(x.zeros, sh)
		zeros.Or(zeros, new(big.Int).Lsh(mask(int(sh)), uint(w)-sh))
		ones := new(big.Int).Rsh(x.ones, sh)
		return MakeBV(w, zeros, ones, new(big.Int).Rsh(x.lo, sh), new(big.Int).Rsh(x.hi, sh))
	}
	// Unknown shift: result never exceeds x, and a shift ≥ w gives 0.
	wBig := big.NewInt(int64(w))
	ihi := new(big.Int).Rsh(x.hi, boundedShift(y.lo, w))
	var ilo *big.Int
	if y.hi.Cmp(wBig) >= 0 {
		ilo = bigZero
	} else {
		ilo = new(big.Int).Rsh(x.lo, uint(y.hi.Uint64()))
	}
	return MakeBV(w, nil, nil, ilo, ihi)
}

func boundedShift(s *big.Int, w int) uint {
	if s.Cmp(big.NewInt(int64(w))) >= 0 {
		return uint(w)
	}
	return uint(s.Uint64())
}

func transferAshr(x, y Value, w int) Value {
	// Sign bit known 0: identical to a logical shift.
	if x.zeros.Bit(w-1) == 1 {
		return transferLshr(x, y, w)
	}
	if s, ok := y.Singleton(); ok {
		sh := boundedShift(s, w)
		zeros, ones := new(big.Int), new(big.Int)
		for i := 0; i < w; i++ {
			src := i + int(sh)
			if src >= w {
				src = w - 1 // sign fill
			}
			if x.zeros.Bit(src) == 1 {
				zeros.SetBit(zeros, i, 1)
			} else if x.ones.Bit(src) == 1 {
				ones.SetBit(ones, i, 1)
			}
		}
		return MakeBV(w, zeros, ones, nil, nil)
	}
	return TopBV(w)
}

func transferSExt(x Value, wx, w int) Value {
	highOnes := new(big.Int).Lsh(mask(w-wx), uint(wx))
	switch {
	case x.zeros.Bit(wx-1) == 1: // sign known 0: zext
		zeros := new(big.Int).Or(highOnes, x.zeros)
		return MakeBV(w, zeros, x.ones, x.lo, x.hi)
	case x.ones.Bit(wx-1) == 1: // sign known 1: high bits all 1
		ones := new(big.Int).Or(highOnes, x.ones)
		d := new(big.Int).Sub(new(big.Int).Lsh(bigOne, uint(w)), new(big.Int).Lsh(bigOne, uint(wx)))
		return MakeBV(w, x.zeros, ones,
			new(big.Int).Add(x.lo, d), new(big.Int).Add(x.hi, d))
	default:
		// Sign unknown: the low wx-1 bits keep their knowledge; bit wx-1
		// and every extension bit share the (unknown) sign.
		lowKeep := mask(wx - 1)
		return MakeBV(w,
			new(big.Int).And(x.zeros, lowKeep),
			new(big.Int).And(x.ones, lowKeep), nil, nil)
	}
}
