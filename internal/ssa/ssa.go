// Package ssa passifies the IR: it converts the acyclic CFG to static
// single assignment form (paper §4.1, following Flanagan–Saxe) and turns
// every assignment into an equality constraint over versioned variables.
// Merge points get fresh versions with per-edge equalities instead of phi
// nodes, so downstream reachability conditions (internal/wp) are linear in
// program size when built over the shared term DAG.
package ssa

import (
	"fmt"

	"bf4/internal/ir"
	"bf4/internal/smt"
)

// EdgeKey identifies a CFG edge by node IDs.
type EdgeKey struct {
	From, To int
}

// Result is the passified form of a program.
type Result struct {
	P *ir.Program

	// NodeCond is the constraint a node contributes when executed
	// (assignment equalities); absent means true.
	NodeCond map[*ir.Node]*smt.Term
	// EdgeCond is the constraint on taking an edge: branch polarity
	// conjoined with merge (phi) equalities; absent means true.
	EdgeCond map[EdgeKey]*smt.Term
	// BranchCond is the versioned branch condition of each branch node.
	BranchCond map[*ir.Node]*smt.Term
	// HavocTerm is the fresh versioned term a Havoc node introduced.
	HavocTerm map[*ir.Node]*smt.Term
	// BaseVar maps every versioned term back to its IR variable.
	BaseVar map[*smt.Term]*ir.Var
	// InState gives each node's incoming symbolic state: the versioned
	// term for every variable (version 0 if untouched).
	inState map[*ir.Node]*pmap

	varByIdx []*ir.Var
	varIdx   map[*ir.Var]int32
	versions map[*ir.Var]int
	f        *smt.Factory
}

// Passify converts p to passified SSA form.
func Passify(p *ir.Program) *Result {
	r := &Result{
		P:          p,
		NodeCond:   map[*ir.Node]*smt.Term{},
		EdgeCond:   map[EdgeKey]*smt.Term{},
		BranchCond: map[*ir.Node]*smt.Term{},
		HavocTerm:  map[*ir.Node]*smt.Term{},
		BaseVar:    map[*smt.Term]*ir.Var{},
		inState:    map[*ir.Node]*pmap{},
		varIdx:     map[*ir.Var]int32{},
		versions:   map[*ir.Var]int{},
		f:          p.F,
	}
	for i, v := range p.VarList() {
		r.varIdx[v] = int32(i)
		r.varByIdx = append(r.varByIdx, v)
		r.BaseVar[v.Term] = v
	}

	topo := p.Topo()
	outState := map[*ir.Node]*pmap{}
	for _, n := range topo {
		in := r.mergeState(n, outState)
		r.inState[n] = in
		out := in
		switch n.Kind {
		case ir.Assign:
			rhs := r.subst(n.Expr, in)
			nv := r.freshVersion(n.Var)
			r.NodeCond[n] = r.f.Eq(nv, rhs)
			out = in.set(r.varIdx[n.Var], nv)
		case ir.Havoc:
			nv := r.freshVersion(n.Var)
			r.HavocTerm[n] = nv
			out = in.set(r.varIdx[n.Var], nv)
		case ir.Branch:
			cond := r.subst(n.Expr, in)
			r.BranchCond[n] = cond
			if len(n.Succs) == 2 {
				r.conjoinEdge(EdgeKey{n.ID, n.Succs[0].ID}, cond)
				r.conjoinEdge(EdgeKey{n.ID, n.Succs[1].ID}, r.f.Not(cond))
			}
		}
		outState[n] = out
	}
	return r
}

// termOf returns the current versioned term of v in state.
func (r *Result) termOf(state *pmap, v *ir.Var) *smt.Term {
	if got := state.get(r.varIdx[v]); got != nil {
		return got.(*smt.Term)
	}
	return v.Term
}

// StateTerm exposes the incoming versioned term of v at node n (used by
// trace reconstruction and Fast-Infer).
func (r *Result) StateTerm(n *ir.Node, v *ir.Var) *smt.Term {
	return r.termOf(r.inState[n], v)
}

func (r *Result) freshVersion(v *ir.Var) *smt.Term {
	r.versions[v]++
	t := r.f.Var(fmt.Sprintf("%s#%d", v.Name, r.versions[v]), v.Sort)
	r.BaseVar[t] = v
	return t
}

// subst replaces version-0 variables in e with their current versions.
func (r *Result) subst(e *smt.Term, state *pmap) *smt.Term {
	if state == nil {
		return e
	}
	m := map[*smt.Term]*smt.Term{}
	for _, vt := range e.Vars(nil) {
		v := r.BaseVar[vt]
		if v == nil || vt != v.Term {
			continue // already a versioned term (shouldn't occur in IR exprs)
		}
		if cur := r.termOf(state, v); cur != vt {
			m[vt] = cur
		}
	}
	if len(m) == 0 {
		return e
	}
	return smt.Substitute(r.f, e, m)
}

func (r *Result) conjoinEdge(k EdgeKey, c *smt.Term) {
	if old, ok := r.EdgeCond[k]; ok {
		c = r.f.And(old, c)
	}
	r.EdgeCond[k] = c
}

// mergeState computes the incoming state of n from its predecessors'
// out-states, introducing merged versions with per-edge equalities where
// they disagree.
func (r *Result) mergeState(n *ir.Node, outState map[*ir.Node]*pmap) *pmap {
	// Consider only predecessors already processed (reachable ones; the
	// topological order guarantees all reachable preds come first).
	var preds []*ir.Node
	for _, p := range n.Preds {
		if _, ok := outState[p]; ok {
			preds = append(preds, p)
		}
	}
	switch len(preds) {
	case 0:
		return nil
	case 1:
		return outState[preds[0]]
	}
	// Terminals never read state; skip the merge work.
	switch n.Kind {
	case ir.AcceptTerm, ir.RejectTerm, ir.UnreachTerm, ir.BugTerm:
		return outState[preds[0]]
	}
	base := outState[preds[0]]
	diffSet := map[int32]bool{}
	var keys []int32
	for _, p := range preds[1:] {
		keys = diffKeys(base, outState[p], keys[:0])
		for _, k := range keys {
			diffSet[k] = true
		}
	}
	if len(diffSet) == 0 {
		return base
	}
	merged := base
	order := make([]int32, 0, len(diffSet))
	for k := range diffSet {
		order = append(order, k)
	}
	sortInt32(order)
	for _, k := range order {
		v := r.varByIdx[k]
		nv := r.freshVersion(v)
		merged = merged.set(k, nv)
		for _, p := range preds {
			cur := r.termOf(outState[p], v)
			r.conjoinEdge(EdgeKey{p.ID, n.ID}, r.f.Eq(nv, cur))
		}
	}
	return merged
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
