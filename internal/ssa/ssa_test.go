package ssa

import (
	"testing"

	"bf4/internal/ir"
	"bf4/internal/smt"
)

// straightLine builds: start -> x=1 -> x=x+1 -> accept.
func straightLine() (*ir.Program, *ir.Var) {
	p := ir.NewProgram("line")
	x := p.NewVar("x", smt.BV(8))
	start := p.NewNode(ir.Nop)
	p.Start = start
	a1 := p.NewNode(ir.Assign)
	a1.Var, a1.Expr = x, p.F.BVConst64(1, 8)
	a2 := p.NewNode(ir.Assign)
	a2.Var, a2.Expr = x, p.F.Add(x.Term, p.F.BVConst64(1, 8))
	acc := p.NewNode(ir.AcceptTerm)
	p.Edge(start, a1)
	p.Edge(a1, a2)
	p.Edge(a2, acc)
	return p, x
}

func TestStraightLineVersions(t *testing.T) {
	p, x := straightLine()
	r := Passify(p)
	var conds []*smt.Term
	for _, n := range p.Topo() {
		if c, ok := r.NodeCond[n]; ok {
			conds = append(conds, c)
		}
	}
	if len(conds) != 2 {
		t.Fatalf("node constraints = %d, want 2", len(conds))
	}
	// First: x#1 == 1. Second: x#2 == x#1 + 1.
	f := p.F
	x1 := f.BVVar("x#1", 8)
	x2 := f.BVVar("x#2", 8)
	if conds[0] != f.Eq(x1, f.BVConst64(1, 8)) {
		t.Errorf("first constraint: %s", conds[0])
	}
	if conds[1] != f.Eq(x2, f.Add(x1, f.BVConst64(1, 8))) {
		t.Errorf("second constraint: %s", conds[1])
	}
	if r.BaseVar[x1] != x || r.BaseVar[x2] != x {
		t.Error("BaseVar must map versions back to x")
	}
}

// diamondAssign builds: start -> br(c) -> (x=1 | x=2) -> join -> accept,
// exercising phi insertion at the join.
func diamondAssign() *ir.Program {
	p := ir.NewProgram("diamond")
	x := p.NewVar("x", smt.BV(8))
	p.NewVar("c", smt.BoolSort)
	start := p.NewNode(ir.Nop)
	p.Start = start
	br := p.NewNode(ir.Branch)
	br.Expr = p.Vars["c"].Term
	a1 := p.NewNode(ir.Assign)
	a1.Var, a1.Expr = x, p.F.BVConst64(1, 8)
	a2 := p.NewNode(ir.Assign)
	a2.Var, a2.Expr = x, p.F.BVConst64(2, 8)
	join := p.NewNode(ir.Nop)
	acc := p.NewNode(ir.AcceptTerm)
	p.Edge(start, br)
	p.Edge(br, a1)
	p.Edge(br, a2)
	p.Edge(a1, join)
	p.Edge(a2, join)
	p.Edge(join, acc)
	return p
}

func TestPhiAtJoin(t *testing.T) {
	p := diamondAssign()
	r := Passify(p)
	// The join must have created a merged version with per-edge
	// equalities combined with the branch polarity.
	f := p.F
	foundMerge := 0
	for k, c := range r.EdgeCond {
		_ = k
		vars := c.Vars(nil)
		for _, v := range vars {
			if r.BaseVar[v] != nil && r.BaseVar[v].Name == "x" && v.Name() != "x" {
				foundMerge++
				break
			}
		}
	}
	if foundMerge < 2 {
		t.Fatalf("expected merged-version equalities on both join edges, got %d", foundMerge)
	}
	_ = f
}

func TestBranchPolarityOnEdges(t *testing.T) {
	p := diamondAssign()
	r := Passify(p)
	var br *ir.Node
	for _, n := range p.Nodes {
		if n.Kind == ir.Branch {
			br = n
		}
	}
	tCond := r.EdgeCond[EdgeKey{br.ID, br.Succs[0].ID}]
	fCond := r.EdgeCond[EdgeKey{br.ID, br.Succs[1].ID}]
	if tCond == nil || fCond == nil {
		t.Fatal("branch edges must carry conditions")
	}
	// Under c=true the true-edge condition holds and the false-edge
	// condition does not.
	env := smt.Env{}
	env.SetBool("c", true)
	if !smt.EvalBool(tCond, env) || smt.EvalBool(fCond, env) {
		t.Fatalf("polarity wrong: t=%s f=%s", tCond, fCond)
	}
}

func TestHavocCreatesFreshUnconstrained(t *testing.T) {
	p := ir.NewProgram("havoc")
	x := p.NewVar("x", smt.BV(8))
	start := p.NewNode(ir.Nop)
	p.Start = start
	a := p.NewNode(ir.Assign)
	a.Var, a.Expr = x, p.F.BVConst64(5, 8)
	h := p.NewNode(ir.Havoc)
	h.Var = x
	use := p.NewNode(ir.Branch)
	use.Expr = p.F.Eq(x.Term, p.F.BVConst64(7, 8))
	acc := p.NewNode(ir.AcceptTerm)
	rej := p.NewNode(ir.RejectTerm)
	p.Edge(start, a)
	p.Edge(a, h)
	p.Edge(h, use)
	p.Edge(use, acc)
	p.Edge(use, rej)
	r := Passify(p)
	ht := r.HavocTerm[h]
	if ht == nil {
		t.Fatal("havoc term missing")
	}
	if _, constrained := r.NodeCond[h]; constrained {
		t.Fatal("havoc must not constrain")
	}
	// The branch must read the havoc version, not the assigned one.
	bc := r.BranchCond[use]
	usesHavoc := false
	for _, v := range bc.Vars(nil) {
		if v == ht {
			usesHavoc = true
		}
	}
	if !usesHavoc {
		t.Fatalf("branch condition %s does not use havoc version %s", bc, ht)
	}
}

func TestStateTermLookup(t *testing.T) {
	p, x := straightLine()
	r := Passify(p)
	// At the accept node, x should be version 2.
	var acc *ir.Node
	for _, n := range p.Nodes {
		if n.Kind == ir.AcceptTerm {
			acc = n
		}
	}
	got := r.StateTerm(acc, x)
	if got.Name() != "x#2" {
		t.Fatalf("StateTerm at accept = %s, want x#2", got.Name())
	}
}

func TestPmapBasics(t *testing.T) {
	var m *pmap
	for i := int32(0); i < 100; i++ {
		m = m.set(i, int(i*10))
	}
	for i := int32(0); i < 100; i++ {
		if got := m.get(i); got.(int) != int(i*10) {
			t.Fatalf("get(%d) = %v", i, got)
		}
	}
	if m.get(1000) != nil {
		t.Fatal("missing key must be nil")
	}
	if m.size() != 100 {
		t.Fatalf("size = %d", m.size())
	}
	// Persistence: updating does not mutate the original.
	m2 := m.set(5, 999)
	if m.get(5).(int) != 50 || m2.get(5).(int) != 999 {
		t.Fatal("persistence violated")
	}
}

func TestPmapHistoryIndependence(t *testing.T) {
	var a, b *pmap
	for i := int32(0); i < 50; i++ {
		a = a.set(i, int(i))
	}
	for i := int32(49); i >= 0; i-- {
		b = b.set(i, int(i))
	}
	// Same contents, different insertion orders: diff must be empty.
	if d := diffKeys(a, b, nil); len(d) != 0 {
		t.Fatalf("equal maps diff: %v", d)
	}
}

func TestPmapDiff(t *testing.T) {
	var a *pmap
	for i := int32(0); i < 20; i++ {
		a = a.set(i, int(i))
	}
	b := a.set(3, 999).set(17, 888)
	d := diffKeys(a, b, nil)
	if len(d) != 2 {
		t.Fatalf("diff = %v, want keys 3 and 17", d)
	}
	seen := map[int32]bool{}
	for _, k := range d {
		seen[k] = true
	}
	if !seen[3] || !seen[17] {
		t.Fatalf("diff = %v", d)
	}
	// Keys present in only one map.
	c := a.set(100, 1)
	d = diffKeys(a, c, nil)
	if len(d) != 1 || d[0] != 100 {
		t.Fatalf("one-sided diff = %v", d)
	}
}
