package ssa

// pmap is a persistent integer-keyed map implemented as a treap with
// deterministic, key-derived priorities. History independence (same
// contents ⇒ same tree shape, and — thanks to node interning via value
// comparison at rebuild — heavy structural sharing) lets state diffing at
// CFG merge points prune entire shared subtrees by pointer equality.
type pmap struct {
	key   int32
	prio  uint32
	val   interface{}
	l, r  *pmap
	count int32
}

// prioOf derives a pseudo-random but deterministic priority from the key.
func prioOf(key int32) uint32 {
	x := uint32(key) * 2654435761
	x ^= x >> 16
	x *= 2246822519
	x ^= x >> 13
	return x
}

func (m *pmap) size() int {
	if m == nil {
		return 0
	}
	return int(m.count)
}

func mk(key int32, val interface{}, l, r *pmap) *pmap {
	return &pmap{key: key, prio: prioOf(key), val: val, l: l, r: r,
		count: 1 + int32(l.size()) + int32(r.size())}
}

// get returns the value for key, or nil.
func (m *pmap) get(key int32) interface{} {
	for m != nil {
		switch {
		case key < m.key:
			m = m.l
		case key > m.key:
			m = m.r
		default:
			return m.val
		}
	}
	return nil
}

// set returns a new map with key set to val; the receiver is unchanged.
func (m *pmap) set(key int32, val interface{}) *pmap {
	if m == nil {
		return mk(key, val, nil, nil)
	}
	switch {
	case key < m.key:
		nl := m.l.set(key, val)
		if nl == m.l {
			return m
		}
		return rebalanceLeft(m, nl)
	case key > m.key:
		nr := m.r.set(key, val)
		if nr == m.r {
			return m
		}
		return rebalanceRight(m, nr)
	default:
		if m.val == val {
			return m
		}
		return mk(m.key, val, m.l, m.r)
	}
}

func rebalanceLeft(m, nl *pmap) *pmap {
	if nl != nil && nl.prio > m.prio {
		// Rotate right.
		return mk(nl.key, nl.val, nl.l, mk(m.key, m.val, nl.r, m.r))
	}
	return mk(m.key, m.val, nl, m.r)
}

func rebalanceRight(m, nr *pmap) *pmap {
	if nr != nil && nr.prio > m.prio {
		// Rotate left.
		return mk(nr.key, nr.val, mk(m.key, m.val, m.l, nr.l), nr.r)
	}
	return mk(m.key, m.val, m.l, nr)
}

// split partitions m around key into (subtree with keys < key, value at
// key or nil, subtree with keys > key). Read-only: creates fresh spine
// nodes but never mutates m.
func split(m *pmap, key int32) (l *pmap, val interface{}, found bool, r *pmap) {
	if m == nil {
		return nil, nil, false, nil
	}
	switch {
	case key < m.key:
		ll, v, f, lr := split(m.l, key)
		return ll, v, f, mk(m.key, m.val, lr, m.r)
	case key > m.key:
		rl, v, f, rr := split(m.r, key)
		return mk(m.key, m.val, m.l, rl), v, f, rr
	default:
		return m.l, m.val, true, m.r
	}
}

func allKeys(m *pmap, dst []int32) []int32 {
	if m == nil {
		return dst
	}
	dst = allKeys(m.l, dst)
	dst = append(dst, m.key)
	return allKeys(m.r, dst)
}

// diffKeys appends to dst the keys whose values differ (or exist in only
// one map) between a and b. Treap shapes are history-independent, so maps
// with equal key sets align node-for-node and pointer-equal subtrees are
// pruned — the cost is proportional to the difference, not the map size.
// This is what keeps passification linear at CFG merge points. Unequal
// key sets (a variable first assigned in only one branch arm) fall back
// to a split-based walk of the divergent region.
func diffKeys(a, b *pmap, dst []int32) []int32 {
	if a == b {
		return dst
	}
	if a == nil {
		return allKeys(b, dst)
	}
	if b == nil {
		return allKeys(a, dst)
	}
	if a.key == b.key {
		if a.val != b.val {
			dst = append(dst, a.key)
		}
		dst = diffKeys(a.l, b.l, dst)
		return diffKeys(a.r, b.r, dst)
	}
	// Divergent shapes: split the lower-priority root's tree around the
	// higher-priority key. Sharing is lost locally, which is fine — this
	// region genuinely differs.
	if a.prio > b.prio || (a.prio == b.prio && a.key < b.key) {
		bl, bv, found, br := split(b, a.key)
		if !found || bv != a.val {
			dst = append(dst, a.key)
		}
		dst = diffKeys(a.l, bl, dst)
		return diffKeys(a.r, br, dst)
	}
	al, av, found, ar := split(a, b.key)
	if !found || av != b.val {
		dst = append(dst, b.key)
	}
	dst = diffKeys(al, b.l, dst)
	return diffKeys(ar, b.r, dst)
}
