package ssa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPmapMatchesMapSemantics drives the persistent treap against Go's
// built-in map with random operation sequences.
func TestPmapMatchesMapSemantics(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var m *pmap
		ref := map[int32]int{}
		for op := 0; op < 200; op++ {
			k := int32(rng.Intn(40))
			v := rng.Intn(1000)
			m = m.set(k, v)
			ref[k] = v
			// Random lookups.
			q := int32(rng.Intn(50))
			got := m.get(q)
			want, ok := ref[q]
			if !ok {
				if got != nil {
					return false
				}
			} else if got == nil || got.(int) != want {
				return false
			}
		}
		return m.size() == len(ref)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPmapDiffMatchesReference: diffKeys agrees with a reference diff for
// arbitrary divergent histories.
func TestPmapDiffMatchesReference(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var base *pmap
		refA := map[int32]int{}
		for i := 0; i < 50; i++ {
			k := int32(rng.Intn(30))
			v := rng.Intn(100)
			base = base.set(k, v)
			refA[k] = v
		}
		a, b := base, base
		refB := map[int32]int{}
		for k, v := range refA {
			refB[k] = v
		}
		// Diverge both copies.
		for i := 0; i < 20; i++ {
			k := int32(rng.Intn(40))
			v := rng.Intn(100) + 1000
			if rng.Intn(2) == 0 {
				a = a.set(k, v)
				refA[k] = v
			} else {
				b = b.set(k, v)
				refB[k] = v
			}
		}
		want := map[int32]bool{}
		for k, v := range refA {
			if bv, ok := refB[k]; !ok || bv != v {
				want[k] = true
			}
		}
		for k, v := range refB {
			if av, ok := refA[k]; !ok || av != v {
				want[k] = true
			}
		}
		got := map[int32]bool{}
		for _, k := range diffKeys(a, b, nil) {
			got[k] = true
		}
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
