// Package faultnet wraps net.Conn and net.Listener with scriptable fault
// injection for chaos-testing the runtime shim's control channel. Faults
// model the failure classes an always-on controller⇄shim link actually
// sees: connections cut mid-flight (Drop), stalled peers (Delay), frames
// cut short by a dying peer (Truncate — the write delivers a prefix and
// the connection dies), and fragmented delivery (Partial — the write
// succeeds but lands byte-dribbled across many segments).
//
// A Schedule decides which fault each I/O operation suffers. Two
// implementations are provided: Script replays an explicit fault list
// (ops beyond the list run clean), and Random draws faults from a seeded
// PRNG with fixed per-class probabilities, so a chaos run is fully
// reproducible from its seed.
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Kind classifies one injected fault.
type Kind int

const (
	// None lets the operation through untouched.
	None Kind = iota
	// Delay sleeps before performing the operation.
	Delay
	// Drop closes the underlying connection; the operation fails.
	Drop
	// Truncate (writes only) delivers a strict prefix of the payload,
	// then closes the connection — a frame cut mid-wire.
	Truncate
	// Partial (writes) delivers the payload in single-byte segments; the
	// operation still succeeds. On reads it caps the buffer at one byte.
	Partial
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	case Truncate:
		return "truncate"
	case Partial:
		return "partial"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one injected fault instance.
type Fault struct {
	Kind  Kind
	Sleep time.Duration // for Delay
}

// Schedule decides the fault for each I/O operation. Implementations
// must be safe for concurrent use: one schedule may be shared across
// every connection of a chaos run.
type Schedule interface {
	// Next returns the fault for the next operation; write reports
	// whether it is a write (Truncate only applies to writes).
	Next(write bool) Fault
}

// Script replays a fixed fault sequence, one entry per I/O operation;
// operations past the end of the list run fault-free.
type Script struct {
	mu     sync.Mutex
	Faults []Fault
	pos    int
}

// NewScript builds a Script schedule from an explicit fault list.
func NewScript(faults ...Fault) *Script { return &Script{Faults: faults} }

// Next implements Schedule.
func (s *Script) Next(bool) Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pos >= len(s.Faults) {
		return Fault{}
	}
	f := s.Faults[s.pos]
	s.pos++
	return f
}

// RandomOpts sets the per-operation fault probabilities for a Random
// schedule. Probabilities are checked in the order drop, truncate,
// delay, partial; the first hit wins.
type RandomOpts struct {
	DropProb     float64
	TruncateProb float64
	DelayProb    float64
	PartialProb  float64
	// MaxDelay bounds injected delays (default 1ms).
	MaxDelay time.Duration
}

// Random draws faults from a seeded PRNG, making a chaos run
// reproducible from its seed.
type Random struct {
	mu   sync.Mutex
	rng  *rand.Rand
	opts RandomOpts
}

// NewRandom builds a seeded Random schedule.
func NewRandom(seed int64, opts RandomOpts) *Random {
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = time.Millisecond
	}
	return &Random{rng: rand.New(rand.NewSource(seed)), opts: opts}
}

// Next implements Schedule.
func (r *Random) Next(write bool) Fault {
	r.mu.Lock()
	defer r.mu.Unlock()
	roll := r.rng.Float64()
	// Delay amount is drawn unconditionally to keep the PRNG stream
	// independent of which class fires.
	sleep := time.Duration(1 + r.rng.Int63n(int64(r.opts.MaxDelay)))
	switch {
	case roll < r.opts.DropProb:
		return Fault{Kind: Drop}
	case roll < r.opts.DropProb+r.opts.TruncateProb:
		if write {
			return Fault{Kind: Truncate}
		}
		return Fault{Kind: Drop}
	case roll < r.opts.DropProb+r.opts.TruncateProb+r.opts.DelayProb:
		return Fault{Kind: Delay, Sleep: sleep}
	case roll < r.opts.DropProb+r.opts.TruncateProb+r.opts.DelayProb+r.opts.PartialProb:
		return Fault{Kind: Partial}
	}
	return Fault{}
}

// Conn wraps a net.Conn, consulting a Schedule on every Read and Write.
type Conn struct {
	net.Conn
	sched Schedule
}

// Wrap attaches a fault schedule to a connection. A nil schedule yields
// a transparent wrapper.
func Wrap(c net.Conn, s Schedule) *Conn { return &Conn{Conn: c, sched: s} }

func (c *Conn) next(write bool) Fault {
	if c.sched == nil {
		return Fault{}
	}
	return c.sched.Next(write)
}

// errInjected marks transport errors produced by the harness, so tests
// can tell injected failures from real ones.
type errInjected struct{ kind Kind }

func (e errInjected) Error() string {
	return fmt.Sprintf("faultnet: injected %s fault", e.kind)
}

// IsInjected reports whether err came from an injected fault.
func IsInjected(err error) bool {
	_, ok := err.(errInjected)
	return ok
}

// Write applies the scheduled fault, then (unless dropped) writes.
func (c *Conn) Write(p []byte) (int, error) {
	switch f := c.next(true); f.Kind {
	case Drop:
		c.Conn.Close()
		return 0, errInjected{Drop}
	case Truncate:
		// Deliver a strict prefix — never a complete frame — then die.
		n := len(p) / 2
		if n > 0 {
			n, _ = c.Conn.Write(p[:n])
		}
		c.Conn.Close()
		return n, errInjected{Truncate}
	case Delay:
		time.Sleep(f.Sleep)
	case Partial:
		total := 0
		for i := range p {
			n, err := c.Conn.Write(p[i : i+1])
			total += n
			if err != nil {
				return total, err
			}
		}
		return total, nil
	}
	return c.Conn.Write(p)
}

// Read applies the scheduled fault, then (unless dropped) reads.
func (c *Conn) Read(p []byte) (int, error) {
	switch f := c.next(false); f.Kind {
	case Drop:
		c.Conn.Close()
		return 0, errInjected{Drop}
	case Delay:
		time.Sleep(f.Sleep)
	case Partial:
		if len(p) > 1 {
			p = p[:1]
		}
	}
	return c.Conn.Read(p)
}

// Listener wraps accepted connections with schedules from NewSchedule
// (one fresh schedule per connection when the factory is set, a shared
// Schedule otherwise).
type Listener struct {
	net.Listener
	// Shared applies one schedule to every accepted connection.
	Shared Schedule
	// NewSchedule, when set, overrides Shared with a per-connection
	// schedule.
	NewSchedule func() Schedule
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	s := l.Shared
	if l.NewSchedule != nil {
		s = l.NewSchedule()
	}
	return Wrap(c, s), nil
}

// Dialer dials TCP connections wrapped with a shared fault schedule —
// the client-side counterpart of Listener.
type Dialer struct {
	Schedule Schedule
	// Timeout bounds each dial (default 5s).
	Timeout time.Duration
}

// Dial connects to addr and wraps the connection.
func (d *Dialer) Dial(addr string) (net.Conn, error) {
	timeout := d.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return Wrap(c, d.Schedule), nil
}
