package faultnet

import (
	"net"
	"sync"
)

// Gate is a controllable two-way network partition. While cut, every
// operation on gated connections fails (and the connections close, as a
// real partition eventually surfaces to TCP), and gated dials are
// refused. Heal lifts the partition; reconnects then succeed. Cut/Heal
// are safe to call from a test goroutine while traffic is in flight —
// that is the point.
type Gate struct {
	mu    sync.Mutex
	cut   bool
	conns map[net.Conn]bool
}

// NewGate builds a healed (open) gate.
func NewGate() *Gate { return &Gate{conns: map[net.Conn]bool{}} }

// Cut partitions the gate: tracked connections are closed and further
// operations or dials fail until Heal.
func (g *Gate) Cut() {
	g.mu.Lock()
	g.cut = true
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.conns = map[net.Conn]bool{}
	g.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Heal lifts the partition.
func (g *Gate) Heal() {
	g.mu.Lock()
	g.cut = false
	g.mu.Unlock()
}

// IsCut reports whether the gate is currently partitioned.
func (g *Gate) IsCut() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cut
}

// Wrap tracks a connection under the gate. If the gate is already cut
// the connection is closed immediately.
func (g *Gate) Wrap(c net.Conn) net.Conn {
	gc := &gatedConn{Conn: c, g: g}
	g.mu.Lock()
	if g.cut {
		g.mu.Unlock()
		c.Close()
		return gc
	}
	g.conns[c] = true
	g.mu.Unlock()
	return gc
}

// Dial connects through dial and gates the result; while cut it fails
// without dialing.
func (g *Gate) Dial(dial func() (net.Conn, error)) (net.Conn, error) {
	if g.IsCut() {
		return nil, errInjected{Drop}
	}
	c, err := dial()
	if err != nil {
		return nil, err
	}
	return g.Wrap(c), nil
}

type gatedConn struct {
	net.Conn
	g *Gate
}

func (c *gatedConn) Read(p []byte) (int, error) {
	if c.g.IsCut() {
		c.Conn.Close()
		return 0, errInjected{Drop}
	}
	return c.Conn.Read(p)
}

func (c *gatedConn) Write(p []byte) (int, error) {
	if c.g.IsCut() {
		c.Conn.Close()
		return 0, errInjected{Drop}
	}
	return c.Conn.Write(p)
}

func (c *gatedConn) Close() error {
	c.g.mu.Lock()
	delete(c.g.conns, c.Conn)
	c.g.mu.Unlock()
	return c.Conn.Close()
}
