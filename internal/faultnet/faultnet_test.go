package faultnet

import (
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a wrapped client conn speaking to a plain server conn
// over a real TCP loopback socket.
func pipePair(t *testing.T, s Schedule) (client *Conn, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(done)
			return
		}
		done <- c
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srv, ok := <-done
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { raw.Close(); srv.Close() })
	return Wrap(raw, s), srv
}

func TestScriptDropFailsWrite(t *testing.T) {
	c, _ := pipePair(t, NewScript(Fault{Kind: Drop}))
	if _, err := c.Write([]byte("hello\n")); !IsInjected(err) {
		t.Fatalf("want injected drop, got %v", err)
	}
	// The underlying connection is closed: further writes fail too.
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write after drop succeeded")
	}
}

func TestTruncateDeliversStrictPrefix(t *testing.T) {
	c, srv := pipePair(t, NewScript(Fault{Kind: Truncate}))
	payload := []byte("0123456789\n")
	n, err := c.Write(payload)
	if !IsInjected(err) {
		t.Fatalf("want injected truncate, got %v", err)
	}
	if n >= len(payload) {
		t.Fatalf("truncate delivered %d of %d bytes", n, len(payload))
	}
	got, _ := io.ReadAll(srv)
	if len(got) != n {
		t.Fatalf("server saw %d bytes, client claims %d", len(got), n)
	}
}

func TestPartialWriteStillDelivers(t *testing.T) {
	c, srv := pipePair(t, NewScript(Fault{Kind: Partial}))
	payload := []byte("fragmented-frame\n")
	if n, err := c.Write(payload); err != nil || n != len(payload) {
		t.Fatalf("partial write: n=%d err=%v", n, err)
	}
	c.Close()
	got, _ := io.ReadAll(srv)
	if string(got) != string(payload) {
		t.Fatalf("server saw %q", got)
	}
}

func TestDelayThenSucceed(t *testing.T) {
	c, srv := pipePair(t, NewScript(Fault{Kind: Delay, Sleep: 20 * time.Millisecond}))
	start := time.Now()
	if _, err := c.Write([]byte("late\n")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay not applied: %v", d)
	}
	c.Close()
	got, _ := io.ReadAll(srv)
	if string(got) != "late\n" {
		t.Fatalf("server saw %q", got)
	}
}

func TestRandomIsDeterministic(t *testing.T) {
	opts := RandomOpts{DropProb: 0.1, TruncateProb: 0.1, DelayProb: 0.2, PartialProb: 0.2}
	a, b := NewRandom(7, opts), NewRandom(7, opts)
	for i := 0; i < 1000; i++ {
		fa, fb := a.Next(i%2 == 0), b.Next(i%2 == 0)
		if fa != fb {
			t.Fatalf("op %d: %v vs %v", i, fa, fb)
		}
	}
}

func TestRandomRatesRoughlyHonored(t *testing.T) {
	r := NewRandom(42, RandomOpts{DropProb: 0.25})
	drops := 0
	for i := 0; i < 4000; i++ {
		if r.Next(true).Kind == Drop {
			drops++
		}
	}
	if drops < 800 || drops > 1200 {
		t.Fatalf("drop rate off: %d/4000", drops)
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := &Listener{Listener: inner, Shared: NewScript(Fault{Kind: Drop})}
	defer ln.Close()
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			c.Write([]byte("hi"))
			c.Close()
		}
	}()
	c, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 4)
	if _, err := c.Read(buf); !IsInjected(err) {
		t.Fatalf("accepted conn not wrapped: %v", err)
	}
}
