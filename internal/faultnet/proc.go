package faultnet

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
)

// Proc supervises a child process for crash-injection tests: a shard
// (or whole shim) run out-of-process so the test can deliver a real
// SIGKILL mid-operation — no deferred cleanup, no flushed buffers,
// exactly the crash the snapshot+journal recovery path claims to
// survive.
type Proc struct {
	cmd *exec.Cmd

	mu   sync.Mutex
	done chan struct{}
	werr error
}

// StartProc launches name with args. env entries are appended to the
// parent environment; stdout/stderr may be nil to discard output.
func StartProc(name string, args, env []string, stdout, stderr io.Writer) (*Proc, error) {
	cmd := exec.Command(name, args...)
	cmd.Env = append(os.Environ(), env...)
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("faultnet: start %s: %w", name, err)
	}
	p := &Proc{cmd: cmd, done: make(chan struct{})}
	go func() {
		err := cmd.Wait()
		p.mu.Lock()
		p.werr = err
		p.mu.Unlock()
		close(p.done)
	}()
	return p, nil
}

// Pid returns the child's process id.
func (p *Proc) Pid() int { return p.cmd.Process.Pid }

// Kill delivers SIGKILL — the child gets no chance to flush or clean
// up — and waits for the process to be reaped.
func (p *Proc) Kill() error {
	err := p.cmd.Process.Kill()
	<-p.done
	if err != nil && !alreadyFinished(err) {
		return err
	}
	return nil
}

// Signal sends sig to the child.
func (p *Proc) Signal(sig os.Signal) error { return p.cmd.Process.Signal(sig) }

// Wait blocks until the child exits and returns its wait error (nil on
// clean exit).
func (p *Proc) Wait() error {
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.werr
}

// Exited reports whether the child has exited.
func (p *Proc) Exited() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

func alreadyFinished(err error) bool {
	return errors.Is(err, os.ErrProcessDone)
}
