package smt

import (
	"fmt"
	"testing"
)

// wideSharedDAG builds n conditions that all reference one wide shared
// subformula over nvars variables — the shape solver.Assert sees when
// many bug conditions share a program's path prefix.
func wideSharedDAG(f *Factory, nvars, n int) []*Term {
	shared := f.True()
	for i := 0; i < nvars; i++ {
		v := f.BVVar(fmt.Sprintf("v%d", i), 32)
		shared = f.And(shared, f.Eq(v, f.BVConst64(int64(i), 32)))
	}
	conds := make([]*Term, n)
	for i := 0; i < n; i++ {
		conds[i] = f.And(shared, f.BoolVar(fmt.Sprintf("c%d", i)))
	}
	return conds
}

func TestVarsDedup(t *testing.T) {
	f := NewFactory()
	x := f.BVVar("x", 8)
	y := f.BVVar("y", 8)
	// x occurs three times in the DAG; it must appear once in the result.
	tm := f.And(f.Eq(x, y), f.Ult(x, f.BVConst64(3, 8)), f.Eq(f.Add(x, y), f.BVConst64(0, 8)))
	vars := tm.Vars(nil)
	counts := map[*Term]int{}
	for _, v := range vars {
		counts[v]++
	}
	if counts[x] != 1 || counts[y] != 1 || len(vars) != 2 {
		t.Fatalf("want {x:1 y:1}, got %v (len %d)", counts, len(vars))
	}

	// Accumulating: variables already in dst must not be re-appended.
	vars2 := f.Eq(x, f.BVConst64(1, 8)).Vars(vars)
	if len(vars2) != 2 {
		t.Fatalf("accumulating Vars duplicated an existing entry: %v", vars2)
	}

	// And with a persistent seen-set across calls.
	seen := make(map[uint32]bool)
	var acc []*Term
	for _, c := range wideSharedDAG(f, 8, 4) {
		acc = c.VarsSeen(acc, seen)
	}
	counts = map[*Term]int{}
	for _, v := range acc {
		counts[v]++
	}
	for v, n := range counts {
		if n != 1 {
			t.Fatalf("VarsSeen appended %s %d times", v, n)
		}
	}
	if len(acc) != 8+4 {
		t.Fatalf("want 12 distinct vars, got %d", len(acc))
	}
}

// BenchmarkVarsAccumulate contrasts the two accumulation idioms over N
// conditions sharing one wide DAG. Vars re-walks the full shared
// subgraph per condition (quadratic in total), while VarsSeen with a
// persistent seen-set visits every distinct node once — the reason
// solver.Assert keeps a per-solver seen map.
func BenchmarkVarsAccumulate(b *testing.B) {
	const nvars, nconds = 200, 100
	f := NewFactory()
	conds := wideSharedDAG(f, nvars, nconds)

	b.Run("Vars", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var acc []*Term
			for _, c := range conds {
				acc = c.Vars(acc)
			}
			if len(acc) != nvars+nconds {
				b.Fatal("bad var count")
			}
		}
	})
	b.Run("VarsSeen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var acc []*Term
			seen := make(map[uint32]bool, 4*nvars)
			for _, c := range conds {
				acc = c.VarsSeen(acc, seen)
			}
			if len(acc) != nvars+nconds {
				b.Fatal("bad var count")
			}
		}
	})
}
