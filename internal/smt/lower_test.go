package smt_test

import (
	"errors"
	"fmt"
	"math/big"
	"testing"

	"bf4/internal/smt"
	"bf4/internal/smt/termgen"
)

// lowerRun lowers term with one slot per distinct variable, fills the
// register file from env (normalized per sort, unbound vars zero), and
// runs the program.
func lowerRun(term *smt.Term, env smt.Env) (bool, error) {
	vars := term.Vars(nil)
	slots := map[string]int{}
	for i, v := range vars {
		slots[v.Name()] = i
	}
	prog, err := smt.LowerBool(term, len(vars), func(name string, s smt.Sort) (int, error) {
		i, ok := slots[name]
		if !ok {
			return 0, fmt.Errorf("slot for unknown var %s", name)
		}
		return i, nil
	})
	if err != nil {
		return false, err
	}
	regs := make([]uint64, prog.NumRegs())
	for _, v := range vars {
		val, ok := env[v.Name()]
		if !ok {
			continue
		}
		regs[slots[v.Name()]] = normSlot(val, v.Sort())
	}
	return prog.Eval(regs), nil
}

// normSlot reduces a value to the slot representation the lowering
// contract requires: booleans 0/1, width-w vectors mod 2^w.
func normSlot(v *big.Int, s smt.Sort) uint64 {
	if s.IsBool() {
		if v.Sign() != 0 {
			return 1
		}
		return 0
	}
	m := new(big.Int).Mod(new(big.Int).Set(v), new(big.Int).Lsh(big.NewInt(1), uint(s.Width)))
	if m.Sign() < 0 {
		m.Add(m, new(big.Int).Lsh(big.NewInt(1), uint(s.Width)))
	}
	return m.Uint64()
}

// mustAgree checks the fast path against EvalBool for one boolean term.
func mustAgree(t *testing.T, term *smt.Term, env smt.Env) {
	t.Helper()
	want := smt.EvalBool(term, env)
	got, err := lowerRun(term, env)
	if err != nil {
		t.Fatalf("LowerBool(%s): %v", term, err)
	}
	if got != want {
		t.Fatalf("fast path disagrees on %s: fast=%v slow=%v (env %v)", term, got, want, env)
	}
}

// checkBVExpr verifies the fast path computes the exact value of a BV
// expression: Eq against the slow path's value must hold, Eq against
// value+1 must not.
func checkBVExpr(t *testing.T, f *smt.Factory, expr *smt.Term, env smt.Env) {
	t.Helper()
	w := expr.Sort().Width
	want := smt.Eval(expr, env)
	mustAgree(t, f.Eq(expr, f.BVConst(want, w)), env)
	wrong := new(big.Int).Add(want, big.NewInt(1))
	mustAgree(t, f.Eq(expr, f.BVConst(wrong, w)), env)
}

// valueGrid returns adversarial values for a width: boundaries, sign bit,
// alternating pattern, and shift-amount edge cases (w-1, w, w+1).
func valueGrid(w int) []*big.Int {
	max := new(big.Int).Lsh(big.NewInt(1), uint(w))
	max.Sub(max, big.NewInt(1))
	vals := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		new(big.Int).Set(max),
		new(big.Int).Sub(max, big.NewInt(1)),
		new(big.Int).Rsh(max, 1),                            // 0111...
		new(big.Int).Lsh(big.NewInt(1), uint(w-1)),          // sign bit
		new(big.Int).Mod(big.NewInt(int64(w-1)), incr(max)), // shift edges
		new(big.Int).Mod(big.NewInt(int64(w)), incr(max)),
		new(big.Int).Mod(big.NewInt(int64(w+1)), incr(max)),
	}
	pat := new(big.Int)
	for i := 0; i < w; i += 2 {
		pat.SetBit(pat, i, 1)
	}
	vals = append(vals, pat)
	// Dedup (small grid, quadratic is fine).
	out := vals[:0]
	for _, v := range vals {
		dup := false
		for _, u := range out {
			if u.Cmp(v) == 0 {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}

func incr(v *big.Int) *big.Int { return new(big.Int).Add(v, big.NewInt(1)) }

// TestLowerBinaryOpsMatchEval sweeps every binary BV op across
// width-boundary widths and adversarial value pairs, requiring the
// bytecode to compute the exact slow-path value.
func TestLowerBinaryOpsMatchEval(t *testing.T) {
	f := smt.NewFactory()
	ops := []struct {
		name string
		mk   func(a, b *smt.Term) *smt.Term
	}{
		{"add", f.Add}, {"sub", f.Sub}, {"mul", f.Mul},
		{"bvand", f.BVAnd}, {"bvor", f.BVOr}, {"bvxor", f.BVXor},
		{"shl", f.Shl}, {"lshr", f.Lshr}, {"ashr", f.Ashr},
	}
	for _, w := range []int{1, 2, 7, 63, 64} {
		x, y := f.BVVar("x", w), f.BVVar("y", w)
		grid := valueGrid(w)
		for _, op := range ops {
			expr := op.mk(x, y)
			if expr.Op() == smt.OpConst || expr.Op() == smt.OpVar {
				continue // folded away by the factory
			}
			for _, xv := range grid {
				for _, yv := range grid {
					env := smt.Env{"x": xv, "y": yv}
					checkBVExpr(t, f, expr, env)
				}
			}
		}
	}
}

// TestLowerComparisonsMatchEval covers the comparison ops, including the
// signed ones whose lowering sign-extends in registers.
func TestLowerComparisonsMatchEval(t *testing.T) {
	f := smt.NewFactory()
	for _, w := range []int{1, 2, 7, 63, 64} {
		x, y := f.BVVar("x", w), f.BVVar("y", w)
		cmps := []*smt.Term{
			f.Eq(x, y), f.Ult(x, y), f.Ule(x, y), f.Slt(x, y), f.Sle(x, y),
		}
		grid := valueGrid(w)
		for _, xv := range grid {
			for _, yv := range grid {
				env := smt.Env{"x": xv, "y": yv}
				for _, c := range cmps {
					mustAgree(t, c, env)
				}
			}
		}
	}
}

// TestLowerUnaryAndStructuralOps covers neg/bvnot, ite over BV branches,
// concat, extract and the extensions at 64-bit boundaries.
func TestLowerUnaryAndStructuralOps(t *testing.T) {
	f := smt.NewFactory()
	for _, w := range []int{1, 7, 63, 64} {
		x := f.BVVar("x", w)
		for _, xv := range valueGrid(w) {
			env := smt.Env{"x": xv}
			checkBVExpr(t, f, f.Neg(x), env)
			checkBVExpr(t, f, f.BVNot(x), env)
			if w > 1 {
				checkBVExpr(t, f, f.Extract(x, w-1, 1), env)
				checkBVExpr(t, f, f.Extract(x, w-1, w-1), env)
				checkBVExpr(t, f, f.Extract(x, w-2, 0), env)
			}
			if w < 64 {
				checkBVExpr(t, f, f.ZExt(x, 64), env)
				checkBVExpr(t, f, f.SExt(x, 64), env)
			}
		}
	}
	// Concat splits that land exactly on 64.
	for _, split := range [][2]int{{1, 63}, {32, 32}, {63, 1}, {7, 2}, {1, 1}} {
		a, b := f.BVVar("a", split[0]), f.BVVar("b", split[1])
		for _, av := range valueGrid(split[0]) {
			for _, bv := range valueGrid(split[1]) {
				checkBVExpr(t, f, f.Concat(a, b), smt.Env{"a": av, "b": bv})
			}
		}
	}
	// BV-sorted ite (boolean ite is factory-rewritten into and/or).
	c := f.BoolVar("c")
	x, y := f.BVVar("x64", 64), f.BVVar("y64", 64)
	for _, cv := range []bool{false, true} {
		env := smt.Env{"x64": big.NewInt(5), "y64": new(big.Int).Lsh(big.NewInt(1), 63)}
		env.SetBool("c", cv)
		checkBVExpr(t, f, f.Ite(c, x, y), env)
	}
}

// TestLowerBooleanOps covers the n-ary and/or chains, xor, not and eq
// over booleans (iff via the factory).
func TestLowerBooleanOps(t *testing.T) {
	f := smt.NewFactory()
	p, q, r := f.BoolVar("p"), f.BoolVar("q"), f.BoolVar("r")
	terms := []*smt.Term{
		f.And(p, q, r), f.Or(p, q, r), f.Xor(p, q), f.Not(p),
		f.Implies(p, q), f.Eq(p, q), f.Ite(p, q, r),
		f.And(f.Or(p, q), f.Or(f.Not(p), r)),
	}
	for mask := 0; mask < 8; mask++ {
		env := smt.Env{}
		env.SetBool("p", mask&1 != 0)
		env.SetBool("q", mask&2 != 0)
		env.SetBool("r", mask&4 != 0)
		for _, term := range terms {
			mustAgree(t, term, env)
		}
	}
}

// TestLowerUnboundVarIsZero: a slot of -1 must behave like Eval's
// unbound-variable-to-zero convention.
func TestLowerUnboundVarIsZero(t *testing.T) {
	f := smt.NewFactory()
	x := f.BVVar("x", 8)
	h := f.BoolVar("h")
	term := f.And(f.Eq(x, f.BVConst64(0, 8)), f.Not(h))
	prog, err := smt.LowerBool(term, 0, func(name string, s smt.Sort) (int, error) {
		return -1, nil // everything unbound
	})
	if err != nil {
		t.Fatalf("LowerBool: %v", err)
	}
	regs := make([]uint64, prog.NumRegs())
	got := prog.Eval(regs)
	want := smt.EvalBool(term, smt.Env{})
	if got != want {
		t.Fatalf("unbound eval: fast=%v slow=%v", got, want)
	}
	if !got {
		t.Fatalf("x==0 && !h should hold with both unbound")
	}
}

// TestLowerWideTermFails: any width > 64 in the DAG must refuse to lower
// with ErrWideTerm (the shim's slow-path trigger).
func TestLowerWideTermFails(t *testing.T) {
	f := smt.NewFactory()
	x65 := f.BVVar("x", 65)
	noSlots := func(name string, s smt.Sort) (int, error) { return -1, nil }
	if _, err := smt.LowerBool(f.Eq(x65, f.BVConst64(0, 65)), 0, noSlots); !errors.Is(err, smt.ErrWideTerm) {
		t.Fatalf("width-65 var: got %v, want ErrWideTerm", err)
	}
	a, b := f.BVVar("a", 33), f.BVVar("b", 32)
	wide := f.Eq(f.Concat(a, b), f.BVConst64(1, 65))
	if _, err := smt.LowerBool(wide, 0, noSlots); !errors.Is(err, smt.ErrWideTerm) {
		t.Fatalf("65-bit concat: got %v, want ErrWideTerm", err)
	}
	// Width-64 intermediate is fine.
	c, d := f.BVVar("c", 32), f.BVVar("d", 32)
	ok := f.Eq(f.Concat(c, d), f.BVConst64(7, 64))
	if _, err := smt.LowerBool(ok, 0, noSlots); err != nil {
		t.Fatalf("64-bit concat should lower: %v", err)
	}
}

// TestLowerSlotErrorAborts: a SlotFunc error (shadow-table variable)
// surfaces to the caller.
func TestLowerSlotErrorAborts(t *testing.T) {
	f := smt.NewFactory()
	shadowErr := errors.New("shadow var")
	term := f.And(f.BoolVar("ok"), f.BoolVar("t2.hit"))
	_, err := smt.LowerBool(term, 1, func(name string, s smt.Sort) (int, error) {
		if name == "t2.hit" {
			return 0, shadowErr
		}
		return 0, nil
	})
	if !errors.Is(err, shadowErr) {
		t.Fatalf("got %v, want slot error", err)
	}
}

// TestLowerSharedDAGOnce: a shared subterm compiles to one instruction
// sequence (the memo), keeping programs linear in DAG size.
func TestLowerSharedDAGOnce(t *testing.T) {
	f := smt.NewFactory()
	x, y := f.BVVar("x", 32), f.BVVar("y", 32)
	sum := f.Add(x, y)
	term := f.And(f.Ult(sum, f.BVConst64(10, 32)), f.Not(f.Eq(sum, f.BVConst64(3, 32))))
	prog, err := smt.LowerBool(term, 2, func(name string, s smt.Sort) (int, error) {
		if name == "x" {
			return 0, nil
		}
		return 1, nil
	})
	if err != nil {
		t.Fatalf("LowerBool: %v", err)
	}
	// add, const10, ult, const3, eq, not, and = 7; a tree-expanded
	// lowering would emit the add twice.
	if prog.Len() > 7 {
		t.Fatalf("shared DAG lowered to %d instructions, want <= 7", prog.Len())
	}
	env := smt.Env{"x": big.NewInt(4), "y": big.NewInt(5)}
	mustAgree(t, term, env)
}

// FuzzLower cross-checks the bytecode against smt.EvalBool on random
// term DAGs. termgen's width pool tops out well under 64, so lowering
// must always succeed here; any disagreement or lowering failure is a
// bug.
func FuzzLower(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	f.Add([]byte{0xff, 0x80, 0x40, 0x20, 0x10, 0x08, 0x04, 0x02, 0x01, 0x00, 0xaa, 0x55})
	f.Add([]byte("differential-lowering-seed-with-some-length-to-burn"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fac := smt.NewFactory()
		g := termgen.New(fac, data)
		term := g.Bool(3)
		env := g.Env()
		want := smt.EvalBool(term, env)
		got, err := lowerRun(term, env)
		if err != nil {
			t.Fatalf("LowerBool failed on lowerable term %s: %v", term, err)
		}
		if got != want {
			t.Fatalf("fast/slow disagree on %s: fast=%v slow=%v", term, got, want)
		}
	})
}
