package smt

import (
	"math/rand"
	"testing"
)

func TestSerializeParseRoundTrip(t *testing.T) {
	f := NewFactory()
	a, b := f.BVVar("pcn_nat$0.key1", 8), f.BVVar("pcn_nat$0.mask3", 8)
	p := f.BoolVar("pcn_nat$0.hit")
	sorts := VarSorts{
		"pcn_nat$0.key1":  BV(8),
		"pcn_nat$0.mask3": BV(8),
		"pcn_nat$0.hit":   BoolSort,
	}
	terms := []*Term{
		f.True(),
		f.False(),
		p,
		f.Not(p),
		f.And(p, f.Eq(a, f.BVConst64(3, 8))),
		f.Or(f.Not(p), f.Ult(a, b), f.Eq(f.BVAnd(a, b), f.BVConst64(0, 8))),
		f.Eq(f.Add(a, b), f.Sub(a, b)),
		f.Ult(f.Shl(a, f.BVConst64(1, 8)), f.Lshr(b, f.BVConst64(2, 8))),
		f.Eq(f.Concat(a, b), f.BVConst64(0xABCD, 16)),
		f.Eq(f.Extract(a, 7, 4), f.BVConst64(5, 4)),
		f.Eq(f.ZExt(a, 16), f.SExt(b, 16)),
		f.Slt(a, b),
		f.Xor(p, f.Ule(a, b)),
		f.Eq(f.Ite(p, a, b), f.Mul(a, b)),
		f.Eq(f.Neg(a), f.BVNot(b)),
	}
	for _, orig := range terms {
		s := Serialize(orig)
		got, err := Parse(f, s, sorts)
		if err != nil {
			t.Errorf("parse %q: %v", s, err)
			continue
		}
		if got != orig {
			t.Errorf("round trip changed term:\n  orig: %s\n  got:  %s\n  via:  %s", orig, got, s)
		}
	}
}

func TestParseErrors(t *testing.T) {
	f := NewFactory()
	sorts := VarSorts{"x": BV(8)}
	cases := []string{
		"",
		"(and true",
		"|unknownvar|",
		"(frobnicate true)",
		"(= |x|)",
		"(_ bvXYZ 8)",
		"true extra",
	}
	for _, src := range cases {
		if _, err := Parse(f, src, sorts); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// TestSerializeEvalEquivalence: the parsed term must evaluate identically
// to the original on random environments (semantic round trip).
func TestSerializeEvalEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := NewFactory()
	a, b := f.BVVar("a", 6), f.BVVar("b", 6)
	sorts := VarSorts{"a": BV(6), "b": BV(6), "c": BV(6), "d": BV(6)}
	for iter := 0; iter < 100; iter++ {
		ref := randomRef(rng, 3)
		orig := ref.build(f, 6)
		// Constant-folded terms are fine; serialize whatever came out.
		cmp := f.Ult(orig, f.Add(a, b))
		s := Serialize(cmp)
		got, err := Parse(f, s, sorts)
		if err != nil {
			t.Fatalf("iter %d: %v (%s)", iter, err, s)
		}
		for trial := 0; trial < 3; trial++ {
			env := Env{}
			env.SetUint64("a", rng.Uint64()&63)
			env.SetUint64("b", rng.Uint64()&63)
			if EvalBool(cmp, env) != EvalBool(got, env) {
				t.Fatalf("iter %d: semantics changed through serialization", iter)
			}
		}
	}
}
