package smt

import (
	"errors"
	"fmt"
)

// This file lowers boolean QF_BV terms into flat bytecode programs over
// uint64 registers — the shim's fast-path evaluator (paper §4.4 at
// controller speed). A Program is compiled once per forbidden condition
// and then evaluated per update with zero allocation: the caller vends a
// scratch register file (typically from a sync.Pool), writes the update's
// concrete values into the slot registers, and runs Eval.
//
// Lowering is total on the fragment the shim actually sees — widths ≤ 64
// with every variable either bindable from the update or absent (absent
// variables evaluate to zero, matching Eval's unbound-variable
// convention). Terms outside the fragment (a width > 64 anywhere in the
// DAG, or a variable the caller refuses to assign a slot) fail to lower
// and stay on the smt.EvalBool slow path.

// ErrWideTerm reports a bitvector wider than 64 bits somewhere in the
// term, which the uint64 register machine cannot represent.
var ErrWideTerm = errors.New("smt: lower: bitvector width exceeds 64")

// SlotFunc assigns register slots to variables during lowering. It
// returns the register index holding the variable's value at Eval time.
// The caller must store values pre-normalized to the variable's sort
// (booleans as 0/1, width-w vectors reduced mod 2^w) — lowering emits no
// re-normalization for slot reads, mirroring how Eval normalizes at the
// env boundary. Returning slot -1 with a nil error declares the variable
// unbound: it lowers to the constant 0 (Eval's unbound convention).
// Returning an error aborts lowering (e.g. a shadow-table variable that
// only the slow path can resolve).
type SlotFunc func(name string, s Sort) (slot int, err error)

// pOp enumerates fast-path instructions.
type pOp uint8

const (
	pConst   pOp = iota // dst = imm
	pNot                // dst = a ^ 1            (bool)
	pAnd                // dst = a & b            (bool)
	pOr                 // dst = a | b            (bool)
	pXor                // dst = a ^ b            (bool)
	pEq                 // dst = (a == b)         (values pre-normalized)
	pIte                // dst = regs[imm]!=0 ? a : b
	pUlt                // dst = (a < b)  unsigned
	pUle                // dst = (a <= b) unsigned
	pSlt                // dst = (a < b)  signed at width w
	pSle                // dst = (a <= b) signed at width w
	pAdd                // dst = (a + b) & mask
	pSub                // dst = (a - b) & mask
	pNeg                // dst = (-a) & mask
	pMul                // dst = (a * b) & mask
	pBVAnd              // dst = a & b
	pBVOr               // dst = a | b
	pBVXor              // dst = a ^ b
	pBVNot              // dst = a ^ mask
	pShl                // dst = b>=w ? 0 : (a << b) & mask
	pLshr               // dst = b>=w ? 0 : a >> b
	pAshr               // dst = signext(a,w) >> min(b,w), & mask
	pConcat             // dst = (a << imm) | b   (imm = width of b)
	pExtract            // dst = (a >> imm) & mask (imm = lo)
	pSExt               // dst = signext(a, imm) & mask (imm = source width)
)

// pinst is one register-machine instruction. mask is the result width's
// 2^w-1 (all-ones at w=64); w carries the width the op semantics need
// (result width for shifts, argument width for signed compares).
type pinst struct {
	op   pOp
	dst  uint32
	a, b uint32
	imm  uint64
	mask uint64
	w    uint8
}

// Program is a compiled boolean term: straight-line code over a uint64
// register file. Immutable after LowerBool; safe for concurrent Eval with
// distinct register files.
type Program struct {
	code  []pinst
	out   uint32
	nRegs int
}

// NumRegs returns the register-file size Eval requires.
func (p *Program) NumRegs() int { return p.nRegs }

// Len returns the instruction count (diagnostics).
func (p *Program) Len() int { return len(p.code) }

// Eval runs the program over regs (len >= NumRegs). Slot registers must
// already hold the current update's normalized values; temp registers
// need no initialization. Returns the boolean result.
func (p *Program) Eval(regs []uint64) bool {
	for i := range p.code {
		in := &p.code[i]
		a, b := regs[in.a], regs[in.b]
		var v uint64
		switch in.op {
		case pConst:
			v = in.imm
		case pNot:
			v = a ^ 1
		case pAnd:
			v = a & b
		case pOr:
			v = a | b
		case pXor:
			v = a ^ b
		case pEq:
			if a == b {
				v = 1
			}
		case pIte:
			if regs[in.imm] != 0 {
				v = a
			} else {
				v = b
			}
		case pUlt:
			if a < b {
				v = 1
			}
		case pUle:
			if a <= b {
				v = 1
			}
		case pSlt:
			sh := 64 - uint(in.w)
			if int64(a<<sh)>>sh < int64(b<<sh)>>sh {
				v = 1
			}
		case pSle:
			sh := 64 - uint(in.w)
			if int64(a<<sh)>>sh <= int64(b<<sh)>>sh {
				v = 1
			}
		case pAdd:
			v = (a + b) & in.mask
		case pSub:
			v = (a - b) & in.mask
		case pNeg:
			v = (-a) & in.mask
		case pMul:
			v = (a * b) & in.mask
		case pBVAnd:
			v = a & b
		case pBVOr:
			v = a | b
		case pBVXor:
			v = a ^ b
		case pBVNot:
			v = a ^ in.mask
		case pShl:
			if b < uint64(in.w) {
				v = (a << b) & in.mask
			}
		case pLshr:
			if b < uint64(in.w) {
				v = a >> b
			}
		case pAshr:
			w := uint(in.w)
			s := int64(a<<(64-w)) >> (64 - w)
			shv := b
			if shv > uint64(w) {
				shv = uint64(w)
			}
			v = uint64(s>>shv) & in.mask
		case pConcat:
			v = (a << in.imm) | b
		case pExtract:
			v = (a >> in.imm) & in.mask
		case pSExt:
			w := uint(in.imm)
			s := int64(a<<(64-w)) >> (64 - w)
			v = uint64(s) & in.mask
		}
		regs[in.dst] = v
	}
	return regs[p.out] != 0
}

// mask64 returns 2^w - 1 as a uint64 (all ones at w >= 64).
func mask64(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

type lowerer struct {
	code  []pinst
	next  uint32
	memo  map[*Term]uint32
	zero  int32 // register holding constant 0, or -1
	slots SlotFunc
}

func (l *lowerer) temp() uint32 {
	r := l.next
	l.next++
	return r
}

func (l *lowerer) emit(in pinst) uint32 {
	in.dst = l.temp()
	l.code = append(l.code, in)
	return in.dst
}

// constReg materializes a constant, deduplicating the common zero.
func (l *lowerer) constReg(v uint64) uint32 {
	if v == 0 && l.zero >= 0 {
		return uint32(l.zero)
	}
	r := l.emit(pinst{op: pConst, imm: v})
	if v == 0 {
		l.zero = int32(r)
	}
	return r
}

// LowerBool compiles a boolean term into a Program. Slot registers
// [0, firstTemp) are owned by the caller (populated per update via the
// SlotFunc contract); temporaries are allocated from firstTemp up. The
// same DAG node is compiled once. Fails with ErrWideTerm when any
// subterm's bitvector sort exceeds 64 bits, or with the SlotFunc's error
// for variables the caller cannot bind.
func LowerBool(t *Term, firstTemp int, slots SlotFunc) (*Program, error) {
	mustBool(t)
	l := &lowerer{
		next:  uint32(firstTemp),
		memo:  make(map[*Term]uint32),
		zero:  -1,
		slots: slots,
	}
	out, err := l.lower(t)
	if err != nil {
		return nil, err
	}
	n := int(l.next)
	if int(out) >= n {
		n = int(out) + 1
	}
	return &Program{code: l.code, out: out, nRegs: n}, nil
}

func (l *lowerer) lower(t *Term) (uint32, error) {
	if r, ok := l.memo[t]; ok {
		return r, nil
	}
	r, err := l.lowerUncached(t)
	if err != nil {
		return 0, err
	}
	l.memo[t] = r
	return r, nil
}

// chain lowers an n-ary boolean op as a left fold of the binary op.
func (l *lowerer) chain(op pOp, args []*Term) (uint32, error) {
	acc, err := l.lower(args[0])
	if err != nil {
		return 0, err
	}
	for _, a := range args[1:] {
		r, err := l.lower(a)
		if err != nil {
			return 0, err
		}
		acc = l.emit(pinst{op: op, a: acc, b: r})
	}
	return acc, nil
}

func (l *lowerer) bin(op pOp, t *Term, imm uint64, mask uint64, w uint8) (uint32, error) {
	a, err := l.lower(t.args[0])
	if err != nil {
		return 0, err
	}
	b, err := l.lower(t.args[1])
	if err != nil {
		return 0, err
	}
	return l.emit(pinst{op: op, a: a, b: b, imm: imm, mask: mask, w: w}), nil
}

func (l *lowerer) un(op pOp, t *Term, imm uint64, mask uint64, w uint8) (uint32, error) {
	a, err := l.lower(t.args[0])
	if err != nil {
		return 0, err
	}
	return l.emit(pinst{op: op, a: a, imm: imm, mask: mask, w: w}), nil
}

func (l *lowerer) lowerUncached(t *Term) (uint32, error) {
	w := t.sort.Width
	if w > 64 {
		return 0, fmt.Errorf("%w (width %d in %s)", ErrWideTerm, w, t.op)
	}
	mask := mask64(w)
	switch t.op {
	case OpTrue:
		return l.constReg(1), nil
	case OpFalse:
		return l.constReg(0), nil
	case OpConst:
		return l.constReg(t.val.Uint64()), nil
	case OpVar:
		slot, err := l.slots(t.name, t.sort)
		if err != nil {
			return 0, err
		}
		if slot < 0 {
			return l.constReg(0), nil
		}
		return uint32(slot), nil
	case OpNot:
		return l.un(pNot, t, 0, 0, 0)
	case OpAnd:
		return l.chain(pAnd, t.args)
	case OpOr:
		return l.chain(pOr, t.args)
	case OpXor:
		return l.bin(pXor, t, 0, 0, 0)
	case OpImplies:
		// Not interned by the factory (Implies builds Or), but kept for
		// completeness with eval.
		a, err := l.lower(t.args[0])
		if err != nil {
			return 0, err
		}
		b, err := l.lower(t.args[1])
		if err != nil {
			return 0, err
		}
		na := l.emit(pinst{op: pNot, a: a})
		return l.emit(pinst{op: pOr, a: na, b: b}), nil
	case OpIte:
		cond, err := l.lower(t.args[0])
		if err != nil {
			return 0, err
		}
		a, err := l.lower(t.args[1])
		if err != nil {
			return 0, err
		}
		b, err := l.lower(t.args[2])
		if err != nil {
			return 0, err
		}
		return l.emit(pinst{op: pIte, a: a, b: b, imm: uint64(cond)}), nil
	case OpEq:
		return l.bin(pEq, t, 0, 0, 0)
	case OpUlt:
		return l.bin(pUlt, t, 0, 0, 0)
	case OpUle:
		return l.bin(pUle, t, 0, 0, 0)
	case OpSlt, OpSle:
		wa := t.args[0].sort.Width
		if wa > 64 {
			return 0, fmt.Errorf("%w (width %d in %s)", ErrWideTerm, wa, t.op)
		}
		op := pSlt
		if t.op == OpSle {
			op = pSle
		}
		return l.bin(op, t, 0, 0, uint8(wa))
	case OpAdd:
		return l.bin(pAdd, t, 0, mask, 0)
	case OpSub:
		return l.bin(pSub, t, 0, mask, 0)
	case OpNeg:
		return l.un(pNeg, t, 0, mask, 0)
	case OpMul:
		return l.bin(pMul, t, 0, mask, 0)
	case OpBVAnd:
		return l.bin(pBVAnd, t, 0, 0, 0)
	case OpBVOr:
		return l.bin(pBVOr, t, 0, 0, 0)
	case OpBVXor:
		return l.bin(pBVXor, t, 0, 0, 0)
	case OpBVNot:
		return l.un(pBVNot, t, 0, mask, 0)
	case OpShl:
		return l.bin(pShl, t, 0, mask, uint8(w))
	case OpLshr:
		return l.bin(pLshr, t, 0, mask, uint8(w))
	case OpAshr:
		return l.bin(pAshr, t, 0, mask, uint8(w))
	case OpConcat:
		return l.bin(pConcat, t, uint64(t.args[1].sort.Width), 0, 0)
	case OpExtract:
		return l.un(pExtract, t, uint64(t.lo), mask64(t.hi-t.lo+1), 0)
	case OpZExt:
		// Zero-extension of an already-normalized value is the identity:
		// alias the argument's register.
		return l.lower(t.args[0])
	case OpSExt:
		return l.un(pSExt, t, uint64(t.args[0].sort.Width), mask, 0)
	default:
		return 0, fmt.Errorf("smt: lower: unknown op %v", t.op)
	}
}
