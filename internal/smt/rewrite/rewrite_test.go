package rewrite_test

import (
	"math/rand"
	"testing"

	"bf4/internal/smt"
	"bf4/internal/smt/rewrite"
	"bf4/internal/smt/termgen"
)

// checkPreserves verifies that rt evaluates exactly like t under a batch
// of pseudo-random environments over t's variables (fixed seed, so the
// test is deterministic).
func checkPreserves(t *testing.T, tm, rt *smt.Term, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vars := tm.Vars(rt.Vars(nil))
	for trial := 0; trial < 32; trial++ {
		env := make(smt.Env, len(vars))
		for _, v := range vars {
			if v.Sort().IsBool() {
				env.SetBool(v.Name(), rng.Intn(2) == 1)
			} else {
				env.SetUint64(v.Name(), rng.Uint64())
			}
		}
		want, got := smt.Eval(tm, env), smt.Eval(rt, env)
		if want.Cmp(got) != 0 {
			t.Fatalf("rewrite changed evaluation: %v vs %v\noriginal  %s\nrewritten %s",
				want, got, tm, rt)
		}
	}
}

func TestDecidedFold(t *testing.T) {
	f := smt.NewFactory()
	x := f.BVVar("x", 8)
	// (x | 0xF0) >= 0x10 is decided true by the known-bits domain even
	// though neither side is constant.
	cond := f.Ule(f.BVConst64(0x10, 8), f.BVOr(x, f.BVConst64(0xF0, 8)))
	r := rewrite.New(f)
	if got := r.Rewrite(cond); !got.IsTrue() {
		t.Fatalf("want true, got %s", got)
	}
	if r.Stats().DecidedBool == 0 {
		t.Fatal("DecidedBool stat not incremented")
	}
}

func TestDecidedIte(t *testing.T) {
	f := smt.NewFactory()
	x := f.BVVar("x", 8)
	y := f.BVVar("y", 8)
	// Condition (x|1) != 0 is decided true, so the ite collapses to y.
	cond := f.Distinct(f.BVOr(x, f.BVConst64(1, 8)), f.BVConst64(0, 8))
	ite := f.Ite(cond, y, f.BVConst64(7, 8))
	r := rewrite.New(f)
	if got := r.Rewrite(ite); got != y {
		t.Fatalf("want y, got %s", got)
	}
}

func TestCarryFreeAdd(t *testing.T) {
	f := smt.NewFactory()
	x := f.BVVar("x", 8)
	// (x & 0x0F) + 0xA0 cannot carry: the operands occupy disjoint bits.
	lo := f.BVAnd(x, f.BVConst64(0x0F, 8))
	sum := f.Add(lo, f.BVConst64(0xA0, 8))
	r := rewrite.New(f)
	rt := r.Rewrite(sum)
	if r.Stats().CarryFreeAdd == 0 {
		t.Fatalf("CarryFreeAdd did not fire; got %s", rt)
	}
	checkPreserves(t, sum, rt, 1)
}

func TestBVAbsorb(t *testing.T) {
	f := smt.NewFactory()
	x := f.BVVar("x", 8)
	// (x & 0x0F) | 0xF0 keeps both operands, but
	// (x & 0x0F) & 0x0F absorbs the mask (it is 1 on every may-set bit)...
	lo := f.BVAnd(x, f.BVConst64(0x0F, 8))
	// ...except the factory may fold that itself; build a non-syntactic
	// case instead: (x&0x0F) | (x&0x0F | 0xF0) — the domain knows the
	// left side only sets bits the right side covers.
	r := rewrite.New(f)
	both := f.BVOr(lo, f.BVConst64(0xF0, 8))
	rt := r.Rewrite(f.BVAnd(both, f.BVConst64(0xFF, 8)))
	checkPreserves(t, both, rt, 2)
}

func TestExtractPushConcat(t *testing.T) {
	f := smt.NewFactory()
	a := f.BVVar("a", 8)
	b := f.BVVar("b", 8)
	cat := f.Concat(a, b) // a is the high half
	r := rewrite.New(f)
	if got := r.Rewrite(f.Extract(cat, 3, 0)); got != b && got != r.Rewrite(f.Extract(b, 3, 0)) {
		// low slice must not mention a
		for _, v := range got.Vars(nil) {
			if v == a {
				t.Fatalf("extract of low half still mentions high operand: %s", got)
			}
		}
	}
	hi := r.Rewrite(f.Extract(cat, 15, 8))
	if hi != a {
		t.Fatalf("extract of high half: want a, got %s", hi)
	}
	if r.Stats().ExtractPush == 0 {
		t.Fatal("ExtractPush stat not incremented")
	}
}

func TestExtractPushZExt(t *testing.T) {
	f := smt.NewFactory()
	a := f.BVVar("a", 8)
	z := f.ZExt(a, 16)
	r := rewrite.New(f)
	if got := r.Rewrite(f.Extract(z, 15, 8)); !got.IsConst() {
		t.Fatalf("extract of zero extension: want constant 0, got %s", got)
	}
	if got := r.Rewrite(f.Extract(z, 7, 0)); got != a {
		t.Fatalf("extract of operand: want a, got %s", got)
	}
}

func TestNarrowCmp(t *testing.T) {
	f := smt.NewFactory()
	x := f.BVVar("x", 8)
	y := f.BVVar("y", 8)
	// Both sides have their top 4 bits pinned to 1010; the comparison is
	// decided by the low 4 bits.
	a := f.BVOr(f.BVAnd(x, f.BVConst64(0x0F, 8)), f.BVConst64(0xA0, 8))
	b := f.BVOr(f.BVAnd(y, f.BVConst64(0x0F, 8)), f.BVConst64(0xA0, 8))
	for _, mk := range []func(_, _ *smt.Term) *smt.Term{f.Eq, f.Ult, f.Ule, f.Slt, f.Sle} {
		r := rewrite.New(f)
		cmp := mk(a, b)
		rt := r.Rewrite(cmp)
		if r.Stats().NarrowedCmp == 0 {
			t.Fatalf("NarrowedCmp did not fire on %s", cmp)
		}
		checkPreserves(t, cmp, rt, 3)
	}
}

func TestBoolAbsorption(t *testing.T) {
	f := smt.NewFactory()
	x := f.BoolVar("x")
	y := f.BoolVar("y")
	z := f.BoolVar("z")

	r := rewrite.New(f)
	// x ∧ (x ∨ y) = x
	if got := r.Rewrite(f.And(x, f.Or(x, y))); got != x {
		t.Fatalf("x∧(x∨y): want x, got %s", got)
	}
	// x ∨ (x ∧ y) = x
	if got := r.Rewrite(f.Or(x, f.And(x, y))); got != x {
		t.Fatalf("x∨(x∧y): want x, got %s", got)
	}
	// x ∧ (¬x ∨ y) = x ∧ y
	if got, want := r.Rewrite(f.And(x, f.Or(f.Not(x), y))), f.And(x, y); got != want {
		t.Fatalf("x∧(¬x∨y): want %s, got %s", want, got)
	}
	// x ∨ (¬x ∧ y ∧ z) = x ∨ (y ∧ z)
	if got, want := r.Rewrite(f.Or(x, f.And(f.Not(x), y, z))), f.Or(x, f.And(y, z)); got != want {
		t.Fatalf("x∨(¬x∧y∧z): want %s, got %s", want, got)
	}
	if r.Stats().BoolAbsorbed == 0 {
		t.Fatal("BoolAbsorbed stat not incremented")
	}
}

func TestFactorCommon(t *testing.T) {
	f := smt.NewFactory()
	a := f.BoolVar("a")
	b := f.BoolVar("b")
	x := f.BoolVar("x")
	y := f.BoolVar("y")
	z := f.BoolVar("z")

	r := rewrite.New(f)
	// (a∧b∧x) ∨ (a∧b∧y) ∨ (a∧b∧z) = a ∧ b ∧ (x∨y∨z)
	or := f.Or(f.And(a, b, x), f.And(a, b, y), f.And(a, b, z))
	got := r.Rewrite(or)
	want := f.And(a, b, f.Or(x, y, z))
	if got != want {
		t.Fatalf("factoring: want %s, got %s", want, got)
	}
	if r.Stats().Factored == 0 {
		t.Fatal("Factored stat not incremented")
	}
	checkPreserves(t, or, got, 4)

	// Dual: (a∨x) ∧ (a∨y) = a ∨ (x∧y)
	and := f.And(f.Or(a, x), f.Or(a, y))
	got = r.Rewrite(and)
	want = f.Or(a, f.And(x, y))
	if got != want {
		t.Fatalf("dual factoring: want %s, got %s", want, got)
	}
	checkPreserves(t, and, got, 5)
}

func TestFactorGuardNoGrowth(t *testing.T) {
	f := smt.NewFactory()
	a := f.BoolVar("a")
	x := f.BoolVar("x")
	y := f.BoolVar("y")
	z := f.BoolVar("z")
	w := f.BoolVar("w")
	// (a∧x∧y) ∨ (a∧z∧w): one shared conjunct across two 3-wide branches
	// does not shrink the circuit, so the guard must leave it alone.
	or := f.Or(f.And(a, x, y), f.And(a, z, w))
	r := rewrite.New(f)
	if got := r.Rewrite(or); got != or {
		t.Fatalf("guard failed: %s rewrote to %s", or, got)
	}
	if r.Stats().Factored != 0 {
		t.Fatal("Factored fired despite no-shrink guard")
	}
}

func TestIdempotent(t *testing.T) {
	f := smt.NewFactory()
	x := f.BVVar("x", 8)
	y := f.BVVar("y", 8)
	p := f.BoolVar("p")
	terms := []*smt.Term{
		f.And(p, f.Or(p, f.Eq(x, y))),
		f.Or(f.And(p, f.Ult(x, y)), f.And(p, f.Ule(y, x))),
		f.Add(f.BVAnd(x, f.BVConst64(0x0F, 8)), f.BVConst64(0x30, 8)),
		f.Extract(f.Concat(x, y), 11, 4),
	}
	r := rewrite.New(f)
	for _, tm := range terms {
		once := r.Rewrite(tm)
		if twice := r.Rewrite(once); twice != once {
			t.Fatalf("not idempotent: %s -> %s -> %s", tm, once, twice)
		}
		// And on a fresh rewriter (no memo carried over).
		r2 := rewrite.New(f)
		if twice := r2.Rewrite(once); twice != once {
			t.Fatalf("not idempotent across rewriters: %s -> %s", once, twice)
		}
	}
}

func TestProviderInstallsPerSolver(t *testing.T) {
	f := smt.NewFactory()
	f.SetSimplifyProvider(rewrite.Provider(f))
	s1 := f.NewSimplifier()
	s2 := f.NewSimplifier()
	if s1 == nil || s2 == nil {
		t.Fatal("provider returned nil simplifier")
	}
	x := f.BoolVar("x")
	y := f.BoolVar("y")
	tm := f.And(x, f.Or(x, y))
	if got := s1(tm); got != x {
		t.Fatalf("simplifier 1: want x, got %s", got)
	}
	if got := s2(tm); got != x {
		t.Fatalf("simplifier 2: want x, got %s", got)
	}
}

// FuzzRewrite is the differential soundness harness for the rewriter:
// random term DAGs from termgen must evaluate identically before and
// after rewriting under the generated environment, and rewriting must be
// idempotent. Seeds live in testdata/fuzz/FuzzRewrite.
func FuzzRewrite(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 3, 1, 7, 9, 2, 0xff, 0x80, 5, 4, 1})
	f.Add([]byte("rewrite differential seed"))
	f.Add([]byte{2, 2, 4, 4, 8, 8, 0x10, 0x20, 0x40, 0x80, 1, 3, 5, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		fac := smt.NewFactory()
		g := termgen.New(fac, data)
		tm := g.Term()
		env := g.Env()
		r := rewrite.New(fac)
		rt := r.Rewrite(tm)
		want, got := smt.Eval(tm, env), smt.Eval(rt, env)
		if want.Cmp(got) != 0 {
			t.Fatalf("rewrite changed evaluation: %v vs %v\noriginal  %s\nrewritten %s",
				want, got, tm, rt)
		}
		if again := r.Rewrite(rt); again != rt {
			t.Fatalf("not idempotent: %s -> %s", rt, again)
		}
	})
}
