package rewrite_test

import (
	"math/rand"
	"testing"

	"bf4/internal/core"
	"bf4/internal/ir"
	"bf4/internal/progs"
	"bf4/internal/smt"
	"bf4/internal/smt/rewrite"
	"bf4/internal/solver"
)

// TestSolverAgreement checks that a solver with the rewrite pass and one
// without agree on satisfiability across a batch of mixed formulas —
// including some the rewriter folds outright, which exercise the
// tautology-skip and false-literal paths in Check.
func TestSolverAgreement(t *testing.T) {
	f := smt.NewFactory()
	x := f.BVVar("x", 8)
	y := f.BVVar("y", 8)
	p := f.BoolVar("p")
	formulas := []*smt.Term{
		f.And(p, f.Or(p, f.Eq(x, y))),
		f.And(p, f.Not(p)),
		f.Or(f.And(p, f.Ult(x, y)), f.And(p, f.Ule(y, x))),
		f.Eq(f.Add(f.BVAnd(x, f.BVConst64(0x0F, 8)), f.BVConst64(0xA0, 8)), y),
		f.Ult(f.BVOr(x, f.BVConst64(0xF0, 8)), f.BVConst64(0x10, 8)),
		f.Eq(f.Extract(f.Concat(x, y), 11, 4), f.BVConst64(0x5A, 8)),
	}
	for i, tm := range formulas {
		plain := solver.New(f)
		plain.SetRewrite(nil)
		rw := solver.New(f)
		rw.SetRewrite(rewrite.New(f).Rewrite)
		if got, want := rw.Check(tm), plain.Check(tm); got != want {
			t.Errorf("formula %d: rewrite solver says %v, plain says %v (%s)", i, got, want, tm)
		}
	}
}

// TestCorpusReplay replays real verification conditions: for every corpus
// program, compile, find bugs, and check that rewriting each bug's
// reachability condition preserves evaluation under pseudo-random
// environments and that the abstract domain's value contains the concrete
// evaluation. This grounds the fuzz harness in the exact term shapes the
// verifier produces (wide WP joins, table-entry symbolic reads).
func TestCorpusReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus replay is slow")
	}
	rng := rand.New(rand.NewSource(42))
	for _, p := range progs.All() {
		if p.Name == "switch" {
			continue // generated at bench time only
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			pl, err := core.Compile(p.Source, ir.DefaultOptions(), true)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			rep := pl.FindBugs()
			r := rewrite.New(pl.IR.F)
			for _, b := range rep.Bugs {
				if b.Cond == nil || b.Cond.IsFalse() {
					continue
				}
				rt := r.Rewrite(b.Cond)
				vars := b.Cond.Vars(nil)
				for trial := 0; trial < 4; trial++ {
					env := make(smt.Env, len(vars))
					for _, v := range vars {
						if v.Sort().IsBool() {
							env.SetBool(v.Name(), rng.Intn(2) == 1)
						} else {
							env.SetUint64(v.Name(), rng.Uint64())
						}
					}
					if smt.EvalBool(b.Cond, env) != smt.EvalBool(rt, env) {
						t.Fatalf("bug %s: rewrite changed evaluation\noriginal  %s\nrewritten %s",
							b.Node.Comment, b.Cond, rt)
					}
				}
			}
		})
	}
}
