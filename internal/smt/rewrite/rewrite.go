// Package rewrite is a canonicalizing, evaluation-preserving rewrite
// engine over internal/smt terms, driven by the known-bits + interval
// abstract domain (internal/absdom). It goes beyond the factory's local
// construction-time rules: decided comparisons collapse to constants even
// when neither operand is syntactically constant, comparisons whose
// operands share a known equal high-bit prefix are narrowed to the
// undecided low bits, additions whose operands cannot share a set bit
// become carry-free ors, extracts commute into concats and extensions,
// and bitwise ops absorb operands the bit masks prove redundant.
//
// Every rule preserves evaluation under every environment — rewritten
// formulas are equisatisfiable and model-identical with the originals —
// which is what lets the solver blast the rewritten form while reporting
// models and unsat cores in terms of the originals. Soundness is enforced
// mechanically by differential fuzzing against smt.Eval and by replaying
// every corpus program's real verification conditions (see tests).
//
// Rewriting is memoized on Term.ID(): shared DAG nodes rewrite once, so a
// pass over a full verification report costs one traversal of its
// distinct nodes. The factory's hash-consing re-canonicalizes every
// rebuilt node (deterministic argument order by content hash), so equal
// subterms surface as pointer-equal terms no matter which conditions they
// arrived in.
package rewrite

import (
	"math/big"

	"bf4/internal/absdom"
	"bf4/internal/smt"
)

// Stats counts rule applications, for the experiments layer.
type Stats struct {
	// Terms is the number of distinct nodes visited; Changed counts nodes
	// whose rewritten form differs from the original.
	Terms   int `json:"terms"`
	Changed int `json:"changed"`
	// DecidedBool counts boolean subterms the domain decided outright;
	// FoldedConst counts bitvector subterms that collapsed to constants.
	DecidedBool int `json:"decided_bool"`
	FoldedConst int `json:"folded_const"`
	// NarrowedCmp counts comparisons reduced to a smaller width via a
	// known equal high-bit prefix; CarryFreeAdd counts bvadd→bvor
	// conversions; Absorbed counts bvand/bvor operand absorptions;
	// ExtractPush counts extracts commuted into concat/zext/sext;
	// DecidedIte counts ites whose condition the domain decided.
	NarrowedCmp  int `json:"narrowed_cmp"`
	CarryFreeAdd int `json:"carry_free_add"`
	Absorbed     int `json:"absorbed"`
	ExtractPush  int `json:"extract_push"`
	DecidedIte   int `json:"decided_ite"`
	// BoolAbsorbed counts and/or arguments dropped or shrunk by the
	// boolean absorption laws; Factored counts common conjuncts/disjuncts
	// pulled out of or-of-ands / and-of-ors.
	BoolAbsorbed int `json:"bool_absorbed"`
	Factored     int `json:"factored"`
}

// Rewriter rewrites terms of one factory. Not safe for concurrent use;
// create one per goroutine (they share nothing but the factory, which is
// itself thread-safe).
type Rewriter struct {
	f     *smt.Factory
	ad    *absdom.Analyzer
	memo  map[uint32]*smt.Term
	stats Stats
}

// New returns a rewriter for terms of f.
func New(f *smt.Factory) *Rewriter {
	return &Rewriter{
		f:    f,
		ad:   absdom.NewAnalyzer(),
		memo: make(map[uint32]*smt.Term),
	}
}

// Provider adapts New to the factory's simplify-provider hook: installing
// rewrite.Provider(f) on f makes every subsequently created solver
// simplify its input through a private Rewriter.
func Provider(f *smt.Factory) func() func(*smt.Term) *smt.Term {
	return func() func(*smt.Term) *smt.Term {
		r := New(f)
		return r.Rewrite
	}
}

// Stats returns cumulative rule-application counts.
func (r *Rewriter) Stats() Stats { return r.stats }

// Rewrite returns an evaluation-equivalent, typically smaller term.
// Results are memoized; rewriting is idempotent.
func (r *Rewriter) Rewrite(t *smt.Term) *smt.Term {
	if out, ok := r.memo[t.ID()]; ok {
		return out
	}
	r.stats.Terms++
	out := r.rewriteNode(t)
	r.memo[t.ID()] = out
	r.memo[out.ID()] = out // idempotence
	if out != t {
		r.stats.Changed++
	}
	return out
}

func (r *Rewriter) rewriteNode(t *smt.Term) *smt.Term {
	// Bottom-up: rewrite the arguments, then rebuild through the
	// factory's simplifying constructors (constant folding, identities,
	// canonical argument order).
	out := t
	if args := t.Args(); len(args) > 0 {
		newArgs := make([]*smt.Term, len(args))
		changed := false
		for i, a := range args {
			newArgs[i] = r.Rewrite(a)
			changed = changed || newArgs[i] != a
		}
		if changed {
			out = r.f.Rebuild(t, newArgs)
			// The rebuilt node may be one we already rewrote in full.
			if memoized, ok := r.memo[out.ID()]; ok {
				return memoized
			}
		}
	}

	// Structural, domain-guided rules per operator.
	out = r.applyRules(out)

	// Decided fold: if the abstract domain pins the value, replace the
	// whole subterm with the constant.
	if out.Sort().IsBool() {
		if val, ok := r.ad.Of(out).Decided(); ok && out.Op() != smt.OpTrue && out.Op() != smt.OpFalse {
			r.stats.DecidedBool++
			return r.f.Bool(val)
		}
		return out
	}
	if x, ok := r.ad.Of(out).Singleton(); ok && !out.IsConst() {
		r.stats.FoldedConst++
		return r.f.BVConst(x, out.Sort().Width)
	}
	return out
}

// applyRules dispatches the operator-specific rewrites. Its input has
// fully rewritten arguments; rules that build new structure recurse
// through Rewrite, which terminates because every recursive call is on a
// strictly narrower or smaller term.
func (r *Rewriter) applyRules(t *smt.Term) *smt.Term {
	switch t.Op() {
	case smt.OpAnd:
		return r.ruleShrinkNary(t, true)
	case smt.OpOr:
		return r.ruleShrinkNary(t, false)
	case smt.OpIte:
		if val, ok := r.ad.Of(t.Arg(0)).Decided(); ok {
			r.stats.DecidedIte++
			if val {
				return t.Arg(1)
			}
			return t.Arg(2)
		}
	case smt.OpAdd:
		return r.ruleCarryFreeAdd(t)
	case smt.OpBVAnd:
		return r.ruleAbsorb(t, true)
	case smt.OpBVOr:
		return r.ruleAbsorb(t, false)
	case smt.OpExtract:
		return r.ruleExtractPush(t)
	case smt.OpEq:
		if !t.Arg(0).Sort().IsBool() {
			return r.ruleNarrowCmp(t, smt.OpEq)
		}
	case smt.OpUlt:
		return r.ruleNarrowCmp(t, smt.OpUlt)
	case smt.OpUle:
		return r.ruleNarrowCmp(t, smt.OpUle)
	case smt.OpSlt:
		return r.ruleNarrowCmp(t, smt.OpSlt)
	case smt.OpSle:
		return r.ruleNarrowCmp(t, smt.OpSle)
	}
	return t
}

// ruleShrinkNary applies the boolean absorption laws and common-factor
// extraction to and/or nodes — the rules that fire on weakest-
// precondition joins, where every branch of an or-of-ands repeats the
// frame conditions of the paths it merges:
//
//	x ∧ (x ∨ y) = x            x ∨ (x ∧ y) = x
//	x ∧ (¬x ∨ y) = x ∧ y       x ∨ (¬x ∧ y) = x ∨ y
//	(a∧x) ∨ (a∧y) = a ∧ (x∨y)  (a∨x) ∧ (a∨y) = a ∨ (x∧y)
//
// Each shrinks the gate-level circuit: absorption deletes whole Tseitin
// gates, factoring dedups the pulled term out of every branch gate.
func (r *Rewriter) ruleShrinkNary(t *smt.Term, isAnd bool) *smt.Term {
	inner := smt.OpOr
	if !isAnd {
		inner = smt.OpAnd
	}
	// rebuildInner builds an inner-op node (the dual of t's operator),
	// rebuildOuter a node of t's own operator.
	rebuildInner := func(parts []*smt.Term) *smt.Term {
		if isAnd {
			return r.f.Or(parts...)
		}
		return r.f.And(parts...)
	}
	rebuildOuter := func(parts []*smt.Term) *smt.Term {
		if isAnd {
			return r.f.And(parts...)
		}
		return r.f.Or(parts...)
	}

	args := t.Args()
	top := make(map[*smt.Term]bool, len(args))
	negTargets := make(map[*smt.Term]bool)
	for _, a := range args {
		top[a] = true
		if a.Op() == smt.OpNot {
			negTargets[a.Arg(0)] = true
		}
	}

	// Absorption: an inner node that repeats a sibling is redundant; one
	// that repeats a sibling's complement sheds that part.
	changed := false
	newArgs := make([]*smt.Term, 0, len(args))
	for _, a := range args {
		if a.Op() != inner {
			newArgs = append(newArgs, a)
			continue
		}
		redundant := false
		for _, c := range a.Args() {
			if top[c] {
				redundant = true
				break
			}
		}
		if redundant {
			r.stats.BoolAbsorbed++
			changed = true
			continue
		}
		kept := make([]*smt.Term, 0, len(a.Args()))
		stripped := false
		for _, c := range a.Args() {
			if negTargets[c] || (c.Op() == smt.OpNot && top[c.Arg(0)]) {
				stripped = true
				continue
			}
			kept = append(kept, c)
		}
		if stripped {
			r.stats.BoolAbsorbed++
			changed = true
			newArgs = append(newArgs, rebuildInner(kept))
			continue
		}
		newArgs = append(newArgs, a)
	}
	if changed {
		return r.Rewrite(rebuildOuter(newArgs))
	}

	// Factoring: when every argument is an inner node, pull the parts
	// they all share out in front. Guarded to fire only when the term
	// strictly shrinks (or a residual collapses to a single part), which
	// is also what makes the rewrite chain terminate.
	if len(args) < 2 {
		return t
	}
	for _, a := range args {
		if a.Op() != inner {
			return t
		}
	}
	var common []*smt.Term
	for _, c := range args[0].Args() {
		inAll := true
		for _, a := range args[1:] {
			if !containsTerm(a.Args(), c) {
				inAll = false
				break
			}
		}
		if inAll {
			common = append(common, c)
		}
	}
	if len(common) == 0 {
		return t
	}
	minResidual := len(args[0].Args())
	for _, a := range args {
		if m := len(a.Args()) - len(common); m < minResidual {
			minResidual = m
		}
	}
	if (len(args)-1)*len(common) <= 1 && minResidual > 1 {
		return t
	}
	r.stats.Factored++
	residuals := make([]*smt.Term, len(args))
	for i, a := range args {
		rest := make([]*smt.Term, 0, len(a.Args())-len(common))
		for _, c := range a.Args() {
			if !containsTerm(common, c) {
				rest = append(rest, c)
			}
		}
		residuals[i] = rebuildInner(rest)
	}
	return r.Rewrite(rebuildInner(append(common, rebuildOuter(residuals))))
}

func containsTerm(list []*smt.Term, t *smt.Term) bool {
	for _, u := range list {
		if u == t {
			return true
		}
	}
	return false
}

// ruleCarryFreeAdd rewrites a + b to a | b when no bit position can be
// set in both operands — the addition can never carry, and the or blasts
// to one gate per bit instead of a ripple-carry adder.
func (r *Rewriter) ruleCarryFreeAdd(t *smt.Term) *smt.Term {
	a, b := t.Arg(0), t.Arg(1)
	za, _ := r.ad.Of(a).KnownBits()
	zb, _ := r.ad.Of(b).KnownBits()
	w := t.Sort().Width
	mayA := new(big.Int).AndNot(maskFor(w), za)
	mayB := new(big.Int).AndNot(maskFor(w), zb)
	if new(big.Int).And(mayA, mayB).Sign() != 0 {
		return t
	}
	r.stats.CarryFreeAdd++
	return r.Rewrite(r.f.BVOr(a, b))
}

// ruleAbsorb drops an operand of bvand/bvor that the known bits prove
// redundant: for and, an operand known 1 wherever the other may be 1; for
// or, an operand known 0 wherever the other may be 1.
func (r *Rewriter) ruleAbsorb(t *smt.Term, isAnd bool) *smt.Term {
	a, b := t.Arg(0), t.Arg(1)
	w := t.Sort().Width
	m := maskFor(w)
	za, oa := r.ad.Of(a).KnownBits()
	zb, ob := r.ad.Of(b).KnownBits()
	mayA := new(big.Int).AndNot(m, za)
	mayB := new(big.Int).AndNot(m, zb)
	covered := func(may, known *big.Int) bool {
		return new(big.Int).AndNot(may, known).Sign() == 0
	}
	if isAnd {
		// a & b = a when b is known 1 on every bit a may set (and dually).
		if covered(mayA, ob) {
			r.stats.Absorbed++
			return a
		}
		if covered(mayB, oa) {
			r.stats.Absorbed++
			return b
		}
		return t
	}
	// a | b = a when b is known 0 on every bit it could contribute —
	// i.e. b may only set bits a is already known to have set.
	if covered(mayB, oa) {
		r.stats.Absorbed++
		return a
	}
	if covered(mayA, ob) {
		r.stats.Absorbed++
		return b
	}
	return t
}

// ruleExtractPush commutes an extract into concat/zext/sext so the
// narrowed operand, not the assembled word, is blasted.
func (r *Rewriter) ruleExtractPush(t *smt.Term) *smt.Term {
	hi, lo := t.ExtractBounds()
	x := t.Arg(0)
	switch x.Op() {
	case smt.OpConcat:
		a, b := x.Arg(0), x.Arg(1)
		wb := b.Sort().Width
		r.stats.ExtractPush++
		switch {
		case hi < wb:
			return r.Rewrite(r.f.Extract(b, hi, lo))
		case lo >= wb:
			return r.Rewrite(r.f.Extract(a, hi-wb, lo-wb))
		default:
			return r.Rewrite(r.f.Concat(
				r.f.Extract(a, hi-wb, 0),
				r.f.Extract(b, wb-1, lo)))
		}
	case smt.OpZExt:
		a := x.Arg(0)
		wa := a.Sort().Width
		r.stats.ExtractPush++
		switch {
		case lo >= wa: // entirely in the zero extension
			return r.f.BVConst64(0, hi-lo+1)
		case hi < wa: // entirely in the operand
			return r.Rewrite(r.f.Extract(a, hi, lo))
		default: // straddles: low part of the operand, zero-extended
			return r.Rewrite(r.f.ZExt(r.f.Extract(a, wa-1, lo), hi-lo+1))
		}
	case smt.OpSExt:
		a := x.Arg(0)
		if wa := a.Sort().Width; hi < wa {
			r.stats.ExtractPush++
			return r.Rewrite(r.f.Extract(a, hi, lo))
		}
	}
	return t
}

// ruleNarrowCmp narrows a comparison whose operands agree on a known
// high-bit prefix: with the top k bits pinned equal, the comparison is
// decided by the low w-k bits alone. Signed comparisons become unsigned
// ones (the equal prefix includes the sign bit). Conflicting known
// prefixes are left to the decided-fold (the domain already decides
// them).
func (r *Rewriter) ruleNarrowCmp(t *smt.Term, op smt.Op) *smt.Term {
	a, b := t.Arg(0), t.Arg(1)
	w := a.Sort().Width
	za, oa := r.ad.Of(a).KnownBits()
	zb, ob := r.ad.Of(b).KnownBits()
	k := 0
	for i := w - 1; i >= 0; i-- {
		if za.Bit(i) == 1 && zb.Bit(i) == 1 {
			k++
			continue
		}
		if oa.Bit(i) == 1 && ob.Bit(i) == 1 {
			k++
			continue
		}
		break
	}
	if k == 0 || k >= w {
		return t
	}
	r.stats.NarrowedCmp++
	la := r.Rewrite(r.f.Extract(a, w-k-1, 0))
	lb := r.Rewrite(r.f.Extract(b, w-k-1, 0))
	switch op {
	case smt.OpEq:
		return r.f.Eq(la, lb)
	case smt.OpUlt, smt.OpSlt:
		return r.f.Ult(la, lb)
	case smt.OpUle, smt.OpSle:
		return r.f.Ule(la, lb)
	}
	return t
}

var bigOne = big.NewInt(1)

func maskFor(w int) *big.Int {
	m := new(big.Int).Lsh(bigOne, uint(w))
	return m.Sub(m, bigOne)
}
