package smt

import (
	"fmt"
	"math/big"
)

// Env maps variable names to concrete values. Boolean variables use 0/1.
type Env map[string]*big.Int

// Clone returns a copy of the environment.
func (e Env) Clone() Env {
	out := make(Env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// SetBool assigns a boolean variable.
func (e Env) SetBool(name string, v bool) {
	if v {
		e[name] = big.NewInt(1)
	} else {
		e[name] = big.NewInt(0)
	}
}

// Set assigns a bitvector variable.
func (e Env) Set(name string, v *big.Int) { e[name] = v }

// SetUint64 assigns a bitvector variable from a uint64.
func (e Env) SetUint64(name string, v uint64) { e[name] = new(big.Int).SetUint64(v) }

// Eval evaluates t under env. Boolean results are 0 or 1. Unbound
// variables evaluate to zero (the "havoc resolved to zero" convention used
// in tests; the solver never relies on this). The result must not be
// mutated by the caller.
func Eval(t *Term, env Env) *big.Int {
	cache := make(map[*Term]*big.Int)
	return eval(t, env, cache)
}

// EvalBool evaluates a boolean term under env.
func EvalBool(t *Term, env Env) bool {
	mustBool(t)
	return Eval(t, env).Sign() != 0
}

var bigZero = new(big.Int)

func eval(t *Term, env Env, cache map[*Term]*big.Int) *big.Int {
	if v, ok := cache[t]; ok {
		return v
	}
	v := evalUncached(t, env, cache)
	cache[t] = v
	return v
}

func truth(b bool) *big.Int {
	if b {
		return bigOne
	}
	return bigZero
}

func evalUncached(t *Term, env Env, cache map[*Term]*big.Int) *big.Int {
	arg := func(i int) *big.Int { return eval(t.args[i], env, cache) }
	argB := func(i int) bool { return arg(i).Sign() != 0 }
	w := t.sort.Width
	norm := func(v *big.Int) *big.Int {
		if v.Sign() >= 0 && v.BitLen() <= w {
			return v
		}
		out := new(big.Int).Mod(v, new(big.Int).Lsh(bigOne, uint(w)))
		if out.Sign() < 0 {
			out.Add(out, new(big.Int).Lsh(bigOne, uint(w)))
		}
		return out
	}
	switch t.op {
	case OpTrue:
		return bigOne
	case OpFalse:
		return bigZero
	case OpVar:
		if v, ok := env[t.name]; ok {
			if t.sort.IsBool() {
				return truth(v.Sign() != 0)
			}
			return norm(v)
		}
		return bigZero
	case OpConst:
		return t.val
	case OpNot:
		return truth(!argB(0))
	case OpAnd:
		for i := range t.args {
			if !argB(i) {
				return bigZero
			}
		}
		return bigOne
	case OpOr:
		for i := range t.args {
			if argB(i) {
				return bigOne
			}
		}
		return bigZero
	case OpXor:
		return truth(argB(0) != argB(1))
	case OpImplies:
		return truth(!argB(0) || argB(1))
	case OpIte:
		if argB(0) {
			return arg(1)
		}
		return arg(2)
	case OpEq:
		return truth(arg(0).Cmp(arg(1)) == 0)
	case OpUlt:
		return truth(arg(0).Cmp(arg(1)) < 0)
	case OpUle:
		return truth(arg(0).Cmp(arg(1)) <= 0)
	case OpSlt:
		wa := t.args[0].sort.Width
		return truth(toSigned(arg(0), wa).Cmp(toSigned(arg(1), wa)) < 0)
	case OpSle:
		wa := t.args[0].sort.Width
		return truth(toSigned(arg(0), wa).Cmp(toSigned(arg(1), wa)) <= 0)
	case OpAdd:
		return norm(new(big.Int).Add(arg(0), arg(1)))
	case OpSub:
		return norm(new(big.Int).Sub(arg(0), arg(1)))
	case OpNeg:
		return norm(new(big.Int).Neg(arg(0)))
	case OpMul:
		return norm(new(big.Int).Mul(arg(0), arg(1)))
	case OpBVAnd:
		return new(big.Int).And(arg(0), arg(1))
	case OpBVOr:
		return new(big.Int).Or(arg(0), arg(1))
	case OpBVXor:
		return new(big.Int).Xor(arg(0), arg(1))
	case OpBVNot:
		return new(big.Int).Xor(arg(0), maskFor(w))
	case OpShl:
		sh := arg(1)
		if sh.Cmp(big.NewInt(int64(w))) >= 0 {
			return bigZero
		}
		return norm(new(big.Int).Lsh(arg(0), uint(sh.Uint64())))
	case OpLshr:
		sh := arg(1)
		if sh.Cmp(big.NewInt(int64(w))) >= 0 {
			return bigZero
		}
		return new(big.Int).Rsh(arg(0), uint(sh.Uint64()))
	case OpAshr:
		s := toSigned(arg(0), w)
		shv := uint(w)
		if arg(1).Cmp(big.NewInt(int64(w))) < 0 {
			shv = uint(arg(1).Uint64())
		}
		return norm(new(big.Int).Rsh(s, shv))
	case OpConcat:
		wb := t.args[1].sort.Width
		v := new(big.Int).Lsh(arg(0), uint(wb))
		return v.Or(v, arg(1))
	case OpExtract:
		v := new(big.Int).Rsh(arg(0), uint(t.lo))
		return v.And(v, maskFor(t.hi-t.lo+1))
	case OpZExt:
		return arg(0)
	case OpSExt:
		return norm(toSigned(arg(0), t.args[0].sort.Width))
	default:
		panic(fmt.Sprintf("smt: eval: unknown op %v", t.op))
	}
}

// Substitute returns t with every occurrence of the variables in subst
// replaced by the corresponding term. The substitution is simultaneous.
func Substitute(f *Factory, t *Term, subst map[*Term]*Term) *Term {
	cache := make(map[*Term]*Term)
	var walk func(*Term) *Term
	walk = func(u *Term) *Term {
		if r, ok := subst[u]; ok {
			return r
		}
		if r, ok := cache[u]; ok {
			return r
		}
		if len(u.args) == 0 {
			cache[u] = u
			return u
		}
		args := make([]*Term, len(u.args))
		changed := false
		for i, a := range u.args {
			args[i] = walk(a)
			if args[i] != a {
				changed = true
			}
		}
		out := u
		if changed {
			out = f.Rebuild(u, args)
		}
		cache[u] = out
		return out
	}
	return walk(t)
}

// Rebuild reconstructs a term like u but with new arguments, going
// through the simplifying constructors — the primitive substitution and
// rewrite passes are built on. args must match u's argument count and
// sorts.
func (f *Factory) Rebuild(u *Term, args []*Term) *Term {
	switch u.op {
	case OpNot:
		return f.Not(args[0])
	case OpAnd:
		return f.And(args...)
	case OpOr:
		return f.Or(args...)
	case OpXor:
		return f.Xor(args[0], args[1])
	case OpImplies:
		return f.Implies(args[0], args[1])
	case OpIte:
		return f.Ite(args[0], args[1], args[2])
	case OpEq:
		return f.Eq(args[0], args[1])
	case OpUlt:
		return f.Ult(args[0], args[1])
	case OpUle:
		return f.Ule(args[0], args[1])
	case OpSlt:
		return f.Slt(args[0], args[1])
	case OpSle:
		return f.Sle(args[0], args[1])
	case OpAdd:
		return f.Add(args[0], args[1])
	case OpSub:
		return f.Sub(args[0], args[1])
	case OpNeg:
		return f.Neg(args[0])
	case OpMul:
		return f.Mul(args[0], args[1])
	case OpBVAnd:
		return f.BVAnd(args[0], args[1])
	case OpBVOr:
		return f.BVOr(args[0], args[1])
	case OpBVXor:
		return f.BVXor(args[0], args[1])
	case OpBVNot:
		return f.BVNot(args[0])
	case OpShl:
		return f.Shl(args[0], args[1])
	case OpLshr:
		return f.Lshr(args[0], args[1])
	case OpAshr:
		return f.Ashr(args[0], args[1])
	case OpConcat:
		return f.Concat(args[0], args[1])
	case OpExtract:
		return f.Extract(args[0], u.hi, u.lo)
	case OpZExt:
		return f.ZExt(args[0], u.sort.Width)
	case OpSExt:
		return f.SExt(args[0], u.sort.Width)
	default:
		panic(fmt.Sprintf("smt: rebuild: unexpected op %v", u.op))
	}
}
