package smt

import (
	"fmt"
	"math/big"
	"strings"
)

// Serialize renders t as an SMT-LIB-flavoured S-expression that Parse can
// read back. Variable names are pipe-quoted (they contain '$', '#', '.').
// The DAG is expanded to a tree; assertion terms are small, so this is
// acceptable for the spec file format.
func Serialize(t *Term) string {
	var b strings.Builder
	serialize(t, &b)
	return b.String()
}

func serialize(t *Term, b *strings.Builder) {
	switch t.op {
	case OpTrue:
		b.WriteString("true")
	case OpFalse:
		b.WriteString("false")
	case OpVar:
		b.WriteString("|")
		b.WriteString(t.name)
		b.WriteString("|")
	case OpConst:
		fmt.Fprintf(b, "(_ bv%s %d)", t.val.Text(10), t.sort.Width)
	case OpExtract:
		fmt.Fprintf(b, "((_ extract %d %d) ", t.hi, t.lo)
		serialize(t.args[0], b)
		b.WriteString(")")
	case OpZExt:
		fmt.Fprintf(b, "((_ zero_extend %d) ", t.sort.Width-t.args[0].sort.Width)
		serialize(t.args[0], b)
		b.WriteString(")")
	case OpSExt:
		fmt.Fprintf(b, "((_ sign_extend %d) ", t.sort.Width-t.args[0].sort.Width)
		serialize(t.args[0], b)
		b.WriteString(")")
	default:
		b.WriteString("(")
		b.WriteString(t.op.String())
		for _, a := range t.args {
			b.WriteString(" ")
			serialize(a, b)
		}
		b.WriteString(")")
	}
}

// VarSorts is a name→sort mapping used when parsing serialized terms.
type VarSorts map[string]Sort

// Parse reads a serialized term back. Unknown variables are an error; the
// caller provides the sort environment (the spec file carries it).
func Parse(f *Factory, src string, sorts VarSorts) (*Term, error) {
	p := &sexprParser{src: src, f: f, sorts: sorts}
	t, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("smt: trailing input at %d", p.pos)
	}
	return t, nil
}

type sexprParser struct {
	src   string
	pos   int
	f     *Factory
	sorts VarSorts
}

func (p *sexprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\n' || p.src[p.pos] == '\t' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *sexprParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("smt: parse at %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *sexprParser) token() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return "", p.errf("unexpected end of input")
	}
	start := p.pos
	switch c := p.src[p.pos]; {
	case c == '(' || c == ')':
		p.pos++
		return p.src[start:p.pos], nil
	case c == '|':
		p.pos++
		for p.pos < len(p.src) && p.src[p.pos] != '|' {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return "", p.errf("unterminated variable name")
		}
		p.pos++
		return p.src[start:p.pos], nil
	default:
		for p.pos < len(p.src) && !strings.ContainsRune(" \t\n\r()", rune(p.src[p.pos])) {
			p.pos++
		}
		return p.src[start:p.pos], nil
	}
}

func (p *sexprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *sexprParser) parse() (*Term, error) {
	tok, err := p.token()
	if err != nil {
		return nil, err
	}
	switch {
	case tok == "true":
		return p.f.True(), nil
	case tok == "false":
		return p.f.False(), nil
	case strings.HasPrefix(tok, "|"):
		name := tok[1 : len(tok)-1]
		sort, ok := p.sorts[name]
		if !ok {
			return nil, p.errf("unknown variable %q", name)
		}
		return p.f.Var(name, sort), nil
	case tok == "(":
		return p.parseApp()
	default:
		return nil, p.errf("unexpected token %q", tok)
	}
}

func (p *sexprParser) parseApp() (*Term, error) {
	// Either (_ bvN w), ((_ extract h l) t), or (op args...).
	if p.peek() == '(' {
		// ((_ indexed-op ...) arg)
		if _, err := p.token(); err != nil { // consume '('
			return nil, err
		}
		head, err := p.token()
		if err != nil {
			return nil, err
		}
		if head != "_" {
			return nil, p.errf("expected indexed operator, got %q", head)
		}
		op, err := p.token()
		if err != nil {
			return nil, err
		}
		var i1, i2 int
		switch op {
		case "extract":
			if _, err := fmt.Sscanf(p.remainderToken()+" "+p.remainderToken(), "%d %d", &i1, &i2); err != nil {
				return nil, p.errf("bad extract indices")
			}
		case "zero_extend", "sign_extend":
			if _, err := fmt.Sscanf(p.remainderToken(), "%d", &i1); err != nil {
				return nil, p.errf("bad extend amount")
			}
		default:
			return nil, p.errf("unknown indexed op %q", op)
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		arg, err := p.parse()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		switch op {
		case "extract":
			return p.f.Extract(arg, i1, i2), nil
		case "zero_extend":
			return p.f.ZExt(arg, arg.Sort().Width+i1), nil
		default:
			return p.f.SExt(arg, arg.Sort().Width+i1), nil
		}
	}
	head, err := p.token()
	if err != nil {
		return nil, err
	}
	if head == "_" {
		// (_ bvN w)
		lit, err := p.token()
		if err != nil {
			return nil, err
		}
		if !strings.HasPrefix(lit, "bv") {
			return nil, p.errf("expected bv literal, got %q", lit)
		}
		v, ok := new(big.Int).SetString(lit[2:], 10)
		if !ok {
			return nil, p.errf("bad bv literal %q", lit)
		}
		wTok, err := p.token()
		if err != nil {
			return nil, err
		}
		var w int
		if _, err := fmt.Sscanf(wTok, "%d", &w); err != nil {
			return nil, p.errf("bad width %q", wTok)
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return p.f.BVConst(v, w), nil
	}
	var args []*Term
	for p.peek() != ')' && p.peek() != 0 {
		a, err := p.parse()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return p.apply(head, args)
}

func (p *sexprParser) remainderToken() string {
	tok, err := p.token()
	if err != nil {
		return ""
	}
	return tok
}

func (p *sexprParser) expect(tok string) error {
	got, err := p.token()
	if err != nil {
		return err
	}
	if got != tok {
		return p.errf("expected %q, got %q", tok, got)
	}
	return nil
}

func (p *sexprParser) apply(op string, args []*Term) (*Term, error) {
	need := func(n int) error {
		if len(args) != n {
			return p.errf("operator %s needs %d args, got %d", op, n, len(args))
		}
		return nil
	}
	switch op {
	case "not":
		if err := need(1); err != nil {
			return nil, err
		}
		return p.f.Not(args[0]), nil
	case "and":
		return p.f.And(args...), nil
	case "or":
		return p.f.Or(args...), nil
	case "xor":
		if err := need(2); err != nil {
			return nil, err
		}
		return p.f.Xor(args[0], args[1]), nil
	case "=>":
		if err := need(2); err != nil {
			return nil, err
		}
		return p.f.Implies(args[0], args[1]), nil
	case "ite":
		if err := need(3); err != nil {
			return nil, err
		}
		return p.f.Ite(args[0], args[1], args[2]), nil
	case "=":
		if err := need(2); err != nil {
			return nil, err
		}
		return p.f.Eq(args[0], args[1]), nil
	case "bvult":
		if err := need(2); err != nil {
			return nil, err
		}
		return p.f.Ult(args[0], args[1]), nil
	case "bvule":
		if err := need(2); err != nil {
			return nil, err
		}
		return p.f.Ule(args[0], args[1]), nil
	case "bvslt":
		if err := need(2); err != nil {
			return nil, err
		}
		return p.f.Slt(args[0], args[1]), nil
	case "bvsle":
		if err := need(2); err != nil {
			return nil, err
		}
		return p.f.Sle(args[0], args[1]), nil
	case "bvadd":
		if err := need(2); err != nil {
			return nil, err
		}
		return p.f.Add(args[0], args[1]), nil
	case "bvsub":
		if err := need(2); err != nil {
			return nil, err
		}
		return p.f.Sub(args[0], args[1]), nil
	case "bvneg":
		if err := need(1); err != nil {
			return nil, err
		}
		return p.f.Neg(args[0]), nil
	case "bvmul":
		if err := need(2); err != nil {
			return nil, err
		}
		return p.f.Mul(args[0], args[1]), nil
	case "bvand":
		if err := need(2); err != nil {
			return nil, err
		}
		return p.f.BVAnd(args[0], args[1]), nil
	case "bvor":
		if err := need(2); err != nil {
			return nil, err
		}
		return p.f.BVOr(args[0], args[1]), nil
	case "bvxor":
		if err := need(2); err != nil {
			return nil, err
		}
		return p.f.BVXor(args[0], args[1]), nil
	case "bvnot":
		if err := need(1); err != nil {
			return nil, err
		}
		return p.f.BVNot(args[0]), nil
	case "bvshl":
		if err := need(2); err != nil {
			return nil, err
		}
		return p.f.Shl(args[0], args[1]), nil
	case "bvlshr":
		if err := need(2); err != nil {
			return nil, err
		}
		return p.f.Lshr(args[0], args[1]), nil
	case "bvashr":
		if err := need(2); err != nil {
			return nil, err
		}
		return p.f.Ashr(args[0], args[1]), nil
	case "concat":
		if err := need(2); err != nil {
			return nil, err
		}
		return p.f.Concat(args[0], args[1]), nil
	default:
		return nil, p.errf("unknown operator %q", op)
	}
}
