package smt

import (
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"testing"
)

func TestHashConsing(t *testing.T) {
	f := NewFactory()
	a := f.BVVar("a", 8)
	b := f.BVVar("b", 8)
	x := f.Add(a, b)
	y := f.Add(a, b)
	if x != y {
		t.Fatalf("equal terms are not pointer-equal")
	}
	if f.BVVar("a", 8) != a {
		t.Fatalf("variable not interned")
	}
	if f.BVVar("a", 16) == a {
		t.Fatalf("same name, different width must differ")
	}
}

func TestCommutativeNormalization(t *testing.T) {
	f := NewFactory()
	a, b := f.BVVar("a", 8), f.BVVar("b", 8)
	if f.Add(a, b) != f.Add(b, a) {
		t.Errorf("add not commutatively normalized")
	}
	if f.BVAnd(a, b) != f.BVAnd(b, a) {
		t.Errorf("bvand not commutatively normalized")
	}
	p, q := f.BoolVar("p"), f.BoolVar("q")
	if f.And(p, q) != f.And(q, p) {
		t.Errorf("and not commutatively normalized")
	}
	if f.Sub(a, b) == f.Sub(b, a) {
		t.Errorf("sub must not commute")
	}
}

func TestBoolSimplifications(t *testing.T) {
	f := NewFactory()
	p, q := f.BoolVar("p"), f.BoolVar("q")
	cases := []struct {
		got, want *Term
		name      string
	}{
		{f.And(), f.True(), "empty and"},
		{f.Or(), f.False(), "empty or"},
		{f.And(p, f.True()), p, "and true"},
		{f.And(p, f.False()), f.False(), "and false"},
		{f.Or(p, f.True()), f.True(), "or true"},
		{f.Or(p, f.False()), p, "or false"},
		{f.And(p, p), p, "and idempotent"},
		{f.Or(p, p), p, "or idempotent"},
		{f.And(p, f.Not(p)), f.False(), "and complement"},
		{f.Or(p, f.Not(p)), f.True(), "or complement"},
		{f.Not(f.Not(p)), p, "double negation"},
		{f.Xor(p, p), f.False(), "xor self"},
		{f.Xor(p, f.False()), p, "xor false"},
		{f.Xor(p, f.True()), f.Not(p), "xor true"},
		{f.Implies(f.False(), q), f.True(), "ex falso"},
		{f.Implies(p, f.True()), f.True(), "implies true"},
		{f.Eq(p, p), f.True(), "eq self"},
		{f.And(f.And(p, q), p), f.And(p, q), "flatten + dedupe"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %s, want %s", c.name, c.got, c.want)
		}
	}
}

func TestBVSimplifications(t *testing.T) {
	f := NewFactory()
	a := f.BVVar("a", 8)
	zero := f.BVConst64(0, 8)
	ones := f.BVConst64(255, 8)
	one := f.BVConst64(1, 8)
	cases := []struct {
		got, want *Term
		name      string
	}{
		{f.Add(a, zero), a, "add zero"},
		{f.Sub(a, zero), a, "sub zero"},
		{f.Sub(a, a), zero, "sub self"},
		{f.Mul(a, one), a, "mul one"},
		{f.Mul(a, zero), zero, "mul zero"},
		{f.BVAnd(a, ones), a, "and ones"},
		{f.BVAnd(a, zero), zero, "and zero"},
		{f.BVOr(a, zero), a, "or zero"},
		{f.BVOr(a, ones), ones, "or ones"},
		{f.BVXor(a, a), zero, "xor self"},
		{f.BVNot(f.BVNot(a)), a, "double bvnot"},
		{f.Shl(a, zero), a, "shl zero"},
		{f.Extract(a, 7, 0), a, "full extract"},
		{f.ZExt(a, 8), a, "zext same width"},
		{f.Ult(a, a), f.False(), "ult self"},
		{f.Ule(a, a), f.True(), "ule self"},
		{f.Eq(a, a), f.True(), "eq self"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %s, want %s", c.name, c.got, c.want)
		}
	}
}

func TestConstantFolding(t *testing.T) {
	f := NewFactory()
	c := func(v int64) *Term { return f.BVConst64(v, 8) }
	cases := []struct {
		got  *Term
		want int64
		name string
	}{
		{f.Add(c(200), c(100)), 44, "add wraps"},
		{f.Sub(c(1), c(2)), 255, "sub wraps"},
		{f.Mul(c(16), c(17)), 16, "mul wraps"},
		{f.Neg(c(1)), 255, "neg"},
		{f.BVAnd(c(0xF0), c(0xCC)), 0xC0, "and"},
		{f.BVOr(c(0xF0), c(0x0C)), 0xFC, "or"},
		{f.BVXor(c(0xFF), c(0x0F)), 0xF0, "xor"},
		{f.BVNot(c(0x0F)), 0xF0, "not"},
		{f.Shl(c(1), c(3)), 8, "shl"},
		{f.Shl(c(1), c(9)), 0, "shl overflow"},
		{f.Lshr(c(0x80), c(7)), 1, "lshr"},
		{f.Ashr(c(0x80), c(7)), 0xFF, "ashr sign"},
		{f.Concat(f.BVConst64(0xA, 4), f.BVConst64(0xB, 4)), 0xAB, "concat"},
		{f.Extract(c(0xAB), 7, 4), 0xA, "extract"},
		{f.SExt(f.BVConst64(0x8, 4), 8), 0xF8, "sext"},
		{f.ZExt(f.BVConst64(0x8, 4), 8), 0x08, "zext"},
	}
	for _, cse := range cases {
		if !cse.got.IsConst() {
			t.Errorf("%s: not folded: %s", cse.name, cse.got)
			continue
		}
		if cse.got.Const().Int64() != cse.want {
			t.Errorf("%s: got %d, want %d", cse.name, cse.got.Const().Int64(), cse.want)
		}
	}
	boolCases := []struct {
		got  *Term
		want bool
		name string
	}{
		{f.Ult(c(1), c(2)), true, "ult"},
		{f.Ule(c(2), c(2)), true, "ule"},
		{f.Slt(c(255), c(0)), true, "slt (-1 < 0)"},
		{f.Sle(c(0), c(255)), false, "sle (0 <= -1)"},
		{f.Eq(c(5), c(5)), true, "eq"},
		{f.Eq(c(5), c(6)), false, "neq"},
	}
	for _, cse := range boolCases {
		want := f.Bool(cse.want)
		if cse.got != want {
			t.Errorf("%s: got %s, want %s", cse.name, cse.got, want)
		}
	}
}

func TestIte(t *testing.T) {
	f := NewFactory()
	p := f.BoolVar("p")
	a, b := f.BVVar("a", 8), f.BVVar("b", 8)
	if f.Ite(f.True(), a, b) != a {
		t.Error("ite true")
	}
	if f.Ite(f.False(), a, b) != b {
		t.Error("ite false")
	}
	if f.Ite(p, a, a) != a {
		t.Error("ite same branches")
	}
	env := Env{}
	env.SetBool("p", true)
	env.SetUint64("a", 3)
	env.SetUint64("b", 9)
	if got := Eval(f.Ite(p, a, b), env); got.Int64() != 3 {
		t.Errorf("ite eval = %d, want 3", got.Int64())
	}
}

func TestEvalBasics(t *testing.T) {
	f := NewFactory()
	a, b := f.BVVar("a", 16), f.BVVar("b", 16)
	expr := f.Add(f.Mul(a, f.BVConst64(3, 16)), b)
	env := Env{}
	env.SetUint64("a", 100)
	env.SetUint64("b", 7)
	if got := Eval(expr, env); got.Int64() != 307 {
		t.Fatalf("eval = %d, want 307", got.Int64())
	}
	cmp := f.Ult(a, b)
	if EvalBool(cmp, env) {
		t.Fatalf("100 < 7 must be false")
	}
}

func TestSubstitute(t *testing.T) {
	f := NewFactory()
	a, b, c := f.BVVar("a", 8), f.BVVar("b", 8), f.BVVar("c", 8)
	expr := f.Add(a, f.Mul(b, a))
	got := Substitute(f, expr, map[*Term]*Term{a: c})
	want := f.Add(c, f.Mul(b, c))
	if got != want {
		t.Fatalf("got %s, want %s", got, want)
	}
	// Simultaneous: swap a and b.
	got = Substitute(f, expr, map[*Term]*Term{a: b, b: a})
	want = f.Add(b, f.Mul(a, b))
	if got != want {
		t.Fatalf("swap: got %s, want %s", got, want)
	}
	// Substituting constants triggers folding.
	got = Substitute(f, expr, map[*Term]*Term{a: f.BVConst64(2, 8), b: f.BVConst64(3, 8)})
	if !got.IsConst() || got.Const().Int64() != 8 {
		t.Fatalf("const substitution: got %s, want 8", got)
	}
}

func TestVarsAndSize(t *testing.T) {
	f := NewFactory()
	a, b := f.BVVar("a", 8), f.BVVar("b", 8)
	expr := f.Add(f.Mul(a, b), f.Mul(a, b))
	vars := expr.Vars(nil)
	if len(vars) != 2 {
		t.Fatalf("Vars = %d, want 2", len(vars))
	}
	// Shared subterm counted once: add, mul, a, b = 4 nodes.
	if got := expr.Size(); got != 4 {
		t.Fatalf("Size = %d, want 4", got)
	}
	if got := expr.TreeSize(100); got != 7 {
		t.Fatalf("TreeSize = %d, want 7", got)
	}
}

// TestDAGSharingAblation demonstrates the design decision recorded in
// DESIGN.md: an iterated ite chain (the shape WP produces for sequential
// merges) stays linear in DAG size while its tree expansion is exponential.
func TestDAGSharingAblation(t *testing.T) {
	f := NewFactory()
	x := f.BVVar("x", 8)
	for i := 0; i < 30; i++ {
		c := f.Eq(x, f.BVConst64(int64(i), 8))
		x = f.Ite(c, f.Add(x, f.BVConst64(1, 8)), f.Sub(x, f.BVConst64(1, 8)))
	}
	if n := x.Size(); n > 400 {
		t.Fatalf("DAG size %d; sharing is broken", n)
	}
	const cap = 1 << 20
	if n := x.TreeSize(cap); n < cap {
		t.Fatalf("tree size %d unexpectedly small", n)
	}
}

// refNode is an independently evaluated expression tree used as an oracle
// for both the factory's simplifications and the evaluator.
type refNode struct {
	op   Op
	args []*refNode
	v    int64 // const value
	name string
}

func (r *refNode) build(f *Factory, w int) *Term {
	switch r.op {
	case OpConst:
		return f.BVConst64(r.v, w)
	case OpVar:
		return f.BVVar(r.name, w)
	case OpAdd:
		return f.Add(r.args[0].build(f, w), r.args[1].build(f, w))
	case OpSub:
		return f.Sub(r.args[0].build(f, w), r.args[1].build(f, w))
	case OpMul:
		return f.Mul(r.args[0].build(f, w), r.args[1].build(f, w))
	case OpBVAnd:
		return f.BVAnd(r.args[0].build(f, w), r.args[1].build(f, w))
	case OpBVOr:
		return f.BVOr(r.args[0].build(f, w), r.args[1].build(f, w))
	case OpBVXor:
		return f.BVXor(r.args[0].build(f, w), r.args[1].build(f, w))
	case OpBVNot:
		return f.BVNot(r.args[0].build(f, w))
	case OpNeg:
		return f.Neg(r.args[0].build(f, w))
	default:
		panic("unexpected op")
	}
}

func (r *refNode) eval(env map[string]uint64, w int) uint64 {
	mask := uint64(1)<<w - 1
	switch r.op {
	case OpConst:
		return uint64(r.v) & mask
	case OpVar:
		return env[r.name] & mask
	case OpAdd:
		return (r.args[0].eval(env, w) + r.args[1].eval(env, w)) & mask
	case OpSub:
		return (r.args[0].eval(env, w) - r.args[1].eval(env, w)) & mask
	case OpMul:
		return (r.args[0].eval(env, w) * r.args[1].eval(env, w)) & mask
	case OpBVAnd:
		return r.args[0].eval(env, w) & r.args[1].eval(env, w)
	case OpBVOr:
		return r.args[0].eval(env, w) | r.args[1].eval(env, w)
	case OpBVXor:
		return r.args[0].eval(env, w) ^ r.args[1].eval(env, w)
	case OpBVNot:
		return ^r.args[0].eval(env, w) & mask
	case OpNeg:
		return (-r.args[0].eval(env, w)) & mask
	default:
		panic("unexpected op")
	}
}

func randomRef(rng *rand.Rand, depth int) *refNode {
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return &refNode{op: OpConst, v: int64(rng.Intn(256))}
		}
		return &refNode{op: OpVar, name: string(rune('a' + rng.Intn(4)))}
	}
	ops := []Op{OpAdd, OpSub, OpMul, OpBVAnd, OpBVOr, OpBVXor, OpBVNot, OpNeg}
	op := ops[rng.Intn(len(ops))]
	n := &refNode{op: op}
	arity := 2
	if op == OpBVNot || op == OpNeg {
		arity = 1
	}
	for i := 0; i < arity; i++ {
		n.args = append(n.args, randomRef(rng, depth-1))
	}
	return n
}

// TestFactoryAndEvalAgainstReference is the core property test: for random
// expression trees and random environments, the factory-built (and thus
// simplified) term evaluates exactly like the reference tree semantics.
func TestFactoryAndEvalAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	const w = 8
	for iter := 0; iter < 2000; iter++ {
		f := NewFactory()
		ref := randomRef(rng, 4)
		term := ref.build(f, w)
		for trial := 0; trial < 4; trial++ {
			env := Env{}
			envRef := map[string]uint64{}
			for _, nm := range []string{"a", "b", "c", "d"} {
				v := rng.Uint64() & 0xFF
				env.SetUint64(nm, v)
				envRef[nm] = v
			}
			got := Eval(term, env).Uint64()
			want := ref.eval(envRef, w)
			if got != want {
				t.Fatalf("iter %d: term %s: got %d, want %d (env %v)", iter, term, got, want, envRef)
			}
		}
	}
}

func TestWideBitvectors(t *testing.T) {
	f := NewFactory()
	// 128-bit arithmetic (IPv6 addresses in P4 headers).
	a := f.BVVar("a", 128)
	max := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 128), big.NewInt(1))
	expr := f.Add(a, f.BVConst64(1, 128))
	env := Env{"a": max}
	if got := Eval(expr, env); got.Sign() != 0 {
		t.Fatalf("128-bit wrap: got %s, want 0", got)
	}
	c := f.BVConst(max, 128)
	if f.BVNot(c).Const().Sign() != 0 {
		t.Fatalf("bvnot of all-ones must be zero")
	}
}

func TestNegativeConstNormalization(t *testing.T) {
	f := NewFactory()
	c := f.BVConst(big.NewInt(-1), 8)
	if c.Const().Int64() != 255 {
		t.Fatalf("BVConst(-1, 8) = %d, want 255", c.Const().Int64())
	}
}

func TestPanicsOnSortErrors(t *testing.T) {
	f := NewFactory()
	a8, a16 := f.BVVar("a", 8), f.BVVar("b", 16)
	assertPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanic("width mismatch", func() { f.Add(a8, a16) })
	assertPanic("bool arg to add", func() { f.Add(f.BoolVar("p"), a8) })
	assertPanic("bv arg to and", func() { f.And(a8) })
	assertPanic("extract out of range", func() { f.Extract(a8, 8, 0) })
	assertPanic("zext narrower", func() { f.ZExt(a16, 8) })
	assertPanic("bad width", func() { BV(0) })
}

func BenchmarkFactoryAdd(b *testing.B) {
	f := NewFactory()
	a := f.BVVar("a", 32)
	x := f.BVVar("b", 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(a, x)
	}
}

func BenchmarkEvalDeep(b *testing.B) {
	f := NewFactory()
	x := f.BVVar("x", 32)
	expr := x
	for i := 0; i < 200; i++ {
		expr = f.Add(f.Mul(expr, x), f.BVConst64(int64(i), 32))
	}
	env := Env{}
	env.SetUint64("x", 12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Eval(expr, env)
	}
}

// TestFactoryConcurrentInterningDeterministic pins down the two
// properties the parallel inference engine relies on: a factory shared
// by many goroutines still hash-conses (structurally equal terms are
// pointer-identical no matter which goroutine interned them first), and
// canonical argument ordering of commutative operators depends only on
// term content — so a concurrently-populated factory renders every term
// exactly like a serial one. Run under -race this also exercises the
// intern lock.
func TestFactoryConcurrentInterningDeterministic(t *testing.T) {
	const n = 64
	build := func(f *Factory, i int) *Term {
		a := f.BVVar(fmt.Sprintf("a%d", i%7), 8)
		b := f.BVVar(fmt.Sprintf("b%d", i%5), 8)
		sum := f.Add(f.Mul(a, b), f.BVConst64(int64(i%11), 8))
		return f.And(f.Eq(sum, b), f.Ult(a, sum), f.BoolVar(fmt.Sprintf("p%d", i%3)))
	}
	serial := NewFactory()
	want := make([]string, n)
	for i := range want {
		want[i] = build(serial, i).String()
	}

	shared := NewFactory()
	const goroutines = 8
	got := make([][]*Term, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		got[g] = make([]*Term, n)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				idx := i
				if g%2 == 1 {
					idx = n - 1 - i // vary interning order across goroutines
				}
				got[g][idx] = build(shared, idx)
			}
		}(g)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		for g := 1; g < goroutines; g++ {
			if got[g][i] != got[0][i] {
				t.Fatalf("expr %d: goroutine %d interned a distinct term", i, g)
			}
		}
		if s := got[0][i].String(); s != want[i] {
			t.Errorf("expr %d: concurrent factory renders %q, serial %q", i, s, want[i])
		}
	}
}
