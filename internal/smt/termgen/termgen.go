// Package termgen deterministically generates random smt terms and
// matching environments from a byte string. It is the shared front end of
// the differential-fuzz harnesses: the native fuzzers hand it their input
// bytes, it turns them into a well-sorted term DAG plus an assignment for
// every variable it used, and the harness checks the abstract domain
// (internal/absdom) and the rewrite engine (internal/smt/rewrite) against
// concrete evaluation (smt.Eval). The same bytes always produce the same
// term and environment, so fuzz findings replay exactly.
package termgen

import (
	"math/big"

	"bf4/internal/smt"
)

// widths is the pool of bitvector widths the generator draws from: small
// widths shake out boundary bugs (carries, sign bits), the larger ones
// exercise the big.Int paths.
var widths = []int{1, 2, 3, 4, 7, 8, 16, 32}

// Gen consumes a byte string to drive generation choices. When the bytes
// run out every remaining choice resolves to its first (leaf) option, so
// generation always terminates.
type Gen struct {
	f    *smt.Factory
	data []byte
	pos  int
	env  smt.Env
	// nvar bounds the variable pool per sort so generated terms share
	// variables (shared leaves are what make DAG memoization observable).
	nvar int
}

// New returns a generator over f driven by data.
func New(f *smt.Factory, data []byte) *Gen {
	return &Gen{f: f, data: data, env: make(smt.Env), nvar: 3}
}

// Env returns the assignment for every variable generated so far. Values
// are drawn from the byte stream, so they are as adversarial as the terms.
func (g *Gen) Env() smt.Env { return g.env }

func (g *Gen) byte() byte {
	if g.pos >= len(g.data) {
		return 0
	}
	b := g.data[g.pos]
	g.pos++
	return b
}

func (g *Gen) pick(n int) int { return int(g.byte()) % n }

// Term generates a top-level term: boolean (like a verification
// condition) or a bitvector of a pooled width.
func (g *Gen) Term() *smt.Term {
	if g.byte()%4 != 0 {
		return g.Bool(g.depth())
	}
	return g.BV(widths[g.pick(len(widths))], g.depth())
}

func (g *Gen) depth() int { return 2 + g.pick(3) }

func (g *Gen) bigFor(w int) *big.Int {
	nb := (w + 7) / 8
	buf := make([]byte, nb)
	for i := range buf {
		buf[i] = g.byte()
	}
	v := new(big.Int).SetBytes(buf)
	m := new(big.Int).Lsh(big.NewInt(1), uint(w))
	return v.Mod(v, m)
}

func (g *Gen) boolVar() *smt.Term {
	name := "b" + string(rune('0'+g.pick(g.nvar)))
	v := g.f.BoolVar(name)
	if _, ok := g.env[name]; !ok {
		g.env.SetBool(name, g.byte()%2 == 1)
	}
	return v
}

func (g *Gen) bvVar(w int) *smt.Term {
	name := "x" + itoa(w) + "_" + string(rune('0'+g.pick(g.nvar)))
	v := g.f.BVVar(name, w)
	if _, ok := g.env[name]; !ok {
		g.env.Set(name, g.bigFor(w))
	}
	return v
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Bool generates a boolean term of at most the given depth.
func (g *Gen) Bool(depth int) *smt.Term {
	if depth <= 0 {
		switch g.pick(4) {
		case 0:
			return g.f.Bool(g.byte()%2 == 1)
		default:
			return g.boolVar()
		}
	}
	w := widths[g.pick(len(widths))]
	switch g.pick(14) {
	case 0:
		return g.boolVar()
	case 1:
		return g.f.Not(g.Bool(depth - 1))
	case 2:
		return g.f.And(g.Bool(depth-1), g.Bool(depth-1))
	case 3:
		return g.f.Or(g.Bool(depth-1), g.Bool(depth-1))
	case 4:
		return g.f.Xor(g.Bool(depth-1), g.Bool(depth-1))
	case 5:
		return g.f.Implies(g.Bool(depth-1), g.Bool(depth-1))
	case 6:
		return g.f.Ite(g.Bool(depth-1), g.Bool(depth-1), g.Bool(depth-1))
	case 7:
		return g.f.Eq(g.Bool(depth-1), g.Bool(depth-1))
	case 8:
		return g.f.Eq(g.BV(w, depth-1), g.BV(w, depth-1))
	case 9:
		return g.f.Ult(g.BV(w, depth-1), g.BV(w, depth-1))
	case 10:
		return g.f.Ule(g.BV(w, depth-1), g.BV(w, depth-1))
	case 11:
		return g.f.Slt(g.BV(w, depth-1), g.BV(w, depth-1))
	case 12:
		return g.f.Sle(g.BV(w, depth-1), g.BV(w, depth-1))
	default:
		return g.f.Bool(g.byte()%2 == 1)
	}
}

// BV generates a bitvector term of exactly width w and at most the given
// depth.
func (g *Gen) BV(w, depth int) *smt.Term {
	if depth <= 0 {
		switch g.pick(3) {
		case 0:
			return g.f.BVConst(g.bigFor(w), w)
		default:
			return g.bvVar(w)
		}
	}
	switch g.pick(18) {
	case 0:
		return g.bvVar(w)
	case 1:
		return g.f.Add(g.BV(w, depth-1), g.BV(w, depth-1))
	case 2:
		return g.f.Sub(g.BV(w, depth-1), g.BV(w, depth-1))
	case 3:
		return g.f.Neg(g.BV(w, depth-1))
	case 4:
		return g.f.Mul(g.BV(w, depth-1), g.BV(w, depth-1))
	case 5:
		return g.f.BVAnd(g.BV(w, depth-1), g.BV(w, depth-1))
	case 6:
		return g.f.BVOr(g.BV(w, depth-1), g.BV(w, depth-1))
	case 7:
		return g.f.BVXor(g.BV(w, depth-1), g.BV(w, depth-1))
	case 8:
		return g.f.BVNot(g.BV(w, depth-1))
	case 9:
		return g.f.Shl(g.BV(w, depth-1), g.BV(w, depth-1))
	case 10:
		return g.f.Lshr(g.BV(w, depth-1), g.BV(w, depth-1))
	case 11:
		return g.f.Ashr(g.BV(w, depth-1), g.BV(w, depth-1))
	case 12:
		// Concat of a random split of w.
		if w < 2 {
			return g.bvVar(w)
		}
		wb := 1 + g.pick(w-1)
		return g.f.Concat(g.BV(w-wb, depth-1), g.BV(wb, depth-1))
	case 13:
		// Extract w bits out of a wider source.
		ws := w + 1 + g.pick(4)
		lo := g.pick(ws - w + 1)
		return g.f.Extract(g.BV(ws, depth-1), lo+w-1, lo)
	case 14:
		// ZExt from a narrower source.
		if w < 2 {
			return g.f.BVConst(g.bigFor(w), w)
		}
		ws := 1 + g.pick(w-1)
		return g.f.ZExt(g.BV(ws, depth-1), w)
	case 15:
		// SExt from a narrower source.
		if w < 2 {
			return g.f.BVConst(g.bigFor(w), w)
		}
		ws := 1 + g.pick(w-1)
		return g.f.SExt(g.BV(ws, depth-1), w)
	case 16:
		return g.f.Ite(g.Bool(depth-1), g.BV(w, depth-1), g.BV(w, depth-1))
	default:
		return g.f.BVConst(g.bigFor(w), w)
	}
}
