// Package smt provides a hash-consed term representation for quantifier-free
// bitvector logic (QF_BV) with booleans — the fragment bf4's verification
// conditions live in. Terms are immutable DAG nodes created through a
// Factory, which guarantees structural sharing: syntactically equal terms
// are pointer-equal. This sharing is what keeps weakest-precondition
// formulas over merged control-flow graphs polynomial in program size
// (Flanagan–Saxe-style compact verification conditions).
//
// The factory performs light, evaluation-preserving simplification at
// construction time (constant folding, identities, complement detection).
// Heavier reasoning is delegated to internal/bitblast + internal/sat via
// the internal/solver façade.
package smt

import (
	"encoding/binary"
	"fmt"
	"math/big"
	"sort"
	"strings"
	"sync"
)

// Sort identifies a term's type: Bool (Width == 0) or a bitvector of the
// given positive width.
type Sort struct {
	Width int
}

// BoolSort is the sort of boolean terms.
var BoolSort = Sort{Width: 0}

// BV returns the bitvector sort of width w (w >= 1).
func BV(w int) Sort {
	if w < 1 {
		panic(fmt.Sprintf("smt: invalid bitvector width %d", w))
	}
	return Sort{Width: w}
}

// IsBool reports whether the sort is boolean.
func (s Sort) IsBool() bool { return s.Width == 0 }

func (s Sort) String() string {
	if s.IsBool() {
		return "Bool"
	}
	return fmt.Sprintf("BV%d", s.Width)
}

// Op enumerates term constructors.
type Op uint8

// Term operators. Bool-sorted: OpTrue..OpIte (OpIte may also be BV-sorted);
// comparison ops take BV args and produce Bool; the rest are BV ops.
const (
	OpTrue Op = iota
	OpFalse
	OpVar // boolean or bitvector variable, identified by name
	OpNot
	OpAnd
	OpOr
	OpXor // boolean xor
	OpImplies
	OpIte // polymorphic: sort of branches
	OpEq  // polymorphic args (both Bool or both BV w)

	OpConst // bitvector constant
	OpUlt
	OpUle
	OpSlt
	OpSle
	OpAdd
	OpSub
	OpNeg
	OpMul
	OpBVAnd
	OpBVOr
	OpBVXor
	OpBVNot
	OpShl
	OpLshr
	OpAshr
	OpConcat
	OpExtract
	OpZExt
	OpSExt
)

var opNames = map[Op]string{
	OpTrue: "true", OpFalse: "false", OpVar: "var", OpNot: "not",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpImplies: "=>", OpIte: "ite",
	OpEq: "=", OpConst: "const", OpUlt: "bvult", OpUle: "bvule",
	OpSlt: "bvslt", OpSle: "bvsle", OpAdd: "bvadd", OpSub: "bvsub",
	OpNeg: "bvneg", OpMul: "bvmul", OpBVAnd: "bvand", OpBVOr: "bvor",
	OpBVXor: "bvxor", OpBVNot: "bvnot", OpShl: "bvshl", OpLshr: "bvlshr",
	OpAshr: "bvashr", OpConcat: "concat", OpExtract: "extract",
	OpZExt: "zext", OpSExt: "sext",
}

func (o Op) String() string { return opNames[o] }

// Term is an immutable, hash-consed term. Terms produced by the same
// Factory are pointer-comparable: a == b iff they are structurally equal.
type Term struct {
	id   uint32
	hash uint64 // deterministic content hash, for canonical argument order
	op   Op
	sort Sort
	args []*Term
	val  *big.Int // OpConst only, normalized to [0, 2^w)
	name string   // OpVar only
	lo   int      // OpExtract only
	hi   int      // OpExtract only
}

// ID returns a factory-unique identifier, usable as a map key.
func (t *Term) ID() uint32 { return t.id }

// Op returns the term's constructor.
func (t *Term) Op() Op { return t.op }

// Sort returns the term's sort.
func (t *Term) Sort() Sort { return t.sort }

// Args returns the argument terms. The caller must not modify the slice.
func (t *Term) Args() []*Term { return t.args }

// Arg returns the i-th argument.
func (t *Term) Arg(i int) *Term { return t.args[i] }

// Name returns the variable name (OpVar only).
func (t *Term) Name() string { return t.name }

// Const returns the constant value (OpConst only). Callers must not
// mutate the returned value.
func (t *Term) Const() *big.Int { return t.val }

// ExtractBounds returns (hi, lo) for OpExtract terms.
func (t *Term) ExtractBounds() (hi, lo int) { return t.hi, t.lo }

// IsTrue reports whether t is the constant true.
func (t *Term) IsTrue() bool { return t.op == OpTrue }

// IsFalse reports whether t is the constant false.
func (t *Term) IsFalse() bool { return t.op == OpFalse }

// IsConst reports whether t is a bitvector constant.
func (t *Term) IsConst() bool { return t.op == OpConst }

// String renders the term as an S-expression. Intended for debugging and
// error messages, not serialization (the DAG is expanded to a tree).
func (t *Term) String() string {
	var b strings.Builder
	t.write(&b, map[*Term]bool{}, 0)
	return b.String()
}

func (t *Term) write(b *strings.Builder, seen map[*Term]bool, depth int) {
	switch t.op {
	case OpTrue:
		b.WriteString("true")
	case OpFalse:
		b.WriteString("false")
	case OpVar:
		b.WriteString(t.name)
	case OpConst:
		fmt.Fprintf(b, "#x%s[%d]", t.val.Text(16), t.sort.Width)
	case OpExtract:
		fmt.Fprintf(b, "((_ extract %d %d) ", t.hi, t.lo)
		t.args[0].write(b, seen, depth+1)
		b.WriteString(")")
	case OpZExt, OpSExt:
		fmt.Fprintf(b, "((_ %s %d) ", t.op, t.sort.Width-t.args[0].sort.Width)
		t.args[0].write(b, seen, depth+1)
		b.WriteString(")")
	default:
		b.WriteString("(")
		b.WriteString(t.op.String())
		for _, a := range t.args {
			b.WriteString(" ")
			if depth > 16 {
				fmt.Fprintf(b, "@%d", a.id)
				continue
			}
			a.write(b, seen, depth+1)
		}
		b.WriteString(")")
	}
}

// Vars appends to dst all distinct variables occurring in t and returns
// the extended slice. Variables already present in dst are not appended
// again, so the slice stays duplicate-free when accumulating over many
// terms. Callers that accumulate across a large shared DAG should prefer
// VarsSeen with a persistent seen-set: it skips whole subgraphs visited
// by earlier calls instead of re-walking them.
func (t *Term) Vars(dst []*Term) []*Term {
	seen := make(map[uint32]bool, 64)
	for _, v := range dst {
		seen[v.id] = true
	}
	return t.VarsSeen(dst, seen)
}

// VarsSeen is Vars with a caller-owned seen-set keyed by Term.ID(). Every
// visited node is recorded in seen, so repeated calls over terms sharing
// DAG structure walk each distinct node exactly once in total — without
// it, N asserts over one shared formula walk the DAG N times (a quadratic
// blowup on wide conditions; see BenchmarkVarsAccumulate).
func (t *Term) VarsSeen(dst []*Term, seen map[uint32]bool) []*Term {
	var walk func(*Term)
	walk = func(u *Term) {
		if seen[u.id] {
			return
		}
		seen[u.id] = true
		if u.op == OpVar {
			dst = append(dst, u)
			return
		}
		for _, a := range u.args {
			walk(a)
		}
	}
	walk(t)
	return dst
}

// Size returns the number of distinct DAG nodes reachable from t.
func (t *Term) Size() int {
	seen := map[*Term]bool{}
	var walk func(*Term)
	walk = func(u *Term) {
		if seen[u] {
			return
		}
		seen[u] = true
		for _, a := range u.args {
			walk(a)
		}
	}
	walk(t)
	return len(seen)
}

// TreeSize returns the size of t expanded as a tree, capped at limit
// (returns limit if exceeded). Used to measure the benefit of DAG sharing.
func (t *Term) TreeSize(limit int) int {
	var walk func(*Term, int) int
	walk = func(u *Term, budget int) int {
		if budget <= 0 {
			return 0
		}
		n := 1
		for _, a := range u.args {
			n += walk(a, budget-n)
			if n >= budget {
				return budget
			}
		}
		return n
	}
	return walk(t, limit)
}

// Factory creates and hash-conses terms. The zero value is not usable;
// call NewFactory. A Factory is safe for concurrent use: interning is
// serialized by a mutex, and canonical argument ordering is derived from
// a deterministic content hash rather than interning order, so the
// structure of every term (and hence every rendering of it) is identical
// no matter how goroutines interleave their term construction.
type Factory struct {
	mu     sync.Mutex
	table  map[string]*Term
	nextID uint32
	true_  *Term
	false_ *Term

	// simplify optionally provides evaluation-preserving term rewriters
	// (internal/smt/rewrite installs one via the driver). Each consumer —
	// typically a solver instance — obtains its own rewriter so per-
	// rewriter memo tables need no locking.
	simplify func() func(*Term) *Term
}

// NewFactory returns an empty term factory with interned true/false.
func NewFactory() *Factory {
	f := &Factory{table: make(map[string]*Term)}
	f.true_ = f.intern(&Term{op: OpTrue, sort: BoolSort})
	f.false_ = f.intern(&Term{op: OpFalse, sort: BoolSort})
	return f
}

// SetSimplifyProvider installs (or, with nil, removes) a provider of
// evaluation-preserving rewrite passes for terms of this factory. Every
// rewriter returned by the provider must satisfy: for all terms t and
// environments env, Eval(rewrite(t), env) == Eval(t, env). Consumers that
// want pre-solve simplification (internal/solver) call NewSimplifier.
// Installing the provider is the driver's way of turning -rewrite on for
// one run without global state: the setting travels with the factory.
func (f *Factory) SetSimplifyProvider(p func() func(*Term) *Term) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.simplify = p
}

// NewSimplifier returns a fresh rewrite pass from the installed provider,
// or nil when none is installed. Each returned rewriter is independent
// (own memo), so callers may use theirs without synchronization.
func (f *Factory) NewSimplifier() func(*Term) *Term {
	f.mu.Lock()
	p := f.simplify
	f.mu.Unlock()
	if p == nil {
		return nil
	}
	return p()
}

// NumTerms returns the number of distinct terms created so far, a proxy
// for formula memory footprint.
func (f *Factory) NumTerms() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.table)
}

func (f *Factory) key(t *Term) string {
	var b strings.Builder
	b.Grow(16 + 4*len(t.args))
	b.WriteByte(byte(t.op))
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(t.sort.Width))
	b.Write(tmp[:4])
	switch t.op {
	case OpVar:
		b.WriteString(t.name)
	case OpConst:
		b.WriteString(t.val.Text(62))
	case OpExtract:
		binary.LittleEndian.PutUint32(tmp[:4], uint32(t.lo))
		binary.LittleEndian.PutUint32(tmp[4:], uint32(t.hi))
		b.Write(tmp[:])
	}
	for _, a := range t.args {
		binary.LittleEndian.PutUint32(tmp[:4], a.id)
		b.Write(tmp[:4])
	}
	return b.String()
}

func (f *Factory) intern(t *Term) *Term {
	k := f.key(t)
	t.hash = contentHash(t)
	f.mu.Lock()
	defer f.mu.Unlock()
	if existing, ok := f.table[k]; ok {
		return existing
	}
	t.id = f.nextID
	f.nextID++
	f.table[k] = t
	return t
}

// contentHash computes a deterministic 64-bit hash of a term's structure
// (FNV-1a over op, sort, payload and argument hashes). Unlike the intern
// id, it does not depend on creation order, which makes it a stable basis
// for canonical argument ordering under concurrent construction.
func contentHash(t *Term) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(t.op))
	mix(uint64(t.sort.Width))
	switch t.op {
	case OpVar:
		for i := 0; i < len(t.name); i++ {
			h ^= uint64(t.name[i])
			h *= prime64
		}
	case OpConst:
		for _, b := range t.val.Bytes() {
			h ^= uint64(b)
			h *= prime64
		}
	case OpExtract:
		mix(uint64(t.lo))
		mix(uint64(t.hi))
	}
	for _, a := range t.args {
		mix(a.hash)
	}
	return h
}

// termCmp is a deterministic total order over terms from one factory:
// primarily by content hash, with a full structural comparison breaking
// the (astronomically rare) hash ties. It is creation-order independent,
// which keeps canonical forms byte-identical across runs and worker
// counts.
func termCmp(a, b *Term) int {
	if a == b {
		return 0
	}
	switch {
	case a.hash < b.hash:
		return -1
	case a.hash > b.hash:
		return 1
	}
	return structCmp(a, b)
}

func structCmp(a, b *Term) int {
	if a == b {
		return 0
	}
	switch {
	case a.op != b.op:
		if a.op < b.op {
			return -1
		}
		return 1
	case a.sort.Width != b.sort.Width:
		if a.sort.Width < b.sort.Width {
			return -1
		}
		return 1
	case a.op == OpVar:
		return strings.Compare(a.name, b.name)
	case a.op == OpConst:
		return a.val.Cmp(b.val)
	case a.op == OpExtract && a.lo != b.lo:
		if a.lo < b.lo {
			return -1
		}
		return 1
	case a.op == OpExtract && a.hi != b.hi:
		if a.hi < b.hi {
			return -1
		}
		return 1
	case len(a.args) != len(b.args):
		if len(a.args) < len(b.args) {
			return -1
		}
		return 1
	}
	for i := range a.args {
		if c := structCmp(a.args[i], b.args[i]); c != 0 {
			return c
		}
	}
	return 0
}

func termLess(a, b *Term) bool { return termCmp(a, b) < 0 }

// True returns the boolean constant true.
func (f *Factory) True() *Term { return f.true_ }

// False returns the boolean constant false.
func (f *Factory) False() *Term { return f.false_ }

// Bool returns the boolean constant for b.
func (f *Factory) Bool(b bool) *Term {
	if b {
		return f.true_
	}
	return f.false_
}

// BoolVar returns the boolean variable named name.
func (f *Factory) BoolVar(name string) *Term {
	return f.intern(&Term{op: OpVar, sort: BoolSort, name: name})
}

// BVVar returns the bitvector variable named name of width w.
func (f *Factory) BVVar(name string, w int) *Term {
	return f.intern(&Term{op: OpVar, sort: BV(w), name: name})
}

// Var returns a variable of the given sort.
func (f *Factory) Var(name string, s Sort) *Term {
	if s.IsBool() {
		return f.BoolVar(name)
	}
	return f.BVVar(name, s.Width)
}

var bigOne = big.NewInt(1)

// maskFor returns 2^w - 1.
func maskFor(w int) *big.Int {
	m := new(big.Int).Lsh(bigOne, uint(w))
	return m.Sub(m, bigOne)
}

// BVConst returns the bitvector constant v (mod 2^w) of width w.
func (f *Factory) BVConst(v *big.Int, w int) *Term {
	nv := new(big.Int).And(new(big.Int).Set(v), maskFor(w))
	if v.Sign() < 0 {
		nv = new(big.Int).Set(v)
		nv.Mod(nv, new(big.Int).Lsh(bigOne, uint(w)))
		if nv.Sign() < 0 {
			nv.Add(nv, new(big.Int).Lsh(bigOne, uint(w)))
		}
	}
	return f.intern(&Term{op: OpConst, sort: BV(w), val: nv})
}

// BVConst64 returns the bitvector constant v (mod 2^w) of width w.
func (f *Factory) BVConst64(v int64, w int) *Term {
	return f.BVConst(big.NewInt(v), w)
}

// Not returns the boolean negation of a.
func (f *Factory) Not(a *Term) *Term {
	mustBool(a)
	switch {
	case a.IsTrue():
		return f.false_
	case a.IsFalse():
		return f.true_
	case a.op == OpNot:
		return a.args[0]
	}
	return f.intern(&Term{op: OpNot, sort: BoolSort, args: []*Term{a}})
}

// And returns the conjunction of args, simplifying constants, duplicates
// and complementary pairs. And() is true.
func (f *Factory) And(args ...*Term) *Term {
	return f.nary(OpAnd, args)
}

// Or returns the disjunction of args. Or() is false.
func (f *Factory) Or(args ...*Term) *Term {
	return f.nary(OpOr, args)
}

func (f *Factory) nary(op Op, args []*Term) *Term {
	neutral, absorbing := f.true_, f.false_
	if op == OpOr {
		neutral, absorbing = f.false_, f.true_
	}
	flat := make([]*Term, 0, len(args))
	seen := map[*Term]bool{}
	for _, a := range args {
		mustBool(a)
		if a == absorbing {
			return absorbing
		}
		if a == neutral {
			continue
		}
		// Flatten one level of the same operator.
		sub := []*Term{a}
		if a.op == op {
			sub = a.args
		}
		for _, s := range sub {
			if s == absorbing {
				return absorbing
			}
			if s == neutral || seen[s] {
				continue
			}
			seen[s] = true
			flat = append(flat, s)
		}
	}
	// Complement detection: x and not(x) together collapse.
	for _, a := range flat {
		if a.op == OpNot && seen[a.args[0]] {
			return absorbing
		}
	}
	switch len(flat) {
	case 0:
		return neutral
	case 1:
		return flat[0]
	}
	sort.Slice(flat, func(i, j int) bool { return termLess(flat[i], flat[j]) })
	return f.intern(&Term{op: op, sort: BoolSort, args: flat})
}

// Xor returns the boolean exclusive-or of a and b.
func (f *Factory) Xor(a, b *Term) *Term {
	mustBool(a)
	mustBool(b)
	switch {
	case a == b:
		return f.false_
	case a.IsFalse():
		return b
	case b.IsFalse():
		return a
	case a.IsTrue():
		return f.Not(b)
	case b.IsTrue():
		return f.Not(a)
	}
	if termLess(b, a) {
		a, b = b, a
	}
	return f.intern(&Term{op: OpXor, sort: BoolSort, args: []*Term{a, b}})
}

// Implies returns a -> b.
func (f *Factory) Implies(a, b *Term) *Term {
	return f.Or(f.Not(a), b)
}

// Iff returns a <-> b.
func (f *Factory) Iff(a, b *Term) *Term {
	return f.Not(f.Xor(a, b))
}

// Ite returns if cond then a else b. The branches must share a sort; the
// result has that sort (Bool or BV).
func (f *Factory) Ite(cond, a, b *Term) *Term {
	mustBool(cond)
	if a.sort != b.sort {
		panic(fmt.Sprintf("smt: ite branch sorts differ: %v vs %v", a.sort, b.sort))
	}
	switch {
	case cond.IsTrue():
		return a
	case cond.IsFalse():
		return b
	case a == b:
		return a
	}
	if a.sort.IsBool() {
		// Encode boolean ite structurally for better downstream handling.
		return f.Or(f.And(cond, a), f.And(f.Not(cond), b))
	}
	// ite(u == c, c, c') over width-1 vectors with distinct constants is
	// just u (the isValid()-as-key encoding; simplifying it keeps inferred
	// assertions readable).
	if a.sort.Width == 1 && a.IsConst() && b.IsConst() && a.val.Cmp(b.val) != 0 && cond.op == OpEq {
		x, y := cond.args[0], cond.args[1]
		if y.IsConst() && !x.IsConst() && y.val.Cmp(a.val) == 0 && x.sort == a.sort {
			return x
		}
		if x.IsConst() && !y.IsConst() && x.val.Cmp(a.val) == 0 && y.sort == a.sort {
			return y
		}
	}
	return f.intern(&Term{op: OpIte, sort: a.sort, args: []*Term{cond, a, b}})
}

// Eq returns a = b for same-sorted terms.
func (f *Factory) Eq(a, b *Term) *Term {
	if a.sort != b.sort {
		panic(fmt.Sprintf("smt: eq sorts differ: %v vs %v", a.sort, b.sort))
	}
	if a == b {
		return f.true_
	}
	if a.sort.IsBool() {
		return f.Iff(a, b)
	}
	if a.IsConst() && b.IsConst() {
		return f.Bool(a.val.Cmp(b.val) == 0)
	}
	if termLess(b, a) {
		a, b = b, a
	}
	return f.intern(&Term{op: OpEq, sort: BoolSort, args: []*Term{a, b}})
}

// Distinct returns a != b.
func (f *Factory) Distinct(a, b *Term) *Term { return f.Not(f.Eq(a, b)) }

func mustBool(t *Term) {
	if !t.sort.IsBool() {
		panic(fmt.Sprintf("smt: expected Bool, got %v in %s", t.sort, t))
	}
}

func mustBV(t *Term) int {
	if t.sort.IsBool() {
		panic(fmt.Sprintf("smt: expected bitvector, got Bool in %s", t))
	}
	return t.sort.Width
}

func mustSameWidth(a, b *Term) int {
	wa, wb := mustBV(a), mustBV(b)
	if wa != wb {
		panic(fmt.Sprintf("smt: width mismatch %d vs %d (%s vs %s)", wa, wb, a, b))
	}
	return wa
}

func (f *Factory) binBV(op Op, a, b *Term, fold func(x, y *big.Int, w int) *big.Int, comm bool) *Term {
	w := mustSameWidth(a, b)
	if a.IsConst() && b.IsConst() {
		return f.BVConst(fold(a.val, b.val, w), w)
	}
	if comm && termLess(b, a) {
		a, b = b, a
	}
	return f.intern(&Term{op: op, sort: BV(w), args: []*Term{a, b}})
}

// Add returns a + b (mod 2^w).
func (f *Factory) Add(a, b *Term) *Term {
	if a.IsConst() && a.val.Sign() == 0 {
		return b
	}
	if b.IsConst() && b.val.Sign() == 0 {
		return a
	}
	return f.binBV(OpAdd, a, b, func(x, y *big.Int, w int) *big.Int {
		return new(big.Int).Add(x, y)
	}, true)
}

// Sub returns a - b (mod 2^w).
func (f *Factory) Sub(a, b *Term) *Term {
	if b.IsConst() && b.val.Sign() == 0 {
		return a
	}
	if a == b {
		return f.BVConst64(0, a.sort.Width)
	}
	return f.binBV(OpSub, a, b, func(x, y *big.Int, w int) *big.Int {
		return new(big.Int).Sub(x, y)
	}, false)
}

// Neg returns -a (mod 2^w).
func (f *Factory) Neg(a *Term) *Term {
	w := mustBV(a)
	if a.IsConst() {
		return f.BVConst(new(big.Int).Neg(a.val), w)
	}
	return f.intern(&Term{op: OpNeg, sort: BV(w), args: []*Term{a}})
}

// Mul returns a * b (mod 2^w).
func (f *Factory) Mul(a, b *Term) *Term {
	if a.IsConst() {
		if a.val.Sign() == 0 {
			return a
		}
		if a.val.Cmp(bigOne) == 0 {
			return b
		}
	}
	if b.IsConst() {
		if b.val.Sign() == 0 {
			return b
		}
		if b.val.Cmp(bigOne) == 0 {
			return a
		}
	}
	return f.binBV(OpMul, a, b, func(x, y *big.Int, w int) *big.Int {
		return new(big.Int).Mul(x, y)
	}, true)
}

// BVAnd returns the bitwise conjunction of a and b.
func (f *Factory) BVAnd(a, b *Term) *Term {
	w := mustSameWidth(a, b)
	if a == b {
		return a
	}
	if a.IsConst() {
		if a.val.Sign() == 0 {
			return a
		}
		if a.val.Cmp(maskFor(w)) == 0 {
			return b
		}
	}
	if b.IsConst() {
		if b.val.Sign() == 0 {
			return b
		}
		if b.val.Cmp(maskFor(w)) == 0 {
			return a
		}
	}
	return f.binBV(OpBVAnd, a, b, func(x, y *big.Int, w int) *big.Int {
		return new(big.Int).And(x, y)
	}, true)
}

// BVOr returns the bitwise disjunction of a and b.
func (f *Factory) BVOr(a, b *Term) *Term {
	w := mustSameWidth(a, b)
	if a == b {
		return a
	}
	if a.IsConst() {
		if a.val.Sign() == 0 {
			return b
		}
		if a.val.Cmp(maskFor(w)) == 0 {
			return a
		}
	}
	if b.IsConst() {
		if b.val.Sign() == 0 {
			return a
		}
		if b.val.Cmp(maskFor(w)) == 0 {
			return b
		}
	}
	return f.binBV(OpBVOr, a, b, func(x, y *big.Int, w int) *big.Int {
		return new(big.Int).Or(x, y)
	}, true)
}

// BVXor returns the bitwise exclusive-or of a and b.
func (f *Factory) BVXor(a, b *Term) *Term {
	w := mustSameWidth(a, b)
	if a == b {
		return f.BVConst64(0, w)
	}
	return f.binBV(OpBVXor, a, b, func(x, y *big.Int, w int) *big.Int {
		return new(big.Int).Xor(x, y)
	}, true)
}

// BVNot returns the bitwise complement of a.
func (f *Factory) BVNot(a *Term) *Term {
	w := mustBV(a)
	if a.IsConst() {
		return f.BVConst(new(big.Int).Xor(a.val, maskFor(w)), w)
	}
	if a.op == OpBVNot {
		return a.args[0]
	}
	return f.intern(&Term{op: OpBVNot, sort: BV(w), args: []*Term{a}})
}

// Shl returns a << b (filling with zeros, shift amount unsigned).
func (f *Factory) Shl(a, b *Term) *Term {
	if b.IsConst() && b.val.Sign() == 0 {
		return a
	}
	return f.binBV(OpShl, a, b, func(x, y *big.Int, w int) *big.Int {
		if y.Cmp(big.NewInt(int64(w))) >= 0 {
			return new(big.Int)
		}
		return new(big.Int).Lsh(x, uint(y.Uint64()))
	}, false)
}

// Lshr returns a >> b (logical, zero-filling).
func (f *Factory) Lshr(a, b *Term) *Term {
	if b.IsConst() && b.val.Sign() == 0 {
		return a
	}
	return f.binBV(OpLshr, a, b, func(x, y *big.Int, w int) *big.Int {
		if y.Cmp(big.NewInt(int64(w))) >= 0 {
			return new(big.Int)
		}
		return new(big.Int).Rsh(x, uint(y.Uint64()))
	}, false)
}

// Ashr returns a >> b (arithmetic, sign-filling).
func (f *Factory) Ashr(a, b *Term) *Term {
	if b.IsConst() && b.val.Sign() == 0 {
		return a
	}
	return f.binBV(OpAshr, a, b, func(x, y *big.Int, w int) *big.Int {
		s := toSigned(x, w)
		sh := uint(w)
		if y.Cmp(big.NewInt(int64(w))) < 0 {
			sh = uint(y.Uint64())
		}
		return new(big.Int).Rsh(s, sh)
	}, false)
}

// Ult returns the unsigned comparison a < b.
func (f *Factory) Ult(a, b *Term) *Term {
	mustSameWidth(a, b)
	if a == b {
		return f.false_
	}
	if a.IsConst() && b.IsConst() {
		return f.Bool(a.val.Cmp(b.val) < 0)
	}
	return f.intern(&Term{op: OpUlt, sort: BoolSort, args: []*Term{a, b}})
}

// Ule returns the unsigned comparison a <= b.
func (f *Factory) Ule(a, b *Term) *Term {
	mustSameWidth(a, b)
	if a == b {
		return f.true_
	}
	if a.IsConst() && b.IsConst() {
		return f.Bool(a.val.Cmp(b.val) <= 0)
	}
	return f.intern(&Term{op: OpUle, sort: BoolSort, args: []*Term{a, b}})
}

// Ugt returns a > b (unsigned).
func (f *Factory) Ugt(a, b *Term) *Term { return f.Ult(b, a) }

// Uge returns a >= b (unsigned).
func (f *Factory) Uge(a, b *Term) *Term { return f.Ule(b, a) }

// Slt returns the signed comparison a < b.
func (f *Factory) Slt(a, b *Term) *Term {
	w := mustSameWidth(a, b)
	if a == b {
		return f.false_
	}
	if a.IsConst() && b.IsConst() {
		return f.Bool(toSigned(a.val, w).Cmp(toSigned(b.val, w)) < 0)
	}
	return f.intern(&Term{op: OpSlt, sort: BoolSort, args: []*Term{a, b}})
}

// Sle returns the signed comparison a <= b.
func (f *Factory) Sle(a, b *Term) *Term {
	w := mustSameWidth(a, b)
	if a == b {
		return f.true_
	}
	if a.IsConst() && b.IsConst() {
		return f.Bool(toSigned(a.val, w).Cmp(toSigned(b.val, w)) <= 0)
	}
	return f.intern(&Term{op: OpSle, sort: BoolSort, args: []*Term{a, b}})
}

// Concat returns the concatenation a ++ b, with a providing the
// high-order bits.
func (f *Factory) Concat(a, b *Term) *Term {
	wa, wb := mustBV(a), mustBV(b)
	if a.IsConst() && b.IsConst() {
		v := new(big.Int).Lsh(a.val, uint(wb))
		v.Or(v, b.val)
		return f.BVConst(v, wa+wb)
	}
	return f.intern(&Term{op: OpConcat, sort: BV(wa + wb), args: []*Term{a, b}})
}

// Extract returns bits hi..lo of a (inclusive), a bitvector of width
// hi-lo+1.
func (f *Factory) Extract(a *Term, hi, lo int) *Term {
	w := mustBV(a)
	if lo < 0 || hi < lo || hi >= w {
		panic(fmt.Sprintf("smt: extract [%d:%d] out of range for width %d", hi, lo, w))
	}
	if lo == 0 && hi == w-1 {
		return a
	}
	if a.IsConst() {
		v := new(big.Int).Rsh(a.val, uint(lo))
		return f.BVConst(v, hi-lo+1)
	}
	if a.op == OpExtract {
		return f.Extract(a.args[0], a.lo+hi, a.lo+lo)
	}
	return f.intern(&Term{op: OpExtract, sort: BV(hi - lo + 1), args: []*Term{a}, lo: lo, hi: hi})
}

// ZExt zero-extends a to width w.
func (f *Factory) ZExt(a *Term, w int) *Term {
	wa := mustBV(a)
	if w == wa {
		return a
	}
	if w < wa {
		panic(fmt.Sprintf("smt: zext to narrower width %d < %d", w, wa))
	}
	if a.IsConst() {
		return f.BVConst(a.val, w)
	}
	return f.intern(&Term{op: OpZExt, sort: BV(w), args: []*Term{a}})
}

// SExt sign-extends a to width w.
func (f *Factory) SExt(a *Term, w int) *Term {
	wa := mustBV(a)
	if w == wa {
		return a
	}
	if w < wa {
		panic(fmt.Sprintf("smt: sext to narrower width %d < %d", w, wa))
	}
	if a.IsConst() {
		return f.BVConst(toSigned(a.val, wa), w)
	}
	return f.intern(&Term{op: OpSExt, sort: BV(w), args: []*Term{a}})
}

// Resize zero-extends or truncates a to width w, the semantics of P4
// implicit casts between unsigned widths.
func (f *Factory) Resize(a *Term, w int) *Term {
	wa := mustBV(a)
	switch {
	case w == wa:
		return a
	case w > wa:
		return f.ZExt(a, w)
	default:
		return f.Extract(a, w-1, 0)
	}
}

// toSigned interprets v (in [0,2^w)) as a w-bit two's complement value.
func toSigned(v *big.Int, w int) *big.Int {
	if v.Bit(w-1) == 0 {
		return new(big.Int).Set(v)
	}
	return new(big.Int).Sub(v, new(big.Int).Lsh(bigOne, uint(w)))
}
