package analysis_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"bf4/internal/analysis"
	"bf4/internal/ir"
	"bf4/internal/p4/parser"
	"bf4/internal/p4/types"
	"bf4/internal/progs"
)

var update = flag.Bool("update", false, "rewrite golden lint files")

// lint compiles a corpus source through the frontend and runs the
// analysis layer, mirroring what `bf4 lint` does.
func lint(t *testing.T, name, src string) *analysis.Result {
	t.Helper()
	prog, err := parser.ParseFile(name, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	p, err := ir.Build(prog, info, ir.DefaultOptions())
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return analysis.Run(p, prog)
}

// TestLintGolden locks the exact diagnostic output for every corpus
// program. Any drift — a new false positive, a lost warning, a message
// rewording — fails CI; run with -update to accept intended changes.
func TestLintGolden(t *testing.T) {
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			src := p.Source
			if p.Name == "switch" {
				src = progs.GenerateSwitch(4)
			}
			file := p.Name + ".p4"
			res := lint(t, file, src)
			got := analysis.RenderText(file, res.Diags)

			golden := filepath.Join("testdata", p.Name+".lint.golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/analysis -run TestLintGolden -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("lint output drifted from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestLintDiagnosticsHavePositions: every dataflow diagnostic (not the
// AST-level table lint, which always has positions by construction)
// must carry a real source position — a 0:0 diagnostic is unactionable.
func TestLintDiagnosticsHavePositions(t *testing.T) {
	for _, p := range progs.All() {
		src := p.Source
		if p.Name == "switch" {
			src = progs.GenerateSwitch(4)
		}
		res := lint(t, p.Name+".p4", src)
		for _, d := range res.Diags {
			if d.Line <= 0 || d.Col <= 0 {
				t.Errorf("%s: diagnostic without position: %s", p.Name, d.Format(p.Name))
			}
		}
	}
}

// TestLintJSONRoundTrips: the JSON rendering is well-formed and carries
// every diagnostic with its severity and pass name.
func TestLintJSONRoundTrips(t *testing.T) {
	res := lint(t, "simple_nat.p4", progs.Get("simple_nat").Source)
	if len(res.Diags) == 0 {
		t.Skip("simple_nat produces no diagnostics; golden covers this")
	}
	data, err := analysis.RenderJSON("simple_nat.p4", res.Diags)
	if err != nil {
		t.Fatalf("render: %v", err)
	}
	for _, want := range []string{`"file": "simple_nat.p4"`, `"pass"`, `"severity"`, `"line"`} {
		if !containsStr(string(data), want) {
			t.Errorf("JSON output missing %s:\n%s", want, data)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
