package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"bf4/internal/p4/token"
)

// Severity grades a diagnostic.
type Severity int

// Severity levels. Error marks definite static bugs (every execution
// reaching the site misbehaves); Warning marks likely mistakes that
// cannot break verification (dead stores, shadowed keys); Info marks
// observations (unreachable code).
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

var sevNames = map[Severity]string{
	SevInfo: "info", SevWarning: "warning", SevError: "error",
}

func (s Severity) String() string { return sevNames[s] }

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for k, v := range sevNames {
		if v == name {
			*s = k
			return nil
		}
	}
	return fmt.Errorf("analysis: unknown severity %q", name)
}

// Diagnostic is one lint finding with a stable source position.
type Diagnostic struct {
	// Pass names the analyzer that produced the finding (e.g.
	// "header-validity", "dead-write").
	Pass     string   `json:"pass"`
	Severity Severity `json:"severity"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Msg      string   `json:"message"`
	// Witness is the rendered flow path for information-flow findings
	// ("source -> copy -> sink"); empty for every other pass. Kept as a
	// pre-rendered string so Diagnostic stays comparable.
	Witness string `json:"witness,omitempty"`
}

// Pos returns the diagnostic's source position.
func (d Diagnostic) Pos() token.Pos { return token.Pos{Line: d.Line, Col: d.Col} }

// Format renders the diagnostic as file:line:col: severity: msg [pass].
// An empty file yields line:col without the file prefix; an invalid
// position drops line:col entirely.
func (d Diagnostic) Format(file string) string {
	var b strings.Builder
	if file != "" {
		b.WriteString(file)
		b.WriteString(":")
	}
	if d.Line > 0 {
		fmt.Fprintf(&b, "%d:%d:", d.Line, d.Col)
	}
	if b.Len() > 0 {
		b.WriteString(" ")
	}
	fmt.Fprintf(&b, "%s: %s [%s]", d.Severity, d.Msg, d.Pass)
	if d.Witness != "" {
		fmt.Fprintf(&b, " {flow: %s}", d.Witness)
	}
	return b.String()
}

// sortDiags orders diagnostics by position, then severity (errors
// first), pass and message — a total, input-order-independent order so
// renderings are byte-stable for golden files and CI diffing.
func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		if a.Msg != b.Msg {
			return a.Msg < b.Msg
		}
		return a.Witness < b.Witness
	})
}

// dedupeDiags removes exact duplicates from a sorted slice (distinct IR
// nodes lowered from one source construct produce identical findings).
func dedupeDiags(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for i, d := range ds {
		if i > 0 && d == ds[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// SortAndDedupe puts diagnostics in the stable rendering order (see
// sortDiags) and drops exact duplicates. Passes outside this package
// (the information-flow driver) use it to match lint's output contract.
func SortAndDedupe(ds []Diagnostic) []Diagnostic {
	sortDiags(ds)
	return dedupeDiags(ds)
}

// RenderText renders diagnostics one per line for terminals, ending with
// a count summary.
func RenderText(file string, ds []Diagnostic) string {
	var b strings.Builder
	errs, warns := 0, 0
	for _, d := range ds {
		b.WriteString(d.Format(file))
		b.WriteString("\n")
		switch d.Severity {
		case SevError:
			errs++
		case SevWarning:
			warns++
		}
	}
	fmt.Fprintf(&b, "%d error(s), %d warning(s), %d diagnostic(s)\n", errs, warns, len(ds))
	return b.String()
}

// SchemaVersion identifies the JSON report schema emitted by every
// machine-readable rendering (lint, taint, props). Bump it when a field
// changes meaning or goes away; adding fields keeps the version.
const SchemaVersion = "bf4.lint.v1"

// jsonReport is the machine-readable lint output schema.
type jsonReport struct {
	Schema      string       `json:"schema"`
	File        string       `json:"file"`
	Diagnostics []Diagnostic `json:"diagnostics"`
	Errors      int          `json:"errors"`
	Warnings    int          `json:"warnings"`
}

// RenderJSON renders diagnostics as a stable, indented JSON report.
func RenderJSON(file string, ds []Diagnostic) ([]byte, error) {
	rep := jsonReport{Schema: SchemaVersion, File: file, Diagnostics: ds}
	if rep.Diagnostics == nil {
		rep.Diagnostics = []Diagnostic{}
	}
	for _, d := range ds {
		switch d.Severity {
		case SevError:
			rep.Errors++
		case SevWarning:
			rep.Warnings++
		}
	}
	return json.MarshalIndent(rep, "", "  ")
}
