// Forward information-flow (taint) dataflow pass over the worklist
// framework. It runs on IR built with Options.CheckInfoFlow and
// abstractly executes the builder's shadow taint assignments: on
// v.$taint := T(...), the new label mask of v is T evaluated under the
// current masks (smt.Eval; unbound shadows read as zero = public). The
// abstract and concrete taint semantics are therefore the same term,
// interpreted over masks here and over per-path shadow values in the
// solver — a sink the dataflow proves untainted is untainted on every
// path (monotonicity), and every dataflow alarm is handed to the solver
// for confirmation (internal/core ConfirmLeaks) rather than reported
// directly.
package analysis

import (
	"fmt"
	"math/big"

	"bf4/internal/ir"
)

// taintAnalysis implements Analysis; see iflabel.go for the fact.
type taintAnalysis struct {
	p *ir.Program
}

func (a *taintAnalysis) Name() string { return "taint" }

// Boundary starts with no labels: sources are tainted by the
// instrumented shadow initializations, not by the boundary fact.
func (a *taintAnalysis) Boundary() Fact { return iflabels{} }

func (a *taintAnalysis) Equal(x, y Fact) bool {
	ex, ey := x.(iflabels), y.(iflabels)
	if len(ex) != len(ey) {
		return false
	}
	for k, lx := range ex {
		ly, ok := ey[k]
		if !ok || lx.mask.Cmp(ly.mask) != 0 {
			return false
		}
	}
	return true
}

// Join is the per-variable, per-bit least upper bound: mask union.
// Provenance picks the deterministic representative (betterProv).
func (a *taintAnalysis) Join(x, y Fact) Fact {
	ex, ey := x.(iflabels), y.(iflabels)
	if len(ex) == 0 {
		return ey
	}
	if len(ey) == 0 {
		return ex
	}
	out := make(iflabels, len(ex)+len(ey))
	for k, lx := range ex {
		if ly, ok := ey[k]; ok {
			merged := &label{mask: new(big.Int).Or(lx.mask, ly.mask)}
			pick := lx
			if betterProv(ly, lx) {
				pick = ly
			}
			merged.src, merged.steps = pick.src, pick.steps
			out[k] = merged
		} else {
			out[k] = lx
		}
	}
	for k, ly := range ey {
		if _, ok := ex[k]; !ok {
			out[k] = ly
		}
	}
	return out
}

// Transfer is the label transfer function, exhaustive over ir.NodeKind
// (gated by tools/analyzers/taintcheck). Only shadow assignments move
// labels: the instrumented IR mirrors every data-variable update onto
// its shadow, so value assignments and havocs are identity here — their
// label effect arrives via the shadow node emitted right after them.
func (a *taintAnalysis) Transfer(n *ir.Node, in Fact) Fact {
	e := in.(iflabels)
	switch n.Kind {
	case ir.Assign:
		base, ok := ir.ShadowBase(n.Var.Name)
		if !ok {
			return e
		}
		mask := e.evalTaint(n.Expr)
		if cur, had := e[base]; !had && mask.Sign() == 0 {
			return e
		} else if had && mask.Sign() != 0 && cur.mask.Cmp(mask) == 0 {
			return e
		}
		out := e.clone()
		if mask.Sign() == 0 {
			delete(out, base)
			return out
		}
		src, steps := e.provFor(n.Expr, base, n.Pos)
		out[base] = &label{mask: mask, src: src, steps: steps}
		return out
	case ir.Havoc:
		return e
	case ir.Nop, ir.Branch, ir.AssertPoint, ir.DontCare,
		ir.BugTerm, ir.AcceptTerm, ir.RejectTerm, ir.UnreachTerm:
		return e
	}
	panic(fmt.Sprintf("analysis: no taint transfer for node kind %v", n.Kind))
}

// TaintAlarm is one dataflow-level leak alarm: a sink the label
// analysis could not prove clean, pending solver confirmation.
type TaintAlarm struct {
	Node *ir.Node // the BugInfoLeak terminal
	Mask *big.Int // taint mask of the sink value under the labels
	// Source is the sensitive variable the flow traces back to, and
	// Witness the full rendered path: source, intermediate copies, sink
	// destination.
	Source  string
	Witness []string
}

// TaintResult is the outcome of the dataflow half of the taint pass.
type TaintResult struct {
	Facts  *Facts
	Alarms []*TaintAlarm
	// Sinks counts reachable instrumented sink checks; StaticallyClean
	// counts those the label analysis discharged without any solver
	// query (the mirror image of the PR3 pre-discharge contract).
	Sinks           int
	StaticallyClean int
	Iterations      int
}

// RunTaint solves the label analysis over an instrumented program and
// extracts alarms at every BugInfoLeak sink whose taint mask is nonzero
// under the converged labels. Alarms are ordered by bug-node ID, which
// is the builder's deterministic emission order.
func RunTaint(p *ir.Program) *TaintResult {
	a := &taintAnalysis{p: p}
	fs := SolveForward(p.Start, a)
	res := &TaintResult{Facts: fs, Iterations: fs.Iterations}
	for _, bn := range p.Bugs {
		if bn.Bug != ir.BugInfoLeak || bn.Leak == nil {
			continue
		}
		g, ok := guardOf(bn)
		if !ok || !fs.Reached(g) {
			continue
		}
		res.Sinks++
		e, _ := fs.In[g].(iflabels)
		if e == nil {
			e = iflabels{}
		}
		mask := e.evalTaint(bn.Leak.Taint)
		if mask.Sign() == 0 {
			res.StaticallyClean++
			continue
		}
		alarm := &TaintAlarm{Node: bn, Mask: mask}
		if best := e.bestContributor(bn.Leak.Taint); best != nil {
			alarm.Source = best.src
			alarm.Witness = append(alarm.Witness, best.src)
			for _, s := range best.steps {
				alarm.Witness = append(alarm.Witness, s.name)
			}
		} else {
			alarm.Source = "?"
			alarm.Witness = append(alarm.Witness, "?")
		}
		alarm.Witness = append(alarm.Witness, bn.Leak.Dest)
		res.Alarms = append(res.Alarms, alarm)
	}
	return res
}
