package analysis

import (
	"fmt"

	"bf4/internal/p4/ast"
	"bf4/internal/p4/token"
)

// TableLint checks table and action declarations syntactically: duplicate
// (shadowed) keys, actions bound to a table more than once, tables that
// are never applied, and actions never referenced by any table, switch
// label or direct call. It works on the AST (not the IR) so that tables
// the pipeline never applies — which the lowering drops entirely — are
// still covered, and every finding carries a declaration position.
func TableLint(prog *ast.Program) []Diagnostic {
	var ds []Diagnostic
	for _, d := range prog.Decls {
		ctl, ok := d.(*ast.ControlDecl)
		if !ok {
			continue
		}
		type actionDecl struct {
			pos  token.Pos
			used bool
		}
		actions := map[string]*actionDecl{}
		var actionOrder []string
		type tableDecl struct {
			td      *ast.TableDecl
			applied bool
		}
		tables := map[string]*tableDecl{}
		var tableOrder []string
		for _, l := range ctl.Locals {
			switch x := l.(type) {
			case *ast.ActionDecl:
				if _, dup := actions[x.Name]; !dup {
					actions[x.Name] = &actionDecl{pos: x.P}
					actionOrder = append(actionOrder, x.Name)
				}
			case *ast.TableDecl:
				if _, dup := tables[x.Name]; !dup {
					tables[x.Name] = &tableDecl{td: x}
					tableOrder = append(tableOrder, x.Name)
				}
			}
		}

		useAction := func(name string) {
			if a, ok := actions[name]; ok {
				a.used = true
			}
		}
		applyTable := func(e ast.Expr) {
			if id, ok := e.(*ast.Ident); ok {
				if t, ok := tables[id.Name]; ok {
					t.applied = true
				}
			}
		}

		// Per-table checks and action references from action lists.
		for _, name := range tableOrder {
			td := tables[name].td
			seenKey := map[string]token.Pos{}
			for _, k := range td.Keys {
				path := ast.PathString(k.Expr)
				if first, dup := seenKey[path]; dup {
					ds = append(ds, Diagnostic{
						Pass:     "table-lint",
						Severity: SevWarning,
						Line:     k.P.Line,
						Col:      k.P.Col,
						Msg: fmt.Sprintf("table %s: key %s duplicates the key at %s (one of them is shadowed)",
							td.Name, path, first),
					})
					continue
				}
				seenKey[path] = k.P
			}
			seenAct := map[string]bool{}
			for _, a := range td.Actions {
				useAction(a.Name)
				if seenAct[a.Name] {
					ds = append(ds, Diagnostic{
						Pass:     "table-lint",
						Severity: SevWarning,
						Line:     a.P.Line,
						Col:      a.P.Col,
						Msg:      fmt.Sprintf("table %s: action %s is listed more than once", td.Name, a.Name),
					})
				}
				seenAct[a.Name] = true
			}
			if td.Default != nil {
				useAction(td.Default.Name)
			}
		}

		// Walk the apply block and every action body for table applies and
		// direct action calls.
		var walkStmt func(s ast.Stmt)
		var walkExpr func(e ast.Expr)
		walkExpr = func(e ast.Expr) {
			switch x := e.(type) {
			case *ast.CallExpr:
				switch fun := x.Fun.(type) {
				case *ast.Ident:
					useAction(fun.Name)
				case *ast.Member:
					if fun.Name == "apply" {
						applyTable(fun.X)
					}
					walkExpr(fun.X)
				}
				for _, a := range x.Args {
					walkExpr(a)
				}
			case *ast.Member:
				walkExpr(x.X)
			case *ast.IndexExpr:
				walkExpr(x.X)
				walkExpr(x.Index)
			case *ast.UnaryExpr:
				walkExpr(x.X)
			case *ast.BinaryExpr:
				walkExpr(x.X)
				walkExpr(x.Y)
			case *ast.CastExpr:
				walkExpr(x.X)
			case *ast.TernaryExpr:
				walkExpr(x.Cond)
				walkExpr(x.Then)
				walkExpr(x.Else)
			}
		}
		walkStmt = func(s ast.Stmt) {
			switch x := s.(type) {
			case *ast.BlockStmt:
				for _, st := range x.Stmts {
					walkStmt(st)
				}
			case *ast.IfStmt:
				walkExpr(x.Cond)
				walkStmt(x.Then)
				if x.Else != nil {
					walkStmt(x.Else)
				}
			case *ast.SwitchStmt:
				applyTable(x.Table)
				for _, c := range x.Cases {
					useAction(c.Label)
					if c.Body != nil {
						walkStmt(c.Body)
					}
				}
			case *ast.AssignStmt:
				walkExpr(x.LHS)
				walkExpr(x.RHS)
			case *ast.CallStmt:
				walkExpr(x.Call)
			case *ast.VarDeclStmt:
				if x.Decl != nil && x.Decl.Init != nil {
					walkExpr(x.Decl.Init)
				}
			}
		}
		if ctl.Apply != nil {
			walkStmt(ctl.Apply)
		}
		for _, name := range actionOrder {
			if ad, ok := actionLookup(ctl, name); ok && ad.Body != nil {
				walkStmt(ad.Body)
			}
		}

		for _, name := range tableOrder {
			t := tables[name]
			if !t.applied {
				ds = append(ds, Diagnostic{
					Pass:     "table-lint",
					Severity: SevWarning,
					Line:     t.td.P.Line,
					Col:      t.td.P.Col,
					Msg:      fmt.Sprintf("table %s is declared but never applied", name),
				})
			}
		}
		for _, name := range actionOrder {
			a := actions[name]
			if !a.used {
				ds = append(ds, Diagnostic{
					Pass:     "table-lint",
					Severity: SevInfo,
					Line:     a.pos.Line,
					Col:      a.pos.Col,
					Msg:      fmt.Sprintf("action %s is never referenced by a table or called directly", name),
				})
			}
		}
	}
	return ds
}

func actionLookup(ctl *ast.ControlDecl, name string) (*ast.ActionDecl, bool) {
	for _, l := range ctl.Locals {
		if ad, ok := l.(*ast.ActionDecl); ok && ad.Name == name {
			return ad, true
		}
	}
	return nil, false
}
