package analysis_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bf4/internal/driver"
	"bf4/internal/progs"
)

// taintFixtures returns the sources the taint goldens cover: the whole
// lint corpus plus one leaky and one clean generated taint switch.
func taintFixtures() map[string]string {
	out := map[string]string{}
	for _, p := range progs.All() {
		src := p.Source
		if p.Name == "switch" {
			src = progs.GenerateSwitch(4)
		}
		out[p.Name] = src
	}
	out["taintswitch-leaky@4"] = progs.GenerateTaintSwitch(4, 1, true)
	out["taintswitch-clean@4"] = progs.GenerateTaintSwitch(4, 1, false)
	return out
}

// TestTaintGolden locks the exact `bf4 lint -taint` output — verdicts,
// witness paths, positions, summary line — for every corpus program and
// both generated taint families. Run with -update to accept intended
// changes.
func TestTaintGolden(t *testing.T) {
	for name, src := range taintFixtures() {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			file := name + ".p4"
			rep, err := driver.Taint(file, src, driver.DefaultTaintConfig())
			if err != nil {
				t.Fatalf("taint: %v", err)
			}
			got := rep.RenderText(file)

			golden := filepath.Join("testdata", name+".taint.golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("taint output drifted from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestTaintFamilies pins the semantic contract of the generated
// families across several seeds: every leaky variant has solver-
// confirmed leaks with witness paths plus at least one dataflow alarm
// the solver dismisses as infeasible; every clean variant is silent.
func TestTaintFamilies(t *testing.T) {
	for seed := 1; seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("leaky/seed%d", seed), func(t *testing.T) {
			t.Parallel()
			src := progs.GenerateTaintSwitch(4, seed, true)
			rep, err := driver.Taint("leaky.p4", src, driver.DefaultTaintConfig())
			if err != nil {
				t.Fatalf("taint: %v", err)
			}
			if rep.Confirmed == 0 {
				t.Errorf("leaky variant seed %d: no confirmed leaks", seed)
			}
			if rep.Dismissed == 0 {
				t.Errorf("leaky variant seed %d: expected the infeasible two-branch gadget to be dismissed", seed)
			}
			for _, d := range rep.Diags {
				if strings.HasPrefix(d.Msg, "confirmed leak") && d.Witness == "" {
					t.Errorf("confirmed leak without a witness path: %s", d.Msg)
				}
			}
		})
		t.Run(fmt.Sprintf("clean/seed%d", seed), func(t *testing.T) {
			t.Parallel()
			src := progs.GenerateTaintSwitch(4, seed, false)
			for _, policy := range []string{"default", "annot"} {
				cfg := driver.DefaultTaintConfig()
				cfg.Policy = policy
				rep, err := driver.Taint("clean.p4", src, cfg)
				if err != nil {
					t.Fatalf("taint (policy %s): %v", policy, err)
				}
				if rep.Alarms != 0 {
					t.Errorf("clean variant seed %d policy %s: %d alarm(s), want 0", seed, policy, rep.Alarms)
				}
				if rep.StaticallyClean == 0 {
					t.Errorf("clean variant seed %d policy %s: no sinks discharged statically", seed, policy)
				}
			}
		})
	}
}

// TestTaintDeterminism: solver confirmation fans out across workers and
// can reuse incremental contexts, but rendered output must stay
// byte-identical for every (workers, incremental) combination.
func TestTaintDeterminism(t *testing.T) {
	src := progs.GenerateTaintSwitch(4, 1, true)
	type variant struct {
		workers     int
		incremental bool
	}
	var baseText, baseJSON string
	for i, v := range []variant{{1, true}, {4, true}, {1, false}, {4, false}} {
		cfg := driver.DefaultTaintConfig()
		cfg.Workers, cfg.Incremental = v.workers, v.incremental
		rep, err := driver.Taint("leaky.p4", src, cfg)
		if err != nil {
			t.Fatalf("taint (workers=%d incr=%v): %v", v.workers, v.incremental, err)
		}
		text := rep.RenderText("leaky.p4")
		js, err := rep.RenderJSON("leaky.p4")
		if err != nil {
			t.Fatalf("json: %v", err)
		}
		if i == 0 {
			baseText, baseJSON = text, string(js)
			continue
		}
		if text != baseText {
			t.Errorf("text output differs at workers=%d incremental=%v", v.workers, v.incremental)
		}
		if string(js) != baseJSON {
			t.Errorf("json output differs at workers=%d incremental=%v", v.workers, v.incremental)
		}
	}
}

// TestTaintJSONShape: the -json contract consumed by the CI corpus job.
func TestTaintJSONShape(t *testing.T) {
	src := progs.GenerateTaintSwitch(4, 1, true)
	rep, err := driver.Taint("leaky.p4", src, driver.DefaultTaintConfig())
	if err != nil {
		t.Fatalf("taint: %v", err)
	}
	js, err := rep.RenderJSON("leaky.p4")
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	var doc struct {
		File  string `json:"file"`
		Taint *struct {
			Alarms          int `json:"alarms"`
			Confirmed       int `json:"confirmed"`
			Dismissed       int `json:"dismissed"`
			StaticallyClean int `json:"statically_clean"`
			Sinks           int `json:"sinks"`
		} `json:"taint"`
		Diagnostics []map[string]interface{} `json:"diagnostics"`
	}
	if err := json.Unmarshal(js, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if doc.Taint == nil {
		t.Fatal("no \"taint\" object in JSON output")
	}
	if doc.Taint.Alarms != rep.Alarms || doc.Taint.Confirmed != rep.Confirmed ||
		doc.Taint.Dismissed != rep.Dismissed || doc.Taint.Sinks != rep.Sinks {
		t.Errorf("taint counters in JSON disagree with the report: %+v vs %+v", doc.Taint, rep)
	}
	var withWitness int
	for _, d := range doc.Diagnostics {
		if w, ok := d["witness"].(string); ok && w != "" {
			withWitness++
		}
	}
	if withWitness == 0 {
		t.Error("no diagnostic carries a witness field in JSON output")
	}
}
