package analysis

import (
	"testing"

	"bf4/internal/ir"
	"bf4/internal/smt"
)

// chain builds start -> ns[0] -> ns[1] -> ... and returns start.
func chain(p *ir.Program, ns ...*ir.Node) *ir.Node {
	start := p.NewNode(ir.Nop)
	prev := start
	for _, n := range ns {
		p.Edge(prev, n)
		prev = n
	}
	p.Start = start
	return start
}

func assign(p *ir.Program, v *ir.Var, rhs *smt.Term) *ir.Node {
	n := p.NewNode(ir.Assign)
	n.Var, n.Expr = v, rhs
	return n
}

// TestConstPropStraightLine: x=3; y=x+1 must solve y to 4.
func TestConstPropStraightLine(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.NewVar("x", smt.BV(8))
	y := p.NewVar("y", smt.BV(8))
	a1 := assign(p, x, p.F.BVConst64(3, 8))
	a2 := assign(p, y, p.F.Add(x.Term, p.F.BVConst64(1, 8)))
	exit := p.NewNode(ir.AcceptTerm)
	chain(p, a1, a2, exit)

	fs := SolveForward(p.Start, NewConstProp(p))
	out := fs.Out[a2].(env)
	if got := out["y"]; got == nil || !got.IsConst() || got.Const().Int64() != 4 {
		t.Fatalf("y = %v, want 4", got)
	}
	if got := out["x"]; got == nil || got.Const().Int64() != 3 {
		t.Fatalf("x = %v, want 3", got)
	}
}

// TestConstPropJoin: a diamond assigning the same constant on both arms
// keeps the binding at the join; differing constants lose it.
func TestConstPropJoin(t *testing.T) {
	for _, agree := range []bool{true, false} {
		p := ir.NewProgram("t")
		x := p.NewVar("x", smt.BV(8))
		c := p.NewVar("c", smt.BoolSort)
		start := p.NewNode(ir.Nop)
		br := p.NewNode(ir.Branch)
		br.Expr = c.Term
		thenV := int64(7)
		elseV := int64(7)
		if !agree {
			elseV = 9
		}
		thenN := assign(p, x, p.F.BVConst64(thenV, 8))
		elseN := assign(p, x, p.F.BVConst64(elseV, 8))
		join := p.NewNode(ir.Nop)
		exit := p.NewNode(ir.AcceptTerm)
		p.Start = start
		p.Edge(start, br)
		p.Edge(br, thenN)
		p.Edge(br, elseN)
		p.Edge(thenN, join)
		p.Edge(elseN, join)
		p.Edge(join, exit)

		fs := SolveForward(p.Start, NewConstProp(p))
		got := fs.In[join].(env)["x"]
		if agree {
			if got == nil || got.Const().Int64() != 7 {
				t.Fatalf("agreeing arms: x = %v at join, want 7", got)
			}
		} else if got != nil {
			t.Fatalf("disagreeing arms: x = %v at join, want top (absent)", got)
		}
	}
}

// TestConstPropPrunesBranch: a branch on a constant-folded condition
// must leave the dead arm unreached, and facts learned before the
// branch must survive through the live arm.
func TestConstPropPrunesBranch(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.NewVar("x", smt.BV(8))
	start := p.NewNode(ir.Nop)
	set := assign(p, x, p.F.BVConst64(1, 8))
	br := p.NewNode(ir.Branch)
	br.Expr = p.F.Eq(x.Term, p.F.BVConst64(1, 8)) // folds to true
	thenN := p.NewNode(ir.Nop)
	elseN := p.NewNode(ir.Nop)
	exit := p.NewNode(ir.AcceptTerm)
	p.Start = start
	p.Edge(start, set)
	p.Edge(set, br)
	p.Edge(br, thenN)
	p.Edge(br, elseN)
	p.Edge(thenN, exit)
	p.Edge(elseN, exit)

	fs := SolveForward(p.Start, NewConstProp(p))
	if !fs.Reached(thenN) {
		t.Fatalf("then arm should be reached")
	}
	if fs.Reached(elseN) {
		t.Fatalf("else arm should be pruned: branch condition folds to true")
	}
	if got := fs.In[exit].(env)["x"]; got == nil || got.Const().Int64() != 1 {
		t.Fatalf("x = %v at exit, want 1", got)
	}
}

// TestEdgeRefinementLearnsEquality: branching on x == 5 teaches the
// then-edge the binding even though x was never assigned.
func TestEdgeRefinementLearnsEquality(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.NewVar("x", smt.BV(8))
	y := p.NewVar("y", smt.BV(8))
	start := p.NewNode(ir.Nop)
	br := p.NewNode(ir.Branch)
	br.Expr = p.F.Eq(x.Term, p.F.BVConst64(5, 8))
	use := assign(p, y, p.F.Add(x.Term, p.F.BVConst64(1, 8)))
	other := p.NewNode(ir.Nop)
	exit := p.NewNode(ir.AcceptTerm)
	p.Start = start
	p.Edge(start, br)
	p.Edge(br, use)   // then: x == 5 holds
	p.Edge(br, other) // else
	p.Edge(use, exit)
	p.Edge(other, exit)

	fs := SolveForward(p.Start, NewConstProp(p))
	if got := fs.In[use].(env)["x"]; got == nil || got.Const().Int64() != 5 {
		t.Fatalf("then-edge: x = %v, want 5 (learned from branch)", got)
	}
	if got := fs.Out[use].(env)["y"]; got == nil || got.Const().Int64() != 6 {
		t.Fatalf("y = %v after use, want 6", got)
	}
	if got := fs.In[other].(env)["x"]; got != nil {
		t.Fatalf("else-edge: x = %v, want top (x != 5 is not a binding)", got)
	}
	// The join must drop the binding again: only one side knows x.
	if got := fs.In[exit].(env)["x"]; got != nil {
		t.Fatalf("join: x = %v, want top", got)
	}
}

// TestForwardFixpointOnLoop: a loop-shaped CFG must terminate and reach
// the weaker fixpoint — a constant overwritten in the loop body loses
// its binding at the head, while a loop-invariant one keeps it.
func TestForwardFixpointOnLoop(t *testing.T) {
	p := ir.NewProgram("t")
	i := p.NewVar("i", smt.BV(8))
	k := p.NewVar("k", smt.BV(8))
	c := p.NewVar("c", smt.BoolSort)

	init := assign(p, i, p.F.BVConst64(0, 8))
	initK := assign(p, k, p.F.BVConst64(42, 8))
	head := p.NewNode(ir.Branch)
	head.Expr = c.Term
	body := assign(p, i, p.F.Add(i.Term, p.F.BVConst64(1, 8)))
	exit := p.NewNode(ir.AcceptTerm)
	start := chain(p, init, initK)
	_ = start
	p.Edge(initK, head)
	p.Edge(head, body) // then: loop body
	p.Edge(head, exit) // else: leave
	p.Edge(body, head) // back edge

	fs := SolveForward(p.Start, NewConstProp(p))
	if fs.Iterations == 0 || fs.Iterations > 4*len(p.Nodes)+8 {
		t.Fatalf("fixpoint effort %d out of range for %d nodes", fs.Iterations, len(p.Nodes))
	}
	inHead := fs.In[head].(env)
	if got := inHead["i"]; got != nil {
		t.Fatalf("loop head: i = %v, want top (overwritten in body)", got)
	}
	if got := inHead["k"]; got == nil || got.Const().Int64() != 42 {
		t.Fatalf("loop head: k = %v, want 42 (loop invariant)", got)
	}
	if !fs.Reached(exit) {
		t.Fatalf("exit must stay reachable")
	}
}

// TestValidityLattice: the validity analysis tracks only .$valid
// variables and proves a guarded bug node unreachable.
func TestValidityLattice(t *testing.T) {
	p := ir.NewProgram("t")
	valid := p.NewVar("hdr.eth.$valid", smt.BoolSort)
	x := p.NewVar("x", smt.BV(8))

	setValid := assign(p, valid, p.F.True())
	setX := assign(p, x, p.F.BVConst64(1, 8))
	// The lowering idiom for a bug check: branch(bad) with
	// Succs[0] = nop -> bug, Succs[1] = continue.
	br := p.NewNode(ir.Branch)
	br.Expr = p.F.Not(valid.Term)
	nop := p.NewNode(ir.Nop)
	bug := p.NewNode(ir.BugTerm)
	bug.Bug = ir.BugInvalidHeaderRead
	cont := p.NewNode(ir.AcceptTerm)
	chain(p, setValid, setX)
	p.Edge(setX, br)
	p.Edge(br, nop)
	p.Edge(nop, bug)
	p.Edge(br, cont)
	p.Bugs = append(p.Bugs, bug)

	fs := SolveForward(p.Start, NewValidity(p))
	if fs.Reached(bug) {
		t.Fatalf("bug node reached despite definite validity")
	}
	// The validity analysis must NOT track x.
	if got := fs.Out[setX].(env)["x"]; got != nil {
		t.Fatalf("validity lattice tracked non-validity var x = %v", got)
	}
	disch := dischargeSet(p, p.Reachable(), fs)
	if !disch[bug] {
		t.Fatalf("bug not in discharge set")
	}
}

// TestBackwardLivenessFixpoint: backward liveness on a loop terminates
// and keeps a variable read in the loop body live at the loop head.
func TestBackwardLivenessFixpoint(t *testing.T) {
	p := ir.NewProgram("t")
	i := p.NewVar("i", smt.BV(8))
	d := p.NewVar("meta.dead", smt.BV(8))
	c := p.NewVar("c", smt.BoolSort)

	init := assign(p, i, p.F.BVConst64(0, 8))
	deadW := assign(p, d, p.F.BVConst64(9, 8))
	head := p.NewNode(ir.Branch)
	head.Expr = c.Term
	body := assign(p, i, p.F.Add(i.Term, p.F.BVConst64(1, 8))) // reads i
	exit := p.NewNode(ir.AcceptTerm)
	chain(p, init, deadW)
	p.Edge(deadW, head)
	p.Edge(head, body)
	p.Edge(head, exit)
	p.Edge(body, head)

	fs := SolveBackward(p.Start, NewLiveness(p))
	if live := fs.Out[init].(liveSet); !live["i"] {
		t.Fatalf("i must be live after init (read by loop body)")
	}
	if live := fs.Out[deadW].(liveSet); live["meta.dead"] {
		t.Fatalf("meta.dead live after its write, but it is never read")
	}
}

// TestJoinEnvProperties: the join is commutative, idempotent and only
// keeps agreeing bindings — the lattice laws the solver relies on.
func TestJoinEnvProperties(t *testing.T) {
	f := smt.NewFactory()
	one, two := f.BVConst64(1, 8), f.BVConst64(2, 8)
	a := env{"x": one, "y": one}
	b := env{"x": one, "y": two, "z": one}

	ab, ba := joinEnv(a, b), joinEnv(b, a)
	if !ab.equal(ba) {
		t.Fatalf("join not commutative: %v vs %v", ab, ba)
	}
	if got := ab["x"]; got != one {
		t.Fatalf("agreeing binding x lost: %v", got)
	}
	if _, ok := ab["y"]; ok {
		t.Fatalf("disagreeing binding y kept")
	}
	if _, ok := ab["z"]; ok {
		t.Fatalf("one-sided binding z kept")
	}
	if aa := joinEnv(a, a); !aa.equal(a) {
		t.Fatalf("join not idempotent: %v", aa)
	}
}
