package analysis

import (
	"bf4/internal/ir"
	"bf4/internal/p4/ast"
)

// Stats quantify the pre-pass for the experiments layer.
type Stats struct {
	// BugChecks is the number of CFG-reachable instrumented bug checks
	// (the solver workload without the pre-pass).
	BugChecks int `json:"bug_checks"`
	// Discharged is how many of those the abstract interpretation proved
	// unreachable; their solver queries are skipped.
	Discharged int `json:"discharged"`
	// DischargedValidity counts the subset already proven by the
	// header-validity lattice alone (the rest needed full constant
	// propagation).
	DischargedValidity int `json:"discharged_validity"`
	// Iterations sums worklist transfer applications across all analyses.
	Iterations int `json:"iterations"`
}

// Result bundles everything the static-analysis layer produced for one
// program.
type Result struct {
	// Diags are the lint findings, sorted and deduplicated.
	Diags []Diagnostic
	// Discharge marks bug nodes proven unreachable; core.FindBugsSkipping
	// skips their solver queries with verdict "unreachable" guaranteed.
	Discharge map[*ir.Node]bool
	Stats     Stats
}

// Run executes the static-analysis layer over a lowered program: constant
// propagation & reachability, header validity, dead-write liveness, and —
// when the source AST is supplied — table lint. The forward analyses are
// sound abstractions of the IR semantics (unknown inputs and table
// outcomes stay unknown), so a bug node they prove unreachable is
// unreachable on every concrete execution and its weakest-precondition
// query is unsatisfiable; discharging it cannot change any verdict.
func Run(p *ir.Program, prog *ast.Program) *Result {
	reach := p.Reachable()

	cp := SolveForward(p.Start, NewConstProp(p))
	val := SolveForward(p.Start, NewValidity(p))
	live := SolveBackward(p.Start, NewLiveness(p))

	res := &Result{Discharge: map[*ir.Node]bool{}}
	res.Stats.Iterations = cp.Iterations + val.Iterations + live.Iterations

	// Discharge: constant propagation tracks a superset of what the
	// validity lattice tracks (with identical refinement), so its
	// discharge set subsumes validity's; the validity run attributes how
	// much the cheap lattice achieves alone.
	byValidity := dischargeSet(p, reach, val)
	res.Discharge = dischargeSet(p, reach, cp)
	for n := range byValidity {
		res.Discharge[n] = true
	}
	for _, bn := range p.Bugs {
		if reach[bn] {
			res.Stats.BugChecks++
		}
	}
	res.Stats.Discharged = len(res.Discharge)
	res.Stats.DischargedValidity = len(byValidity)

	// Lint. Definite validity bugs come from the validity facts; definite
	// bugs of other classes from the richer constprop facts.
	res.Diags = append(res.Diags, definiteBugLint(p, val, "header-validity", validityKind)...)
	res.Diags = append(res.Diags, definiteBugLint(p, cp, "constprop",
		func(k ir.BugKind) bool { return !validityKind(k) })...)
	res.Diags = append(res.Diags, constPropLint(p, cp)...)
	res.Diags = append(res.Diags, deadWriteLint(p, reach, live)...)
	if prog != nil {
		res.Diags = append(res.Diags, TableLint(prog)...)
	}
	sortDiags(res.Diags)
	res.Diags = dedupeDiags(res.Diags)
	return res
}
