package analysis

import (
	"fmt"

	"bf4/internal/ir"
	"bf4/internal/p4/token"
)

// validityKind reports whether a bug class is guarded by a header-validity
// condition — the classes the header-validity analysis can discharge or
// prove definite on its own.
func validityKind(k ir.BugKind) bool {
	switch k {
	case ir.BugInvalidHeaderRead, ir.BugInvalidHeaderWrite,
		ir.BugInvalidKeyRead, ir.BugHeaderOverwrite, ir.BugLiveHeaderNotEmitted:
		return true
	}
	return false
}

// guardOf locates the instrumentation branch guarding a bug terminal. The
// builder lowers every check as branch(badCond) with Succs[0] → nop → bug
// terminal, so the guard is the bug node's grandparent. ok is false when
// the shape does not match (defensive; all current checks match).
func guardOf(bn *ir.Node) (g *ir.Node, ok bool) {
	if len(bn.Preds) != 1 {
		return nil, false
	}
	nop := bn.Preds[0]
	if len(nop.Preds) != 1 {
		return nil, false
	}
	g = nop.Preds[0]
	if g.Kind != ir.Branch || len(g.Succs) == 0 || g.Succs[0] != nop {
		return nil, false
	}
	return g, true
}

// FallbackPos returns n's source position, or — for synthesized nodes
// lowered without one (pipeline-exit checks, instrumentation epilogues)
// — the position of the nearest preceding node that has one, so
// diagnostics anchor to the enclosing construct instead of 0:0. The
// backward walk is breadth-first over predecessor lists (deterministic:
// Preds order is builder emission order) and bounded.
func FallbackPos(n *ir.Node) token.Pos {
	if n.Pos.IsValid() {
		return n.Pos
	}
	const bound = 256
	seen := map[*ir.Node]bool{n: true}
	frontier := []*ir.Node{n}
	for len(frontier) > 0 && len(seen) < bound {
		var next []*ir.Node
		for _, f := range frontier {
			for _, p := range f.Preds {
				if seen[p] {
					continue
				}
				seen[p] = true
				if p.Pos.IsValid() {
					return p.Pos
				}
				next = append(next, p)
			}
		}
		frontier = next
	}
	return token.Pos{}
}

// definiteBugLint reports bug sites whose guard condition folds to true
// under the solved facts: every execution reaching the site trips the
// check, so it is a static bug needing no solver query. Validity bug
// classes are attributed to the header-validity pass, the rest to
// constprop. Sites without a source position (synthetic pipeline-exit
// checks) anchor to the enclosing construct via FallbackPos; only sites
// with no position anywhere upstream are skipped.
func definiteBugLint(p *ir.Program, fs *Facts, pass string, kinds func(ir.BugKind) bool) []Diagnostic {
	var ds []Diagnostic
	for _, bn := range p.Bugs {
		if !kinds(bn.Bug) {
			continue
		}
		pos := FallbackPos(bn)
		if !pos.IsValid() {
			continue
		}
		g, ok := guardOf(bn)
		if !ok || !fs.Reached(g) {
			continue
		}
		if c := foldedCond(p.F, fs, g); c != nil && c.IsTrue() {
			ds = append(ds, Diagnostic{
				Pass:     pass,
				Severity: SevError,
				Line:     pos.Line,
				Col:      pos.Col,
				Msg:      fmt.Sprintf("definite %s: %s (every execution reaching this point trips it)", bn.Bug, bn.Comment),
			})
		}
	}
	return ds
}

// dischargeSet returns the CFG-reachable bug nodes the solved facts prove
// unreachable under every concrete execution — edge pruning starved them
// of all feasible incoming paths. For these the weakest-precondition
// reach condition is unsatisfiable, so the solver query can be skipped
// with verdict "unreachable" guaranteed.
func dischargeSet(p *ir.Program, cfgReach map[*ir.Node]bool, fs *Facts) map[*ir.Node]bool {
	out := make(map[*ir.Node]bool)
	for _, bn := range p.Bugs {
		if cfgReach[bn] && !fs.Reached(bn) {
			out[bn] = true
		}
	}
	return out
}
