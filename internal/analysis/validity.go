package analysis

import (
	"fmt"

	"bf4/internal/ir"
)

// validityKind reports whether a bug class is guarded by a header-validity
// condition — the classes the header-validity analysis can discharge or
// prove definite on its own.
func validityKind(k ir.BugKind) bool {
	switch k {
	case ir.BugInvalidHeaderRead, ir.BugInvalidHeaderWrite,
		ir.BugInvalidKeyRead, ir.BugHeaderOverwrite, ir.BugLiveHeaderNotEmitted:
		return true
	}
	return false
}

// guardOf locates the instrumentation branch guarding a bug terminal. The
// builder lowers every check as branch(badCond) with Succs[0] → nop → bug
// terminal, so the guard is the bug node's grandparent. ok is false when
// the shape does not match (defensive; all current checks match).
func guardOf(bn *ir.Node) (g *ir.Node, ok bool) {
	if len(bn.Preds) != 1 {
		return nil, false
	}
	nop := bn.Preds[0]
	if len(nop.Preds) != 1 {
		return nil, false
	}
	g = nop.Preds[0]
	if g.Kind != ir.Branch || len(g.Succs) == 0 || g.Succs[0] != nop {
		return nil, false
	}
	return g, true
}

// definiteBugLint reports bug sites whose guard condition folds to true
// under the solved facts: every execution reaching the site trips the
// check, so it is a static bug needing no solver query. Validity bug
// classes are attributed to the header-validity pass, the rest to
// constprop. Sites without a source position (synthetic pipeline-exit
// checks) are skipped — the solver still covers them.
func definiteBugLint(p *ir.Program, fs *Facts, pass string, kinds func(ir.BugKind) bool) []Diagnostic {
	var ds []Diagnostic
	for _, bn := range p.Bugs {
		if !kinds(bn.Bug) || !bn.Pos.IsValid() {
			continue
		}
		g, ok := guardOf(bn)
		if !ok || !fs.Reached(g) {
			continue
		}
		if c := foldedCond(p.F, fs, g); c != nil && c.IsTrue() {
			ds = append(ds, Diagnostic{
				Pass:     pass,
				Severity: SevError,
				Line:     bn.Pos.Line,
				Col:      bn.Pos.Col,
				Msg:      fmt.Sprintf("definite %s: %s (every execution reaching this point trips it)", bn.Bug, bn.Comment),
			})
		}
	}
	return ds
}

// dischargeSet returns the CFG-reachable bug nodes the solved facts prove
// unreachable under every concrete execution — edge pruning starved them
// of all feasible incoming paths. For these the weakest-precondition
// reach condition is unsatisfiable, so the solver query can be skipped
// with verdict "unreachable" guaranteed.
func dischargeSet(p *ir.Program, cfgReach map[*ir.Node]bool, fs *Facts) map[*ir.Node]bool {
	out := make(map[*ir.Node]bool)
	for _, bn := range p.Bugs {
		if cfgReach[bn] && !fs.Reached(bn) {
			out[bn] = true
		}
	}
	return out
}
