package analysis

import (
	"testing"

	"bf4/internal/ir"
	"bf4/internal/p4/token"
	"bf4/internal/smt"
)

// TestLivenessBoundary pins the exit boundary of the dead-write
// analysis: headers, validity bits and standard metadata are externally
// observable (emit is implicit in the lowering), so they are live at
// pipeline exit; only `meta.*` user-metadata locals may die there.
func TestLivenessBoundary(t *testing.T) {
	p := ir.NewProgram("t")
	p.NewVar("hdr.eth.dstAddr", smt.BV(48))
	p.NewVar("hdr.eth.$valid", smt.BoolSort)
	p.NewVar("smeta.egress_spec", smt.BV(9))
	p.NewVar("meta.m.scratch", smt.BV(32))
	p.NewVar("meta.m.flag", smt.BV(8))

	b := NewLiveness(p).Boundary().(liveSet)
	for _, name := range []string{"hdr.eth.dstAddr", "hdr.eth.$valid", "smeta.egress_spec"} {
		if !b[name] {
			t.Errorf("%s not live at exit, but it is externally observable", name)
		}
	}
	for _, name := range []string{"meta.m.scratch", "meta.m.flag"} {
		if b[name] {
			t.Errorf("%s live at exit, but user metadata dies with the packet", name)
		}
	}
}

// posAssign builds an Assign node with a valid source position, the way
// lowered user code looks to deadWriteLint.
func posAssign(p *ir.Program, v *ir.Var, rhs *smt.Term, line int) *ir.Node {
	n := p.NewNode(ir.Assign)
	n.Var, n.Expr = v, rhs
	n.Pos = token.Pos{Line: line, Col: 1}
	return n
}

// runDeadWrite wires the liveness solve into the lint pass.
func runDeadWrite(p *ir.Program) []Diagnostic {
	fs := SolveBackward(p.Start, NewLiveness(p))
	return deadWriteLint(p, p.Reachable(), fs)
}

// TestDeadWriteAtExit: a final write to user metadata is dead; the same
// final write to a header field or standard metadata is not, purely
// because of the boundary.
func TestDeadWriteAtExit(t *testing.T) {
	p := ir.NewProgram("t")
	m := p.NewVar("meta.m.scratch", smt.BV(8))
	h := p.NewVar("hdr.eth.ttl", smt.BV(8))
	s := p.NewVar("smeta.egress_spec", smt.BV(8))
	w1 := posAssign(p, m, p.F.BVConst64(1, 8), 10)
	w2 := posAssign(p, h, p.F.BVConst64(2, 8), 11)
	w3 := posAssign(p, s, p.F.BVConst64(3, 8), 12)
	exit := p.NewNode(ir.AcceptTerm)
	chain(p, w1, w2, w3, exit)

	ds := runDeadWrite(p)
	if len(ds) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (only the meta write): %v", len(ds), ds)
	}
	if ds[0].Line != 10 || ds[0].Pass != "dead-write" {
		t.Errorf("diagnostic = %+v, want the line-10 meta.m.scratch write", ds[0])
	}
}

// TestDeadWriteOverwrite: a metadata value overwritten before any read
// is dead even away from the exit; a read in between keeps it.
func TestDeadWriteOverwrite(t *testing.T) {
	for _, readBetween := range []bool{false, true} {
		p := ir.NewProgram("t")
		m := p.NewVar("meta.m.x", smt.BV(8))
		h := p.NewVar("hdr.eth.ttl", smt.BV(8))
		first := posAssign(p, m, p.F.BVConst64(1, 8), 20)
		var mid *ir.Node
		if readBetween {
			mid = posAssign(p, h, m.Term, 21) // reads meta.m.x into a header
		} else {
			mid = p.NewNode(ir.Nop)
		}
		second := posAssign(p, m, p.F.BVConst64(2, 8), 22)
		exit := p.NewNode(ir.AcceptTerm)
		chain(p, first, mid, second, exit)

		ds := runDeadWrite(p)
		// The line-22 write is always dead (meta at exit); line 20 only
		// without the intervening read.
		lines := map[int]bool{}
		for _, d := range ds {
			lines[d.Line] = true
		}
		if !lines[22] {
			t.Errorf("readBetween=%v: final meta write (line 22) not reported", readBetween)
		}
		if readBetween && lines[20] {
			t.Errorf("overwritten value was read first; line 20 must not be reported")
		}
		if !readBetween && !lines[20] {
			t.Errorf("value overwritten without a read; line 20 must be reported")
		}
	}
}

// TestDeadWriteBranchRead: a write is live if ANY successor path reads
// it (may-liveness joins with union).
func TestDeadWriteBranchRead(t *testing.T) {
	p := ir.NewProgram("t")
	m := p.NewVar("meta.m.x", smt.BV(8))
	h := p.NewVar("hdr.eth.ttl", smt.BV(8))
	c := p.NewVar("c", smt.BoolSort)
	w := posAssign(p, m, p.F.BVConst64(1, 8), 30)
	br := p.NewNode(ir.Branch)
	br.Expr = c.Term
	readArm := posAssign(p, h, m.Term, 31)
	skipArm := p.NewNode(ir.Nop)
	exit := p.NewNode(ir.AcceptTerm)
	chain(p, w, br)
	p.Edge(br, readArm)
	p.Edge(br, skipArm)
	p.Edge(readArm, exit)
	p.Edge(skipArm, exit)

	for _, d := range runDeadWrite(p) {
		if d.Line == 30 {
			t.Fatalf("write read on one arm reported dead: %+v", d)
		}
	}
}

// TestDeadWriteInlinedCopies: the same source position can lower to
// several IR nodes (action inlining); the write is reported only when
// every copy is dead.
func TestDeadWriteInlinedCopies(t *testing.T) {
	p := ir.NewProgram("t")
	m := p.NewVar("meta.m.x", smt.BV(8))
	h := p.NewVar("hdr.eth.ttl", smt.BV(8))
	c := p.NewVar("c", smt.BoolSort)
	br := p.NewNode(ir.Branch)
	br.Expr = c.Term
	// Two lowered copies of the same source assignment.
	copy1 := posAssign(p, m, p.F.BVConst64(1, 8), 40)
	copy2 := posAssign(p, m, p.F.BVConst64(1, 8), 40)
	read := posAssign(p, h, m.Term, 41) // only copy1's arm reads it
	join := p.NewNode(ir.Nop)
	exit := p.NewNode(ir.AcceptTerm)
	start := p.NewNode(ir.Nop)
	p.Start = start
	p.Edge(start, br)
	p.Edge(br, copy1)
	p.Edge(br, copy2)
	p.Edge(copy1, read)
	p.Edge(read, join)
	p.Edge(copy2, join)
	p.Edge(join, exit)

	for _, d := range runDeadWrite(p) {
		if d.Line == 40 {
			t.Fatalf("write with one live inlined copy reported dead: %+v", d)
		}
	}
}

// TestDeadWriteSkipsSynthetic: shadow variables, control variables and
// positionless nodes never produce diagnostics, whatever their liveness.
func TestDeadWriteSkipsSynthetic(t *testing.T) {
	p := ir.NewProgram("t")
	shadow := p.NewVar("$tmp0", smt.BV(8))
	valid := p.NewVar("meta.m.$valid", smt.BoolSort)
	ctl := p.NewVar("pcn_t$0.hit", smt.BoolSort)
	ctl.IsControl = true
	noPos := p.NewVar("meta.m.y", smt.BV(8))

	w1 := posAssign(p, shadow, p.F.BVConst64(1, 8), 50)
	w2 := posAssign(p, valid, p.F.True(), 51)
	w3 := posAssign(p, ctl, p.F.True(), 52)
	w4 := assign(p, noPos, p.F.BVConst64(1, 8)) // no position: synthetic
	exit := p.NewNode(ir.AcceptTerm)
	chain(p, w1, w2, w3, w4, exit)

	if ds := runDeadWrite(p); len(ds) != 0 {
		t.Fatalf("synthetic writes reported: %v", ds)
	}
}
