package analysis

import (
	"math/big"
	"sort"
	"strings"

	"bf4/internal/ir"
	"bf4/internal/p4/token"
	"bf4/internal/smt"
)

// maxFlowSteps caps witness chains so self-referential updates in loops
// (x = x + 1) cannot grow provenance unboundedly while masks converge.
const maxFlowSteps = 12

// flowStep is one copy in a witness chain: a variable the tainted value
// passed through, and where the copy happened.
type flowStep struct {
	name string
	pos  token.Pos
}

// label is the abstract security label of one variable: the per-bit
// taint lattice element (bottom = absent from the map, public = zero
// bits would also be absent, sensitive = nonzero mask; mask bits give
// the per-bit refinement), plus best-effort provenance for witness
// rendering. Provenance is deliberately excluded from the fixpoint
// equality: masks drive convergence, provenance is deterministic
// metadata derived from the converged masks.
type label struct {
	mask *big.Int
	// src is the sensitive source variable the taint traces back to;
	// steps are the copies from src to this variable (ending with the
	// variable itself).
	src   string
	steps []flowStep
}

// iflabels is the dataflow fact: variable name -> label. Variables
// absent carry no taint. The fact maps base (data) variable names; the
// shadow-variable indirection exists only in the instrumented IR.
type iflabels map[string]*label

func (e iflabels) clone() iflabels {
	out := make(iflabels, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// evalTaint evaluates a shadow taint term under the environment's
// masks. Shadow variables of untainted (absent) bases evaluate to zero
// — exactly smt.Eval's unbound-variable convention — so the result is
// the concrete taint mask the instrumented program would compute when
// every shadow holds its abstract mask. Because every taint-transfer
// operator is monotone in its shadow inputs, this over-approximates the
// taint on every concrete path reaching the node.
func (e iflabels) evalTaint(t *smt.Term) *big.Int {
	env := smt.Env{}
	for _, v := range t.Vars(nil) {
		if base, ok := ir.ShadowBase(v.Name()); ok {
			if l := e[base]; l != nil {
				env[v.Name()] = l.mask
			}
		}
	}
	return smt.Eval(t, env)
}

// contributors returns the tainted base variables feeding a taint term,
// sorted by name.
func (e iflabels) contributors(t *smt.Term) []string {
	var out []string
	seen := map[string]bool{}
	for _, v := range t.Vars(nil) {
		base, ok := ir.ShadowBase(v.Name())
		if !ok || seen[base] {
			continue
		}
		seen[base] = true
		if l := e[base]; l != nil && l.mask.Sign() > 0 {
			out = append(out, base)
		}
	}
	sort.Strings(out)
	return out
}

// betterProv orders labels for deterministic provenance selection at
// joins and multi-contributor transfers: shortest chain first, then
// lexicographically smallest source, then smallest rendered chain.
func betterProv(a, b *label) bool {
	if len(a.steps) != len(b.steps) {
		return len(a.steps) < len(b.steps)
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return renderSteps(a.steps) < renderSteps(b.steps)
}

func renderSteps(steps []flowStep) string {
	names := make([]string, len(steps))
	for i, s := range steps {
		names[i] = s.name
	}
	return strings.Join(names, "\x00")
}

// provFor computes the provenance of a newly labeled variable self,
// assigned a value whose taint term is t: extend the best contributor's
// chain by one step. A taint with no tainted contributor is a source
// (the shadow initialization/havoc of a sensitive variable), so the
// chain starts at self.
func (e iflabels) provFor(t *smt.Term, self string, pos token.Pos) (string, []flowStep) {
	best := e.bestContributor(t)
	if best == nil {
		return self, nil
	}
	steps := best.steps
	if n := len(steps); n > 0 && steps[n-1].name == self {
		return best.src, steps // self-update: chain unchanged
	}
	if len(steps) >= maxFlowSteps {
		return best.src, steps
	}
	out := make([]flowStep, len(steps)+1)
	copy(out, steps)
	out[len(steps)] = flowStep{name: self, pos: pos}
	return best.src, out
}

// bestContributor picks the deterministic representative label among
// the tainted variables feeding t (nil when t's taint has no tainted
// contributor, i.e. at sources).
func (e iflabels) bestContributor(t *smt.Term) *label {
	var best *label
	for _, c := range e.contributors(t) {
		l := e[c]
		if best == nil || betterProv(l, best) {
			best = l
		}
	}
	return best
}
