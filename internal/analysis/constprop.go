package analysis

import (
	"fmt"
	"strings"

	"bf4/internal/ir"
	"bf4/internal/smt"
)

// constants is the shared constant-propagation dataflow problem. Facts
// are env stores over the variables track admits. With a nil track every
// variable is tracked — the full constant-propagation & reachability
// pass. The header-validity pass instantiates it restricted to the
// ".$valid" bits, which yields the classic three-valued
// definite-valid / definite-invalid / unknown lattice per header
// (binding true / binding false / no binding).
//
// It implements EdgeRefiner: branch conditions that fold to a constant
// kill the infeasible edge (reachability), and conditions that do not
// fold still refine the store on each side (path sensitivity for simple
// guards like `if (hdr.ipv4.isValid())`).
type constants struct {
	f     *smt.Factory
	name  string
	track func(name string) bool
}

// NewConstProp returns the constant-propagation & reachability analysis
// for p: it tracks every IR variable, folds constant conditions, and
// prunes infeasible branch edges so statically-dead nodes are reported
// unreachable.
func NewConstProp(p *ir.Program) Analysis {
	return &constants{f: p.F, name: "constprop"}
}

// validitySuffix marks the boolean shadow variable the IR keeps per
// header to model isValid().
const validitySuffix = ".$valid"

func isValidityVar(name string) bool { return strings.HasSuffix(name, validitySuffix) }

// NewValidity returns the header-validity analysis for p: the constants
// problem restricted to the per-header validity bits.
func NewValidity(p *ir.Program) Analysis {
	return &constants{f: p.F, name: "header-validity", track: isValidityVar}
}

func (c *constants) Name() string   { return c.name }
func (c *constants) Boundary() Fact { return env{} }

func (c *constants) Transfer(n *ir.Node, in Fact) Fact {
	e := in.(env)
	switch n.Kind {
	case ir.Assign:
		if c.track != nil && !c.track(n.Var.Name) {
			return e
		}
		val := evalUnder(c.f, n.Expr, e)
		if isLiteral(val) {
			out := e.clone()
			out[n.Var.Name] = val
			return out
		}
		if _, had := e[n.Var.Name]; had {
			out := e.clone()
			delete(out, n.Var.Name)
			return out
		}
		return e
	case ir.Havoc:
		if _, had := e[n.Var.Name]; had {
			out := e.clone()
			delete(out, n.Var.Name)
			return out
		}
		return e
	}
	return e
}

func (c *constants) Join(a, b Fact) Fact  { return joinEnv(a.(env), b.(env)) }
func (c *constants) Equal(a, b Fact) bool { return a.(env).equal(b.(env)) }

// FlowEdge implements EdgeRefiner. Succs[0] is the branch-taken edge.
func (c *constants) FlowEdge(n *ir.Node, succIdx int, out Fact) Fact {
	if n.Kind != ir.Branch {
		return out
	}
	e := out.(env)
	cond := evalUnder(c.f, n.Expr, e)
	taken := succIdx == 0
	if cond.IsTrue() && !taken {
		return nil // else edge of an always-true branch is infeasible
	}
	if cond.IsFalse() && taken {
		return nil // then edge of an always-false branch is infeasible
	}
	return refine(c.f, e, n.Expr, taken, c.track)
}

// foldedCond returns the branch condition of n folded under the solved
// input fact, or nil when n is not a reachable branch.
func foldedCond(f *smt.Factory, fs *Facts, n *ir.Node) *smt.Term {
	if n.Kind != ir.Branch {
		return nil
	}
	in, ok := fs.In[n]
	if !ok {
		return nil
	}
	return evalUnder(f, n.Expr, in.(env))
}

// constPropLint reports source-level `if` conditions that fold to a
// constant — the branch can only ever go one way.
func constPropLint(p *ir.Program, fs *Facts) []Diagnostic {
	var ds []Diagnostic
	for _, n := range p.Nodes {
		if n.Comment != "if" || !n.Pos.IsValid() {
			continue
		}
		cond := foldedCond(p.F, fs, n)
		if cond == nil {
			continue
		}
		var sense string
		switch {
		case cond.IsTrue():
			sense = "true"
		case cond.IsFalse():
			sense = "false"
		default:
			continue
		}
		ds = append(ds, Diagnostic{
			Pass:     "constprop",
			Severity: SevWarning,
			Line:     n.Pos.Line,
			Col:      n.Pos.Col,
			Msg:      fmt.Sprintf("condition is always %s; the other branch is unreachable", sense),
		})
	}
	return ds
}
