package analysis

import (
	"math/big"
	"testing"

	"bf4/internal/ir"
	"bf4/internal/smt"
)

// TestTaintLoopConverges: a cyclic CFG swapping taint between two
// variables must reach a fixpoint with both fully tainted, in a small
// number of iterations — provenance churn must not prevent convergence
// (masks alone drive Equal).
func TestTaintLoopConverges(t *testing.T) {
	p := ir.NewProgram("t")
	xs := p.NewVar("x"+ir.TaintSuffix, smt.BV(8))
	ys := p.NewVar("y"+ir.TaintSuffix, smt.BV(8))
	c := p.NewVar("c", smt.BoolSort)

	start := p.NewNode(ir.Nop)
	p.Start = start
	init := p.NewNode(ir.Assign)
	init.Var, init.Expr = xs, p.F.BVConst64(0xff, 8)
	head := p.NewNode(ir.Nop)
	a1 := p.NewNode(ir.Assign)
	a1.Var, a1.Expr = ys, xs.Term
	a2 := p.NewNode(ir.Assign)
	a2.Var, a2.Expr = xs, ys.Term
	br := p.NewNode(ir.Branch)
	br.Expr = c.Term
	exit := p.NewNode(ir.AcceptTerm)

	p.Edge(start, init)
	p.Edge(init, head)
	p.Edge(head, a1)
	p.Edge(a1, a2)
	p.Edge(a2, br)
	p.Edge(br, head) // loop back
	p.Edge(br, exit)

	fs := SolveForward(p.Start, &taintAnalysis{p: p})
	out, _ := fs.Out[a2].(iflabels)
	if out == nil {
		t.Fatal("no out fact at loop body")
	}
	for _, name := range []string{"x", "y"} {
		l := out[name]
		if l == nil || l.mask.Cmp(big.NewInt(0xff)) != 0 {
			t.Errorf("%s label = %v, want mask ff", name, l)
		}
	}
	if fs.Iterations > 50 {
		t.Errorf("fixpoint took %d iterations; provenance is likely feeding Equal", fs.Iterations)
	}
	// Witness chains must stay bounded even though the loop copies
	// endlessly: the self-step dedupe plus maxFlowSteps cap both bite.
	for _, name := range []string{"x", "y"} {
		if n := len(out[name].steps); n > maxFlowSteps {
			t.Errorf("%s witness chain length %d exceeds cap %d", name, n, maxFlowSteps)
		}
	}
}

// TestTaintOverwriteKills: assigning an untainted value must remove the
// label (strong update), so a tainted-then-cleared variable reads clean.
func TestTaintOverwriteKills(t *testing.T) {
	p := ir.NewProgram("t")
	xs := p.NewVar("x"+ir.TaintSuffix, smt.BV(8))
	a1 := p.NewNode(ir.Assign)
	a1.Var, a1.Expr = xs, p.F.BVConst64(0xff, 8)
	a2 := p.NewNode(ir.Assign)
	a2.Var, a2.Expr = xs, p.F.BVConst64(0, 8)
	exit := p.NewNode(ir.AcceptTerm)
	start := p.NewNode(ir.Nop)
	p.Start = start
	p.Edge(start, a1)
	p.Edge(a1, a2)
	p.Edge(a2, exit)

	fs := SolveForward(p.Start, &taintAnalysis{p: p})
	if out, _ := fs.Out[a2].(iflabels); out["x"] != nil {
		t.Errorf("x still labeled after overwrite: %v", out["x"])
	}
	if mid, _ := fs.Out[a1].(iflabels); mid["x"] == nil {
		t.Error("x unlabeled right after tainting assignment")
	}
}

// TestTaintJoinUnionsMasks: per-bit join — different bits tainted on
// two arms union at the merge.
func TestTaintJoinUnionsMasks(t *testing.T) {
	p := ir.NewProgram("t")
	xs := p.NewVar("x"+ir.TaintSuffix, smt.BV(8))
	c := p.NewVar("c", smt.BoolSort)
	start := p.NewNode(ir.Nop)
	p.Start = start
	br := p.NewNode(ir.Branch)
	br.Expr = c.Term
	thenA := p.NewNode(ir.Assign)
	thenA.Var, thenA.Expr = xs, p.F.BVConst64(0x0f, 8)
	elseA := p.NewNode(ir.Assign)
	elseA.Var, elseA.Expr = xs, p.F.BVConst64(0xf0, 8)
	join := p.NewNode(ir.Nop)
	exit := p.NewNode(ir.AcceptTerm)
	p.Edge(start, br)
	p.Edge(br, thenA)
	p.Edge(br, elseA)
	p.Edge(thenA, join)
	p.Edge(elseA, join)
	p.Edge(join, exit)

	fs := SolveForward(p.Start, &taintAnalysis{p: p})
	out, _ := fs.Out[join].(iflabels)
	if out == nil || out["x"] == nil || out["x"].mask.Cmp(big.NewInt(0xff)) != 0 {
		t.Fatalf("join label = %v, want mask ff", out["x"])
	}
}

// TestEvalTaintUnboundIsPublic: shadow variables of unlabeled bases
// evaluate to zero, so a taint term over clean inputs reads clean.
func TestEvalTaintUnboundIsPublic(t *testing.T) {
	p := ir.NewProgram("t")
	xs := p.NewVar("x"+ir.TaintSuffix, smt.BV(8))
	ys := p.NewVar("y"+ir.TaintSuffix, smt.BV(8))
	term := p.F.BVOr(xs.Term, ys.Term)
	e := iflabels{"x": &label{mask: big.NewInt(0x0c), src: "x"}}
	if got := e.evalTaint(term); got.Cmp(big.NewInt(0x0c)) != 0 {
		t.Errorf("evalTaint = %v, want 0x0c (y unbound reads 0)", got)
	}
	if got := (iflabels{}).evalTaint(term); got.Sign() != 0 {
		t.Errorf("evalTaint over empty labels = %v, want 0", got)
	}
}

// TestFallbackPos: synthesized nodes without positions anchor to the
// nearest positioned predecessor; chains of synthetic nodes walk back.
func TestFallbackPos(t *testing.T) {
	p := ir.NewProgram("t")
	a := p.NewNode(ir.Nop)
	a.Pos.Line, a.Pos.Col = 7, 3
	b := p.NewNode(ir.Nop)
	c := p.NewNode(ir.BugTerm)
	p.Edge(a, b)
	p.Edge(b, c)
	if got := FallbackPos(c); got.Line != 7 || got.Col != 3 {
		t.Errorf("FallbackPos = %d:%d, want 7:3", got.Line, got.Col)
	}
	if got := FallbackPos(a); got.Line != 7 {
		t.Errorf("FallbackPos of positioned node = %d, want its own line 7", got.Line)
	}
	lone := p.NewNode(ir.BugTerm)
	if got := FallbackPos(lone); got.IsValid() {
		t.Errorf("FallbackPos with no positioned ancestor = %v, want invalid", got)
	}
}
