package analysis

import (
	"bf4/internal/absdom"
	"bf4/internal/smt"
)

// env is the abstract store shared by the constant-style analyses: a map
// from IR variable name to a literal term (true, false, or a bitvector
// constant) from the program's factory. A variable absent from the map is
// unknown (top); a nil env fact means the node is unreachable (bottom).
// Values are interned terms, so equality is pointer equality.
type env map[string]*smt.Term

func (e env) clone() env {
	out := make(env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

func (e env) equal(o env) bool {
	if len(e) != len(o) {
		return false
	}
	for k, v := range e {
		if o[k] != v {
			return false
		}
	}
	return true
}

// joinEnv is the lattice join: keep only bindings present with the same
// value on both sides (anything else becomes unknown).
func joinEnv(a, b env) env {
	if a.equal(b) {
		return a
	}
	out := make(env)
	for k, v := range a {
		if b[k] == v {
			out[k] = v
		}
	}
	return out
}

// isLiteral reports whether t is a value the analyses track: a boolean or
// bitvector constant.
func isLiteral(t *smt.Term) bool {
	return t.IsConst() || t.IsTrue() || t.IsFalse()
}

// evalUnder partially evaluates t under the constants known in e. It
// substitutes each known variable by its literal and rebuilds the term
// through the factory's evaluation-preserving simplifying constructors,
// so a term whose free variables are all known collapses to a literal,
// and partially-known terms still fold where absorption applies
// (x && false, c == c, ...). Unknown variables are left symbolic — unlike
// smt.Eval, which resolves them to zero — which is what makes this a
// sound abstract evaluation.
func evalUnder(f *smt.Factory, t *smt.Term, e env) *smt.Term {
	if len(e) != 0 {
		var subst map[*smt.Term]*smt.Term
		for _, v := range t.Vars(nil) {
			if c, ok := e[v.Name()]; ok {
				if subst == nil {
					subst = make(map[*smt.Term]*smt.Term)
				}
				subst[v] = c
			}
		}
		if subst != nil {
			t = smt.Substitute(f, t, subst)
		}
	}
	return absFold(f, t)
}

// absFold strengthens the syntactic fold with the known-bits + interval
// abstract domain: a term the factory's local rules leave symbolic can
// still be decided by value analysis (e.g. (x & 0xF0) < 0x100 is true for
// every x). Only whole-term folds are taken — partial rewriting belongs
// to internal/smt/rewrite, which the analyses must not depend on for
// their verdicts.
func absFold(f *smt.Factory, t *smt.Term) *smt.Term {
	if isLiteral(t) {
		return t
	}
	v := absdom.NewAnalyzer().Of(t)
	if t.Sort().IsBool() {
		if b, ok := v.Decided(); ok {
			return f.Bool(b)
		}
		return t
	}
	if x, ok := v.Singleton(); ok {
		return f.BVConst(x, t.Sort().Width)
	}
	return t
}

// refine strengthens e with the knowledge that cond evaluates to holds on
// the edge being followed, returning an extended copy (or e itself when
// nothing new is learned). Only definite facts are recorded: a boolean
// variable (possibly under negations) forced to a value, every conjunct
// of a holding conjunction, every disjunct of a failing disjunction, and
// var = literal equations. Everything else is soundly ignored.
//
// track filters which variables may be learned (nil admits all): an
// analysis that does not track a variable must not record facts about it,
// because a later assignment to an untracked variable would not kill the
// stale binding.
func refine(f *smt.Factory, e env, cond *smt.Term, holds bool, track func(string) bool) env {
	var learned map[string]*smt.Term
	learn := func(name string, v *smt.Term) {
		if track != nil && !track(name) {
			return
		}
		if learned == nil {
			learned = make(map[string]*smt.Term)
		}
		learned[name] = v
	}
	var walk func(t *smt.Term, holds bool)
	walk = func(t *smt.Term, holds bool) {
		switch t.Op() {
		case smt.OpVar:
			if t.Sort().IsBool() {
				learn(t.Name(), f.Bool(holds))
			}
		case smt.OpNot:
			walk(t.Arg(0), !holds)
		case smt.OpAnd:
			if holds {
				for _, a := range t.Args() {
					walk(a, true)
				}
			}
		case smt.OpOr:
			if !holds {
				for _, a := range t.Args() {
					walk(a, false)
				}
			}
		case smt.OpEq:
			if !holds {
				return
			}
			x, y := t.Arg(0), t.Arg(1)
			// Eq canonicalizes argument order, so check both sides.
			if x.Op() == smt.OpVar && isLiteral(y) {
				learn(x.Name(), y)
			} else if y.Op() == smt.OpVar && isLiteral(x) {
				learn(y.Name(), x)
			}
		}
	}
	walk(cond, holds)
	if learned == nil {
		return e
	}
	out := e.clone()
	for k, v := range learned {
		out[k] = v
	}
	return out
}
