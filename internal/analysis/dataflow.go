// Package analysis is bf4's compile-time static-analysis layer: a
// generic dataflow framework over the IR control-flow graph plus four
// concrete analyzers (header validity, constant propagation &
// reachability, dead-write detection, table-entry lint). It serves two
// masters:
//
//   - a pre-pass for the verifier: bug checks the abstract
//     interpretation proves unreachable are discharged before the
//     weakest-precondition queries ever reach the SMT solver, shrinking
//     the solver workload without changing any verdict (the pre-pass is
//     sound: it only discharges a query when every concrete execution
//     provably avoids the bug node, i.e. exactly when the solver would
//     answer unsat);
//   - a standalone linter (`bf4 lint`): the same analyzers report
//     definite static bugs (a read of a header that is invalid on every
//     path), dead stores, duplicate/shadowed table keys and unreferenced
//     actions as human- or JSON-rendered diagnostics with stable source
//     positions.
//
// The framework is deliberately more general than the acyclic IR
// requires: the worklist solver iterates in reverse postorder and runs
// to a fixpoint, so loop-shaped graphs (hand-built in tests, or future
// IR extensions with cycles) converge as long as the lattice has finite
// height and transfer functions are monotone.
package analysis

import (
	"container/heap"

	"bf4/internal/ir"
)

// Fact is an abstract dataflow fact. Concrete analyses define their own
// fact representation; nil is reserved for "unreachable" (bottom) and
// must not be used as a legitimate fact value.
type Fact interface{}

// Analysis is a dataflow problem over the IR graph. Facts flow forward
// (entry to exit) or backward (exit to entry) depending on which solver
// is used.
type Analysis interface {
	// Name identifies the analysis in diagnostics and stats.
	Name() string
	// Boundary is the fact at the flow entry: the start node's input for
	// forward problems, every terminal's output for backward ones.
	Boundary() Fact
	// Transfer computes the node's output fact from its input fact.
	// Implementations must not mutate in; return a fresh value (or in
	// itself when nothing changed).
	Transfer(n *ir.Node, in Fact) Fact
	// Join combines two facts at a merge point (least upper bound).
	Join(a, b Fact) Fact
	// Equal reports whether two facts are equal (fixpoint detection).
	Equal(a, b Fact) bool
}

// EdgeRefiner is an optional extension for forward analyses that can
// strengthen (or kill) the fact flowing along a specific branch edge.
// Returning nil marks the edge infeasible: nothing flows along it, and a
// node all of whose incoming edges are infeasible is unreachable.
type EdgeRefiner interface {
	// FlowEdge refines out as it flows from n to n.Succs[succIdx].
	FlowEdge(n *ir.Node, succIdx int, out Fact) Fact
}

// Facts is the solved result of a dataflow problem.
type Facts struct {
	// In and Out map each node to its input/output fact. A node absent
	// from In was never reached by any feasible path (bottom).
	In, Out map[*ir.Node]Fact
	// Iterations counts node-transfer applications, a measure of
	// fixpoint effort (equals the node count on acyclic graphs unless
	// edge refinement prunes paths).
	Iterations int
}

// Reached reports whether the solver found any feasible path to n.
func (fs *Facts) Reached(n *ir.Node) bool {
	_, ok := fs.In[n]
	return ok
}

// rpoIndex computes a reverse-postorder numbering of the graph rooted at
// start, following succs. Unlike ir.Program.Topo it tolerates cycles
// (back edges simply do not extend the DFS), which is what lets the
// solver run on loop-shaped graphs.
func rpoIndex(start *ir.Node, backward bool) (order []*ir.Node, index map[*ir.Node]int) {
	next := func(n *ir.Node) []*ir.Node { return n.Succs }
	if backward {
		next = func(n *ir.Node) []*ir.Node { return n.Preds }
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*ir.Node]int8{}
	type frame struct {
		n *ir.Node
		i int
	}
	var post []*ir.Node
	stack := []frame{{start, 0}}
	color[start] = gray
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		succs := next(fr.n)
		if fr.i < len(succs) {
			s := succs[fr.i]
			fr.i++
			if color[s] == white {
				color[s] = gray
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		color[fr.n] = black
		post = append(post, fr.n)
		stack = stack[:len(stack)-1]
	}
	order = make([]*ir.Node, len(post))
	index = make(map[*ir.Node]int, len(post))
	for i, n := range post {
		order[len(post)-1-i] = n
	}
	for i, n := range order {
		index[n] = i
	}
	return order, index
}

// nodeHeap is a worklist ordered by reverse-postorder index, so nodes
// are processed in an order that minimizes re-iteration.
type nodeHeap struct {
	nodes []*ir.Node
	index map[*ir.Node]int
	on    map[*ir.Node]bool
}

func (h *nodeHeap) Len() int           { return len(h.nodes) }
func (h *nodeHeap) Less(i, j int) bool { return h.index[h.nodes[i]] < h.index[h.nodes[j]] }
func (h *nodeHeap) Swap(i, j int)      { h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i] }
func (h *nodeHeap) Push(x interface{}) { h.nodes = append(h.nodes, x.(*ir.Node)) }
func (h *nodeHeap) Pop() interface{} {
	n := h.nodes[len(h.nodes)-1]
	h.nodes = h.nodes[:len(h.nodes)-1]
	return n
}

func (h *nodeHeap) push(n *ir.Node) {
	if !h.on[n] {
		h.on[n] = true
		heap.Push(h, n)
	}
}

func (h *nodeHeap) pop() *ir.Node {
	n := heap.Pop(h).(*ir.Node)
	h.on[n] = false
	return n
}

type edgeKey struct{ from, to int }

// SolveForward runs a forward dataflow problem from start to fixpoint.
// If a implements EdgeRefiner, per-edge refinement (including edge
// pruning) is applied; nodes no feasible edge reaches stay out of the
// result's In map and are reported unreachable by Facts.Reached.
func SolveForward(start *ir.Node, a Analysis) *Facts {
	refiner, _ := a.(EdgeRefiner)
	_, index := rpoIndex(start, false)
	fs := &Facts{In: map[*ir.Node]Fact{}, Out: map[*ir.Node]Fact{}}
	// edgeOut[from→to] is the (refined) fact on that edge; absent means
	// nothing has flowed yet or the edge is infeasible.
	edgeOut := map[edgeKey]Fact{}

	wl := &nodeHeap{index: index, on: map[*ir.Node]bool{}}
	heap.Init(wl)
	fs.In[start] = a.Boundary()
	wl.push(start)

	// refreshIn recomputes a node's input as the join over all its
	// currently-feasible incoming edges, requeueing it on change.
	refreshIn := func(s *ir.Node) {
		var sin Fact
		have := false
		if s == start {
			// The boundary fact acts as a permanent virtual edge into the
			// start node (it may also have real preds in loop-shaped
			// graphs).
			sin, have = a.Boundary(), true
		}
		for _, p := range s.Preds {
			pf, ok := edgeOut[edgeKey{p.ID, s.ID}]
			if !ok {
				continue
			}
			if !have {
				sin, have = pf, true
			} else {
				sin = a.Join(sin, pf)
			}
		}
		old, hadOld := fs.In[s]
		switch {
		case !have:
			if hadOld {
				delete(fs.In, s)
				wl.push(s)
			}
		case !hadOld || !a.Equal(old, sin):
			fs.In[s] = sin
			wl.push(s)
		}
	}

	for wl.Len() > 0 {
		n := wl.pop()
		in, ok := fs.In[n]
		if !ok {
			// The node lost all feasible incoming edges (edge pruning
			// made it unreachable): retract its own contributions.
			delete(fs.Out, n)
			for _, s := range n.Succs {
				k := edgeKey{n.ID, s.ID}
				if _, had := edgeOut[k]; had {
					delete(edgeOut, k)
					refreshIn(s)
				}
			}
			continue
		}
		fs.Iterations++
		out := a.Transfer(n, in)
		fs.Out[n] = out
		for i, s := range n.Succs {
			ef := out
			if refiner != nil {
				ef = refiner.FlowEdge(n, i, out)
			}
			k := edgeKey{n.ID, s.ID}
			if ef == nil {
				delete(edgeOut, k)
			} else {
				edgeOut[k] = ef
			}
			refreshIn(s)
		}
	}
	return fs
}

// SolveBackward runs a backward dataflow problem (e.g. liveness): facts
// flow from the terminals toward start. In the result, In[n] is the fact
// *before* n executes and Out[n] the fact after; Boundary seeds the
// output of every terminal (node without successors). Edge refinement is
// not applied in backward mode.
func SolveBackward(start *ir.Node, a Analysis) *Facts {
	order, index := rpoIndex(start, false)
	fs := &Facts{In: map[*ir.Node]Fact{}, Out: map[*ir.Node]Fact{}}

	// Process in postorder (reverse of forward RPO) so most nodes see
	// their successors solved first.
	revIndex := make(map[*ir.Node]int, len(order))
	for i, n := range order {
		revIndex[n] = len(order) - 1 - i
	}
	wl := &nodeHeap{index: revIndex, on: map[*ir.Node]bool{}}
	heap.Init(wl)
	for _, n := range order {
		wl.push(n)
	}

	for wl.Len() > 0 {
		n := wl.pop()
		var out Fact
		if len(n.Succs) == 0 {
			out = a.Boundary()
		} else {
			have := false
			for _, s := range n.Succs {
				sf, ok := fs.In[s]
				if !ok {
					continue
				}
				if !have {
					out, have = sf, true
				} else {
					out = a.Join(out, sf)
				}
			}
			if !have {
				continue // successors not yet solved (cycle warm-up)
			}
		}
		fs.Iterations++
		fs.Out[n] = out
		in := a.Transfer(n, out)
		old, had := fs.In[n]
		if had && a.Equal(old, in) {
			continue
		}
		fs.In[n] = in
		for _, p := range n.Preds {
			if _, ok := index[p]; ok {
				wl.push(p)
			}
		}
	}
	return fs
}
