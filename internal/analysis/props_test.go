package analysis_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bf4/internal/driver"
	"bf4/internal/progs"
	"bf4/internal/prop"
)

// propFixture generates one prop-exercise switch plus its parsed
// property list, the way `bf4 lint -props -family props` does.
func propFixture(t *testing.T, scale, seed int) (name, src string, props []*prop.Property) {
	t.Helper()
	name = fmt.Sprintf("propswitch@%d.p4", seed)
	src, spec := progs.GeneratePropSwitch(scale, seed)
	props, err := prop.ParseSpecFile(fmt.Sprintf("propswitch@%d.props", seed), []byte(spec))
	if err != nil {
		t.Fatalf("parse generated spec: %v", err)
	}
	return name, src, props
}

// TestPropGolden locks the exact `bf4 lint -props -family props` output
// — verdict tiers, witness fields, positions, summary line — for the
// generated family. Run with -update to accept intended changes.
func TestPropGolden(t *testing.T) {
	for seed := 1; seed <= 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			name, src, props := propFixture(t, 4, seed)
			rep, err := driver.Props(name, src, props, driver.DefaultPropConfig())
			if err != nil {
				t.Fatalf("props: %v", err)
			}
			got := rep.RenderText(name)

			golden := filepath.Join("testdata", fmt.Sprintf("propswitch@%d.props.golden", seed))
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("props output drifted from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestPropFamilies pins the semantic contract of the generated family
// across seeds: two solver-confirmed violations (at least one carrying
// a replayed packet witness), one solver-dismissed assert, one
// statically-discharged assert, two assumes.
func TestPropFamilies(t *testing.T) {
	for seed := 1; seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			name, src, props := propFixture(t, 4, seed)
			rep, err := driver.Props(name, src, props, driver.DefaultPropConfig())
			if err != nil {
				t.Fatalf("props: %v", err)
			}
			if rep.Confirmed != 2 {
				t.Errorf("seed %d: %d confirmed, want 2", seed, rep.Confirmed)
			}
			if rep.Dismissed != 1 {
				t.Errorf("seed %d: %d dismissed, want 1 (the two-branch gadget)", seed, rep.Dismissed)
			}
			if rep.Discharged == 0 {
				t.Errorf("seed %d: nothing discharged statically (the guard constant should be)", seed)
			}
			if rep.Assumes != 2 {
				t.Errorf("seed %d: %d assumes, want 2 (spec + source comment)", seed, rep.Assumes)
			}
			var witnessed int
			for _, d := range rep.Diags {
				if strings.HasPrefix(d.Msg, "property violated") && d.Witness != "" {
					witnessed++
				}
			}
			if witnessed == 0 {
				t.Errorf("seed %d: no confirmed violation carries a packet witness", seed)
			}
		})
	}
}

// TestPropDeterminism: solver confirmation fans out across workers and
// can reuse incremental contexts, but rendered output — including the
// canonical witnesses — must stay byte-identical for every (workers,
// incremental) combination.
func TestPropDeterminism(t *testing.T) {
	name, src, props := propFixture(t, 4, 1)
	type variant struct {
		workers     int
		incremental bool
	}
	var baseText, baseJSON string
	for i, v := range []variant{{1, true}, {4, true}, {1, false}, {4, false}} {
		cfg := driver.DefaultPropConfig()
		cfg.Workers, cfg.Incremental = v.workers, v.incremental
		rep, err := driver.Props(name, src, props, cfg)
		if err != nil {
			t.Fatalf("props (workers=%d incr=%v): %v", v.workers, v.incremental, err)
		}
		text := rep.RenderText(name)
		js, err := rep.RenderJSON(name)
		if err != nil {
			t.Fatalf("json: %v", err)
		}
		if i == 0 {
			baseText, baseJSON = text, string(js)
			continue
		}
		if text != baseText {
			t.Errorf("text output differs at workers=%d incremental=%v", v.workers, v.incremental)
		}
		if string(js) != baseJSON {
			t.Errorf("json output differs at workers=%d incremental=%v", v.workers, v.incremental)
		}
	}
}

// TestPropJSONShape: the -json contract consumed by the CI corpus job,
// including the schema version stamp.
func TestPropJSONShape(t *testing.T) {
	name, src, props := propFixture(t, 4, 1)
	rep, err := driver.Props(name, src, props, driver.DefaultPropConfig())
	if err != nil {
		t.Fatalf("props: %v", err)
	}
	js, err := rep.RenderJSON(name)
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	var doc struct {
		Schema string `json:"schema"`
		File   string `json:"file"`
		Props  *struct {
			Properties int `json:"properties"`
			Checks     int `json:"checks"`
			Confirmed  int `json:"confirmed"`
			Dismissed  int `json:"dismissed"`
			Discharged int `json:"discharged"`
			Assumes    int `json:"assumes"`
		} `json:"props"`
		Diagnostics []map[string]interface{} `json:"diagnostics"`
	}
	if err := json.Unmarshal(js, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if doc.Schema == "" {
		t.Error("no \"schema\" field in JSON output")
	}
	if doc.Props == nil {
		t.Fatal("no \"props\" object in JSON output")
	}
	if doc.Props.Properties != rep.Props || doc.Props.Checks != rep.Checks ||
		doc.Props.Confirmed != rep.Confirmed || doc.Props.Dismissed != rep.Dismissed ||
		doc.Props.Discharged != rep.Discharged || doc.Props.Assumes != rep.Assumes {
		t.Errorf("props counters in JSON disagree with the report: %+v vs %+v", doc.Props, rep)
	}
	var withWitness int
	for _, d := range doc.Diagnostics {
		if w, ok := d["witness"].(string); ok && w != "" {
			withWitness++
		}
	}
	if withWitness == 0 {
		t.Error("no diagnostic carries a witness field in JSON output")
	}
}
