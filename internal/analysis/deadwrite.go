package analysis

import (
	"fmt"
	"strings"

	"bf4/internal/ir"
	"bf4/internal/p4/token"
	"bf4/internal/smt"
)

// liveSet is the liveness fact: the set of variable names that may still
// be read downstream.
type liveSet map[string]bool

// liveness is the backward may-live analysis behind dead-write detection.
// The boundary (live at pipeline exit) is every variable except
// user-metadata: headers, their validity bits and standard metadata are
// externally observable (deparsing/emit is implicit in the lowering), so
// only writes to `meta.*` locals and control-block temporaries can be
// proven dead at exit.
type liveness struct {
	p        *ir.Program
	boundary liveSet
}

// NewLiveness returns the dead-write liveness analysis for p.
func NewLiveness(p *ir.Program) Analysis {
	b := make(liveSet)
	for name := range p.Vars {
		if !strings.HasPrefix(name, "meta.") {
			b[name] = true
		}
	}
	return &liveness{p: p, boundary: b}
}

func (l *liveness) Name() string   { return "dead-write" }
func (l *liveness) Boundary() Fact { return l.boundary }

func (l *liveness) Transfer(n *ir.Node, out Fact) Fact {
	o := out.(liveSet)
	var kill string
	var gen *smt.Term
	switch n.Kind {
	case ir.Assign:
		kill, gen = n.Var.Name, n.Expr
	case ir.Havoc:
		kill = n.Var.Name
	case ir.Branch:
		gen = n.Expr
	default:
		return o
	}
	in := make(liveSet, len(o)+4)
	for k := range o {
		in[k] = true
	}
	delete(in, kill)
	if gen != nil {
		for _, v := range gen.Vars(nil) {
			in[v.Name()] = true
		}
	}
	return in
}

func (l *liveness) Join(a, b Fact) Fact {
	x, y := a.(liveSet), b.(liveSet)
	if len(y) > len(x) {
		x, y = y, x
	}
	grew := false
	for k := range y {
		if !x[k] {
			grew = true
			break
		}
	}
	if !grew {
		return x
	}
	out := make(liveSet, len(x)+len(y))
	for k := range x {
		out[k] = true
	}
	for k := range y {
		out[k] = true
	}
	return out
}

func (l *liveness) Equal(a, b Fact) bool {
	x, y := a.(liveSet), b.(liveSet)
	if len(x) != len(y) {
		return false
	}
	for k := range x {
		if !y[k] {
			return false
		}
	}
	return true
}

// deadWriteLint reports assignments whose value is never read before
// being overwritten or the pipeline ends. A source construct can lower to
// several IR nodes (action inlining, table expansion); a write is only
// reported when every inlined copy is dead, so a store read in one
// context is never flagged because another context ignores it. Compiler
// shadow variables ($-prefixed), control variables and synthetic
// (positionless) nodes are skipped.
func deadWriteLint(p *ir.Program, reach map[*ir.Node]bool, fs *Facts) []Diagnostic {
	type site struct {
		pos  token.Pos
		name string
	}
	dead := map[site]bool{}
	for _, n := range p.Nodes {
		if n.Kind != ir.Assign || !reach[n] || !n.Pos.IsValid() {
			continue
		}
		if n.Var.IsControl || strings.HasPrefix(n.Var.Name, "$") || strings.Contains(n.Var.Name, ".$") {
			continue
		}
		out, ok := fs.Out[n]
		if !ok {
			continue // liveness did not solve this node; stay silent
		}
		k := site{n.Pos, n.Var.Name}
		isDead := !out.(liveSet)[n.Var.Name]
		if prev, seen := dead[k]; seen {
			dead[k] = prev && isDead
		} else {
			dead[k] = isDead
		}
	}
	var ds []Diagnostic
	for k, isDead := range dead {
		if !isDead {
			continue
		}
		ds = append(ds, Diagnostic{
			Pass:     "dead-write",
			Severity: SevWarning,
			Line:     k.pos.Line,
			Col:      k.pos.Col,
			Msg:      fmt.Sprintf("value assigned to %s is never read", k.name),
		})
	}
	return ds
}
