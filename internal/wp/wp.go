// Package wp computes reachability conditions over the passified IR
// (paper §4.1): iterating nodes in topological order, it propagates each
// node's condition to its successors — conjoining edge constraints
// (branch polarity + merge equalities) and node constraints (assignment
// equalities) — and disjoins at merge points. The result, built over the
// hash-consed term DAG, gives for every node n a formula reach(n) that is
// satisfiable iff some input packet and table state drives execution to n.
//
// A slice (set of assignment nodes whose constraints are irrelevant to
// bug reachability, computed by internal/slice) can be supplied; sliced
// assignments contribute `true`, shrinking the formulas the solver sees.
package wp

import (
	"bf4/internal/ir"
	"bf4/internal/smt"
	"bf4/internal/ssa"
)

// Reach holds per-node reachability conditions.
type Reach struct {
	P    *ir.Program
	Pass *ssa.Result

	// Cond maps each reachable node to its reachability condition.
	Cond map[*ir.Node]*smt.Term
	// OK is the disjunction of the good terminals' conditions (accept and
	// reject) — the paper's OK formula.
	OK *smt.Term
	// DontCareReach is the disjunction of reach conditions of dontCare
	// nodes; Infer constrains OK with its negation (paper §4.2).
	DontCareReach *smt.Term
}

// Compute propagates reachability conditions. keep, when non-nil,
// restricts which Assign nodes contribute constraints (the slice); nil
// means all contribute.
func Compute(p *ir.Program, pass *ssa.Result, keep map[*ir.Node]bool) *Reach {
	f := p.F
	r := &Reach{
		P:             p,
		Pass:          pass,
		Cond:          make(map[*ir.Node]*smt.Term, len(p.Nodes)),
		OK:            f.False(),
		DontCareReach: f.False(),
	}
	// incoming accumulates the disjunction of (pred-out ∧ edge) terms.
	incoming := map[*ir.Node]*smt.Term{}
	topo := p.Topo()
	for _, n := range topo {
		var cond *smt.Term
		if n == p.Start {
			cond = f.True()
		} else {
			cond = incoming[n]
			if cond == nil {
				cond = f.False()
			}
		}
		r.Cond[n] = cond

		switch n.Kind {
		case ir.AcceptTerm, ir.RejectTerm:
			r.OK = f.Or(r.OK, cond)
		case ir.DontCare:
			r.DontCareReach = f.Or(r.DontCareReach, cond)
		}

		// Out condition folds in the node's own constraint.
		out := cond
		if nc, ok := pass.NodeCond[n]; ok {
			if keep == nil || keep[n] {
				out = f.And(out, nc)
			}
		}
		for _, s := range n.Succs {
			t := out
			if ec, ok := pass.EdgeCond[ssa.EdgeKey{From: n.ID, To: s.ID}]; ok {
				t = f.And(t, ec)
			}
			if prev, ok := incoming[s]; ok {
				incoming[s] = f.Or(prev, t)
			} else {
				incoming[s] = t
			}
		}
	}
	return r
}

// BugConds returns the reachability condition of every bug node, in
// program order.
func (r *Reach) BugConds() map[*ir.Node]*smt.Term {
	out := map[*ir.Node]*smt.Term{}
	for _, b := range r.P.Bugs {
		if c, ok := r.Cond[b]; ok {
			out[b] = c
		}
	}
	return out
}
