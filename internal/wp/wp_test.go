package wp

import (
	"testing"

	"bf4/internal/ir"
	"bf4/internal/smt"
	"bf4/internal/solver"
	"bf4/internal/ssa"
)

// guardedBug builds:
//
//	start -> x = in + 1 -> br(x == 5) -> bug | accept
func guardedBug() (*ir.Program, *ir.Node) {
	p := ir.NewProgram("guarded")
	in := p.NewVar("in", smt.BV(8))
	x := p.NewVar("x", smt.BV(8))
	start := p.NewNode(ir.Nop)
	p.Start = start
	a := p.NewNode(ir.Assign)
	a.Var, a.Expr = x, p.F.Add(in.Term, p.F.BVConst64(1, 8))
	br := p.NewNode(ir.Branch)
	br.Expr = p.F.Eq(x.Term, p.F.BVConst64(5, 8))
	bug := p.NewNode(ir.BugTerm)
	bug.Bug = ir.BugInvalidHeaderRead
	acc := p.NewNode(ir.AcceptTerm)
	p.Edge(start, a)
	p.Edge(a, br)
	p.Edge(br, bug)
	p.Edge(br, acc)
	p.Bugs = append(p.Bugs, bug)
	return p, bug
}

func TestReachabilityOfGuardedBug(t *testing.T) {
	p, bug := guardedBug()
	pass := ssa.Passify(p)
	r := Compute(p, pass, nil)

	cond := r.Cond[bug]
	if cond == nil {
		t.Fatal("no condition for bug")
	}
	s := solver.New(p.F)
	if s.Check(cond) != solver.Sat {
		t.Fatal("bug must be reachable (in = 4)")
	}
	m := s.Model()
	if m["in"].Int64() != 4 {
		t.Fatalf("model in = %v, want 4", m["in"])
	}
	// The bug must be unreachable when in != 4.
	if s.Check(cond, p.F.Not(p.F.Eq(p.Vars["in"].Term, p.F.BVConst64(4, 8)))) != solver.Unsat {
		t.Fatal("bug reachable with in != 4")
	}
}

func TestOKFormula(t *testing.T) {
	p, bug := guardedBug()
	pass := ssa.Passify(p)
	r := Compute(p, pass, nil)
	s := solver.New(p.F)
	if s.Check(r.OK) != solver.Sat {
		t.Fatal("OK must be satisfiable")
	}
	// OK and the bug condition partition on the guard: their conjunction
	// is unsat (this CFG has exactly one path each).
	if s.Check(p.F.And(r.OK, r.Cond[bug])) != solver.Unsat {
		t.Fatal("OK and bug overlap on a single-path split")
	}
}

func TestUnreachableAfterContradiction(t *testing.T) {
	// start -> br(c) -> (x=1 | x=2) -> join -> br(x==3) -> bug | accept
	p := ir.NewProgram("contra")
	c := p.NewVar("c", smt.BoolSort)
	x := p.NewVar("x", smt.BV(8))
	start := p.NewNode(ir.Nop)
	p.Start = start
	br := p.NewNode(ir.Branch)
	br.Expr = c.Term
	a1 := p.NewNode(ir.Assign)
	a1.Var, a1.Expr = x, p.F.BVConst64(1, 8)
	a2 := p.NewNode(ir.Assign)
	a2.Var, a2.Expr = x, p.F.BVConst64(2, 8)
	join := p.NewNode(ir.Nop)
	br2 := p.NewNode(ir.Branch)
	br2.Expr = p.F.Eq(x.Term, p.F.BVConst64(3, 8))
	bug := p.NewNode(ir.BugTerm)
	acc := p.NewNode(ir.AcceptTerm)
	p.Edge(start, br)
	p.Edge(br, a1)
	p.Edge(br, a2)
	p.Edge(a1, join)
	p.Edge(a2, join)
	p.Edge(join, br2)
	p.Edge(br2, bug)
	p.Edge(br2, acc)
	p.Bugs = append(p.Bugs, bug)

	pass := ssa.Passify(p)
	r := Compute(p, pass, nil)
	s := solver.New(p.F)
	if s.Check(r.Cond[bug]) != solver.Unsat {
		t.Fatal("x can only be 1 or 2; bug at x==3 must be unreachable")
	}
}

func TestSliceKeepsBugSemantics(t *testing.T) {
	// Two assignments: one relevant to the bug guard, one not. Dropping
	// the irrelevant one must not change bug reachability.
	p := ir.NewProgram("slice")
	in := p.NewVar("in", smt.BV(8))
	x := p.NewVar("x", smt.BV(8))
	y := p.NewVar("y", smt.BV(8))
	start := p.NewNode(ir.Nop)
	p.Start = start
	ax := p.NewNode(ir.Assign)
	ax.Var, ax.Expr = x, in.Term
	ay := p.NewNode(ir.Assign)
	ay.Var, ay.Expr = y, p.F.BVConst64(42, 8)
	br := p.NewNode(ir.Branch)
	br.Expr = p.F.Eq(x.Term, p.F.BVConst64(9, 8))
	bug := p.NewNode(ir.BugTerm)
	acc := p.NewNode(ir.AcceptTerm)
	p.Edge(start, ax)
	p.Edge(ax, ay)
	p.Edge(ay, br)
	p.Edge(br, bug)
	p.Edge(br, acc)
	p.Bugs = append(p.Bugs, bug)

	pass := ssa.Passify(p)
	full := Compute(p, pass, nil)
	keep := map[*ir.Node]bool{ax: true, br: true} // drop ay's constraint
	sliced := Compute(p, pass, keep)

	s := solver.New(p.F)
	r1 := s.Check(full.Cond[bug])
	r2 := s.Check(sliced.Cond[bug])
	if r1 != r2 {
		t.Fatalf("sliced reachability %v differs from full %v", r2, r1)
	}
	// The sliced condition must not mention y's version.
	for _, v := range sliced.Cond[bug].Vars(nil) {
		if v.Name() == "y#1" {
			t.Fatal("sliced condition still constrains y")
		}
	}
}

func TestDontCareReach(t *testing.T) {
	p := ir.NewProgram("dc")
	c := p.NewVar("c", smt.BoolSort)
	start := p.NewNode(ir.Nop)
	p.Start = start
	br := p.NewNode(ir.Branch)
	br.Expr = c.Term
	dc := p.NewNode(ir.DontCare)
	acc1 := p.NewNode(ir.AcceptTerm)
	acc2 := p.NewNode(ir.AcceptTerm)
	p.Edge(start, br)
	p.Edge(br, dc)
	p.Edge(dc, acc1)
	p.Edge(br, acc2)

	pass := ssa.Passify(p)
	r := Compute(p, pass, nil)
	if r.DontCareReach.IsFalse() {
		t.Fatal("dontCare reach must not be false")
	}
	env := smt.Env{}
	env.SetBool("c", true)
	if !smt.EvalBool(r.DontCareReach, env) {
		t.Fatal("dontCare reachable under c")
	}
	env.SetBool("c", false)
	if smt.EvalBool(r.DontCareReach, env) {
		t.Fatal("dontCare unreachable under !c")
	}
}
