package dataplane

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"bf4/internal/ir"
)

// refMatch is an independent oracle for single-entry matching.
func refMatch(kind string, width int, keyVal, entryVal, mask int64, plen int) bool {
	switch kind {
	case "exact":
		return keyVal == entryVal
	case "ternary":
		return keyVal&mask == entryVal&mask
	case "lpm":
		m := int64(0)
		for i := 0; i < plen; i++ {
			m |= 1 << (width - 1 - i)
		}
		return keyVal&m == entryVal&m
	}
	return false
}

// TestMatchEntryAgainstOracle drives matchEntry with random single-key
// tables of every match kind against the reference semantics.
func TestMatchEntryAgainstOracle(t *testing.T) {
	kinds := []string{"exact", "ternary", "lpm"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kind := kinds[rng.Intn(len(kinds))]
		const width = 8
		tbl := &ir.Table{
			Name: "t",
			Keys: []*ir.KeyInfo{{Path: "k", MatchKind: kind, Width: width}},
		}
		keyVal := int64(rng.Intn(1 << width))
		entryVal := int64(rng.Intn(1 << width))
		mask := int64(rng.Intn(1 << width))
		plen := rng.Intn(width + 1)

		var km KeyMatch
		switch kind {
		case "exact":
			km = NewExact(entryVal)
		case "ternary":
			km = NewTernary(entryVal, mask)
		case "lpm":
			km = NewLpm(entryVal, plen)
		}
		e := &Entry{Keys: []KeyMatch{km}, Action: "a"}
		_, got := matchEntry(tbl, e, []*big.Int{big.NewInt(keyVal)})
		want := refMatch(kind, width, keyVal, entryVal, mask, plen)
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestLpmScoreOrdersByPrefix: among matching lpm entries, longer prefixes
// must always win regardless of priorities.
func TestLpmScoreOrdersByPrefix(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const width = 16
		tbl := &ir.Table{
			Name: "t",
			Keys: []*ir.KeyInfo{{Path: "k", MatchKind: "lpm", Width: width}},
		}
		keyVal := big.NewInt(int64(rng.Intn(1 << width)))
		shortLen := rng.Intn(width)
		longLen := shortLen + 1 + rng.Intn(width-shortLen)
		mkEntry := func(plen, prio int) *Entry {
			// Entry value equals the key on the prefix so both match.
			return &Entry{
				Keys:     []KeyMatch{NewLpm(keyVal.Int64(), plen)},
				Action:   "a",
				Priority: prio,
			}
		}
		short := mkEntry(shortLen, rng.Intn(100))
		long := mkEntry(longLen, rng.Intn(100))
		sShort, ok1 := matchEntry(tbl, short, []*big.Int{keyVal})
		sLong, ok2 := matchEntry(tbl, long, []*big.Int{keyVal})
		return ok1 && ok2 && sLong > sShort
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPrefixMaskProperties checks the mask helpers' algebra.
func TestPrefixMaskProperties(t *testing.T) {
	prop := func(w8, p8 uint8) bool {
		w := int(w8%64) + 1
		p := int(p8) % (w + 1)
		m := prefixMask(w, p)
		// The mask has exactly p leading ones within width w.
		ones := 0
		for i := 0; i < w; i++ {
			if m.Bit(i) == 1 {
				ones++
			}
		}
		if ones != p {
			return false
		}
		// All set bits are the high-order ones.
		for i := w - p; i < w; i++ {
			if m.Bit(i) != 1 {
				return false
			}
		}
		return prefixMask(w, w).Cmp(maskOnes(w)) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
