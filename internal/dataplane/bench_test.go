package dataplane_test

import (
	"math/big"
	"testing"

	"bf4/internal/core"
	"bf4/internal/dataplane"
	"bf4/internal/ir"
)

func benchPipeline(b *testing.B) *core.Pipeline {
	b.Helper()
	pl, err := core.Compile(natSrcBench, ir.DefaultOptions(), true)
	if err != nil {
		b.Fatal(err)
	}
	return pl
}

const natSrcBench = natSrc // reuse the test program

// BenchmarkInterpreterForwarding measures per-packet execution cost of
// the dataplane simulator on the forwarding fast path.
func BenchmarkInterpreterForwarding(b *testing.B) {
	pl := benchPipeline(b)
	snap := dataplane.NewSnapshot()
	snap.Insert("nat", &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewExact(1), dataplane.NewTernary(0x0A000001, -1)},
		Action: "nat_hit",
		Params: []*big.Int{big.NewInt(0x0A000099)},
	})
	snap.Insert("ipv4_lpm", &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewLpm(0, 0)},
		Action: "set_nhop",
		Params: []*big.Int{big.NewInt(0x0A0000FE), big.NewInt(7)},
	})
	pkt := ipv4Packet(0x0A000001, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		interp := &dataplane.Interp{P: pl.IR, Snapshot: snap, Inputs: pkt}
		tr, err := interp.Run()
		if err != nil {
			b.Fatal(err)
		}
		if tr.Bug() {
			b.Fatal("unexpected bug")
		}
	}
}

// BenchmarkInterpreterMatching isolates table matching against a large
// rule set.
func BenchmarkInterpreterMatching(b *testing.B) {
	pl := benchPipeline(b)
	snap := dataplane.NewSnapshot()
	for i := 0; i < 512; i++ {
		snap.Insert("nat", &dataplane.Entry{
			Keys:   []dataplane.KeyMatch{dataplane.NewExact(1), dataplane.NewTernary(int64(i), -1)},
			Action: "drop_",
		})
	}
	pkt := ipv4Packet(511, 64) // matches the last entry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		interp := &dataplane.Interp{P: pl.IR, Snapshot: snap, Inputs: pkt}
		if _, err := interp.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
