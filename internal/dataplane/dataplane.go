// Package dataplane is a concrete interpreter for bf4's expanded IR — the
// reproduction's software switch. It runs in two modes:
//
//   - Snapshot mode: execute a packet against a concrete snapshot (table
//     entries + default actions), performing real exact/ternary/lpm
//     matching at every table instance. This is the execution substrate
//     for the examples, the shim's end-to-end tests and the Vera-style
//     baseline (which symbolically or concretely explores snapshots).
//
//   - Replay mode: execute under a solver model (an smt.Env from a
//     reachability check), with havoc nodes reading the model's values for
//     their SSA versions. Replay of a bug's model must terminate at that
//     bug node — the repository's strongest cross-validation of the
//     verifier against operational semantics.
package dataplane

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"bf4/internal/ir"
	"bf4/internal/smt"
	"bf4/internal/ssa"
)

// Entry is one concrete table entry.
type Entry struct {
	// Keys holds one match per table key, in key order.
	Keys []KeyMatch
	// Action names the action to run on hit; Params are its arguments.
	Action string
	Params []*big.Int
	// Priority breaks ties for ternary matches (higher wins); insertion
	// order breaks remaining ties.
	Priority int
}

// KeyMatch is a concrete match for one key.
type KeyMatch struct {
	Value *big.Int
	// Mask applies to ternary matches (nil = exact full match).
	Mask *big.Int
	// PrefixLen applies to lpm keys (-1 for non-lpm).
	PrefixLen int
}

// NewExact returns an exact key match.
func NewExact(v int64) KeyMatch {
	return KeyMatch{Value: big.NewInt(v), PrefixLen: -1}
}

// NewTernary returns a ternary key match.
func NewTernary(v, mask int64) KeyMatch {
	return KeyMatch{Value: big.NewInt(v), Mask: big.NewInt(mask), PrefixLen: -1}
}

// NewLpm returns an lpm key match with the given prefix length.
func NewLpm(v int64, prefixLen int) KeyMatch {
	return KeyMatch{Value: big.NewInt(v), PrefixLen: prefixLen}
}

// DefaultAction overrides a table's default action at runtime.
type DefaultAction struct {
	Action string
	Params []*big.Int
}

// Snapshot is a concrete rule state: the paper's "P4 program together
// with all its active table entries".
type Snapshot struct {
	Entries  map[string][]*Entry
	Defaults map[string]*DefaultAction
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		Entries:  map[string][]*Entry{},
		Defaults: map[string]*DefaultAction{},
	}
}

// Insert appends an entry to a table.
func (s *Snapshot) Insert(table string, e *Entry) {
	s.Entries[table] = append(s.Entries[table], e)
}

// Packet supplies concrete values for havocked inputs: extracted header
// fields (by field variable name), register reads, hash results. Missing
// names default to zero.
type Packet map[string]*big.Int

// SetField sets a field value, e.g. pkt.SetField("hdr.ipv4.ttl", 64).
func (p Packet) SetField(name string, v int64) { p[name] = big.NewInt(v) }

// Trace is the outcome of one execution.
type Trace struct {
	Terminal *ir.Node
	Nodes    []*ir.Node
	// State is the final variable valuation.
	State smt.Env
	// Matched records, per visited table instance, the matched entry
	// index (-1 for miss).
	Matched map[*ir.TableInstance]int
}

// Bug reports whether the trace ended in a bug.
func (t *Trace) Bug() bool { return t.Terminal != nil && t.Terminal.Kind == ir.BugTerm }

// EgressSpec returns the final egress_spec value (or -1).
func (t *Trace) EgressSpec() int64 {
	if v, ok := t.State["smeta.egress_spec"]; ok {
		return v.Int64()
	}
	return -1
}

// Summary renders a compact trace description.
func (t *Trace) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d steps -> %s", len(t.Nodes), t.Terminal)
	return b.String()
}

// Interp executes the expanded IR.
type Interp struct {
	P *ir.Program
	// Snapshot enables snapshot mode (real matching at assert points).
	Snapshot *Snapshot
	// Model enables replay mode; Pass must be set so havoc nodes can look
	// up their SSA version's value in the model.
	Model smt.Env
	Pass  *ssa.Result
	// Inputs preloads version-0 variables (ingress_port etc.) in
	// snapshot mode.
	Inputs Packet
	// MaxSteps bounds execution (default 1 << 20).
	MaxSteps int
}

// Run executes one packet.
func (ip *Interp) Run() (*Trace, error) {
	limit := ip.MaxSteps
	if limit == 0 {
		limit = 1 << 20
	}
	state := smt.Env{}
	// Seed version-0 values.
	if ip.Model != nil {
		for _, v := range ip.P.VarList() {
			if mv, ok := ip.Model[v.Name]; ok {
				state[v.Name] = mv
			}
		}
	}
	for name, v := range ip.Inputs {
		state[name] = v
	}
	tr := &Trace{Matched: map[*ir.TableInstance]int{}}
	n := ip.P.Start
	for steps := 0; ; steps++ {
		if steps > limit {
			return nil, fmt.Errorf("dataplane: execution exceeded %d steps", limit)
		}
		tr.Nodes = append(tr.Nodes, n)
		switch n.Kind {
		case ir.BugTerm, ir.AcceptTerm, ir.RejectTerm, ir.UnreachTerm:
			tr.Terminal = n
			tr.State = state
			return tr, nil
		case ir.Assign:
			state[n.Var.Name] = smt.Eval(n.Expr, state)
		case ir.Havoc:
			state[n.Var.Name] = ip.havocValue(n)
		case ir.Branch:
			if len(n.Succs) != 2 {
				return nil, fmt.Errorf("dataplane: malformed branch n%d", n.ID)
			}
			if smt.EvalBool(n.Expr, state) {
				n = n.Succs[0]
			} else {
				n = n.Succs[1]
			}
			continue
		case ir.AssertPoint:
			if ip.Snapshot != nil {
				ip.applyTable(n.Instance, state, tr)
			}
		}
		if len(n.Succs) == 0 {
			tr.Terminal = n
			tr.State = state
			return tr, nil
		}
		n = n.Succs[0]
	}
}

var bigZero = new(big.Int)

func (ip *Interp) havocValue(n *ir.Node) *big.Int {
	// Replay mode: the model assigns the SSA version this havoc created.
	if ip.Model != nil && ip.Pass != nil {
		if t, ok := ip.Pass.HavocTerm[n]; ok {
			if v, ok := ip.Model[t.Name()]; ok {
				return v
			}
		}
	}
	// Snapshot mode: packet content by destination variable name.
	if ip.Inputs != nil {
		if v, ok := ip.Inputs[n.Var.Name]; ok {
			return v
		}
	}
	return bigZero
}

// applyTable performs concrete matching and writes the chosen entry into
// the instance's control variables, so the expansion's branches replay
// the decision consistently.
func (ip *Interp) applyTable(inst *ir.TableInstance, state smt.Env, tr *Trace) {
	t := inst.Table
	keyVals := make([]*big.Int, len(inst.KeyTerms))
	for j, kt := range inst.KeyTerms {
		if kt != nil {
			keyVals[j] = smt.Eval(kt, state)
		} else {
			keyVals[j] = bigZero
		}
	}
	entries := ip.Snapshot.Entries[t.Name]
	matchIdx := -1
	bestScore := -1
	for i, e := range entries {
		score, ok := matchEntry(t, e, keyVals)
		if !ok {
			continue
		}
		// lpm: longest prefix wins; ternary: priority wins; first match
		// breaks ties.
		if score > bestScore {
			bestScore = score
			matchIdx = i
		}
	}
	tr.Matched[inst] = matchIdx
	f := ip.P.F
	_ = f
	if matchIdx >= 0 {
		e := entries[matchIdx]
		state.SetBool(inst.HitVar.Name, true)
		idx, ok := inst.ActIndex[e.Action]
		if !ok {
			idx = 0
		}
		state.SetUint64(inst.ActVar.Name, uint64(idx))
		for j := range inst.KeyVars {
			if j < len(e.Keys) {
				state[inst.KeyVars[j].Name] = e.Keys[j].Value
				if inst.MaskVars[j] != nil {
					state[inst.MaskVars[j].Name] = effectiveMask(t.Keys[j], e.Keys[j])
				}
			}
		}
		for pi, pv := range inst.ParamVars[e.Action] {
			if pi < len(e.Params) {
				state[pv.Name] = e.Params[pi]
			} else {
				state[pv.Name] = bigZero
			}
		}
	} else {
		state.SetBool(inst.HitVar.Name, false)
		if d := ip.Snapshot.Defaults[t.Name]; d != nil {
			// Default-action override: expansion runs the declared
			// default's body, so overrides are limited to parameter
			// values of the declared default.
			for pi, pv := range inst.DefaultParamVars {
				if pi < len(d.Params) {
					state[pv.Name] = d.Params[pi]
				}
			}
		} else {
			for _, pv := range inst.DefaultParamVars {
				state[pv.Name] = bigZero
			}
		}
	}
}

// matchEntry reports whether the key values match the entry, returning a
// score for winner selection (lpm prefix length dominates; then
// priority).
func matchEntry(t *ir.Table, e *Entry, keyVals []*big.Int) (score int, ok bool) {
	score = e.Priority
	for j, k := range t.Keys {
		if j >= len(e.Keys) {
			return 0, false
		}
		km := e.Keys[j]
		kv := keyVals[j]
		switch k.MatchKind {
		case "exact":
			if kv.Cmp(km.Value) != 0 {
				return 0, false
			}
		case "ternary":
			mask := km.Mask
			if mask == nil {
				mask = maskOnes(k.Width)
			}
			a := new(big.Int).And(kv, mask)
			b := new(big.Int).And(km.Value, mask)
			if a.Cmp(b) != 0 {
				return 0, false
			}
		case "lpm":
			plen := km.PrefixLen
			if plen < 0 {
				plen = k.Width
			}
			mask := prefixMask(k.Width, plen)
			a := new(big.Int).And(kv, mask)
			b := new(big.Int).And(km.Value, mask)
			if a.Cmp(b) != 0 {
				return 0, false
			}
			score += plen * 1000 // prefix length dominates priority
		}
	}
	return score, true
}

func maskOnes(w int) *big.Int {
	m := new(big.Int).Lsh(big.NewInt(1), uint(w))
	return m.Sub(m, big.NewInt(1))
}

func prefixMask(w, plen int) *big.Int {
	if plen >= w {
		return maskOnes(w)
	}
	ones := new(big.Int).Lsh(big.NewInt(1), uint(plen))
	ones.Sub(ones, big.NewInt(1))
	return ones.Lsh(ones, uint(w-plen))
}

// EffectiveMaskFor converts an entry's key match into the mask value the
// expansion's mask variable expects (ternary mask, lpm prefix mask, or
// all-ones for exact).
func EffectiveMaskFor(k *ir.KeyInfo, km KeyMatch) *big.Int {
	return effectiveMask(k, km)
}

// effectiveMask converts an entry's key match into the mask value the
// expansion's mask variable expects.
func effectiveMask(k *ir.KeyInfo, km KeyMatch) *big.Int {
	switch k.MatchKind {
	case "ternary":
		if km.Mask != nil {
			return km.Mask
		}
		return maskOnes(k.Width)
	case "lpm":
		plen := km.PrefixLen
		if plen < 0 {
			plen = k.Width
		}
		return prefixMask(k.Width, plen)
	default:
		return maskOnes(k.Width)
	}
}

// SortEntriesByPriority orders a table's entries with highest priority
// first (useful for deterministic iteration in tests and the shim).
func (s *Snapshot) SortEntriesByPriority(table string) {
	es := s.Entries[table]
	sort.SliceStable(es, func(i, j int) bool { return es[i].Priority > es[j].Priority })
}
