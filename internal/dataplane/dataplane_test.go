package dataplane_test

import (
	"math/big"
	"testing"

	"bf4/internal/core"
	"bf4/internal/dataplane"
	"bf4/internal/ir"
)

const natSrc = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<32> srcAddr; bit<32> dstAddr; }
struct meta_t { bit<1> do_forward; bit<32> nhop; }
struct metadata { meta_t meta; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; }

parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
}

control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    action drop_() { mark_to_drop(smeta); }
    action nat_hit(bit<32> a) {
        meta.meta.do_forward = 1w1;
        meta.meta.nhop = a;
    }
    table nat {
        key = { hdr.ipv4.isValid(): exact; hdr.ipv4.srcAddr: ternary; }
        actions = { drop_; nat_hit; }
        default_action = drop_();
    }
    action set_nhop(bit<32> nhop, bit<9> port) {
        meta.meta.nhop = nhop;
        smeta.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table ipv4_lpm {
        key = { meta.meta.nhop: lpm; }
        actions = { set_nhop; drop_; }
    }
    apply {
        nat.apply();
        if (meta.meta.do_forward == 1w1) {
            ipv4_lpm.apply();
        }
    }
}

control Eg(inout headers hdr, inout metadata meta,
           inout standard_metadata_t smeta) { apply { } }
control Dep(packet_out pkt, in headers hdr) { apply { pkt.emit(hdr.ipv4); } }

V1Switch(P(), Ing(), Eg(), Dep()) main;
`

func compileNAT(t *testing.T) *core.Pipeline {
	t.Helper()
	pl, err := core.Compile(natSrc, ir.DefaultOptions(), true)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// ipv4Packet builds input values for an IPv4 packet.
func ipv4Packet(src int64, ttl int64) dataplane.Packet {
	p := dataplane.Packet{}
	p.SetField("hdr.ethernet.etherType", 0x800)
	p.SetField("hdr.ipv4.srcAddr", src)
	p.SetField("hdr.ipv4.ttl", ttl)
	return p
}

func TestSnapshotForwarding(t *testing.T) {
	pl := compileNAT(t)
	snap := dataplane.NewSnapshot()
	// nat: known connection from 10.0.0.1 (valid ipv4, exact src).
	snap.Insert("nat", &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewExact(1), dataplane.NewTernary(0x0A000001, -1)},
		Action: "nat_hit",
		Params: []*big.Int{big.NewInt(0x0A000099)},
	})
	// lpm: route everything to port 7.
	snap.Insert("ipv4_lpm", &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewLpm(0, 0)},
		Action: "set_nhop",
		Params: []*big.Int{big.NewInt(0x0A0000FE), big.NewInt(7)},
	})
	interp := &dataplane.Interp{P: pl.IR, Snapshot: snap, Inputs: ipv4Packet(0x0A000001, 64)}
	tr, err := interp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Bug() {
		t.Fatalf("unexpected bug: %s", tr.Summary())
	}
	if tr.Terminal.Kind != ir.AcceptTerm {
		t.Fatalf("terminal = %s", tr.Terminal)
	}
	if got := tr.EgressSpec(); got != 7 {
		t.Fatalf("egress_spec = %d, want 7", got)
	}
	// TTL decremented.
	if got := tr.State["hdr.ipv4.ttl"]; got.Int64() != 63 {
		t.Fatalf("ttl = %v, want 63", got)
	}
}

func TestSnapshotMissRunsDefault(t *testing.T) {
	pl := compileNAT(t)
	snap := dataplane.NewSnapshot() // empty tables: everything misses
	interp := &dataplane.Interp{P: pl.IR, Snapshot: snap, Inputs: ipv4Packet(0x0A000001, 64)}
	tr, err := interp.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Default drop_: mark_to_drop sets egress_spec to the drop port.
	if tr.Bug() {
		t.Fatalf("unexpected bug on miss: %s", tr.Summary())
	}
	if got := tr.EgressSpec(); got != ir.DropSpec {
		t.Fatalf("egress_spec = %d, want drop (%d)", got, ir.DropSpec)
	}
}

func TestFaultyRuleTriggersBug(t *testing.T) {
	pl := compileNAT(t)
	snap := dataplane.NewSnapshot()
	// The paper's faulty rule: isValid key = 0, nonzero ternary mask. The
	// srcAddr read is undefined for an invalid header; the interpreter
	// models it as the stale (zero) value, which this rule matches.
	snap.Insert("nat", &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewExact(0), dataplane.NewTernary(0, 0xFF000000)},
		Action: "nat_hit",
		Params: []*big.Int{big.NewInt(1)},
	})
	// A non-IPv4 packet (header invalid) matches that rule.
	p := dataplane.Packet{}
	p.SetField("hdr.ethernet.etherType", 0x806) // ARP: ipv4 stays invalid
	interp := &dataplane.Interp{P: pl.IR, Snapshot: snap, Inputs: p}
	tr, err := interp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Bug() {
		t.Fatalf("faulty rule did not trigger a bug: %s", tr.Summary())
	}
	if tr.Terminal.Bug != ir.BugInvalidKeyRead {
		t.Fatalf("bug kind = %s, want invalid-key-read", tr.Terminal.Bug)
	}
}

// TestModelReplayReachesBug is the repository's strongest end-to-end
// check: every model the verifier produces, when executed operationally,
// must drive the dataplane to exactly the reported bug node.
func TestModelReplayReachesBug(t *testing.T) {
	pl := compileNAT(t)
	rep := pl.FindBugs()
	replayed := 0
	for _, b := range rep.Bugs {
		if !b.Reachable {
			continue
		}
		interp := &dataplane.Interp{P: pl.IR, Model: b.Model, Pass: pl.Pass}
		tr, err := interp.Run()
		if err != nil {
			t.Fatalf("replay of %s: %v", b.Description(), err)
		}
		if tr.Terminal != b.Node {
			t.Errorf("replay of %s ended at %s, want n%d", b.Description(), tr.Terminal, b.Node.ID)
		}
		replayed++
	}
	if replayed == 0 {
		t.Fatal("nothing replayed")
	}
}

func TestLpmLongestPrefixWins(t *testing.T) {
	pl := compileNAT(t)
	snap := dataplane.NewSnapshot()
	snap.Insert("nat", &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewExact(1), dataplane.NewTernary(0, 0)},
		Action: "nat_hit",
		Params: []*big.Int{big.NewInt(0x0A000010)}, // nhop = 10.0.0.16
	})
	// Two lpm routes: /8 to port 1, /24 to port 2. /24 must win.
	snap.Insert("ipv4_lpm", &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewLpm(0x0A000000, 8)},
		Action: "set_nhop",
		Params: []*big.Int{big.NewInt(1), big.NewInt(1)},
	})
	snap.Insert("ipv4_lpm", &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewLpm(0x0A000000, 24)},
		Action: "set_nhop",
		Params: []*big.Int{big.NewInt(2), big.NewInt(2)},
	})
	interp := &dataplane.Interp{P: pl.IR, Snapshot: snap, Inputs: ipv4Packet(3, 64)}
	tr, err := interp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.EgressSpec(); got != 2 {
		t.Fatalf("egress_spec = %d, want 2 (longest prefix)", got)
	}
}

func TestTernaryPriority(t *testing.T) {
	pl := compileNAT(t)
	snap := dataplane.NewSnapshot()
	// Overlapping ternary rules; higher priority must win.
	snap.Insert("nat", &dataplane.Entry{
		Keys:     []dataplane.KeyMatch{dataplane.NewExact(1), dataplane.NewTernary(0, 0)},
		Action:   "drop_",
		Priority: 1,
	})
	snap.Insert("nat", &dataplane.Entry{
		Keys:     []dataplane.KeyMatch{dataplane.NewExact(1), dataplane.NewTernary(0, 0)},
		Action:   "nat_hit",
		Params:   []*big.Int{big.NewInt(5)},
		Priority: 10,
	})
	interp := &dataplane.Interp{P: pl.IR, Snapshot: snap, Inputs: ipv4Packet(1, 64)}
	tr, err := interp.Run()
	if err != nil {
		t.Fatal(err)
	}
	nat := pl.IR.Instances[0]
	if got := tr.Matched[nat]; got != 1 {
		t.Fatalf("matched entry %d, want 1 (priority 10)", got)
	}
}

func TestNonIPv4PacketSkipsIPv4Parse(t *testing.T) {
	pl := compileNAT(t)
	snap := dataplane.NewSnapshot()
	p := dataplane.Packet{}
	p.SetField("hdr.ethernet.etherType", 0x806)
	interp := &dataplane.Interp{P: pl.IR, Snapshot: snap, Inputs: p}
	tr, err := interp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := tr.State["hdr.ipv4.$valid"]; v != nil && v.Sign() != 0 {
		t.Fatal("ipv4 header marked valid for ARP packet")
	}
}
