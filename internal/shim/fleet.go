package shim

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"bf4/internal/obs"
	"bf4/internal/spec"
)

// Fleet: the shim lifted from one switch to many. Each switch gets a
// shard — its own shadow state, dedup window and snapshot+journal store,
// guarded by its own lock — while the expensive per-program work
// (compiling inferred annotations into terms) happens once per program
// fingerprint in a shared AnnotationCache: verify once, guard every
// switch running that program.
//
// Availability is per shard. A shard dies (crash, wedged operation) and
// only its switch degrades; a supervisor notices via deadline-based
// health checks, fences the dead incarnation, and restores the shard
// from its snapshot+journal. While a shard is down the fleet is in one
// of two configurable degraded modes: reject (fail fast with a
// retryable error) or queue (park writes, bounded, and replay them in
// arrival order the moment restore completes).
//
// The exactly-once story under failover: a mutation is journaled before
// it is committed to memory, so the on-disk journal is the authority.
// Fencing works by closing the dead incarnation's journal handle — a
// zombie operation still holding the old shim cannot append, therefore
// cannot commit, therefore cannot be acknowledged. Retried mutations
// carry idempotency keys and the dedup window is persisted, so a
// controller retrying across a restore gets the recorded outcome
// instead of a double-apply.

// OnShardDown selects the fleet's degraded mode while a shard restores.
type OnShardDown int

const (
	// DownReject fails writes to a down shard immediately with a
	// retryable ShardDownError.
	DownReject OnShardDown = iota
	// DownQueue parks writes to a down shard (bounded) and replays them
	// in arrival order once restore completes.
	DownQueue
)

// ParseOnShardDown parses the -on-shard-down flag value.
func ParseOnShardDown(s string) (OnShardDown, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "reject":
		return DownReject, nil
	case "queue":
		return DownQueue, nil
	}
	return DownReject, fmt.Errorf("shim: unknown on-shard-down mode %q (want reject|queue)", s)
}

func (m OnShardDown) String() string {
	if m == DownQueue {
		return "queue"
	}
	return "reject"
}

// ShardState is one point in a shard's lifecycle.
type ShardState int32

const (
	// ShardDown: no live shim incarnation; awaiting restore.
	ShardDown ShardState = iota
	// ShardRestoring: the supervisor is rebuilding the shard from its
	// snapshot+journal.
	ShardRestoring
	// ShardHealthy: serving traffic.
	ShardHealthy
)

func (s ShardState) String() string {
	switch s {
	case ShardHealthy:
		return "healthy"
	case ShardRestoring:
		return "restoring"
	default:
		return "down"
	}
}

// ShardDownError reports a write refused (or timed out) because its
// shard is unavailable. It is retryable: the shard will come back, and
// retried mutations carry idempotency keys.
type ShardDownError struct {
	ID     string
	State  ShardState
	Reason string
}

func (e *ShardDownError) Error() string {
	return fmt.Sprintf("shim: shard %s unavailable (%s): %s", e.ID, e.State, e.Reason)
}

// FleetConfig tunes a Fleet. The zero value is usable.
type FleetConfig struct {
	// StateRoot, when set, persists each shard under
	// <StateRoot>/<sanitized shard id>/.
	StateRoot string
	// OnShardDown selects the degraded mode (default DownReject).
	OnShardDown OnShardDown
	// HealthInterval is the supervisor tick (default 250ms).
	HealthInterval time.Duration
	// HealthDeadline declares a shard wedged when one operation has held
	// its lock this long (default 5s).
	HealthDeadline time.Duration
	// OpWait bounds how long an operation waits for a shard's lock
	// before treating the shard as unavailable (default 5s).
	OpWait time.Duration
	// QueueWait bounds how long a queued write waits for restore in
	// DownQueue mode (default 30s).
	QueueWait time.Duration
	// QueueLimit bounds the per-shard degraded queue (default 1024).
	QueueLimit int
	// CompactEvery overrides the per-shard journal compaction threshold
	// (0 keeps the store default).
	CompactEvery int
	// NoSync skips per-record journal fsync on every shard.
	NoSync bool
	// NoFastpath pins every shard (including post-failover incarnations)
	// to the term-DAG slow path; the zero value keeps the bytecode fast
	// path on.
	NoFastpath bool
	// Obs publishes fleet and per-shard metrics (nil disables).
	Obs *obs.Registry
	// Cache supplies the annotation cache; nil builds a private one
	// registered against Obs.
	Cache *AnnotationCache
}

func (c *FleetConfig) healthInterval() time.Duration {
	if c.HealthInterval > 0 {
		return c.HealthInterval
	}
	return 250 * time.Millisecond
}

func (c *FleetConfig) healthDeadline() time.Duration {
	if c.HealthDeadline > 0 {
		return c.HealthDeadline
	}
	return 5 * time.Second
}

func (c *FleetConfig) opWait() time.Duration {
	if c.OpWait > 0 {
		return c.OpWait
	}
	return 5 * time.Second
}

func (c *FleetConfig) queueWait() time.Duration {
	if c.QueueWait > 0 {
		return c.QueueWait
	}
	return 30 * time.Second
}

func (c *FleetConfig) queueLimit() int {
	if c.QueueLimit > 0 {
		return c.QueueLimit
	}
	return 1024
}

// Fleet multiplexes shards and runs their supervisor.
type Fleet struct {
	cfg   FleetConfig
	cache *AnnotationCache

	mu     sync.Mutex
	shards map[string]*Shard
	order  []string

	stop    chan struct{}
	wg      sync.WaitGroup
	started bool

	// Fleet-wide metrics (nil-safe).
	restoresTotal *obs.Counter
	degradedTotal *obs.Counter
	replayedTotal *obs.Counter
	shardsGauge   *obs.Gauge
	downGauge     *obs.Gauge
}

// NewFleet builds an empty fleet. With cfg.Obs set it publishes:
//
//	bf4_fleet_shards                          registered shards
//	bf4_fleet_shards_down                     shards not currently healthy
//	bf4_fleet_restores_total                  shard restores (all shards)
//	bf4_fleet_degraded_rejections_total       writes refused while degraded
//	bf4_fleet_replayed_batches_total          queued writes replayed after restore
//	bf4_fleet_annotation_compiles_total       programs compiled (cache misses)
//	bf4_fleet_annotation_cache_hits_total     compiles avoided by the cache
//
// plus, per shard (labeled series of one family each):
//
//	bf4_fleet_shard_restores_total{shard="id"}
//	bf4_fleet_shard_degraded_rejections_total{shard="id"}
//	bf4_fleet_shard_replayed_total{shard="id"}
//	bf4_fleet_shard_journal_lag{shard="id"}
func NewFleet(cfg FleetConfig) *Fleet {
	cache := cfg.Cache
	if cache == nil {
		cache = NewAnnotationCache(cfg.Obs)
	}
	return &Fleet{
		cfg:           cfg,
		cache:         cache,
		shards:        map[string]*Shard{},
		stop:          make(chan struct{}),
		restoresTotal: cfg.Obs.Counter("bf4_fleet_restores_total"),
		degradedTotal: cfg.Obs.Counter("bf4_fleet_degraded_rejections_total"),
		replayedTotal: cfg.Obs.Counter("bf4_fleet_replayed_batches_total"),
		shardsGauge:   cfg.Obs.Gauge("bf4_fleet_shards"),
		downGauge:     cfg.Obs.Gauge("bf4_fleet_shards_down"),
	}
}

// Cache returns the fleet's annotation cache.
func (f *Fleet) Cache() *AnnotationCache { return f.cache }

// sanitizeShardID maps a switch identifier onto a filesystem-safe
// directory name.
func sanitizeShardID(id string) string {
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// AddShard registers a switch running the given program and brings its
// shard up (loading any persisted state). Compilation is shared through
// the annotation cache, so N shards on one program compile once.
func (f *Fleet) AddShard(id string, file *spec.File) (*Shard, error) {
	if id == "" {
		return nil, fmt.Errorf("shim: empty shard id")
	}
	cp, fp, err := f.cache.Get(file)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	if _, dup := f.shards[id]; dup {
		f.mu.Unlock()
		return nil, fmt.Errorf("shim: shard %s already registered", id)
	}
	f.mu.Unlock()

	sd := &Shard{
		fleet: f,
		id:    id,
		fp:    fp,
		cp:    cp,
	}
	if f.cfg.StateRoot != "" {
		sd.dir = filepath.Join(f.cfg.StateRoot, sanitizeShardID(id))
	}
	reg := f.cfg.Obs
	sd.restores = reg.Counter(obs.LabeledName("bf4_fleet_shard_restores_total", "shard", id))
	sd.degraded = reg.Counter(obs.LabeledName("bf4_fleet_shard_degraded_rejections_total", "shard", id))
	sd.replayed = reg.Counter(obs.LabeledName("bf4_fleet_shard_replayed_total", "shard", id))
	sd.lagGauge = reg.Gauge(obs.LabeledName("bf4_fleet_shard_journal_lag", "shard", id))

	if err := sd.restore(true); err != nil {
		return nil, fmt.Errorf("shim: shard %s: %w", id, err)
	}

	f.mu.Lock()
	f.shards[id] = sd
	f.order = append(f.order, id)
	f.shardsGauge.Set(int64(len(f.shards)))
	f.mu.Unlock()
	return sd, nil
}

// Shard returns the shard for a switch id (nil if unknown).
func (f *Fleet) Shard(id string) *Shard {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shards[id]
}

// Shards returns the registered switch ids, sorted.
func (f *Fleet) Shards() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := append([]string(nil), f.order...)
	sort.Strings(ids)
	return ids
}

// all snapshots the shard list without holding the fleet lock during
// per-shard work.
func (f *Fleet) all() []*Shard {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Shard, 0, len(f.order))
	for _, id := range f.order {
		out = append(out, f.shards[id])
	}
	return out
}

// Health reports every shard's lifecycle state, keyed by switch id.
func (f *Fleet) Health() map[string]string {
	out := map[string]string{}
	down := 0
	for _, sd := range f.all() {
		st := sd.State()
		out[sd.id] = st.String()
		if st != ShardHealthy {
			down++
		}
	}
	f.downGauge.Set(int64(down))
	return out
}

// Kill fences a shard's live incarnation, emulating a crash: the
// current shim is discarded and its journal handle closed, so in-flight
// operations cannot commit or acknowledge. The supervisor (or an
// explicit RestoreNow) brings the shard back from disk.
func (f *Fleet) Kill(id string) error {
	sd := f.Shard(id)
	if sd == nil {
		return fmt.Errorf("shim: unknown shard %s", id)
	}
	sd.Kill()
	return nil
}

// RestoreNow synchronously restores a shard from its snapshot+journal.
func (f *Fleet) RestoreNow(id string) error {
	sd := f.Shard(id)
	if sd == nil {
		return fmt.Errorf("shim: unknown shard %s", id)
	}
	return sd.restore(false)
}

// StartSupervisor launches the health-check loop: every HealthInterval
// it restores down shards and fails over wedged ones (an operation
// holding a shard's lock past HealthDeadline).
func (f *Fleet) StartSupervisor() {
	f.mu.Lock()
	if f.started {
		f.mu.Unlock()
		return
	}
	f.started = true
	f.mu.Unlock()
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		tick := time.NewTicker(f.cfg.healthInterval())
		defer tick.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-tick.C:
				f.superviseOnce()
			}
		}
	}()
}

// superviseOnce is one supervisor pass (exported to tests via
// RestoreNow/Kill; the loop just repeats this).
func (f *Fleet) superviseOnce() {
	deadline := f.cfg.healthDeadline()
	now := time.Now().UnixNano()
	down := 0
	for _, sd := range f.all() {
		switch sd.State() {
		case ShardDown:
			down++
			// Restore in place: supervision is sequential by design so
			// concurrent restores never compete for disk.
			_ = sd.restore(false)
		case ShardRestoring:
			down++
		case ShardHealthy:
			if start := sd.opStart.Load(); start != 0 && now-start > int64(deadline) {
				// Wedged: one operation has held the shard lock past the
				// deadline. Fence it and bring up a fresh incarnation.
				sd.Kill()
				_ = sd.restore(false)
			}
		}
	}
	f.downGauge.Set(int64(down))
}

// Close stops the supervisor and checkpoints every healthy shard.
func (f *Fleet) Close() error {
	f.mu.Lock()
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	f.mu.Unlock()
	f.wg.Wait()
	var first error
	for _, sd := range f.all() {
		if err := sd.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
