// Package shim implements bf4's runtime rule sanitizer (paper §4.4): it
// sits between the controller and the dataplane, intercepting table
// updates and validating each against the assertions inferred at compile
// time. Validation follows the paper's three steps: (a) dispatch the
// update to the conditions clustered on its table (constant time), (b)
// rewrite each condition body with the update's concrete values, (c)
// resolve any variables still unbound (multi-table assertions) against
// shadow copies of the other tables' contents. Safe updates are inserted
// into the shadow state; unsafe updates raise an exception back to the
// controller — the dataplane never holds a buggy snapshot.
package shim

import (
	"fmt"
	"math/big"
	"sync"
	"time"

	"bf4/internal/dataplane"
	"bf4/internal/smt"
	"bf4/internal/spec"
)

// Update is one controller message.
type Update struct {
	Table string
	// Entry inserts a rule (nil when setting a default action).
	Entry *dataplane.Entry
	// SetDefault changes the table's default action.
	SetDefault *dataplane.DefaultAction
}

// RejectionError explains why an update was refused.
type RejectionError struct {
	Table     string
	Assertion *spec.Assertion
	Forbidden string
	Reason    string
}

func (e *RejectionError) Error() string {
	if e.Assertion != nil {
		return fmt.Sprintf("shim: update to table %s rejected: rule matches forbidden shape %s (inferred by %s)",
			e.Table, e.Forbidden, e.Assertion.Source)
	}
	return fmt.Sprintf("shim: update to table %s rejected: %s", e.Table, e.Reason)
}

// compiledAssertion pre-parses one assertion's forbidden terms.
type compiledAssertion struct {
	src       *spec.Assertion
	terms     []*smt.Term
	primary   *spec.TableSchema
	linked    *spec.TableSchema // nil for single-table assertions
	termBound []map[string]bool // var names each term mentions
}

// Stats aggregates validation outcomes and latencies (for §5.3).
// Latency streams are kept in bounded reservoirs (see LatencyStats) so a
// long-running shim holds constant memory regardless of update count.
type Stats struct {
	Validated int
	Rejected  int
	// FastpathHits counts assertion evaluations served by a compiled
	// bytecode program; SlowpathHits counts term-DAG evaluations (shadow
	// resolution, wide vectors, or -fastpath=off).
	FastpathHits int
	SlowpathHits int
	// PerAssertion summarizes single-assertion evaluation latency;
	// PerUpdate summarizes whole-update validation latency.
	PerAssertion LatencyStats
	PerUpdate    LatencyStats
}

// DefaultStatsCap is the default latency-reservoir capacity.
const DefaultStatsCap = 8192

// DefaultDedupWindow is the default size of the applied-request-ID
// window used for idempotent retries.
const DefaultDedupWindow = 4096

// Shim validates and tracks controller updates for one P4 program.
type Shim struct {
	mu       sync.Mutex
	cp       *Compiled
	shadow   map[string][]*dataplane.Entry
	defaults map[string]*dataplane.DefaultAction
	counters struct{ validated, rejected, fastHits, slowHits int }
	obs      shimObs

	// fastpath gates the compiled-bytecode evaluation tier (on by
	// default); when off, every condition takes the term-DAG slow path.
	fastpath bool

	perAssertion reservoir
	perUpdate    reservoir

	// applied is the idempotency window: outcome of recently applied
	// (or rejected) keyed mutations, so a retried request after an
	// ambiguous transport failure is not double-applied.
	applied      map[string]error
	appliedOrder []string
	appliedHead  int

	dedupCap int

	// store, when attached, journals mutations and snapshots state for
	// crash recovery.
	store *Store
	seq   int64

	// AutofillSynthesizedKeys lets rules from a controller that predates
	// the Fixes pass be accepted: updates that omit exactly the
	// synthesized (bf4-added) keys get safe values appended — validity
	// keys expect a valid header (1), other widths get 0 — before
	// validation. The paper sketches this as future work in §4.4.
	AutofillSynthesizedKeys bool
}

// New compiles a spec file into a shim.
func New(file *spec.File) (*Shim, error) {
	cp, err := Compile(file)
	if err != nil {
		return nil, err
	}
	return NewFromCompiled(cp), nil
}

// Compile parses a spec file's assertions into a shareable, read-only
// compiled annotation set (see Compiled).
func Compile(file *spec.File) (*Compiled, error) {
	cp := &Compiled{
		file:    file,
		f:       smt.NewFactory(),
		byTable: map[string][]*compiledAssertion{},
		tables:  make(map[string]*spec.TableSchema, len(file.Tables)),
	}
	for _, ts := range file.Tables {
		cp.tables[ts.Name] = ts
	}
	for _, a := range file.Assertions {
		ca := &compiledAssertion{src: a, primary: file.Table(a.Table)}
		if ca.primary == nil {
			return nil, fmt.Errorf("shim: assertion references unknown table %s", a.Table)
		}
		if a.Linked != "" {
			ca.linked = file.Table(a.Linked)
			if ca.linked == nil {
				return nil, fmt.Errorf("shim: assertion references unknown linked table %s", a.Linked)
			}
		}
		for i := range a.Forbidden {
			t, err := a.ParseForbidden(cp.f, i)
			if err != nil {
				return nil, fmt.Errorf("shim: table %s: %w", a.Table, err)
			}
			ca.terms = append(ca.terms, t)
			names := map[string]bool{}
			for _, vt := range t.Vars(nil) {
				names[vt.Name()] = true
			}
			ca.termBound = append(ca.termBound, names)
		}
		// Cluster by every table the assertion mentions (step a).
		cp.byTable[a.Table] = append(cp.byTable[a.Table], ca)
		if a.Linked != "" && a.Linked != a.Table {
			cp.byTable[a.Linked] = append(cp.byTable[a.Linked], ca)
		}
	}
	cp.compileMasks()
	cp.compilePlans()
	cp.scratch.New = func() any {
		regs := make([]uint64, cp.maxRegs)
		return &regs
	}
	return cp, nil
}

// NewFromCompiled builds a shim over an already-compiled annotation set.
// Many shims (fleet shards) may share one Compiled: each gets its own
// shadow state, dedup window and statistics; the compiled terms are only
// ever read.
func NewFromCompiled(cp *Compiled) *Shim {
	return &Shim{
		cp:           cp,
		fastpath:     true,
		shadow:       map[string][]*dataplane.Entry{},
		defaults:     map[string]*dataplane.DefaultAction{},
		perAssertion: newReservoir(DefaultStatsCap),
		perUpdate:    newReservoir(DefaultStatsCap),
		// appliedOrder grows on demand in recordOutcome: preallocating
		// the full window is a 64KB zeroed pointer-slice per shim, pure
		// waste for callers that never pass an idempotency key.
		applied: map[string]error{},
	}
}

// SetFastpath enables or disables the compiled-bytecode evaluation tier.
// Decisions are identical either way (the differential harness proves
// it); off forces every condition through the term-DAG slow path, which
// is the reference semantics and the -fastpath=off escape hatch.
func (s *Shim) SetFastpath(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fastpath = on
}

// Counters returns the scalar counters only, skipping the latency
// reservoir snapshots Stats copies — cheap enough to poll per batch.
func (s *Shim) Counters() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Validated:    s.counters.validated,
		Rejected:     s.counters.rejected,
		FastpathHits: s.counters.fastHits,
		SlowpathHits: s.counters.slowHits,
	}
}

// Stats returns a copy of the accumulated statistics.
func (s *Shim) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Validated:    s.counters.validated,
		Rejected:     s.counters.rejected,
		FastpathHits: s.counters.fastHits,
		SlowpathHits: s.counters.slowHits,
		PerAssertion: s.perAssertion.snapshot(),
		PerUpdate:    s.perUpdate.snapshot(),
	}
}

// SetStatsCap bounds the latency reservoirs to the given number of
// samples (default DefaultStatsCap). Call before serving traffic for
// exact percentile windows.
func (s *Shim) SetStatsCap(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.perAssertion.setCap(n)
	s.perUpdate.setCap(n)
}

// SetDedupWindow bounds the applied-request-ID window (default
// DefaultDedupWindow entries).
func (s *Shim) SetDedupWindow(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 1 {
		n = 1
	}
	// Reset: the window only affects retries in flight, which a
	// reconfiguration boundary need not preserve.
	s.applied = map[string]error{}
	s.appliedOrder = make([]string, 0, n)
	s.appliedHead = 0
	s.dedupCap = n
}

// ShadowSize returns the number of shadow entries for a table.
func (s *Shim) ShadowSize(table string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shadow[table])
}

// Validate checks an update without applying it.
func (s *Shim) Validate(u *Update) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.validateLocked(u)
}

// Apply validates an update and, when safe, records it in the shadow
// state (mirroring its insertion into the switch).
func (s *Shim) Apply(u *Update) error { return s.ApplyWithKey("", u) }

// ApplyWithKey is Apply with an idempotency key: a key already in the
// dedup window returns the recorded outcome without re-applying, so a
// controller retrying after an ambiguous transport failure cannot
// double-insert a rule. An empty key disables deduplication.
func (s *Shim) ApplyWithKey(key string, u *Update) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err, seen := s.lookupApplied(key); seen {
		s.obs.dedupHits.Inc()
		return err
	}
	err := s.validateLocked(u)
	if err == nil {
		// Journal before committing: on a journal failure nothing is
		// applied, and after a crash the journal is the source of truth.
		if err = s.journalLocked(key, []*Update{u}); err == nil {
			s.commitLocked(u)
			// Record the outcome BEFORE any checkpoint: a checkpoint
			// triggered by this very record folds the journal into the
			// snapshot, and the snapshot must carry this key in its
			// dedup window or a crash right after would re-apply the
			// retry.
			s.recordOutcome(key, nil)
			if cerr := s.maybeCheckpointLocked(); cerr != nil {
				// The update is applied and its outcome recorded; the
				// caller's retry resolves through the window.
				return cerr
			}
			return nil
		}
	}
	s.recordOutcome(key, err)
	return err
}

// commitLocked records a validated update in the shadow state.
func (s *Shim) commitLocked(u *Update) {
	if u.Entry != nil {
		s.shadow[u.Table] = append(s.shadow[u.Table], u.Entry)
		s.obs.shadowEntries.Add(1)
	}
	if u.SetDefault != nil {
		s.defaults[u.Table] = u.SetDefault
	}
}

func (s *Shim) lookupApplied(key string) (error, bool) {
	if key == "" {
		return nil, false
	}
	err, ok := s.applied[key]
	return err, ok
}

func (s *Shim) recordOutcome(key string, err error) {
	if key == "" {
		return
	}
	if _, ok := s.applied[key]; ok {
		s.applied[key] = err
		return
	}
	capacity := s.dedupCap
	if capacity == 0 {
		capacity = DefaultDedupWindow
	}
	if len(s.appliedOrder) < capacity {
		s.appliedOrder = append(s.appliedOrder, key)
	} else {
		delete(s.applied, s.appliedOrder[s.appliedHead])
		s.appliedOrder[s.appliedHead] = key
		s.appliedHead = (s.appliedHead + 1) % capacity
	}
	s.applied[key] = err
}

// Snapshot materializes the shadow state as a dataplane snapshot.
func (s *Shim) Snapshot() *dataplane.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := dataplane.NewSnapshot()
	for t, es := range s.shadow {
		snap.Entries[t] = append([]*dataplane.Entry(nil), es...)
	}
	for t, d := range s.defaults {
		snap.Defaults[t] = d
	}
	return snap
}

// rejectLocked bumps the rejection tallies (legacy counter + metrics).
func (s *Shim) rejectLocked() {
	s.counters.rejected++
	s.obs.rejected.Inc()
}

func (s *Shim) validateLocked(u *Update) error {
	start := time.Now()
	defer func() {
		ns := time.Since(start).Nanoseconds()
		s.perUpdate.add(ns)
		s.obs.updateNs.Observe(ns)
	}()
	s.counters.validated++
	s.obs.validated.Inc()

	ts := s.cp.tables[u.Table]
	if ts == nil {
		s.rejectLocked()
		return &RejectionError{Table: u.Table, Reason: "unknown table"}
	}
	// Default-rule policy: reject buggy actions outright (§4.4).
	if u.SetDefault != nil {
		for _, a := range ts.Actions {
			if a.Name == u.SetDefault.Action && a.Buggy {
				s.rejectLocked()
				return &RejectionError{Table: u.Table,
					Reason: fmt.Sprintf("default action %s has a reachable bug", a.Name)}
			}
		}
		return nil
	}
	if u.Entry == nil {
		s.rejectLocked()
		return &RejectionError{Table: u.Table, Reason: "empty update"}
	}
	if s.AutofillSynthesizedKeys {
		s.autofill(ts, u.Entry)
	}
	if len(u.Entry.Keys) != len(ts.Keys) {
		s.rejectLocked()
		return &RejectionError{Table: u.Table,
			Reason: fmt.Sprintf("entry has %d keys, table has %d", len(u.Entry.Keys), len(ts.Keys))}
	}

	// Two-tier dispatch: conditions compiled to bytecode run over a
	// pooled register file; the rest (and everything under -fastpath=off)
	// takes the term-DAG slow path. Both tiers see identical bindings;
	// the env is built lazily, only when a slow evaluation actually runs.
	plan := s.cp.plans[u.Table]
	useFast := s.fastpath && plan != nil && plan.hasFast
	var regs []uint64
	if useFast {
		regsp := s.cp.scratch.Get().(*[]uint64)
		defer s.cp.scratch.Put(regsp)
		regs = *regsp
		plan.bind(regs, u.Entry)
	}
	var env smt.Env
	var bound map[string]bool

	for ci, ca := range s.cp.byTable[u.Table] {
		for i, term := range ca.terms {
			aStart := time.Now()
			violated, fast := false, false
			if useFast {
				switch {
				case plan.progs[ci][i] != nil:
					violated, fast = plan.progs[ci][i].Eval(regs), true
				case plan.linked[ci][i] != nil:
					violated, fast = s.evalLinkedFast(plan.linked[ci][i], regs), true
				case len(plan.slowGuards[ci][i]) > 0 && guardsRefute(plan.slowGuards[ci][i], regs):
					// A false implied conjunct decides the condition
					// without an env build or term-DAG walk.
					fast = true
				}
			}
			if fast {
				s.counters.fastHits++
				s.obs.fastpathHits.Inc()
			} else {
				if env == nil {
					env = smt.Env{}
					bound = s.cp.bindEntry(env, ts, u.Entry)
				}
				violated = s.evalCondition(ca, i, term, env, bound, ts)
				s.counters.slowHits++
				s.obs.slowpathHits.Inc()
			}
			aNs := time.Since(aStart).Nanoseconds()
			s.perAssertion.add(aNs)
			s.obs.assertNs.Observe(aNs)
			if violated {
				s.rejectLocked()
				return &RejectionError{Table: u.Table, Assertion: ca.src, Forbidden: ca.src.Forbidden[i]}
			}
		}
	}
	return nil
}

// evalCondition evaluates one forbidden term under the update's bindings,
// querying shadow tables for unbound (linked-table) variables: the term
// is violated if ANY completion from the shadow state satisfies it.
func (s *Shim) evalCondition(ca *compiledAssertion, i int, term *smt.Term, env smt.Env, bound map[string]bool, updated *spec.TableSchema) bool {
	// Which mentioned variables are still unbound?
	unboundTables := map[*spec.TableSchema]bool{}
	for name := range ca.termBound[i] {
		if bound[name] {
			continue
		}
		switch {
		case ca.primary != updated && hasPrefixVar(ca.primary, name):
			unboundTables[ca.primary] = true
		case ca.linked != nil && ca.linked != updated && hasPrefixVar(ca.linked, name):
			unboundTables[ca.linked] = true
		}
	}
	if len(unboundTables) == 0 {
		return smt.EvalBool(term, env)
	}
	// Multi-table: try every shadow entry of the other table (the paper's
	// step c — linear in unbound variables, here one auxiliary table).
	for other := range unboundTables {
		entries := s.shadow[other.Name]
		if len(entries) == 0 {
			// No candidate entry can complete the forbidden shape; treat
			// the hit variable as false.
			env2 := env.Clone()
			env2.SetBool(other.Prefix+".hit", false)
			if smt.EvalBool(term, env2) {
				return true
			}
			continue
		}
		for _, e := range entries {
			env2 := env.Clone()
			s.cp.bindEntry(env2, other, e)
			if smt.EvalBool(term, env2) {
				return true
			}
		}
	}
	return false
}

func hasPrefixVar(ts *spec.TableSchema, name string) bool {
	return ts != nil && len(name) > len(ts.Prefix) && name[:len(ts.Prefix)] == ts.Prefix
}

// bindEntry writes an entry's control-variable values into env and
// returns the set of bound names. Match masks come from the per-width
// memo tables built at compile time rather than fresh big.Int
// construction per call.
func (cp *Compiled) bindEntry(env smt.Env, ts *spec.TableSchema, e *dataplane.Entry) map[string]bool {
	bound := map[string]bool{}
	set := func(name string, v *big.Int) {
		env[name] = v
		bound[name] = true
	}
	setB := func(name string, v bool) {
		env.SetBool(name, v)
		bound[name] = true
	}
	setB(ts.Prefix+".hit", true)
	actIdx := 0
	var act *spec.ActionSchema
	for _, a := range ts.Actions {
		if a.Name == e.Action {
			actIdx = a.Index
			act = a
		}
	}
	set(ts.Prefix+".action_run", big.NewInt(int64(actIdx)))
	for j, k := range ts.Keys {
		if j >= len(e.Keys) {
			break
		}
		set(fmt.Sprintf("%s.key%d", ts.Prefix, j), e.Keys[j].Value)
		switch k.MatchKind {
		case "ternary":
			m := e.Keys[j].Mask
			if m == nil {
				m = cp.memoOnes(k.Width)
			}
			set(fmt.Sprintf("%s.mask%d", ts.Prefix, j), m)
		case "lpm":
			plen := e.Keys[j].PrefixLen
			if plen < 0 {
				plen = k.Width
			}
			set(fmt.Sprintf("%s.mask%d", ts.Prefix, j), cp.memoPrefixMask(k.Width, plen))
		}
	}
	if act != nil {
		for pi, p := range act.Params {
			v := big.NewInt(0)
			if pi < len(e.Params) {
				v = e.Params[pi]
			}
			set(fmt.Sprintf("%s.%s.%s", ts.Prefix, act.Name, p.Name), v)
		}
	}
	return bound
}

// autofill appends safe values for trailing synthesized keys when the
// entry was written against the pre-fix table schema.
func (s *Shim) autofill(ts *spec.TableSchema, e *dataplane.Entry) {
	synth := 0
	for _, k := range ts.Keys {
		if k.Synthesized {
			synth++
		}
	}
	if synth == 0 || len(e.Keys) != len(ts.Keys)-synth {
		return
	}
	for _, k := range ts.Keys {
		if !k.Synthesized {
			continue
		}
		v := big.NewInt(0)
		if len(k.Path) >= 9 && k.Path[len(k.Path)-9:] == "isValid()" {
			v = big.NewInt(1) // safe default: the header must be valid
		}
		e.Keys = append(e.Keys, dataplane.KeyMatch{Value: v, PrefixLen: -1})
	}
}

func ones(w int) *big.Int {
	m := new(big.Int).Lsh(big.NewInt(1), uint(w))
	return m.Sub(m, big.NewInt(1))
}

func prefixMask(w, plen int) *big.Int {
	if plen >= w {
		return ones(w)
	}
	m := new(big.Int).Lsh(big.NewInt(1), uint(plen))
	m.Sub(m, big.NewInt(1))
	return m.Lsh(m, uint(w-plen))
}
