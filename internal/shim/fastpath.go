package shim

import (
	"math/big"
	"strconv"

	"bf4/internal/dataplane"
	"bf4/internal/smt"
	"bf4/internal/spec"
)

// This file is the shim's fast path: at compile time every forbidden
// condition is lowered into a flat uint64 bytecode program
// (internal/smt/lower.go), and validation runs that program over a
// pooled scratch register file instead of substituting big.Ints into
// the term DAG. Conditions come in two fast shapes. A condition whose
// variables the updated table binds runs the program once per update.
// A condition that also mentions the cluster's other (linked) table
// runs the same program once per shadow entry of that table, rebinding
// only that table's slot region between runs — the bytecode twin of
// evalCondition's shadow scan, minus the per-entry env clone and DAG
// walk. Only conditions the register machine cannot express — a
// bitvector wider than 64 — keep the exact slow-path code, so the two
// tiers partition the work per condition, not per table.
//
// Exactness contract: for every update, a fast program must return
// precisely what evalCondition would. The binders below therefore
// mirror bindEntry value for value (same action resolution, same mask
// synthesis, same normalization the term evaluator applies at the env
// boundary), and variables neither tier ever binds lower to the
// constant zero, matching the evaluator's unbound-variable convention.
// The differential harness in diff_test.go and FuzzFastpath hold this
// line.
//
// Plan compilation is two-pass. Slot registers are shared by every
// program of a table's cluster and must all be allocated before any
// program's temporaries, so pass one classifies the variables of every
// condition (fixing the slot layout, including the scanned table's
// region) and pass two lowers the conditions with temporaries starting
// above the final slot count.

type slotKind uint8

const (
	bindHit         slotKind = iota // <prefix>.hit: constant true
	bindActionRun                   // <prefix>.action_run: selected action index
	bindKey                         // <prefix>.keyJ: entry key value
	bindMaskTernary                 // <prefix>.maskJ, ternary key
	bindMaskLpm                     // <prefix>.maskJ, lpm key
)

// slotBind fills one always-bound register from the update. width is the
// variable's declared sort width (0 = bool) — the slot holds the value
// normalized to that sort, exactly as smt.Eval normalizes env reads.
// keyWidth is the key's schema width (masks are built at key width, then
// reduced to the slot sort).
type slotBind struct {
	kind     slotKind
	j        int
	width    int
	keyWidth int
	slot     int
}

// paramBind fills one action-parameter register when its action is the
// one the entry selects; otherwise the slot keeps its zeroed value
// (matching the slow path's unbound-variable-to-zero convention).
type paramBind struct {
	pi    int
	width int
	slot  int
}

// actPlan is the fast-path view of one action: its action_run index and
// the parameter slots any condition mentions.
type actPlan struct {
	index  int
	params []paramBind
}

// scanBinder rebinds one linked table's register region per scanned
// shadow entry. Shared by every condition of a plan that scans that
// table, so their programs read the same slots.
type scanBinder struct {
	ts      *spec.TableSchema
	binds   []slotBind
	actions map[string]*actPlan
	// slots is every register owned by the scanned table, zeroed before
	// each entry bind so a previous entry's values (or a different
	// action's parameters) never leak into the next evaluation.
	slots []int
}

// linkedPlan is a lowered condition that still needs evalCondition's
// shadow resolution (the paper's step c): violated if ANY entry of the
// other table completes the forbidden shape.
type linkedPlan struct {
	prog *smt.Program
	sb   *scanBinder
	// guards are the term's top-level conjuncts that mention no
	// scanned-table variable, each implied by the full term. If any is
	// false under the update's bindings alone, no shadow entry can
	// complete the forbidden shape and the scan is skipped. The scan
	// still runs the full term, so guards only cut work, never verdicts.
	guards []*smt.Program
}

// tablePlan is the compiled fast path for one table's assertion cluster.
// Immutable after compile; shared read-only across shards.
type tablePlan struct {
	ts     *spec.TableSchema
	nSlots int
	// maxRegs sizes the scratch register file for the largest program.
	maxRegs int
	binds   []slotBind
	actions map[string]*actPlan
	// progs parallels cp.byTable[table]: progs[ci][ti] is the lowered
	// program for the ci-th cluster's ti-th forbidden term, or nil when
	// that condition scans shadow state (see linked) or stays slow.
	progs [][]*smt.Program
	// linked parallels progs: linked[ci][ti] is non-nil when the
	// condition lowered but must be re-run per shadow entry of the
	// cluster's other table. progs and linked are never both set.
	linked [][]*linkedPlan
	// slowGuards parallels progs: pre-filters for conditions that stayed
	// on the term-DAG path (e.g. >64-bit vectors). Each guard is an
	// implied conjunct over update-bound variables only; any false guard
	// decides the condition (not violated) without building an env.
	// All-true guards prove nothing and defer to the slow evaluator.
	slowGuards [][][]*smt.Program
	hasFast    bool
	// needsEnv is true when some condition stayed slow. Envs are built
	// lazily at the first slow evaluation; this is diagnostic.
	needsEnv bool
}

// slotKey identifies one register slot. The same variable name may be
// declared at different sorts by different assertions; each (name, sort)
// pair gets its own slot with its own normalization width.
type slotKey struct {
	name string
	sort smt.Sort
}

// planner accumulates slot assignments while compiling one table's plan.
type planner struct {
	tp    *tablePlan
	slots map[slotKey]int
	// owner records which scan binder a slot belongs to (absent/nil =
	// bound by the update itself). A program may only read scan slots of
	// its own cluster's binder: a different cluster's scan never binds
	// for this condition on the slow path, so its variables read zero.
	owner map[int]*scanBinder
	// others caches the scan binder per linked table, so every condition
	// scanning that table shares one slot region.
	others map[string]*scanBinder
}

// compilePlans builds a tablePlan for every clustered table. It never
// fails: conditions that cannot lower simply stay on the slow path.
func (cp *Compiled) compilePlans() {
	cp.plans = map[string]*tablePlan{}
	for table, cas := range cp.byTable {
		ts := cp.file.Table(table)
		if ts == nil {
			continue
		}
		pl := &planner{
			tp:     &tablePlan{ts: ts, actions: map[string]*actPlan{}},
			slots:  map[slotKey]int{},
			owner:  map[int]*scanBinder{},
			others: map[string]*scanBinder{},
		}
		// Last occurrence wins, like bindEntry's scan over ts.Actions.
		for _, a := range ts.Actions {
			pl.tp.actions[a.Name] = &actPlan{index: a.Index}
		}
		// Pass one: classify every condition, fixing the slot layout.
		scans := make([][]*scanBinder, len(cas))
		for ci, ca := range cas {
			scans[ci] = make([]*scanBinder, len(ca.terms))
			for ti, term := range ca.terms {
				scans[ci][ti] = pl.classifyCondition(ca, term)
			}
		}
		// Pass two: lower, with temporaries above the final slot count.
		pl.tp.maxRegs = pl.tp.nSlots
		for ci, ca := range cas {
			progs := make([]*smt.Program, len(ca.terms))
			lps := make([]*linkedPlan, len(ca.terms))
			sgs := make([][]*smt.Program, len(ca.terms))
			for ti, term := range ca.terms {
				sb := scans[ci][ti]
				prog := pl.lowerCondition(term, sb)
				switch {
				case prog == nil:
					pl.tp.needsEnv = true
					sgs[ti] = pl.lowerGuards(term, sb)
					if len(sgs[ti]) > 0 {
						pl.tp.hasFast = true
					}
				case sb != nil:
					lps[ti] = &linkedPlan{prog: prog, sb: sb, guards: pl.lowerGuards(term, sb)}
					pl.tp.hasFast = true
				default:
					progs[ti] = prog
					pl.tp.hasFast = true
				}
			}
			pl.tp.progs = append(pl.tp.progs, progs)
			pl.tp.linked = append(pl.tp.linked, lps)
			pl.tp.slowGuards = append(pl.tp.slowGuards, sgs)
		}
		cp.plans[table] = pl.tp
		if pl.tp.maxRegs > cp.maxRegs {
			cp.maxRegs = pl.tp.maxRegs
		}
	}
}

// classifyCondition allocates register slots for one forbidden term's
// bindable variables and decides its evaluation shape. Variables the
// updated table binds get per-update slots; variables the cluster's
// other table binds get slots in that table's scan region (making the
// condition a per-shadow-entry scan, reported by the returned binder);
// everything else is bound on neither tier and lowers to the constant
// zero, mirroring the evaluator's unbound-variable convention.
func (pl *planner) classifyCondition(ca *compiledAssertion, term *smt.Term) *scanBinder {
	other := pl.otherTable(ca)
	var sb *scanBinder
	for _, vt := range term.Vars(nil) {
		if pl.assignSlot(vt.Name(), vt.Sort()) {
			continue
		}
		if other == nil {
			continue
		}
		cand := pl.scanner(other)
		if pl.assignScanSlot(cand, vt.Name(), vt.Sort()) {
			sb = cand
		}
	}
	return sb
}

// otherTable resolves the cluster table evalCondition would scan shadow
// entries of: the assertion's primary or linked table, whichever is not
// the updated one (nil for single-table assertions).
func (pl *planner) otherTable(ca *compiledAssertion) *spec.TableSchema {
	if ca.primary != pl.tp.ts {
		return ca.primary
	}
	if ca.linked != nil && ca.linked != pl.tp.ts {
		return ca.linked
	}
	return nil
}

// scanner returns the (shared) scan binder for one linked table,
// creating it on first use.
func (pl *planner) scanner(other *spec.TableSchema) *scanBinder {
	if sb, ok := pl.others[other.Name]; ok {
		return sb
	}
	sb := &scanBinder{ts: other, actions: map[string]*actPlan{}}
	for _, a := range other.Actions {
		sb.actions[a.Name] = &actPlan{index: a.Index}
	}
	pl.others[other.Name] = sb
	return sb
}

// assignSlot allocates (once) the register for a variable the update
// itself binds, reporting whether the name is update-bindable at all.
func (pl *planner) assignSlot(name string, s smt.Sort) bool {
	b, okB := alwaysBound(pl.tp.ts, name)
	act, pi, okP := actionParam(pl.tp.ts, name)
	if !okB && !okP {
		return false
	}
	k := slotKey{name: name, sort: s}
	if _, ok := pl.slots[k]; ok {
		return true
	}
	if okB {
		b.width = s.Width
		b.slot = pl.alloc(k)
		pl.tp.binds = append(pl.tp.binds, b)
		return true
	}
	slot := pl.alloc(k)
	ap := pl.tp.actions[act.Name]
	ap.params = append(ap.params, paramBind{pi: pi, width: s.Width, slot: slot})
	return true
}

// assignScanSlot allocates (once) the register for a variable the
// scanned table's entries bind, mirroring bindEntry for that table. It
// reports whether the name is bindable by that table at all (if so, the
// condition must scan, even when the slot was allocated earlier by
// another condition).
func (pl *planner) assignScanSlot(sb *scanBinder, name string, s smt.Sort) bool {
	b, okB := alwaysBound(sb.ts, name)
	act, pi, okP := actionParam(sb.ts, name)
	if !okB && !okP {
		return false
	}
	k := slotKey{name: name, sort: s}
	if _, ok := pl.slots[k]; ok {
		return true
	}
	var slot int
	if okB {
		b.width = s.Width
		b.slot = pl.alloc(k)
		sb.binds = append(sb.binds, b)
		slot = b.slot
	} else {
		slot = pl.alloc(k)
		ap := sb.actions[act.Name]
		ap.params = append(ap.params, paramBind{pi: pi, width: s.Width, slot: slot})
	}
	pl.owner[slot] = sb
	sb.slots = append(sb.slots, slot)
	return true
}

func (pl *planner) alloc(k slotKey) int {
	r := pl.tp.nSlots
	pl.tp.nSlots++
	pl.slots[k] = r
	return r
}

// lowerGuards extracts a condition's pre-filter: the top-level
// conjuncts of the term that mention no scanned-table variable, each
// lowered to its own program. Every conjunct is implied by the full
// term and reads only update-bound (or never-bound) variables, whose
// values are the same under every shadow completion — so a false guard
// under the update's bindings alone proves the condition cannot be
// violated, skipping the shadow scan (linked conditions) or the env
// build and term-DAG walk (slow conditions). Conjuncts that fail to
// lower are simply dropped — guards are an optimization, never an
// authority.
func (pl *planner) lowerGuards(term *smt.Term, sb *scanBinder) []*smt.Program {
	var guards []*smt.Program
	for _, conj := range conjuncts(term, nil) {
		if sb != nil && mentionsTable(conj, sb.ts) {
			continue
		}
		if g := pl.lowerCondition(conj, sb); g != nil {
			guards = append(guards, g)
		}
	}
	return guards
}

// conjuncts flattens nested top-level ANDs into dst.
func conjuncts(t *smt.Term, dst []*smt.Term) []*smt.Term {
	if t.Op() != smt.OpAnd {
		return append(dst, t)
	}
	for _, a := range t.Args() {
		dst = conjuncts(a, dst)
	}
	return dst
}

// mentionsTable reports whether t reads any variable the given table's
// entries bind (the set a shadow scan of that table rebinds).
func mentionsTable(t *smt.Term, ts *spec.TableSchema) bool {
	for _, vt := range t.Vars(nil) {
		if _, ok := alwaysBound(ts, vt.Name()); ok {
			return true
		}
		if _, _, ok := actionParam(ts, vt.Name()); ok {
			return true
		}
	}
	return false
}

// lowerCondition lowers one term for a condition whose scan binder is
// sb (nil when the condition scans nothing), returning nil (slow path)
// if it exceeds the register machine's width. The slot layout is
// frozen: variables resolve through the map — update slots always,
// scan slots only when owned by this condition's own binder (another
// cluster's scan never binds for this condition, so its variables read
// zero) — or are never bound and lower to zero.
func (pl *planner) lowerCondition(term *smt.Term, sb *scanBinder) *smt.Program {
	prog, err := smt.LowerBool(term, pl.tp.nSlots, func(name string, s smt.Sort) (int, error) {
		if r, ok := pl.slots[slotKey{name: name, sort: s}]; ok {
			if o := pl.owner[r]; o == nil || o == sb {
				return r, nil
			}
		}
		return -1, nil
	})
	if err != nil {
		return nil
	}
	if prog.NumRegs() > pl.tp.maxRegs {
		pl.tp.maxRegs = prog.NumRegs()
	}
	return prog
}

// alwaysBound reports whether bindEntry binds name for every entry of
// ts, and with which binding. (Arity-checked entries bind every key, so
// keys and ternary/lpm masks are unconditionally bound.)
func alwaysBound(ts *spec.TableSchema, name string) (slotBind, bool) {
	rest, ok := cutPrefix(name, ts.Prefix+".")
	if !ok {
		return slotBind{}, false
	}
	switch rest {
	case "hit":
		return slotBind{kind: bindHit}, true
	case "action_run":
		return slotBind{kind: bindActionRun}, true
	}
	for j, k := range ts.Keys {
		if rest == "key"+strconv.Itoa(j) {
			return slotBind{kind: bindKey, j: j, keyWidth: k.Width}, true
		}
		if rest == "mask"+strconv.Itoa(j) {
			switch k.MatchKind {
			case "ternary":
				return slotBind{kind: bindMaskTernary, j: j, keyWidth: k.Width}, true
			case "lpm":
				return slotBind{kind: bindMaskLpm, j: j, keyWidth: k.Width}, true
			}
			return slotBind{}, false // exact-match mask: never bound
		}
	}
	return slotBind{}, false
}

// actionParam resolves name as <prefix>.<action>.<param> of ts, using
// the same last-occurrence action resolution as bindEntry.
func actionParam(ts *spec.TableSchema, name string) (*spec.ActionSchema, int, bool) {
	rest, ok := cutPrefix(name, ts.Prefix+".")
	if !ok {
		return nil, 0, false
	}
	var match *spec.ActionSchema
	pi := 0
	for _, a := range ts.Actions {
		sub, ok := cutPrefix(rest, a.Name+".")
		if !ok {
			continue
		}
		for i, p := range a.Params {
			if p.Name == sub {
				match, pi = a, i
			}
		}
	}
	return match, pi, match != nil
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) <= len(prefix) || s[:len(prefix)] != prefix {
		return "", false
	}
	return s[len(prefix):], true
}

// bind fills the slot region of regs from the update's entry: the
// fast-path equivalent of bindEntry + smt.Eval's env normalization.
// Allocation-free for widths ≤ 64.
func (tp *tablePlan) bind(regs []uint64, e *dataplane.Entry) {
	for i := 0; i < tp.nSlots; i++ {
		regs[i] = 0
	}
	bindSlots(regs, tp.binds, tp.actions, e)
}

// bind rebinds the scanned table's registers for one shadow entry.
func (sb *scanBinder) bind(regs []uint64, e *dataplane.Entry) {
	sb.clear(regs)
	bindSlots(regs, sb.binds, sb.actions, e)
}

// clear zeroes the scanned table's registers: with no entry bound,
// every variable of that table — including hit — reads as zero/false,
// exactly the slow path's unbound-variable convention.
func (sb *scanBinder) clear(regs []uint64) {
	for _, s := range sb.slots {
		regs[s] = 0
	}
}

// bindSlots fills one entry's slot bindings over a pre-zeroed region,
// shared by the per-update binder and shadow scans. Keys past the
// entry's arity stay unbound (zero), like bindEntry's early break.
func bindSlots(regs []uint64, binds []slotBind, actions map[string]*actPlan, e *dataplane.Entry) {
	ap := actions[e.Action]
	for _, b := range binds {
		var v uint64
		switch b.kind {
		case bindHit:
			v = normU64(1, b.width)
		case bindActionRun:
			idx := 0
			if ap != nil {
				idx = ap.index
			}
			v = normU64(uint64(int64(idx)), b.width)
		case bindKey:
			if b.j >= len(e.Keys) {
				continue
			}
			v = normBig(e.Keys[b.j].Value, b.width)
		case bindMaskTernary:
			if b.j >= len(e.Keys) {
				continue
			}
			m := e.Keys[b.j].Mask
			if m == nil {
				v = onesNorm(b.keyWidth, b.width)
			} else {
				v = normBig(m, b.width)
			}
		case bindMaskLpm:
			if b.j >= len(e.Keys) {
				continue
			}
			plen := e.Keys[b.j].PrefixLen
			if plen < 0 {
				plen = b.keyWidth
			}
			v = prefixMaskNorm(b.keyWidth, plen, b.width)
		}
		regs[b.slot] = v
	}
	if ap != nil {
		for _, pb := range ap.params {
			var v uint64
			if pb.pi < len(e.Params) {
				v = normBig(e.Params[pb.pi], pb.width)
			}
			regs[pb.slot] = v
		}
	}
}

// guardsRefute reports whether any guard — an implied conjunct over
// update-bound variables — evaluates false, proving the full condition
// cannot be violated by any shadow completion.
func guardsRefute(guards []*smt.Program, regs []uint64) bool {
	for _, g := range guards {
		if !g.Eval(regs) {
			return true
		}
	}
	return false
}

// evalLinkedFast is the bytecode tier of evalCondition's shadow
// resolution (the paper's step c): the condition is violated if ANY
// entry of the scanned table completes the forbidden shape. Instead of
// cloning an env map and re-walking the term DAG per entry, it rebinds
// the scanned table's register slots and re-runs the program.
func (s *Shim) evalLinkedFast(lp *linkedPlan, regs []uint64) bool {
	if guardsRefute(lp.guards, regs) {
		return false
	}
	entries := s.shadow[lp.sb.ts.Name]
	if len(entries) == 0 {
		// No candidate entry can complete the forbidden shape; the
		// scanned table's hit variable reads false.
		lp.sb.clear(regs)
		return lp.prog.Eval(regs)
	}
	for _, e := range entries {
		lp.sb.bind(regs, e)
		if lp.prog.Eval(regs) {
			return true
		}
	}
	return false
}

// normU64 reduces an in-register value to a sort: width 0 (bool) is
// truthiness, width w is mod 2^w. Mirrors smt.Eval's env-read
// normalization for values that already fit a word.
func normU64(v uint64, width int) uint64 {
	if width == 0 {
		if v != 0 {
			return 1
		}
		return 0
	}
	if width < 64 {
		return v & ((uint64(1) << uint(width)) - 1)
	}
	return v
}

// normBig reduces a big value to a sort the way smt.Eval would at the
// env boundary. Slot widths never exceed 64, so only the value's low 64
// bits matter: |v| mod 2^64 read straight from the magnitude words,
// negated (wrapping) for negative v — the same [0, 2^w) residue the
// evaluator's Euclidean big.Int.Mod produces, without allocating.
func normBig(v *big.Int, width int) uint64 {
	if v.Sign() >= 0 && v.BitLen() <= 64 {
		return normU64(v.Uint64(), width)
	}
	lo := low64(v)
	if v.Sign() < 0 {
		lo = -lo
	}
	return normU64(lo, width)
}

// wordBits is the size of a big.Word (32 or 64 depending on platform).
const wordBits = 32 << (^big.Word(0) >> 63)

// low64 is |v| mod 2^64, assembled from the magnitude's low words.
func low64(v *big.Int) uint64 {
	var lo uint64
	for i, w := range v.Bits() {
		shift := uint(i * wordBits)
		if shift >= 64 {
			break
		}
		lo |= uint64(w) << shift
	}
	return lo
}

// onesNorm is ones(keyWidth) reduced to the slot width.
func onesNorm(keyWidth, width int) uint64 {
	if keyWidth >= 64 {
		return normU64(^uint64(0), width)
	}
	return normU64((uint64(1)<<uint(keyWidth))-1, width)
}

// prefixMaskNorm is prefixMask(keyWidth, plen) reduced to the slot
// width: plen one bits above keyWidth-plen zero bits.
func prefixMaskNorm(keyWidth, plen, width int) uint64 {
	if plen >= keyWidth {
		return onesNorm(keyWidth, width)
	}
	zeros := keyWidth - plen
	if zeros >= 64 {
		return 0
	}
	var m uint64
	if plen >= 64-zeros {
		// The one-run extends past bit 63; only its low bits survive in
		// a 64-bit word, which is all a ≤64-bit slot can see.
		m = ^uint64(0) << uint(zeros)
	} else {
		m = ((uint64(1) << uint(plen)) - 1) << uint(zeros)
	}
	return normU64(m, width)
}
