package shim

import "bf4/internal/obs"

// shimObs holds retained metric handles. Every field stays nil until
// SetObs attaches a registry, and all obs types are nil-safe, so with
// observability off the hot path pays one nil-receiver method call per
// site — the existing counters and latency reservoirs are untouched
// either way (they feed Stats and the p4runtime status RPC).
type shimObs struct {
	validated        *obs.Counter
	rejected         *obs.Counter
	batches          *obs.Counter
	batchRejected    *obs.Counter
	journalAppends   *obs.Counter
	checkpoints      *obs.Counter
	dedupHits        *obs.Counter
	journalTornTails *obs.Counter
	fastpathHits     *obs.Counter
	slowpathHits     *obs.Counter
	shadowEntries    *obs.Gauge
	updateNs         *obs.Histogram
	assertNs         *obs.Histogram
}

// SetObs attaches a metrics registry; nil detaches. The shim publishes:
//
//	bf4_shim_updates_validated_total  updates that entered validation
//	bf4_shim_updates_rejected_total   updates refused (any reason)
//	bf4_shim_batches_total            atomic batches attempted
//	bf4_shim_batches_rejected_total   batches rolled back
//	bf4_shim_journal_appends_total    journal records fsynced
//	bf4_shim_checkpoints_total        journal compactions
//	bf4_shim_dedup_hits_total         idempotent retries short-circuited
//	bf4_shim_journal_torn_tails_total torn journal tails truncated at recovery
//	bf4_shim_fastpath_total           assertion evaluations on the bytecode fast path
//	bf4_shim_slowpath_total           assertion evaluations on the term-DAG slow path
//	bf4_shim_shadow_entries           live shadow entries across tables
//	bf4_shim_update_ns                whole-update validation latency
//	bf4_shim_assertion_ns             single-assertion evaluation latency
func (s *Shim) SetObs(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reg == nil {
		s.obs = shimObs{}
		return
	}
	s.obs = shimObs{
		validated:        reg.Counter("bf4_shim_updates_validated_total"),
		rejected:         reg.Counter("bf4_shim_updates_rejected_total"),
		batches:          reg.Counter("bf4_shim_batches_total"),
		batchRejected:    reg.Counter("bf4_shim_batches_rejected_total"),
		journalAppends:   reg.Counter("bf4_shim_journal_appends_total"),
		checkpoints:      reg.Counter("bf4_shim_checkpoints_total"),
		dedupHits:        reg.Counter("bf4_shim_dedup_hits_total"),
		journalTornTails: reg.Counter("bf4_shim_journal_torn_tails_total"),
		fastpathHits:     reg.Counter("bf4_shim_fastpath_total"),
		slowpathHits:     reg.Counter("bf4_shim_slowpath_total"),
		shadowEntries:    reg.Gauge("bf4_shim_shadow_entries"),
		updateNs:         reg.Histogram("bf4_shim_update_ns", obs.DurationBuckets),
		assertNs:         reg.Histogram("bf4_shim_assertion_ns", obs.DurationBuckets),
	}
}
