package shim

import (
	"errors"
	"testing"

	"bf4/internal/dataplane"
	"bf4/internal/spec"
)

// tinySpec is a hand-written two-table spec with one single-table and
// one linked-table assertion, cheap enough for protocol-level tests (no
// compiler run). Table t forbids action "act" (index 2) with key0 == 0;
// a linked assertion forbids t.key0 == 5 whenever u holds key0 == 7.
func tinySpec() *spec.File {
	return &spec.File{
		Program: "tiny",
		Tables: []*spec.TableSchema{
			{
				Name:   "t",
				Prefix: "pcn_t$0",
				Keys:   []spec.KeySchema{{Path: "x", MatchKind: "exact", Width: 8}},
				Actions: []*spec.ActionSchema{
					{Name: "NoAction", Index: 0},
					{Name: "bad", Index: 1, Buggy: true},
					{Name: "act", Index: 2},
				},
				Default: "NoAction",
			},
			{
				Name:   "u",
				Prefix: "pcn_u$0",
				Keys:   []spec.KeySchema{{Path: "y", MatchKind: "exact", Width: 8}},
				Actions: []*spec.ActionSchema{
					{Name: "NoAction", Index: 0},
				},
				Default: "NoAction",
			},
		},
		Assertions: []*spec.Assertion{
			{
				Table:  "t",
				Source: "test-single",
				Forbidden: []string{
					"(and (= |pcn_t$0.action_run| (_ bv2 8)) (= |pcn_t$0.key0| (_ bv0 8)))",
				},
				Vars: map[string]int{"pcn_t$0.action_run": 8, "pcn_t$0.key0": 8},
			},
			{
				Table:  "t",
				Linked: "u",
				Source: "test-linked",
				Forbidden: []string{
					"(and (= |pcn_t$0.key0| (_ bv5 8)) |pcn_u$0.hit| (= |pcn_u$0.key0| (_ bv7 8)))",
				},
				Vars: map[string]int{"pcn_t$0.key0": 8, "pcn_u$0.hit": 0, "pcn_u$0.key0": 8},
			},
		},
	}
}

func tinyShim(t *testing.T) *Shim {
	t.Helper()
	sh, err := New(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func insertT(key int64, action string) *Update {
	return &Update{Table: "t", Entry: &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewExact(key)},
		Action: action,
	}}
}

func insertU(key int64) *Update {
	return &Update{Table: "u", Entry: &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewExact(key)},
		Action: "NoAction",
	}}
}

func TestBatchAllOrNothing(t *testing.T) {
	sh := tinyShim(t)
	err := sh.ApplyBatch([]*Update{
		insertT(1, "NoAction"),
		insertT(2, "NoAction"),
		insertT(0, "act"), // violates the single-table assertion
	})
	if err == nil {
		t.Fatal("batch with a forbidden update accepted")
	}
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 2 || be.Size != 3 {
		t.Fatalf("unexpected batch error: %v", err)
	}
	var re *RejectionError
	if !errors.As(err, &re) {
		t.Fatalf("batch error does not wrap a rejection: %v", err)
	}
	if sh.ShadowSize("t") != 0 {
		t.Fatalf("rolled-back batch left %d entries", sh.ShadowSize("t"))
	}

	// The same batch without the offender commits atomically.
	if err := sh.ApplyBatch([]*Update{insertT(1, "NoAction"), insertT(2, "NoAction")}); err != nil {
		t.Fatal(err)
	}
	if sh.ShadowSize("t") != 2 {
		t.Fatalf("shadow size = %d", sh.ShadowSize("t"))
	}
}

func TestBatchSeesEarlierBatchUpdates(t *testing.T) {
	sh := tinyShim(t)
	// u:7 then t:5 violates the linked assertion — and the violation is
	// only visible if t:5 is validated against the batch's own u:7.
	err := sh.ApplyBatch([]*Update{insertU(7), insertT(5, "NoAction")})
	if err == nil {
		t.Fatal("linked violation across a batch accepted")
	}
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("unexpected error: %v", err)
	}
	if sh.ShadowSize("u") != 0 || sh.ShadowSize("t") != 0 {
		t.Fatal("rollback incomplete")
	}
	// Without u:7 in the state, t:5 is fine.
	if err := sh.ApplyBatch([]*Update{insertT(5, "NoAction")}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchRollsBackDefaults(t *testing.T) {
	sh := tinyShim(t)
	err := sh.ApplyBatch([]*Update{
		{Table: "t", SetDefault: &dataplane.DefaultAction{Action: "NoAction"}},
		insertT(0, "act"), // rejected
	})
	if err == nil {
		t.Fatal("batch accepted")
	}
	if d := sh.Snapshot().Defaults["t"]; d != nil {
		t.Fatalf("default survived rollback: %+v", d)
	}
	// A clean batch installs the default into the shadow snapshot.
	if err := sh.ApplyBatch([]*Update{
		{Table: "t", SetDefault: &dataplane.DefaultAction{Action: "NoAction"}},
	}); err != nil {
		t.Fatal(err)
	}
	if d := sh.Snapshot().Defaults["t"]; d == nil || d.Action != "NoAction" {
		t.Fatalf("default not recorded: %+v", d)
	}
}

func TestApplyWithKeyDedup(t *testing.T) {
	sh := tinyShim(t)
	if err := sh.ApplyWithKey("c1:1", insertT(9, "NoAction")); err != nil {
		t.Fatal(err)
	}
	// A retry of the same request ID must not double-apply, even if the
	// (buggy) retransmission carries different bytes.
	if err := sh.ApplyWithKey("c1:1", insertT(9, "NoAction")); err != nil {
		t.Fatal(err)
	}
	if sh.ShadowSize("t") != 1 {
		t.Fatalf("retry double-applied: %d entries", sh.ShadowSize("t"))
	}

	// Rejected outcomes replay too.
	err1 := sh.ApplyWithKey("c1:2", insertT(0, "act"))
	if err1 == nil {
		t.Fatal("forbidden update accepted")
	}
	err2 := sh.ApplyWithKey("c1:2", insertT(0, "act"))
	if err2 == nil || err2.Error() != err1.Error() {
		t.Fatalf("replayed outcome differs: %v vs %v", err1, err2)
	}
	st := sh.Stats()
	// The replay is served from the window: validation ran twice total
	// (one accept + one reject), not three times.
	if st.Validated != 2 || st.Rejected != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDedupWindowEviction(t *testing.T) {
	sh := tinyShim(t)
	sh.SetDedupWindow(2)
	for i, key := range []string{"a", "b", "c"} {
		if err := sh.ApplyWithKey(key, insertT(int64(10+i), "NoAction")); err != nil {
			t.Fatal(err)
		}
	}
	// "a" has been evicted: replaying it re-applies (the window is a
	// bounded guarantee, not an unbounded log).
	if err := sh.ApplyWithKey("a", insertT(10, "NoAction")); err != nil {
		t.Fatal(err)
	}
	if sh.ShadowSize("t") != 4 {
		t.Fatalf("shadow size = %d, want 4", sh.ShadowSize("t"))
	}
	// "c" is still in the window.
	if err := sh.ApplyWithKey("c", insertT(12, "NoAction")); err != nil {
		t.Fatal(err)
	}
	if sh.ShadowSize("t") != 4 {
		t.Fatal("windowed key re-applied")
	}
}

func TestReservoirBounds(t *testing.T) {
	r := newReservoir(10)
	for i := int64(1); i <= 100; i++ {
		r.add(i)
	}
	st := r.snapshot()
	if st.Count != 100 || st.MaxNs != 100 {
		t.Fatalf("aggregates: %+v", st)
	}
	if len(st.SampleNs) != 10 {
		t.Fatalf("window size %d", len(st.SampleNs))
	}
	for i, v := range st.SampleNs {
		if v != int64(91+i) {
			t.Fatalf("window[%d] = %d, want %d (most recent, oldest first)", i, v, 91+i)
		}
	}
	if st.MeanNs != 50.5 {
		t.Fatalf("mean = %v", st.MeanNs)
	}
}
