package shim

import (
	"fmt"

	"bf4/internal/dataplane"
)

// BatchError reports which update of an atomic batch was rejected. The
// whole batch is rolled back: no update in it reached the shadow state.
type BatchError struct {
	// Index is the position of the offending update within the batch.
	Index int
	// Size is the batch length.
	Size int
	// Err is the underlying rejection (usually a *RejectionError).
	Err error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("shim: batch update %d/%d rejected (batch rolled back): %v", e.Index+1, e.Size, e.Err)
}

// Unwrap exposes the underlying rejection to errors.Is/As.
func (e *BatchError) Unwrap() error { return e.Err }

// ApplyBatch validates a bundle of updates transactionally: each update
// is checked against the shadow state including the batch's earlier
// updates, and if any is rejected the whole batch is rolled back —
// all-or-nothing, matching how controllers push rule bundles.
func (s *Shim) ApplyBatch(updates []*Update) error {
	return s.ApplyBatchWithKey("", updates)
}

// ApplyBatchWithKey is ApplyBatch with an idempotency key (see
// ApplyWithKey).
func (s *Shim) ApplyBatchWithKey(key string, updates []*Update) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err, seen := s.lookupApplied(key); seen {
		s.obs.dedupHits.Inc()
		return err
	}
	s.obs.batches.Inc()
	rollback, err := s.applyBatchLocked(updates)
	if err == nil {
		if jerr := s.journalLocked(key, updates); jerr != nil {
			rollback()
			err = jerr
			s.obs.batchRejected.Inc()
		} else {
			// Outcome before checkpoint: a checkpoint triggered by this
			// batch must persist its key in the snapshot's dedup window
			// (the journal record it would replay from is being folded
			// away).
			s.recordOutcome(key, nil)
			return s.maybeCheckpointLocked()
		}
	} else {
		s.obs.batchRejected.Inc()
	}
	s.recordOutcome(key, err)
	return err
}

// applyBatchLocked validates and commits the batch; on rejection it
// rolls back internally and returns the error. On success the returned
// closure undoes the batch (used if journaling fails).
func (s *Shim) applyBatchLocked(updates []*Update) (func(), error) {
	// Record rollback points: shadow lengths and prior defaults for
	// every table the batch touches.
	lengths := map[string]int{}
	priorDefaults := map[string]*dataplane.DefaultAction{}
	hadDefault := map[string]bool{}
	for _, u := range updates {
		if _, ok := lengths[u.Table]; !ok {
			lengths[u.Table] = len(s.shadow[u.Table])
			d, ok := s.defaults[u.Table]
			priorDefaults[u.Table], hadDefault[u.Table] = d, ok
		}
	}
	rollback := func() {
		for t, n := range lengths {
			s.obs.shadowEntries.Add(int64(n - len(s.shadow[t])))
			s.shadow[t] = s.shadow[t][:n]
		}
		for t := range priorDefaults {
			if hadDefault[t] {
				s.defaults[t] = priorDefaults[t]
			} else {
				delete(s.defaults, t)
			}
		}
	}
	for i, u := range updates {
		if err := s.validateLocked(u); err != nil {
			rollback()
			return nil, &BatchError{Index: i, Size: len(updates), Err: err}
		}
		s.commitLocked(u)
	}
	return rollback, nil
}
