package shim

// LatencyStats summarizes a latency stream with bounded memory: running
// count/mean/max over the full stream, plus a bounded window of the most
// recent samples for percentile estimation. This replaces the unbounded
// per-sample slices that would grow without limit in a long-running shim.
type LatencyStats struct {
	// Count is the total number of samples observed.
	Count int64
	// MeanNs is the running mean over all samples.
	MeanNs float64
	// MaxNs is the largest sample observed.
	MaxNs int64
	// SampleNs holds the most recent samples, oldest first, capped at
	// the shim's reservoir capacity (see SetStatsCap). While Count is at
	// or below the capacity it is the complete stream.
	SampleNs []int64
}

// reservoir is a fixed-capacity ring of the most recent samples plus
// running aggregates. Deterministic: the retained window depends only on
// the sample order, never on randomness.
type reservoir struct {
	cap   int
	buf   []int64
	head  int // next write position once the ring is full
	count int64
	sum   float64
	max   int64
}

func newReservoir(capacity int) reservoir {
	if capacity <= 0 {
		capacity = 1
	}
	// Preallocate the ring: growing by append would re-copy and re-zero
	// the buffer a dozen times per shim, which dominates short-lived
	// shims (one is created per controller session in the scale bench).
	return reservoir{cap: capacity, buf: make([]int64, 0, capacity)}
}

func (r *reservoir) add(ns int64) {
	r.count++
	r.sum += float64(ns)
	if ns > r.max {
		r.max = ns
	}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ns)
		return
	}
	r.buf[r.head] = ns
	r.head = (r.head + 1) % r.cap
}

// setCap resizes the reservoir, keeping the most recent samples that
// fit. Aggregates (count/mean/max) are unaffected.
func (r *reservoir) setCap(capacity int) {
	if capacity <= 0 {
		capacity = 1
	}
	lin := r.snapshot().SampleNs
	if len(lin) > capacity {
		lin = lin[len(lin)-capacity:]
	}
	r.cap = capacity
	r.buf = lin
	r.head = 0
}

// snapshot copies the reservoir out as LatencyStats, samples oldest
// first.
func (r *reservoir) snapshot() LatencyStats {
	st := LatencyStats{Count: r.count, MaxNs: r.max}
	if r.count > 0 {
		st.MeanNs = r.sum / float64(r.count)
	}
	if len(r.buf) < r.cap {
		st.SampleNs = append([]int64(nil), r.buf...)
		return st
	}
	st.SampleNs = make([]int64, 0, len(r.buf))
	st.SampleNs = append(st.SampleNs, r.buf[r.head:]...)
	st.SampleNs = append(st.SampleNs, r.buf[:r.head]...)
	return st
}
