package shim

import (
	"bytes"
	"math/big"
	"os"
	"path/filepath"
	"testing"

	"bf4/internal/dataplane"
)

// applyWorkload drives a mixed workload (inserts, a default, a batch,
// one rejection) against sh, using dedup keys like a real controller.
func applyWorkload(t *testing.T, sh *Shim) {
	t.Helper()
	for i := int64(0); i < 5; i++ {
		if err := sh.ApplyWithKey("c:"+string(rune('a'+i)), insertT(20+i, "NoAction")); err != nil {
			t.Fatal(err)
		}
	}
	if err := sh.ApplyWithKey("c:def", &Update{
		Table:      "t",
		SetDefault: &dataplane.DefaultAction{Action: "NoAction"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sh.ApplyBatchWithKey("c:batch", []*Update{insertU(1), insertU(2)}); err != nil {
		t.Fatal(err)
	}
	if err := sh.ApplyWithKey("c:rej", insertT(0, "act")); err == nil {
		t.Fatal("forbidden update accepted")
	}
}

func TestCrashRecoveryWithoutReplay(t *testing.T) {
	dir := t.TempDir()
	sh, err := New(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	applyWorkload(t, sh)
	want, err := sh.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Simulate kill -9: no Close, no Checkpoint — the journal alone must
	// carry the state.

	sh2, err := New(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh2.AttachStore(st2); err != nil {
		t.Fatal(err)
	}
	got, err := sh2.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("recovered state differs:\nwant %s\ngot  %s", want, got)
	}

	// The dedup window survived: a post-restart retry of an applied
	// request is not double-applied.
	before := sh2.ShadowSize("t")
	if err := sh2.ApplyWithKey("c:a", insertT(20, "NoAction")); err != nil {
		t.Fatal(err)
	}
	if sh2.ShadowSize("t") != before {
		t.Fatal("retry after restart double-applied")
	}
}

func TestCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	sh, err := New(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.CompactEvery = 3
	if err := sh.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		if err := sh.Apply(insertT(30+i, "NoAction")); err != nil {
			t.Fatal(err)
		}
	}
	// 8 records at CompactEvery=3 → at least two compactions; the
	// snapshot exists and the journal holds < 3 records.
	if _, err := os.Stat(st.SnapshotPath()); err != nil {
		t.Fatalf("no snapshot after compaction: %v", err)
	}
	if st.recs >= 3 {
		t.Fatalf("journal not truncated: %d records", st.recs)
	}
	want, _ := sh.MarshalSnapshot()

	sh2, _ := New(tinySpec())
	st2, _ := OpenStore(dir)
	if err := sh2.AttachStore(st2); err != nil {
		t.Fatal(err)
	}
	got, _ := sh2.MarshalSnapshot()
	if !bytes.Equal(want, got) {
		t.Fatalf("compacted state differs:\nwant %s\ngot  %s", want, got)
	}
}

func TestTornJournalTailIsDropped(t *testing.T) {
	dir := t.TempDir()
	sh, _ := New(tinySpec())
	st, _ := OpenStore(dir)
	if err := sh.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if err := sh.Apply(insertT(1, "NoAction")); err != nil {
		t.Fatal(err)
	}
	want, _ := sh.MarshalSnapshot()

	// A crash mid-append leaves a torn, unacknowledged record.
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":2,"ops":[{"table":"t","en`)
	f.Close()

	sh2, _ := New(tinySpec())
	st2, _ := OpenStore(dir)
	if err := sh2.AttachStore(st2); err != nil {
		t.Fatal(err)
	}
	got, _ := sh2.MarshalSnapshot()
	if !bytes.Equal(want, got) {
		t.Fatalf("torn tail corrupted recovery:\nwant %s\ngot  %s", want, got)
	}
}

func TestExplicitCheckpointThenRestore(t *testing.T) {
	dir := t.TempDir()
	sh, _ := New(tinySpec())
	st, _ := OpenStore(dir)
	if err := sh.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	applyWorkload(t, sh)
	if err := sh.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// After a checkpoint the journal is empty; state restores from the
	// snapshot alone.
	data, err := os.ReadFile(st.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("journal not empty after checkpoint: %d bytes", len(data))
	}
	want, _ := sh.MarshalSnapshot()
	sh2, _ := New(tinySpec())
	st2, _ := OpenStore(dir)
	if err := sh2.AttachStore(st2); err != nil {
		t.Fatal(err)
	}
	got, _ := sh2.MarshalSnapshot()
	if !bytes.Equal(want, got) {
		t.Fatal("checkpoint-only restore differs")
	}
}

func TestMarshalSnapshotDeterministic(t *testing.T) {
	a, _ := New(tinySpec())
	b, _ := New(tinySpec())
	for _, sh := range []*Shim{a, b} {
		applyWorkload(t, sh)
	}
	sa, _ := a.MarshalSnapshot()
	sb, _ := b.MarshalSnapshot()
	if !bytes.Equal(sa, sb) {
		t.Fatal("same workload, different snapshots")
	}
}

func TestFullMaskSentinelSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	sh, _ := New(tinySpec())
	st, _ := OpenStore(dir)
	if err := sh.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	// Mask -1 is the dataplane's full-mask sentinel; it must round-trip
	// through the journal.
	u := &Update{Table: "t", Entry: &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{{Value: big.NewInt(3), Mask: big.NewInt(-1), PrefixLen: -1}},
		Action: "NoAction",
	}}
	if err := sh.Apply(u); err != nil {
		t.Fatal(err)
	}
	want, _ := sh.MarshalSnapshot()

	sh2, _ := New(tinySpec())
	st2, _ := OpenStore(dir)
	if err := sh2.AttachStore(st2); err != nil {
		t.Fatalf("restore with full-mask entry: %v", err)
	}
	got, _ := sh2.MarshalSnapshot()
	if !bytes.Equal(want, got) {
		t.Fatalf("full-mask entry corrupted:\nwant %s\ngot  %s", want, got)
	}
}
