package shim

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bf4/internal/obs"
)

func testFleet(t *testing.T, cfg FleetConfig) *Fleet {
	t.Helper()
	f := NewFleet(cfg)
	t.Cleanup(func() { f.Close() })
	return f
}

func TestAnnotationCacheVerifyOnce(t *testing.T) {
	reg := obs.NewRegistry()
	f := testFleet(t, FleetConfig{Obs: reg})
	const n = 8
	for i := 0; i < n; i++ {
		if _, err := f.AddShard(fmt.Sprintf("sw%d", i), tinySpec()); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.CounterValue("bf4_fleet_annotation_compiles_total"); got != 1 {
		t.Fatalf("%d switches compiled the program %d times, want exactly 1", n, got)
	}
	if got := reg.CounterValue("bf4_fleet_annotation_cache_hits_total"); got != n-1 {
		t.Fatalf("cache hits = %d, want %d", got, n-1)
	}
	// All shards share one Compiled and one fingerprint.
	fp := f.Shard("sw0").Fingerprint()
	for i := 1; i < n; i++ {
		sd := f.Shard(fmt.Sprintf("sw%d", i))
		if sd.Fingerprint() != fp {
			t.Fatalf("shard %d fingerprint %s != %s", i, sd.Fingerprint(), fp)
		}
		if sd.cp != f.Shard("sw0").cp {
			t.Fatalf("shard %d does not share the compiled annotation set", i)
		}
	}
	// Shards validate independently: a rejection on one leaves others
	// untouched.
	if err := f.Shard("sw0").Apply(insertT(0, "act")); err == nil {
		t.Fatal("forbidden update accepted")
	}
	if err := f.Shard("sw1").Apply(insertT(1, "NoAction")); err != nil {
		t.Fatal(err)
	}
	if f.Shard("sw1").ShadowSize("t") != 1 || f.Shard("sw2").ShadowSize("t") != 0 {
		t.Fatal("shard shadow state not isolated")
	}
}

func TestFleetKillRestorePreservesAckedUpdates(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	f := testFleet(t, FleetConfig{StateRoot: dir, Obs: reg, NoSync: true, CompactEvery: 7})
	sd, err := f.AddShard("sw0", tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	// Ack 20 updates, crashing (and restoring) the shard every few ops.
	acked := map[string]bool{}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("c:%d", i)
		if i%5 == 4 {
			sd.Kill()
			if err := f.RestoreNow("sw0"); err != nil {
				t.Fatal(err)
			}
		}
		if err := sd.ApplyWithKey(key, insertT(int64(i+1), "NoAction")); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		acked[key] = true
	}
	sd.Kill()
	if err := f.RestoreNow("sw0"); err != nil {
		t.Fatal(err)
	}
	if got := sd.ShadowSize("t"); got != len(acked) {
		t.Fatalf("after restores: %d entries, want %d acked", got, len(acked))
	}
	// Retries of every acked key are absorbed by the restored dedup
	// window — nothing double-applies across incarnations.
	for key := range acked {
		if err := sd.ApplyWithKey(key, insertT(99, "NoAction")); err != nil {
			t.Fatal(err)
		}
	}
	if got := sd.ShadowSize("t"); got != len(acked) {
		t.Fatalf("retries double-applied: %d entries, want %d", got, len(acked))
	}
	// Byte-identical to an oracle that saw the same acked sequence with
	// no faults.
	oracle := tinyShim(t)
	for i := 0; i < 20; i++ {
		if err := oracle.Apply(insertT(int64(i+1), "NoAction")); err != nil {
			t.Fatal(err)
		}
	}
	got, err := sd.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("restored state differs from oracle:\n%s\nvs\n%s", got, want)
	}
	if r := reg.CounterValue(obs.LabeledName("bf4_fleet_shard_restores_total", "shard", "sw0")); r < 4 {
		t.Fatalf("per-shard restore counter = %d, want >= 4", r)
	}
}

func TestFleetKillUnderConcurrentLoad(t *testing.T) {
	dir := t.TempDir()
	f := testFleet(t, FleetConfig{StateRoot: dir, NoSync: true, OpWait: 2 * time.Second})
	sd, err := f.AddShard("sw0", tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 40
	var mu sync.Mutex
	acked := map[string]bool{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d:%d", w, i)
				u := insertT(int64(w*perWorker+i+1), "NoAction")
				// Retry until a definitive outcome, like a real
				// controller: ShardDownError (and fencing artifacts) are
				// retryable with the same idempotency key.
				for {
					err := sd.ApplyWithKey(key, u)
					if err == nil {
						mu.Lock()
						acked[key] = true
						mu.Unlock()
						break
					}
					var sde *ShardDownError
					if !errors.As(err, &sde) {
						// Fencing artifact (journal closed mid-op):
						// ambiguous, retry resolves through dedup.
						time.Sleep(time.Millisecond)
						continue
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(w)
	}
	// Crash the shard repeatedly while the workers hammer it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < 6; k++ {
			time.Sleep(5 * time.Millisecond)
			sd.Kill()
			time.Sleep(2 * time.Millisecond)
			_ = sd.restore(false)
		}
	}()
	wg.Wait()
	<-done
	if !sd.Healthy() {
		if err := f.RestoreNow("sw0"); err != nil {
			t.Fatal(err)
		}
	}
	if len(acked) != workers*perWorker {
		t.Fatalf("acked %d of %d", len(acked), workers*perWorker)
	}
	// One final crash+restore: recovery must reconstruct every acked
	// update from disk alone.
	sd.Kill()
	if err := f.RestoreNow("sw0"); err != nil {
		t.Fatal(err)
	}
	if got := sd.ShadowSize("t"); got != workers*perWorker {
		t.Fatalf("after final restore: %d entries, want %d (acked-update loss or double-apply)",
			got, workers*perWorker)
	}
}

func TestFleetWedgeDetectionFailsOver(t *testing.T) {
	f := testFleet(t, FleetConfig{
		StateRoot:      t.TempDir(),
		NoSync:         true,
		HealthDeadline: 20 * time.Millisecond,
	})
	sd, err := f.AddShard("sw0", tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.Apply(insertT(1, "NoAction")); err != nil {
		t.Fatal(err)
	}
	// Wedge the shard: steal its semaphore and backdate the op start, as
	// if an operation had been stuck holding it for an hour.
	sd.mu.Lock()
	sem, gen := sd.sem, sd.gen
	sd.mu.Unlock()
	sem <- struct{}{}
	sd.opStart.Store(time.Now().Add(-time.Hour).UnixNano())

	f.superviseOnce()

	if !sd.Healthy() {
		t.Fatalf("shard not healthy after wedge failover: %s", sd.State())
	}
	if sd.fencedSince(gen) == false {
		t.Fatal("wedge failover did not fence the old incarnation")
	}
	// The fresh incarnation serves immediately and kept the acked state.
	if err := sd.Apply(insertT(2, "NoAction")); err != nil {
		t.Fatal(err)
	}
	if got := sd.ShadowSize("t"); got != 2 {
		t.Fatalf("shadow size %d after failover, want 2", got)
	}
}

func TestFleetDegradedModes(t *testing.T) {
	t.Run("reject", func(t *testing.T) {
		reg := obs.NewRegistry()
		f := testFleet(t, FleetConfig{StateRoot: t.TempDir(), NoSync: true, Obs: reg})
		sd, err := f.AddShard("sw0", tinySpec())
		if err != nil {
			t.Fatal(err)
		}
		sd.Kill()
		err = sd.Apply(insertT(1, "NoAction"))
		var sde *ShardDownError
		if !errors.As(err, &sde) {
			t.Fatalf("write to down shard: %v, want ShardDownError", err)
		}
		if got := reg.CounterValue(obs.LabeledName("bf4_fleet_shard_degraded_rejections_total", "shard", "sw0")); got != 1 {
			t.Fatalf("degraded rejection counter = %d, want 1", got)
		}
	})
	t.Run("queue", func(t *testing.T) {
		reg := obs.NewRegistry()
		f := testFleet(t, FleetConfig{
			StateRoot:   t.TempDir(),
			NoSync:      true,
			Obs:         reg,
			OnShardDown: DownQueue,
			QueueWait:   5 * time.Second,
		})
		sd, err := f.AddShard("sw0", tinySpec())
		if err != nil {
			t.Fatal(err)
		}
		sd.Kill()
		res := make(chan error, 1)
		go func() { res <- sd.ApplyWithKey("q:1", insertT(1, "NoAction")) }()
		// The write parks; restore must drain it.
		time.Sleep(20 * time.Millisecond)
		select {
		case err := <-res:
			t.Fatalf("queued write returned before restore: %v", err)
		default:
		}
		if err := f.RestoreNow("sw0"); err != nil {
			t.Fatal(err)
		}
		if err := <-res; err != nil {
			t.Fatalf("queued write failed after restore: %v", err)
		}
		if got := sd.ShadowSize("t"); got != 1 {
			t.Fatalf("queued write not applied: %d entries", got)
		}
		if got := reg.CounterValue("bf4_fleet_replayed_batches_total"); got != 1 {
			t.Fatalf("replayed counter = %d, want 1", got)
		}
	})
}

func TestFleetSupervisorRestoresKilledShard(t *testing.T) {
	f := testFleet(t, FleetConfig{
		StateRoot:      t.TempDir(),
		NoSync:         true,
		HealthInterval: 5 * time.Millisecond,
	})
	sd, err := f.AddShard("sw0", tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.Apply(insertT(1, "NoAction")); err != nil {
		t.Fatal(err)
	}
	f.StartSupervisor()
	sd.Kill()
	deadline := time.Now().Add(5 * time.Second)
	for !sd.Healthy() {
		if time.Now().After(deadline) {
			t.Fatal("supervisor did not restore the killed shard")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := sd.ShadowSize("t"); got != 1 {
		t.Fatalf("restored shadow size %d, want 1", got)
	}
}

func TestFleetPrometheusExposesPerShardMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	f := testFleet(t, FleetConfig{StateRoot: t.TempDir(), NoSync: true, Obs: reg})
	for _, id := range []string{"sw0", "sw1"} {
		if _, err := f.AddShard(id, tinySpec()); err != nil {
			t.Fatal(err)
		}
	}
	sd := f.Shard("sw0")
	if err := sd.Apply(insertT(1, "NoAction")); err != nil {
		t.Fatal(err)
	}
	sd.Kill()
	if err := sd.Apply(insertT(2, "NoAction")); err == nil {
		t.Fatal("write to down shard accepted")
	}
	if err := f.RestoreNow("sw0"); err != nil {
		t.Fatal(err)
	}
	if err := sd.Apply(insertT(2, "NoAction")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`bf4_fleet_shard_restores_total{shard="sw0"} 1`,
		`bf4_fleet_shard_degraded_rejections_total{shard="sw0"} 1`,
		`bf4_fleet_shard_journal_lag{shard="sw0"}`,
		"bf4_fleet_annotation_compiles_total 1",
		"# TYPE bf4_fleet_shard_restores_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Exactly one TYPE line per labeled family, not one per series.
	if got := strings.Count(out, "# TYPE bf4_fleet_shard_restores_total counter"); got != 1 {
		t.Fatalf("family TYPE line appears %d times", got)
	}
}

// TestTornJournalTailByteByByte corrupts or truncates the final journal
// record at every byte position and asserts recovery always lands on
// exactly the acked prefix: the torn record dropped, the file truncated
// to the last whole record, and subsequent appends clean.
func TestTornJournalTailByteByByte(t *testing.T) {
	// Build a reference journal with 3 records.
	seedDir := t.TempDir()
	st, err := OpenStore(seedDir)
	if err != nil {
		t.Fatal(err)
	}
	sh := tinyShim(t)
	st.NoSync = true
	if err := sh.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sh.ApplyWithKey(fmt.Sprintf("k:%d", i), insertT(int64(i+1), "NoAction")); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	journal, err := os.ReadFile(filepath.Join(seedDir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(journal, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("expected 3 journal lines, got %d", len(lines)-1)
	}
	last := lines[2]
	prefix := journal[:len(journal)-len(last)]

	recover := func(t *testing.T, contents []byte) (*Shim, *obs.Registry) {
		t.Helper()
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalName), contents, 0o644); err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		st2, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		st2.NoSync = true
		sh2 := tinyShim(t)
		sh2.SetObs(reg)
		if err := sh2.AttachStore(st2); err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		t.Cleanup(func() { st2.Close() })
		// Whatever was torn, appending must still work and survive the
		// next recovery (the file was truncated to a record boundary).
		if err := sh2.ApplyWithKey("post", insertT(77, "NoAction")); err != nil {
			t.Fatal(err)
		}
		return sh2, reg
	}

	// Truncations: every strict prefix of the final record.
	for cut := 0; cut < len(last); cut++ {
		contents := append(append([]byte{}, prefix...), last[:cut]...)
		sh2, reg := recover(t, contents)
		want := 2 + 1 // two whole records + the post-recovery append
		if cut == 0 {
			want = 2 + 1 // clean boundary: torn tail is empty
		}
		if got := sh2.ShadowSize("t"); got != want {
			t.Fatalf("cut=%d: %d entries, want %d", cut, got, want)
		}
		if cut > 0 {
			if got := reg.CounterValue("bf4_shim_journal_torn_tails_total"); got != 1 {
				t.Fatalf("cut=%d: torn-tail counter = %d, want 1", cut, got)
			}
		}
	}

	// Corruptions: flip each byte of the final record (newline excluded —
	// flipping it is the truncation case above).
	for i := 0; i < len(last)-1; i++ {
		contents := append([]byte{}, journal...)
		contents[len(prefix)+i] ^= 0xFF
		sh2, reg := recover(t, contents)
		if got := sh2.ShadowSize("t"); got != 3 {
			t.Fatalf("flip=%d: %d entries, want 3 (two whole + post append)", i, got)
		}
		if got := reg.CounterValue("bf4_shim_journal_torn_tails_total"); got != 1 {
			t.Fatalf("flip=%d: torn-tail counter = %d, want 1", i, got)
		}
	}
}

func TestJournalMidFileCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.NoSync = true
	sh := tinyShim(t)
	if err := sh.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sh.Apply(insertT(int64(i+1), "NoAction")); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[2] ^= 0xFF // corrupt the FIRST record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sh2 := tinyShim(t)
	if err := sh2.AttachStore(st2); err == nil {
		t.Fatal("mid-file corruption silently accepted")
	} else if !strings.Contains(err.Error(), "corrupt journal record") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestJournalWithoutCRCStillReplays(t *testing.T) {
	// Journals written before the CRC field must replay unchanged.
	dir := t.TempDir()
	rec := `{"seq":1,"key":"old:1","ops":[{"table":"t","entry":{"keys":[{"v":"9"}],"action":"NoAction"}}]}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte(rec), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sh := tinyShim(t)
	if err := sh.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if got := sh.ShadowSize("t"); got != 1 {
		t.Fatalf("legacy record not replayed: %d entries", got)
	}
	// And its dedup key was restored.
	if err := sh.ApplyWithKey("old:1", insertT(9, "NoAction")); err != nil {
		t.Fatal(err)
	}
	if got := sh.ShadowSize("t"); got != 1 {
		t.Fatal("legacy key double-applied")
	}
}

func TestShardJournalLag(t *testing.T) {
	f := testFleet(t, FleetConfig{StateRoot: t.TempDir(), NoSync: true, CompactEvery: 100})
	sd, err := f.AddShard("sw0", tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := sd.Apply(insertT(int64(i+1), "NoAction")); err != nil {
			t.Fatal(err)
		}
	}
	if got := sd.JournalLag(); got != 5 {
		t.Fatalf("journal lag %d, want 5", got)
	}
	sh := sd.currentShim()
	if err := sh.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := sd.JournalLag(); got != 0 {
		t.Fatalf("journal lag after checkpoint %d, want 0", got)
	}
}
