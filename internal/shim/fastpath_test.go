package shim

import (
	"errors"
	"math/big"
	"strings"
	"sync"
	"testing"

	"bf4/internal/dataplane"
	"bf4/internal/spec"
)

// wideAccept builds a wide-table update no assertion forbids: key0 != 0
// defuses the hit-guarded conditions, prefix length 0 makes mask2 zero
// (bvult against zero is always false), and NoAction defuses the
// action_run guards.
func wideAccept() *Update {
	return &Update{Table: "wide", Entry: &dataplane.Entry{
		Keys: []dataplane.KeyMatch{
			dataplane.NewExact(5),
			dataplane.NewTernary(7, 0x7f),
			dataplane.NewLpm(1, 0),
			dataplane.NewExact(0),
		},
		Action: "NoAction",
	}}
}

// wideReject trips the first width-boundary condition: key0 == 0 with a
// full (nil) ternary mask makes key1 < mask1 hold.
func wideReject() *Update {
	return &Update{Table: "wide", Entry: &dataplane.Entry{
		Keys: []dataplane.KeyMatch{
			dataplane.NewExact(0),
			{Value: big.NewInt(0), PrefixLen: -1},
			dataplane.NewLpm(1, 0),
			dataplane.NewExact(1),
		},
		Action: "NoAction",
	}}
}

// wideActA selects actA with both params zero: the 65-bit wide-param
// condition's action_run guard passes, so its term-DAG fallback really
// runs (and accepts, since p65 == 0).
func wideActA() *Update {
	u := wideAccept()
	u.Entry.Action = "actA"
	u.Entry.Params = []*big.Int{big.NewInt(0), big.NewInt(0)}
	return u
}

// smallAccept exercises the linked-scan tier (the linked assertion
// resolves against peer's shadow copy) but key0 != 0 makes it accept
// regardless of shadow contents — deterministic under concurrency.
func smallAccept() *Update {
	return &Update{Table: "small", Entry: &dataplane.Entry{
		Keys: []dataplane.KeyMatch{
			dataplane.NewExact(1),
			dataplane.NewTernary(3, 0xff),
		},
		Action: "NoAction",
	}}
}

// TestFastpathPlanShape pins which conditions compile into which tier:
// 65-bit params must stay on the term-DAG slow path, shadow-linked
// assertions must compile into the per-entry scan tier, and everything
// else must lower to a single-shot program.
func TestFastpathPlanShape(t *testing.T) {
	cp := widthCompiled(t)
	wide := cp.plans["wide"]
	if wide == nil || !wide.hasFast {
		t.Fatal("wide table should have a fast-path plan")
	}
	// byTable["wide"] clusters in spec order: width-boundary (3 terms),
	// wide-param (1 term), ghost-var (1 term).
	if got := len(wide.progs); got != 3 {
		t.Fatalf("wide plan has %d clusters, want 3", got)
	}
	for ti, prog := range wide.progs[0] {
		if prog == nil {
			t.Errorf("width-boundary term %d did not compile", ti)
		}
	}
	if wide.progs[1][0] != nil {
		t.Error("65-bit param condition must fall back to the slow path")
	}
	if wide.progs[2][0] == nil {
		t.Error("unbound ghost var should not force a fallback")
	}
	if !wide.needsEnv {
		t.Error("wide plan must still build an env for its slow condition")
	}
	for ci, lps := range wide.linked {
		for ti, lp := range lps {
			if lp != nil {
				t.Errorf("wide cluster %d term %d has a scan plan; wide has no linked assertions", ci, ti)
			}
		}
	}

	small := cp.plans["small"]
	if small == nil || !small.hasFast {
		t.Fatal("small table should have a fast-path plan")
	}
	if small.progs[0][0] != nil {
		t.Error("linked (shadow-resolved) condition must not be a single-shot program")
	}
	lp := small.linked[0][0]
	if lp == nil {
		t.Fatal("linked condition should compile into the scan tier")
	}
	if lp.sb.ts.Name != "peer" {
		t.Errorf("small's linked condition scans %q, want peer", lp.sb.ts.Name)
	}
	if len(lp.sb.slots) == 0 {
		t.Error("scan binder owns no slots")
	}
	// The linked term is (and s.hit (= s.key0 0) p.hit (= p.key0 3)):
	// the two small-only conjuncts become scan guards.
	if got := len(lp.guards); got != 2 {
		t.Errorf("linked condition has %d scan guards, want 2", got)
	}
	for ti, prog := range small.progs[1] {
		if prog == nil {
			t.Errorf("param-guard term %d did not compile", ti)
		}
	}
	if small.needsEnv {
		t.Error("every small condition compiled; plan must not build envs")
	}

	peer := cp.plans["peer"]
	if peer == nil || peer.linked[0][0] == nil {
		t.Fatal("peer's view of the linked assertion should scan small")
	}
	if got := peer.linked[0][0].sb.ts.Name; got != "small" {
		t.Errorf("peer's linked condition scans %q, want small", got)
	}

	if cp.maxRegs == 0 {
		t.Error("compilation left maxRegs unset")
	}
}

// TestFastpathStatsSplit checks the fast/slow counters and the
// -fastpath=off switch: a disabled shim must never touch the bytecode
// tier.
func TestFastpathStatsSplit(t *testing.T) {
	cp := widthCompiled(t)
	s := NewFromCompiled(cp)
	for _, u := range []*Update{wideAccept(), wideActA(), smallAccept()} {
		if err := s.Apply(u); err != nil {
			t.Fatalf("accept update rejected: %v", err)
		}
	}
	st := s.Stats()
	// wideAccept (NoAction): width-boundary (3 fast) + ghost (1 fast) +
	// wide-param (guard on action_run refutes → fast) = 5 fast.
	// wideActA: same 4 fast, but the wide-param guard passes, forcing
	// one term-DAG eval of the 65-bit condition = 1 slow.
	// smallAccept: linked scan (1 fast) + param-guard (2 fast).
	if st.FastpathHits != 12 || st.SlowpathHits != 1 {
		t.Fatalf("fast/slow hits = %d/%d, want 12/1", st.FastpathHits, st.SlowpathHits)
	}

	off := NewFromCompiled(cp)
	off.SetFastpath(false)
	for _, u := range []*Update{wideAccept(), wideActA(), smallAccept()} {
		if err := off.Apply(u); err != nil {
			t.Fatalf("accept update rejected with fastpath off: %v", err)
		}
	}
	st = off.Stats()
	if st.FastpathHits != 0 || st.SlowpathHits != 13 {
		t.Fatalf("fastpath off: fast/slow hits = %d/%d, want 0/13", st.FastpathHits, st.SlowpathHits)
	}
}

// TestFastpathRejectionMessage pins that a fast-path rejection carries
// the same source attribution the slow path produces.
func TestFastpathRejectionMessage(t *testing.T) {
	cp := widthCompiled(t)
	s := NewFromCompiled(cp)
	err := s.Apply(wideReject())
	if err == nil {
		t.Fatal("expected rejection")
	}
	if !strings.Contains(err.Error(), "width-boundary") {
		t.Fatalf("rejection lost its source attribution: %v", err)
	}
	if s.Stats().FastpathHits == 0 {
		t.Fatal("rejection should have come from the fast path")
	}
}

// TestFastpathForeignScanSlots pins the slot-ownership rule: a
// condition may only read scan registers of its own cluster's binder.
// Table t has two clusters — one scanning l, one linked to m but
// (adversarially) mentioning l's hit variable. On the slow path that
// variable is never bound for the second cluster (its scan set is {m}),
// so it reads false; a plan that let the second cluster's program read
// l's scan slot would see whatever the FIRST cluster's scan left there
// and reject an update the slow path accepts.
func TestFastpathForeignScanSlots(t *testing.T) {
	key8 := []spec.KeySchema{{Path: "hdr.k", MatchKind: "exact", Width: 8}}
	noAct := []*spec.ActionSchema{{Name: "NoAction", Index: 0}}
	file := &spec.File{
		Program: "foreign",
		Tables: []*spec.TableSchema{
			{Name: "t", Prefix: "t$0", Keys: key8, Actions: noAct, Default: "NoAction"},
			{Name: "l", Prefix: "l$0", Keys: key8, Actions: noAct, Default: "NoAction"},
			{Name: "m", Prefix: "m$0", Keys: key8, Actions: noAct, Default: "NoAction"},
		},
		Assertions: []*spec.Assertion{
			{
				Table: "t", Linked: "l", Source: "scans-l",
				Forbidden: []string{
					"(and |t$0.hit| (= |t$0.key0| (_ bv1 8)) |l$0.hit| (= |l$0.key0| (_ bv7 8)))",
				},
				Vars: map[string]int{"t$0.hit": 0, "t$0.key0": 8, "l$0.hit": 0, "l$0.key0": 8},
			},
			{
				Table: "t", Linked: "m", Source: "mentions-l",
				Forbidden: []string{
					"(and |t$0.hit| (= |t$0.key0| (_ bv1 8)) |l$0.hit|)",
				},
				Vars: map[string]int{"t$0.hit": 0, "t$0.key0": 8, "l$0.hit": 0},
			},
		},
	}
	cp, err := Compile(file)
	if err != nil {
		t.Fatal(err)
	}
	fast := NewFromCompiled(cp)
	slow := NewFromCompiled(cp)
	slow.SetFastpath(false)
	for _, u := range []*Update{
		// Populate l's shadow (key0 = 5) so the first cluster's scan
		// really binds l.hit = true before the second cluster runs.
		{Table: "l", Entry: &dataplane.Entry{Keys: []dataplane.KeyMatch{dataplane.NewExact(5)}, Action: "NoAction"}},
		// t.key0 = 1 passes the first cluster's guard; its scan finds
		// l.key0 = 5 != 7, so no violation. The second cluster must then
		// read l.hit as false (m's scan never binds it), not as the
		// stale true the first scan wrote.
		{Table: "t", Entry: &dataplane.Entry{Keys: []dataplane.KeyMatch{dataplane.NewExact(1)}, Action: "NoAction"}},
	} {
		errF := fast.Apply(u)
		errS := slow.Apply(u)
		if (errF == nil) != (errS == nil) {
			t.Fatalf("tiers diverge on %s update: fast=%v slow=%v", u.Table, errF, errS)
		}
		if errS != nil {
			t.Fatalf("slow tier rejected a legal update: %v", errS)
		}
	}
}

// TestFastpathRaceSoak hammers several shims sharing one Compiled (and
// therefore one scratch-register pool) from many goroutines, asserting
// every outcome. A corrupted or cross-wired register file would flip an
// accept to a reject (or vice versa) and fail deterministically; run
// under -race this also proves the pool and plan sharing are clean.
func TestFastpathRaceSoak(t *testing.T) {
	cp := widthCompiled(t)
	shims := []*Shim{NewFromCompiled(cp), NewFromCompiled(cp), NewFromCompiled(cp)}
	// One shim runs slow-tier only, sharing the same plans map.
	shims[2].SetFastpath(false)
	const goroutines, rounds = 8, 150
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s := shims[(g+i)%len(shims)]
				if err := s.Apply(wideAccept()); err != nil {
					errs <- err
					return
				}
				if err := s.Apply(smallAccept()); err != nil {
					errs <- err
					return
				}
				if err := s.Apply(wideReject()); err == nil {
					errs <- errSoakAcceptedBad
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("race soak: %v", err)
	}
	if shims[0].Stats().FastpathHits == 0 {
		t.Fatal("soak never exercised the fast path")
	}
	if shims[2].Stats().FastpathHits != 0 {
		t.Fatal("disabled shim took the fast path")
	}
}

var errSoakAcceptedBad = errors.New("known-bad wide update was accepted")
