package shim

import (
	"testing"

	"bf4/internal/spec"
)

// fpFile is a small fixed spec for fingerprint pinning.
func fpFile() *spec.File {
	return &spec.File{
		Program: "fp",
		Tables: []*spec.TableSchema{{
			Name:   "t",
			Prefix: "t$0",
			Keys:   []spec.KeySchema{{Path: "hdr.x", MatchKind: "exact", Width: 8}},
			Actions: []*spec.ActionSchema{
				{Name: "NoAction", Index: 0},
				{Name: "set", Index: 1, Params: []spec.ParamSchema{{Name: "v", Width: 8}}},
			},
			Default: "NoAction",
		}},
		Assertions: []*spec.Assertion{{
			Table:     "t",
			Source:    "pin",
			Forbidden: []string{"(and |t$0.hit| (= |t$0.key0| (_ bv0 8)))"},
			Vars:      map[string]int{"t$0.hit": 0, "t$0.key0": 8},
		}},
	}
}

// TestFingerprintDeterministic: the fingerprint is a function of the
// spec's content, not of the JSON text it arrived in — reordered fields
// and reflowed whitespace parse to the same File and the same hash.
func TestFingerprintDeterministic(t *testing.T) {
	f := fpFile()
	fp1, err := Fingerprint(f)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through the wire format.
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := spec.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := Fingerprint(f2)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("round-trip changed the fingerprint: %s != %s", fp1, fp2)
	}
	// Same content, scrambled JSON field order and whitespace.
	scrambled := `{"assertions":[{"vars":{"t$0.key0":8,"t$0.hit":0},
		"forbidden":["(and |t$0.hit| (= |t$0.key0| (_ bv0 8)))"],
		"source":"pin","table":"t"}],
		"tables":[{"default":"NoAction","prefix":"t$0",
		"actions":[{"index":0,"name":"NoAction"},
		{"params":[{"width":8,"name":"v"}],"index":1,"name":"set"}],
		"keys":[{"width":8,"match_kind":"exact","path":"hdr.x"}],
		"name":"t"}],"program":"fp"}`
	f3, err := spec.Parse([]byte(scrambled))
	if err != nil {
		t.Fatal(err)
	}
	fp3, err := Fingerprint(f3)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp3 {
		t.Fatalf("field order changed the fingerprint: %s != %s", fp1, fp3)
	}
}

// TestFingerprintDistinct: any semantic edit moves the hash.
func TestFingerprintDistinct(t *testing.T) {
	base, err := Fingerprint(fpFile())
	if err != nil {
		t.Fatal(err)
	}
	edits := map[string]func(*spec.File){
		"key width":        func(f *spec.File) { f.Tables[0].Keys[0].Width = 16 },
		"match kind":       func(f *spec.File) { f.Tables[0].Keys[0].MatchKind = "ternary" },
		"action added":     func(f *spec.File) { f.Tables[0].Actions[1].Buggy = true },
		"default action":   func(f *spec.File) { f.Tables[0].Default = "set" },
		"forbidden edited": func(f *spec.File) { f.Assertions[0].Forbidden[0] = "(and |t$0.hit| (= |t$0.key0| (_ bv1 8)))" },
		"assertion gone":   func(f *spec.File) { f.Assertions = nil },
	}
	for name, edit := range edits {
		f := fpFile()
		edit(f)
		fp, err := Fingerprint(f)
		if err != nil {
			t.Fatal(err)
		}
		if fp == base {
			t.Errorf("%s: fingerprint did not change", name)
		}
	}
}

// TestFingerprintGolden pins the exact hash so accidental changes to the
// wire format (which would silently split fleet annotation caches across
// versions) show up as a test failure.
func TestFingerprintGolden(t *testing.T) {
	fp, err := Fingerprint(fpFile())
	if err != nil {
		t.Fatal(err)
	}
	const want = "7228e1b60d6f94b1dea0e7a015fd02856c9338e41438084f5ed0d961134cb36c"
	if fp != want {
		t.Fatalf("fingerprint = %s, want %s", fp, want)
	}
}
