package shim

import (
	"math/big"
	"testing"

	"bf4/internal/dataplane"
)

func TestAutofillSynthesizedKeys(t *testing.T) {
	sh, res, _ := buildNATShim(t)
	if res.Fixed == nil {
		t.Skip("no fixed pipeline")
	}
	sh.AutofillSynthesizedKeys = true

	// An "old controller" writes an ipv4_lpm rule with only the original
	// key (the lpm), unaware of the synthesized validity key.
	old := &Update{Table: "ipv4_lpm", Entry: &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewLpm(0, 0)},
		Action: "set_nhop",
		Params: []*big.Int{big.NewInt(1), big.NewInt(7)},
	}}
	if err := sh.Apply(old); err != nil {
		t.Fatalf("autofill did not rescue the old-format rule: %v", err)
	}
	// The entry must have been completed with the safe validity value.
	if len(old.Entry.Keys) != 2 {
		t.Fatalf("keys after autofill = %d, want 2", len(old.Entry.Keys))
	}
	if old.Entry.Keys[1].Value.Int64() != 1 {
		t.Fatalf("validity key autofilled to %v, want 1 (valid)", old.Entry.Keys[1].Value)
	}
}

func TestAutofillOffRejectsOldFormat(t *testing.T) {
	sh, res, _ := buildNATShim(t)
	if res.Fixed == nil {
		t.Skip("no fixed pipeline")
	}
	err := sh.Apply(&Update{Table: "ipv4_lpm", Entry: &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewLpm(0, 0)},
		Action: "set_nhop",
		Params: []*big.Int{big.NewInt(1), big.NewInt(7)},
	}})
	if err == nil {
		t.Fatal("old-format rule accepted without autofill")
	}
}

func TestAutofillDoesNotTouchFullEntries(t *testing.T) {
	sh, res, _ := buildNATShim(t)
	if res.Fixed == nil {
		t.Skip("no fixed pipeline")
	}
	sh.AutofillSynthesizedKeys = true
	// A new-format faulty rule (explicit invalid-expected key + set_nhop)
	// must still be rejected; autofill must not rewrite it.
	err := sh.Apply(&Update{Table: "ipv4_lpm", Entry: &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewLpm(0, 0), dataplane.NewExact(0)},
		Action: "set_nhop",
		Params: []*big.Int{big.NewInt(1), big.NewInt(7)},
	}})
	if err == nil {
		t.Fatal("explicitly faulty new-format rule accepted")
	}
}
