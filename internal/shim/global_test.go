package shim_test

import (
	"math/rand"
	"strings"
	"testing"

	"bf4/internal/dataplane"
	"bf4/internal/driver"
	"bf4/internal/progs"
	"bf4/internal/shim"
	"bf4/internal/spec"
	"bf4/internal/trace"
)

// TestGlobalCorrectnessAcrossCorpus is the paper's Theorem 7.5 at corpus
// scale: for each program, run the full bf4 loop, stand up the shim on
// the fixed program's assertions, push a randomized controller workload
// through it, and fire random packets at the accepted snapshot. No
// execution may reach a bug node. Programs with genuine dataplane bugs
// (mplb_router, linearroad) are excluded — the theorem's premise
// ("only controlled bugs") does not hold for them by design.
func TestGlobalCorrectnessAcrossCorpus(t *testing.T) {
	programs := []string{"simple_nat", "mc_nat_16", "ecmp_2", "netchain", "heavy_hitter_2", "issue894"}
	for _, name := range programs {
		name := name
		t.Run(name, func(t *testing.T) {
			p := progs.Get(name)
			res, err := driver.Run(p.Name, p.Source, driver.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if res.BugsAfterFixes != 0 {
				t.Fatalf("premise violated: %d bugs after fixes", res.BugsAfterFixes)
			}
			pl := res.Fixed
			if pl == nil {
				pl = res.Initial
			}
			file := spec.Build(p.Name, pl.IR, res.InitialRep, res.FinalInfer, res.Fixes.Special)
			sh, err := shim.New(file)
			if err != nil {
				t.Fatal(err)
			}

			gen := trace.NewGenerator(77, file)
			accepted := 0
			for _, u := range gen.Updates(120) {
				if sh.Apply(u) == nil {
					accepted++
				}
			}
			snap := sh.Snapshot()

			// Random packets: randomize every header field and the
			// ingress port; extraction pulls these values on demand.
			rng := rand.New(rand.NewSource(99))
			var fieldNames []string
			for _, v := range pl.IR.VarList() {
				if strings.HasPrefix(v.Name, "hdr.") && !strings.Contains(v.Name, "$") {
					fieldNames = append(fieldNames, v.Name)
				}
			}
			for i := 0; i < 300; i++ {
				pkt := dataplane.Packet{}
				pkt.SetField("smeta.ingress_port", int64(rng.Intn(512)))
				for _, fn := range fieldNames {
					w := pl.IR.Vars[fn].Sort.Width
					max := int64(1) << uint(min(w, 30))
					pkt.SetField(fn, rng.Int63n(max))
				}
				// Common protocol constants half the time, so parsing
				// goes deep.
				if rng.Intn(2) == 0 {
					for _, fn := range fieldNames {
						if strings.HasSuffix(fn, "etherType") {
							pkt.SetField(fn, 0x800)
						}
						if strings.HasSuffix(fn, "protocol") {
							pkt.SetField(fn, 6)
						}
					}
				}
				interp := &dataplane.Interp{P: pl.IR, Snapshot: snap, Inputs: pkt}
				tr, err := interp.Run()
				if err != nil {
					t.Fatal(err)
				}
				if tr.Bug() {
					t.Fatalf("packet %d hit %s under a shim-accepted snapshot (%d entries accepted)",
						i, tr.Terminal, accepted)
				}
			}
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
