package shim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/big"
	"sync"

	"bf4/internal/obs"
	"bf4/internal/smt"
	"bf4/internal/spec"
)

// Compiled is an immutable compilation of one spec file: every forbidden
// condition parsed into a term, clustered by table. Compilation is the
// expensive per-program step of standing up a shim (S-expression parsing
// into the interned term factory), so a Compiled is built once per
// program fingerprint and shared read-only by every shard running that
// program — the fleet's "verify once, guard hundreds of switches" story.
//
// Sharing is safe: after Compile returns, the terms, the table clusters
// and the spec file are only ever read (term evaluation keeps its memo
// in a per-call map, and the term factory's interning is thread-safe).
type Compiled struct {
	file *spec.File
	// f keeps the owning term factory alive (terms intern into it).
	f       *smt.Factory
	byTable map[string][]*compiledAssertion
	// tables indexes the schema by name: spec.File.Table is a linear
	// scan, too slow for the per-update lookup at fleet scale.
	tables map[string]*spec.TableSchema

	// plans holds the fast-path compilation per clustered table (see
	// fastpath.go); maxRegs sizes the shared scratch register files.
	plans   map[string]*tablePlan
	maxRegs int
	// scratch pools register files for fast-path evaluation. Sharing the
	// pool across the shards of one program is safe: a file is checked
	// out for the duration of a single validation, and its contents are
	// rewritten from the update before any program reads them.
	scratch sync.Pool

	// onesMask and lpmMask memoize the match-mask constructions bindEntry
	// needs: onesMask[w] = 2^w-1 for every ternary key width,
	// lpmMask[w][plen] = prefixMask(w, plen) for every lpm key width.
	// Built at compile time for every width in the schema, then only
	// read — shards share them without locking.
	onesMask map[int]*big.Int
	lpmMask  map[int][]*big.Int
}

// File returns the spec file this program was compiled from.
func (cp *Compiled) File() *spec.File { return cp.file }

// compileMasks precomputes the per-width match masks (the shim used to
// rebuild these big.Ints on every bindEntry call).
func (cp *Compiled) compileMasks() {
	cp.onesMask = map[int]*big.Int{}
	cp.lpmMask = map[int][]*big.Int{}
	for _, ts := range cp.file.Tables {
		for _, k := range ts.Keys {
			switch k.MatchKind {
			case "ternary":
				if _, ok := cp.onesMask[k.Width]; !ok {
					cp.onesMask[k.Width] = ones(k.Width)
				}
			case "lpm":
				if _, ok := cp.lpmMask[k.Width]; !ok {
					ms := make([]*big.Int, k.Width+1)
					for plen := 0; plen <= k.Width; plen++ {
						ms[plen] = prefixMask(k.Width, plen)
					}
					cp.lpmMask[k.Width] = ms
				}
			}
		}
	}
}

// memoOnes returns the memoized 2^w-1 (computing fresh for widths
// outside the schema, without mutating the shared map).
func (cp *Compiled) memoOnes(w int) *big.Int {
	if m, ok := cp.onesMask[w]; ok {
		return m
	}
	return ones(w)
}

// memoPrefixMask returns the memoized prefixMask(w, plen).
func (cp *Compiled) memoPrefixMask(w, plen int) *big.Int {
	if plen >= w {
		return cp.memoOnes(w)
	}
	if ms, ok := cp.lpmMask[w]; ok && plen >= 0 {
		return ms[plen]
	}
	return prefixMask(w, plen)
}

// Fingerprint content-addresses a spec file: the SHA-256 of its
// canonical JSON marshaling. Two switches running the same verified
// program produce the same fingerprint and therefore share one compiled
// annotation set.
func Fingerprint(file *spec.File) (string, error) {
	data, err := file.Marshal()
	if err != nil {
		return "", fmt.Errorf("shim: fingerprint: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// AnnotationCache maps program fingerprints to compiled annotation sets.
// It is safe for concurrent use; a fleet attaches one cache so that N
// switches running the same program trigger exactly one compile.
type AnnotationCache struct {
	mu       sync.Mutex
	m        map[string]*Compiled
	compiles *obs.Counter
	hits     *obs.Counter
}

// NewAnnotationCache builds an empty cache. reg (nil-safe) publishes
// bf4_fleet_annotation_compiles_total and
// bf4_fleet_annotation_cache_hits_total.
func NewAnnotationCache(reg *obs.Registry) *AnnotationCache {
	return &AnnotationCache{
		m:        map[string]*Compiled{},
		compiles: reg.Counter("bf4_fleet_annotation_compiles_total"),
		hits:     reg.Counter("bf4_fleet_annotation_cache_hits_total"),
	}
}

// Get returns the compiled annotations for file, compiling at most once
// per fingerprint. The returned fingerprint identifies the entry.
func (c *AnnotationCache) Get(file *spec.File) (*Compiled, string, error) {
	fp, err := Fingerprint(file)
	if err != nil {
		return nil, "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cp, ok := c.m[fp]; ok {
		c.hits.Inc()
		return cp, fp, nil
	}
	cp, err := Compile(file)
	if err != nil {
		return nil, "", err
	}
	c.m[fp] = cp
	c.compiles.Inc()
	return cp, fp, nil
}

// Len returns the number of cached programs.
func (c *AnnotationCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
