package shim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"bf4/internal/obs"
	"bf4/internal/smt"
	"bf4/internal/spec"
)

// Compiled is an immutable compilation of one spec file: every forbidden
// condition parsed into a term, clustered by table. Compilation is the
// expensive per-program step of standing up a shim (S-expression parsing
// into the interned term factory), so a Compiled is built once per
// program fingerprint and shared read-only by every shard running that
// program — the fleet's "verify once, guard hundreds of switches" story.
//
// Sharing is safe: after Compile returns, the terms, the table clusters
// and the spec file are only ever read (term evaluation keeps its memo
// in a per-call map, and the term factory's interning is thread-safe).
type Compiled struct {
	file *spec.File
	// f keeps the owning term factory alive (terms intern into it).
	f       *smt.Factory
	byTable map[string][]*compiledAssertion
}

// File returns the spec file this program was compiled from.
func (cp *Compiled) File() *spec.File { return cp.file }

// Fingerprint content-addresses a spec file: the SHA-256 of its
// canonical JSON marshaling. Two switches running the same verified
// program produce the same fingerprint and therefore share one compiled
// annotation set.
func Fingerprint(file *spec.File) (string, error) {
	data, err := file.Marshal()
	if err != nil {
		return "", fmt.Errorf("shim: fingerprint: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// AnnotationCache maps program fingerprints to compiled annotation sets.
// It is safe for concurrent use; a fleet attaches one cache so that N
// switches running the same program trigger exactly one compile.
type AnnotationCache struct {
	mu       sync.Mutex
	m        map[string]*Compiled
	compiles *obs.Counter
	hits     *obs.Counter
}

// NewAnnotationCache builds an empty cache. reg (nil-safe) publishes
// bf4_fleet_annotation_compiles_total and
// bf4_fleet_annotation_cache_hits_total.
func NewAnnotationCache(reg *obs.Registry) *AnnotationCache {
	return &AnnotationCache{
		m:        map[string]*Compiled{},
		compiles: reg.Counter("bf4_fleet_annotation_compiles_total"),
		hits:     reg.Counter("bf4_fleet_annotation_cache_hits_total"),
	}
}

// Get returns the compiled annotations for file, compiling at most once
// per fingerprint. The returned fingerprint identifies the entry.
func (c *AnnotationCache) Get(file *spec.File) (*Compiled, string, error) {
	fp, err := Fingerprint(file)
	if err != nil {
		return nil, "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cp, ok := c.m[fp]; ok {
		c.hits.Inc()
		return cp, fp, nil
	}
	cp, err := Compile(file)
	if err != nil {
		return nil, "", err
	}
	c.m[fp] = cp
	c.compiles.Inc()
	return cp, fp, nil
}

// Len returns the number of cached programs.
func (c *AnnotationCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
