package shim

import (
	"math/big"
	"math/rand"
	"testing"

	"bf4/internal/dataplane"
	"bf4/internal/driver"
	"bf4/internal/ir"
	"bf4/internal/spec"
)

const natSrc = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<32> srcAddr; bit<32> dstAddr; }
struct meta_t { bit<1> do_forward; bit<32> nhop; }
struct metadata { meta_t meta; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; }

parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
}

control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    action drop_() { mark_to_drop(smeta); }
    action nat_hit(bit<32> a) {
        meta.meta.do_forward = 1w1;
        meta.meta.nhop = a;
    }
    table nat {
        key = { hdr.ipv4.isValid(): exact; hdr.ipv4.srcAddr: ternary; }
        actions = { drop_; nat_hit; }
        default_action = drop_();
    }
    action set_nhop(bit<32> nhop, bit<9> port) {
        meta.meta.nhop = nhop;
        smeta.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table ipv4_lpm {
        key = { meta.meta.nhop: lpm; }
        actions = { set_nhop; drop_; }
    }
    apply {
        nat.apply();
        if (meta.meta.do_forward == 1w1) {
            ipv4_lpm.apply();
        }
    }
}

control Eg(inout headers hdr, inout metadata meta,
           inout standard_metadata_t smeta) { apply { } }
control Dep(packet_out pkt, in headers hdr) { apply { pkt.emit(hdr.ipv4); } }

V1Switch(P(), Ing(), Eg(), Dep()) main;
`

// buildNATShim runs the full bf4 loop and compiles the final (fixed
// program) assertions into a shim.
func buildNATShim(t *testing.T) (*Shim, *driver.Result, *spec.File) {
	t.Helper()
	res, err := driver.Run("simple_nat", natSrc, driver.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pl := res.Fixed
	if pl == nil {
		pl = res.Initial
	}
	file := spec.Build("simple_nat", pl.IR, res.InitialRep, res.FinalInfer, res.Fixes.Special)
	// Round-trip through the wire format, as the standalone shim would.
	data, err := file.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := spec.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := New(parsed)
	if err != nil {
		t.Fatal(err)
	}
	return sh, res, parsed
}

func TestShimAcceptsSaneRules(t *testing.T) {
	sh, _, _ := buildNATShim(t)
	// Sane nat rule: valid ipv4 expected.
	err := sh.Apply(&Update{Table: "nat", Entry: &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewExact(1), dataplane.NewTernary(0x0A000001, -1)},
		Action: "nat_hit",
		Params: []*big.Int{big.NewInt(42)},
	}})
	if err != nil {
		t.Fatalf("sane nat rule rejected: %v", err)
	}
	if sh.ShadowSize("nat") != 1 {
		t.Fatal("shadow not updated")
	}
}

func TestShimRejectsPaperFaultyRule(t *testing.T) {
	sh, _, _ := buildNATShim(t)
	// The paper's rule: ipv4.isValid == 0 with nonzero srcAddr mask.
	err := sh.Apply(&Update{Table: "nat", Entry: &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewExact(0), dataplane.NewTernary(0x0A000000, 0xFF000000)},
		Action: "nat_hit",
		Params: []*big.Int{big.NewInt(1)},
	}})
	if err == nil {
		t.Fatal("faulty rule accepted")
	}
	if _, ok := err.(*RejectionError); !ok {
		t.Fatalf("error type %T", err)
	}
	if sh.ShadowSize("nat") != 0 {
		t.Fatal("rejected rule entered shadow state")
	}
}

func TestShimRejectsInvalidLpmRule(t *testing.T) {
	sh, res, _ := buildNATShim(t)
	if res.Fixed == nil {
		t.Skip("no fixed pipeline")
	}
	// After Fixes, ipv4_lpm matches on hdr.ipv4.isValid() too. A rule
	// expecting an invalid ipv4 header but running set_nhop (which touches
	// ipv4.ttl) must be rejected.
	err := sh.Apply(&Update{Table: "ipv4_lpm", Entry: &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewLpm(0, 0), dataplane.NewExact(0)},
		Action: "set_nhop",
		Params: []*big.Int{big.NewInt(1), big.NewInt(7)},
	}})
	if err == nil {
		t.Fatal("lpm rule with invalid-header expectation and set_nhop accepted")
	}
	// The same rule with drop_ is harmless and must pass.
	err = sh.Apply(&Update{Table: "ipv4_lpm", Entry: &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewLpm(0, 0), dataplane.NewExact(0)},
		Action: "drop_",
	}})
	if err != nil {
		t.Fatalf("harmless drop rule rejected: %v", err)
	}
}

func TestShimKeyCountValidation(t *testing.T) {
	sh, _, _ := buildNATShim(t)
	err := sh.Apply(&Update{Table: "nat", Entry: &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewExact(1)},
		Action: "drop_",
	}})
	if err == nil {
		t.Fatal("wrong-arity entry accepted")
	}
}

func TestShimUnknownTable(t *testing.T) {
	sh, _, _ := buildNATShim(t)
	err := sh.Validate(&Update{Table: "nope", Entry: &dataplane.Entry{}})
	if err == nil {
		t.Fatal("unknown table accepted")
	}
}

// TestGlobalCorrectness is the paper's Theorem 7.5: if the shim accepts a
// snapshot, no packet can trigger a bug. We drive the fixed program's
// dataplane with random packets under a shim-accepted snapshot and check
// that no execution ends in a bug node.
func TestGlobalCorrectness(t *testing.T) {
	sh, res, _ := buildNATShim(t)
	pl := res.Fixed
	if pl == nil {
		t.Skip("no fixed pipeline")
	}
	rng := rand.New(rand.NewSource(42))

	// Attempt a mix of sane and faulty updates; only accepted ones enter
	// the snapshot.
	accepted, rejected := 0, 0
	for i := 0; i < 60; i++ {
		valid := int64(rng.Intn(2))
		maskChoice := []int64{0, 0xFF000000, -1}[rng.Intn(3)]
		action := []string{"drop_", "nat_hit"}[rng.Intn(2)]
		u := &Update{Table: "nat", Entry: &dataplane.Entry{
			Keys:   []dataplane.KeyMatch{dataplane.NewExact(valid), dataplane.NewTernary(int64(rng.Intn(1<<30)), maskChoice)},
			Action: action,
			Params: []*big.Int{big.NewInt(int64(rng.Intn(1 << 30)))},
		}}
		if action == "drop_" {
			u.Entry.Params = nil
		}
		if err := sh.Apply(u); err != nil {
			rejected++
		} else {
			accepted++
		}
	}
	for i := 0; i < 40; i++ {
		valid := int64(rng.Intn(2))
		action := []string{"drop_", "set_nhop"}[rng.Intn(2)]
		u := &Update{Table: "ipv4_lpm", Entry: &dataplane.Entry{
			Keys:   []dataplane.KeyMatch{dataplane.NewLpm(int64(rng.Intn(1<<30)), rng.Intn(33)), dataplane.NewExact(valid)},
			Action: action,
			Params: []*big.Int{big.NewInt(int64(rng.Intn(1 << 30))), big.NewInt(int64(rng.Intn(500)))},
		}}
		if action == "drop_" {
			u.Entry.Params = nil
		}
		if err := sh.Apply(u); err != nil {
			rejected++
		} else {
			accepted++
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("workload not interesting: accepted=%d rejected=%d", accepted, rejected)
	}

	snap := sh.Snapshot()
	bugs := 0
	for i := 0; i < 500; i++ {
		p := dataplane.Packet{}
		if rng.Intn(2) == 0 {
			p.SetField("hdr.ethernet.etherType", 0x800)
		} else {
			p.SetField("hdr.ethernet.etherType", int64(rng.Intn(1<<16)))
		}
		p.SetField("hdr.ipv4.srcAddr", int64(rng.Intn(1<<30)))
		p.SetField("hdr.ipv4.ttl", int64(rng.Intn(256)))
		interp := &dataplane.Interp{P: pl.IR, Snapshot: snap, Inputs: p}
		tr, err := interp.Run()
		if err != nil {
			t.Fatal(err)
		}
		if tr.Bug() {
			bugs++
			t.Errorf("packet %d triggered %s under shim-accepted snapshot", i, tr.Terminal)
		}
	}
	if bugs > 0 {
		t.Fatalf("%d buggy executions", bugs)
	}
	st := sh.Stats()
	if st.Validated != 100 || st.Rejected != rejected {
		t.Fatalf("stats: %+v", st)
	}
}

func TestShimStatsLatencies(t *testing.T) {
	sh, _, _ := buildNATShim(t)
	for i := 0; i < 50; i++ {
		sh.Validate(&Update{Table: "nat", Entry: &dataplane.Entry{
			Keys:   []dataplane.KeyMatch{dataplane.NewExact(1), dataplane.NewTernary(int64(i), -1)},
			Action: "nat_hit",
			Params: []*big.Int{big.NewInt(int64(i))},
		}})
	}
	st := sh.Stats()
	if len(st.PerUpdate.SampleNs) != 50 || st.PerUpdate.Count != 50 {
		t.Fatalf("per-update samples = %d count = %d", len(st.PerUpdate.SampleNs), st.PerUpdate.Count)
	}
	if st.PerUpdate.MeanNs <= 0 || st.PerUpdate.MaxNs <= 0 {
		t.Fatalf("aggregates not tracked: %+v", st.PerUpdate)
	}
	for _, ns := range st.PerUpdate.SampleNs {
		if ns <= 0 {
			t.Fatal("non-positive latency sample")
		}
		// The paper's headline: validation in milliseconds. Anything
		// under 50ms per update in a test environment is comfortably in
		// line.
		if ns > 50e6 {
			t.Fatalf("update validation took %dns", ns)
		}
	}
}

func TestSpecRenderAndParse(t *testing.T) {
	_, res, file := buildNATShim(t)
	r := file.Render()
	if len(r) == 0 || res == nil {
		t.Fatal("empty render")
	}
	if file.Table("nat") == nil {
		t.Fatal("nat schema missing")
	}
	if got := len(file.AssertionsFor("nat")); got == 0 {
		t.Fatal("no assertions clustered for nat")
	}
	_ = ir.DropSpec
}
