package shim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bf4/internal/dataplane"
	"bf4/internal/obs"
)

// Shard is one switch's slice of the fleet: a shim incarnation plus its
// snapshot+journal store, guarded by a capacity-1 semaphore (so the
// supervisor can observe how long the current operation has held it —
// that is the wedge detector). A shard moves through incarnations: Kill
// fences the current one (generation bump + journal handle close) and
// restore installs a fresh shim rebuilt from disk.
type Shard struct {
	fleet *Fleet
	id    string
	fp    string
	cp    *Compiled
	dir   string // "" = no persistence

	// opStart is the UnixNano timestamp at which the operation currently
	// holding the semaphore began (0 = idle). The supervisor reads it to
	// detect a wedged shard.
	opStart atomic.Int64

	mu        sync.Mutex
	sh        *Shim
	store     *Store
	sem       chan struct{} // capacity 1; nil while down
	state     ShardState
	gen       int64 // incarnation counter; bumped by every fence
	queue     []*queuedOp
	restoring bool
	lastErr   error
	autofill  bool

	// Per-shard metrics (nil-safe).
	restores *obs.Counter
	degraded *obs.Counter
	replayed *obs.Counter
	lagGauge *obs.Gauge
}

// queuedOp is one write parked in DownQueue mode.
type queuedOp struct {
	run  func(*Shim) error
	done chan error
}

// errShardRecovered signals do() that the shard came back between the
// unavailability check and the enqueue — retry against the live shim.
var errShardRecovered = errors.New("shim: shard recovered")

// ID returns the switch identifier.
func (sd *Shard) ID() string { return sd.id }

// Fingerprint returns the program fingerprint this shard validates
// against (the annotation-cache key).
func (sd *Shard) Fingerprint() string { return sd.fp }

// State returns the shard's lifecycle state.
func (sd *Shard) State() ShardState {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	return sd.state
}

// Healthy reports whether the shard is serving.
func (sd *Shard) Healthy() bool { return sd.State() == ShardHealthy }

// LastError returns the most recent restore failure (nil when healthy).
func (sd *Shard) LastError() error {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	return sd.lastErr
}

// Validate checks an update against the shard without applying it.
func (sd *Shard) Validate(u *Update) error {
	return sd.do(func(sh *Shim) error { return sh.Validate(u) })
}

// Apply validates and applies one update (no idempotency key).
func (sd *Shard) Apply(u *Update) error { return sd.ApplyWithKey("", u) }

// ApplyWithKey validates and applies one update with an idempotency
// key. Writes to a down shard follow the fleet's degraded mode.
func (sd *Shard) ApplyWithKey(key string, u *Update) error {
	return sd.do(func(sh *Shim) error { return sh.ApplyWithKey(key, u) })
}

// ApplyBatchWithKey atomically applies a batch with an idempotency key.
func (sd *Shard) ApplyBatchWithKey(key string, updates []*Update) error {
	return sd.do(func(sh *Shim) error { return sh.ApplyBatchWithKey(key, updates) })
}

// Stats returns the current incarnation's statistics (zero when down).
func (sd *Shard) Stats() Stats {
	if sh := sd.currentShim(); sh != nil {
		return sh.Stats()
	}
	return Stats{}
}

// ShadowSize returns the shadow entry count for a table (0 when down).
func (sd *Shard) ShadowSize(table string) int {
	if sh := sd.currentShim(); sh != nil {
		return sh.ShadowSize(table)
	}
	return 0
}

// Snapshot materializes the shard's shadow state (nil when down).
func (sd *Shard) Snapshot() *dataplane.Snapshot {
	if sh := sd.currentShim(); sh != nil {
		return sh.Snapshot()
	}
	return nil
}

// MarshalSnapshot serializes the shard's shadow state deterministically.
func (sd *Shard) MarshalSnapshot() ([]byte, error) {
	sh := sd.currentShim()
	if sh == nil {
		return nil, &ShardDownError{ID: sd.id, State: sd.State(), Reason: "no live incarnation"}
	}
	return sh.MarshalSnapshot()
}

// JournalLag returns journal records accumulated since the last
// checkpoint (0 when down or unpersisted).
func (sd *Shard) JournalLag() int {
	if sh := sd.currentShim(); sh != nil {
		return sh.JournalLag()
	}
	return 0
}

// QueueLen reports how many writes are parked awaiting restore
// (DownQueue mode only; always 0 in reject mode).
func (sd *Shard) QueueLen() int {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	return len(sd.queue)
}

// SetAutofill toggles AutofillSynthesizedKeys for the current and all
// future incarnations.
func (sd *Shard) SetAutofill(on bool) {
	sd.mu.Lock()
	sd.autofill = on
	sh := sd.sh
	sd.mu.Unlock()
	if sh != nil {
		sh.AutofillSynthesizedKeys = on
	}
}

func (sd *Shard) currentShim() *Shim {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	if sd.state != ShardHealthy {
		return nil
	}
	return sd.sh
}

// do funnels one operation through the shard's semaphore, routing
// around dead or wedged incarnations per the fleet's degraded mode. The
// bounded retry loop covers the races where the shard flips state while
// the operation is between checks.
func (sd *Shard) do(run func(*Shim) error) error {
	for attempt := 0; attempt < 3; attempt++ {
		err := sd.doOnce(run)
		if err == errShardRecovered {
			continue
		}
		return err
	}
	sd.rejectDegraded()
	return &ShardDownError{ID: sd.id, State: sd.State(), Reason: "shard flapping"}
}

func (sd *Shard) doOnce(run func(*Shim) error) error {
	sd.mu.Lock()
	state, sem, gen := sd.state, sd.sem, sd.gen
	sd.mu.Unlock()
	if state != ShardHealthy || sem == nil {
		return sd.degradedOp(run)
	}
	t := time.NewTimer(sd.fleet.cfg.opWait())
	select {
	case sem <- struct{}{}:
		t.Stop()
	case <-t.C:
		// Lock not acquired within OpWait: wedged or overloaded. Either
		// way the shard is unavailable to this caller; the supervisor
		// decides whether to fail it over.
		return sd.degradedOp(run)
	}
	sd.opStart.Store(time.Now().UnixNano())
	release := func() {
		sd.opStart.Store(0)
		<-sem
	}
	// A failover may have swapped the incarnation while we waited on the
	// (possibly orphaned) semaphore — re-read before running.
	sd.mu.Lock()
	sh, curGen, curState := sd.sh, sd.gen, sd.state
	sd.mu.Unlock()
	if curState != ShardHealthy || sh == nil || curGen != gen {
		release()
		return sd.degradedOp(run)
	}
	err := run(sh)
	release()
	if err != nil && sd.fencedSince(curGen) {
		// The incarnation was fenced mid-operation: the error is a
		// fencing artifact (closed journal handle), not a validation
		// verdict. The mutation did not commit; route it through the
		// degraded path so the retry lands on the restored incarnation
		// (idempotency keys resolve any journaled-but-unacked ambiguity).
		return sd.degradedOp(run)
	}
	sd.observeLag(sh)
	return err
}

func (sd *Shard) fencedSince(gen int64) bool {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	return sd.gen != gen
}

// degradedOp handles an operation that found its shard unavailable:
// reject mode fails fast with a retryable error; queue mode parks the
// operation (bounded) until restore replays it in arrival order.
func (sd *Shard) degradedOp(run func(*Shim) error) error {
	f := sd.fleet
	if f.cfg.OnShardDown != DownQueue {
		sd.rejectDegraded()
		return &ShardDownError{ID: sd.id, State: sd.State(), Reason: "degraded mode is reject"}
	}
	done := make(chan error, 1)
	sd.mu.Lock()
	if sd.state == ShardHealthy && sd.sh != nil {
		// Raced with a completed restore; run live instead of parking
		// (a parked op after the drain would wait for the next restore).
		sd.mu.Unlock()
		return errShardRecovered
	}
	if len(sd.queue) >= f.cfg.queueLimit() {
		sd.mu.Unlock()
		sd.rejectDegraded()
		return &ShardDownError{ID: sd.id, State: sd.State(), Reason: "degraded queue full"}
	}
	sd.queue = append(sd.queue, &queuedOp{run: run, done: done})
	sd.mu.Unlock()
	t := time.NewTimer(f.cfg.queueWait())
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		// The op stays parked and may still be applied by a later
		// restore — a deliberately ambiguous outcome, resolved by the
		// caller retrying with the same idempotency key.
		sd.rejectDegraded()
		return &ShardDownError{ID: sd.id, State: sd.State(), Reason: "timed out waiting for restore"}
	}
}

func (sd *Shard) rejectDegraded() {
	sd.degraded.Inc()
	sd.fleet.degradedTotal.Inc()
}

func (sd *Shard) observeLag(sh *Shim) {
	sd.lagGauge.Set(int64(sh.JournalLag()))
}

// Kill fences the current incarnation, emulating a crash: generation
// bump, shim discarded, store fenced and its journal handle closed. An
// in-flight zombie operation cannot append to the journal any more,
// therefore cannot commit or be acknowledged — the journal on disk
// stays the single source of truth for the next incarnation.
func (sd *Shard) Kill() {
	sd.mu.Lock()
	if sd.sh == nil && sd.state == ShardDown {
		sd.mu.Unlock()
		return
	}
	sd.state = ShardDown
	sd.gen++
	sd.sh = nil
	sd.sem = nil
	st := sd.store
	sd.store = nil
	sd.mu.Unlock()
	if st != nil {
		st.Fence()
	}
	sd.opStart.Store(0)
}

// restore rebuilds the shard from its snapshot+journal and installs the
// fresh incarnation, then drains any parked writes in arrival order
// while still holding the new semaphore (per-shard ordering survives
// failover). initial marks the AddShard bring-up, which is not counted
// as a restore.
func (sd *Shard) restore(initial bool) error {
	sd.mu.Lock()
	if sd.restoring || (sd.state == ShardHealthy && sd.sh != nil) {
		sd.mu.Unlock()
		return nil
	}
	sd.restoring = true
	sd.state = ShardRestoring
	autofill := sd.autofill
	sd.mu.Unlock()
	defer func() {
		sd.mu.Lock()
		sd.restoring = false
		sd.mu.Unlock()
	}()

	sh := NewFromCompiled(sd.cp)
	sh.AutofillSynthesizedKeys = autofill
	sh.SetFastpath(!sd.fleet.cfg.NoFastpath)
	sh.SetObs(sd.fleet.cfg.Obs)
	var st *Store
	if sd.dir != "" {
		var err error
		st, err = OpenStore(sd.dir)
		if err == nil {
			if ce := sd.fleet.cfg.CompactEvery; ce > 0 {
				st.CompactEvery = ce
			}
			st.NoSync = sd.fleet.cfg.NoSync
			err = sh.AttachStore(st)
		}
		if err != nil {
			if st != nil {
				st.Close()
			}
			sd.mu.Lock()
			sd.state = ShardDown
			sd.lastErr = fmt.Errorf("restore: %w", err)
			sd.mu.Unlock()
			return err
		}
	}

	sem := make(chan struct{}, 1)
	sem <- struct{}{} // held until parked writes are drained

	sd.mu.Lock()
	sd.sh, sd.store, sd.sem = sh, st, sem
	sd.state = ShardHealthy
	sd.lastErr = nil
	q := sd.queue
	sd.queue = nil
	sd.mu.Unlock()

	if !initial {
		sd.restores.Inc()
		sd.fleet.restoresTotal.Inc()
	}
	for _, op := range q {
		err := op.run(sh)
		sd.replayed.Inc()
		sd.fleet.replayedTotal.Inc()
		op.done <- err
	}
	<-sem
	sd.observeLag(sh)
	return nil
}

// close shuts the shard down for good: best-effort drain of the current
// operation, final checkpoint, store closed.
func (sd *Shard) close() error {
	sd.mu.Lock()
	sh, st, sem := sd.sh, sd.store, sd.sem
	sd.state = ShardDown
	sd.gen++
	sd.sh = nil
	sd.store = nil
	sd.sem = nil
	sd.mu.Unlock()
	if sh == nil {
		return nil
	}
	if sem != nil {
		t := time.NewTimer(time.Second)
		select {
		case sem <- struct{}{}:
		case <-t.C:
		}
		t.Stop()
	}
	var err error
	if st != nil {
		if st.recs > 0 {
			err = sh.Checkpoint()
		}
		if cerr := st.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
