package shim

import (
	"math/rand"
	"testing"
)

// benchStream decodes a deterministic update stream for throughput
// benchmarks (same decoder as the differential harness).
func benchStream(t testing.TB, cp *Compiled, n int) []*Update {
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 64*n)
	rng.Read(data)
	fd := &byteFeed{data: data}
	ups := make([]*Update, n)
	for i := range ups {
		ups[i] = fuzzUpdate(cp.file, fd)
	}
	return ups
}

func benchApply(b *testing.B, fastpath bool) {
	cp := widthCompiled(b)
	ups := benchStream(b, cp, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(ups) == 0 {
			b.StopTimer()
			s := NewFromCompiled(cp)
			s.SetFastpath(fastpath)
			b.StartTimer()
			benchShim = s
		}
		_ = benchShim.Apply(ups[i%len(ups)])
	}
}

var benchShim *Shim

func BenchmarkApplyFast(b *testing.B) { benchApply(b, true) }
func BenchmarkApplySlow(b *testing.B) { benchApply(b, false) }
