package shim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math/big"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"bf4/internal/dataplane"
)

// Persistence: the shim's shadow tables, runtime defaults and
// applied-request-ID window are serialized to a snapshot file plus a
// small append-only journal, so a restarted shim (`bf4-shim -state-dir`)
// recovers its exact state without any controller replay. Layout:
//
//	<dir>/snapshot.json   — full state as of journal sequence Seq
//	<dir>/journal.jsonl   — one record per applied mutation since Seq
//
// Mutations are journaled before they are committed to memory; recovery
// loads the snapshot and replays the journal (already-validated updates
// are applied directly). When the journal exceeds CompactEvery records
// it is folded into a fresh snapshot written atomically (tmp + rename)
// and truncated.

const (
	snapshotName   = "snapshot.json"
	journalName    = "journal.jsonl"
	snapshotFormat = 1
)

// persistKey is the serialized form of one dataplane.KeyMatch.
type persistKey struct {
	Value     string `json:"v"`
	Mask      string `json:"m,omitempty"`
	PrefixLen *int   `json:"p,omitempty"`
}

// persistEntry is the serialized form of one dataplane.Entry.
type persistEntry struct {
	Keys     []persistKey `json:"keys"`
	Action   string       `json:"action"`
	Params   []string     `json:"params,omitempty"`
	Priority int          `json:"priority,omitempty"`
}

// persistDefault is the serialized form of a runtime default action.
type persistDefault struct {
	Action string   `json:"action"`
	Params []string `json:"params,omitempty"`
}

// persistOp is one mutation inside a journal record.
type persistOp struct {
	Table   string          `json:"table"`
	Entry   *persistEntry   `json:"entry,omitempty"`
	Default *persistDefault `json:"default,omitempty"`
}

// journalRecord is one line of journal.jsonl.
type journalRecord struct {
	Seq int64       `json:"seq"`
	Key string      `json:"key,omitempty"`
	Ops []persistOp `json:"ops"`
	// CRC is the IEEE CRC-32 of the record marshaled with CRC=0. Zero
	// means "not checksummed" (journals written before this field
	// existed), so recovery stays backward compatible.
	CRC uint32 `json:"crc,omitempty"`
}

// recordCRC checksums a record as it is written: the JSON encoding with
// the CRC field zeroed. json.Marshal is deterministic for a fixed
// struct, so recovery recomputes the identical bytes.
func recordCRC(rec *journalRecord) uint32 {
	c := *rec
	c.CRC = 0
	data, err := json.Marshal(&c)
	if err != nil {
		return 0
	}
	return crc32.ChecksumIEEE(data)
}

// snapshotFile is the on-disk snapshot format.
type snapshotFile struct {
	Format   int                        `json:"format"`
	Program  string                     `json:"program"`
	Seq      int64                      `json:"seq"`
	Tables   map[string][]*persistEntry `json:"tables"`
	Defaults map[string]*persistDefault `json:"defaults,omitempty"`
	// Applied lists the dedup window's successfully applied keys,
	// oldest first.
	Applied []string `json:"applied,omitempty"`
}

func encodeEntry(e *dataplane.Entry) *persistEntry {
	pe := &persistEntry{Action: e.Action, Priority: e.Priority}
	for _, k := range e.Keys {
		pk := persistKey{Value: k.Value.Text(10)}
		if k.Mask != nil {
			pk.Mask = k.Mask.Text(10)
		}
		if k.PrefixLen >= 0 {
			pl := k.PrefixLen
			pk.PrefixLen = &pl
		}
		pe.Keys = append(pe.Keys, pk)
	}
	for _, p := range e.Params {
		pe.Params = append(pe.Params, p.Text(10))
	}
	return pe
}

func decodePersistInt(s string) (*big.Int, error) {
	v, ok := new(big.Int).SetString(s, 10)
	if !ok || v.Sign() < 0 {
		return nil, fmt.Errorf("shim: corrupt persisted integer %q", s)
	}
	return v, nil
}

// decodePersistMask decodes a ternary mask; "-1" is the dataplane's
// full-mask sentinel (two's-complement all-ones at any width) and is
// the one negative value a valid journal can contain.
func decodePersistMask(s string) (*big.Int, error) {
	if s == "-1" {
		return big.NewInt(-1), nil
	}
	return decodePersistInt(s)
}

func decodeEntry(pe *persistEntry) (*dataplane.Entry, error) {
	e := &dataplane.Entry{Action: pe.Action, Priority: pe.Priority}
	for _, pk := range pe.Keys {
		v, err := decodePersistInt(pk.Value)
		if err != nil {
			return nil, err
		}
		km := dataplane.KeyMatch{Value: v, PrefixLen: -1}
		if pk.Mask != "" {
			m, err := decodePersistMask(pk.Mask)
			if err != nil {
				return nil, err
			}
			km.Mask = m
		}
		if pk.PrefixLen != nil {
			km.PrefixLen = *pk.PrefixLen
		}
		e.Keys = append(e.Keys, km)
	}
	for _, p := range pe.Params {
		v, err := decodePersistInt(p)
		if err != nil {
			return nil, err
		}
		e.Params = append(e.Params, v)
	}
	return e, nil
}

func encodeDefault(d *dataplane.DefaultAction) *persistDefault {
	pd := &persistDefault{Action: d.Action}
	for _, p := range d.Params {
		pd.Params = append(pd.Params, p.Text(10))
	}
	return pd
}

func decodeDefault(pd *persistDefault) (*dataplane.DefaultAction, error) {
	d := &dataplane.DefaultAction{Action: pd.Action}
	for _, p := range pd.Params {
		v, err := decodePersistInt(p)
		if err != nil {
			return nil, err
		}
		d.Params = append(d.Params, v)
	}
	return d, nil
}

// Store journals shim mutations under a state directory.
type Store struct {
	dir string

	// mu guards swaps of the journal handle; fenced flips once and stays
	// set. Both exist for the fleet's failover fencing: a superseded shim
	// incarnation may still be mid-operation when its shard restores, and
	// it must not be able to append to — or compact away — the journal
	// the new incarnation now owns.
	mu      sync.Mutex
	journal *os.File
	fenced  atomic.Bool

	recs int

	// CompactEvery folds the journal into a fresh snapshot once it
	// reaches this many records (default 4096).
	CompactEvery int
	// NoSync skips the per-record fsync (faster, loses the last records
	// on power failure; process crashes are still covered by the OS).
	NoSync bool
}

// OpenStore creates (or reuses) a state directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shim: state dir: %w", err)
	}
	return &Store{dir: dir, CompactEvery: 4096}, nil
}

// Dir returns the state directory path.
func (st *Store) Dir() string { return st.dir }

// JournalPath returns the journal file path (for diagnostics upload).
func (st *Store) JournalPath() string { return filepath.Join(st.dir, journalName) }

// SnapshotPath returns the snapshot file path.
func (st *Store) SnapshotPath() string { return filepath.Join(st.dir, snapshotName) }

// Close closes the journal file.
func (st *Store) Close() error {
	st.mu.Lock()
	j := st.journal
	st.journal = nil
	st.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.Close()
}

// Fence permanently disables the store: the journal handle is closed so
// in-flight appends fail, and subsequent appends or checkpoints are
// refused. Because a mutation is journaled before it commits to memory,
// a fenced (zombie) shim incarnation can never apply or acknowledge
// anything the restored incarnation does not also recover from disk.
func (st *Store) Fence() {
	st.fenced.Store(true)
	st.Close()
}

// journalHandle returns the live journal handle (nil once fenced or
// closed).
func (st *Store) journalHandle() *os.File {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.journal
}

// AttachStore loads any persisted state from st into the shim — snapshot
// first, then journal replay — and journals every subsequent mutation.
// Call once, before serving traffic.
func (s *Shim) AttachStore(st *Store) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store != nil {
		return fmt.Errorf("shim: store already attached")
	}

	// 1. Snapshot.
	if data, err := os.ReadFile(st.SnapshotPath()); err == nil {
		var snap snapshotFile
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("shim: corrupt snapshot: %w", err)
		}
		if snap.Format != snapshotFormat {
			return fmt.Errorf("shim: unsupported snapshot format %d", snap.Format)
		}
		for table, pes := range snap.Tables {
			for _, pe := range pes {
				e, err := decodeEntry(pe)
				if err != nil {
					return err
				}
				s.shadow[table] = append(s.shadow[table], e)
			}
		}
		for table, pd := range snap.Defaults {
			d, err := decodeDefault(pd)
			if err != nil {
				return err
			}
			s.defaults[table] = d
		}
		for _, key := range snap.Applied {
			s.recordOutcome(key, nil)
		}
		s.seq = snap.Seq
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("shim: read snapshot: %w", err)
	}

	// 2. Journal replay: records hold already-validated updates, applied
	// directly (this is exactly what makes controller replay unnecessary).
	//
	// A crash during append can leave a torn tail — a final record
	// missing bytes (no trailing newline) or with a flipped byte (CRC
	// mismatch). A torn tail was never acknowledged, so it is detected,
	// counted (bf4_shim_journal_torn_tails_total) and truncated away; the
	// truncation matters because the journal is reopened O_APPEND, and
	// appending after a torn line would concatenate the next record onto
	// garbage, losing an *acknowledged* record at the following recovery.
	// Corruption before the final record is not a crash artifact and is
	// refused outright.
	if data, err := os.ReadFile(st.JournalPath()); err == nil {
		off := 0  // start of the current line
		good := 0 // just past the last whole, valid record
		for off < len(data) {
			nl := bytes.IndexByte(data[off:], '\n')
			complete := nl >= 0
			payload := data[off:]
			next := len(data)
			if complete {
				payload = data[off : off+nl]
				next = off + nl + 1
			}
			if len(bytes.TrimSpace(payload)) == 0 {
				if !complete {
					break // whitespace tail fragment: torn
				}
				off, good = next, next
				continue
			}
			// Strict decoding: a flipped byte inside a field NAME would
			// otherwise demote the field (the CRC, say) to an ignored
			// unknown key and slip past the checksum.
			var rec journalRecord
			dec := json.NewDecoder(bytes.NewReader(payload))
			dec.DisallowUnknownFields()
			parseErr := dec.Decode(&rec)
			if parseErr == nil && dec.More() {
				parseErr = fmt.Errorf("trailing bytes after record")
			}
			if parseErr == nil && rec.CRC != 0 && rec.CRC != recordCRC(&rec) {
				parseErr = fmt.Errorf("crc mismatch")
			}
			if parseErr != nil || !complete {
				if next < len(data) {
					// Not the final line: real corruption, not a torn
					// append. Refuse to guess at the state.
					return fmt.Errorf("shim: corrupt journal record at offset %d: %v", off, parseErr)
				}
				break // torn tail
			}
			st.recs++
			if rec.Seq != 0 && rec.Seq <= s.seq {
				// Already folded into the snapshot (possible when a crash
				// lands between snapshot rename and journal truncation).
				off, good = next, next
				continue
			}
			if rec.Key != "" {
				if prev, seen := s.applied[rec.Key]; seen && prev == nil {
					// Duplicate idempotency key: the mutation was already
					// applied (snapshot window or an earlier record).
					s.seq = rec.Seq
					off, good = next, next
					continue
				}
			}
			for _, op := range rec.Ops {
				u := &Update{Table: op.Table}
				if op.Entry != nil {
					e, err := decodeEntry(op.Entry)
					if err != nil {
						return err
					}
					u.Entry = e
				}
				if op.Default != nil {
					d, err := decodeDefault(op.Default)
					if err != nil {
						return err
					}
					u.SetDefault = d
				}
				s.commitLocked(u)
			}
			s.recordOutcome(rec.Key, nil)
			s.seq = rec.Seq
			off, good = next, next
		}
		if good < len(data) {
			if err := os.Truncate(st.JournalPath(), int64(good)); err != nil {
				return fmt.Errorf("shim: truncate torn journal tail: %w", err)
			}
			s.obs.journalTornTails.Inc()
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("shim: read journal: %w", err)
	}

	// 3. Reopen the journal for appending.
	jf, err := os.OpenFile(st.JournalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("shim: open journal: %w", err)
	}
	st.mu.Lock()
	st.journal = jf
	st.mu.Unlock()
	s.store = st
	return nil
}

// JournalLag returns the number of journal records appended since the
// last checkpoint — how much replay the next recovery (or failover)
// would have to do. Zero without an attached store.
func (s *Shim) JournalLag() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return 0
	}
	return s.store.recs
}

// journalLocked appends one record covering updates. A nil store is a
// no-op. Called with s.mu held, before the updates are committed.
func (s *Shim) journalLocked(key string, updates []*Update) error {
	st := s.store
	if st == nil {
		return nil
	}
	rec := journalRecord{Seq: s.seq + 1, Key: key}
	for _, u := range updates {
		op := persistOp{Table: u.Table}
		if u.Entry != nil {
			op.Entry = encodeEntry(u.Entry)
		}
		if u.SetDefault != nil {
			op.Default = encodeDefault(u.SetDefault)
		}
		rec.Ops = append(rec.Ops, op)
	}
	rec.CRC = recordCRC(&rec)
	data, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("shim: journal encode: %w", err)
	}
	j := st.journalHandle()
	if j == nil {
		return fmt.Errorf("shim: journal append: store fenced")
	}
	if _, err := j.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("shim: journal append: %w", err)
	}
	if !st.NoSync {
		if err := j.Sync(); err != nil {
			return fmt.Errorf("shim: journal sync: %w", err)
		}
	}
	if st.fenced.Load() {
		// Fenced between append and now: the record is durable (the next
		// incarnation replays it) but THIS incarnation must not commit or
		// acknowledge — its shard has moved on. The caller's retry
		// resolves through the idempotency window.
		return fmt.Errorf("shim: journal append: store fenced mid-append")
	}
	s.seq = rec.Seq
	st.recs++
	s.obs.journalAppends.Inc()
	return nil
}

// maybeCheckpointLocked compacts once the journal is due. Must run after
// the journaled updates are committed, so the snapshot includes them.
func (s *Shim) maybeCheckpointLocked() error {
	st := s.store
	if st == nil || st.CompactEvery <= 0 || st.recs < st.CompactEvery {
		return nil
	}
	return s.checkpointLocked()
}

// Checkpoint folds the journal into a freshly written snapshot.
func (s *Shim) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return fmt.Errorf("shim: no store attached")
	}
	return s.checkpointLocked()
}

func (s *Shim) checkpointLocked() error {
	st := s.store
	if st.fenced.Load() {
		return fmt.Errorf("shim: checkpoint: store fenced")
	}
	snap := snapshotFile{
		Format:   snapshotFormat,
		Program:  s.cp.file.Program,
		Seq:      s.seq,
		Tables:   map[string][]*persistEntry{},
		Defaults: map[string]*persistDefault{},
	}
	for table, es := range s.shadow {
		for _, e := range es {
			snap.Tables[table] = append(snap.Tables[table], encodeEntry(e))
		}
	}
	for table, d := range s.defaults {
		snap.Defaults[table] = encodeDefault(d)
	}
	// Dedup window, oldest first (ring order), applied keys only.
	for i := 0; i < len(s.appliedOrder); i++ {
		key := s.appliedOrder[(s.appliedHead+i)%len(s.appliedOrder)]
		if err, ok := s.applied[key]; ok && err == nil {
			snap.Applied = append(snap.Applied, key)
		}
	}
	data, err := json.MarshalIndent(&snap, "", " ")
	if err != nil {
		return fmt.Errorf("shim: snapshot encode: %w", err)
	}
	tmp := st.SnapshotPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("shim: snapshot write: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("shim: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("shim: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Publish the snapshot and truncate the journal under the store
	// lock, re-checking the fence — a zombie incarnation must never
	// replace the snapshot of, or truncate the journal of, a restored
	// incarnation that now owns this directory.
	st.mu.Lock()
	if st.fenced.Load() {
		st.mu.Unlock()
		os.Remove(tmp)
		return fmt.Errorf("shim: checkpoint: store fenced")
	}
	if err := os.Rename(tmp, st.SnapshotPath()); err != nil {
		st.mu.Unlock()
		return fmt.Errorf("shim: snapshot rename: %w", err)
	}
	if st.journal != nil {
		st.journal.Close()
	}
	jf, err := os.OpenFile(st.JournalPath(), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		st.journal = nil
		st.mu.Unlock()
		return fmt.Errorf("shim: journal truncate: %w", err)
	}
	st.journal = jf
	st.mu.Unlock()
	st.recs = 0
	s.obs.checkpoints.Inc()
	return nil
}

// MarshalSnapshot serializes the shadow state (tables + runtime
// defaults) deterministically: table names sorted (JSON map order),
// entries in insertion order. Two shims holding the same logical state
// produce byte-identical output — the equality the chaos tests assert.
func (s *Shim) MarshalSnapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := struct {
		Tables   map[string][]*persistEntry `json:"tables"`
		Defaults map[string]*persistDefault `json:"defaults,omitempty"`
	}{Tables: map[string][]*persistEntry{}, Defaults: map[string]*persistDefault{}}
	for table, es := range s.shadow {
		if len(es) == 0 {
			continue
		}
		for _, e := range es {
			out.Tables[table] = append(out.Tables[table], encodeEntry(e))
		}
	}
	for table, d := range s.defaults {
		out.Defaults[table] = encodeDefault(d)
	}
	return json.MarshalIndent(&out, "", " ")
}
