package shim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/big"
	"os"
	"path/filepath"

	"bf4/internal/dataplane"
)

// Persistence: the shim's shadow tables, runtime defaults and
// applied-request-ID window are serialized to a snapshot file plus a
// small append-only journal, so a restarted shim (`bf4-shim -state-dir`)
// recovers its exact state without any controller replay. Layout:
//
//	<dir>/snapshot.json   — full state as of journal sequence Seq
//	<dir>/journal.jsonl   — one record per applied mutation since Seq
//
// Mutations are journaled before they are committed to memory; recovery
// loads the snapshot and replays the journal (already-validated updates
// are applied directly). When the journal exceeds CompactEvery records
// it is folded into a fresh snapshot written atomically (tmp + rename)
// and truncated.

const (
	snapshotName   = "snapshot.json"
	journalName    = "journal.jsonl"
	snapshotFormat = 1
)

// persistKey is the serialized form of one dataplane.KeyMatch.
type persistKey struct {
	Value     string `json:"v"`
	Mask      string `json:"m,omitempty"`
	PrefixLen *int   `json:"p,omitempty"`
}

// persistEntry is the serialized form of one dataplane.Entry.
type persistEntry struct {
	Keys     []persistKey `json:"keys"`
	Action   string       `json:"action"`
	Params   []string     `json:"params,omitempty"`
	Priority int          `json:"priority,omitempty"`
}

// persistDefault is the serialized form of a runtime default action.
type persistDefault struct {
	Action string   `json:"action"`
	Params []string `json:"params,omitempty"`
}

// persistOp is one mutation inside a journal record.
type persistOp struct {
	Table   string          `json:"table"`
	Entry   *persistEntry   `json:"entry,omitempty"`
	Default *persistDefault `json:"default,omitempty"`
}

// journalRecord is one line of journal.jsonl.
type journalRecord struct {
	Seq int64       `json:"seq"`
	Key string      `json:"key,omitempty"`
	Ops []persistOp `json:"ops"`
}

// snapshotFile is the on-disk snapshot format.
type snapshotFile struct {
	Format   int                        `json:"format"`
	Program  string                     `json:"program"`
	Seq      int64                      `json:"seq"`
	Tables   map[string][]*persistEntry `json:"tables"`
	Defaults map[string]*persistDefault `json:"defaults,omitempty"`
	// Applied lists the dedup window's successfully applied keys,
	// oldest first.
	Applied []string `json:"applied,omitempty"`
}

func encodeEntry(e *dataplane.Entry) *persistEntry {
	pe := &persistEntry{Action: e.Action, Priority: e.Priority}
	for _, k := range e.Keys {
		pk := persistKey{Value: k.Value.Text(10)}
		if k.Mask != nil {
			pk.Mask = k.Mask.Text(10)
		}
		if k.PrefixLen >= 0 {
			pl := k.PrefixLen
			pk.PrefixLen = &pl
		}
		pe.Keys = append(pe.Keys, pk)
	}
	for _, p := range e.Params {
		pe.Params = append(pe.Params, p.Text(10))
	}
	return pe
}

func decodePersistInt(s string) (*big.Int, error) {
	v, ok := new(big.Int).SetString(s, 10)
	if !ok || v.Sign() < 0 {
		return nil, fmt.Errorf("shim: corrupt persisted integer %q", s)
	}
	return v, nil
}

// decodePersistMask decodes a ternary mask; "-1" is the dataplane's
// full-mask sentinel (two's-complement all-ones at any width) and is
// the one negative value a valid journal can contain.
func decodePersistMask(s string) (*big.Int, error) {
	if s == "-1" {
		return big.NewInt(-1), nil
	}
	return decodePersistInt(s)
}

func decodeEntry(pe *persistEntry) (*dataplane.Entry, error) {
	e := &dataplane.Entry{Action: pe.Action, Priority: pe.Priority}
	for _, pk := range pe.Keys {
		v, err := decodePersistInt(pk.Value)
		if err != nil {
			return nil, err
		}
		km := dataplane.KeyMatch{Value: v, PrefixLen: -1}
		if pk.Mask != "" {
			m, err := decodePersistMask(pk.Mask)
			if err != nil {
				return nil, err
			}
			km.Mask = m
		}
		if pk.PrefixLen != nil {
			km.PrefixLen = *pk.PrefixLen
		}
		e.Keys = append(e.Keys, km)
	}
	for _, p := range pe.Params {
		v, err := decodePersistInt(p)
		if err != nil {
			return nil, err
		}
		e.Params = append(e.Params, v)
	}
	return e, nil
}

func encodeDefault(d *dataplane.DefaultAction) *persistDefault {
	pd := &persistDefault{Action: d.Action}
	for _, p := range d.Params {
		pd.Params = append(pd.Params, p.Text(10))
	}
	return pd
}

func decodeDefault(pd *persistDefault) (*dataplane.DefaultAction, error) {
	d := &dataplane.DefaultAction{Action: pd.Action}
	for _, p := range pd.Params {
		v, err := decodePersistInt(p)
		if err != nil {
			return nil, err
		}
		d.Params = append(d.Params, v)
	}
	return d, nil
}

// Store journals shim mutations under a state directory.
type Store struct {
	dir     string
	journal *os.File
	recs    int

	// CompactEvery folds the journal into a fresh snapshot once it
	// reaches this many records (default 4096).
	CompactEvery int
	// NoSync skips the per-record fsync (faster, loses the last records
	// on power failure; process crashes are still covered by the OS).
	NoSync bool
}

// OpenStore creates (or reuses) a state directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shim: state dir: %w", err)
	}
	return &Store{dir: dir, CompactEvery: 4096}, nil
}

// Dir returns the state directory path.
func (st *Store) Dir() string { return st.dir }

// JournalPath returns the journal file path (for diagnostics upload).
func (st *Store) JournalPath() string { return filepath.Join(st.dir, journalName) }

// SnapshotPath returns the snapshot file path.
func (st *Store) SnapshotPath() string { return filepath.Join(st.dir, snapshotName) }

// Close closes the journal file.
func (st *Store) Close() error {
	if st.journal == nil {
		return nil
	}
	err := st.journal.Close()
	st.journal = nil
	return err
}

// AttachStore loads any persisted state from st into the shim — snapshot
// first, then journal replay — and journals every subsequent mutation.
// Call once, before serving traffic.
func (s *Shim) AttachStore(st *Store) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store != nil {
		return fmt.Errorf("shim: store already attached")
	}

	// 1. Snapshot.
	if data, err := os.ReadFile(st.SnapshotPath()); err == nil {
		var snap snapshotFile
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("shim: corrupt snapshot: %w", err)
		}
		if snap.Format != snapshotFormat {
			return fmt.Errorf("shim: unsupported snapshot format %d", snap.Format)
		}
		for table, pes := range snap.Tables {
			for _, pe := range pes {
				e, err := decodeEntry(pe)
				if err != nil {
					return err
				}
				s.shadow[table] = append(s.shadow[table], e)
			}
		}
		for table, pd := range snap.Defaults {
			d, err := decodeDefault(pd)
			if err != nil {
				return err
			}
			s.defaults[table] = d
		}
		for _, key := range snap.Applied {
			s.recordOutcome(key, nil)
		}
		s.seq = snap.Seq
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("shim: read snapshot: %w", err)
	}

	// 2. Journal replay: records hold already-validated updates, applied
	// directly (this is exactly what makes controller replay unnecessary).
	if jf, err := os.Open(st.JournalPath()); err == nil {
		sc := bufio.NewScanner(jf)
		sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec journalRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				// A torn final record (crash mid-append) is expected; it
				// was never acknowledged, so dropping it is safe. Stop at
				// the first unparsable line.
				break
			}
			for _, op := range rec.Ops {
				u := &Update{Table: op.Table}
				if op.Entry != nil {
					e, err := decodeEntry(op.Entry)
					if err != nil {
						jf.Close()
						return err
					}
					u.Entry = e
				}
				if op.Default != nil {
					d, err := decodeDefault(op.Default)
					if err != nil {
						jf.Close()
						return err
					}
					u.SetDefault = d
				}
				s.commitLocked(u)
			}
			s.recordOutcome(rec.Key, nil)
			s.seq = rec.Seq
			st.recs++
		}
		jf.Close()
		if err := sc.Err(); err != nil {
			return fmt.Errorf("shim: read journal: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("shim: open journal: %w", err)
	}

	// 3. Reopen the journal for appending.
	jf, err := os.OpenFile(st.JournalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("shim: open journal: %w", err)
	}
	st.journal = jf
	s.store = st
	return nil
}

// journalLocked appends one record covering updates. A nil store is a
// no-op. Called with s.mu held, before the updates are committed.
func (s *Shim) journalLocked(key string, updates []*Update) error {
	st := s.store
	if st == nil {
		return nil
	}
	rec := journalRecord{Seq: s.seq + 1, Key: key}
	for _, u := range updates {
		op := persistOp{Table: u.Table}
		if u.Entry != nil {
			op.Entry = encodeEntry(u.Entry)
		}
		if u.SetDefault != nil {
			op.Default = encodeDefault(u.SetDefault)
		}
		rec.Ops = append(rec.Ops, op)
	}
	data, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("shim: journal encode: %w", err)
	}
	if _, err := st.journal.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("shim: journal append: %w", err)
	}
	if !st.NoSync {
		if err := st.journal.Sync(); err != nil {
			return fmt.Errorf("shim: journal sync: %w", err)
		}
	}
	s.seq = rec.Seq
	st.recs++
	s.obs.journalAppends.Inc()
	return nil
}

// maybeCheckpointLocked compacts once the journal is due. Must run after
// the journaled updates are committed, so the snapshot includes them.
func (s *Shim) maybeCheckpointLocked() error {
	st := s.store
	if st == nil || st.CompactEvery <= 0 || st.recs < st.CompactEvery {
		return nil
	}
	return s.checkpointLocked()
}

// Checkpoint folds the journal into a freshly written snapshot.
func (s *Shim) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return fmt.Errorf("shim: no store attached")
	}
	return s.checkpointLocked()
}

func (s *Shim) checkpointLocked() error {
	st := s.store
	snap := snapshotFile{
		Format:   snapshotFormat,
		Program:  s.file.Program,
		Seq:      s.seq,
		Tables:   map[string][]*persistEntry{},
		Defaults: map[string]*persistDefault{},
	}
	for table, es := range s.shadow {
		for _, e := range es {
			snap.Tables[table] = append(snap.Tables[table], encodeEntry(e))
		}
	}
	for table, d := range s.defaults {
		snap.Defaults[table] = encodeDefault(d)
	}
	// Dedup window, oldest first (ring order), applied keys only.
	for i := 0; i < len(s.appliedOrder); i++ {
		key := s.appliedOrder[(s.appliedHead+i)%len(s.appliedOrder)]
		if err, ok := s.applied[key]; ok && err == nil {
			snap.Applied = append(snap.Applied, key)
		}
	}
	data, err := json.MarshalIndent(&snap, "", " ")
	if err != nil {
		return fmt.Errorf("shim: snapshot encode: %w", err)
	}
	tmp := st.SnapshotPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("shim: snapshot write: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("shim: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("shim: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, st.SnapshotPath()); err != nil {
		return fmt.Errorf("shim: snapshot rename: %w", err)
	}
	// Truncate the journal: its records are folded into the snapshot.
	if st.journal != nil {
		st.journal.Close()
	}
	jf, err := os.OpenFile(st.JournalPath(), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("shim: journal truncate: %w", err)
	}
	st.journal = jf
	st.recs = 0
	s.obs.checkpoints.Inc()
	return nil
}

// MarshalSnapshot serializes the shadow state (tables + runtime
// defaults) deterministically: table names sorted (JSON map order),
// entries in insertion order. Two shims holding the same logical state
// produce byte-identical output — the equality the chaos tests assert.
func (s *Shim) MarshalSnapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := struct {
		Tables   map[string][]*persistEntry `json:"tables"`
		Defaults map[string]*persistDefault `json:"defaults,omitempty"`
	}{Tables: map[string][]*persistEntry{}, Defaults: map[string]*persistDefault{}}
	for table, es := range s.shadow {
		if len(es) == 0 {
			continue
		}
		for _, e := range es {
			out.Tables[table] = append(out.Tables[table], encodeEntry(e))
		}
	}
	for table, d := range s.defaults {
		out.Defaults[table] = encodeDefault(d)
	}
	return json.MarshalIndent(&out, "", " ")
}
