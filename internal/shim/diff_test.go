package shim

import (
	"bytes"
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"bf4/internal/dataplane"
	"bf4/internal/spec"
)

// This file is the two-tier equivalence harness: the same update stream
// replayed through a fast-path shim and a slow-path (-fastpath=off) shim
// must produce byte-identical accept/reject decisions, rejection
// messages, and shadow state. The update decoder is byte-driven so the
// deterministic replay tests and FuzzFastpath share one adversarial
// workload shape.

// widthFile is a handcrafted spec exercising every fast-path boundary:
// exact/ternary/lpm keys at widths 1, 63 and 64; a 65-bit action
// parameter (must fall back: too wide for the register machine); an
// unbound non-shadow variable (evaluates to zero on both tiers); a
// linked two-table assertion (compiled into the per-shadow-entry scan
// tier); and action-parameter guards that are bound only when the entry
// selects that action.
func widthFile() *spec.File {
	return &spec.File{
		Program: "widths",
		Tables: []*spec.TableSchema{
			{
				Name:   "wide",
				Prefix: "w$0",
				Keys: []spec.KeySchema{
					{Path: "hdr.a.f64", MatchKind: "exact", Width: 64},
					{Path: "hdr.a.f63", MatchKind: "ternary", Width: 63},
					{Path: "hdr.a.dst", MatchKind: "lpm", Width: 64},
					{Path: "hdr.a.bit", MatchKind: "exact", Width: 1},
				},
				Actions: []*spec.ActionSchema{
					{Name: "NoAction", Index: 0},
					{Name: "actA", Index: 1, Params: []spec.ParamSchema{
						{Name: "p64", Width: 64}, {Name: "p65", Width: 65}}},
					{Name: "actB", Index: 2, Params: []spec.ParamSchema{
						{Name: "q", Width: 1}}, Buggy: true},
				},
				Default: "NoAction",
			},
			{
				Name:   "small",
				Prefix: "s$0",
				Keys: []spec.KeySchema{
					{Path: "hdr.h.isValid()", MatchKind: "exact", Width: 1},
					{Path: "hdr.h.port", MatchKind: "ternary", Width: 8},
				},
				Actions: []*spec.ActionSchema{
					{Name: "NoAction", Index: 0},
					{Name: "go_", Index: 1, Params: []spec.ParamSchema{
						{Name: "port", Width: 9}}},
				},
				Default: "NoAction",
			},
			{
				Name:    "peer",
				Prefix:  "p$0",
				Keys:    []spec.KeySchema{{Path: "hdr.h.idx", MatchKind: "exact", Width: 8}},
				Actions: []*spec.ActionSchema{{Name: "NoAction", Index: 0}, {Name: "fwd", Index: 1}},
				Default: "NoAction",
			},
		},
		Assertions: []*spec.Assertion{
			{
				Table:  "wide",
				Source: "width-boundary",
				Forbidden: []string{
					"(and |w$0.hit| (= |w$0.key0| (_ bv0 64)) (bvult |w$0.key1| |w$0.mask1|))",
					"(and (= |w$0.action_run| (_ bv2 4)) (= |w$0.actB.q| (_ bv1 1)))",
					"(bvult (bvadd |w$0.key2| (_ bv1 64)) |w$0.mask2|)",
				},
				Vars: map[string]int{
					"w$0.hit": 0, "w$0.key0": 64, "w$0.key1": 63, "w$0.mask1": 63,
					"w$0.action_run": 4, "w$0.actB.q": 1, "w$0.key2": 64, "w$0.mask2": 64,
				},
			},
			{
				Table:  "wide",
				Source: "wide-param",
				Forbidden: []string{
					"(and (= |w$0.action_run| (_ bv1 4)) (not (= |w$0.actA.p65| (_ bv0 65))))",
				},
				Vars: map[string]int{"w$0.action_run": 4, "w$0.actA.p65": 65},
			},
			{
				Table:  "wide",
				Source: "ghost-var",
				Forbidden: []string{
					"(and |w$0.hit| |w$0.ghost| (= |w$0.key3| (_ bv0 1)))",
				},
				Vars: map[string]int{"w$0.hit": 0, "w$0.ghost": 0, "w$0.key3": 1},
			},
			{
				Table:  "small",
				Linked: "peer",
				Source: "linked",
				Forbidden: []string{
					"(and |s$0.hit| (= |s$0.key0| (_ bv0 1)) |p$0.hit| (= |p$0.key0| (_ bv3 8)))",
				},
				Vars: map[string]int{"s$0.hit": 0, "s$0.key0": 1, "p$0.hit": 0, "p$0.key0": 8},
			},
			{
				Table:  "small",
				Source: "param-guard",
				Forbidden: []string{
					"(and |s$0.hit| (= |s$0.key0| (_ bv0 1)) (not (= |s$0.mask1| (_ bv0 8))))",
					"(and (= |s$0.action_run| (_ bv1 2)) (bvule (_ bv256 9) |s$0.go_.port|))",
				},
				Vars: map[string]int{
					"s$0.hit": 0, "s$0.key0": 1, "s$0.mask1": 8,
					"s$0.action_run": 2, "s$0.go_.port": 9,
				},
			},
		},
	}
}

var (
	widthOnce sync.Once
	widthCp   *Compiled
)

// widthCompiled compiles widthFile once: Compiled is immutable and
// shared, exactly as fleet shards share it.
func widthCompiled(t testing.TB) *Compiled {
	widthOnce.Do(func() {
		cp, err := Compile(widthFile())
		if err == nil {
			widthCp = cp
		}
	})
	if widthCp == nil {
		t.Fatal("widthFile failed to compile")
	}
	return widthCp
}

// diffPair returns two shims over one compiled annotation set, the
// second with the fast path disabled (the reference semantics).
func diffPair(t testing.TB, cp *Compiled) (fast, slow *Shim) {
	t.Helper()
	fast = NewFromCompiled(cp)
	slow = NewFromCompiled(cp)
	slow.SetFastpath(false)
	return fast, slow
}

// applyBoth applies one update to both tiers and requires byte-identical
// outcomes (including the rejection message).
func applyBoth(t testing.TB, fast, slow *Shim, u *Update) {
	t.Helper()
	errF := fast.Apply(u)
	errS := slow.Apply(u)
	switch {
	case (errF == nil) != (errS == nil):
		t.Fatalf("tiers disagree on update to %s: fast=%v slow=%v", u.Table, errF, errS)
	case errF != nil && errF.Error() != errS.Error():
		t.Fatalf("tiers reject with different messages:\nfast: %s\nslow: %s", errF, errS)
	}
}

// finishDiff asserts the end states match byte for byte and that the
// tiers actually took different paths.
func finishDiff(t testing.TB, fast, slow *Shim) {
	t.Helper()
	bf, err := fast.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	bs, err := slow.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bf, bs) {
		t.Fatalf("shadow snapshots differ:\nfast:\n%s\nslow:\n%s", bf, bs)
	}
	sf, ss := fast.Stats(), slow.Stats()
	if sf.Validated != ss.Validated || sf.Rejected != ss.Rejected {
		t.Fatalf("stats differ: fast=%+v slow=%+v", sf, ss)
	}
	if ss.FastpathHits != 0 {
		t.Fatalf("slow tier took the fast path %d times", ss.FastpathHits)
	}
}

// byteFeed drives the update decoder; exhausted feeds return zeros so
// any prefix of a fuzz input decodes deterministically.
type byteFeed struct {
	data []byte
	pos  int
}

func (b *byteFeed) next() byte {
	if b.pos >= len(b.data) {
		return 0
	}
	c := b.data[b.pos]
	b.pos++
	return c
}

func (b *byteFeed) big(nb int) *big.Int {
	buf := make([]byte, nb)
	for i := range buf {
		buf[i] = b.next()
	}
	return new(big.Int).SetBytes(buf)
}

// fuzzUpdate decodes one controller update: mostly schema-conformant
// inserts with adversarial values (overflowing key widths, 64-bit-plus
// words, nil and oversized ternary masks, out-of-range prefix lengths,
// missing params), plus every error path the shim special-cases
// (unknown table, empty update, arity breaks, unknown actions, default
// changes onto buggy actions).
func fuzzUpdate(file *spec.File, fd *byteFeed) *Update {
	ts := file.Tables[int(fd.next())%len(file.Tables)]
	op := fd.next()
	switch {
	case op == 250:
		return &Update{Table: "no_such_table", Entry: &dataplane.Entry{}}
	case op == 251:
		return &Update{Table: ts.Name} // empty update
	case op%16 == 0:
		act := ts.Actions[int(fd.next())%len(ts.Actions)]
		return &Update{Table: ts.Name, SetDefault: &dataplane.DefaultAction{Action: act.Name}}
	}
	e := &dataplane.Entry{}
	for _, k := range ts.Keys {
		nb := (k.Width + 7) / 8
		if fd.next()%7 == 0 {
			nb += 9 // overflow the key width (and any 64-bit word)
		}
		km := dataplane.KeyMatch{Value: fd.big(nb), PrefixLen: -1}
		switch k.MatchKind {
		case "ternary":
			if fd.next()%4 != 0 {
				km.Mask = fd.big(nb)
			}
		case "lpm":
			km.PrefixLen = int(fd.next())%(k.Width+4) - 1 // -1 .. width+2
		}
		e.Keys = append(e.Keys, km)
	}
	if op%13 == 0 && len(e.Keys) > 0 {
		e.Keys = e.Keys[:len(e.Keys)-1] // arity break
	}
	ai := int(fd.next())
	if ai%11 == 0 {
		e.Action = "bogus_action"
	} else {
		a := ts.Actions[ai%len(ts.Actions)]
		e.Action = a.Name
		np := len(a.Params)
		if np > 0 && fd.next()%5 == 0 {
			np-- // short params: the missing one reads as zero
		}
		for pi := 0; pi < np; pi++ {
			e.Params = append(e.Params, fd.big((a.Params[pi].Width+7)/8))
		}
	}
	return &Update{Table: ts.Name, Entry: e}
}

// TestDifferentialReplayWidths replays a long adversarial stream over
// the width-boundary spec and requires identical behavior, with both
// tiers provably exercised.
func TestDifferentialReplayWidths(t *testing.T) {
	cp := widthCompiled(t)
	fast, slow := diffPair(t, cp)
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 1<<18)
	rng.Read(data)
	fd := &byteFeed{data: data}
	for i := 0; i < 2500; i++ {
		applyBoth(t, fast, slow, fuzzUpdate(cp.file, fd))
	}
	finishDiff(t, fast, slow)
	sf := fast.Stats()
	if sf.FastpathHits == 0 {
		t.Fatal("fast tier never ran a compiled program")
	}
	if sf.SlowpathHits == 0 {
		t.Fatal("fast tier never fell back (wide-param and linked assertions must)")
	}
	if sf.Rejected == 0 || sf.Rejected == sf.Validated {
		t.Fatalf("stream not adversarial enough: %d/%d rejected", sf.Rejected, sf.Validated)
	}
}

// TestDifferentialReplayNAT replays an adversarial stream over the full
// bf4-inferred NAT spec (the paper's running example) — fast vs slow.
func TestDifferentialReplayNAT(t *testing.T) {
	_, _, file := buildNATShim(t)
	cp, err := Compile(file)
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := diffPair(t, cp)
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 1<<17)
	rng.Read(data)
	fd := &byteFeed{data: data}
	for i := 0; i < 2000; i++ {
		applyBoth(t, fast, slow, fuzzUpdate(cp.file, fd))
	}
	// The paper's faulty rule, verbatim.
	applyBoth(t, fast, slow, &Update{Table: "nat", Entry: &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewExact(0), dataplane.NewTernary(0x0A000000, 0xFF000000)},
		Action: "nat_hit",
		Params: []*big.Int{big.NewInt(1)},
	}})
	finishDiff(t, fast, slow)
	if fast.Stats().FastpathHits == 0 {
		t.Fatal("NAT assertions should compile to the fast path")
	}
}

// TestDifferentialShadowGrowth drives the linked (shadow-resolved)
// assertion specifically: peer entries change how small-table updates
// are judged, and both tiers must agree at every shadow size.
func TestDifferentialShadowGrowth(t *testing.T) {
	cp := widthCompiled(t)
	fast, slow := diffPair(t, cp)
	small := func(valid int64, mask *big.Int) *Update {
		km := dataplane.KeyMatch{Value: big.NewInt(0x55), Mask: mask, PrefixLen: -1}
		return &Update{Table: "small", Entry: &dataplane.Entry{
			Keys:   []dataplane.KeyMatch{{Value: big.NewInt(valid), PrefixLen: -1}, km},
			Action: "NoAction",
		}}
	}
	peer := func(idx int64) *Update {
		return &Update{Table: "peer", Entry: &dataplane.Entry{
			Keys:   []dataplane.KeyMatch{{Value: big.NewInt(idx), PrefixLen: -1}},
			Action: "fwd",
		}}
	}
	// Empty shadow: the linked condition treats peer.hit as false.
	applyBoth(t, fast, slow, small(0, nil))
	// Non-matching peer entry, then the matching one (key0 == 3).
	applyBoth(t, fast, slow, peer(9))
	applyBoth(t, fast, slow, small(0, nil))
	applyBoth(t, fast, slow, peer(3))
	applyBoth(t, fast, slow, small(0, nil))
	applyBoth(t, fast, slow, small(1, nil))
	finishDiff(t, fast, slow)
}

// FuzzFastpath: the headline oracle. Arbitrary byte strings decode into
// update streams; fast and slow tiers must stay byte-identical on
// decisions, messages and shadow state.
func FuzzFastpath(f *testing.F) {
	// Seeds cover: a clean wide-table insert (exact/ternary/lpm keys at
	// widths 64/63/64/1), a small-table insert with a 9-bit param, the
	// shadow-fallback pair (peer insert then small insert), a SetDefault
	// onto the buggy action, an arity break, an unknown table, an empty
	// update, and width-overflow values.
	f.Add([]byte{0x00, 0x01, 0x01, 1, 2, 3, 4, 5, 6, 7, 8, 0x01, 9, 9, 9, 9, 9, 9, 9, 8, 0x01, 1, 1, 1, 1, 1, 1, 1, 1, 0x05, 0x01, 1, 0x03})
	f.Add([]byte{0x01, 0x02, 0x01, 1, 0x01, 0xff, 0x01, 0x0e, 0x01, 0xff, 0x01})
	f.Add([]byte{0x02, 0x01, 0x01, 3, 0x0e, 0x01, 0x01, 0x01, 0, 0x01, 0x55, 0x03})
	f.Add([]byte{0x00, 0x10, 0x02})
	f.Add([]byte{0x00, 0x0d, 0x01, 1, 1, 1, 1, 1, 1, 1, 1, 0x01, 2, 2, 2, 2, 2, 2, 2, 2, 0x01, 3, 3, 3, 3, 3, 3, 3, 3, 0x01, 1, 0x01})
	f.Add([]byte{0x00, 0xfa})
	f.Add([]byte{0x01, 0xfb})
	f.Add([]byte{0x00, 0x03, 0x00, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		cp := widthCompiled(t)
		fast, slow := diffPair(t, cp)
		fd := &byteFeed{data: data}
		n := 1 + len(data)/8
		if n > 64 {
			n = 64
		}
		for i := 0; i < n; i++ {
			applyBoth(t, fast, slow, fuzzUpdate(cp.file, fd))
		}
		finishDiff(t, fast, slow)
	})
}
