// Solver confirmation for information-flow alarms. The dataflow half
// (internal/analysis RunTaint) over-approximates: it flags every sink a
// label analysis cannot prove clean. ConfirmLeaks runs the precise half
// of the contract — each alarm's BugInfoLeak node already carries a
// reachability condition (taint != 0 conjoined with the path condition,
// via the standard wp machinery), so a single satisfiability query per
// alarm either confirms the leak with a witness model or dismisses it as
// infeasible. This is the PR3 discharge contract in reverse: there the
// dataflow pass saves solver queries; here the solver retires dataflow
// false positives.
package core

import (
	"sync"
	"time"

	"bf4/internal/ir"
	"bf4/internal/obs"
	"bf4/internal/smt"
	"bf4/internal/solver"
)

// CheckVerdict is the solver's answer for one bug node handed to
// ConfirmNodes (a taint alarm, a user @assert, ...).
type CheckVerdict struct {
	// Node is the bug terminal the verdict is about.
	Node *ir.Node
	// Confirmed means the solver found a packet (model) that reaches the
	// bug node; Model is that satisfying assignment.
	Confirmed bool
	Model     smt.Env
	// Discharged marks nodes dismissed without a solver query: the
	// reachability condition was absent, already false, or folded to
	// false by the rewrite engine.
	Discharged bool
}

// LeakVerdict is the information-flow name for a CheckVerdict.
type LeakVerdict = CheckVerdict

// ConfirmOptions configures the confirmation phase.
type ConfirmOptions struct {
	// Workers is the number of parallel solver workers; values < 1 mean
	// one. Each worker owns a private solver over the shared term
	// factory (hash-consing is mutex-guarded), and verdicts are indexed
	// by alarm position, so results are deterministic for any count.
	Workers int
	// Incremental runs each worker's checks inside retractable
	// activation scopes (solver.CheckIn/Retract) on one persistent
	// solver, like the bug-finding phase.
	Incremental bool
	// Obs/Trace attach observability; nil disables it.
	Obs   *obs.Registry
	Trace *obs.Span
}

// ConfirmLeaks decides each alarm bug node with the solver. It is
// ConfirmNodes under its original information-flow name, plus the iflow
// observability counters.
func (pl *Pipeline) ConfirmLeaks(alarms []*ir.Node, opts ConfirmOptions) ([]*LeakVerdict, time.Duration) {
	out, dur := pl.ConfirmNodes(alarms, opts, "confirm-leaks")
	if opts.Obs != nil {
		confirmed, discharged := 0, 0
		for _, v := range out {
			if v.Confirmed {
				confirmed++
			}
			if v.Discharged {
				discharged++
			}
		}
		opts.Obs.Counter("bf4_iflow_alarms_total").Add(int64(len(alarms)))
		opts.Obs.Counter("bf4_iflow_confirmed_total").Add(int64(confirmed))
		opts.Obs.Counter("bf4_iflow_dismissed_total").Add(int64(len(alarms) - confirmed))
		opts.Obs.Counter("bf4_iflow_discharged_fold_total").Add(int64(discharged))
	}
	return out, dur
}

// ConfirmNodes decides each bug node with the solver: Confirmed with a
// witness model when its reachability condition is satisfiable,
// Discharged when the condition is absent or folds to false, dismissed
// (neither flag) when the solver proves it unreachable. The returned
// slice is parallel to nodes: verdict i answers nodes[i]. Verdicts do
// not depend on Workers or Incremental — only wall-clock does (models
// MAY differ across those knobs; callers needing a canonical witness
// re-derive one deterministically).
func (pl *Pipeline) ConfirmNodes(nodes []*ir.Node, opts ConfirmOptions, phase string) ([]*CheckVerdict, time.Duration) {
	start := time.Now()
	sp, done := obs.StartPhase(opts.Obs, opts.Trace, phase)
	defer done()

	out := make([]*CheckVerdict, len(nodes))
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(nodes) {
		workers = len(nodes)
	}

	run := func(s *solver.Solver, i int) {
		bn := nodes[i]
		v := &CheckVerdict{Node: bn}
		out[i] = v
		cond := pl.Reach.Cond[bn]
		if cond == nil || cond.IsFalse() {
			v.Discharged = true
			return
		}
		if s.Simplify(cond).IsFalse() {
			v.Discharged = true
			return
		}
		var res solver.Result
		if opts.Incremental {
			res = s.CheckIn(cond)
		} else {
			res = s.Check(cond)
		}
		if res == solver.Sat {
			v.Confirmed = true
			v.Model = s.Model()
		}
		if opts.Incremental {
			s.Retract()
		}
	}

	if workers <= 1 {
		s := solver.New(pl.IR.F)
		s.SetObs(opts.Obs)
		if opts.Incremental {
			s.SetIncremental(true)
		}
		for i := range nodes {
			run(s, i)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := solver.New(pl.IR.F)
				if opts.Incremental {
					s.SetIncremental(true)
				}
				for i := w; i < len(nodes); i += workers {
					run(s, i)
				}
			}(w)
		}
		wg.Wait()
	}

	if opts.Obs != nil {
		confirmed := 0
		for _, v := range out {
			if v.Confirmed {
				confirmed++
			}
		}
		sp.SetMetric("alarms", int64(len(nodes)))
		sp.SetMetric("confirmed", int64(confirmed))
	}
	return out, time.Since(start)
}
