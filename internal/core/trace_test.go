package core

import (
	"strings"
	"testing"
)

func TestCounterexampleAndRender(t *testing.T) {
	pl := compileNAT(t)
	rep := pl.FindBugs()
	rendered := 0
	for _, b := range rep.Bugs {
		if !b.Reachable {
			continue
		}
		tr, err := pl.Counterexample(b)
		if err != nil {
			t.Fatalf("%s: %v", b.Description(), err)
		}
		out := pl.RenderTrace(b, tr)
		if !strings.Contains(out, "** BUG") {
			t.Fatalf("render lacks bug marker:\n%s", out)
		}
		if !strings.Contains(out, "counterexample for") {
			t.Fatalf("render lacks header:\n%s", out)
		}
		rendered++
	}
	if rendered == 0 {
		t.Fatal("nothing rendered")
	}
}

func TestCounterexampleRejectsUnreachable(t *testing.T) {
	pl := compileNAT(t)
	rep := pl.FindBugs()
	for _, b := range rep.Bugs {
		if b.Reachable {
			continue
		}
		if _, err := pl.Counterexample(b); err == nil {
			t.Fatal("counterexample produced for unreachable bug")
		}
		return
	}
	t.Skip("no unreachable bugs in this program")
}
