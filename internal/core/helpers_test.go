package core

import "bf4/internal/solver"

// newTestSolver returns a fresh solver over a pipeline's factory.
func newTestSolver(pl *Pipeline) *solver.Solver {
	return solver.New(pl.IR.F)
}
