package core

import (
	"strings"
	"testing"

	"bf4/internal/ir"
	"bf4/internal/progs"
)

// TestCorpusWitnessReplay replays every reachable bug's solver model
// through the operational interpreter, across the whole corpus: each
// witness (packet input + table entries from the Model) must drive the
// dataplane to exactly the bug node the solver claimed, and the rendered
// trace must name the bug. This is the end-to-end soundness check tying
// the symbolic pipeline (WP + bit-blasting + SAT) to the operational
// semantics — a divergence means one of the two is wrong about the
// program.
func TestCorpusWitnessReplay(t *testing.T) {
	for _, p := range progs.All() {
		name, src := p.Name, p.Source
		if p.Name == "switch" {
			if testing.Short() {
				continue
			}
			// The generated switch at a reduced scale keeps the test fast
			// while covering the largest, most table-dense program.
			name, src = "switch@4", progs.GenerateSwitch(4)
		}
		t.Run(name, func(t *testing.T) {
			pl, err := Compile(src, ir.DefaultOptions(), true)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			rep := pl.FindBugs()
			replayed := 0
			for _, b := range rep.Bugs {
				if !b.Reachable {
					continue
				}
				tr, err := pl.Counterexample(b)
				if err != nil {
					t.Errorf("replay diverged for %s: %v", b.Description(), err)
					continue
				}
				if tr.Terminal != b.Node {
					t.Errorf("replay of %s terminated at n%d, want n%d",
						b.Description(), tr.Terminal.ID, b.Node.ID)
					continue
				}
				out := pl.RenderTrace(b, tr)
				if !strings.Contains(out, "** BUG") {
					t.Errorf("rendered trace for %s does not report the bug:\n%s", b.Description(), out)
				}
				replayed++
			}
			if rep.NumReachable() == 0 {
				t.Fatalf("%s: no reachable bugs to replay (corpus regression)", name)
			}
			t.Logf("%s: replayed %d/%d witnesses", name, replayed, rep.NumReachable())
		})
	}
}
