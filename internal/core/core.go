// Package core is bf4's verification engine (the paper's Figure 3): it
// compiles P4 source through the frontend, IR lowering (expansion +
// instrumentation), passification and reachability-condition generation,
// then decides per-bug reachability with the SMT solver, producing models
// (counterexample inputs) for each reachable bug and associating every
// bug with its dominating assert point (table apply).
package core

import (
	"fmt"
	"sort"
	"time"

	"bf4/internal/cfg"
	"bf4/internal/ir"
	"bf4/internal/obs"
	"bf4/internal/p4/ast"
	"bf4/internal/p4/parser"
	"bf4/internal/p4/types"
	"bf4/internal/slice"
	"bf4/internal/smt"
	"bf4/internal/solver"
	"bf4/internal/ssa"
	"bf4/internal/wp"
)

// Pipeline bundles all compiled artifacts for one P4 program.
type Pipeline struct {
	Source string
	AST    *ast.Program
	Info   *types.Info
	IR     *ir.Program
	Pass   *ssa.Result
	// Reach holds sliced reachability conditions for bug checks;
	// FullReach holds the unsliced conditions (OK formula for Infer).
	Reach      *wp.Reach
	FullReach  *wp.Reach
	Doms       *cfg.Dominators
	SliceStats slice.Stats
	Options    ir.Options
	Sliced     bool

	// CompileTime covers frontend + IR + SSA + WP, for the evaluation
	// harness.
	CompileTime time.Duration
}

// Compile runs the frontend and all verification-form passes.
func Compile(src string, opts ir.Options, useSlicing bool) (*Pipeline, error) {
	return CompileObs(src, opts, useSlicing, nil, nil)
}

// CompileObs is Compile with observability: each pipeline stage (parse,
// typecheck, lower, passify, wp, slice) becomes a child span of parent
// and adds its wall time to a bf4_phase_<stage>_ns_total counter. A nil
// registry and span make it exactly Compile — the artifacts are identical
// either way (instrumentation only reads the clock).
func CompileObs(src string, opts ir.Options, useSlicing bool, reg *obs.Registry, parent *obs.Span) (*Pipeline, error) {
	start := time.Now()
	_, done := obs.StartPhase(reg, parent, "parse")
	prog, err := parser.Parse(src)
	done()
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	_, done = obs.StartPhase(reg, parent, "typecheck")
	info, err := types.Check(prog)
	done()
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	return CompileCheckedObs(src, prog, info, opts, useSlicing, start, reg, parent)
}

// CompileChecked continues compilation from an already-checked AST.
func CompileChecked(src string, prog *ast.Program, info *types.Info, opts ir.Options, useSlicing bool, start time.Time) (*Pipeline, error) {
	return CompileCheckedObs(src, prog, info, opts, useSlicing, start, nil, nil)
}

// CompileCheckedObs is CompileChecked with per-stage spans and phase
// counters (see CompileObs).
func CompileCheckedObs(src string, prog *ast.Program, info *types.Info, opts ir.Options, useSlicing bool, start time.Time, reg *obs.Registry, parent *obs.Span) (*Pipeline, error) {
	sp, done := obs.StartPhase(reg, parent, "lower")
	p, err := ir.Build(prog, info, opts)
	done()
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	sp.SetMetric("nodes", int64(len(p.Nodes)))
	sp.SetMetric("bugs", int64(len(p.Bugs)))

	_, done = obs.StartPhase(reg, parent, "passify")
	pass := ssa.Passify(p)
	done()

	_, done = obs.StartPhase(reg, parent, "wp")
	full := wp.Compute(p, pass, nil)
	done()

	pl := &Pipeline{
		Source:    src,
		AST:       prog,
		Info:      info,
		IR:        p,
		Pass:      pass,
		FullReach: full,
		Doms:      cfg.NewDominators(p),
		Options:   opts,
		Sliced:    useSlicing,
	}
	if useSlicing {
		sp, done := obs.StartPhase(reg, parent, "slice")
		keep, stats := slice.WRTBugs(p)
		pl.SliceStats = stats
		pl.Reach = wp.Compute(p, pass, keep)
		sp.SetMetric("kept", int64(stats.SliceInstructions))
		sp.SetMetric("total", int64(stats.TotalInstructions))
		done()
	} else {
		pl.SliceStats = slice.Stats{
			TotalInstructions: p.NumInstructions(),
			SliceInstructions: p.NumInstructions(),
		}
		pl.Reach = full
	}
	pl.CompileTime = time.Since(start)
	return pl, nil
}

// Bug is one potential bug and its verification outcome.
type Bug struct {
	Node      *ir.Node
	Kind      ir.BugKind
	Reachable bool
	// Instance is the table instance whose assert point dominates the
	// bug (nil for bugs outside any table, e.g. egress_spec).
	Instance *ir.TableInstance
	// Model is a satisfying assignment for the bug's reachability
	// condition (inputs + table entries), present when Reachable.
	Model smt.Env
	// Cond is the bug's reachability condition.
	Cond *smt.Term
	// Discharged marks a bug whose solver query a static layer skipped:
	// either the dataflow pre-pass (internal/analysis) proved the bug
	// node unreachable, or the term-level rewrite engine
	// (internal/smt/rewrite) folded the reachability condition to false.
	// Both guarantee the query is unsatisfiable, so the bug is reported
	// exactly as an unsat answer would leave it.
	Discharged bool
}

// Description renders a human-readable bug summary.
func (b *Bug) Description() string {
	where := ""
	if b.Instance != nil {
		where = " in table " + b.Instance.Table.Name
	}
	pos := ""
	if b.Node.Pos.IsValid() {
		pos = fmt.Sprintf(" at %s", b.Node.Pos)
	}
	return fmt.Sprintf("[%s]%s%s: %s", b.Kind, where, pos, b.Node.Comment)
}

// Report is the result of the bug-finding phase.
type Report struct {
	Pipeline  *Pipeline
	Bugs      []*Bug
	SolveTime time.Duration
	Checks    int
	// FoldDischarged counts bug conditions the term-level rewrite engine
	// folded to false — solver queries skipped beyond the dataflow
	// pre-pass's discharge set.
	FoldDischarged int
	// CNFVars/CNFClauses snapshot the blasted circuit size at the end of
	// bug finding, before the inference phase reuses the solver — the
	// "CNF before vs after rewriting" number the experiments layer
	// compares across -rewrite=on/off.
	CNFVars, CNFClauses int
	// S is the incremental solver used for the reachability checks; the
	// inference phase reuses it (all bug conditions are already blasted)
	// for its predicate rechecks.
	S *solver.Solver
}

// NumReachable counts reachable bugs.
func (r *Report) NumReachable() int {
	n := 0
	for _, b := range r.Bugs {
		if b.Reachable {
			n++
		}
	}
	return n
}

// ReachableByKind tallies reachable bugs per class.
func (r *Report) ReachableByKind() map[ir.BugKind]int {
	out := map[ir.BugKind]int{}
	for _, b := range r.Bugs {
		if b.Reachable {
			out[b.Kind]++
		}
	}
	return out
}

// FindBugs checks reachability of every instrumented bug (paper §4.1:
// SAT(reach(bug)) per bug node, incrementally on one solver).
func (pl *Pipeline) FindBugs() *Report {
	return pl.FindBugsSkipping(nil)
}

// FindBugsSkipping is FindBugs with a pre-discharge set: bug nodes in
// skip were proven statically unreachable by internal/analysis, so their
// reachability condition is unsatisfiable and the solver query can be
// skipped. Discharged bugs still appear in the report exactly as an unsat
// answer would leave them (Reachable false, no model), with Discharged
// set, so every downstream consumer (Infer, Fixes, the spec builder) sees
// an identical bug list either way.
func (pl *Pipeline) FindBugsSkipping(skip map[*ir.Node]bool) *Report {
	return pl.FindBugsObs(skip, nil, nil)
}

// FindBugsObs is FindBugsSkipping with observability: the whole phase is
// one child span of parent (annotated with check/reachable/discharged
// counts), the bug-check solver publishes its per-query telemetry to reg
// (see solver.SetObs), and discharge outcomes land on
// bf4_core_discharged_{analysis,fold}_total. Verdicts and models are
// identical with reg/parent nil — the solver path is untouched.
func (pl *Pipeline) FindBugsObs(skip map[*ir.Node]bool, reg *obs.Registry, parent *obs.Span) *Report {
	return pl.FindBugsWith(FindOptions{Skip: skip, Obs: reg, Trace: parent})
}

// FindOptions configures the bug-finding phase.
type FindOptions struct {
	// Skip holds bug nodes pre-discharged by internal/analysis.
	Skip map[*ir.Node]bool
	// Obs/Trace attach observability (see FindBugsObs).
	Obs   *obs.Registry
	Trace *obs.Span
	// Incremental runs every bug check of the slice on one persistent
	// solver: each check's condition is asserted inside a retractable
	// activation scope (solver.CheckIn/Retract), so conflict clauses
	// learned on one check prune the next, shared term DAGs blast to
	// shared CNF via structural gate hashing, and bounded inprocessing
	// between checks cleans out retracted-scope clauses. Verdicts and
	// reported models' satisfying status are unchanged — the identity
	// harness pins -incremental=on/off reports byte-identical.
	Incremental bool
}

// FindBugsWith is the fully-parameterised bug finder; FindBugs,
// FindBugsSkipping and FindBugsObs delegate to it.
func (pl *Pipeline) FindBugsWith(opts FindOptions) *Report {
	skip, reg, parent := opts.Skip, opts.Obs, opts.Trace
	start := time.Now()
	sp, done := obs.StartPhase(reg, parent, "findbugs")
	defer done()
	s := solver.New(pl.IR.F)
	s.SetObs(reg)
	if opts.Incremental {
		s.SetIncremental(true)
	}
	rep := &Report{Pipeline: pl, S: s}
	reachable := pl.IR.Reachable()

	bugs := append([]*ir.Node(nil), pl.IR.Bugs...)
	sort.Slice(bugs, func(i, j int) bool { return bugs[i].ID < bugs[j].ID })
	for _, bn := range bugs {
		if !reachable[bn] {
			continue
		}
		cond := pl.Reach.Cond[bn]
		if cond == nil {
			continue
		}
		b := &Bug{Node: bn, Kind: bn.Bug, Cond: cond}
		if ap := cfg.DominatingAssertPoint(pl.Doms, bn); ap != nil {
			b.Instance = ap.Instance
		}
		if cond.IsFalse() {
			rep.Bugs = append(rep.Bugs, b)
			continue
		}
		if skip[bn] {
			b.Discharged = true
			rep.Bugs = append(rep.Bugs, b)
			continue
		}
		// Term-level pre-discharge: if the solver's rewrite pass folds
		// the condition to false, the query is unsatisfiable by
		// construction — report the bug exactly as an unsat check would
		// (Reachable false, no model), like the dataflow discharge path.
		if s.Simplify(cond).IsFalse() {
			b.Discharged = true
			rep.FoldDischarged++
			rep.Bugs = append(rep.Bugs, b)
			continue
		}
		var res solver.Result
		if opts.Incremental {
			res = s.CheckIn(cond)
		} else {
			res = s.Check(cond)
		}
		rep.Checks++
		if res == solver.Sat {
			b.Reachable = true
			b.Model = s.Model()
		}
		if opts.Incremental {
			s.Retract()
		}
		rep.Bugs = append(rep.Bugs, b)
	}
	rep.CNFVars, rep.CNFClauses, _, _ = s.Stats()
	rep.SolveTime = time.Since(start)
	if reg != nil {
		reg.Counter("bf4_core_bugs_total").Add(int64(len(rep.Bugs)))
		reg.Counter("bf4_core_bugs_reachable_total").Add(int64(rep.NumReachable()))
		discharged := 0
		for _, b := range rep.Bugs {
			if b.Discharged {
				discharged++
			}
		}
		reg.Counter("bf4_core_discharged_analysis_total").Add(int64(discharged - rep.FoldDischarged))
		reg.Counter("bf4_core_discharged_fold_total").Add(int64(rep.FoldDischarged))
		sp.SetMetric("checks", int64(rep.Checks))
		sp.SetMetric("reachable", int64(rep.NumReachable()))
		sp.SetMetric("discharged", int64(discharged))
	}
	return rep
}
