package core

import (
	"strings"
	"testing"

	"bf4/internal/ir"
	"bf4/internal/smt"
)

const natSrc = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<32> srcAddr; bit<32> dstAddr; }
struct meta_t { bit<1> do_forward; bit<32> nhop; }
struct metadata { meta_t meta; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; }

parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    action drop_() { mark_to_drop(smeta); }
    action nat_hit(bit<32> a) {
        meta.meta.do_forward = 1w1;
        meta.meta.nhop = a;
    }
    table nat {
        key = { hdr.ipv4.isValid(): exact; hdr.ipv4.srcAddr: ternary; }
        actions = { drop_; nat_hit; }
        default_action = drop_();
    }
    action set_nhop(bit<32> nhop, bit<9> port) {
        meta.meta.nhop = nhop;
        smeta.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table ipv4_lpm {
        key = { meta.meta.nhop: lpm; }
        actions = { set_nhop; drop_; }
    }
    apply {
        nat.apply();
        if (meta.meta.do_forward == 1w1) {
            ipv4_lpm.apply();
        }
    }
}

control Eg(inout headers hdr, inout metadata meta,
           inout standard_metadata_t smeta) { apply { } }
control Dep(packet_out pkt, in headers hdr) { apply { pkt.emit(hdr.ipv4); } }

V1Switch(P(), Ing(), Eg(), Dep()) main;
`

func compileNAT(t *testing.T) *Pipeline {
	t.Helper()
	pl, err := Compile(natSrc, ir.DefaultOptions(), true)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return pl
}

func TestFindBugsNAT(t *testing.T) {
	pl := compileNAT(t)
	rep := pl.FindBugs()
	if rep.NumReachable() == 0 {
		t.Fatal("no reachable bugs found in simple_nat-like program")
	}
	kinds := rep.ReachableByKind()
	if kinds[ir.BugInvalidKeyRead] == 0 {
		t.Errorf("nat ternary key bug not reachable; kinds=%v", kinds)
	}
	if kinds[ir.BugInvalidHeaderWrite] == 0 && kinds[ir.BugInvalidHeaderRead] == 0 {
		t.Errorf("set_nhop ttl bug not reachable; kinds=%v", kinds)
	}
	if kinds[ir.BugEgressSpecNotSet] == 0 {
		t.Errorf("egress-spec bug not reachable (nat_hit path sets no egress_spec); kinds=%v", kinds)
	}

	// Every reachable bug's model must actually satisfy its reachability
	// condition (model soundness through the whole stack).
	for _, b := range rep.Bugs {
		if !b.Reachable {
			continue
		}
		if !smt.EvalBool(b.Cond, b.Model) {
			t.Errorf("bug %s: model does not satisfy reach condition", b.Description())
		}
	}
}

func TestBugInstanceAssociation(t *testing.T) {
	pl := compileNAT(t)
	rep := pl.FindBugs()
	var sawNat, sawLpm bool
	for _, b := range rep.Bugs {
		if !b.Reachable || b.Instance == nil {
			continue
		}
		switch b.Instance.Table.Name {
		case "nat":
			sawNat = true
		case "ipv4_lpm":
			sawLpm = true
		}
	}
	if !sawNat {
		t.Error("no reachable bug associated with table nat")
	}
	if !sawLpm {
		t.Error("no reachable bug associated with table ipv4_lpm")
	}
}

func TestGuardedAccessIsUnreachable(t *testing.T) {
	src := `
header h_t { bit<8> x; }
struct headers { h_t h; }
struct metadata { bit<1> m; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w1: parse_h;
            default: accept;
        }
    }
    state parse_h { pkt.extract(hdr.h); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    apply {
        smeta.egress_spec = 9w2;
        if (hdr.h.isValid()) {
            hdr.h.x = hdr.h.x + 8w1;
        }
    }
}
V1Switch(P(), Ing()) main;
`
	pl, err := Compile(src, ir.DefaultOptions(), true)
	if err != nil {
		t.Fatal(err)
	}
	rep := pl.FindBugs()
	for _, b := range rep.Bugs {
		if b.Reachable && (b.Kind == ir.BugInvalidHeaderRead || b.Kind == ir.BugInvalidHeaderWrite) {
			t.Errorf("guarded access reported reachable: %s", b.Description())
		}
	}
	// And the egress-spec bug must be unreachable (always set).
	for _, b := range rep.Bugs {
		if b.Reachable && b.Kind == ir.BugEgressSpecNotSet {
			t.Errorf("egress_spec is always set but bug reachable")
		}
	}
}

func TestUnguardedAccessIsReachable(t *testing.T) {
	src := `
header h_t { bit<8> x; }
struct headers { h_t h; }
struct metadata { bit<1> m; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w1: parse_h;
            default: accept;
        }
    }
    state parse_h { pkt.extract(hdr.h); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    apply {
        smeta.egress_spec = 9w2;
        hdr.h.x = hdr.h.x + 8w1;
    }
}
V1Switch(P(), Ing()) main;
`
	pl, err := Compile(src, ir.DefaultOptions(), true)
	if err != nil {
		t.Fatal(err)
	}
	rep := pl.FindBugs()
	found := false
	for _, b := range rep.Bugs {
		if b.Reachable && (b.Kind == ir.BugInvalidHeaderRead || b.Kind == ir.BugInvalidHeaderWrite) {
			found = true
			// The model must show the header invalid on the bug path:
			// the packet came through the default parser branch.
			if port, ok := b.Model["smeta.ingress_port"]; ok && port.Int64() == 1 {
				t.Errorf("model claims port 1 (header parsed) yet bug reached")
			}
		}
	}
	if !found {
		t.Fatal("unguarded access not reported")
	}
}

func TestSlicedAndUnslicedAgree(t *testing.T) {
	plS, err := Compile(natSrc, ir.DefaultOptions(), true)
	if err != nil {
		t.Fatal(err)
	}
	plU, err := Compile(natSrc, ir.DefaultOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	repS, repU := plS.FindBugs(), plU.FindBugs()
	if repS.NumReachable() != repU.NumReachable() {
		t.Fatalf("sliced %d vs unsliced %d reachable bugs", repS.NumReachable(), repU.NumReachable())
	}
	if plS.SliceStats.SliceInstructions >= plS.SliceStats.TotalInstructions {
		t.Errorf("slice did not shrink: %d of %d", plS.SliceStats.SliceInstructions, plS.SliceStats.TotalInstructions)
	}
}

func TestOKFormulaSatisfiable(t *testing.T) {
	pl := compileNAT(t)
	if pl.FullReach.OK.IsFalse() {
		t.Fatal("OK formula is trivially false")
	}
	// There must exist a good run: e.g. a non-IPv4 packet dropped by the
	// nat default drop action.
	s := newTestSolver(pl)
	if got := s.Check(pl.FullReach.OK); got.String() != "sat" {
		t.Fatalf("OK unsatisfiable: %v", got)
	}
}

func TestDescriptionsAreInformative(t *testing.T) {
	pl := compileNAT(t)
	rep := pl.FindBugs()
	for _, b := range rep.Bugs {
		d := b.Description()
		if !strings.Contains(d, "[") || len(d) < 10 {
			t.Errorf("weak description: %q", d)
		}
	}
}
