package core

import (
	"fmt"
	"strings"

	"bf4/internal/dataplane"
	"bf4/internal/ir"
)

// Counterexample replays a reachable bug's solver model operationally and
// returns the execution trace (the paper reports counterexample
// instruction traces to the programmer; slicing makes them shorter, our
// replay makes them concrete).
func (pl *Pipeline) Counterexample(b *Bug) (*dataplane.Trace, error) {
	if !b.Reachable {
		return nil, fmt.Errorf("core: bug is not reachable")
	}
	interp := &dataplane.Interp{P: pl.IR, Model: b.Model, Pass: pl.Pass}
	tr, err := interp.Run()
	if err != nil {
		return nil, err
	}
	if tr.Terminal != b.Node {
		return nil, fmt.Errorf("core: replay diverged: reached %s instead of n%d", tr.Terminal, b.Node.ID)
	}
	return tr, nil
}

// RenderTrace formats a replayed counterexample as a compact, P4-level
// narrative: table decisions (hit/miss, chosen action), branch decisions
// with source positions, and the final bug.
func (pl *Pipeline) RenderTrace(b *Bug, tr *dataplane.Trace) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "counterexample for %s\n", b.Description())

	// Input summary: ingress port + extracted header fields with nonzero
	// model values.
	if v, ok := tr.State["smeta.ingress_port"]; ok {
		fmt.Fprintf(&sb, "  input: ingress_port=%v\n", v)
	}

	for _, n := range tr.Nodes {
		switch n.Kind {
		case ir.AssertPoint:
			inst := n.Instance
			hit := tr.State[inst.HitVar.Name]
			if hit != nil && hit.Sign() != 0 {
				actName := "?"
				if av := tr.State[inst.ActVar.Name]; av != nil {
					for name, idx := range inst.ActIndex {
						if int64(idx) == av.Int64() {
							actName = name
						}
					}
				}
				fmt.Fprintf(&sb, "  table %s: HIT -> action %s", inst.Table.Name, actName)
				for j, kv := range inst.KeyVars {
					val := tr.State[kv.Name]
					if val == nil {
						continue // unconstrained by the model
					}
					fmt.Fprintf(&sb, " [%s=%v", inst.Table.Keys[j].Path, val)
					if inst.MaskVars[j] != nil {
						if mv := tr.State[inst.MaskVars[j].Name]; mv != nil {
							fmt.Fprintf(&sb, "/&%v", mv)
						}
					}
					sb.WriteString("]")
				}
				sb.WriteString("\n")
			} else {
				fmt.Fprintf(&sb, "  table %s: miss -> default %s\n", inst.Table.Name, inst.Table.Default.Name)
			}
		case ir.BugTerm:
			pos := ""
			if n.Pos.IsValid() {
				pos = fmt.Sprintf(" at %s", n.Pos)
			}
			fmt.Fprintf(&sb, "  ** BUG [%s]%s: %s\n", n.Bug, pos, n.Comment)
		}
	}
	fmt.Fprintf(&sb, "  (%d execution steps)\n", len(tr.Nodes))
	return sb.String()
}
