package core

import (
	"testing"

	"bf4/internal/ir"
)

// compileSrc compiles and finds bugs in one source.
func compileSrc(t *testing.T, src string) (*Pipeline, *Report) {
	t.Helper()
	pl, err := Compile(src, ir.DefaultOptions(), true)
	if err != nil {
		t.Fatal(err)
	}
	return pl, pl.FindBugs()
}

// TestExitSkipsFollowingBug: exit in an action ends ingress processing, so
// a bug after the exit point on that path must be unreachable on it.
func TestExitSkipsFollowingBug(t *testing.T) {
	src := `
header h_t { bit<8> x; }
struct headers { h_t h; }
struct metadata { bit<1> m; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w1: parse_h;
            default: accept;
        }
    }
    state parse_h { pkt.extract(hdr.h); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    apply {
        smeta.egress_spec = 9w1;
        if (!hdr.h.isValid()) {
            exit;
        }
        hdr.h.x = hdr.h.x + 8w1;
    }
}
V1Switch(P(), Ing()) main;
`
	_, rep := compileSrc(t, src)
	for _, b := range rep.Bugs {
		if b.Reachable && (b.Kind == ir.BugInvalidHeaderRead || b.Kind == ir.BugInvalidHeaderWrite) {
			t.Fatalf("exit-guarded access reported reachable: %s", b.Description())
		}
	}
}

// TestStackOpsReachability: pop on a possibly-empty stack is reachable;
// push within capacity is not.
func TestStackOpsReachability(t *testing.T) {
	src := `
header tag_t { bit<16> v; }
struct headers { tag_t[3] tags; }
struct metadata { bit<1> m; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w1: parse_one;
            default: accept;
        }
    }
    state parse_one { pkt.extract(hdr.tags.next); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    apply {
        smeta.egress_spec = 9w1;
        hdr.tags.pop_front(1);
    }
}
V1Switch(P(), Ing()) main;
`
	_, rep := compileSrc(t, src)
	foundUnderflow := false
	for _, b := range rep.Bugs {
		if b.Kind == ir.BugStackUnderflow && b.Reachable {
			foundUnderflow = true
			// Replayable.
			if _, err := rep.Pipeline.Counterexample(b); err != nil {
				t.Fatalf("underflow not replayable: %v", err)
			}
		}
		if b.Kind == ir.BugStackOverflow && b.Reachable {
			t.Fatalf("overflow reported despite capacity 3 and one extract")
		}
	}
	if !foundUnderflow {
		t.Fatal("pop_front on possibly-empty stack not reported")
	}
}

// TestTernaryExprLowering: the ?: operator must verify correctly.
func TestTernaryExprLowering(t *testing.T) {
	src := `
header h_t { bit<8> x; }
struct headers { h_t h; }
struct metadata { bit<8> m; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    apply {
        meta.m = (hdr.h.x > 8w10) ? 8w1 : 8w2;
        smeta.egress_spec = (meta.m == 8w1) ? 9w5 : 9w6;
    }
}
V1Switch(P(), Ing()) main;
`
	_, rep := compileSrc(t, src)
	if rep.NumReachable() != 0 {
		for _, b := range rep.Bugs {
			if b.Reachable {
				t.Errorf("unexpected bug: %s", b.Description())
			}
		}
	}
}

// TestConcatAndShifts: wide-expression plumbing end to end.
func TestConcatAndShifts(t *testing.T) {
	src := `
header h_t { bit<8> a; bit<8> b; }
struct headers { h_t h; }
struct metadata { bit<16> m; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    apply {
        meta.m = hdr.h.a ++ hdr.h.b;
        meta.m = meta.m << 2;
        meta.m = meta.m >> 1;
        if (meta.m == 16w0) {
            smeta.egress_spec = 9w1;
        } else {
            smeta.egress_spec = 9w2;
        }
    }
}
V1Switch(P(), Ing()) main;
`
	_, rep := compileSrc(t, src)
	if rep.NumReachable() != 0 {
		t.Fatalf("clean program reported %d bugs", rep.NumReachable())
	}
}

// TestRegisterBoundedIndexUnreachable: an index arithmetically bounded
// below the register size must not report OOB.
func TestRegisterBoundedIndexUnreachable(t *testing.T) {
	src := `
header h_t { bit<8> x; }
struct headers { h_t h; }
struct metadata { bit<8> m; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    register<bit<8>>(256) reg;
    apply {
        smeta.egress_spec = 9w1;
        reg.write((bit<32>)hdr.h.x, hdr.h.x);
    }
}
V1Switch(P(), Ing()) main;
`
	_, rep := compileSrc(t, src)
	for _, b := range rep.Bugs {
		if b.Reachable && b.Kind == ir.BugRegisterOOB {
			t.Fatalf("8-bit index into 256-slot register reported OOB")
		}
	}
}
