// Package prop implements bf4's user-facing property DSL: boolean
// @assert/@assume predicates over header fields, validity bits, standard
// metadata and table hit/action state, written either as P4 source
// comments or in standalone .props spec files. Properties are lexed and
// parsed here (with file:line:col positions), typechecked against the
// lowered program's variables and table instances, desugared (`->`,
// isValid(), hit(table), miss(table), action_run(table) == a) and
// compiled into guarded BugAssertFail nodes spliced into the IR through
// ir.Options.Instrument — after which the whole existing pipeline
// (dataflow pre-discharge, wp, solver adjudication, Infer, Fixes, the
// runtime shim) handles user properties exactly like built-in checks.
package prop

import (
	"fmt"
	"math/big"
)

// Pos is a source position inside a property's origin (a P4 file or a
// .props spec file). Line and Col are 1-based.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Expr is a property-DSL expression node. The concrete kinds below are
// the closed set the typechecker (check.go) and the IR compiler
// (compile.go) must each handle exhaustively — enforced syntactically by
// tools/analyzers/propcheck.
type Expr interface {
	ExprPos() Pos
	String() string
}

// PathExpr is a dotted name: a header/metadata field reference
// (hdr.ipv4.ttl, meta.m.tag, standard_metadata.egress_spec) or — as the
// right operand of an action_run comparison — a bare action name.
type PathExpr struct {
	Parts []string
	Pos   Pos
}

// IntExpr is an integer literal, optionally carrying an explicit P4
// width (9w0, 16w0x800). Width 0 means unsized: the typechecker adapts
// it to the width of the other operand.
type IntExpr struct {
	Value *big.Int
	Width int
	Pos   Pos
}

// BoolExpr is `true` or `false`.
type BoolExpr struct {
	Value bool
	Pos   Pos
}

// ValidExpr is the desugared form of `<header>.isValid()`.
type ValidExpr struct {
	Header *PathExpr // the header path, without the .isValid() suffix
	Pos    Pos
}

// HitExpr is `hit(table)`; `miss(table)` parses as !hit(table).
type HitExpr struct {
	Table string
	Pos   Pos
}

// ActionExpr is `action_run(table)`. It has the opaque "action selector
// of <table>" type and may only appear as an operand of == or != whose
// other side names one of the table's actions.
type ActionExpr struct {
	Table string
	Pos   Pos
}

// UnaryExpr is !x (boolean), ~x (bitwise) or -x (arithmetic).
type UnaryExpr struct {
	Op string
	X  Expr
	Pos
}

// BinaryExpr covers ->, ||, &&, comparisons, bitwise and additive
// operators. `->` desugars to implication during compilation.
type BinaryExpr struct {
	Op   string
	X, Y Expr
	Pos
}

func (e *PathExpr) ExprPos() Pos   { return e.Pos }
func (e *IntExpr) ExprPos() Pos    { return e.Pos }
func (e *BoolExpr) ExprPos() Pos   { return e.Pos }
func (e *ValidExpr) ExprPos() Pos  { return e.Pos }
func (e *HitExpr) ExprPos() Pos    { return e.Pos }
func (e *ActionExpr) ExprPos() Pos { return e.Pos }
func (e *UnaryExpr) ExprPos() Pos  { return e.Pos }
func (e *BinaryExpr) ExprPos() Pos { return e.Pos }

func (e *PathExpr) String() string {
	out := ""
	for i, p := range e.Parts {
		if i > 0 {
			out += "."
		}
		out += p
	}
	return out
}

func (e *IntExpr) String() string {
	if e.Width > 0 {
		return fmt.Sprintf("%dw%s", e.Width, e.Value)
	}
	return e.Value.String()
}

func (e *BoolExpr) String() string {
	if e.Value {
		return "true"
	}
	return "false"
}

func (e *ValidExpr) String() string  { return e.Header.String() + ".isValid()" }
func (e *HitExpr) String() string    { return "hit(" + e.Table + ")" }
func (e *ActionExpr) String() string { return "action_run(" + e.Table + ")" }
func (e *UnaryExpr) String() string  { return e.Op + e.X.String() }
func (e *BinaryExpr) String() string {
	return "(" + e.X.String() + " " + e.Op + " " + e.Y.String() + ")"
}
