package prop

import (
	"fmt"
)

// parser is a recursive-descent parser over the property token stream.
// Precedence, loosest to tightest:
//
//	->  (right-associative implication)
//	||
//	&&
//	== != < <= > >=   (non-associative comparison)
//	|  ^  &           (bitwise, each level left-associative)
//	+  -              (additive)
//	unary ! ~ -
//	postfix .field / .isValid()
//	primary: literal, path, hit(t), miss(t), action_run(t), ( expr )
type parser struct {
	lex *lexer
	tok token
	err error
}

// ParseExpr parses one predicate string into an AST, positions offset
// from base. Trailing input after the expression is an error.
func ParseExpr(src string, base Pos) (Expr, error) {
	p := &parser{lex: newLexer(src, base)}
	p.next()
	e := p.parseImplies()
	if p.err != nil {
		return nil, p.err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("%s: unexpected %q after property expression", p.tok.pos, p.tokText())
	}
	return e, nil
}

func (p *parser) tokText() string {
	switch p.tok.kind {
	case tokEOF:
		return "end of input"
	case tokNumber:
		return p.tok.numVal.String()
	default:
		return p.tok.lit
	}
}

func (p *parser) next() {
	if p.err != nil {
		return
	}
	t, err := p.lex.next()
	if err != nil {
		p.err = err
		p.tok = token{kind: tokEOF}
		return
	}
	p.tok = t
}

func (p *parser) errorf(pos Pos, format string, args ...interface{}) {
	if p.err == nil {
		p.err = fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
	}
}

func (p *parser) expectOp(op string) {
	if p.err != nil {
		return
	}
	if p.tok.kind != tokOp || p.tok.lit != op {
		p.errorf(p.tok.pos, "expected %q, found %q", op, p.tokText())
		return
	}
	p.next()
}

func (p *parser) atOp(ops ...string) string {
	if p.err != nil || p.tok.kind != tokOp {
		return ""
	}
	for _, op := range ops {
		if p.tok.lit == op {
			return op
		}
	}
	return ""
}

func (p *parser) parseImplies() Expr {
	x := p.parseOr()
	if op := p.atOp("->"); op != "" {
		pos := p.tok.pos
		p.next()
		y := p.parseImplies() // right-assoc
		return &BinaryExpr{Op: "->", X: x, Y: y, Pos: pos}
	}
	return x
}

func (p *parser) parseOr() Expr {
	x := p.parseAnd()
	for p.atOp("||") != "" {
		pos := p.tok.pos
		p.next()
		x = &BinaryExpr{Op: "||", X: x, Y: p.parseAnd(), Pos: pos}
	}
	return x
}

func (p *parser) parseAnd() Expr {
	x := p.parseCmp()
	for p.atOp("&&") != "" {
		pos := p.tok.pos
		p.next()
		x = &BinaryExpr{Op: "&&", X: x, Y: p.parseCmp(), Pos: pos}
	}
	return x
}

func (p *parser) parseCmp() Expr {
	x := p.parseBitOr()
	if op := p.atOp("==", "!=", "<", "<=", ">", ">="); op != "" {
		pos := p.tok.pos
		p.next()
		return &BinaryExpr{Op: op, X: x, Y: p.parseBitOr(), Pos: pos}
	}
	return x
}

func (p *parser) parseBitOr() Expr {
	x := p.parseBitXor()
	for p.atOp("|") != "" {
		pos := p.tok.pos
		p.next()
		x = &BinaryExpr{Op: "|", X: x, Y: p.parseBitXor(), Pos: pos}
	}
	return x
}

func (p *parser) parseBitXor() Expr {
	x := p.parseBitAnd()
	for p.atOp("^") != "" {
		pos := p.tok.pos
		p.next()
		x = &BinaryExpr{Op: "^", X: x, Y: p.parseBitAnd(), Pos: pos}
	}
	return x
}

func (p *parser) parseBitAnd() Expr {
	x := p.parseAdd()
	for p.atOp("&") != "" {
		pos := p.tok.pos
		p.next()
		x = &BinaryExpr{Op: "&", X: x, Y: p.parseAdd(), Pos: pos}
	}
	return x
}

func (p *parser) parseAdd() Expr {
	x := p.parseUnary()
	for {
		op := p.atOp("+", "-")
		if op == "" {
			return x
		}
		pos := p.tok.pos
		p.next()
		x = &BinaryExpr{Op: op, X: x, Y: p.parseUnary(), Pos: pos}
	}
}

func (p *parser) parseUnary() Expr {
	if op := p.atOp("!", "~", "-"); op != "" {
		pos := p.tok.pos
		p.next()
		return &UnaryExpr{Op: op, X: p.parseUnary(), Pos: pos}
	}
	return p.parsePostfix()
}

// parsePostfix handles dotted member access and the .isValid() call.
func (p *parser) parsePostfix() Expr {
	x := p.parsePrimary()
	for p.atOp(".") != "" {
		dotPos := p.tok.pos
		p.next()
		if p.tok.kind != tokIdent {
			p.errorf(dotPos, "expected field name after '.'")
			return x
		}
		name := p.tok.lit
		p.next()
		if name == "isValid" {
			p.expectOp("(")
			p.expectOp(")")
			path, ok := x.(*PathExpr)
			if !ok {
				p.errorf(dotPos, "isValid() requires a header path receiver")
				return x
			}
			x = &ValidExpr{Header: path, Pos: path.Pos}
			continue
		}
		path, ok := x.(*PathExpr)
		if !ok {
			p.errorf(dotPos, "cannot select field %q of a non-path expression", name)
			return x
		}
		path.Parts = append(path.Parts, name)
	}
	return x
}

func (p *parser) parsePrimary() Expr {
	pos := p.tok.pos
	switch {
	case p.tok.kind == tokNumber:
		e := &IntExpr{Value: p.tok.numVal, Width: p.tok.numWidth, Pos: pos}
		p.next()
		return e
	case p.tok.kind == tokIdent:
		name := p.tok.lit
		p.next()
		switch name {
		case "true":
			return &BoolExpr{Value: true, Pos: pos}
		case "false":
			return &BoolExpr{Value: false, Pos: pos}
		case "hit", "miss", "action_run":
			if p.atOp("(") == "" {
				// A bare identifier that happens to collide with a
				// builtin name: treat it as a path root.
				return &PathExpr{Parts: []string{name}, Pos: pos}
			}
			p.expectOp("(")
			if p.tok.kind != tokIdent {
				p.errorf(p.tok.pos, "expected table name in %s(...)", name)
				return &BoolExpr{Pos: pos}
			}
			table := p.tok.lit
			p.next()
			p.expectOp(")")
			switch name {
			case "hit":
				return &HitExpr{Table: table, Pos: pos}
			case "miss":
				return &UnaryExpr{Op: "!", X: &HitExpr{Table: table, Pos: pos}, Pos: pos}
			default:
				return &ActionExpr{Table: table, Pos: pos}
			}
		}
		return &PathExpr{Parts: []string{name}, Pos: pos}
	case p.atOp("(") != "":
		p.next()
		e := p.parseImplies()
		p.expectOp(")")
		return e
	}
	p.errorf(pos, "expected expression, found %q", p.tokText())
	return &BoolExpr{Pos: pos}
}
