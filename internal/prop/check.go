package prop

import (
	"fmt"
	"sort"
	"strings"

	"bf4/internal/ir"
)

// vkind is the property-DSL type kind.
type vkind int

const (
	vBool   vkind = iota
	vBV           // sized bit-vector
	vInt          // unsized integer literal, adapts to a sized operand
	vAction       // opaque action selector of a table instance
)

// vtype is the property-DSL type of an expression.
type vtype struct {
	kind  vkind
	width int               // for vBV
	inst  *ir.TableInstance // for vAction
}

func (t vtype) String() string {
	switch t.kind {
	case vBool:
		return "bool"
	case vBV:
		return fmt.Sprintf("bit<%d>", t.width)
	case vInt:
		return "int"
	default:
		return fmt.Sprintf("action selector of %s", t.inst.Table.Name)
	}
}

// checked is the resolution side-table the typechecker fills in and the
// compiler consumes: every name is bound to an IR entity here, so
// compile.go is a pure term constructor.
type checked struct {
	types    map[Expr]vtype
	vars     map[*PathExpr]*ir.Var      // field paths → program vars
	valids   map[*ValidExpr]*ir.Var     // header paths → validity bits
	insts    map[Expr]*ir.TableInstance // Hit/Action exprs → instances
	actIdx   map[*PathExpr]int          // action-name operands → ActIndex value
	intWidth map[*IntExpr]int           // adapted widths for unsized literals
}

// checker typechecks one property expression against a lowered program.
// anchor, when non-nil, is the table instance the property is spliced
// behind (@after): hit/action_run references to the anchor's table
// resolve to that exact instance; references to other tables resolve to
// the last instance in program order.
type checker struct {
	p      *ir.Program
	anchor *ir.TableInstance
	c      *checked
}

func newChecker(p *ir.Program, anchor *ir.TableInstance) *checker {
	return &checker{p: p, anchor: anchor, c: &checked{
		types:    map[Expr]vtype{},
		vars:     map[*PathExpr]*ir.Var{},
		valids:   map[*ValidExpr]*ir.Var{},
		insts:    map[Expr]*ir.TableInstance{},
		actIdx:   map[*PathExpr]int{},
		intWidth: map[*IntExpr]int{},
	}}
}

// checkProperty typechecks the whole property: the predicate must be
// boolean.
func (ck *checker) checkProperty(pr *Property) error {
	t, err := ck.check(pr.Expr)
	if err != nil {
		return err
	}
	if t.kind != vBool {
		return fmt.Errorf("%s: property predicate has type %s, want bool", pr.Expr.ExprPos(), t)
	}
	return nil
}

// resolvePath maps a dotted property path onto the lowered variable
// namespace. standard_metadata is an alias for the internal smeta
// prefix.
func (ck *checker) resolvePath(e *PathExpr) (string, error) {
	if len(e.Parts) < 2 {
		return "", fmt.Errorf("%s: %q is not a field reference; paths start with hdr., meta. or standard_metadata.", e.Pos, e.String())
	}
	root := e.Parts[0]
	switch root {
	case "standard_metadata":
		root = "smeta"
	case "hdr", "meta", "smeta":
	default:
		return "", fmt.Errorf("%s: unknown name %q; paths start with hdr., meta. or standard_metadata.", e.Pos, root)
	}
	return root + "." + strings.Join(e.Parts[1:], "."), nil
}

// instancesOf returns the expansion instances of the named table in
// program order, or an error naming the known tables when absent.
func (ck *checker) instancesOf(table string, pos Pos) ([]*ir.TableInstance, error) {
	var out []*ir.TableInstance
	for _, inst := range ck.p.Instances {
		if inst.Table.Name == table {
			out = append(out, inst)
		}
	}
	if len(out) == 0 {
		known := make([]string, 0, len(ck.p.Tables))
		for name := range ck.p.Tables {
			known = append(known, name)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("%s: unknown table %q (known: %s)", pos, table, strings.Join(known, ", "))
	}
	return out, nil
}

// resolveInstance picks the instance a hit/action_run reference binds
// to: the anchor instance when the property is anchored @after the same
// table, otherwise the last apply of that table.
func (ck *checker) resolveInstance(table string, pos Pos) (*ir.TableInstance, error) {
	if ck.anchor != nil && ck.anchor.Table.Name == table {
		return ck.anchor, nil
	}
	insts, err := ck.instancesOf(table, pos)
	if err != nil {
		return nil, err
	}
	return insts[len(insts)-1], nil
}

// check computes the type of e, binding names into the side-table. The
// switch below must stay exhaustive over every Expr kind in ast.go —
// enforced by tools/analyzers/propcheck.
func (ck *checker) check(e Expr) (vtype, error) {
	switch e := e.(type) {
	case *PathExpr:
		name, err := ck.resolvePath(e)
		if err != nil {
			return vtype{}, err
		}
		v, ok := ck.p.Vars[name]
		if !ok {
			return vtype{}, fmt.Errorf("%s: no field %q in the program (resolved to %q)", e.Pos, e.String(), name)
		}
		ck.c.vars[e] = v
		if v.Sort.IsBool() {
			return ck.remember(e, vtype{kind: vBool})
		}
		return ck.remember(e, vtype{kind: vBV, width: v.Sort.Width})

	case *IntExpr:
		if e.Width > 0 {
			if e.Value.Sign() < 0 || e.Value.BitLen() > e.Width {
				return vtype{}, fmt.Errorf("%s: literal %s does not fit in bit<%d>", e.Pos, e.Value, e.Width)
			}
			return ck.remember(e, vtype{kind: vBV, width: e.Width})
		}
		if e.Value.Sign() < 0 {
			return vtype{}, fmt.Errorf("%s: negative literals need an explicit width", e.Pos)
		}
		return ck.remember(e, vtype{kind: vInt})

	case *BoolExpr:
		return ck.remember(e, vtype{kind: vBool})

	case *ValidExpr:
		name, err := ck.resolvePath(e.Header)
		if err != nil {
			return vtype{}, err
		}
		h, ok := ck.p.Headers[name]
		if !ok {
			return vtype{}, fmt.Errorf("%s: %q is not a header, cannot take isValid()", e.Pos, e.Header.String())
		}
		ck.c.valids[e] = h.Valid
		return ck.remember(e, vtype{kind: vBool})

	case *HitExpr:
		inst, err := ck.resolveInstance(e.Table, e.Pos)
		if err != nil {
			return vtype{}, err
		}
		ck.c.insts[e] = inst
		return ck.remember(e, vtype{kind: vBool})

	case *ActionExpr:
		inst, err := ck.resolveInstance(e.Table, e.Pos)
		if err != nil {
			return vtype{}, err
		}
		ck.c.insts[e] = inst
		return ck.remember(e, vtype{kind: vAction, inst: inst})

	case *UnaryExpr:
		t, err := ck.check(e.X)
		if err != nil {
			return vtype{}, err
		}
		switch e.Op {
		case "!":
			if t.kind != vBool {
				return vtype{}, fmt.Errorf("%s: operand of ! has type %s, want bool", e.X.ExprPos(), t)
			}
			return ck.remember(e, vtype{kind: vBool})
		default: // "~", "-"
			if t.kind != vBV {
				return vtype{}, fmt.Errorf("%s: operand of %s has type %s, want a sized bit-vector", e.X.ExprPos(), e.Op, t)
			}
			return ck.remember(e, vtype{kind: vBV, width: t.width})
		}

	case *BinaryExpr:
		return ck.checkBinary(e)
	}
	return vtype{}, fmt.Errorf("%s: unhandled property expression %T", e.ExprPos(), e)
}

func (ck *checker) checkBinary(e *BinaryExpr) (vtype, error) {
	// Action comparisons are special-cased before recursion: the action
	// name operand is a bare identifier, not a field path.
	if e.Op == "==" || e.Op == "!=" {
		if ae, path, swapped := actionCompare(e); ae != nil {
			if path == nil {
				return vtype{}, fmt.Errorf("%s: action_run(...) compares against an action name", e.ExprPos())
			}
			_ = swapped
			if _, err := ck.check(ae); err != nil {
				return vtype{}, err
			}
			inst := ck.c.insts[ae]
			if len(path.Parts) != 1 {
				return vtype{}, fmt.Errorf("%s: %q is not an action of table %s", path.Pos, path.String(), inst.Table.Name)
			}
			idx, ok := inst.ActIndex[path.Parts[0]]
			if !ok {
				known := make([]string, 0, len(inst.ActIndex))
				for name := range inst.ActIndex {
					known = append(known, name)
				}
				sort.Strings(known)
				return vtype{}, fmt.Errorf("%s: table %s has no action %q (actions: %s)", path.Pos, inst.Table.Name, path.Parts[0], strings.Join(known, ", "))
			}
			ck.c.actIdx[path] = idx
			return ck.remember(e, vtype{kind: vBool})
		}
	}

	tx, err := ck.check(e.X)
	if err != nil {
		return vtype{}, err
	}
	ty, err := ck.check(e.Y)
	if err != nil {
		return vtype{}, err
	}
	if tx.kind == vAction || ty.kind == vAction {
		return vtype{}, fmt.Errorf("%s: action_run(...) may only be compared (==/!=) against an action name", e.ExprPos())
	}

	switch e.Op {
	case "->", "||", "&&":
		if tx.kind != vBool || ty.kind != vBool {
			return vtype{}, fmt.Errorf("%s: operands of %s have types %s and %s, want bool", e.ExprPos(), e.Op, tx, ty)
		}
		return ck.remember(e, vtype{kind: vBool})

	case "==", "!=":
		if tx.kind == vBool && ty.kind == vBool {
			return ck.remember(e, vtype{kind: vBool})
		}
		if _, err := ck.adapt(e, tx, ty); err != nil {
			return vtype{}, err
		}
		return ck.remember(e, vtype{kind: vBool})

	case "<", "<=", ">", ">=":
		if _, err := ck.adapt(e, tx, ty); err != nil {
			return vtype{}, err
		}
		return ck.remember(e, vtype{kind: vBool})

	default: // "|", "^", "&", "+", "-"
		w, err := ck.adapt(e, tx, ty)
		if err != nil {
			return vtype{}, err
		}
		return ck.remember(e, vtype{kind: vBV, width: w})
	}
}

// adapt unifies the widths of a bit-vector binary operation, sizing an
// unsized literal to the other operand. Comparisons are unsigned.
func (ck *checker) adapt(e *BinaryExpr, tx, ty vtype) (int, error) {
	badOperands := func() error {
		return fmt.Errorf("%s: operands of %s have types %s and %s, want bit-vectors of one width", e.ExprPos(), e.Op, tx, ty)
	}
	switch {
	case tx.kind == vBV && ty.kind == vBV:
		if tx.width != ty.width {
			return 0, badOperands()
		}
		return tx.width, nil
	case tx.kind == vBV && ty.kind == vInt:
		return tx.width, ck.sizeLiteral(e.Y.(*IntExpr), tx.width)
	case tx.kind == vInt && ty.kind == vBV:
		return ty.width, ck.sizeLiteral(e.X.(*IntExpr), ty.width)
	case tx.kind == vInt && ty.kind == vInt:
		return 0, fmt.Errorf("%s: cannot infer a width for %s between two unsized literals; size one (e.g. 8w%s)", e.ExprPos(), e.Op, exprText(e.X))
	default:
		return 0, badOperands()
	}
}

func exprText(e Expr) string {
	if ie, ok := e.(*IntExpr); ok {
		return ie.Value.String()
	}
	return e.String()
}

func (ck *checker) sizeLiteral(e *IntExpr, width int) error {
	if e.Value.BitLen() > width {
		return fmt.Errorf("%s: literal %s does not fit in bit<%d>", e.Pos, e.Value, width)
	}
	ck.c.intWidth[e] = width
	return nil
}

func (ck *checker) remember(e Expr, t vtype) (vtype, error) {
	ck.c.types[e] = t
	return t, nil
}

// actionCompare recognizes `action_run(t) == name` / `name != action_run(t)`
// shapes. Returns the ActionExpr side and the name side (nil when the
// other operand is not a bare path); (nil, nil, false) when neither side
// is an ActionExpr.
func actionCompare(e *BinaryExpr) (*ActionExpr, *PathExpr, bool) {
	if ae, ok := e.X.(*ActionExpr); ok {
		path, _ := e.Y.(*PathExpr)
		return ae, path, false
	}
	if ae, ok := e.Y.(*ActionExpr); ok {
		path, _ := e.X.(*PathExpr)
		return ae, path, true
	}
	return nil, nil, false
}
