package prop

import (
	"fmt"

	"bf4/internal/ir"
	"bf4/internal/smt"
)

// compiler lowers a typechecked property expression to an smt term over
// the program's version-0 variable terms (passification later rewrites
// them to SSA versions along with the rest of the IR). Every name was
// already bound by the typechecker, so compilation cannot fail on
// user input; an unbound node here is a compiler bug and panics.
type compiler struct {
	p *ir.Program
	c *checked
	f *smt.Factory
}

func newCompiler(p *ir.Program, c *checked) *compiler {
	return &compiler{p: p, c: c, f: p.F}
}

// compile lowers e. The switch below must stay exhaustive over every
// Expr kind in ast.go — enforced by tools/analyzers/propcheck.
func (cp *compiler) compile(e Expr) *smt.Term {
	switch e := e.(type) {
	case *PathExpr:
		v := cp.c.vars[e]
		if v == nil {
			panic(fmt.Sprintf("prop: path %s not resolved by typechecker", e))
		}
		return v.Term

	case *IntExpr:
		w := e.Width
		if adapted, ok := cp.c.intWidth[e]; ok {
			w = adapted
		}
		return cp.f.BVConst(e.Value, w)

	case *BoolExpr:
		return cp.f.Bool(e.Value)

	case *ValidExpr:
		return cp.c.valids[e].Term

	case *HitExpr:
		return cp.c.insts[e].HitVar.Term

	case *ActionExpr:
		// Only reachable through an action comparison, which compiles the
		// whole ==/!= node below without recursing here.
		panic(fmt.Sprintf("prop: action_run(%s) compiled outside a comparison", e.Table))

	case *UnaryExpr:
		x := cp.compile(e.X)
		switch e.Op {
		case "!":
			return cp.f.Not(x)
		case "~":
			return cp.f.BVNot(x)
		default: // "-"
			return cp.f.Neg(x)
		}

	case *BinaryExpr:
		return cp.compileBinary(e)
	}
	panic(fmt.Sprintf("prop: unhandled expression %T", e))
}

func (cp *compiler) compileBinary(e *BinaryExpr) *smt.Term {
	if e.Op == "==" || e.Op == "!=" {
		if ae, path, _ := actionCompare(e); ae != nil {
			inst := cp.c.insts[ae]
			idx := cp.c.actIdx[path]
			eq := cp.f.Eq(inst.ActVar.Term, cp.f.BVConst64(int64(idx), inst.ActVar.Sort.Width))
			if e.Op == "!=" {
				return cp.f.Not(eq)
			}
			return eq
		}
	}
	x := cp.compile(e.X)
	y := cp.compile(e.Y)
	switch e.Op {
	case "->":
		return cp.f.Implies(x, y)
	case "||":
		return cp.f.Or(x, y)
	case "&&":
		return cp.f.And(x, y)
	case "==":
		return cp.f.Eq(x, y)
	case "!=":
		return cp.f.Not(cp.f.Eq(x, y))
	case "<":
		return cp.f.Ult(x, y)
	case "<=":
		return cp.f.Ule(x, y)
	case ">":
		return cp.f.Ult(y, x)
	case ">=":
		return cp.f.Ule(y, x)
	case "|":
		return cp.f.BVOr(x, y)
	case "^":
		return cp.f.BVXor(x, y)
	case "&":
		return cp.f.BVAnd(x, y)
	case "+":
		return cp.f.Add(x, y)
	case "-":
		return cp.f.Sub(x, y)
	}
	panic(fmt.Sprintf("prop: unhandled binary operator %q", e.Op))
}
