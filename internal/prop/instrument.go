package prop

import (
	"fmt"

	"bf4/internal/ir"
	p4token "bf4/internal/p4/token"
	"bf4/internal/smt"
)

// Instrumenter wraps Instrument as an ir.Options.Instrument hook, so the
// driver's rebuild loop (Fixes, Infer recheck) re-typechecks and
// re-splices the same property set against every fresh lowering.
func Instrumenter(props []*Property) func(*ir.Program) error {
	return func(p *ir.Program) error { return Instrument(p, props) }
}

// Instrument typechecks every property against the lowered program and
// splices it in:
//
//   - @assume (default anchor): a Branch right after the ingress-entry
//     nop whose false edge leads to an UnreachTerm — executions
//     violating the assumption are excluded from all downstream checks.
//   - @assert (default anchor): a guarded BugAssertFail right after the
//     ingress-end nop, using the exact branch→nop→BugTerm shape of
//     built-in checks so the dataflow pre-discharge and lint machinery
//     apply unchanged.
//   - @after(table): the same shapes anchored behind every expansion
//     instance's Join node, with hit()/action_run() of that table bound
//     to the enclosing instance.
//
// Properties splice in reverse declaration order so execution order at a
// shared anchor matches source order.
func Instrument(p *ir.Program, props []*Property) error {
	for i := len(props) - 1; i >= 0; i-- {
		if err := instrumentOne(p, props[i]); err != nil {
			return err
		}
	}
	return nil
}

func instrumentOne(p *ir.Program, pr *Property) error {
	type anchor struct {
		node *ir.Node
		inst *ir.TableInstance
	}
	var anchors []anchor
	if pr.After != "" {
		ck := newChecker(p, nil)
		insts, err := ck.instancesOf(pr.After, pr.Pos)
		if err != nil {
			return fmt.Errorf("%s: @after: %w", pr.Pos, err)
		}
		for _, inst := range insts {
			if inst.Join == nil {
				return fmt.Errorf("%s: table %s instance %d has no join point", pr.Pos, pr.After, inst.Seq)
			}
			anchors = append(anchors, anchor{node: inst.Join, inst: inst})
		}
	} else {
		at := p.IngressEnd
		if pr.Kind == Assume {
			at = p.IngressEntry
		}
		if at == nil {
			return fmt.Errorf("%s: program has no ingress anchors for properties", pr.Pos)
		}
		anchors = append(anchors, anchor{node: at})
	}
	for _, a := range anchors {
		ck := newChecker(p, a.inst)
		if err := ck.checkProperty(pr); err != nil {
			return err
		}
		cond := newCompiler(p, ck.c).compile(pr.Expr)
		splice(p, a.node, pr, cond)
	}
	return nil
}

// splice rewires the anchor's out-edges through the property check.
// Asserts become
//
//	anchor → branch(!cond) ─[true]→ nop → BugTerm(BugAssertFail)
//	                        └[false]→ nop → (anchor's old successors)
//
// matching the guarded shape analysis.guardOf expects; assumes become
//
//	anchor → branch(cond) ─[true]→ nop → (old successors)
//	                       └[false]→ UnreachTerm
func splice(p *ir.Program, at *ir.Node, pr *Property, cond *smt.Term) {
	info := &ir.PropInfo{
		Kind:       pr.Kind.String(),
		Origin:     pr.Origin(),
		Text:       pr.Text,
		FromSource: pr.FromSource,
		Line:       pr.Pos.Line,
		Col:        pr.Pos.Col,
	}
	var pos p4token.Pos
	if pr.FromSource {
		pos = p4token.Pos{Line: pr.Pos.Line, Col: pr.Pos.Col}
	}

	succs := append([]*ir.Node(nil), at.Succs...)
	at.Succs = at.Succs[:0]
	for _, s := range succs {
		removePred(s, at)
	}

	g := p.NewNode(ir.Branch)
	g.Pos = pos
	g.Prop = info
	p.Edge(at, g)

	if pr.Kind == Assume {
		g.Expr = cond
		cont := p.NewNode(ir.Nop)
		cont.Comment = "prop-assume-ok"
		p.Edge(g, cont) // Succs[0] = assumption holds
		p.Edge(g, unreachNode(p))
		for _, s := range succs {
			p.Edge(cont, s)
		}
		return
	}

	g.Expr = p.F.Not(cond)
	then := p.NewNode(ir.Nop)
	then.Comment = "then"
	els := p.NewNode(ir.Nop)
	els.Comment = "else"
	p.Edge(g, then) // Succs[0] = property violated
	p.Edge(g, els)
	bug := p.NewNode(ir.BugTerm)
	bug.Bug = ir.BugAssertFail
	bug.Pos = pos
	bug.Prop = info
	bug.Comment = fmt.Sprintf("assert %s fails (%s)", pr.Text, pr.Origin())
	p.Edge(then, bug)
	p.Bugs = append(p.Bugs, bug)
	for _, s := range succs {
		p.Edge(els, s)
	}
}

func removePred(n, pred *ir.Node) {
	for i, q := range n.Preds {
		if q == pred {
			n.Preds = append(n.Preds[:i], n.Preds[i+1:]...)
			return
		}
	}
}

// unreachNode returns the program's UnreachTerm, creating one if the
// lowering did not leave one behind.
func unreachNode(p *ir.Program) *ir.Node {
	for _, n := range p.Nodes {
		if n.Kind == ir.UnreachTerm {
			return n
		}
	}
	n := p.NewNode(ir.UnreachTerm)
	n.Comment = "prop-assume-violated"
	return n
}
