package prop

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) Expr {
	t.Helper()
	e, err := ParseExpr(src, Pos{File: "t.props", Line: 1, Col: 1})
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func TestParsePrecedence(t *testing.T) {
	// String() parenthesizes every binary node, so it exposes the parse
	// shape directly.
	cases := []struct{ src, want string }{
		{"(a.b == 1 && c.d == 2 || e.f == 3)", "(((a.b == 1) && (c.d == 2)) || (e.f == 3))"},
		// Implication binds loosest and associates right.
		{"(a.b == 1 -> c.d == 2 -> e.f == 3)", "((a.b == 1) -> ((c.d == 2) -> (e.f == 3)))"},
		{"(!hit(t) || hit(u))", "(!hit(t) || hit(u))"},
		// miss() is sugar for !hit().
		{"(miss(t))", "!hit(t)"},
		{"(a.b + 1 == 2)", "((a.b + 1) == 2)"},
		{"(a.b & 16w0xff == a.b)", "((a.b & 16w255) == a.b)"},
		{"(hdr.ipv4.isValid() -> hdr.ipv4.ttl > 0)", "(hdr.ipv4.isValid() -> (hdr.ipv4.ttl > 0))"},
		{"(action_run(t) != drop_)", "(action_run(t) != drop_)"},
	}
	for _, c := range cases {
		if got := mustParse(t, c.src).String(); got != c.want {
			t.Errorf("ParseExpr(%q).String() = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseNumbers(t *testing.T) {
	cases := []struct {
		src   string
		width int
		value int64
	}{
		{"(a.b == 42)", 0, 42},
		{"(a.b == 0x800)", 0, 2048},
		{"(a.b == 16w0x800)", 16, 2048},
		{"(a.b == 9w511)", 9, 511},
	}
	for _, c := range cases {
		e := mustParse(t, c.src).(*BinaryExpr)
		lit, ok := e.Y.(*IntExpr)
		if !ok {
			t.Fatalf("ParseExpr(%q): rhs is %T, want *IntExpr", c.src, e.Y)
		}
		if lit.Width != c.width || lit.Value.Int64() != c.value {
			t.Errorf("ParseExpr(%q): got %dw%v, want %dw%d", c.src, lit.Width, lit.Value, c.width, c.value)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"(a.b == ", ""},            // unclosed
		{"(a.b == 1 == 2)", ""},     // comparisons don't chain
		{"(a.b @ 1)", ""},           // bad token
		{"(hit())", ""},             // hit wants a table name
		{"(a.b == 1) trailing", ""}, // text after the predicate
		{"(16w0xzz == a.b)", ""},    // malformed literal
	}
	for _, c := range cases {
		if _, err := ParseExpr(c.src, Pos{File: "t.props", Line: 3, Col: 1}); err == nil {
			t.Errorf("ParseExpr(%q): expected error", c.src)
		} else if !strings.Contains(err.Error(), "t.props:3:") {
			t.Errorf("ParseExpr(%q): error %q lacks a t.props:3:<col> position", c.src, err)
		}
	}
}

func TestParseSpecFile(t *testing.T) {
	spec := strings.Join([]string{
		"# comment",
		"",
		"@assume(standard_metadata.ingress_port != 9w511)",
		"// another comment",
		"  @assert @after(fwd_0) (standard_metadata.egress_spec != 9w0)",
		"@assert(meta.m.flag != 8w1)",
	}, "\n")
	props, err := ParseSpecFile("x.props", []byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 3 {
		t.Fatalf("got %d properties, want 3", len(props))
	}
	if props[0].Kind != Assume || props[0].After != "" {
		t.Errorf("props[0] = %s, want a plain @assume", props[0].Describe())
	}
	if props[1].Kind != Assert || props[1].After != "fwd_0" {
		t.Errorf("props[1] = %s, want @assert @after(fwd_0)", props[1].Describe())
	}
	if props[1].Origin() != "x.props:5:3" {
		t.Errorf("props[1].Origin() = %q, want x.props:5:3 (indented line)", props[1].Origin())
	}
	if props[2].Text != "meta.m.flag != 8w1" {
		t.Errorf("props[2].Text = %q, want the predicate without outer parens", props[2].Text)
	}
	if props[0].FromSource || props[1].FromSource {
		t.Error("spec-file properties must not be marked FromSource")
	}
}

func TestParseSpecFileErrors(t *testing.T) {
	cases := []string{
		"@assert meta.m.flag != 1",       // missing parens
		"@assert(a.b == 1) trailing",     // trailing text
		"@check(a.b == 1)",               // unknown keyword
		"@assert @after() (a.b == 1)",    // empty @after
		"@assert @after(t u) (a.b == 1)", // @after wants one name
	}
	for _, line := range cases {
		if _, err := ParseSpecFile("x.props", []byte(line)); err == nil {
			t.Errorf("ParseSpecFile(%q): expected error", line)
		}
	}
}

func TestExtractSource(t *testing.T) {
	src := strings.Join([]string{
		"control C() {",
		"    apply {",
		"        // @assume(hdr.ethernet.etherType != 16w0xBEEF)",
		"        x = 1; // plain comment, no annotation",
		"        // @assert @after(t0) (hit(t0) -> action_run(t0) != drop_)",
		"    }",
		"}",
	}, "\n")
	props, err := ExtractSource("prog.p4", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 2 {
		t.Fatalf("got %d properties, want 2", len(props))
	}
	for _, pr := range props {
		if !pr.FromSource {
			t.Errorf("%s: source property not marked FromSource", pr.Origin())
		}
	}
	if props[0].Kind != Assume || props[0].Pos.Line != 3 {
		t.Errorf("props[0] = %s at %s, want @assume on line 3", props[0].Describe(), props[0].Origin())
	}
	if props[1].After != "t0" || props[1].Pos.Line != 5 {
		t.Errorf("props[1] = %s at %s, want @after(t0) on line 5", props[1].Describe(), props[1].Origin())
	}
	// Column points at the '@'.
	if wantCol := strings.Index("        // @assume", "@") + 1; props[0].Pos.Col != wantCol {
		t.Errorf("props[0].Pos.Col = %d, want %d", props[0].Pos.Col, wantCol)
	}

	if _, err := ExtractSource("bad.p4", "// @assert(oops"); err == nil {
		t.Error("malformed source annotation must be a hard error, got nil")
	}
}

func TestSortProperties(t *testing.T) {
	mk := func(file string, line, col int) *Property {
		return &Property{Pos: Pos{File: file, Line: line, Col: col}}
	}
	props := []*Property{mk("b.props", 1, 1), mk("a.props", 9, 1), mk("a.props", 2, 5), mk("a.props", 2, 1)}
	Sort(props)
	want := []string{"a.props:2:1", "a.props:2:5", "a.props:9:1", "b.props:1:1"}
	for i, w := range want {
		if props[i].Origin() != w {
			t.Errorf("Sort[%d] = %s, want %s", i, props[i].Origin(), w)
		}
	}
}

func TestDataVars(t *testing.T) {
	e := mustParse(t, "(hdr.ipv4.isValid() && hit(t) -> action_run(t) != drop_ && standard_metadata.egress_spec != 9w0 && hdr.ipv4.ttl > meta.m.guard)")
	got := DataVars(e)
	want := []string{"hdr.ipv4.$valid", "hdr.ipv4.ttl", "meta.m.guard", "smeta.egress_spec"}
	if len(got) != len(want) {
		t.Fatalf("DataVars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DataVars = %v, want %v", got, want)
		}
	}
}
