package prop

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates the two property flavors.
type Kind int

const (
	// Assert properties must hold on every execution reaching their
	// anchor; violations become BugAssertFail nodes the solver confirms
	// with a packet witness or refutes.
	Assert Kind = iota
	// Assume properties constrain the input space: executions violating
	// them are routed to an unreachable terminal and excluded from every
	// downstream check.
	Assume
)

func (k Kind) String() string {
	if k == Assume {
		return "assume"
	}
	return "assert"
}

// Property is one parsed @assert/@assume annotation.
type Property struct {
	Kind Kind
	Expr Expr
	// After anchors the property right behind every apply of the named
	// table (`@assert @after(t) (...)`); empty means the default anchor
	// (end of ingress for asserts, ingress entry for assumes).
	After string
	// Pos is the declaration site (P4 source comment or .props line).
	Pos Pos
	// Text is the predicate as written, for diagnostics.
	Text string
	// FromSource marks properties extracted from P4 source comments;
	// their Pos is a valid position in the analyzed program file.
	FromSource bool
}

// Origin renders the declaration site as file:line:col.
func (p *Property) Origin() string { return p.Pos.String() }

// Describe renders the property header for messages, e.g.
// "@assert @after(fwd) (x == 1)".
func (p *Property) Describe() string {
	var b strings.Builder
	b.WriteString("@")
	b.WriteString(p.Kind.String())
	if p.After != "" {
		fmt.Fprintf(&b, " @after(%s)", p.After)
	}
	fmt.Fprintf(&b, "(%s)", p.Text)
	return b.String()
}

// Sort orders properties by declaration site (file, line, col) — the
// canonical processing order, independent of how the inputs were
// gathered (source scan vs spec files).
func Sort(props []*Property) {
	sort.SliceStable(props, func(i, j int) bool {
		a, b := props[i].Pos, props[j].Pos
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
}

// parseAnnotation parses one "@assert.../@assume..." annotation whose
// '@' sits at pos. Grammar:
//
//	'@assert' | '@assume'  [ '@after' '(' table ')' ]  '(' predicate ')'
//
// The parenthesized predicate must close the annotation: trailing text
// is an error, so a stray comment after a property is caught rather
// than silently ignored.
func parseAnnotation(text string, pos Pos) (*Property, error) {
	pr := &Property{Pos: pos}
	rest := text
	col := pos.Col
	eat := func(prefix string) bool {
		if strings.HasPrefix(rest, prefix) {
			rest = rest[len(prefix):]
			col += len(prefix)
			return true
		}
		return false
	}
	skipSpace := func() {
		for len(rest) > 0 && (rest[0] == ' ' || rest[0] == '\t') {
			rest = rest[1:]
			col++
		}
	}
	switch {
	case eat("@assert"):
		pr.Kind = Assert
	case eat("@assume"):
		pr.Kind = Assume
	default:
		return nil, fmt.Errorf("%s: expected @assert or @assume", pos)
	}
	skipSpace()
	if eat("@after") {
		skipSpace()
		if !eat("(") {
			return nil, fmt.Errorf("%s:%d:%d: expected '(' after @after", pos.File, pos.Line, col)
		}
		skipSpace()
		end := strings.IndexByte(rest, ')')
		if end < 0 {
			return nil, fmt.Errorf("%s:%d:%d: unclosed @after(...)", pos.File, pos.Line, col)
		}
		pr.After = strings.TrimSpace(rest[:end])
		if pr.After == "" || strings.ContainsAny(pr.After, " \t") {
			return nil, fmt.Errorf("%s:%d:%d: @after wants a single table name", pos.File, pos.Line, col)
		}
		rest = rest[end+1:]
		col += end + 1
		skipSpace()
	}
	if len(rest) == 0 || rest[0] != '(' {
		return nil, fmt.Errorf("%s:%d:%d: expected parenthesized predicate", pos.File, pos.Line, col)
	}
	expr, err := ParseExpr(rest, Pos{File: pos.File, Line: pos.Line, Col: col})
	if err != nil {
		return nil, err
	}
	pr.Expr = expr
	pr.Text = strings.TrimSpace(trimOuterParens(strings.TrimSpace(rest)))
	return pr, nil
}

// trimOuterParens strips one pair of outer parentheses when they match
// each other ("(a) && (b)" keeps its parens, "(a && b)" loses them).
func trimOuterParens(s string) string {
	if len(s) < 2 || s[0] != '(' || s[len(s)-1] != ')' {
		return s
	}
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 && i != len(s)-1 {
				return s
			}
		}
	}
	return s[1 : len(s)-1]
}

// ExtractSource scans P4 source for property annotations in line
// comments (`// @assert(...)`, `// @assume(...)`), returning them with
// their true file positions. One property per comment; a malformed
// annotation is a hard error (silently ignoring a typo'd property would
// un-verify it).
func ExtractSource(file, src string) ([]*Property, error) {
	var out []*Property
	for i, line := range strings.Split(src, "\n") {
		line = strings.TrimRight(line, "\r")
		ci := strings.Index(line, "//")
		if ci < 0 {
			continue
		}
		comment := line[ci+2:]
		ai := strings.Index(comment, "@assert")
		if j := strings.Index(comment, "@assume"); j >= 0 && (ai < 0 || j < ai) {
			ai = j
		}
		if ai < 0 {
			continue
		}
		col := ci + 2 + ai + 1 // 1-based column of '@'
		pr, err := parseAnnotation(comment[ai:], Pos{File: file, Line: i + 1, Col: col})
		if err != nil {
			return nil, err
		}
		pr.FromSource = true
		out = append(out, pr)
	}
	return out, nil
}

// ParseSpecFile parses a standalone .props spec file: one property per
// line, '#' or '//' line comments, blank lines ignored.
func ParseSpecFile(file string, data []byte) ([]*Property, error) {
	var out []*Property
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		trimmed := strings.TrimLeft(line, " \t")
		if trimmed == "" || strings.HasPrefix(trimmed, "#") || strings.HasPrefix(trimmed, "//") {
			continue
		}
		col := len(line) - len(trimmed) + 1
		pr, err := parseAnnotation(trimmed, Pos{File: file, Line: i + 1, Col: col})
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
	}
	return out, nil
}
