package prop

import "sort"

// DataVars returns the resolved program-variable names a property
// expression reads — field paths plus header validity bits — sorted and
// deduplicated. Table state (hit/action_run) is excluded: those are
// per-instance control variables, not packet data. Used by the driver to
// pick which fields of a replayed witness to show.
func DataVars(e Expr) []string {
	seen := map[string]bool{}
	collectVars(e, seen)
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func collectVars(e Expr, seen map[string]bool) {
	switch e := e.(type) {
	case *PathExpr:
		if name, ok := pathVarName(e); ok {
			seen[name] = true
		}
	case *ValidExpr:
		if name, ok := pathVarName(e.Header); ok {
			seen[name+".$valid"] = true
		}
	case *UnaryExpr:
		collectVars(e.X, seen)
	case *BinaryExpr:
		// In an action comparison the path operand is an action name,
		// not a field.
		if ae, _, _ := actionCompare(e); ae != nil && (e.Op == "==" || e.Op == "!=") {
			return
		}
		collectVars(e.X, seen)
		collectVars(e.Y, seen)
	case *IntExpr, *BoolExpr, *HitExpr, *ActionExpr:
	}
}

// pathVarName resolves a dotted path to the lowered variable namespace
// without needing a program (mirrors checker.resolvePath).
func pathVarName(e *PathExpr) (string, bool) {
	if len(e.Parts) < 2 {
		return "", false
	}
	root := e.Parts[0]
	switch root {
	case "standard_metadata":
		root = "smeta"
	case "hdr", "meta", "smeta":
	default:
		return "", false
	}
	name := root
	for _, p := range e.Parts[1:] {
		name += "." + p
	}
	return name, true
}
