package prop

import (
	"fmt"
	"math/big"
	"strings"
	"unicode"
)

// tokKind discriminates lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber // value in numVal, explicit width (0 = none) in numWidth
	tokOp     // operator / punctuation, text in lit
)

type token struct {
	kind     tokKind
	lit      string
	numVal   *big.Int
	numWidth int
	pos      Pos
}

// lexer tokenizes one property predicate. It is seeded with a base
// position so predicates embedded mid-line (source comments) report
// their true file:line:col.
type lexer struct {
	src  string
	off  int
	line int
	col  int
	file string
}

func newLexer(src string, base Pos) *lexer {
	return &lexer{src: src, line: base.Line, col: base.Col, file: base.File}
}

func (l *lexer) pos() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.off < len(l.src); i++ {
		if l.src[l.off] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.off++
	}
}

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peekAt(i int) byte {
	if l.off+i >= len(l.src) {
		return 0
	}
	return l.src[l.off+i]
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// twoCharOps are matched before single-char operators.
var twoCharOps = []string{"->", "||", "&&", "==", "!=", "<=", ">="}

// next returns the next token. Lexing errors come back as an error with
// the offending position.
func (l *lexer) next() (token, error) {
	for l.off < len(l.src) && (l.peek() == ' ' || l.peek() == '\t') {
		l.advance(1)
	}
	start := l.pos()
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.peek()

	if unicode.IsDigit(rune(c)) {
		return l.lexNumber(start)
	}
	if isIdentStart(c) {
		j := 0
		for l.off+j < len(l.src) && isIdentPart(l.src[l.off+j]) {
			j++
		}
		lit := l.src[l.off : l.off+j]
		l.advance(j)
		return token{kind: tokIdent, lit: lit, pos: start}, nil
	}
	for _, op := range twoCharOps {
		if strings.HasPrefix(l.src[l.off:], op) {
			l.advance(2)
			return token{kind: tokOp, lit: op, pos: start}, nil
		}
	}
	switch c {
	case '(', ')', ',', '.', '!', '~', '-', '+', '*', '&', '|', '^', '<', '>':
		l.advance(1)
		return token{kind: tokOp, lit: string(c), pos: start}, nil
	}
	return token{}, fmt.Errorf("%s: unexpected character %q in property", start, string(c))
}

// lexNumber handles decimal, 0x hex, and P4 width-prefixed literals
// (9w0, 16w0x800).
func (l *lexer) lexNumber(start Pos) (token, error) {
	j := 0
	for l.off+j < len(l.src) && unicode.IsDigit(rune(l.src[l.off+j])) {
		j++
	}
	width := 0
	if l.peekAt(j) == 'w' {
		w, ok := new(big.Int).SetString(l.src[l.off:l.off+j], 10)
		if !ok || !w.IsInt64() || w.Int64() <= 0 || w.Int64() > 4096 {
			return token{}, fmt.Errorf("%s: bad width in sized literal", start)
		}
		width = int(w.Int64())
		l.advance(j + 1) // width digits + 'w'
		j = 0
	}
	base := 10
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		base = 16
		l.advance(2)
		j = 0
	}
	digits := func(c byte) bool {
		if base == 16 {
			return unicode.IsDigit(rune(c)) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
		}
		return unicode.IsDigit(rune(c))
	}
	for l.off+j < len(l.src) && digits(l.src[l.off+j]) {
		j++
	}
	if j == 0 {
		return token{}, fmt.Errorf("%s: malformed number", start)
	}
	v, ok := new(big.Int).SetString(l.src[l.off:l.off+j], base)
	if !ok {
		return token{}, fmt.Errorf("%s: malformed number", start)
	}
	l.advance(j)
	return token{kind: tokNumber, numVal: v, numWidth: width, pos: start}, nil
}
