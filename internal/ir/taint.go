// Information-flow (taint) instrumentation. Enabled by
// Options.CheckInfoFlow, the builder gives every data variable v a
// shadow variable v.$taint of the same shape (BV(w) mask for
// bitvectors, Bool for booleans) tracking which bits of v may derive
// from a sensitive source. Sources are header/struct fields annotated
// @sensitive, plus — under Options.TaintDefaultPolicy — well-known
// privacy-relevant fields (ipv4/ipv6 source addresses). Shadows are
// initialized to all-ones for sources and zero otherwise, re-tainted on
// every havoc, and updated after every assignment with a taint term
// computed by a per-operator transfer function over the RHS.
//
// At each sink (emitted header field writes, egress-visible standard
// metadata, table keys, clone/digest payloads) the builder emits a
// BugInfoLeak check asserting the written value's taint is nonzero —
// the same branch/bug-terminal shape as every other instrumented check,
// so wp, slicing, the solver and Infer all treat it uniformly. The
// dataflow pass (internal/analysis/taint.go) abstractly executes the
// very same shadow assignments with smt.Eval over constant masks, which
// makes the static label lattice agree with the solver's shadow
// encoding by construction: a sink the dataflow proves untainted is
// untainted on every path, and a dataflow alarm the solver refutes is a
// genuinely infeasible flow (reported "dismissed").
//
// Per-bit refinement: each transfer result is intersected with the
// complement of the known bits of the underlying value term
// (internal/absdom), so extracting statically-known bits of a tainted
// word does not alarm. The taint transfer is exhaustive over smt.Op —
// tools/analyzers/taintcheck gates this in CI.
package ir

import (
	"fmt"
	"math/big"
	"strings"

	"bf4/internal/absdom"
	"bf4/internal/p4/ast"
	"bf4/internal/p4/token"
	"bf4/internal/smt"
)

// TaintSuffix is the name suffix of shadow taint variables.
const TaintSuffix = ".$taint"

// ShadowBase returns the data variable name a shadow taint variable
// tracks, and whether name is a shadow at all.
func ShadowBase(name string) (string, bool) {
	if strings.HasSuffix(name, TaintSuffix) {
		return strings.TrimSuffix(name, TaintSuffix), true
	}
	return "", false
}

// shadowed reports whether v carries a shadow taint variable: data
// variables only — control variables (table entries come from the
// controller, not the packet) and builder-internal $-variables
// (validity bits, stack counters, the egress-spec shadow, and the taint
// shadows themselves) do not.
func shadowed(v *Var) bool {
	return !v.IsControl && !strings.Contains(v.Name, "$")
}

// onesMask returns the all-ones mask of width w.
func onesMask(w int) *big.Int {
	return new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(w)), big.NewInt(1))
}

// shadowVar interns the shadow taint variable for v.
func (b *builder) shadowVar(v *Var) *Var {
	s := smt.BoolSort
	if !v.Sort.IsBool() {
		s = smt.BV(v.Sort.Width)
	}
	return b.p.NewVar(v.Name+TaintSuffix, s)
}

// zeroTaint is the no-bits-tainted mask for a value of sort s.
func (b *builder) zeroTaint(s smt.Sort) *smt.Term {
	if s.IsBool() {
		return b.f().False()
	}
	return b.f().BVConst64(0, s.Width)
}

// fullTaint is the every-bit-tainted mask for v.
func (b *builder) fullTaint(v *Var) *smt.Term {
	if v.Sort.IsBool() {
		return b.f().True()
	}
	return b.f().BVConst(onesMask(v.Sort.Width), v.Sort.Width)
}

// sourceTaint is the mask a fresh (initialized or havocked) value of v
// carries: all-ones for sensitive sources, zero otherwise. Sensitive
// fields are re-tainted on every havoc — extern outputs landing in a
// field the policy marks sensitive are conservatively treated as
// sensitive again.
func (b *builder) sourceTaint(v *Var) *smt.Term {
	if b.p.Sensitive[v.Name] != nil {
		return b.fullTaint(v)
	}
	return b.zeroTaint(v.Sort)
}

// markSensitive records path as a taint source if fld carries a
// @sensitive annotation, or (under the default policy) if it is a
// well-known sensitive field of declType.
func (b *builder) markSensitive(path string, fld *ast.Field, declType string) {
	if !b.opts.CheckInfoFlow {
		return
	}
	for _, a := range fld.Annots {
		if a == "sensitive" {
			b.p.Sensitive[path] = &SensitiveSource{Origin: "annot", Pos: fld.P}
			return
		}
	}
	if b.opts.TaintDefaultPolicy && defaultSensitive(declType, fld.Name) {
		b.p.Sensitive[path] = &SensitiveSource{Origin: "policy", Pos: fld.P}
	}
}

// defaultSensitive is the built-in policy: source addresses of IP
// headers identify the sender and are privacy-relevant by default.
func defaultSensitive(declType, fieldName string) bool {
	d := strings.ToLower(declType)
	if !strings.HasPrefix(d, "ipv4") && !strings.HasPrefix(d, "ipv6") {
		return false
	}
	return fieldName == "srcAddr" || fieldName == "src_addr"
}

// emitShadow appends a raw shadow assignment (bypassing assign(), which
// would recurse into the shadow hooks).
func (b *builder) emitShadow(v *Var, taint *smt.Term) {
	n := b.p.NewNode(Assign)
	n.Var = b.shadowVar(v)
	n.Expr = taint
	n.Pos = b.stmtPos
	b.emit(n)
}

// initShadows emits source-taint initializations for every data
// variable declared so far whose shadow has not been initialized yet.
// Called after each declaration wave (pipeline storage, parser params,
// control params/locals) so every shadow is defined before first use.
func (b *builder) initShadows() {
	if !b.opts.CheckInfoFlow || b.cur == nil {
		return
	}
	vars := b.p.VarList()
	for _, v := range vars {
		if !shadowed(v) || b.shadowInited[v] {
			continue
		}
		b.shadowInited[v] = true
		b.emitShadow(v, b.sourceTaint(v))
	}
}

// shadowAssign mirrors an assignment v := rhs onto v's shadow:
// v.$taint := T(rhs), where T is the per-operator taint transfer.
func (b *builder) shadowAssign(v *Var, rhs *smt.Term) {
	if !b.opts.CheckInfoFlow || !shadowed(v) || b.cur == nil {
		return
	}
	b.shadowInited[v] = true
	b.emitShadow(v, b.taintOf(rhs))
}

// shadowHavoc mirrors a havoc of v onto its shadow: fresh values carry
// the source taint (all-ones for sensitive fields, zero otherwise).
func (b *builder) shadowHavoc(v *Var) {
	if !b.opts.CheckInfoFlow || !shadowed(v) || b.cur == nil {
		return
	}
	b.shadowInited[v] = true
	b.emitShadow(v, b.sourceTaint(v))
}

// ------------------------------------------------------------ transfer

// taintOf computes the shadow taint term of t: a term over shadow
// variables (and constants) whose value under any assignment of the
// shadows is the taint mask of t's value. Memoized per term.
func (b *builder) taintOf(t *smt.Term) *smt.Term {
	if b.taintMemo == nil {
		b.taintMemo = make(map[*smt.Term]*smt.Term)
	}
	if m, ok := b.taintMemo[t]; ok {
		return m
	}
	res := b.refineTaint(t, b.taintOfRaw(t))
	b.taintMemo[t] = res
	return res
}

// nonzero converts a taint term to "some bit is tainted".
func (b *builder) nonzero(taint *smt.Term) *smt.Term {
	if taint.Sort().IsBool() {
		return taint
	}
	return b.f().Not(b.f().Eq(taint, b.f().BVConst64(0, taint.Sort().Width)))
}

// anyTainted is the coarse boolean transfer: the result is tainted iff
// any argument carries taint.
func (b *builder) anyTainted(args []*smt.Term) *smt.Term {
	out := b.f().False()
	for _, a := range args {
		out = b.f().Or(out, b.nonzero(b.taintOf(a)))
	}
	return out
}

// orTaints folds bitwise-or over the taints of args (all same width).
func (b *builder) orTaints(args []*smt.Term) *smt.Term {
	out := b.taintOf(args[0])
	for _, a := range args[1:] {
		out = b.f().BVOr(out, b.taintOf(a))
	}
	return out
}

// smearUp propagates taint upward through carry chains: bit i of an
// add/sub/mul result depends on bits <= i of the operands, so a taint
// mask m becomes m | m<<1 | m<<2 | ... — computed in log2(w) or-shift
// steps so the SMT encoding stays small.
func (b *builder) smearUp(taint *smt.Term, w int) *smt.Term {
	for sh := 1; sh < w; sh <<= 1 {
		taint = b.f().BVOr(taint, b.f().Shl(taint, b.f().BVConst64(int64(sh), w)))
	}
	return taint
}

// taintOfRaw is the per-operator transfer function, exhaustive over
// smt.Op (gated by tools/analyzers/taintcheck).
func (b *builder) taintOfRaw(t *smt.Term) *smt.Term {
	f := b.f()
	switch t.Op() {
	case smt.OpTrue, smt.OpFalse:
		return f.False()
	case smt.OpConst:
		return f.BVConst64(0, t.Sort().Width)
	case smt.OpVar:
		if _, isShadow := ShadowBase(t.Name()); isShadow {
			// Shadows of shadows don't exist; treat as public.
			return b.zeroTaint(t.Sort())
		}
		v := b.p.Vars[t.Name()]
		if v == nil || !shadowed(v) {
			// Control variables and builder-internal state are public.
			return b.zeroTaint(t.Sort())
		}
		return b.shadowVar(v).Term
	case smt.OpNot:
		return b.taintOf(t.Arg(0))
	case smt.OpAnd, smt.OpOr, smt.OpXor, smt.OpImplies,
		smt.OpEq, smt.OpUlt, smt.OpUle, smt.OpSlt, smt.OpSle:
		// Boolean connectives and comparisons: one boolean of output,
		// tainted iff any input bit is.
		return b.anyTainted(t.Args())
	case smt.OpIte:
		condT := b.nonzero(b.taintOf(t.Arg(0)))
		a, c := b.taintOf(t.Arg(1)), b.taintOf(t.Arg(2))
		if t.Sort().IsBool() {
			return f.Or(condT, a, c)
		}
		// A tainted condition taints every bit of the selected value;
		// otherwise a bit is tainted if it may come from a tainted bit
		// of either branch.
		return f.Ite(condT, f.BVConst(onesMask(t.Sort().Width), t.Sort().Width), f.BVOr(a, c))
	case smt.OpAdd, smt.OpSub, smt.OpMul:
		return b.smearUp(b.orTaints(t.Args()), t.Sort().Width)
	case smt.OpNeg:
		return b.smearUp(b.taintOf(t.Arg(0)), t.Sort().Width)
	case smt.OpBVAnd, smt.OpBVOr, smt.OpBVXor:
		return b.orTaints(t.Args())
	case smt.OpBVNot:
		return b.taintOf(t.Arg(0))
	case smt.OpShl, smt.OpLshr, smt.OpAshr:
		val, sh := t.Arg(0), t.Arg(1)
		tv := b.taintOf(val)
		if sh.IsConst() {
			// Constant shift: shift the mask the same way. Ashr smears
			// the sign bit's taint into the replicated high bits, which
			// is exactly the arithmetic-shift dependency.
			switch t.Op() {
			case smt.OpShl:
				return f.Shl(tv, sh)
			case smt.OpLshr:
				return f.Lshr(tv, sh)
			default:
				return f.Ashr(tv, sh)
			}
		}
		// Variable shift: any taint anywhere may move anywhere.
		w := t.Sort().Width
		any := f.Or(b.nonzero(tv), b.nonzero(b.taintOf(sh)))
		return f.Ite(any, f.BVConst(onesMask(w), w), f.BVConst64(0, w))
	case smt.OpConcat:
		return f.Concat(b.taintOf(t.Arg(0)), b.taintOf(t.Arg(1)))
	case smt.OpExtract:
		hi, lo := t.ExtractBounds()
		return f.Extract(b.taintOf(t.Arg(0)), hi, lo)
	case smt.OpZExt:
		return f.ZExt(b.taintOf(t.Arg(0)), t.Sort().Width)
	case smt.OpSExt:
		// Sign extension replicates the sign bit: its taint (the mask's
		// own sign bit) replicates with it.
		return f.SExt(b.taintOf(t.Arg(0)), t.Sort().Width)
	}
	panic(fmt.Sprintf("ir: no taint transfer for smt op %v", t.Op()))
}

// refineTaint intersects a raw transfer result with the complement of
// the bits absdom proves constant in t: a statically-known bit carries
// no information from any source, whatever fed it. Applied uniformly at
// every level of taintOf, so the dataflow evaluation (which evaluates
// these same terms) refines identically.
func (b *builder) refineTaint(t, raw *smt.Term) *smt.Term {
	if b.absTaint == nil {
		b.absTaint = absdom.NewAnalyzer()
	}
	if t.Sort().IsBool() {
		if _, decided := b.absTaint.Of(t).Decided(); decided {
			return b.f().False()
		}
		return raw
	}
	zeros, ones := b.absTaint.Of(t).KnownBits()
	known := new(big.Int).Or(zeros, ones)
	if known.Sign() == 0 {
		return raw
	}
	w := t.Sort().Width
	unknown := new(big.Int).AndNot(onesMask(w), known)
	return b.f().BVAnd(raw, b.f().BVConst(unknown, w))
}

// ------------------------------------------------------------ sinks

// sinkNouns renders sink classes for diagnostics.
var sinkNouns = map[string]string{
	"emit-field":     "emitted header field",
	"emit-copy":      "emitted header",
	"egress-meta":    "egress-visible metadata field",
	"table-key":      "table key",
	"extern-payload": "extern payload",
}

// egressMetaSinks are the standard-metadata fields visible beyond the
// switch (next-hop selection and multicast group).
var egressMetaSinks = map[string]bool{
	"smeta.egress_spec": true,
	"smeta.egress_port": true,
	"smeta.mcast_grp":   true,
}

// computeEmitSinks records which header paths (and their field
// variables) the deparser emits, i.e. which writes are externally
// visible. Must run before control lowering.
func (b *builder) computeEmitSinks(dep *ast.ControlDecl) {
	if !b.opts.CheckInfoFlow || dep == nil {
		return
	}
	b.emitSinkHeaders = b.emittedHeaders(dep)
	b.emitSinkFields = make(map[string]string)
	for path := range b.emitSinkHeaders {
		h := b.p.Headers[path]
		if h == nil {
			continue
		}
		for _, fv := range h.Fields {
			b.emitSinkFields[fv.Name] = path
		}
	}
}

// checkLeakTaint emits the BugInfoLeak check for a precomputed taint
// term: branch into a bug terminal, continue on the other path — the
// same branch/nop/bug shape as checkBug, recognized by guardOf. Values
// the transfer proves untainted (constants, pure control-plane data)
// produce no bug node at all.
//
// Unlike safety checks, a leak check must not assume it passed on the
// fall-through path: sinks are independent observation points, and a
// tainted value typically reaches several (assuming taint == 0 after
// the first check would mask every later sink on the same value). The
// guard is therefore nd && taint != 0 for a fresh free boolean nd: the
// bug's reachability condition keeps the exact satisfiability of
// taint != 0 on the path (nd is unconstrained), while the fall-through
// constraint !(nd && taint != 0) is discharged by nd == false without
// constraining the taint.
func (b *builder) checkLeakTaint(taint *smt.Term, sink, dest string, pos token.Pos) {
	if !b.opts.CheckInfoFlow || b.cur == nil {
		return
	}
	nz := b.nonzero(taint)
	if nz.IsFalse() {
		return
	}
	nd := b.p.NewVar(fmt.Sprintf("$iflow.nd.%d", len(b.p.Bugs)), smt.BoolSort)
	cond := b.f().And(nd.Term, nz)
	t, e := b.branch(cond)
	b.cur = t
	n := b.p.NewNode(BugTerm)
	n.Bug = BugInfoLeak
	n.Pos = pos
	n.Comment = fmt.Sprintf("sensitive data reaches %s %s", sinkNouns[sink], dest)
	n.Leak = &LeakInfo{Sink: sink, Dest: dest, Taint: taint}
	b.emit(n)
	b.p.Bugs = append(b.p.Bugs, n)
	b.cur = e
}

// checkLeakAssign instruments a scalar assignment when the destination
// is a sink: a field of an emitted header, or egress-visible standard
// metadata. Identity rewrites (v := v) carry no new flow.
func (b *builder) checkLeakAssign(v *Var, rhs *smt.Term, pos token.Pos) {
	if !b.opts.CheckInfoFlow || b.cur == nil || rhs == v.Term {
		return
	}
	switch {
	case egressMetaSinks[v.Name]:
		b.checkLeakTaint(b.taintOf(rhs), "egress-meta", v.Name, pos)
	case b.emitSinkFields[v.Name] != "":
		b.checkLeakTaint(b.taintOf(rhs), "emit-field", v.Name, pos)
	}
}

// checkLeakCopy instruments a header-to-header copy whose destination
// the deparser emits: the flow exists if any source field is tainted.
func (b *builder) checkLeakCopy(dst, src *Header, pos token.Pos) {
	if !b.opts.CheckInfoFlow || b.cur == nil || dst == src {
		return
	}
	if !b.emitSinkHeaders[dst.Path] {
		return
	}
	terms := make([]*smt.Term, 0, len(src.Fields))
	for i, fv := range src.Fields {
		if i < len(dst.Fields) {
			terms = append(terms, fv.Term)
		}
	}
	if len(terms) == 0 {
		return
	}
	b.checkLeakTaint(b.anyTainted(terms), "emit-copy",
		fmt.Sprintf("%s (copied from %s)", dst.Path, src.Path), pos)
}

// checkLeakExtern instruments clone/digest/resubmit/recirculate
// payloads: their arguments reach the controller or another pipeline
// pass and are externally visible.
func (b *builder) checkLeakExtern(name string, c *ast.CallExpr) {
	if !b.opts.CheckInfoFlow || b.cur == nil {
		return
	}
	for _, a := range c.Args {
		r := b.resolveRef(a)
		switch {
		case r.v != nil:
			b.checkLeakTaint(b.taintOf(r.v.Term), "extern-payload",
				fmt.Sprintf("%s (%s)", ast.PathString(a), name), c.P)
		case r.header != nil:
			terms := make([]*smt.Term, 0, len(r.header.Fields))
			for _, fv := range r.header.Fields {
				terms = append(terms, fv.Term)
			}
			if len(terms) > 0 {
				b.checkLeakTaint(b.anyTainted(terms), "extern-payload",
					fmt.Sprintf("%s (%s)", r.header.Path, name), c.P)
			}
		}
	}
}
