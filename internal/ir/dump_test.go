package ir

import (
	"strings"
	"testing"
)

// TestExpansionStructure locks the shape of a table expansion (paper
// Figure 4/5): assert point, hit branch, match assumes, key-read checks,
// action dispatch, miss default, join.
func TestExpansionStructure(t *testing.T) {
	src := `
header h_t { bit<8> f; }
struct headers { h_t h; }
struct metadata { bit<8> m; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w1: parse_h;
            default: accept;
        }
    }
    state parse_h { pkt.extract(hdr.h); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    action a(bit<8> v) { meta.m = v; smeta.egress_spec = 9w1; }
    table t {
        key = { hdr.h.f: ternary; }
        actions = { a; NoAction; }
    }
    apply { t.apply(); }
}
V1Switch(P(), Ing()) main;
`
	p := buildSrc(t, src, DefaultOptions())
	dump := p.Dump()

	// Structural landmarks, in the dump. Commutative operands print in
	// content-hash canonical order (see internal/smt), so equality
	// landmarks accept either operand order.
	for _, want := range [][]string{
		{"assert-point t$0"},
		{"branch pcn_t$0.hit"}, // hit/miss split
		{"(= #x0[8] pcn_t$0.action_run)", // action dispatch on a
			"(= pcn_t$0.action_run #x0[8])"},
		{"pcn_t$0.action_run = #x1[8]"}, // miss path assigns default index
		{"bug[invalid-key-read]"},       // ternary key over conditional header
		{"meta.m = pcn_t$0.a.v"},        // action body bound to entry param
		// ternary match assume
		{"(= (bvand hdr.h.f pcn_t$0.mask0) (bvand pcn_t$0.key0 pcn_t$0.mask0))",
			"(= (bvand pcn_t$0.mask0 hdr.h.f) (bvand pcn_t$0.mask0 pcn_t$0.key0))"},
	} {
		found := false
		for _, w := range want {
			if strings.Contains(dump, w) {
				found = true
			}
		}
		if !found {
			t.Errorf("dump lacks %q\n--- dump ---\n%s", want[0], dump)
		}
	}

	// Exactly one assert point and one join per expansion.
	if got := strings.Count(dump, "assert-point"); got != 1 {
		t.Errorf("assert points = %d, want 1", got)
	}
	inst := p.Instances[0]
	if inst.Join == nil {
		t.Fatal("instance join not recorded")
	}
	if inst.ActionRange["a"][0] == 0 && inst.ActionRange["a"][1] == 0 {
		t.Error("action range for a not recorded")
	}
	if len(inst.KeyTerms) != 1 || inst.KeyTerms[0] == nil {
		t.Error("key terms not recorded")
	}
}
