package ir

import (
	"fmt"

	"bf4/internal/p4/ast"
	"bf4/internal/p4/parser"
	"bf4/internal/p4/token"
	"bf4/internal/p4/types"
	"bf4/internal/smt"
)

func (b *builder) lowerStmt(s ast.Stmt) {
	if b.cur == nil {
		return
	}
	if p := s.Pos(); p.IsValid() {
		b.stmtPos = p
	}
	switch x := s.(type) {
	case *ast.AssignStmt:
		b.lowerAssign(x)
	case *ast.CallStmt:
		b.lowerCallStmt(x)
	case *ast.IfStmt:
		b.lowerIf(x)
	case *ast.BlockStmt:
		for _, st := range x.Stmts {
			b.lowerStmt(st)
			if b.cur == nil {
				return
			}
		}
	case *ast.SwitchStmt:
		b.lowerSwitch(x)
	case *ast.ExitStmt, *ast.ReturnStmt:
		if b.exitTarget != nil {
			b.p.Edge(b.cur, b.exitTarget)
		} else {
			b.p.Edge(b.cur, b.accept)
		}
		b.cur = nil
	case *ast.VarDeclStmt:
		if b.ctl != nil {
			b.declareLocal(b.ctl, x.Decl)
		}
	case *ast.EmptyStmt:
	default:
		b.errorf(s.Pos(), "unsupported statement %T", s)
	}
}

// ------------------------------------------------------------- assign

func (b *builder) lowerAssign(st *ast.AssignStmt) {
	lhs := b.resolveRef(st.LHS)

	// Header-to-header copy gets the paper's instrumented structure.
	if lhs.header != nil {
		rhs := b.resolveRef(st.RHS)
		if rhs.header == nil {
			b.errorf(st.P, "cannot assign non-header to header %s", lhs.header.Path)
			return
		}
		b.lowerHeaderCopy(lhs.header, rhs.header, st.P)
		return
	}

	if lhs.v == nil {
		b.errorf(st.P, "cannot assign to %s", ast.PathString(st.LHS))
		return
	}

	// Evaluate the RHS, emitting read checks for both the RHS reads and
	// the LHS write target before the assignment executes.
	b.beginReads()
	want := lhs.v.Sort.Width
	if lhs.v.Sort.IsBool() {
		want = 1
	}
	rhsTerm := b.lowerExpr(st.RHS, want)
	b.flushReadChecks(st.P)
	if b.cur == nil {
		return
	}
	if lhs.fromHeader != "" && b.opts.CheckHeaderValidity {
		h := b.p.Headers[lhs.fromHeader]
		b.checkBug(b.f().Not(h.Valid.Term), BugInvalidHeaderWrite, st.P,
			"write to field of invalid header %s", lhs.fromHeader)
		if b.cur == nil {
			return
		}
	}
	if b.opts.CheckInfoFlow {
		b.checkLeakAssign(lhs.v, rhsTerm, st.P)
		if b.cur == nil {
			return
		}
	}
	b.assign(lhs.v, rhsTerm)
	b.noteEgressSpecWrite(lhs.v)
}

func (b *builder) noteEgressSpecWrite(v *Var) {
	if b.p.EgressSpecSet != nil && v.Name == "smeta.egress_spec" && b.cur != nil {
		b.assign(b.p.EgressSpecSet, b.f().True())
	}
}

// lowerHeaderCopy implements the paper's instrumented header assignment
// (§4.2 "increasing bug coverage"):
//
//	if (src.isValid())      { copy fields; dst.setValid(); }
//	else if (dst.isValid()) { bug(); }        // destroys a live header
//	else                    { dontCare(); }   // no-op the user can't want
func (b *builder) lowerHeaderCopy(dst, src *Header, pos token.Pos) {
	validT, invalidT := b.branch(src.Valid.Term)

	b.cur = validT
	if b.opts.CheckInfoFlow {
		b.checkLeakCopy(dst, src, pos)
	}
	for i, f := range src.Fields {
		if i < len(dst.Fields) {
			b.assign(dst.Fields[i], f.Term)
		}
	}
	b.assign(dst.Valid, b.f().True())
	copyDone := b.cur

	b.cur = invalidT
	liveT, deadT := b.branch(dst.Valid.Term)
	b.cur = liveT
	b.bugHere(BugHeaderOverwrite, pos,
		"copy from invalid header %s destroys live header %s", src.Path, dst.Path)
	b.cur = deadT
	if b.opts.DontCare {
		dc := b.p.NewNode(DontCare)
		dc.Comment = fmt.Sprintf("no-op copy %s = %s", dst.Path, src.Path)
		b.emit(dc)
	}
	noopDone := b.cur

	b.join(copyDone, noopDone)
}

// ------------------------------------------------------------- calls

func (b *builder) lowerCallStmt(st *ast.CallStmt) {
	c := st.Call
	switch fun := c.Fun.(type) {
	case *ast.Ident:
		b.lowerFreeCall(fun.Name, c)
	case *ast.Member:
		b.lowerMethodCall(fun, c)
	default:
		b.errorf(c.P, "unsupported call")
	}
}

func (b *builder) lowerFreeCall(name string, c *ast.CallExpr) {
	switch name {
	case "mark_to_drop":
		if spec := b.lookupVar("smeta.egress_spec"); spec != nil {
			b.assign(spec, b.f().BVConst64(DropSpec, 9))
			b.noteEgressSpecWrite(spec)
		}
		return
	case "random", "hash":
		// out-argument gets an arbitrary value.
		if len(c.Args) > 0 {
			b.havocLValue(c.Args[0], c.P)
		}
		return
	case "digest", "clone", "clone3", "resubmit", "recirculate":
		// No dataplane-visible effect in the verification model, but the
		// payload escapes the pipeline: an information-flow sink.
		if b.opts.CheckInfoFlow {
			b.checkLeakExtern(name, c)
		}
		return
	case "truncate", "log_msg", "verify_checksum", "update_checksum",
		"verify_checksum_with_payload", "update_checksum_with_payload",
		"assert", "assume":
		return // no dataplane-visible effect in the verification model
	}
	// Direct action invocation.
	if b.ctl != nil {
		if sc := b.info.ScopeOf(b.ctl); sc != nil {
			if ad, ok := sc.Actions[name]; ok {
				args := make([]*smt.Term, len(c.Args))
				b.beginReads()
				for i, a := range c.Args {
					w := 0
					if i < len(ad.Params) {
						w = types.WidthOf(b.info.ResolveType(ad.Params[i].Type))
					}
					args[i] = b.lowerExpr(a, w)
				}
				b.flushReadChecks(c.P)
				if b.cur == nil {
					return
				}
				b.inlineAction(ad, args)
				return
			}
		}
	}
	b.errorf(c.P, "unknown function %s", name)
}

// havocLValue gives an arbitrary value to an lvalue argument (hash/random
// destinations).
func (b *builder) havocLValue(e ast.Expr, pos token.Pos) {
	r := b.resolveRef(e)
	if r.v == nil {
		b.errorf(pos, "cannot havoc %s", ast.PathString(e))
		return
	}
	if r.fromHeader != "" && b.opts.CheckHeaderValidity {
		h := b.p.Headers[r.fromHeader]
		b.checkBug(b.f().Not(h.Valid.Term), BugInvalidHeaderWrite, pos,
			"write to field of invalid header %s", r.fromHeader)
		if b.cur == nil {
			return
		}
	}
	b.havoc(r.v)
	b.noteEgressSpecWrite(r.v)
}

func (b *builder) lowerMethodCall(fun *ast.Member, c *ast.CallExpr) {
	recv := b.resolveRef(fun.X)
	switch {
	case recv.table != nil:
		if fun.Name == "apply" {
			b.expandTable(recv.table, c.P)
			return
		}
	case recv.header != nil:
		switch fun.Name {
		case "setValid":
			b.assign(recv.header.Valid, b.f().True())
			return
		case "setInvalid":
			b.assign(recv.header.Valid, b.f().False())
			return
		case "isValid":
			return // value context handled elsewhere; as a statement: no-op
		}
	case recv.register != nil:
		b.lowerRegisterOp(recv.register, fun.Name, c)
		return
	case recv.packet:
		switch fun.Name {
		case "extract":
			if len(c.Args) == 1 {
				b.lowerExtract(c.Args[0], c.P)
				return
			}
		case "emit", "advance":
			return
		}
	case recv.stack != nil:
		switch fun.Name {
		case "push_front", "pop_front":
			n := 1
			if len(c.Args) == 1 {
				if lit, ok := c.Args[0].(*ast.IntLit); ok {
					n = int(lit.Val.Int64())
				}
			}
			b.lowerStackShift(recv.stack, fun.Name, n, c.P)
			return
		}
	}
	b.errorf(c.P, "unsupported method call %s.%s", ast.PathString(fun.X), fun.Name)
}

func (b *builder) lowerRegisterOp(reg *Register, method string, c *ast.CallExpr) {
	f := b.f()
	switch method {
	case "read": // reg.read(dst, idx)
		if len(c.Args) != 2 {
			b.errorf(c.P, "register.read takes 2 arguments")
			return
		}
		b.beginReads()
		idx := b.toBV(b.lowerExpr(c.Args[1], 32), 32)
		b.flushReadChecks(c.P)
		if b.cur == nil {
			return
		}
		if b.opts.CheckRegisterBounds {
			b.checkBug(f.Uge(idx, f.BVConst64(int64(reg.Size), 32)), BugRegisterOOB, c.P,
				"register %s read index out of bounds (size %d)", reg.Name, reg.Size)
			if b.cur == nil {
				return
			}
		}
		// Register contents are arbitrary (mutated by other packets and
		// the controller): the destination is havocked.
		b.havocLValue(c.Args[0], c.P)
	case "write": // reg.write(idx, val)
		if len(c.Args) != 2 {
			b.errorf(c.P, "register.write takes 2 arguments")
			return
		}
		b.beginReads()
		idx := b.toBV(b.lowerExpr(c.Args[0], 32), 32)
		b.lowerExpr(c.Args[1], reg.ElemWidth) // evaluate for read checks
		b.flushReadChecks(c.P)
		if b.cur == nil {
			return
		}
		if b.opts.CheckRegisterBounds {
			b.checkBug(f.Uge(idx, f.BVConst64(int64(reg.Size), 32)), BugRegisterOOB, c.P,
				"register %s write index out of bounds (size %d)", reg.Name, reg.Size)
		}
	default:
		b.errorf(c.P, "unsupported register method %s", method)
	}
}

// lowerExtract implements packet.extract for a header or stack.next.
func (b *builder) lowerExtract(arg ast.Expr, pos token.Pos) {
	r := b.resolveRef(arg)
	f := b.f()
	switch {
	case r.header != nil:
		for _, fv := range r.header.Fields {
			b.havoc(fv)
		}
		b.assign(r.header.Valid, f.True())
	case r.stack != nil: // stack.next
		s := r.stack
		b.checkBug(f.Uge(s.Next.Term, f.BVConst64(int64(s.Size), 32)), BugStackOverflow, pos,
			"extract into full header stack %s (size %d)", s.Path, s.Size)
		if b.cur == nil {
			return
		}
		var tails []*Node
		for i := 0; i < s.Size; i++ {
			t, e := b.branch(f.Eq(s.Next.Term, f.BVConst64(int64(i), 32)))
			b.cur = t
			h := b.p.Headers[s.Elems[i]]
			for _, fv := range h.Fields {
				b.havoc(fv)
			}
			b.assign(h.Valid, f.True())
			tails = append(tails, b.cur)
			b.cur = e
		}
		// next >= size is impossible here (checked above).
		b.p.Edge(b.cur, b.unreach)
		b.cur = nil
		b.join(tails...)
		b.assign(s.Next, f.Add(s.Next.Term, f.BVConst64(1, 32)))
	default:
		b.errorf(pos, "cannot extract into %s", ast.PathString(arg))
	}
}

// lowerStackShift implements push_front/pop_front with the paper's
// overflow/underflow bug checks.
func (b *builder) lowerStackShift(s *Stack, method string, count int, pos token.Pos) {
	f := b.f()
	if method == "push_front" {
		b.checkBug(f.Ugt(f.Add(s.Next.Term, f.BVConst64(int64(count), 32)), f.BVConst64(int64(s.Size), 32)),
			BugStackOverflow, pos, "push_front overflows stack %s", s.Path)
		if b.cur == nil {
			return
		}
		for i := s.Size - 1; i >= count; i-- {
			dst, src := b.p.Headers[s.Elems[i]], b.p.Headers[s.Elems[i-count]]
			for j, fv := range dst.Fields {
				b.assign(fv, src.Fields[j].Term)
			}
			b.assign(dst.Valid, src.Valid.Term)
		}
		for i := 0; i < count && i < s.Size; i++ {
			b.assign(b.p.Headers[s.Elems[i]].Valid, f.False())
		}
		b.assign(s.Next, f.Add(s.Next.Term, f.BVConst64(int64(count), 32)))
		return
	}
	// pop_front
	b.checkBug(f.Ult(s.Next.Term, f.BVConst64(int64(count), 32)),
		BugStackUnderflow, pos, "pop_front underflows stack %s", s.Path)
	if b.cur == nil {
		return
	}
	for i := 0; i+count < s.Size; i++ {
		dst, src := b.p.Headers[s.Elems[i]], b.p.Headers[s.Elems[i+count]]
		for j, fv := range dst.Fields {
			b.assign(fv, src.Fields[j].Term)
		}
		b.assign(dst.Valid, src.Valid.Term)
	}
	for i := s.Size - count; i < s.Size; i++ {
		if i >= 0 {
			b.assign(b.p.Headers[s.Elems[i]].Valid, f.False())
		}
	}
	b.assign(s.Next, f.Sub(s.Next.Term, f.BVConst64(int64(count), 32)))
}

// ------------------------------------------------------------- if/switch

func (b *builder) lowerIf(st *ast.IfStmt) {
	b.beginReads()
	cond := b.toBool(b.lowerExpr(st.Cond, 0))
	b.flushReadChecks(st.P)
	if b.cur == nil {
		return
	}
	t, e := b.branch(cond)
	// b.cur is the branch node itself; mark it as a source-level `if` so
	// the constant-condition lint only fires on user-written branches.
	b.cur.Comment = "if"
	b.cur = t
	b.lowerStmt(st.Then)
	thenTail := b.cur
	b.cur = e
	if st.Else != nil {
		b.lowerStmt(st.Else)
	}
	elseTail := b.cur
	b.join(thenTail, elseTail)
}

func (b *builder) lowerSwitch(st *ast.SwitchStmt) {
	recv := b.resolveRef(st.Table)
	if recv.table == nil {
		b.errorf(st.P, "switch on non-table")
		return
	}
	inst := b.expandTable(recv.table, st.P)
	if b.cur == nil || inst == nil {
		return
	}
	f := b.f()

	// Group fall-through labels with the next body.
	type arm struct {
		labels    []string
		body      *ast.BlockStmt
		isDefault bool
	}
	var arms []arm
	var pending []string
	pendingDefault := false
	for _, c := range st.Cases {
		if c.Label == "" {
			pendingDefault = true
		} else {
			pending = append(pending, c.Label)
		}
		if c.Body != nil {
			arms = append(arms, arm{labels: pending, body: c.Body, isDefault: pendingDefault})
			pending, pendingDefault = nil, false
		}
	}

	var tails []*Node
	var defaultArm *arm
	for i := range arms {
		if arms[i].isDefault {
			defaultArm = &arms[i]
		}
	}
	for i := range arms {
		a := &arms[i]
		if a.isDefault && len(a.labels) == 0 {
			continue // pure default handled at the end
		}
		cond := f.False()
		for _, lb := range a.labels {
			idx, ok := inst.ActIndex[lb]
			if !ok {
				b.errorf(st.P, "switch case %s is not an action of %s", lb, inst.Table.Name)
				continue
			}
			cond = f.Or(cond, f.Eq(inst.ActVar.Term, f.BVConst64(int64(idx), 8)))
		}
		t, e := b.branch(cond)
		b.cur = t
		b.lowerStmt(a.body)
		tails = append(tails, b.cur)
		b.cur = e
	}
	if defaultArm != nil {
		b.lowerStmt(defaultArm.body)
	}
	tails = append(tails, b.cur)
	b.join(tails...)
}

// ------------------------------------------------------------- actions

var inlineSeq int

func (b *builder) inlineAction(ad *ast.ActionDecl, args []*smt.Term) {
	if b.inlining > 16 {
		b.errorf(ad.P, "action inlining too deep (recursive actions?)")
		return
	}
	saved := b.actionArgs
	bound := make(map[string]*smt.Term, len(ad.Params))
	for i, p := range ad.Params {
		if i >= len(args) {
			break
		}
		w := types.WidthOf(b.info.ResolveType(p.Type))
		t := args[i]
		if w > 0 && !t.Sort().IsBool() {
			t = b.f().Resize(t, w)
		}
		bound[p.Name] = t
	}
	b.actionArgs = bound
	b.inlining++
	for _, s := range ad.Body.Stmts {
		b.lowerStmt(s)
		if b.cur == nil {
			break
		}
	}
	b.inlining--
	b.actionArgs = saved
}

// ------------------------------------------------------------- tables

// tableMeta builds (once) the static metadata for a table, including any
// keys synthesized by the Fixes algorithm (Options.ExtraKeys).
func (b *builder) tableMeta(td *ast.TableDecl) *Table {
	if t, ok := b.p.Tables[td.Name]; ok {
		return t
	}
	t := &Table{Name: td.Name, Size: td.Size}
	if b.ctl != nil {
		t.Control = b.ctl.Name
	}
	for _, k := range td.Keys {
		kt := b.info.TypeOf(k.Expr)
		w := types.WidthOf(kt)
		if w == 0 {
			w = 32
		}
		t.Keys = append(t.Keys, &KeyInfo{
			Path:      ast.PathString(k.Expr),
			MatchKind: k.MatchKind,
			Width:     w,
		})
	}
	for _, extra := range b.opts.ExtraKeys[td.Name] {
		w := b.extraKeyWidth(extra)
		t.Keys = append(t.Keys, &KeyInfo{Path: extra, MatchKind: "exact", Width: w, Synthesized: true})
	}
	sc := b.info.ScopeOf(b.ctl)
	actionInfo := func(ref *ast.ActionRef) *ActionInfo {
		ai := &ActionInfo{Name: ref.Name}
		if sc != nil {
			if ad, ok := sc.Actions[ref.Name]; ok {
				for _, p := range ad.Params {
					ai.Params = append(ai.Params, ParamInfo{Name: p.Name, Width: types.WidthOf(b.info.ResolveType(p.Type))})
				}
			}
		}
		return ai
	}
	for _, a := range td.Actions {
		t.Actions = append(t.Actions, actionInfo(a))
	}
	if td.Default != nil {
		t.Default = actionInfo(td.Default)
	} else {
		t.Default = &ActionInfo{Name: "NoAction"}
	}
	b.p.Tables[td.Name] = t
	return t
}

// extraKeyWidth computes the width of a synthesized key path.
func (b *builder) extraKeyWidth(path string) int {
	e, err := parser.ParseExpr(path)
	if err != nil {
		return 1
	}
	if _, ok := e.(*ast.CallExpr); ok {
		return 1 // isValid()
	}
	r := b.resolveRef(e)
	if r.v != nil && !r.v.Sort.IsBool() {
		return r.v.Sort.Width
	}
	return 1
}

// lowerKeyExpr lowers a table key path (original AST expr or synthesized
// path string) returning the value term and the headers it reads.
func (b *builder) lowerKeyExpr(e ast.Expr, w int) (*smt.Term, []string) {
	b.beginReads()
	t := b.lowerExpr(e, w)
	var hdrs []string
	for h := range b.reads {
		hdrs = append(hdrs, h)
	}
	sortStrings(hdrs)
	b.reads, b.stackReads = nil, nil
	if t.Sort().IsBool() {
		t = b.toBV(t, 1)
	} else if w > 0 {
		t = b.f().Resize(t, w)
	}
	return t, hdrs
}

// expandTable performs the paper's Figure 4 expansion for one apply call.
func (b *builder) expandTable(td *ast.TableDecl, pos token.Pos) *TableInstance {
	f := b.f()
	t := b.tableMeta(td)
	if b.instanceCount == nil {
		b.instanceCount = map[string]int{}
	}
	seq := b.instanceCount[t.Name]
	b.instanceCount[t.Name]++

	inst := &TableInstance{
		Table:       t,
		Seq:         seq,
		ParamVars:   map[string][]*Var{},
		ActIndex:    map[string]int{},
		ActionRange: map[string][2]int{},
	}
	pfx := inst.Prefix()
	mkVar := func(name string, sort smt.Sort) *Var {
		v := b.p.NewVar(pfx+"."+name, sort)
		v.IsControl = true
		v.Instance = inst
		return v
	}
	inst.HitVar = mkVar("hit", smt.BoolSort)
	inst.ActVar = mkVar("action_run", smt.BV(8))
	for j, k := range t.Keys {
		inst.KeyVars = append(inst.KeyVars, mkVar(fmt.Sprintf("key%d", j), smt.BV(k.Width)))
		if k.MatchKind == "ternary" || k.MatchKind == "lpm" {
			inst.MaskVars = append(inst.MaskVars, mkVar(fmt.Sprintf("mask%d", j), smt.BV(k.Width)))
		} else {
			inst.MaskVars = append(inst.MaskVars, nil)
		}
	}
	sc := b.info.ScopeOf(b.ctl)
	for i, a := range t.Actions {
		inst.ActIndex[a.Name] = i
		var pv []*Var
		for _, p := range a.Params {
			pv = append(pv, mkVar(a.Name+"."+p.Name, smt.BV(p.Width)))
		}
		inst.ParamVars[a.Name] = pv
	}
	defIdx, defListed := inst.ActIndex[t.Default.Name]
	if !defListed {
		defIdx = len(t.Actions)
		inst.ActIndex[t.Default.Name] = defIdx
	}
	for _, p := range t.Default.Params {
		inst.DefaultParamVars = append(inst.DefaultParamVars, mkVar("default."+p.Name, smt.BV(p.Width)))
	}
	b.p.Instances = append(b.p.Instances, inst)

	// Assert point.
	ap := b.p.NewNode(AssertPoint)
	ap.Instance = inst
	ap.Pos = pos
	b.emit(ap)
	inst.Apply = ap

	// Lower key expressions at the apply point.
	keyTerms := make([]*smt.Term, len(t.Keys))
	keyReads := make([][]string, len(t.Keys))
	for j, k := range t.Keys {
		var e ast.Expr
		if j < len(td.Keys) {
			e = td.Keys[j].Expr
		} else {
			// Synthesized key: parse its canonical path.
			pe, err := parser.ParseExpr(k.Path)
			if err != nil {
				b.errorf(pos, "bad synthesized key %q: %v", k.Path, err)
				continue
			}
			e = pe
		}
		keyTerms[j], keyReads[j] = b.lowerKeyExpr(e, k.Width)
	}
	inst.KeyTerms = keyTerms

	// Information flow: key values are visible to the control plane
	// (counters, digests, match statistics), so a tainted key leaks.
	if b.opts.CheckInfoFlow {
		for j, k := range t.Keys {
			if keyTerms[j] == nil || b.cur == nil {
				continue
			}
			b.checkLeakTaint(b.taintOf(keyTerms[j]), "table-key",
				fmt.Sprintf("%s of table %s", k.Path, t.Name), pos)
		}
		if b.cur == nil {
			return inst
		}
	}

	hitT, missT := b.branch(inst.HitVar.Term)

	// --- hit path ---
	// All match relations are assumed first, then the key-read bug
	// checks. The order does not change the set of buggy executions but
	// lets Fast-Infer's symbolic execution rewrite packet variables in
	// terms of entry variables before the checks are reached.
	b.cur = hitT
	for j := range t.Keys {
		if keyTerms[j] == nil {
			continue
		}
		var match *smt.Term
		if inst.MaskVars[j] != nil {
			match = f.Eq(f.BVAnd(keyTerms[j], inst.MaskVars[j].Term),
				f.BVAnd(inst.KeyVars[j].Term, inst.MaskVars[j].Term))
		} else {
			match = f.Eq(keyTerms[j], inst.KeyVars[j].Term)
		}
		b.assume(match)
	}
	if b.opts.CheckHeaderValidity {
		for j, k := range t.Keys {
			if keyTerms[j] == nil {
				continue
			}
			// Key-read bugs: evaluating a key over an invalid header is
			// undefined. For ternary/lpm the read only happens under a
			// nonzero mask (the paper's nat example); for exact it
			// always happens on a hit.
			for _, hp := range keyReads[j] {
				h := b.p.Headers[hp]
				if h == nil || b.cur == nil {
					continue
				}
				badCond := f.Not(h.Valid.Term)
				if inst.MaskVars[j] != nil {
					badCond = f.And(badCond, f.Not(f.Eq(inst.MaskVars[j].Term, f.BVConst64(0, k.Width))))
				}
				b.checkBug(badCond, BugInvalidKeyRead, pos,
					"table %s key %s reads invalid header %s", t.Name, k.Path, hp)
			}
		}
	}
	var hitTails []*Node
	if b.cur != nil {
		// Dispatch on the chosen action.
		for i, a := range t.Actions {
			tb, eb := b.branch(f.Eq(inst.ActVar.Term, f.BVConst64(int64(i), 8)))
			b.cur = tb
			startID := b.p.nextID
			if ad := b.lookupAction(sc, a.Name); ad != nil {
				args := make([]*smt.Term, len(inst.ParamVars[a.Name]))
				for k2, pv := range inst.ParamVars[a.Name] {
					args[k2] = pv.Term
				}
				b.inlineAction(ad, args)
			}
			inst.ActionRange[a.Name] = [2]int{startID, b.p.nextID - 1}
			hitTails = append(hitTails, b.cur)
			b.cur = eb
		}
		// action_run must be one of the bound actions.
		b.p.Edge(b.cur, b.unreach)
		b.cur = nil
	}

	// --- miss path: run the default action ---
	b.cur = missT
	b.assign(inst.ActVar, f.BVConst64(int64(defIdx), 8))
	defStartID := b.p.nextID
	if ad := b.lookupAction(sc, t.Default.Name); ad != nil {
		var args []*smt.Term
		var declArgs []ast.Expr
		if td.Default != nil {
			declArgs = td.Default.Args
		}
		for i := range t.Default.Params {
			if i < len(declArgs) {
				args = append(args, b.lowerExpr(declArgs[i], t.Default.Params[i].Width))
			} else {
				args = append(args, inst.DefaultParamVars[i].Term)
			}
		}
		b.inlineAction(ad, args)
	}
	if _, dup := inst.ActionRange[t.Default.Name]; !dup {
		inst.ActionRange[t.Default.Name] = [2]int{defStartID, b.p.nextID - 1}
	}
	missTail := b.cur

	tails := append(hitTails, missTail)
	b.join(tails...)
	inst.Join = b.cur
	return inst
}

func (b *builder) lookupAction(sc *types.Scope, name string) *ast.ActionDecl {
	if name == "NoAction" {
		return types.NoAction
	}
	if sc != nil {
		if ad, ok := sc.Actions[name]; ok {
			return ad
		}
	}
	return nil
}
