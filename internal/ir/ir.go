// Package ir defines bf4's mid-level intermediate representation: an
// acyclic control-flow graph over simple instructions whose expressions
// are hash-consed SMT terms (internal/smt). The builder (build.go) lowers
// a type-checked P4 program into this form, performing the three
// transformations of the paper's Figure 3 front half in one pass:
//
//   - parser loop unrolling (bounded by header stack sizes),
//   - table-call expansion into abstract flow entries — per-instance
//     havoc'd control variables for hit, action_run, keys, masks and
//     action parameters, with the match relation asserted on the hit path
//     (paper Figure 4),
//   - bug instrumentation: invalid header reads/writes, key reads of
//     invalid headers (mask-gated for ternary/lpm), header-copy
//     overwrites with dontCare marking, register/stack bounds, and the
//     egress_spec-not-set shadow check.
//
// Because expansion happens at build time, the Fixes algorithm reruns the
// builder with Options.ExtraKeys to obtain the fixed program's IR.
package ir

import (
	"fmt"
	"sort"
	"strings"

	"bf4/internal/p4/token"
	"bf4/internal/smt"
)

// BugKind classifies the bug classes bf4 instruments for.
type BugKind int

// Bug classes.
const (
	BugNone BugKind = iota
	// BugInvalidHeaderRead is a read of a field of an invalid header.
	BugInvalidHeaderRead
	// BugInvalidHeaderWrite is a write to a field of an invalid header.
	BugInvalidHeaderWrite
	// BugInvalidKeyRead is a table key evaluation reading an invalid
	// header (for ternary/lpm keys, gated on a nonzero mask).
	BugInvalidKeyRead
	// BugHeaderOverwrite is a header copy destroying a live destination
	// header while the source is invalid (the paper's encap case).
	BugHeaderOverwrite
	// BugRegisterOOB is a register access with an out-of-bounds index.
	BugRegisterOOB
	// BugStackOverflow is pushing/extracting past a header stack's
	// capacity.
	BugStackOverflow
	// BugStackUnderflow is popping/reading from an empty header stack.
	BugStackUnderflow
	// BugEgressSpecNotSet fires when ingress ends without any assignment
	// to standard_metadata.egress_spec.
	BugEgressSpecNotSet
	// BugLiveHeaderNotEmitted fires when a packet leaves the pipeline with
	// a valid header the deparser never emits (the "decapsulation error"
	// class of Vera/p4v; an opt-in extension here, see
	// Options.CheckDeparsedHeaders).
	BugLiveHeaderNotEmitted
	// BugInfoLeak fires when a value derived from a sensitive source
	// (@sensitive annotation or the built-in default policy) reaches an
	// egress-visible sink: an emitted header field, egress-visible
	// standard metadata, a table key, or a clone/digest payload. Opt-in
	// via Options.CheckInfoFlow; see taint.go.
	BugInfoLeak
	// BugAssertFail fires when a user-written @assert property (the
	// property DSL, internal/prop) is violated. The property compiler
	// splices these through Options.Instrument using the same guarded
	// shape as built-in checks, so dataflow discharge, wp, Infer and
	// Fixes treat user properties like any other bug class.
	BugAssertFail
)

var bugNames = map[BugKind]string{
	BugNone:              "none",
	BugInvalidHeaderRead: "invalid-header-read", BugInvalidHeaderWrite: "invalid-header-write",
	BugInvalidKeyRead: "invalid-key-read", BugHeaderOverwrite: "header-overwrite",
	BugRegisterOOB: "register-oob", BugStackOverflow: "stack-overflow",
	BugStackUnderflow: "stack-underflow", BugEgressSpecNotSet: "egress-spec-not-set",
	BugLiveHeaderNotEmitted: "live-header-not-emitted", BugInfoLeak: "info-leak",
	BugAssertFail: "assert-fail",
}

func (k BugKind) String() string { return bugNames[k] }

// NodeKind discriminates CFG node types.
type NodeKind int

// Node kinds.
const (
	// Nop does nothing; used as a join/label point.
	Nop NodeKind = iota
	// Assign sets Var to Expr.
	Assign
	// Havoc gives Var a fresh unconstrained value.
	Havoc
	// Branch transfers control to Succs[0] if Expr holds, else Succs[1].
	Branch
	// AssertPoint marks entry to a table apply instance (the paper's
	// assert points where controller predicates attach).
	AssertPoint
	// DontCare marks a branch the programmer is presumed indifferent to
	// (paper §4.2, "increasing bug coverage").
	DontCare
	// BugTerm is a bad terminal node.
	BugTerm
	// AcceptTerm is a good terminal (packet forwarded or dropped cleanly).
	AcceptTerm
	// RejectTerm is a good terminal (parser reject; packet dropped).
	RejectTerm
	// UnreachTerm marks infeasible paths (failed assumes). Neither good
	// nor bad.
	UnreachTerm
)

var kindNames = map[NodeKind]string{
	Nop: "nop", Assign: "assign", Havoc: "havoc", Branch: "branch",
	AssertPoint: "assert-point", DontCare: "dontcare", BugTerm: "bug",
	AcceptTerm: "accept", RejectTerm: "reject", UnreachTerm: "unreachable",
}

func (k NodeKind) String() string { return kindNames[k] }

// Var is a flat scalar program variable (a flattened header field,
// metadata field, validity bit, local, or table-entry control variable).
type Var struct {
	Name string
	Sort smt.Sort
	Term *smt.Term // version-0 term for this variable

	// IsControl marks table-entry control variables (keys, masks, action
	// selector, action parameters) — the Γ set of the paper's appendix.
	IsControl bool
	// Instance is the table instance a control variable belongs to.
	Instance *TableInstance
}

func (v *Var) String() string { return v.Name }

// Node is one CFG node.
type Node struct {
	ID    int
	Kind  NodeKind
	Var   *Var      // Assign/Havoc destination
	Expr  *smt.Term // Assign RHS or Branch condition
	Succs []*Node
	Preds []*Node

	Bug     BugKind
	Comment string
	Pos     token.Pos

	// Instance links AssertPoint nodes (and bug nodes discovered to be
	// dominated by one) to their table instance.
	Instance *TableInstance

	// Leak carries sink metadata for BugInfoLeak terminals (nil for
	// every other node).
	Leak *LeakInfo

	// Prop carries origin metadata for BugAssertFail terminals and
	// assume branches spliced by the property compiler (nil for every
	// other node).
	Prop *PropInfo
}

// PropInfo links an instrumented node back to the user property it
// implements, so diagnostics can carry the property's own origin
// (source comment or .props spec file) rather than an IR position.
type PropInfo struct {
	// Kind is "assert" or "assume".
	Kind string
	// Origin is the property's declaration site, "file:line:col".
	Origin string
	// Text is the original predicate text as written by the user.
	Text string
	// FromSource marks properties extracted from P4 source comments
	// (their Origin line/col is valid within the analyzed file, so lint
	// diagnostics may anchor to it).
	FromSource bool
	// Line/Col are the declaration position within Origin's file.
	Line, Col int
}

// LeakInfo describes one instrumented information-flow sink check.
type LeakInfo struct {
	// Sink classifies the sink: "emit-field", "emit-copy", "egress-meta",
	// "table-key" or "extern-payload".
	Sink string
	// Dest names the destination (field path, table key, extern call).
	Dest string
	// Taint is the shadow taint term of the value written to the sink;
	// the guard branch asserts it nonzero. The dataflow pass evaluates
	// this same term under its abstract label environment, so the static
	// alarm set and the solver's shadow encoding agree by construction.
	Taint *smt.Term
}

// SensitiveSource records why a variable is a taint source.
type SensitiveSource struct {
	// Origin is "annot" for @sensitive annotations, "policy" for the
	// built-in default policy (well-known fields like ipv4.srcAddr).
	Origin string
	Pos    token.Pos
}

func (n *Node) String() string {
	switch n.Kind {
	case Assign:
		return fmt.Sprintf("n%d: %s = %s", n.ID, n.Var, n.Expr)
	case Havoc:
		return fmt.Sprintf("n%d: havoc %s", n.ID, n.Var)
	case Branch:
		return fmt.Sprintf("n%d: branch %s", n.ID, n.Expr)
	case BugTerm:
		return fmt.Sprintf("n%d: bug[%s] %s", n.ID, n.Bug, n.Comment)
	case AssertPoint:
		return fmt.Sprintf("n%d: assert-point %s", n.ID, n.Instance.Name())
	default:
		s := fmt.Sprintf("n%d: %s", n.ID, n.Kind)
		if n.Comment != "" {
			s += " // " + n.Comment
		}
		return s
	}
}

// Header describes one flattened header instance.
type Header struct {
	Path   string // e.g. "hdr.ipv4" or "hdr.vlan[0]"
	Valid  *Var   // boolean validity bit
	Fields []*Var // in declaration order
	Decl   string // header type name
}

// Stack describes a header stack instance.
type Stack struct {
	Path  string
	Size  int
	Next  *Var     // bit<32> next-index counter
	Elems []string // header paths of the elements
}

// Register describes a register extern instance.
type Register struct {
	Name      string
	Size      int
	ElemWidth int
}

// KeyInfo describes one key of a table (static metadata used by
// expansion, the shim and the fixes pass).
type KeyInfo struct {
	Path      string // source-level path, e.g. "hdr.ipv4.srcAddr" or "...isValid()"
	MatchKind string // exact | ternary | lpm
	Width     int
	// Synthesized marks keys added by the Fixes algorithm.
	Synthesized bool
}

// ActionInfo describes one action bound to a table.
type ActionInfo struct {
	Name   string
	Params []ParamInfo
}

// ParamInfo is an action parameter (name and width).
type ParamInfo struct {
	Name  string
	Width int
}

// Table is static table metadata shared by all instances.
type Table struct {
	Name    string
	Control string
	Keys    []*KeyInfo
	Actions []*ActionInfo
	Default *ActionInfo // resolved default action (NoAction if unset)
	Size    int
}

// TableInstance is one expansion of a table apply call. Its control
// variables are the atoms Infer reasons about.
type TableInstance struct {
	Table *Table
	Seq   int // occurrence index of this apply
	Apply *Node
	// Join is the node where control re-converges after the expansion;
	// the Fast-Infer symbolic execution explores Apply..Join.
	Join *Node
	// KeyTerms are the key expressions lowered at the apply point
	// (version-0 terms); the concrete interpreter evaluates them to match
	// entries.
	KeyTerms []*smt.Term
	HitVar   *Var
	ActVar   *Var   // action_run selector (width 8)
	KeyVars  []*Var // one per key
	MaskVars []*Var // nil for exact keys
	// ParamVars[action name][param index]
	ParamVars map[string][]*Var
	// DefaultParamVars mirror ParamVars for the default action's params.
	DefaultParamVars []*Var
	// ActIndex maps action name to its action_run value. The default
	// action keeps its own index; on miss ActVar is assigned it.
	ActIndex map[string]int
	// ActionRange maps action name to the [first,last] node IDs of its
	// inlined body within this expansion (hit dispatch; the default
	// action's range covers the miss path). Used to attribute bug nodes
	// to actions.
	ActionRange map[string][2]int
}

// ActionOfNode returns the action whose inlined body contains the node,
// or "".
func (ti *TableInstance) ActionOfNode(n *Node) string {
	for name, r := range ti.ActionRange {
		if n.ID >= r[0] && n.ID <= r[1] {
			return name
		}
	}
	return ""
}

// Name returns the instance's unique name, e.g. "ipv4_lpm$0".
func (ti *TableInstance) Name() string {
	return fmt.Sprintf("%s$%d", ti.Table.Name, ti.Seq)
}

// Prefix returns the control-variable name prefix for this instance.
func (ti *TableInstance) Prefix() string { return "pcn_" + ti.Name() }

// Program is the lowered IR.
type Program struct {
	Name  string
	F     *smt.Factory
	Start *Node
	Nodes []*Node

	Vars      map[string]*Var
	varOrder  []*Var
	Headers   map[string]*Header
	Stacks    map[string]*Stack
	Registers map[string]*Register
	Tables    map[string]*Table
	Instances []*TableInstance
	Bugs      []*Node

	// EgressSpecSet is the shadow variable tracking assignment of
	// standard_metadata.egress_spec (nil when the check is disabled).
	EgressSpecSet *Var

	// Sensitive maps variable names marked as taint sources to their
	// provenance (only populated under Options.CheckInfoFlow).
	Sensitive map[string]*SensitiveSource

	// IngressEntry/IngressEnd are the nop anchors bracketing the ingress
	// control; the property compiler (internal/prop) splices @assume
	// checks after IngressEntry and end-of-control @assert checks after
	// IngressEnd. Set by the builder; nil in hand-built programs.
	IngressEntry *Node
	IngressEnd   *Node

	nextID int
}

// NewProgram returns an empty program with a fresh term factory.
func NewProgram(name string) *Program {
	return &Program{
		Name:      name,
		F:         smt.NewFactory(),
		Vars:      make(map[string]*Var),
		Headers:   make(map[string]*Header),
		Stacks:    make(map[string]*Stack),
		Registers: make(map[string]*Register),
		Tables:    make(map[string]*Table),
		Sensitive: make(map[string]*SensitiveSource),
	}
}

// VarList returns all variables in creation order.
func (p *Program) VarList() []*Var { return p.varOrder }

// NewVar interns a variable; creating the same name twice with a
// different sort panics (a builder bug).
func (p *Program) NewVar(name string, sort smt.Sort) *Var {
	if v, ok := p.Vars[name]; ok {
		if v.Sort != sort {
			panic(fmt.Sprintf("ir: variable %s redeclared with sort %v (was %v)", name, sort, v.Sort))
		}
		return v
	}
	v := &Var{Name: name, Sort: sort, Term: p.F.Var(name, sort)}
	p.Vars[name] = v
	p.varOrder = append(p.varOrder, v)
	return v
}

// NewNode creates a node of the given kind.
func (p *Program) NewNode(kind NodeKind) *Node {
	n := &Node{ID: p.nextID, Kind: kind}
	p.nextID++
	p.Nodes = append(p.Nodes, n)
	return n
}

// Edge links from → to, maintaining predecessor lists.
func (p *Program) Edge(from, to *Node) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// NumInstructions counts non-terminal nodes, the metric the paper's
// slicing ablation reports.
func (p *Program) NumInstructions() int {
	n := 0
	for _, nd := range p.Nodes {
		switch nd.Kind {
		case Assign, Havoc, Branch, AssertPoint:
			n++
		}
	}
	return n
}

// Topo returns the nodes reachable from Start in a topological order.
// The IR is acyclic by construction (parser loops are unrolled); Topo
// panics if a cycle is found, as that indicates a builder bug.
func (p *Program) Topo() []*Node {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*Node]int8, len(p.Nodes))
	var order []*Node
	type frame struct {
		n *Node
		i int
	}
	stack := []frame{{p.Start, 0}}
	color[p.Start] = gray
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.i < len(fr.n.Succs) {
			s := fr.n.Succs[fr.i]
			fr.i++
			switch color[s] {
			case white:
				color[s] = gray
				stack = append(stack, frame{s, 0})
			case gray:
				panic(fmt.Sprintf("ir: cycle through %s", s))
			}
			continue
		}
		color[fr.n] = black
		order = append(order, fr.n)
		stack = stack[:len(stack)-1]
	}
	// Reverse postorder.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Reachable returns the set of nodes reachable from Start.
func (p *Program) Reachable() map[*Node]bool {
	seen := map[*Node]bool{}
	stack := []*Node{p.Start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, n.Succs...)
	}
	return seen
}

// Dump renders the reachable CFG as text, for debugging and golden tests.
func (p *Program) Dump() string {
	var b strings.Builder
	for _, n := range p.Topo() {
		b.WriteString(n.String())
		if len(n.Succs) > 0 {
			ids := make([]string, len(n.Succs))
			for i, s := range n.Succs {
				ids[i] = fmt.Sprintf("n%d", s.ID)
			}
			fmt.Fprintf(&b, " -> %s", strings.Join(ids, ", "))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ControlVars returns all control variables (the Γ set), sorted by name.
func (p *Program) ControlVars() []*Var {
	var out []*Var
	for _, v := range p.varOrder {
		if v.IsControl {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
