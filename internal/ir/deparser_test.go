package ir

import "testing"

// TestDeparserEmissionCheck exercises the opt-in decapsulation-error
// class: a header that can be valid on output but is never emitted.
func TestDeparserEmissionCheck(t *testing.T) {
	src := `
header a_t { bit<8> x; }
header b_t { bit<8> y; }
struct headers { a_t a; b_t b; }
struct metadata { bit<1> m; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.a);
        transition select(hdr.a.x) {
            8w1: parse_b;
            default: accept;
        }
    }
    state parse_b { pkt.extract(hdr.b); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    apply { smeta.egress_spec = 9w1; }
}
control Eg(inout headers hdr, inout metadata meta,
           inout standard_metadata_t smeta) { apply { } }
control Dep(packet_out pkt, in headers hdr) {
    apply { pkt.emit(hdr.a); }   // hdr.b is never emitted
}
V1Switch(P(), Ing(), Eg(), Dep()) main;
`
	opts := DefaultOptions()
	opts.CheckDeparsedHeaders = true
	p := buildSrc(t, src, opts)
	found := false
	for _, n := range p.Nodes {
		if n.Kind == BugTerm && n.Bug == BugLiveHeaderNotEmitted {
			found = true
		}
	}
	if !found {
		t.Fatal("missing live-header-not-emitted bug for hdr.b")
	}

	// Off by default: no such nodes.
	p2 := buildSrc(t, src, DefaultOptions())
	for _, n := range p2.Nodes {
		if n.Kind == BugTerm && n.Bug == BugLiveHeaderNotEmitted {
			t.Fatal("deparser check instrumented despite being disabled")
		}
	}
}
