package ir

import (
	"math/big"
	"strings"

	"bf4/internal/p4/ast"
	"bf4/internal/p4/token"
	"bf4/internal/p4/types"
	"bf4/internal/smt"
)

// ref is the result of resolving a path expression.
type ref struct {
	term     *smt.Term // scalar value (reads)
	v        *Var      // scalar lvalue (assignable)
	header   *Header
	stack    *Stack
	prefix   string // struct prefix
	table    *ast.TableDecl
	register *Register
	packet   bool

	// fromHeader is set when the scalar belongs to a header instance
	// (validity checks attach to it).
	fromHeader string
	// stackLast marks dynamic stack access needing an underflow check.
	stackLast bool
}

// isPrefix reports whether path is a declared struct prefix.
func (b *builder) isPrefix(path string) bool {
	for name := range b.p.Vars {
		if strings.HasPrefix(name, path+".") || strings.HasPrefix(name, path+"[") {
			return true
		}
	}
	for name := range b.p.Headers {
		if strings.HasPrefix(name, path+".") || strings.HasPrefix(name, path+"[") || name == path {
			return true
		}
	}
	return false
}

func (b *builder) resolvePath(path string) ref {
	if h, ok := b.p.Headers[path]; ok {
		return ref{header: h}
	}
	if s, ok := b.p.Stacks[path]; ok {
		return ref{stack: s}
	}
	if v, ok := b.p.Vars[path]; ok {
		r := ref{term: v.Term, v: v}
		if i := strings.LastIndex(path, "."); i > 0 {
			if h, ok := b.p.Headers[path[:i]]; ok {
				r.fromHeader = h.Path
			}
		}
		return r
	}
	if b.isPrefix(path) {
		return ref{prefix: path}
	}
	return ref{}
}

func (b *builder) resolveRef(e ast.Expr) ref {
	switch x := e.(type) {
	case *ast.Ident:
		if b.actionArgs != nil {
			if t, ok := b.actionArgs[x.Name]; ok {
				return ref{term: t}
			}
		}
		if b.roles != nil {
			if role, ok := b.roles[x.Name]; ok {
				if role == "$packet" {
					return ref{packet: true}
				}
				return b.resolvePath(role)
			}
		}
		if b.ctl != nil {
			if sc := b.info.ScopeOf(b.ctl); sc != nil {
				if td, ok := sc.Tables[x.Name]; ok {
					return ref{table: td}
				}
			}
			if r := b.resolvePath(b.ctl.Name + "." + x.Name); r.term != nil {
				return r
			}
		}
		if reg, ok := b.p.Registers[x.Name]; ok {
			return ref{register: reg}
		}
		if c, ok := b.info.Consts[x.Name]; ok {
			w := c.Width
			if w == 0 {
				w = 32
			}
			return ref{term: b.f().BVConst(c.Val, w)}
		}
		return b.resolvePath(x.Name)
	case *ast.Member:
		rx := b.resolveRef(x.X)
		switch {
		case rx.prefix != "":
			return b.resolvePath(rx.prefix + "." + x.Name)
		case rx.header != nil:
			return b.resolvePath(rx.header.Path + "." + x.Name)
		case rx.stack != nil:
			switch x.Name {
			case "last":
				return ref{stack: rx.stack, stackLast: true}
			case "next":
				return ref{stack: rx.stack, stackLast: false, prefix: "$next"}
			case "lastIndex":
				t := b.f().Sub(rx.stack.Next.Term, b.f().BVConst64(1, 32))
				return ref{term: t, stackLast: true}
			case "nextIndex":
				return ref{term: rx.stack.Next.Term}
			}
		}
		return ref{}
	case *ast.IndexExpr:
		rx := b.resolveRef(x.X)
		if rx.stack == nil {
			return ref{}
		}
		if lit, ok := x.Index.(*ast.IntLit); ok {
			i := int(lit.Val.Int64())
			if i < 0 || i >= rx.stack.Size {
				b.errorf(x.P, "stack index %d out of bounds for %s[%d]", i, rx.stack.Path, rx.stack.Size)
				return ref{}
			}
			return b.resolvePath(rx.stack.Elems[i])
		}
		// Dynamic index: only supported in read position (ITE chain),
		// handled by lowerExpr.
		return ref{stack: rx.stack, stackLast: true}
	default:
		return ref{}
	}
}

// ------------------------------------------------------------- exprs

// lowerExpr lowers an expression to a term. want is the target width for
// unsized literals (0 if unknown).
func (b *builder) lowerExpr(e ast.Expr, want int) *smt.Term {
	f := b.f()
	switch x := e.(type) {
	case *ast.IntLit:
		w := x.Width
		if w == 0 {
			w = want
		}
		if w == 0 {
			w = 32
		}
		return f.BVConst(x.Val, w)
	case *ast.BoolLit:
		return f.Bool(x.Val)
	case *ast.Ident, *ast.Member, *ast.IndexExpr:
		return b.lowerPathRead(e)
	case *ast.CallExpr:
		return b.lowerCallExpr(x)
	case *ast.UnaryExpr:
		switch x.Op {
		case token.NOT:
			return f.Not(b.toBool(b.lowerExpr(x.X, 0)))
		case token.MINUS:
			return f.Neg(b.lowerBV(x.X, want))
		case token.TILDE:
			return f.BVNot(b.lowerBV(x.X, want))
		}
	case *ast.BinaryExpr:
		return b.lowerBinary(x, want)
	case *ast.CastExpr:
		t := b.info.ResolveType(x.Type)
		switch tt := t.(type) {
		case *types.BitsType:
			return b.toBV(b.lowerExpr(x.X, tt.Width), tt.Width)
		case *types.BoolT:
			return b.toBool(b.lowerExpr(x.X, 1))
		}
		b.errorf(x.P, "unsupported cast to %s", t)
		return f.BVConst64(0, 1)
	case *ast.TernaryExpr:
		cond := b.toBool(b.lowerExpr(x.Cond, 0))
		a := b.lowerExpr(x.Then, want)
		bb := b.lowerExpr(x.Else, want)
		if !a.Sort().IsBool() && !bb.Sort().IsBool() && a.Sort() != bb.Sort() {
			w := a.Sort().Width
			if bb.Sort().Width > w {
				w = bb.Sort().Width
			}
			a, bb = f.Resize(a, w), f.Resize(bb, w)
		}
		if a.Sort().IsBool() != bb.Sort().IsBool() {
			a, bb = b.toBool(a), b.toBool(bb)
		}
		return f.Ite(cond, a, bb)
	case *ast.DefaultExpr:
		return f.True()
	}
	b.errorf(e.Pos(), "unsupported expression %T", e)
	return f.BVConst64(0, 1)
}

// lowerBV lowers and coerces to a bitvector.
func (b *builder) lowerBV(e ast.Expr, want int) *smt.Term {
	t := b.lowerExpr(e, want)
	if t.Sort().IsBool() {
		w := want
		if w == 0 {
			w = 1
		}
		return b.toBV(t, w)
	}
	return t
}

// lowerPathRead lowers a variable/field read, recording header reads for
// validity instrumentation.
func (b *builder) lowerPathRead(e ast.Expr) *smt.Term {
	r := b.resolveRef(e)
	switch {
	case r.term != nil:
		if r.fromHeader != "" {
			b.markRead(r.fromHeader)
		}
		return r.term
	case r.stack != nil && r.stackLast:
		// stack.last.field or stack[dyn].field reads are handled one
		// level up (Member over this ref); a bare stack read is an error.
		b.errorf(e.Pos(), "header stack %s used as a value", r.stack.Path)
		return b.f().BVConst64(0, 1)
	case r.header != nil:
		b.errorf(e.Pos(), "header %s used as a value", r.header.Path)
		return b.f().BVConst64(0, 1)
	}
	// stack.last.field: Member whose base resolves to stackLast.
	if m, ok := e.(*ast.Member); ok {
		rx := b.resolveRef(m.X)
		if rx.stack != nil && rx.stackLast {
			return b.lowerStackLastField(rx.stack, m.Name, e.Pos())
		}
	}
	b.errorf(e.Pos(), "cannot lower expression %s", ast.PathString(e))
	return b.f().BVConst64(0, 1)
}

// lowerStackLastField builds the ITE chain for stack.last.field.
func (b *builder) lowerStackLastField(s *Stack, field string, pos token.Pos) *smt.Term {
	f := b.f()
	if b.stackReads != nil {
		b.stackReads[s.Path] = true
	}
	var out *smt.Term
	for i := s.Size - 1; i >= 0; i-- {
		fv := b.p.Vars[s.Elems[i]+"."+field]
		if fv == nil {
			b.errorf(pos, "stack %s element has no field %s", s.Path, field)
			return f.BVConst64(0, 1)
		}
		if out == nil {
			out = fv.Term
			continue
		}
		cond := f.Eq(s.Next.Term, f.BVConst64(int64(i+1), 32))
		out = f.Ite(cond, fv.Term, out)
	}
	return out
}

func (b *builder) lowerCallExpr(c *ast.CallExpr) *smt.Term {
	if m, ok := c.Fun.(*ast.Member); ok {
		r := b.resolveRef(m.X)
		if r.header != nil && m.Name == "isValid" {
			return r.header.Valid.Term
		}
		if r.stack != nil && r.stackLast && m.Name == "isValid" {
			// stack.last.isValid(): valid iff next > 0 and that element
			// is valid; approximate by next > 0 (extracted elements are
			// valid by construction).
			return b.f().Not(b.f().Eq(r.stack.Next.Term, b.f().BVConst64(0, 32)))
		}
	}
	b.errorf(c.P, "call %s is not a value expression", ast.PathString(c.Fun))
	return b.f().False()
}

func (b *builder) lowerBinary(x *ast.BinaryExpr, want int) *smt.Term {
	f := b.f()
	op := x.Op
	switch op {
	case token.AND:
		return f.And(b.toBool(b.lowerExpr(x.X, 0)), b.toBool(b.lowerExpr(x.Y, 0)))
	case token.OR:
		return f.Or(b.toBool(b.lowerExpr(x.X, 0)), b.toBool(b.lowerExpr(x.Y, 0)))
	}
	// Lower the structurally-typed side first to learn the width.
	lhs := b.lowerExpr(x.X, 0)
	w := 0
	if !lhs.Sort().IsBool() {
		w = lhs.Sort().Width
	}
	rhs := b.lowerExpr(x.Y, w)
	// Harmonize sorts.
	if lhs.Sort().IsBool() != rhs.Sort().IsBool() {
		lhs, rhs = b.toBool(lhs), b.toBool(rhs)
	}
	if !lhs.Sort().IsBool() && lhs.Sort() != rhs.Sort() {
		if op == token.SHL || op == token.SHR || op == token.PLUSPLUS {
			// handled below
		} else {
			mw := lhs.Sort().Width
			if rhs.Sort().Width > mw {
				mw = rhs.Sort().Width
			}
			lhs, rhs = f.Resize(lhs, mw), f.Resize(rhs, mw)
		}
	}
	switch op {
	case token.EQ:
		return f.Eq(lhs, rhs)
	case token.NEQ:
		return f.Not(f.Eq(lhs, rhs))
	case token.LANGLE:
		return f.Ult(lhs, rhs)
	case token.RANGLE:
		return f.Ugt(lhs, rhs)
	case token.LEQ:
		return f.Ule(lhs, rhs)
	case token.GEQ:
		return f.Uge(lhs, rhs)
	case token.PLUS:
		return f.Add(lhs, rhs)
	case token.MINUS:
		return f.Sub(lhs, rhs)
	case token.STAR:
		return f.Mul(lhs, rhs)
	case token.AMP:
		return f.BVAnd(lhs, rhs)
	case token.PIPE:
		return f.BVOr(lhs, rhs)
	case token.CARET:
		return f.BVXor(lhs, rhs)
	case token.PLUSPLUS:
		return f.Concat(lhs, rhs)
	case token.SHL, token.SHR:
		wa := lhs.Sort().Width
		mw := wa
		if rhs.Sort().Width > mw {
			mw = rhs.Sort().Width
		}
		a, s := f.ZExt(lhs, mw), f.ZExt(rhs, mw)
		var res *smt.Term
		if op == token.SHL {
			res = f.Shl(a, s)
		} else {
			res = f.Lshr(a, s)
		}
		return f.Resize(res, wa)
	case token.SLASH, token.PERCENT:
		if lhs.IsConst() && rhs.IsConst() && rhs.Const().Sign() != 0 {
			q, r := new(big.Int).QuoRem(lhs.Const(), rhs.Const(), new(big.Int))
			if op == token.SLASH {
				return f.BVConst(q, lhs.Sort().Width)
			}
			return f.BVConst(r, lhs.Sort().Width)
		}
		b.errorf(x.P, "division is only supported on constants")
		return f.BVConst64(0, 1)
	}
	b.errorf(x.P, "unsupported binary operator %v", op)
	return f.BVConst64(0, 1)
}
