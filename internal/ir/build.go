package ir

import (
	"errors"
	"fmt"
	"strings"

	"bf4/internal/absdom"
	"bf4/internal/p4/ast"
	"bf4/internal/p4/token"
	"bf4/internal/p4/types"
	"bf4/internal/smt"
)

// DropSpec is the egress_spec value that drops a packet (v1model/Tofino
// convention: port 511).
const DropSpec = 511

// Options control IR construction and instrumentation. The Fixes
// algorithm reruns Build with ExtraKeys populated; the evaluation
// harness toggles the check flags for ablations.
type Options struct {
	// ExtraKeys maps table name to additional key paths (P4 expressions,
	// e.g. "hdr.ipv4.isValid()") appended as exact-match keys.
	ExtraKeys map[string][]string

	// CheckHeaderValidity instruments reads/writes of invalid headers.
	CheckHeaderValidity bool
	// CheckEgressSpec instruments the egress_spec-not-set bug.
	CheckEgressSpec bool
	// CheckRegisterBounds instruments register index bounds.
	CheckRegisterBounds bool
	// DontCare marks no-op header-copy branches with dontCare nodes
	// (paper §4.2, increases Infer coverage).
	DontCare bool
	// IncludeEgress stitches the egress control after ingress.
	IncludeEgress bool
	// InitEgressSpecDrop applies the paper's special fix for
	// egress-spec-not-set bugs (§4.6/§5.1): initialize egress_spec to the
	// drop port at the beginning of ingress, making the programmer's
	// implicit-drop intention explicit.
	InitEgressSpecDrop bool
	// CheckDeparsedHeaders instruments the decapsulation-error class: a
	// forwarded packet must not carry a valid header the deparser never
	// emits. Off by default (bf4 proper checks three classes; this is the
	// extension the related work checks).
	CheckDeparsedHeaders bool
	// CheckInfoFlow instruments information-flow tracking: shadow taint
	// variables, @sensitive sources and info-leak sink checks (see
	// taint.go). Off by default; the IR is unchanged when disabled.
	CheckInfoFlow bool
	// TaintDefaultPolicy additionally marks well-known privacy-relevant
	// fields (ipv4/ipv6 source addresses) as sensitive sources, beyond
	// explicit @sensitive annotations. Only meaningful with
	// CheckInfoFlow.
	TaintDefaultPolicy bool
	// UnrollSlack adds extra parser unroll budget beyond the computed
	// bound.
	UnrollSlack int

	// Instrument, when non-nil, runs after lowering completes and may
	// splice additional instrumentation into the CFG before
	// passification — the hook the property DSL (internal/prop) uses to
	// compile user @assert/@assume predicates into BugAssertFail nodes.
	// It sees the finished program (anchors, instances, variables); an
	// error aborts the build. Because the hook travels inside Options,
	// the Fixes rebuild loop re-instruments the fixed program
	// automatically, so user properties survive re-verification.
	Instrument func(*Program) error
}

// DefaultOptions enables every instrumentation, matching the paper's
// configuration.
func DefaultOptions() Options {
	return Options{
		CheckHeaderValidity: true,
		CheckEgressSpec:     true,
		CheckRegisterBounds: true,
		DontCare:            true,
		IncludeEgress:       true,
	}
}

// Build lowers a type-checked program to IR. See the package comment for
// what the lowering includes.
func Build(prog *ast.Program, info *types.Info, opts Options) (*Program, error) {
	name := "program"
	b := &builder{
		p:            NewProgram(name),
		info:         info,
		opts:         opts,
		memo:         make(map[string]*Node),
		shadowInited: make(map[*Var]bool),
	}
	if err := b.run(prog); err != nil {
		return nil, err
	}
	if len(b.errs) > 0 {
		msgs := make([]string, len(b.errs))
		for i, e := range b.errs {
			msgs[i] = e.Error()
		}
		return nil, errors.New(strings.Join(msgs, "\n"))
	}
	if opts.Instrument != nil {
		if err := opts.Instrument(b.p); err != nil {
			return nil, err
		}
	}
	return b.p, nil
}

type builder struct {
	p    *Program
	info *types.Info
	opts Options
	errs []error

	headersStruct *ast.StructDecl
	metaStruct    *ast.StructDecl

	cur *Node // current chain tail

	// Per-control lowering context.
	ctl        *ast.ControlDecl
	roles      map[string]string    // param name -> canonical prefix
	actionArgs map[string]*smt.Term // bound action parameters during inlining
	exitTarget *Node
	inlining   int

	// stmtPos is the source position of the statement currently being
	// lowered; assign/havoc/branch nodes are stamped with it so the
	// static-analysis layer can report diagnostics at stable positions.
	// Synthetic regions (init, egress-spec epilogue) run with a zero pos.
	stmtPos token.Pos

	reads      map[string]bool // header paths read by the current lowering
	stackReads map[string]bool // stacks needing an underflow check

	memo          map[string]*Node // parser state memo: "state@budget"
	instanceCount map[string]int

	// Information-flow state (Options.CheckInfoFlow; see taint.go).
	shadowInited    map[*Var]bool           // shadows already initialized
	taintMemo       map[*smt.Term]*smt.Term // per-term taint transfer memo
	absTaint        *absdom.Analyzer        // known-bits refinement, lazily built
	emitSinkHeaders map[string]bool         // header paths the deparser emits
	emitSinkFields  map[string]string       // field var name -> emitted header path

	accept  *Node
	reject  *Node
	unreach *Node
}

func (b *builder) errorf(pos token.Pos, format string, args ...interface{}) {
	if len(b.errs) < 30 {
		p := ""
		if pos.IsValid() {
			p = pos.String() + ": "
		}
		b.errs = append(b.errs, fmt.Errorf("%s%s", p, fmt.Sprintf(format, args...)))
	}
}

func (b *builder) f() *smt.Factory { return b.p.F }

// emit appends a node to the current chain.
func (b *builder) emit(n *Node) *Node {
	b.p.Edge(b.cur, n)
	b.cur = n
	return n
}

func (b *builder) nop(comment string) *Node {
	n := b.p.NewNode(Nop)
	n.Comment = comment
	return n
}

func (b *builder) assign(v *Var, rhs *smt.Term) {
	n := b.p.NewNode(Assign)
	n.Var = v
	n.Pos = b.stmtPos
	if v.Sort.IsBool() {
		rhs = b.toBool(rhs)
	} else {
		rhs = b.toBV(rhs, v.Sort.Width)
	}
	n.Expr = rhs
	b.emit(n)
	if b.opts.CheckInfoFlow {
		b.shadowAssign(v, rhs)
	}
}

func (b *builder) havoc(v *Var) {
	n := b.p.NewNode(Havoc)
	n.Var = v
	n.Pos = b.stmtPos
	b.emit(n)
	if b.opts.CheckInfoFlow {
		b.shadowHavoc(v)
	}
}

// branch emits a two-way branch and returns the two open chain tails.
// The caller resumes building each side by setting b.cur.
func (b *builder) branch(cond *smt.Term) (thenTail, elseTail *Node) {
	bn := b.p.NewNode(Branch)
	bn.Expr = b.toBool(cond)
	bn.Pos = b.stmtPos
	b.emit(bn)
	t := b.nop("then")
	e := b.nop("else")
	b.p.Edge(bn, t) // Succs[0] = true
	b.p.Edge(bn, e) // Succs[1] = false
	return t, e
}

// join merges open tails into a fresh nop and makes it current. Nil tails
// (terminated arms) are skipped.
func (b *builder) join(tails ...*Node) {
	j := b.nop("join")
	for _, t := range tails {
		if t != nil {
			b.p.Edge(t, j)
		}
	}
	b.cur = j
}

// bugHere terminates the current chain with a bug node.
func (b *builder) bugHere(kind BugKind, pos token.Pos, format string, args ...interface{}) {
	n := b.p.NewNode(BugTerm)
	n.Bug = kind
	n.Pos = pos
	n.Comment = fmt.Sprintf(format, args...)
	b.emit(n)
	b.p.Bugs = append(b.p.Bugs, n)
	b.cur = nil // chain terminated
}

// checkBug emits "if cond { bug } else { continue }".
func (b *builder) checkBug(cond *smt.Term, kind BugKind, pos token.Pos, format string, args ...interface{}) {
	if cond.IsFalse() {
		return
	}
	t, e := b.branch(cond)
	b.cur = t
	b.bugHere(kind, pos, format, args...)
	b.cur = e
}

// assume constrains the current path: the negation leads to unreachable.
func (b *builder) assume(cond *smt.Term) {
	if cond.IsTrue() {
		return
	}
	t, e := b.branch(cond)
	b.p.Edge(e, b.unreach)
	b.cur = t
}

func (b *builder) toBool(t *smt.Term) *smt.Term {
	if t.Sort().IsBool() {
		return t
	}
	return b.f().Not(b.f().Eq(t, b.f().BVConst64(0, t.Sort().Width)))
}

func (b *builder) toBV(t *smt.Term, w int) *smt.Term {
	if t.Sort().IsBool() {
		return b.f().Ite(t, b.f().BVConst64(1, w), b.f().BVConst64(0, w))
	}
	return b.f().Resize(t, w)
}

// ------------------------------------------------------------- run

func (b *builder) run(prog *ast.Program) error {
	pl := b.info.Pipeline
	if pl.Parser == nil && pl.Ingress == nil {
		return errors.New("ir: program has neither parser nor ingress control")
	}

	// Identify the headers and metadata structs from the parser signature.
	if pl.Parser != nil {
		for _, p := range pl.Parser.Params {
			t := b.info.ResolveType(p.Type)
			switch x := t.(type) {
			case *types.StructT:
				if x.Decl.Name == "standard_metadata_t" {
					continue
				}
				if p.Dir == "out" {
					b.headersStruct = x.Decl
				} else if b.metaStruct == nil {
					b.metaStruct = x.Decl
				}
			}
		}
	}

	// Declare pipeline storage.
	if b.headersStruct != nil {
		b.declareStruct("hdr", b.headersStruct)
	}
	if b.metaStruct != nil {
		b.declareStruct("meta", b.metaStruct)
	}
	b.declareStruct("smeta", b.info.Structs["standard_metadata_t"])

	// Information flow: resolve which header writes are externally
	// visible before any lowering emits sink checks.
	b.computeEmitSinks(pl.Deparser)

	// Terminals.
	b.accept = b.p.NewNode(AcceptTerm)
	b.reject = b.p.NewNode(RejectTerm)
	b.unreach = b.p.NewNode(UnreachTerm)

	// Entry + initialization.
	b.p.Start = b.nop("start")
	b.cur = b.p.Start
	b.emitInit()

	if b.opts.CheckEgressSpec {
		b.p.EgressSpecSet = b.p.NewVar("$egress_spec_set", smt.BoolSort)
		b.assign(b.p.EgressSpecSet, b.f().False())
	}
	if b.opts.InitEgressSpecDrop {
		if spec := b.lookupVar("smeta.egress_spec"); spec != nil {
			b.assign(spec, b.f().BVConst64(DropSpec, 9))
			b.noteEgressSpecWrite(spec)
		}
	}

	// Parser.
	ingressEntry := b.nop("ingress-entry")
	b.p.IngressEntry = ingressEntry
	if pl.Parser != nil {
		b.ctl = nil
		b.roles = b.rolesOfParser(pl.Parser)
		b.initShadows()
		budget := b.unrollBudget(pl.Parser)
		entry := b.buildState(pl.Parser, "start", budget, ingressEntry, pl.Parser.P)
		b.p.Edge(b.cur, entry)
	} else {
		b.p.Edge(b.cur, ingressEntry)
	}

	// Ingress.
	b.cur = ingressEntry
	ingressEnd := b.nop("ingress-end")
	b.p.IngressEnd = ingressEnd
	if pl.Ingress != nil {
		b.buildControl(pl.Ingress, ingressEnd)
	}
	b.p.Edge(b.cur, ingressEnd)
	b.cur = ingressEnd

	// egress_spec-not-set check at end of ingress (paper §4.6).
	if b.opts.CheckEgressSpec {
		b.checkBug(b.f().Not(b.p.EgressSpecSet.Term), BugEgressSpecNotSet, token.Pos{},
			"egress_spec not set by end of ingress")
	}

	// Dropped packets skip egress.
	spec := b.lookupVar("smeta.egress_spec")
	if spec != nil {
		dropT, contT := b.branch(b.f().Eq(spec.Term, b.f().BVConst64(DropSpec, 9)))
		b.p.Edge(dropT, b.accept)
		b.cur = contT
	}

	// Egress.
	if b.opts.IncludeEgress && pl.Egress != nil {
		egressEnd := b.nop("egress-end")
		b.buildControl(pl.Egress, egressEnd)
		b.p.Edge(b.cur, egressEnd)
		b.cur = egressEnd
	}

	// Optional decapsulation-error check: every still-valid header must
	// be emitted by the deparser.
	if b.opts.CheckDeparsedHeaders && pl.Deparser != nil {
		emitted := b.emittedHeaders(pl.Deparser)
		for _, h := range sortedHeaders(b.p.Headers) {
			if emitted[h.Path] || b.cur == nil {
				continue
			}
			b.checkBug(h.Valid.Term, BugLiveHeaderNotEmitted, token.Pos{},
				"header %s is valid on output but never emitted by the deparser", h.Path)
		}
	}

	b.p.Edge(b.cur, b.accept)
	return nil
}

// emittedHeaders collects the header paths the deparser emits.
func (b *builder) emittedHeaders(dep *ast.ControlDecl) map[string]bool {
	savedCtl, savedRoles := b.ctl, b.roles
	b.ctl = dep
	b.roles = map[string]string{}
	for _, p := range dep.Params {
		b.roles[p.Name] = b.roleOfParam(p)
	}
	out := map[string]bool{}
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch x := s.(type) {
		case *ast.BlockStmt:
			for _, st := range x.Stmts {
				walk(st)
			}
		case *ast.IfStmt:
			walk(x.Then)
			if x.Else != nil {
				walk(x.Else)
			}
		case *ast.CallStmt:
			m, ok := x.Call.Fun.(*ast.Member)
			if !ok || m.Name != "emit" || len(x.Call.Args) != 1 {
				return
			}
			r := b.resolveRef(x.Call.Args[0])
			switch {
			case r.header != nil:
				out[r.header.Path] = true
			case r.stack != nil:
				for _, ep := range r.stack.Elems {
					out[ep] = true
				}
			}
		}
	}
	if dep.Apply != nil {
		walk(dep.Apply)
	}
	b.ctl, b.roles = savedCtl, savedRoles
	return out
}

// emitInit zeroes metadata and header validity, matching v1model
// semantics; packet-derived inputs (ingress_port, header field contents)
// stay unconstrained.
func (b *builder) emitInit() {
	for _, h := range sortedHeaders(b.p.Headers) {
		b.assign(h.Valid, b.f().False())
	}
	for _, s := range sortedStacks(b.p.Stacks) {
		b.assign(s.Next, b.f().BVConst64(0, 32))
	}
	zeroPrefix := func(prefix string) {
		for _, v := range b.p.VarList() {
			if strings.HasPrefix(v.Name, prefix+".") && !strings.Contains(v.Name, "$valid") {
				if v.Sort.IsBool() {
					b.assign(v, b.f().False())
				} else {
					b.assign(v, b.f().BVConst64(0, v.Sort.Width))
				}
			}
		}
	}
	zeroPrefix("meta")
	// standard_metadata: zero the output-ish fields, leave inputs free.
	for _, name := range []string{"egress_spec", "egress_port", "mcast_grp", "instance_type", "checksum_error", "priority"} {
		if v := b.lookupVar("smeta." + name); v != nil {
			b.assign(v, b.f().BVConst64(0, v.Sort.Width))
		}
	}
	// Shadows for everything declared so far (header fields, remaining
	// standard metadata): sensitive sources start all-tainted, the rest
	// public.
	b.initShadows()
}

func sortedHeaders(m map[string]*Header) []*Header {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	out := make([]*Header, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

func sortedStacks(m map[string]*Stack) []*Stack {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	out := make([]*Stack, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (b *builder) lookupVar(name string) *Var { return b.p.Vars[name] }

// ------------------------------------------------------------- declare

func (b *builder) declareStruct(prefix string, decl *ast.StructDecl) {
	if decl == nil {
		return
	}
	for _, fld := range decl.Fields {
		path := prefix + "." + fld.Name
		switch t := b.info.ResolveType(fld.Type).(type) {
		case *types.BitsType:
			b.p.NewVar(path, smt.BV(t.Width))
			b.markSensitive(path, fld, "")
		case *types.BoolT:
			b.p.NewVar(path, smt.BoolSort)
			b.markSensitive(path, fld, "")
		case *types.HeaderT:
			b.declareHeader(path, t.Decl)
		case *types.StructT:
			b.declareStruct(path, t.Decl)
		case *types.StackT:
			b.declareStack(path, t)
		default:
			b.errorf(fld.P, "unsupported field type %s for %s", t, path)
		}
	}
}

func (b *builder) declareHeader(path string, decl *ast.HeaderDecl) *Header {
	if h, ok := b.p.Headers[path]; ok {
		return h
	}
	h := &Header{Path: path, Decl: decl.Name}
	h.Valid = b.p.NewVar(path+".$valid", smt.BoolSort)
	for _, fld := range decl.Fields {
		w := types.WidthOf(b.info.ResolveType(fld.Type))
		if w == 0 {
			b.errorf(fld.P, "header %s field %s is not scalar", decl.Name, fld.Name)
			w = 1
		}
		h.Fields = append(h.Fields, b.p.NewVar(path+"."+fld.Name, smt.BV(w)))
		b.markSensitive(path+"."+fld.Name, fld, decl.Name)
	}
	b.p.Headers[path] = h
	return h
}

func (b *builder) declareStack(path string, t *types.StackT) {
	s := &Stack{Path: path, Size: t.Size}
	s.Next = b.p.NewVar(path+".$next", smt.BV(32))
	for i := 0; i < t.Size; i++ {
		ep := fmt.Sprintf("%s[%d]", path, i)
		b.declareHeader(ep, t.Elem.Decl)
		s.Elems = append(s.Elems, ep)
	}
	b.p.Stacks[path] = s
}

// rolesOfParser maps the parser's parameter names to canonical prefixes.
func (b *builder) rolesOfParser(pd *ast.ParserDecl) map[string]string {
	roles := map[string]string{}
	for _, p := range pd.Params {
		roles[p.Name] = b.roleOfParam(p)
	}
	return roles
}

func (b *builder) roleOfParam(p *ast.Param) string {
	switch t := b.info.ResolveType(p.Type).(type) {
	case *types.StructT:
		switch {
		case t.Decl.Name == "standard_metadata_t":
			return "smeta"
		case t.Decl == b.headersStruct:
			return "hdr"
		case t.Decl == b.metaStruct:
			return "meta"
		default:
			b.declareStruct(p.Name, t.Decl)
			return p.Name
		}
	case *types.HeaderT:
		b.declareHeader(p.Name, t.Decl)
		return p.Name
	case *types.ExternT:
		return "$packet"
	case *types.BitsType:
		b.p.NewVar(p.Name, smt.BV(t.Width))
		return p.Name
	case *types.BoolT:
		b.p.NewVar(p.Name, smt.BoolSort)
		return p.Name
	default:
		return p.Name
	}
}

// ------------------------------------------------------------- parser

// unrollBudget bounds parser state revisits: total stack capacity plus
// the number of states, plus slack.
func (b *builder) unrollBudget(pd *ast.ParserDecl) int {
	budget := len(pd.States) + 2 + b.opts.UnrollSlack
	for _, s := range b.p.Stacks {
		budget += s.Size
	}
	return budget
}

// buildState returns the entry node for (state, budget), memoized. pos is
// the position of the transition (or parser declaration) naming the
// state, used for diagnostics.
func (b *builder) buildState(pd *ast.ParserDecl, name string, budget int, ingressEntry *Node, pos token.Pos) *Node {
	switch name {
	case "accept":
		return ingressEntry
	case "reject":
		return b.reject
	}
	if budget <= 0 {
		// The target bounds parser iterations; the packet is rejected.
		return b.reject
	}
	key := fmt.Sprintf("%s@%d", name, budget)
	if n, ok := b.memo[key]; ok {
		return n
	}
	var st *ast.StateDecl
	for _, s := range pd.States {
		if s.Name == name {
			st = s
			break
		}
	}
	if st == nil {
		b.errorf(pos, "parser: unknown state %s", name)
		return b.reject
	}
	entry := b.nop("state " + key)
	b.memo[key] = entry

	savedCur := b.cur
	b.cur = entry
	for _, s := range st.Stmts {
		b.lowerStmt(s)
		if b.cur == nil {
			break
		}
	}
	if b.cur != nil {
		b.lowerTransition(pd, st, budget, ingressEntry)
	}
	b.cur = savedCur
	return entry
}

func (b *builder) lowerTransition(pd *ast.ParserDecl, st *ast.StateDecl, budget int, ingressEntry *Node) {
	tr := st.Trans
	if tr == nil {
		b.p.Edge(b.cur, b.reject)
		b.cur = nil
		return
	}
	if tr.Select == nil {
		b.p.Edge(b.cur, b.buildState(pd, tr.Next, budget-1, ingressEntry, tr.P))
		b.cur = nil
		return
	}
	// Lower select keys once, with validity checks for header reads.
	b.beginReads()
	keys := make([]*smt.Term, len(tr.Select.Exprs))
	for i, e := range tr.Select.Exprs {
		keys[i] = b.lowerExpr(e, 0)
	}
	b.flushReadChecks(tr.P)
	if b.cur == nil {
		return
	}
	for _, c := range tr.Select.Cases {
		cond := b.f().True()
		for i, v := range c.Values {
			if i >= len(keys) {
				break
			}
			if _, isDefault := v.(*ast.DefaultExpr); isDefault {
				continue
			}
			val := b.lowerExpr(v, keys[i].Sort().Width)
			cond = b.f().And(cond, b.f().Eq(keys[i], b.toBV(val, keys[i].Sort().Width)))
		}
		if cond.IsTrue() {
			// Default (or all-default tuple) case: unconditional jump.
			b.p.Edge(b.cur, b.buildState(pd, c.Next, budget-1, ingressEntry, c.P))
			b.cur = nil
			return
		}
		t, e := b.branch(cond)
		b.p.Edge(t, b.buildState(pd, c.Next, budget-1, ingressEntry, c.P))
		b.cur = e
	}
	// No case matched: reject.
	b.p.Edge(b.cur, b.reject)
	b.cur = nil
}

// ------------------------------------------------------------- controls

func (b *builder) buildControl(cd *ast.ControlDecl, end *Node) {
	b.ctl = cd
	b.roles = map[string]string{}
	for _, p := range cd.Params {
		b.roles[p.Name] = b.roleOfParam(p)
	}
	b.initShadows()
	// Declare and initialize control locals.
	for _, l := range cd.Locals {
		switch x := l.(type) {
		case *ast.VarDecl:
			b.declareLocal(cd, x)
		case *ast.RegisterDecl:
			w := types.WidthOf(b.info.ResolveType(x.ElemType))
			b.p.Registers[x.Name] = &Register{Name: x.Name, Size: x.Size, ElemWidth: w}
		}
	}
	savedExit := b.exitTarget
	b.exitTarget = end
	for _, s := range cd.Apply.Stmts {
		b.lowerStmt(s)
		if b.cur == nil {
			// Terminated (exit/bug on all paths); subsequent statements
			// are dead.
			b.cur = b.nop("dead")
			break
		}
	}
	b.exitTarget = savedExit
}

func (b *builder) declareLocal(cd *ast.ControlDecl, vd *ast.VarDecl) *Var {
	name := cd.Name + "." + vd.Name
	t := b.info.ResolveType(vd.Type)
	switch x := t.(type) {
	case *types.BitsType:
		v := b.p.NewVar(name, smt.BV(x.Width))
		b.initShadows()
		if vd.Init != nil {
			b.beginReads()
			init := b.lowerExpr(vd.Init, x.Width)
			b.flushReadChecks(vd.P)
			if b.cur != nil {
				b.assign(v, init)
			}
		}
		return v
	case *types.BoolT:
		v := b.p.NewVar(name, smt.BoolSort)
		b.initShadows()
		if vd.Init != nil {
			b.beginReads()
			init := b.lowerExpr(vd.Init, 1)
			b.flushReadChecks(vd.P)
			if b.cur != nil {
				b.assign(v, init)
			}
		}
		return v
	default:
		b.errorf(vd.P, "unsupported local type %s", t)
		return b.p.NewVar(name, smt.BV(1))
	}
}

// ------------------------------------------------------------- reads

func (b *builder) beginReads() {
	b.reads = map[string]bool{}
	b.stackReads = map[string]bool{}
}

// flushReadChecks emits validity-bug checks for every header read since
// beginReads. The current chain continues on the valid path.
func (b *builder) flushReadChecks(pos token.Pos) {
	if !b.opts.CheckHeaderValidity {
		b.reads, b.stackReads = nil, nil
		return
	}
	paths := make([]string, 0, len(b.reads))
	for p := range b.reads {
		paths = append(paths, p)
	}
	sortStrings(paths)
	for _, p := range paths {
		h := b.p.Headers[p]
		if h == nil || b.cur == nil {
			continue
		}
		b.checkBug(b.f().Not(h.Valid.Term), BugInvalidHeaderRead, pos,
			"read of field of invalid header %s", p)
	}
	stacks := make([]string, 0, len(b.stackReads))
	for p := range b.stackReads {
		stacks = append(stacks, p)
	}
	sortStrings(stacks)
	for _, p := range stacks {
		s := b.p.Stacks[p]
		if s == nil || b.cur == nil {
			continue
		}
		b.checkBug(b.f().Eq(s.Next.Term, b.f().BVConst64(0, 32)), BugStackUnderflow, pos,
			"access to last element of empty stack %s", p)
	}
	b.reads, b.stackReads = nil, nil
}

// markRead records a header read during expression lowering.
func (b *builder) markRead(headerPath string) {
	if b.reads != nil {
		b.reads[headerPath] = true
	}
}
