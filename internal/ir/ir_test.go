package ir

import (
	"strings"
	"testing"

	"bf4/internal/p4/ast"
	"bf4/internal/p4/parser"
	"bf4/internal/p4/types"
)

// buildSrc parses, checks and lowers a P4 source.
func buildSrc(t *testing.T, src string, opts Options) *Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	p, err := Build(prog, info, opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

const natSrc = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<32> srcAddr; bit<32> dstAddr; }
struct meta_t { bit<1> do_forward; bit<32> nhop; }
struct metadata { meta_t meta; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; }

parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    action drop_() { mark_to_drop(smeta); }
    action nat_hit(bit<32> a) {
        meta.meta.do_forward = 1w1;
        hdr.ipv4.srcAddr = a;
    }
    table nat {
        key = { hdr.ipv4.isValid(): exact; hdr.ipv4.srcAddr: ternary; }
        actions = { drop_; nat_hit; }
        default_action = drop_();
    }
    action set_nhop(bit<32> nhop, bit<9> port) {
        meta.meta.nhop = nhop;
        smeta.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table ipv4_lpm {
        key = { meta.meta.nhop: lpm; }
        actions = { set_nhop; drop_; }
    }
    apply {
        nat.apply();
        if (meta.meta.do_forward == 1w1) {
            ipv4_lpm.apply();
        }
    }
}

control Eg(inout headers hdr, inout metadata meta,
           inout standard_metadata_t smeta) { apply { } }
control Dep(packet_out pkt, in headers hdr) { apply { pkt.emit(hdr.ipv4); } }

V1Switch(P(), Ing(), Eg(), Dep()) main;
`

func TestBuildNAT(t *testing.T) {
	p := buildSrc(t, natSrc, DefaultOptions())

	if len(p.Instances) != 2 {
		t.Fatalf("instances = %d, want 2", len(p.Instances))
	}
	if p.Instances[0].Table.Name != "nat" || p.Instances[1].Table.Name != "ipv4_lpm" {
		t.Fatalf("instance order: %s, %s", p.Instances[0].Table.Name, p.Instances[1].Table.Name)
	}
	if len(p.Bugs) == 0 {
		t.Fatal("no bug nodes instrumented")
	}
	kinds := map[BugKind]int{}
	for _, bug := range p.Bugs {
		kinds[bug.Bug]++
	}
	if kinds[BugInvalidKeyRead] == 0 {
		t.Errorf("missing invalid-key-read bug (nat ternary key); kinds: %v", kinds)
	}
	if kinds[BugInvalidHeaderRead] == 0 && kinds[BugInvalidHeaderWrite] == 0 {
		t.Errorf("missing header validity bug (set_nhop ttl); kinds: %v", kinds)
	}
	if kinds[BugEgressSpecNotSet] == 0 {
		t.Errorf("missing egress-spec bug; kinds: %v", kinds)
	}
	// Topo must work (acyclicity) and cover the start node.
	order := p.Topo()
	if order[0] != p.Start {
		t.Fatal("topo does not start at Start")
	}
	// Dump sanity.
	d := p.Dump()
	if !strings.Contains(d, "assert-point nat$0") {
		t.Errorf("dump lacks nat assert point:\n%s", d)
	}
}

func TestNATVars(t *testing.T) {
	p := buildSrc(t, natSrc, DefaultOptions())
	for _, name := range []string{
		"hdr.ipv4.ttl", "hdr.ipv4.$valid", "hdr.ethernet.etherType",
		"meta.meta.do_forward", "smeta.egress_spec", "$egress_spec_set",
		"pcn_nat$0.hit", "pcn_nat$0.action_run", "pcn_nat$0.key0",
		"pcn_nat$0.key1", "pcn_nat$0.mask1", "pcn_nat$0.nat_hit.a",
		"pcn_ipv4_lpm$0.key0", "pcn_ipv4_lpm$0.mask0",
	} {
		if p.Vars[name] == nil {
			t.Errorf("variable %s not declared", name)
		}
	}
	// Control variable classification.
	if !p.Vars["pcn_nat$0.hit"].IsControl {
		t.Error("pcn_nat$0.hit must be a control variable")
	}
	if p.Vars["hdr.ipv4.ttl"].IsControl {
		t.Error("hdr.ipv4.ttl must not be a control variable")
	}
	cv := p.ControlVars()
	if len(cv) < 8 {
		t.Errorf("control vars = %d, want >= 8", len(cv))
	}
}

func TestExtraKeysChangeTables(t *testing.T) {
	opts := DefaultOptions()
	opts.ExtraKeys = map[string][]string{
		"ipv4_lpm": {"hdr.ipv4.isValid()"},
	}
	p := buildSrc(t, natSrc, opts)
	tbl := p.Tables["ipv4_lpm"]
	if len(tbl.Keys) != 2 {
		t.Fatalf("ipv4_lpm keys = %d, want 2", len(tbl.Keys))
	}
	k := tbl.Keys[1]
	if !k.Synthesized || k.Path != "hdr.ipv4.isValid()" || k.MatchKind != "exact" || k.Width != 1 {
		t.Fatalf("synthesized key: %+v", k)
	}
	if p.Vars["pcn_ipv4_lpm$0.key1"] == nil {
		t.Fatal("synthesized key var missing")
	}
}

func TestHeaderCopyInstrumentation(t *testing.T) {
	src := `
header h_t { bit<8> a; bit<8> b; }
struct headers { h_t outer; h_t inner; }
struct metadata { bit<1> x; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start { pkt.extract(hdr.outer); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    apply {
        smeta.egress_spec = 9w1;
        hdr.inner = hdr.outer;
    }
}
V1Switch(P(), Ing()) main;
`
	p := buildSrc(t, src, DefaultOptions())
	var overwrite, dontcare int
	for _, n := range p.Nodes {
		if n.Kind == BugTerm && n.Bug == BugHeaderOverwrite {
			overwrite++
		}
		if n.Kind == DontCare {
			dontcare++
		}
	}
	if overwrite != 1 || dontcare != 1 {
		t.Fatalf("overwrite=%d dontcare=%d, want 1/1", overwrite, dontcare)
	}

	// Without the dontCare option, no DontCare nodes appear.
	opts := DefaultOptions()
	opts.DontCare = false
	p2 := buildSrc(t, src, opts)
	for _, n := range p2.Nodes {
		if n.Kind == DontCare {
			t.Fatal("DontCare node present despite disabled option")
		}
	}
}

func TestParserUnrollingTerminates(t *testing.T) {
	src := `
header vlan_t { bit<16> tci; }
struct headers { vlan_t[3] vlan; }
struct metadata { bit<1> x; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.vlan.next);
        transition select(hdr.vlan.last.tci) {
            16w1: start;
            default: accept;
        }
    }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    apply { smeta.egress_spec = 9w1; }
}
V1Switch(P(), Ing()) main;
`
	p := buildSrc(t, src, DefaultOptions())
	p.Topo() // must not panic (acyclic)
	var overflow int
	for _, n := range p.Nodes {
		if n.Kind == BugTerm && n.Bug == BugStackOverflow {
			overflow++
		}
	}
	if overflow == 0 {
		t.Fatal("expected stack-overflow bug nodes from unrolled extract")
	}
}

func TestRegisterBounds(t *testing.T) {
	src := `
header h_t { bit<32> x; }
struct headers { h_t h; }
struct metadata { bit<32> idx; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    register<bit<32>>(16) reg;
    apply {
        smeta.egress_spec = 9w1;
        reg.write(meta.idx, hdr.h.x);
        reg.read(meta.idx, meta.idx);
    }
}
V1Switch(P(), Ing()) main;
`
	p := buildSrc(t, src, DefaultOptions())
	var oob int
	for _, n := range p.Nodes {
		if n.Kind == BugTerm && n.Bug == BugRegisterOOB {
			oob++
		}
	}
	if oob != 2 {
		t.Fatalf("register OOB bugs = %d, want 2", oob)
	}
	if p.Registers["reg"] == nil || p.Registers["reg"].Size != 16 {
		t.Fatal("register metadata missing")
	}
}

func TestSwitchLowering(t *testing.T) {
	src := `
header h_t { bit<8> x; }
struct headers { h_t h; }
struct metadata { bit<8> m; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    action a1() { meta.m = 8w1; }
    action a2() { meta.m = 8w2; }
    table t {
        key = { meta.m: exact; }
        actions = { a1; a2; }
    }
    apply {
        smeta.egress_spec = 9w1;
        switch (t.apply().action_run) {
            a1: { meta.m = 8w10; }
            default: { meta.m = 8w20; }
        }
    }
}
V1Switch(P(), Ing()) main;
`
	p := buildSrc(t, src, DefaultOptions())
	if len(p.Instances) != 1 {
		t.Fatalf("instances = %d, want 1", len(p.Instances))
	}
	p.Topo()
}

func TestNumInstructionsNonTrivial(t *testing.T) {
	p := buildSrc(t, natSrc, DefaultOptions())
	if n := p.NumInstructions(); n < 30 {
		t.Fatalf("NumInstructions = %d, suspiciously small", n)
	}
}

func TestDefaultActionIndexing(t *testing.T) {
	p := buildSrc(t, natSrc, DefaultOptions())
	nat := p.Instances[0]
	if nat.ActIndex["drop_"] != 0 || nat.ActIndex["nat_hit"] != 1 {
		t.Fatalf("ActIndex: %v", nat.ActIndex)
	}
	if len(nat.ParamVars["nat_hit"]) != 1 {
		t.Fatalf("nat_hit params: %v", nat.ParamVars["nat_hit"])
	}
}

var sinkDump string

func BenchmarkBuildNAT(b *testing.B) {
	prog, err := parser.Parse(natSrc)
	if err != nil {
		b.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := Build(prog, info, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		_ = p
	}
}

// Ensure ast import is used even if assertions above change.
var _ = ast.PathString
