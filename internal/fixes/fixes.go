// Package fixes implements bf4's program-fixing pass (paper Algorithm 3):
// for each bug that annotation inference cannot control, it finds the
// last-resort table (the dominating assert point) and runs a forward
// dataflow analysis from the table's apply to the bug over the
// (vars, terms) lattice, computing the minimal set of live variables that
// determine the bug. Those variables, minus the table's existing control
// variables, become new exact-match keys. Egress-spec bugs get the
// paper's special-cased suggestion (drop at the start of ingress) since
// key-based fixes degenerate for them (§4.6).
package fixes

import (
	"fmt"
	"sort"
	"strings"

	"bf4/internal/core"
	"bf4/internal/ir"
	"bf4/internal/slice"
	"bf4/internal/smt"
)

// isForeignBugCheck reports whether n is an instrumentation check
// guarding a DIFFERENT bug. Such branches are not program logic — in the
// uninstrumented program control always flows to the continue side — so
// their reads must not become keys for the bug under repair. Keeping the
// bug's own guard is what makes its determining variables live.
func isForeignBugCheck(n *ir.Node, bug *ir.Node) bool {
	if n.Kind != ir.Branch || len(n.Succs) != 2 {
		return false
	}
	t := n.Succs[0]
	for i := 0; i < 3 && t != nil; i++ {
		if t.Kind == ir.BugTerm {
			return t != bug
		}
		if t.Kind != ir.Nop || len(t.Succs) != 1 {
			return false
		}
		t = t.Succs[0]
	}
	return false
}

// isAssumeBranch reports whether a branch encodes an assumption: its
// false successor leads (only) to the unreachable terminal.
func isAssumeBranch(n *ir.Node) bool {
	if n.Kind != ir.Branch || len(n.Succs) != 2 {
		return false
	}
	f := n.Succs[1]
	if f.Kind == ir.UnreachTerm {
		return true
	}
	return f.Kind == ir.Nop && len(f.Succs) == 1 && f.Succs[0].Kind == ir.UnreachTerm
}

// Result aggregates proposed fixes.
type Result struct {
	// Keys maps table name to the key paths to add (deduplicated,
	// sorted).
	Keys map[string][]string
	// Special holds non-key suggestions (egress-spec handling).
	Special []string
	// Unfixable lists genuine dataplane bugs: no dominating table exists
	// or the determining variables cannot be table keys.
	Unfixable []*core.Bug
}

// TotalKeys counts all proposed keys (the Table 1 "keys added" column).
func (r *Result) TotalKeys() int {
	n := 0
	for _, ks := range r.Keys {
		n += len(ks)
	}
	return n
}

// TablesTouched counts tables receiving at least one key.
func (r *Result) TablesTouched() int { return len(r.Keys) }

// Run proposes fixes for every uncontrolled bug.
func Run(pl *core.Pipeline, uncontrolled []*core.Bug) *Result {
	res := &Result{Keys: map[string][]string{}}
	seen := map[string]map[string]bool{}
	egressSuggested := false

	for _, b := range uncontrolled {
		if b.Kind == ir.BugEgressSpecNotSet {
			if !egressSuggested {
				res.Special = append(res.Special,
					"egress_spec may be unset at end of ingress: initialize it "+
						"(e.g. mark_to_drop(standard_metadata)) at the beginning of the ingress pipeline")
				egressSuggested = true
			}
			continue
		}
		if b.Instance == nil {
			res.Unfixable = append(res.Unfixable, b)
			continue
		}
		keys, ok := TableKeys(pl, b, b.Instance)
		if !ok || len(keys) == 0 {
			res.Unfixable = append(res.Unfixable, b)
			continue
		}
		t := b.Instance.Table.Name
		if seen[t] == nil {
			seen[t] = map[string]bool{}
		}
		for _, k := range keys {
			if !seen[t][k] {
				seen[t][k] = true
				res.Keys[t] = append(res.Keys[t], k)
			}
		}
	}
	for t := range res.Keys {
		sort.Strings(res.Keys[t])
	}
	return res
}

// fact is the dataflow lattice element: vars live-before-kill, terms
// killed (written) since the assert point.
type fact struct {
	vars  map[*ir.Var]bool
	terms map[*ir.Var]bool
}

func (f *fact) clone() *fact {
	nf := &fact{vars: make(map[*ir.Var]bool, len(f.vars)), terms: make(map[*ir.Var]bool, len(f.terms))}
	for v := range f.vars {
		nf.vars[v] = true
	}
	for v := range f.terms {
		nf.terms[v] = true
	}
	return nf
}

// join is the lattice meet (pairwise union, paper §4.3).
func (f *fact) join(o *fact) bool {
	changed := false
	for v := range o.vars {
		if !f.vars[v] {
			f.vars[v] = true
			changed = true
		}
	}
	for v := range o.terms {
		if !f.terms[v] {
			f.terms[v] = true
			changed = true
		}
	}
	return changed
}

// TableKeys runs the paper's TableKeys dataflow: the returned key paths,
// added to the table, make the bug expressible over control variables.
// ok is false when some determining variable cannot be a key (e.g. it is
// another table's entry state), marking a genuine dataplane bug.
func TableKeys(pl *core.Pipeline, b *core.Bug, inst *ir.TableInstance) (keys []string, ok bool) {
	p := pl.IR
	// Region: nodes on paths Apply → bug.
	fromApply := forwardReachable(inst.Apply)
	toBug := backwardReachable(b.Node)
	region := map[*ir.Node]bool{}
	for n := range fromApply {
		if toBug[n] {
			region[n] = true
		}
	}
	if !region[b.Node] || !region[inst.Apply] {
		return nil, false
	}
	// Slice with respect to this bug: only relevant statements transfer.
	keep, _ := slice.WRTNodes(p, []*ir.Node{b.Node})

	controlled := map[*ir.Var]bool{}
	collectControl := func(vs ...*ir.Var) {
		for _, v := range vs {
			if v != nil {
				controlled[v] = true
			}
		}
	}
	collectControl(inst.HitVar, inst.ActVar)
	collectControl(inst.KeyVars...)
	collectControl(inst.MaskVars...)
	for _, ps := range inst.ParamVars {
		collectControl(ps...)
	}
	collectControl(inst.DefaultParamVars...)
	// Variables the table already matches on with EXACT keys are
	// controlled too: an entry's exact keys functionally determine them
	// on the hit path (the paper's Vt set). Ternary/lpm keys do not — a
	// zero mask leaves the variable free, which is precisely why Fixes
	// sometimes adds an exact key over an expression the table already
	// matches ternary on. Recognize plain variable keys and the
	// ite(valid,1,0) encoding of isValid() keys.
	for j, kt := range inst.KeyTerms {
		if kt == nil || j >= len(inst.Table.Keys) || inst.Table.Keys[j].MatchKind != "exact" {
			continue
		}
		if v, okv := p.Vars[kt.Name()]; okv && kt == v.Term {
			controlled[v] = true
		}
		if kt.Op() == smt.OpIte {
			if c := kt.Arg(0); c.Op() == smt.OpVar {
				if v, okv := p.Vars[c.Name()]; okv {
					controlled[v] = true
				}
			}
		}
	}

	// Forward dataflow in topological order within the region.
	facts := map[*ir.Node]*fact{inst.Apply: {vars: map[*ir.Var]bool{}, terms: map[*ir.Var]bool{}}}
	for _, n := range p.Topo() {
		if !region[n] {
			continue
		}
		in := facts[n]
		if in == nil {
			continue // unreachable within region (shouldn't happen)
		}
		out := in
		if keep[n] && !isForeignBugCheck(n, b.Node) {
			out = transfer(p, n, in)
		} else if n.Kind == ir.Assign || n.Kind == ir.Havoc {
			// Kill set still applies even to sliced-out writes.
			out = in.clone()
			out.terms[n.Var] = true
		}
		for _, s := range n.Succs {
			if !region[s] {
				continue
			}
			if facts[s] == nil {
				facts[s] = out.clone()
			} else {
				facts[s].join(out)
			}
		}
	}
	bugFact := facts[b.Node]
	if bugFact == nil {
		return nil, false
	}

	var missing []*ir.Var
	for v := range bugFact.vars {
		if !controlled[v] {
			missing = append(missing, v)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].Name < missing[j].Name })

	ok = true
	for _, v := range missing {
		path, keyable := varToKeyPath(v)
		if !keyable {
			ok = false
			continue
		}
		keys = append(keys, path)
	}
	return keys, ok
}

// transfer applies the paper's transfer function:
// vars' = vars ∪ (reads(stat) \ terms), terms' = terms ∪ writes(stat).
func transfer(p *ir.Program, n *ir.Node, in *fact) *fact {
	out := in.clone()
	switch n.Kind {
	case ir.Branch:
		// Assume branches (match relations; false side is unreachable)
		// only select which entry is hit — they do not determine whether
		// the bug fires for a fixed entry, so their reads are not key
		// candidates.
		if isAssumeBranch(n) {
			break
		}
		for _, vt := range n.Expr.Vars(nil) {
			if v, okv := p.Vars[vt.Name()]; okv && !out.terms[v] {
				out.vars[v] = true
			}
		}
	case ir.Assign:
		for _, vt := range n.Expr.Vars(nil) {
			if v, okv := p.Vars[vt.Name()]; okv && !out.terms[v] {
				out.vars[v] = true
			}
		}
		out.terms[n.Var] = true
	case ir.Havoc:
		out.terms[n.Var] = true
	}
	return out
}

// varToKeyPath converts an IR variable into a P4 key expression path.
func varToKeyPath(v *ir.Var) (string, bool) {
	name := v.Name
	switch {
	case strings.HasPrefix(name, "pcn_"), strings.HasPrefix(name, "$"):
		// Table-entry state or instrumentation shadows can't be matched
		// as keys: genuine dataplane bug territory.
		return "", false
	case strings.HasSuffix(name, ".$valid"):
		return strings.TrimSuffix(name, ".$valid") + ".isValid()", true
	case strings.HasSuffix(name, ".$next"):
		return "", false
	default:
		return name, true
	}
}

// Describe renders the proposed fixes for human consumption.
func (r *Result) Describe() string {
	var b strings.Builder
	tables := make([]string, 0, len(r.Keys))
	for t := range r.Keys {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		fmt.Fprintf(&b, "table %s: add keys { %s }\n", t, strings.Join(r.Keys[t], ", "))
	}
	for _, s := range r.Special {
		fmt.Fprintf(&b, "suggestion: %s\n", s)
	}
	for _, u := range r.Unfixable {
		fmt.Fprintf(&b, "dataplane bug (no key-based fix): %s\n", u.Description())
	}
	return b.String()
}

func forwardReachable(n *ir.Node) map[*ir.Node]bool {
	out := map[*ir.Node]bool{}
	stack := []*ir.Node{n}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[x] {
			continue
		}
		out[x] = true
		stack = append(stack, x.Succs...)
	}
	return out
}

func backwardReachable(n *ir.Node) map[*ir.Node]bool {
	out := map[*ir.Node]bool{}
	stack := []*ir.Node{n}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[x] {
			continue
		}
		out[x] = true
		stack = append(stack, x.Preds...)
	}
	return out
}
