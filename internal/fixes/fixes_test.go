package fixes

import (
	"strings"
	"testing"

	"bf4/internal/core"
	"bf4/internal/infer"
	"bf4/internal/ir"
)

const natSrc = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<32> srcAddr; bit<32> dstAddr; }
struct meta_t { bit<1> do_forward; bit<32> nhop; }
struct metadata { meta_t meta; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; }

parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
}

control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    action drop_() { mark_to_drop(smeta); }
    action nat_hit(bit<32> a) {
        meta.meta.do_forward = 1w1;
        meta.meta.nhop = a;
    }
    table nat {
        key = { hdr.ipv4.isValid(): exact; hdr.ipv4.srcAddr: ternary; }
        actions = { drop_; nat_hit; }
        default_action = drop_();
    }
    action set_nhop(bit<32> nhop, bit<9> port) {
        meta.meta.nhop = nhop;
        smeta.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
    }
    table ipv4_lpm {
        key = { meta.meta.nhop: lpm; }
        actions = { set_nhop; drop_; }
    }
    apply {
        nat.apply();
        if (meta.meta.do_forward == 1w1) {
            ipv4_lpm.apply();
        }
    }
}
V1Switch(P(), Ing()) main;
`

func uncontrolledBugs(t *testing.T, src string) (*core.Pipeline, []*core.Bug) {
	t.Helper()
	pl, err := core.Compile(src, ir.DefaultOptions(), true)
	if err != nil {
		t.Fatal(err)
	}
	rep := pl.FindBugs()
	res := infer.Run(pl, rep, infer.DefaultOptions())
	return pl, res.Uncontrolled
}

func TestRunProposesValidityKey(t *testing.T) {
	pl, unc := uncontrolledBugs(t, natSrc)
	if len(unc) == 0 {
		t.Fatal("expected uncontrolled bugs")
	}
	res := Run(pl, unc)
	keys := res.Keys["ipv4_lpm"]
	found := false
	for _, k := range keys {
		if k == "hdr.ipv4.isValid()" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ipv4_lpm keys = %v, want hdr.ipv4.isValid()", keys)
	}
	if res.TotalKeys() != len(keys) || res.TablesTouched() != 1 {
		t.Fatalf("totals wrong: %d keys, %d tables", res.TotalKeys(), res.TablesTouched())
	}
}

func TestEgressSpecSpecialCase(t *testing.T) {
	pl, unc := uncontrolledBugs(t, natSrc)
	res := Run(pl, unc)
	if len(res.Special) == 0 {
		t.Fatal("expected the egress-spec suggestion")
	}
	if !strings.Contains(res.Special[0], "egress_spec") {
		t.Fatalf("suggestion text: %q", res.Special[0])
	}
	// Egress-spec bugs never produce keys.
	for table, ks := range res.Keys {
		for _, k := range ks {
			if strings.Contains(k, "egress_spec") {
				t.Fatalf("egress_spec leaked into keys of %s: %v", table, ks)
			}
		}
	}
}

func TestDescribeMentionsEverything(t *testing.T) {
	pl, unc := uncontrolledBugs(t, natSrc)
	res := Run(pl, unc)
	d := res.Describe()
	if !strings.Contains(d, "ipv4_lpm") || !strings.Contains(d, "suggestion:") {
		t.Fatalf("Describe() = %q", d)
	}
}

func TestUnfixableDataplaneBug(t *testing.T) {
	src := `
header tcp_t { bit<16> dstPort; bit<8> flags; }
struct headers { tcp_t tcp; }
struct metadata { bit<1> m; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w1: parse_tcp;
            default: accept;
        }
    }
    state parse_tcp { pkt.extract(hdr.tcp); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    apply {
        smeta.egress_spec = 9w1;
        if (hdr.tcp.flags == 8w2) {
            smeta.egress_spec = 9w2;
        }
    }
}
V1Switch(P(), Ing()) main;
`
	pl, unc := uncontrolledBugs(t, src)
	if len(unc) == 0 {
		t.Fatal("expected an uncontrolled bug")
	}
	res := Run(pl, unc)
	if len(res.Unfixable) == 0 {
		t.Fatal("dataplane bug (no dominating table) must be unfixable")
	}
	if res.TotalKeys() != 0 {
		t.Fatalf("no keys should be proposed, got %v", res.Keys)
	}
}

func TestTableKeysKillSet(t *testing.T) {
	// The paper's example: x is rewritten after the assert point, so the
	// needed keys are the variables feeding the rewrite, not x itself.
	src := `
header h_t { bit<8> y; bit<8> z; }
struct headers { h_t h; }
struct metadata { bit<8> x; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w1: parse_h;
            default: accept;
        }
    }
    state parse_h { pkt.extract(hdr.h); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    action act() {
        meta.x = 8w3;
    }
    table t {
        key = { smeta.ingress_port: exact; }
        actions = { act; NoAction; }
    }
    apply {
        smeta.egress_spec = 9w1;
        t.apply();
        if (hdr.h.y == 8w0) { meta.x = 8w3; } else { meta.x = hdr.h.z; }
        if (meta.x == 8w10) {
            hdr.h.y = 8w1;
        }
    }
}
V1Switch(P(), Ing()) main;
`
	pl, unc := uncontrolledBugs(t, src)
	res := Run(pl, unc)
	keys := res.Keys["t"]
	joined := strings.Join(keys, ",")
	// x itself must not be a key (killed); its inputs y/z (via the h
	// header reads) and the validity bit drive the bug.
	if strings.Contains(joined, "meta.x") {
		t.Fatalf("killed variable proposed as key: %v", keys)
	}
	if len(keys) == 0 {
		t.Fatalf("expected keys on t, got none (uncontrolled=%d)", len(unc))
	}
}
