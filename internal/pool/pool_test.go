package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS = %d", got, want)
	}
	if got := Workers(-3); got != want {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS = %d", got, want)
	}
}

func TestMapOrderedAndComplete(t *testing.T) {
	const n = 1000
	for _, w := range []int{1, 2, 7, 64} {
		got := Map(w, n, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 500
	fn := func(i int) string { return fmt.Sprintf("task-%03d", i) }
	serial := Map(1, n, fn)
	for _, w := range []int{2, 5, 32} {
		parallel := Map(w, n, fn)
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("workers=%d: result %d differs: %q vs %q", w, i, serial[i], parallel[i])
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	ForEach(workers, 200, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, want <= %d", p, workers)
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -5, func(int) { ran = true })
	if ran {
		t.Fatal("ForEach ran tasks for n <= 0")
	}
}

func TestMapErrReturnsLowestIndexedError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, w := range []int{1, 4} {
		out, err := MapErr(w, 10, func(i int) (int, error) {
			switch i {
			case 7:
				return 0, errB
			case 3:
				return 0, errA
			default:
				return i, nil
			}
		})
		if err != errA {
			t.Fatalf("workers=%d: err = %v, want first-by-index %v", w, err, errA)
		}
		if out[9] != 9 {
			t.Fatalf("workers=%d: successful results not collected: %v", w, out)
		}
	}
	if _, err := MapErr(4, 5, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	for _, w := range []int{1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: panic not propagated", w)
				}
			}()
			ForEach(w, 50, func(i int) {
				if i == 13 {
					panic("boom")
				}
			})
		}()
	}
}
