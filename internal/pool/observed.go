package pool

import (
	"time"

	"bf4/internal/obs"
)

// ObservedForEach is ForEach with worker-utilization metrics: per scope it
// maintains
//
//	bf4_pool_<scope>_tasks_total    tasks completed
//	bf4_pool_<scope>_busy_ns_total  summed wall time inside fn
//	bf4_pool_<scope>_workers        goroutines granted to the last call
//
// busy_ns against (workers × elapsed) is the pool's utilization; a large
// gap means the task list was too short or too skewed for the fan-out.
// A nil registry delegates to the plain ForEach — zero overhead, same
// scheduling, identical results either way.
func ObservedForEach(reg *obs.Registry, scope string, workers, n int, fn func(i int)) {
	if reg == nil {
		ForEach(workers, n, fn)
		return
	}
	tasks := reg.Counter("bf4_pool_" + scope + "_tasks_total")
	busy := reg.Counter("bf4_pool_" + scope + "_busy_ns_total")
	w := Workers(workers)
	if w > n && n > 0 {
		w = n
	}
	reg.Gauge("bf4_pool_" + scope + "_workers").Set(int64(w))
	ForEach(workers, n, func(i int) {
		start := time.Now()
		fn(i)
		busy.Add(int64(time.Since(start)))
		tasks.Inc()
	})
}

// ObservedMap is Map with the same metrics as ObservedForEach. The result
// slice is identical to Map's for every worker count and for nil reg.
func ObservedMap[T any](reg *obs.Registry, scope string, workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ObservedForEach(reg, scope, workers, n, func(i int) { out[i] = fn(i) })
	return out
}
