// Package pool provides the bounded worker pool underlying bf4's
// parallel execution layers: per-table-instance annotation inference
// (internal/infer) and corpus-level experiment fan-out
// (internal/experiments). The core contract is deterministic ordered
// collection: Map runs tasks concurrently but returns results indexed by
// task, so callers that merge in index order produce byte-identical
// output regardless of the worker count or goroutine interleaving.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: n itself when n >= 1,
// otherwise GOMAXPROCS (the "use the whole machine" default).
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(i) for every i in [0, n) on at most
// Workers(workers) goroutines and waits for all of them. A panic in any
// task is re-raised in the caller after the remaining workers drain.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs fn(0..n-1) concurrently and returns the results in index
// order. The result slice is identical for every worker count.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for fallible tasks. All tasks run to completion; if any
// failed, the error of the lowest-indexed failure is returned (a
// deterministic choice) together with the partial results.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(workers, n, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
