// Package infer implements bf4's controller-annotation inference: the
// Infer algorithm (paper Algorithm 1), its fast per-table approximation
// Fast-Infer (Algorithm 2), the multi-table heuristic and the
// dontCare-constrained OK refinement (§4.2). The output is, per table
// instance, a set of forbidden rule shapes — predicates over control
// variables (keys, masks, action selector, action data) that no sane
// controller may satisfy, because every packet hitting such a rule
// triggers a bug. The runtime shim (internal/shim) enforces them; the
// verifier re-checks bug reachability under them to report "bugs after
// Infer" (Table 1).
package infer

import (
	"sort"
	"time"

	"bf4/internal/core"
	"bf4/internal/ir"
	"bf4/internal/obs"
	"bf4/internal/pool"
	"bf4/internal/smt"
	"bf4/internal/solver"
)

// Assertion is one table's inferred controller annotation.
type Assertion struct {
	Instance *ir.TableInstance
	// Forbidden holds conjunctions over control variables; a rule
	// satisfying any of them is buggy and must be blocked.
	Forbidden []*smt.Term
	// Linked, when non-nil, marks a multi-table assertion: the forbidden
	// terms range over both instances' control variables.
	Linked *ir.TableInstance
	// Source records which algorithm produced the assertion.
	Source string
}

// Predicate returns the conjunction ¬f1 ∧ ¬f2 ∧ ... that rules must
// satisfy.
func (a *Assertion) Predicate(f *smt.Factory) *smt.Term {
	out := f.True()
	for _, t := range a.Forbidden {
		out = f.And(out, f.Not(t))
	}
	return out
}

// Result is the outcome of annotation inference over a whole program.
type Result struct {
	Assertions []*Assertion
	// Controlled maps bug nodes that became unreachable under the
	// inferred predicates.
	Controlled map[*ir.Node]bool
	// Uncontrolled lists bugs that remain reachable.
	Uncontrolled []*core.Bug

	FastInferTime time.Duration
	InferTime     time.Duration
	RecheckTime   time.Duration
	InferCalls    int
}

// CombinedPredicate conjoins every assertion's predicate.
func (r *Result) CombinedPredicate(f *smt.Factory) *smt.Term {
	out := f.True()
	for _, a := range r.Assertions {
		out = f.And(out, a.Predicate(f))
	}
	return out
}

// Options tune the inference pipeline (ablation hooks for the
// evaluation).
type Options struct {
	// UseFastInfer runs Algorithm 2 first (paper default: on).
	UseFastInfer bool
	// UseInfer runs Algorithm 1 for bugs Fast-Infer left uncontrolled.
	UseInfer bool
	// UseMultiTable enables the multi-table heuristic.
	UseMultiTable bool
	// UseDontCare constrains OK with ¬reach(dontCare).
	UseDontCare bool
	// MaxInferIterations bounds Algorithm 1's loop per assert point.
	MaxInferIterations int
	// Workers bounds the per-table-instance inference fan-out; <= 0
	// means GOMAXPROCS. Each worker task owns its own solvers (solvers
	// are stateful and must never be shared across goroutines) and
	// results are merged in a fixed instance order, so Run's output is
	// identical for every worker count.
	Workers int
	// Obs, when non-nil, receives phase timings, pool utilization and
	// per-query solver telemetry; Trace parents the phase spans. Both
	// default nil, and the inference output — assertions, controlled set,
	// uncontrolled list — is identical either way.
	Obs   *obs.Registry
	Trace *obs.Span
}

// DefaultOptions matches the paper's configuration.
func DefaultOptions() Options {
	return Options{
		UseFastInfer:       true,
		UseInfer:           true,
		UseMultiTable:      true,
		UseDontCare:        true,
		MaxInferIterations: 200,
	}
}

// Run performs annotation inference for every assert point, following
// the paper's strategy: Fast-Infer first; Infer only for bugs Fast-Infer
// does not control; finally the multi-table heuristic for what remains.
//
// Every phase fans its per-table-instance work out over a bounded worker
// pool (Options.Workers). Solver reuse remains the efficiency lever, but
// ownership is strict: the bug reachability solver from FindBugs (every
// bug condition already blasted) serves all predicate rechecks serially,
// while each Infer task owns a private dual solver holding the OK
// formula that serves that instance's whole model/core loop. Isolating
// the dual solver per instance — rather than sharing one across all
// instances — is what makes the inferred cubes independent of scheduling:
// unsat cores depend on learned-clause state, so any sharing would make
// the output depend on which instances a worker happened to process
// first. Results are merged in instance order, so Assertions and
// Uncontrolled are byte-identical for every worker count.
func Run(pl *core.Pipeline, rep *core.Report, opts Options) *Result {
	f := pl.IR.F
	workers := pool.Workers(opts.Workers)
	res := &Result{Controlled: map[*ir.Node]bool{}}
	re := &rechecker{pl: pl, res: res, s: rep.S, obs: opts.Obs, trace: opts.Trace}
	if re.s == nil {
		re.s = solver.New(f)
		re.s.SetObs(opts.Obs)
	}

	reachableBugs := make([]*core.Bug, 0, len(rep.Bugs))
	for _, b := range rep.Bugs {
		if b.Reachable {
			reachableBugs = append(reachableBugs, b)
		}
	}

	// Phase 1: Fast-Infer on every instance, in parallel (pure symbolic
	// execution over the shared term factory; no solver involved).
	if opts.UseFastInfer {
		start := time.Now()
		sp, done := obs.StartPhase(opts.Obs, opts.Trace, "fastinfer")
		fast := pool.ObservedMap(opts.Obs, "fastinfer", workers, len(pl.IR.Instances), func(i int) *Assertion {
			return FastInfer(pl, pl.IR.Instances[i])
		})
		for _, a := range fast {
			if a != nil && len(a.Forbidden) > 0 {
				res.Assertions = append(res.Assertions, a)
			}
		}
		sp.SetMetric("assertions", int64(len(res.Assertions)))
		done()
		res.FastInferTime = time.Since(start)
	}

	// Recheck which bugs remain reachable under current predicates.
	uncontrolled := re.recheck(reachableBugs)

	// Phase 2: Infer for assert points that still dominate uncontrolled
	// bugs, one task (and one private dual solver) per instance.
	if opts.UseInfer && len(uncontrolled) > 0 {
		start := time.Now()
		sp, phaseDone := obs.StartPhase(opts.Obs, opts.Trace, "infer")
		byInstance := map[*ir.TableInstance][]*core.Bug{}
		for _, b := range uncontrolled {
			if b.Instance != nil {
				byInstance[b.Instance] = append(byInstance[b.Instance], b)
			}
		}
		ok := pl.FullReach.OK
		if opts.UseDontCare {
			ok = f.And(ok, f.Not(pl.FullReach.DontCareReach))
		}
		var insts []*ir.TableInstance
		for _, inst := range pl.IR.Instances {
			if len(byInstance[inst]) > 0 {
				insts = append(insts, inst)
			}
		}
		type inferOut struct {
			a     *Assertion
			calls int
		}
		outs := pool.ObservedMap(opts.Obs, "infer", workers, len(insts), func(i int) inferOut {
			inst := insts[i]
			dual := solver.New(f)
			dual.SetObs(opts.Obs)
			// Model-enumeration solvers run without the term-level
			// rewrite pass: rewriting is verdict-preserving but not
			// model-preserving, and Infer's cubes are built from models
			// and unsat cores, so keeping the circuit fixed is what makes
			// the inferred annotations identical under -rewrite=on/off.
			dual.SetRewrite(nil)
			dual.Assert(ok)
			var out inferOut
			out.a = inferShared(pl, dual, inst, byInstance[inst], opts, &out.calls)
			return out
		})
		for _, o := range outs {
			res.InferCalls += o.calls
			if o.a != nil && len(o.a.Forbidden) > 0 {
				res.Assertions = append(res.Assertions, o.a)
			}
		}
		if opts.Obs != nil {
			opts.Obs.Counter("bf4_infer_calls_total").Add(int64(res.InferCalls))
		}
		sp.SetMetric("instances", int64(len(insts)))
		sp.SetMetric("calls", int64(res.InferCalls))
		phaseDone()
		res.InferTime = time.Since(start)
		uncontrolled = re.recheck(uncontrolled)
	}

	// Phase 3: multi-table heuristic for the stragglers.
	if opts.UseMultiTable && len(uncontrolled) > 0 {
		_, done := obs.StartPhase(opts.Obs, opts.Trace, "multitable")
		for _, a := range MultiTable(pl, uncontrolled, workers) {
			if len(a.Forbidden) > 0 {
				res.Assertions = append(res.Assertions, a)
			}
		}
		done()
		uncontrolled = re.recheck(uncontrolled)
	}

	res.Uncontrolled = uncontrolled
	return res
}

// rechecker incrementally re-verifies bug reachability under the growing
// predicate set, asserting only assertions added since the last call and
// re-checking only still-uncontrolled bugs.
type rechecker struct {
	pl       *core.Pipeline
	res      *Result
	s        *solver.Solver
	asserted int
	obs      *obs.Registry
	trace    *obs.Span
}

func (re *rechecker) recheck(candidates []*core.Bug) []*core.Bug {
	start := time.Now()
	sp, done := obs.StartPhase(re.obs, re.trace, "recheck")
	sp.SetMetric("candidates", int64(len(candidates)))
	defer done()
	defer func() { re.res.RecheckTime += time.Since(start) }()
	f := re.pl.IR.F
	for ; re.asserted < len(re.res.Assertions); re.asserted++ {
		re.s.Assert(re.res.Assertions[re.asserted].Predicate(f))
	}
	var out []*core.Bug
	for _, b := range candidates {
		// Assumption-based Check, not a retractable scope: rechecks revisit
		// the same conditions many times, so the assumption path reuses the
		// blasted circuit via the term memo, while a scope would mint a
		// fresh activation variable and guard clauses per visit. On an
		// incremental bug-check solver the recheck still profits from the
		// inprocessed (smaller) clause database FindBugs left behind.
		if re.s.Check(b.Cond) == solver.Sat {
			out = append(out, b)
		} else {
			re.res.Controlled[b.Node] = true
		}
	}
	return out
}

// ------------------------------------------------------------- Infer

// atomsFor generates the atom set P for an assert point: boolean
// predicates over the instance's control variables, derived syntactically
// (paper §4.2): hit, action_run selections, zero-mask tests, value tests
// for 1-bit keys, plus any branch condition in the expansion whose
// variables are all controlled.
func atomsFor(pl *core.Pipeline, inst *ir.TableInstance) []*smt.Term {
	f := pl.IR.F
	var atoms []*smt.Term
	atoms = append(atoms, inst.HitVar.Term)
	// Iterate action indices in sorted order: the atom order feeds solver
	// assumptions, and map-range order would make unsat cores (and hence
	// the inferred cubes) vary run to run.
	idxs := make([]int, 0, len(inst.ActIndex))
	for _, idx := range inst.ActIndex {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		atoms = append(atoms, f.Eq(inst.ActVar.Term, f.BVConst64(int64(idx), 8)))
	}
	for j, k := range inst.Table.Keys {
		if inst.MaskVars[j] != nil {
			atoms = append(atoms, f.Eq(inst.MaskVars[j].Term, f.BVConst64(0, k.Width)))
		}
		if k.Width == 1 {
			atoms = append(atoms, f.Eq(inst.KeyVars[j].Term, f.BVConst64(1, 1)))
		}
	}
	// Branch conditions in the expansion region whose variables are all
	// control variables of this instance.
	controlled := controlledSet(inst)
	for _, n := range regionNodes(pl.IR, inst) {
		if n.Kind != ir.Branch {
			continue
		}
		if termControlled(pl.IR, n.Expr, controlled) && !n.Expr.IsTrue() && !n.Expr.IsFalse() {
			atoms = append(atoms, n.Expr)
		}
	}
	return dedupeTerms(atoms)
}

func dedupeTerms(ts []*smt.Term) []*smt.Term {
	seen := map[*smt.Term]bool{}
	out := ts[:0]
	for _, t := range ts {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// controlledSet returns the instance's control variables (Γ).
func controlledSet(inst *ir.TableInstance) map[string]bool {
	out := map[string]bool{}
	add := func(v *ir.Var) {
		if v != nil {
			out[v.Name] = true
		}
	}
	add(inst.HitVar)
	add(inst.ActVar)
	for _, v := range inst.KeyVars {
		add(v)
	}
	for _, v := range inst.MaskVars {
		add(v)
	}
	for _, ps := range inst.ParamVars {
		for _, v := range ps {
			add(v)
		}
	}
	for _, v := range inst.DefaultParamVars {
		add(v)
	}
	return out
}

// termControlled reports whether every variable of t (resolved to its
// base) is in the controlled set. Versioned variables other than version
// 0 are never controlled.
func termControlled(p *ir.Program, t *smt.Term, controlled map[string]bool) bool {
	for _, vt := range t.Vars(nil) {
		if !controlled[vt.Name()] {
			return false
		}
	}
	return true
}

// regionNodes returns the nodes of an instance's expansion (between
// Apply and Join).
func regionNodes(p *ir.Program, inst *ir.TableInstance) []*ir.Node {
	var out []*ir.Node
	seen := map[*ir.Node]bool{inst.Join: true}
	stack := []*ir.Node{inst.Apply}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
		for _, s := range n.Succs {
			// Nodes created before the apply node belong to the outer
			// program (exit targets, shared terminals).
			if s.ID > inst.Apply.ID || s.Kind == ir.BugTerm {
				stack = append(stack, s)
			}
		}
	}
	return out
}

// Infer is the paper's Algorithm 1: iteratively sample bad runs, widen
// each model to a cube over the atom set, verify the cube excludes no
// good run (dual solver + unsat core generalization), and block it.
// This standalone entry point builds its own dual solver; Run uses the
// shared-solver variant.
func Infer(pl *core.Pipeline, inst *ir.TableInstance, bugs []*core.Bug, opts Options, calls *int) *Assertion {
	f := pl.IR.F
	ok := pl.FullReach.OK
	if opts.UseDontCare {
		ok = f.And(ok, f.Not(pl.FullReach.DontCareReach))
	}
	dual := solver.New(f)
	dual.SetRewrite(nil) // model enumeration must be rewrite-independent
	dual.Assert(ok)
	return inferShared(pl, dual, inst, bugs, opts, calls)
}

// inferShared runs Algorithm 1 against a shared dual solver holding the
// OK formula. The assert point's reachability condition is passed as an
// extra assumption and filtered out of the unsat core, so the resulting
// cubes range over control-variable atoms only.
func inferShared(pl *core.Pipeline, dual *solver.Solver, inst *ir.TableInstance, bugs []*core.Bug, opts Options, calls *int) *Assertion {
	f := pl.IR.F
	atoms := atomsFor(pl, inst)
	if len(atoms) == 0 {
		return nil
	}
	reachAP := pl.FullReach.Cond[inst.Apply]
	if reachAP == nil {
		return nil
	}

	// BUG: disjunction of the dominated bugs' reachability conditions.
	bug := f.False()
	for _, b := range bugs {
		bug = f.Or(bug, b.Cond)
	}
	if bug.IsFalse() {
		return nil
	}

	direct := solver.New(f)
	direct.SetObs(opts.Obs)
	direct.SetRewrite(nil) // model enumeration must be rewrite-independent
	direct.Assert(bug)

	atomSet := map[*smt.Term]bool{}
	for _, p := range atoms {
		atomSet[p] = true
		atomSet[f.Not(p)] = true
	}

	a := &Assertion{Instance: inst, Source: "infer"}
	for iter := 0; iter < opts.MaxInferIterations; iter++ {
		*calls++
		if direct.Check() != solver.Sat {
			return a
		}
		model := direct.Model()
		assumptions := make([]*smt.Term, 0, len(atoms)+1)
		for _, p := range atoms {
			if smt.EvalBool(p, model) {
				assumptions = append(assumptions, p)
			} else {
				assumptions = append(assumptions, f.Not(p))
			}
		}
		cubeAll := f.And(assumptions...)
		assumptions = append(assumptions, reachAP)
		if dual.Check(assumptions...) == solver.Unsat {
			// The cube excludes no good run through the table;
			// generalize via the unsat core restricted to the atoms.
			var lits []*smt.Term
			for _, c := range dual.UnsatCore() {
				if atomSet[c] {
					lits = append(lits, c)
				}
			}
			cube := cubeAll
			if len(lits) > 0 {
				cube = f.And(lits...)
			}
			a.Forbidden = append(a.Forbidden, cube)
			direct.Assert(f.Not(cube))
		} else {
			// The cube contains good runs: block this sample and retry.
			direct.Assert(f.Not(cubeAll))
		}
	}
	return a
}
