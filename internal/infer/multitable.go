package infer

import (
	"bf4/internal/core"
	"bf4/internal/ir"
	"bf4/internal/pool"
	"bf4/internal/smt"
)

// MultiTable implements the paper's multi-table heuristic (§4.2): when a
// table t2 has bugs that single-table inference cannot control, and an
// earlier table t1 whose apply dominates t2's and whose key set is a
// subset of t2's exists, symbolic execution is restarted from t1's assert
// point. Path conditions then mention both instances' control variables
// — packets hitting an entry of t2 provably hit a specific entry shape of
// t1 (keys are linked through the shared packet fields) — and wholly
// controlled bug paths yield two-table assertions.
// Each t2 with uncontrolled bugs is an independent task, fanned out over
// the worker pool (workers <= 0 means GOMAXPROCS); per-task results keep
// the deterministic inner t1 order and are merged in instance order.
func MultiTable(pl *core.Pipeline, uncontrolled []*core.Bug, workers int) []*Assertion {
	byInstance := map[*ir.TableInstance][]*core.Bug{}
	for _, b := range uncontrolled {
		if b.Instance != nil {
			byInstance[b.Instance] = append(byInstance[b.Instance], b)
		}
	}
	var targets []*ir.TableInstance
	for _, t2 := range pl.IR.Instances {
		if len(byInstance[t2]) > 0 {
			targets = append(targets, t2)
		}
	}
	found := pool.Map(workers, len(targets), func(i int) *Assertion {
		t2 := targets[i]
		for _, t1 := range pl.IR.Instances {
			if t1 == t2 || !pl.Doms.Dominates(t1.Apply, t2.Apply) {
				continue
			}
			if !keysSubset(t1.Table, t2.Table) {
				continue
			}
			a := fastInferLinked(pl, t1, t2)
			if a != nil && len(a.Forbidden) > 0 {
				return a
			}
		}
		return nil
	})
	var out []*Assertion
	for _, a := range found {
		if a != nil {
			out = append(out, a)
		}
	}
	return out
}

// primeEnv seeds the symbolic environment with facts that hold on EVERY
// run reaching the assert point: assignments whose node dominates it and
// that are not clobbered by any later possible writer. This is what lets
// the multi-table exploration know, e.g., that inner_ipv4 was invalidated
// right before t1 (the paper's H.setInvalid(); t1.apply(); t2.apply()
// pattern).
func primeEnv(pl *core.Pipeline, ap *ir.Node) *env {
	p := pl.IR
	canReach := map[*ir.Node]bool{ap: true}
	stack := []*ir.Node{ap}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, pr := range n.Preds {
			if !canReach[pr] {
				canReach[pr] = true
				stack = append(stack, pr)
			}
		}
	}
	var e *env
	// Topological order respects edges, so for any path containing both a
	// dominating writer and an off-path writer, the later one (in topo
	// order) is processed later; off-path writers invalidate.
	for _, n := range p.Topo() {
		if n == ap {
			break
		}
		if !canReach[n] {
			continue
		}
		switch n.Kind {
		case ir.Assign:
			if pl.Doms.Dominates(n, ap) {
				rhs := n.Expr
				if e != nil {
					m := map[*smt.Term]*smt.Term{}
					for _, vt := range rhs.Vars(nil) {
						if v := e.get(vt); v != nil && v != vt {
							m[vt] = v
						}
					}
					if len(m) > 0 {
						rhs = smt.Substitute(p.F, rhs, m)
					}
				}
				e = e.set(n.Var.Term, rhs)
			} else {
				e = e.set(n.Var.Term, n.Var.Term)
			}
		case ir.Havoc:
			e = e.set(n.Var.Term, n.Var.Term)
		}
	}
	return e
}

// containsConjunct reports whether pc (a conjunction) contains t as a
// top-level conjunct.
func containsConjunct(pc, t *smt.Term) bool {
	if pc == t {
		return true
	}
	if pc.Op() == smt.OpAnd {
		for _, a := range pc.Args() {
			if a == t {
				return true
			}
		}
	}
	return false
}

// keysSubset reports whether every key path of t1 also appears in t2
// (the paper's "keys of t2 are a superset of t1" condition).
func keysSubset(t1, t2 *ir.Table) bool {
	have := map[string]bool{}
	for _, k := range t2.Keys {
		have[k.Path] = true
	}
	for _, k := range t1.Keys {
		if k.Path == "" || !have[k.Path] {
			return false
		}
	}
	return len(t1.Keys) > 0
}

// fastInferLinked runs the Fast-Infer executor from t1's assert point to
// t2's join, with both instances' variables controlled; only bug paths
// belonging to t2's region are kept.
func fastInferLinked(pl *core.Pipeline, t1, t2 *ir.TableInstance) *Assertion {
	controlled := controlledSet(t1)
	for k := range controlledSet(t2) {
		controlled[k] = true
	}
	ex := &symbex{
		p:          pl.IR,
		f:          pl.IR.F,
		inst:       t2,
		stop:       t2.Join,
		controlled: controlled,
		boundary:   t1.Apply.ID,
	}
	ex.run(t1.Apply, ex.f.True(), primeEnv(pl, t1.Apply))
	a := &Assertion{Instance: t2, Linked: t1, Source: "multi-table"}
	c1, c2 := controlledSet(t1), controlledSet(t2)
	f := pl.IR.F
	negHit1, negHit2 := f.Not(t1.HitVar.Term), f.Not(t2.HitVar.Term)
	for _, pc := range ex.bugPCs {
		if !termControlled(pl.IR, pc, controlled) {
			continue
		}
		// A negated hit means the path relies on a table MISS, which is a
		// property of the whole rule set — not of the (e1, e2) pair — so
		// forbidding it would block rules with good runs.
		if containsConjunct(pc, negHit1) || containsConjunct(pc, negHit2) {
			continue
		}
		// Keep only conditions that genuinely link the two tables;
		// single-table conditions are already covered by FastInfer.
		var in1, in2 bool
		for _, vt := range pc.Vars(nil) {
			if c1[vt.Name()] {
				in1 = true
			}
			if c2[vt.Name()] {
				in2 = true
			}
		}
		if in1 && in2 {
			a.Forbidden = append(a.Forbidden, pc)
		}
	}
	a.Forbidden = dedupeTerms(a.Forbidden)
	return a
}
