package infer

import (
	"strings"
	"testing"

	"bf4/internal/solver"
)

func TestUserAssertionAccepted(t *testing.T) {
	pl, _ := compileAndFind(t, natSrc)
	// The paper's predicate, hand-written: a rule expecting an invalid
	// ipv4 header must not match on srcAddr (nonzero ternary mask) —
	// every packet hitting such a rule reads an invalid field.
	a, err := UserAssertion(pl, "nat",
		"(and |pcn_nat$0.hit| (= |pcn_nat$0.key0| (_ bv0 1)) (not (= |pcn_nat$0.mask1| (_ bv0 32))))")
	if err != nil {
		t.Fatalf("safe annotation rejected: %v", err)
	}
	if a.Source != "user" || len(a.Forbidden) != 1 {
		t.Fatalf("assertion: %+v", a)
	}
}

func TestUserAssertionUnsafe(t *testing.T) {
	pl, _ := compileAndFind(t, natSrc)
	// Forbidding every hit would block rules good runs need.
	_, err := UserAssertion(pl, "nat", "|pcn_nat$0.hit|")
	if err == nil {
		t.Fatal("annotation that blocks all hits accepted")
	}
	if !strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("error: %v", err)
	}
}

func TestUserAssertionBadInputs(t *testing.T) {
	pl, _ := compileAndFind(t, natSrc)
	if _, err := UserAssertion(pl, "nope", "true"); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := UserAssertion(pl, "nat", "(and"); err == nil {
		t.Fatal("malformed condition accepted")
	}
	// Conditions over non-control variables are rejected at parse time
	// (the sort environment only contains the table's control variables).
	if _, err := UserAssertion(pl, "nat", "|hdr.ipv4.ttl|"); err == nil {
		t.Fatal("non-control variable accepted")
	}
}

func TestUserAssertionComposesWithInference(t *testing.T) {
	pl, rep := compileAndFind(t, natSrc)
	res := Run(pl, rep, DefaultOptions())
	a, err := UserAssertion(pl, "nat",
		"(and |pcn_nat$0.hit| (= |pcn_nat$0.key0| (_ bv0 1)) (not (= |pcn_nat$0.mask1| (_ bv0 32))))")
	if err != nil {
		t.Fatal(err)
	}
	res.Assertions = append(res.Assertions, a)
	// The combined predicate must still not remove good runs.
	f := pl.IR.F
	s := solver.New(f)
	ok := f.And(pl.FullReach.OK, f.Not(pl.FullReach.DontCareReach))
	s.Assert(f.And(ok, f.Not(res.CombinedPredicate(f))))
	if got := s.Check(); got != solver.Unsat {
		t.Fatalf("combined predicate removes good runs: %v", got)
	}
}
