package infer

import (
	"fmt"

	"bf4/internal/core"
	"bf4/internal/ir"
	"bf4/internal/smt"
	"bf4/internal/solver"
)

// UserAssertion parses a user-authored forbidden-rule condition for a
// table and verifies it is safe: it must not exclude any good run (the
// paper's §4.6 names user-defined annotations as an unimplemented
// extension; safety is Theorem 7.1's side condition, checked here with
// the solver). The condition is an S-expression over the table's control
// variables, e.g.
//
//	(and |pcn_nat$0.hit| (= |pcn_nat$0.key1| (_ bv0 1)))
//
// On success the returned assertion composes with the inferred ones; if
// the condition would block a rule some good run needs, an error
// describing a witness is returned.
func UserAssertion(pl *core.Pipeline, table string, forbidden string) (*Assertion, error) {
	var inst *ir.TableInstance
	for _, i := range pl.IR.Instances {
		if i.Table.Name == table {
			inst = i
			break
		}
	}
	if inst == nil {
		return nil, fmt.Errorf("infer: unknown table %q", table)
	}

	sorts := smt.VarSorts{}
	for name := range controlledSet(inst) {
		v := pl.IR.Vars[name]
		sorts[name] = v.Sort
	}
	f := pl.IR.F
	term, err := smt.Parse(f, forbidden, sorts)
	if err != nil {
		return nil, fmt.Errorf("infer: table %s: %w (conditions may only use the table's control variables)", table, err)
	}
	if !termControlled(pl.IR, term, controlledSet(inst)) {
		return nil, fmt.Errorf("infer: table %s: condition uses non-control variables", table)
	}

	// Safety: no good run through the assert point may satisfy the
	// forbidden shape (otherwise blocking it removes behaviour the
	// program needs).
	ok := f.And(pl.FullReach.OK, f.Not(pl.FullReach.DontCareReach))
	reachAP := pl.FullReach.Cond[inst.Apply]
	s := solver.New(f)
	s.Assert(f.And(ok, reachAP, term))
	if s.Check() == solver.Sat {
		m := s.Model()
		detail := ""
		for name := range sorts {
			if v, okv := m[name]; okv {
				detail += fmt.Sprintf(" %s=%v", name, v)
			}
		}
		return nil, fmt.Errorf("infer: table %s: unsafe annotation — a good run uses a rule matching it (witness:%s)", table, detail)
	}
	return &Assertion{Instance: inst, Forbidden: []*smt.Term{term}, Source: "user"}, nil
}
