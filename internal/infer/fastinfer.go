package infer

import (
	"bf4/internal/core"
	"bf4/internal/ir"
	"bf4/internal/smt"
)

// maxPaths bounds the symbolic exploration of one table region; table
// expansions are small (≈ #actions × #checks paths), so hitting the bound
// indicates a pathological program and degrades gracefully to "no
// assertion".
const maxPaths = 4096

// FastInfer is the paper's Algorithm 2: symbolically execute the table's
// expansion from its assert point, collect the path condition of every
// path that ends in a bug, and emit ¬pc as a necessary precondition
// whenever pc mentions only controlled variables.
//
// The executor propagates match equalities as substitutions (e.g. an
// exact key over hdr.x.isValid() rewrites the validity bit in terms of
// the entry's key variable), which is what lets path conditions become
// fully controlled for tables that match on the right expressions — and
// is why adding keys (the Fixes algorithm) turns uncontrollable bugs into
// controllable ones.
func FastInfer(pl *core.Pipeline, inst *ir.TableInstance) *Assertion {
	ex := &symbex{
		p:          pl.IR,
		f:          pl.IR.F,
		inst:       inst,
		stop:       inst.Join,
		controlled: controlledSet(inst),
		boundary:   inst.Apply.ID,
	}
	ex.run(inst.Apply, ex.f.True(), nil)
	a := &Assertion{Instance: inst, Source: "fast-infer"}
	for _, pc := range ex.bugPCs {
		if termControlled(pl.IR, pc, ex.controlled) {
			a.Forbidden = append(a.Forbidden, pc)
		}
	}
	a.Forbidden = dedupeTerms(a.Forbidden)
	return a
}

// symbex is a small-path symbolic executor over one expansion region.
type symbex struct {
	p          *ir.Program
	f          *smt.Factory
	inst       *ir.TableInstance
	stop       *ir.Node
	controlled map[string]bool
	boundary   int

	bugPCs []*smt.Term
	paths  int
}

// env is a persistent substitution: variable base term → current value.
type env struct {
	parent *env
	key    *smt.Term
	val    *smt.Term
}

func (e *env) get(k *smt.Term) *smt.Term {
	for n := e; n != nil; n = n.parent {
		if n.key == k {
			return n.val
		}
	}
	return nil
}

func (e *env) set(k, v *smt.Term) *env {
	return &env{parent: e, key: k, val: v}
}

// subst rewrites version-0 variables in t according to the environment.
func (ex *symbex) subst(t *smt.Term, e *env) *smt.Term {
	if e == nil {
		return t
	}
	m := map[*smt.Term]*smt.Term{}
	for _, vt := range t.Vars(nil) {
		if v := e.get(vt); v != nil && v != vt {
			m[vt] = v
		}
	}
	if len(m) == 0 {
		return t
	}
	return smt.Substitute(ex.f, t, m)
}

// learnEq mines substitutions from an assumed equality: if one side is a
// plain uncontrolled variable (or the ite-encoding of a boolean) and the
// other side is fully controlled, rewrite the variable.
func (ex *symbex) learnEq(cond *smt.Term, e *env) *env {
	if cond.Op() != smt.OpEq {
		return e
	}
	a, b := cond.Arg(0), cond.Arg(1)
	e = ex.tryBind(a, b, e)
	e = ex.tryBind(b, a, e)
	return e
}

func (ex *symbex) tryBind(lhs, rhs *smt.Term, e *env) *env {
	if !termControlled(ex.p, rhs, ex.controlled) {
		return e
	}
	switch lhs.Op() {
	case smt.OpVar:
		if !ex.controlled[lhs.Name()] && e.get(lhs) == nil {
			return e.set(lhs, rhs)
		}
	case smt.OpIte:
		// ite(v, 1, 0) == rhs  with boolean v: bind v := (rhs == 1).
		c := lhs.Arg(0)
		tt, ff := lhs.Arg(1), lhs.Arg(2)
		if c.Op() == smt.OpVar && !ex.controlled[c.Name()] && e.get(c) == nil &&
			tt.IsConst() && ff.IsConst() && tt.Const().Sign() != 0 && ff.Const().Sign() == 0 {
			return e.set(c, ex.f.Eq(rhs, tt))
		}
	}
	return e
}

func (ex *symbex) run(n *ir.Node, pc *smt.Term, e *env) {
	for {
		if ex.paths > maxPaths || pc.IsFalse() {
			return
		}
		if n == ex.stop {
			ex.paths++ // exits the table: a good run by assumption
			return
		}
		switch n.Kind {
		case ir.BugTerm:
			ex.paths++
			ex.bugPCs = append(ex.bugPCs, pc)
			return
		case ir.UnreachTerm:
			ex.paths++ // infeasible
			return
		case ir.AcceptTerm, ir.RejectTerm:
			ex.paths++ // left the region cleanly
			return
		case ir.Assign:
			rhs := ex.subst(n.Expr, e)
			e = e.set(n.Var.Term, rhs)
		case ir.Havoc:
			// Havoc invalidates prior knowledge of the variable by
			// binding it to itself (stops substitution of stale values).
			e = e.set(n.Var.Term, n.Var.Term)
		case ir.Branch:
			cond := ex.subst(n.Expr, e)
			if len(n.Succs) != 2 {
				return
			}
			tSucc, fSucc := n.Succs[0], n.Succs[1]
			if cond.IsTrue() {
				n = tSucc
				continue
			}
			if cond.IsFalse() {
				n = fSucc
				continue
			}
			// True side may teach us a substitution (match assumes);
			// rewrite the assumed condition with it so path conditions
			// are expressed over controlled variables where possible
			// (e.g. ¬valid becomes key0 != 1 after an isValid key match).
			te := ex.learnEq(cond, e)
			condT := ex.subst(cond, te)
			if ex.isAssume(fSucc) {
				// Match relation: holds by definition for every packet
				// that hits the entry. Keep it in the path condition only
				// when it constrains the entry itself; an uncontrolled
				// residue (packet fields) is implied by "hit" and can be
				// soundly dropped — this is what makes ¬pc a predicate
				// over rules alone.
				if termControlled(ex.p, condT, ex.controlled) {
					pc = ex.f.And(pc, condT)
				}
				e = te
				n = tSucc
				continue
			}
			if ex.inRegion(tSucc) {
				ex.run(tSucc, ex.f.And(pc, condT), te)
			} else {
				ex.paths++
			}
			// Continue iteratively on the false side, where the learned
			// equality does not hold: use the un-rewritten condition.
			pc = ex.f.And(pc, ex.f.Not(cond))
			n = fSucc
			if !ex.inRegion(n) {
				ex.paths++
				return
			}
			continue
		}
		if len(n.Succs) == 0 {
			ex.paths++
			return
		}
		n = n.Succs[0]
		if !ex.inRegion(n) {
			ex.paths++ // left the region (exit statement): good run
			return
		}
	}
}

// isAssume reports whether a branch's false successor leads to the
// unreachable terminal, i.e. the branch encodes an assumption (match
// relation) rather than program control flow.
func (ex *symbex) isAssume(fSucc *ir.Node) bool {
	if fSucc.Kind == ir.UnreachTerm {
		return true
	}
	return fSucc.Kind == ir.Nop && len(fSucc.Succs) == 1 && fSucc.Succs[0].Kind == ir.UnreachTerm
}

// inRegion reports whether a node belongs to this instance's expansion:
// expansion nodes are created after the apply node, and the join node
// terminates the walk separately.
func (ex *symbex) inRegion(n *ir.Node) bool {
	return n.ID > ex.boundary || n == ex.stop ||
		n.Kind == ir.BugTerm || n.Kind == ir.UnreachTerm
}
