package infer

import (
	"testing"

	"bf4/internal/core"
	"bf4/internal/ir"
	"bf4/internal/smt"
	"bf4/internal/solver"
)

const natSrc = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<32> srcAddr; bit<32> dstAddr; }
struct meta_t { bit<1> do_forward; bit<32> nhop; }
struct metadata { meta_t meta; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; }

parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
}

control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    action drop_() { mark_to_drop(smeta); }
    action nat_hit(bit<32> a) {
        meta.meta.do_forward = 1w1;
        meta.meta.nhop = a;
    }
    table nat {
        key = { hdr.ipv4.isValid(): exact; hdr.ipv4.srcAddr: ternary; }
        actions = { drop_; nat_hit; }
        default_action = drop_();
    }
    action set_nhop(bit<32> nhop, bit<9> port) {
        meta.meta.nhop = nhop;
        smeta.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table ipv4_lpm {
        key = { meta.meta.nhop: lpm; }
        actions = { set_nhop; drop_; }
    }
    apply {
        nat.apply();
        if (meta.meta.do_forward == 1w1) {
            ipv4_lpm.apply();
        }
    }
}

control Eg(inout headers hdr, inout metadata meta,
           inout standard_metadata_t smeta) { apply { } }
control Dep(packet_out pkt, in headers hdr) { apply { pkt.emit(hdr.ipv4); } }

V1Switch(P(), Ing(), Eg(), Dep()) main;
`

func compileAndFind(t *testing.T, src string) (*core.Pipeline, *core.Report) {
	t.Helper()
	pl, err := core.Compile(src, ir.DefaultOptions(), true)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return pl, pl.FindBugs()
}

func findInstance(pl *core.Pipeline, table string) *ir.TableInstance {
	for _, inst := range pl.IR.Instances {
		if inst.Table.Name == table {
			return inst
		}
	}
	return nil
}

func TestFastInferControlsNATKeyBug(t *testing.T) {
	pl, _ := compileAndFind(t, natSrc)
	nat := findInstance(pl, "nat")
	a := FastInfer(pl, nat)
	if a == nil || len(a.Forbidden) == 0 {
		t.Fatal("Fast-Infer produced no assertion for nat")
	}
	// The forbidden shape must reject the paper's faulty rule
	// (isValid key = 0, nonzero srcAddr mask) and accept sane rules.
	f := pl.IR.F
	faulty := smt.Env{}
	faulty.SetBool(nat.HitVar.Name, true)
	faulty.SetUint64(nat.KeyVars[0].Name, 0) // entry expects invalid ipv4
	faulty.SetUint64(nat.MaskVars[1].Name, 0xFF000000)
	blockedFaulty := false
	for _, forb := range a.Forbidden {
		if smt.EvalBool(forb, faulty) {
			blockedFaulty = true
		}
	}
	if !blockedFaulty {
		t.Fatalf("faulty rule not blocked; forbidden=%v", a.Forbidden)
	}
	sane := smt.Env{}
	sane.SetBool(nat.HitVar.Name, true)
	sane.SetUint64(nat.KeyVars[0].Name, 1) // valid ipv4 expected
	sane.SetUint64(nat.MaskVars[1].Name, 0xFF000000)
	for _, forb := range a.Forbidden {
		if smt.EvalBool(forb, sane) {
			t.Fatalf("sane rule blocked by %s", forb)
		}
	}
	_ = f
}

func TestRunReducesReachableBugs(t *testing.T) {
	pl, rep := compileAndFind(t, natSrc)
	before := rep.NumReachable()
	res := Run(pl, rep, DefaultOptions())
	after := len(res.Uncontrolled)
	if after >= before {
		t.Fatalf("inference controlled nothing: before=%d after=%d", before, after)
	}
	// The invalid-key-read bug must be controlled.
	for _, b := range res.Uncontrolled {
		if b.Kind == ir.BugInvalidKeyRead {
			t.Errorf("key-read bug still uncontrolled: %s", b.Description())
		}
	}
	// The set_nhop ttl bug cannot be controlled without new keys: it must
	// remain (it is the paper's motivating case for Fixes).
	foundTTL := false
	for _, b := range res.Uncontrolled {
		if (b.Kind == ir.BugInvalidHeaderWrite || b.Kind == ir.BugInvalidHeaderRead) &&
			b.Instance != nil && b.Instance.Table.Name == "ipv4_lpm" {
			foundTTL = true
		}
	}
	if !foundTTL {
		t.Error("ttl bug unexpectedly controlled without added keys")
	}
}

// TestInferNeverRemovesGoodRuns is the paper's Theorem 7.2 invariant:
// OK ⊨ φ — the inferred predicate is implied by every good run.
func TestInferNeverRemovesGoodRuns(t *testing.T) {
	pl, rep := compileAndFind(t, natSrc)
	res := Run(pl, rep, DefaultOptions())
	f := pl.IR.F
	pred := res.CombinedPredicate(f)
	ok := f.And(pl.FullReach.OK, f.Not(pl.FullReach.DontCareReach))
	s := solver.New(f)
	// OK ∧ ¬φ must be unsatisfiable.
	s.Assert(f.And(ok, f.Not(pred)))
	if got := s.Check(); got != solver.Unsat {
		t.Fatalf("inferred predicate removes good runs (OK ∧ ¬φ is %v)", got)
	}
}

func TestControlledBugsBecomeUnreachable(t *testing.T) {
	pl, rep := compileAndFind(t, natSrc)
	res := Run(pl, rep, DefaultOptions())
	f := pl.IR.F
	s := solver.New(f)
	s.Assert(res.CombinedPredicate(f))
	for _, b := range rep.Bugs {
		if !b.Reachable || !res.Controlled[b.Node] {
			continue
		}
		if s.Check(b.Cond) != solver.Unsat {
			t.Errorf("controlled bug still reachable under predicates: %s", b.Description())
		}
	}
}

func TestInferAlgorithmDirectly(t *testing.T) {
	pl, rep := compileAndFind(t, natSrc)
	nat := findInstance(pl, "nat")
	var natBugs []*core.Bug
	for _, b := range rep.Bugs {
		if b.Reachable && b.Instance == nat && b.Kind == ir.BugInvalidKeyRead {
			natBugs = append(natBugs, b)
		}
	}
	if len(natBugs) == 0 {
		t.Fatal("no nat key bug")
	}
	calls := 0
	a := Infer(pl, nat, natBugs, DefaultOptions(), &calls)
	if a == nil || len(a.Forbidden) == 0 {
		t.Fatal("Infer produced nothing for the controllable nat bug")
	}
	if calls == 0 {
		t.Fatal("Infer made no solver iterations")
	}
	// Check the predicate controls the bug.
	f := pl.IR.F
	s := solver.New(f)
	s.Assert(a.Predicate(f))
	if s.Check(natBugs[0].Cond) != solver.Unsat {
		t.Fatal("Infer's predicate does not control the nat bug")
	}
}

func TestAssertionSources(t *testing.T) {
	pl, rep := compileAndFind(t, natSrc)
	res := Run(pl, rep, DefaultOptions())
	if len(res.Assertions) == 0 {
		t.Fatal("no assertions")
	}
	for _, a := range res.Assertions {
		switch a.Source {
		case "fast-infer", "infer", "multi-table":
		default:
			t.Errorf("unknown assertion source %q", a.Source)
		}
		if a.Instance == nil {
			t.Error("assertion without instance")
		}
	}
}

// renderResult flattens a Result into a canonical textual form: every
// assertion (instance, source, forbidden cubes in order) plus the
// uncontrolled bug list. Two Results with the same rendering are
// byte-identical for the purposes of the determinism guarantee.
func renderResult(res *Result) string {
	out := ""
	for _, a := range res.Assertions {
		out += a.Instance.Name() + " [" + a.Source + "]"
		if a.Linked != nil {
			out += " linked=" + a.Linked.Name()
		}
		out += "\n"
		for _, forb := range a.Forbidden {
			out += "  forbid " + forb.String() + "\n"
		}
	}
	for _, b := range res.Uncontrolled {
		out += "uncontrolled " + b.Description() + "\n"
	}
	return out
}

// TestRunDeterministicAcrossWorkerCounts is the parallel engine's core
// guarantee: inference output is byte-identical no matter how many
// workers run it, including across separate compiles (fresh factories).
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	render := func(workers int) string {
		pl, rep := compileAndFind(t, natSrc)
		opts := DefaultOptions()
		opts.Workers = workers
		return renderResult(Run(pl, rep, opts))
	}
	base := render(1)
	if base == "" {
		t.Fatal("no inference output to compare")
	}
	for _, w := range []int{1, 2, 4, 8} {
		if got := render(w); got != base {
			t.Errorf("workers=%d output differs from workers=1:\n--- j1:\n%s--- j%d:\n%s", w, base, w, got)
		}
	}
}

// TestFastInferOverapproximatesInfer checks the paper's containment
// claim (φ ⊨ φ_fast): anything Fast-Infer forbids, Infer's result forbids
// no less — equivalently every rule Infer's φ allows satisfies φ_fast...
// we verify the directly checkable variant: φ_fast's forbidden cubes are
// all inconsistent with OK (they are genuine necessary preconditions).
func TestFastInferForbiddenInconsistentWithOK(t *testing.T) {
	pl, _ := compileAndFind(t, natSrc)
	f := pl.IR.F
	ok := f.And(pl.FullReach.OK, f.Not(pl.FullReach.DontCareReach))
	for _, inst := range pl.IR.Instances {
		a := FastInfer(pl, inst)
		if a == nil {
			continue
		}
		for _, forb := range a.Forbidden {
			s := solver.New(f)
			// A forbidden cube together with "this entry was hit on a
			// good run through the table" must be unsat.
			s.Assert(f.And(ok, pl.FullReach.Cond[inst.Apply], forb))
			if got := s.Check(); got != solver.Unsat {
				t.Errorf("%s: forbidden cube %s consistent with good runs (%v)",
					inst.Name(), forb, got)
			}
		}
	}
}
