// Inprocessing: bounded clause-database simplification between Solve
// calls. Three passes run at decision level 0, in order:
//
//  1. clause cleaning — delete clauses satisfied by level-0 facts and
//     strip false literals (a retracted activation scope asserts ¬act at
//     level 0, which satisfies every guard clause of that scope and
//     strengthens every learnt clause that mentions act to its
//     scope-independent content);
//  2. subsumption and self-subsuming resolution — occurrence-list driven,
//     signature-filtered, budget-bounded;
//  3. bounded variable elimination — resolve out low-occurrence,
//     non-frozen variables when the resolvent set is no larger than the
//     clauses it replaces (the classic no-growth rule).
//
// Every transformation is equivalence-preserving on the frozen variables:
// subsumption and strengthening replace clauses by logical consequences of
// the problem set, and variable elimination preserves all models projected
// onto the remaining variables (deleted clauses are recorded on an
// elimination stack so full models can be reconstructed after Sat).
// Callers must Freeze every variable they will ever mention again — in
// bf4, internal/bitblast freezes every memoized term literal, which covers
// assumption roots and activation literals.
//
// All passes iterate in clause-index and variable-index order, so results
// are deterministic for a given solver history.
package sat

// InprocessOptions bounds one Inprocess pass. The zero value selects
// defaults suitable for bf4's per-slice clause databases.
type InprocessOptions struct {
	// MaxOccur is the occurrence cap for variable elimination: variables
	// appearing in more than this many live problem clauses (both
	// polarities combined) are not candidates. 0 means 10.
	MaxOccur int
	// SubsumeLimit bounds the number of clause-pair comparisons spent in
	// the subsumption phase. 0 means 200000.
	SubsumeLimit int64
}

// InprocessResult summarizes what one Inprocess pass did.
type InprocessResult struct {
	// Deleted counts clauses removed because level-0 facts satisfy them
	// (or they shrank to a unit that became a fact).
	Deleted int
	// Subsumed counts clauses deleted because another clause subsumes them.
	Subsumed int
	// Strengthened counts literals removed by self-subsuming resolution.
	Strengthened int
	// Eliminated lists the variables removed by variable elimination.
	Eliminated []Var
}

// elimEntry is one clause deleted by variable elimination: pivot is the
// literal of the eliminated variable inside lits.
type elimEntry struct {
	pivot Lit
	lits  []Lit
}

// Inprocess simplifies the clause database in place. It must be called at
// decision level 0 (i.e. between Solve calls). It returns a summary of
// the work done; after it runs, eliminated variables must not appear in
// new clauses or assumptions (callers observe the frozen protocol).
func (s *Solver) Inprocess(opt InprocessOptions) InprocessResult {
	s.init()
	var res InprocessResult
	if !s.okState {
		return res
	}
	if s.decisionLevel() != 0 {
		panic("sat: Inprocess above decision level 0")
	}
	if s.propagate() != -1 {
		s.okState = false
		return res
	}
	s.inprocessings++
	// Level-0 facts need no reason clauses (analyze skips level-0 vars),
	// and clearing them lets the passes below delete any clause freely.
	for _, l := range s.trail {
		s.reason[l.Var()] = -1
	}
	if !s.cleanClauses(&res) {
		return res
	}
	dirty, ok := s.subsume(&res, opt)
	if !ok {
		return res
	}
	if dirty && !s.cleanClauses(&res) {
		// Strengthening produced new level-0 facts; re-clean so the
		// elimination pass sees assignment-free clauses.
		return res
	}
	s.eliminate(&res, opt)
	return res
}

// deleteClause detaches cref from the watch lists and marks it deleted,
// maintaining the live-clause counters. The literal slice is released:
// occurrence lists may still hold the cref, so every consumer re-checks
// the deleted flag before touching lits.
func (s *Solver) deleteClause(cref int) {
	s.detachClause(cref)
	s.markDeleted(cref)
}

// markDeleted is deleteClause for a clause that is already detached.
func (s *Solver) markDeleted(cref int) {
	c := &s.clauses[cref]
	c.deleted = true
	c.lits = nil
	if c.learnt {
		s.numLearnt--
	} else {
		s.problemCs--
	}
}

// reattach re-adds an existing (shrunk) clause to the watch lists.
func (s *Solver) reattach(cref int) {
	c := &s.clauses[cref]
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.Neg()] = append(s.watches[l0.Neg()], watcher{cref, l1})
	s.watches[l1.Neg()] = append(s.watches[l1.Neg()], watcher{cref, l0})
}

// cleanClauses deletes satisfied clauses and strips false literals,
// looping until fixpoint (stripping can create units whose propagation
// satisfies or shortens further clauses). Returns false when the clause
// set became unsatisfiable.
func (s *Solver) cleanClauses(res *InprocessResult) bool {
	for {
		changed := false
		for i := range s.clauses {
			c := &s.clauses[i]
			if c.deleted {
				continue
			}
			satisfied, hasFalse := false, false
			for _, l := range c.lits {
				switch s.value(l) {
				case lTrue:
					satisfied = true
				case lFalse:
					hasFalse = true
				}
			}
			if satisfied {
				s.deleteClause(i)
				res.Deleted++
				changed = true
				continue
			}
			if !hasFalse {
				continue
			}
			changed = true
			s.detachClause(i)
			out := c.lits[:0]
			for _, l := range c.lits {
				if s.value(l) != lFalse {
					out = append(out, l)
				}
			}
			c.lits = out
			switch len(out) {
			case 0:
				s.okState = false
				return false
			case 1:
				u := out[0]
				s.markDeleted(i)
				res.Deleted++
				s.uncheckedEnqueue(u, -1)
			default:
				s.reattach(i)
			}
		}
		if s.propagate() != -1 {
			s.okState = false
			return false
		}
		if !changed {
			return true
		}
	}
}

// buildOcc returns, for every literal, the crefs of live clauses that
// contain it (in clause-index order).
func (s *Solver) buildOcc() [][]int32 {
	occ := make([][]int32, len(s.watches))
	for i := range s.clauses {
		c := &s.clauses[i]
		if c.deleted {
			continue
		}
		for _, l := range c.lits {
			occ[l] = append(occ[l], int32(i))
		}
	}
	return occ
}

// subsetOf reports whether every literal of d occurs in c. Clause sizes
// are small (Tseitin gates), so the quadratic scan beats sorting.
func subsetOf(d, c []Lit) bool {
	for _, l := range d {
		found := false
		for _, q := range c {
			if q == l {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// strengthens reports whether clause d self-subsumes c on literal l:
// d contains l.Neg() and every other literal of d occurs in c. Resolving
// c with d on l then yields a clause that subsumes c with l removed.
func strengthens(d, c []Lit, l Lit) bool {
	negSeen := false
	for _, q := range d {
		if q == l.Neg() {
			negSeen = true
			continue
		}
		found := false
		for _, r := range c {
			if r == q {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return negSeen
}

// subsume runs backward subsumption and self-subsuming resolution over
// the live clause database. It returns dirty=true when strengthening
// produced new level-0 facts (the caller must re-clean before variable
// elimination) and ok=false when the clause set became unsatisfiable.
func (s *Solver) subsume(res *InprocessResult, opt InprocessOptions) (dirty, ok bool) {
	occ := s.buildOcc()
	sig := make([]uint64, len(s.clauses))
	for i := range s.clauses {
		c := &s.clauses[i]
		if c.deleted {
			continue
		}
		for _, l := range c.lits {
			sig[i] |= 1 << (uint(l.Var()) % 64)
		}
	}
	budget := opt.SubsumeLimit
	if budget <= 0 {
		budget = 200000
	}
	for i := range s.clauses {
		if budget <= 0 {
			return dirty, true
		}
		c := &s.clauses[i]
		if c.deleted {
			continue
		}
		// Subsumption with c as the subsumer: every superset of c must
		// contain c's rarest literal, so only that occurrence list is probed.
		rare := c.lits[0]
		for _, l := range c.lits[1:] {
			if len(occ[l]) < len(occ[rare]) {
				rare = l
			}
		}
		for _, jj := range occ[rare] {
			j := int(jj)
			d := &s.clauses[j]
			if j == i || d.deleted || len(d.lits) < len(c.lits) {
				continue
			}
			budget--
			if sig[i]&^sig[j] != 0 {
				continue
			}
			if subsetOf(c.lits, d.lits) {
				if !d.learnt && c.learnt {
					// A learnt clause subsumes a problem clause: the learnt
					// clause now carries the constraint, so it must survive
					// reduceDB. Promote it to a problem clause.
					c.learnt = false
					s.numLearnt--
					s.problemCs++
				}
				s.deleteClause(j)
				s.subsumedCs++
				res.Subsumed++
			}
		}
		// Self-subsuming resolution: d = (¬l ∨ R) with R ⊆ c\{l} lets us
		// drop l from c. The strengthened clause implies the original, so
		// d is not load-bearing afterwards and needs no promotion.
		for li := 0; li < len(c.lits); li++ {
			if budget <= 0 {
				return dirty, true
			}
			l := c.lits[li]
			hit := false
			for _, jj := range occ[l.Neg()] {
				j := int(jj)
				d := &s.clauses[j]
				if d.deleted || len(d.lits) > len(c.lits) {
					continue
				}
				budget--
				if strengthens(d.lits, c.lits, l) {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			s.detachClause(i)
			out := c.lits[:0]
			for _, q := range c.lits {
				if q != l {
					out = append(out, q)
				}
			}
			c.lits = out
			s.strengthenedCs++
			res.Strengthened++
			if len(out) == 1 {
				u := out[0]
				s.markDeleted(i)
				dirty = true
				switch s.value(u) {
				case lFalse:
					s.okState = false
					return dirty, false
				case lUndef:
					s.uncheckedEnqueue(u, -1)
					if s.propagate() != -1 {
						s.okState = false
						return dirty, false
					}
				}
				break // clause is gone; move to the next one
			}
			s.reattach(i)
			li = -1 // re-scan the shrunk clause from the start
		}
	}
	return dirty, true
}

// resolve returns the resolvent of a (which contains v positively) and b
// (which contains v negatively) on v, or taut=true when the resolvent is
// a tautology.
func resolve(a, b []Lit, v Var) (out []Lit, taut bool) {
	out = make([]Lit, 0, len(a)+len(b)-2)
	for _, l := range a {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	for _, l := range b {
		if l.Var() == v {
			continue
		}
		dup := false
		for _, q := range out {
			if q == l {
				dup = true
				break
			}
			if q == l.Neg() {
				return nil, true
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	return out, false
}

// eliminate runs bounded variable elimination over non-frozen, unassigned
// variables in index order. A variable is resolved away only when the
// non-tautological resolvent count does not exceed the number of problem
// clauses it replaces. Learnt clauses mentioning the pivot are simply
// deleted (they are consequences; dropping them is always sound). The
// pass stops early when a unit resolvent changes assignments, leaving the
// rest for the next Inprocess call.
func (s *Solver) eliminate(res *InprocessResult, opt InprocessOptions) {
	maxOccur := opt.MaxOccur
	if maxOccur <= 0 {
		maxOccur = 10
	}
	occ := s.buildOcc()
	for v := Var(0); int(v) < len(s.assigns); v++ {
		if s.frozen[v] || s.eliminated[v] || s.assigns[v] != lUndef {
			continue
		}
		posLit, negLit := MkLit(v, false), MkLit(v, true)
		var posP, negP []int32
		for _, j := range occ[posLit] {
			if c := &s.clauses[j]; !c.deleted && !c.learnt {
				posP = append(posP, j)
			}
		}
		for _, j := range occ[negLit] {
			if c := &s.clauses[j]; !c.deleted && !c.learnt {
				negP = append(negP, j)
			}
		}
		if len(posP)+len(negP) > maxOccur {
			continue
		}
		var resolvents [][]Lit
		grow := false
		for _, pi := range posP {
			for _, ni := range negP {
				r, taut := resolve(s.clauses[pi].lits, s.clauses[ni].lits, v)
				if taut {
					continue
				}
				resolvents = append(resolvents, r)
				if len(resolvents) > len(posP)+len(negP) {
					grow = true
					break
				}
			}
			if grow {
				break
			}
		}
		if grow {
			continue
		}
		// Commit: delete every live clause mentioning v, recording problem
		// clauses for model reconstruction, then add the resolvents.
		for _, lit := range []Lit{posLit, negLit} {
			for _, jj := range occ[lit] {
				j := int(jj)
				c := &s.clauses[j]
				if c.deleted {
					continue
				}
				if !c.learnt {
					s.elimStack = append(s.elimStack, elimEntry{
						pivot: lit,
						lits:  append([]Lit(nil), c.lits...),
					})
				}
				s.deleteClause(j)
			}
		}
		s.eliminated[v] = true
		s.elimVars++
		res.Eliminated = append(res.Eliminated, v)
		var units []Lit
		for _, r := range resolvents {
			if len(r) == 1 {
				units = append(units, r[0])
				continue
			}
			cref := s.attachClause(clause{lits: r})
			for _, l := range r {
				occ[l] = append(occ[l], int32(cref))
			}
		}
		if len(units) > 0 {
			for _, u := range units {
				switch s.value(u) {
				case lFalse:
					s.okState = false
					return
				case lUndef:
					s.uncheckedEnqueue(u, -1)
				}
			}
			if s.propagate() != -1 {
				s.okState = false
			}
			// Assignments changed; occurrence data is stale with respect to
			// satisfied clauses. Stop here — the next pass continues.
			return
		}
	}
}

// extendModel assigns eliminated variables by walking the elimination
// stack in reverse: when a recorded clause is not satisfied by the model,
// flip its pivot to true. Unassigned variables read as false, which keeps
// reconstruction deterministic.
func (s *Solver) extendModel() {
	for i := len(s.elimStack) - 1; i >= 0; i-- {
		e := &s.elimStack[i]
		satisfied := false
		for _, l := range e.lits {
			if l != e.pivot && s.modelLitTrue(l) {
				satisfied = true
				break
			}
		}
		if !satisfied {
			s.model[e.pivot.Var()] = boolToLbool(!e.pivot.Sign())
		}
	}
}

// modelLitTrue reads l under the current model, treating unassigned
// variables as false.
func (s *Solver) modelLitTrue(l Lit) bool {
	varTrue := int(l.Var()) < len(s.model) && s.model[l.Var()] == lTrue
	return varTrue != l.Sign()
}
