package sat

import (
	"math/rand"
	"testing"
)

func TestInprocessSubsumption(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	for _, v := range []Var{a, b, c} {
		s.Freeze(v)
	}
	s.AddClause(MkLit(a, false), MkLit(b, false))                  // subsumer
	s.AddClause(MkLit(a, false), MkLit(b, false), MkLit(c, false)) // subsumed
	res := s.Inprocess(InprocessOptions{})
	if res.Subsumed != 1 {
		t.Fatalf("Subsumed = %d, want 1", res.Subsumed)
	}
	if s.NumClauses() != 1 {
		t.Fatalf("NumClauses = %d, want 1", s.NumClauses())
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("after subsumption: got %v, want Sat", got)
	}
}

func TestInprocessSelfSubsumingResolution(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	for _, v := range []Var{a, b, c} {
		s.Freeze(v)
	}
	s.AddClause(MkLit(a, false), MkLit(b, false))                 // (a ∨ b)
	s.AddClause(MkLit(a, true), MkLit(b, false), MkLit(c, false)) // (¬a ∨ b ∨ c) → (b ∨ c)
	res := s.Inprocess(InprocessOptions{})
	if res.Strengthened < 1 {
		t.Fatalf("Strengthened = %d, want >= 1", res.Strengthened)
	}
	// The strengthened problem set must still behave like the original:
	// ¬b forces a (from clause 1) and c (from the strengthened clause 2).
	if got := s.Solve(MkLit(b, true)); got != Sat {
		t.Fatalf("got %v, want Sat", got)
	}
	if !s.Value(a) || !s.Value(c) {
		t.Fatalf("under ¬b want a=true c=true, got a=%v c=%v", s.Value(a), s.Value(c))
	}
}

func TestInprocessVariableElimination(t *testing.T) {
	s := New()
	a, x, y := s.NewVar(), s.NewVar(), s.NewVar()
	s.Freeze(x)
	s.Freeze(y)
	s.AddClause(MkLit(a, false), MkLit(x, false)) // (a ∨ x)
	s.AddClause(MkLit(a, true), MkLit(y, false))  // (¬a ∨ y)
	res := s.Inprocess(InprocessOptions{})
	if len(res.Eliminated) != 1 || res.Eliminated[0] != a {
		t.Fatalf("Eliminated = %v, want [%d]", res.Eliminated, a)
	}
	if !s.IsEliminated(a) {
		t.Fatalf("IsEliminated(a) = false")
	}
	if s.NumClauses() != 1 {
		t.Fatalf("NumClauses = %d, want 1 (the resolvent x ∨ y)", s.NumClauses())
	}
	// ¬x must still force y via the resolvent.
	if got := s.Solve(MkLit(x, true)); got != Sat {
		t.Fatalf("got %v, want Sat", got)
	}
	if !s.Value(y) {
		t.Fatalf("under ¬x want y=true")
	}
	// The reconstructed model must satisfy the original clauses too:
	// with x=false, (a ∨ x) forces a=true.
	if !s.Value(a) {
		t.Fatalf("reconstructed model must set a=true to satisfy (a ∨ x) under ¬x")
	}
}

func TestInprocessFrozenNotEliminated(t *testing.T) {
	s := New()
	a, x, y := s.NewVar(), s.NewVar(), s.NewVar()
	for _, v := range []Var{a, x, y} {
		s.Freeze(v)
	}
	s.AddClause(MkLit(a, false), MkLit(x, false))
	s.AddClause(MkLit(a, true), MkLit(y, false))
	res := s.Inprocess(InprocessOptions{})
	if len(res.Eliminated) != 0 {
		t.Fatalf("Eliminated = %v, want none (all vars frozen)", res.Eliminated)
	}
	if s.NumClauses() != 2 {
		t.Fatalf("NumClauses = %d, want 2", s.NumClauses())
	}
}

// TestInprocessRetractedScope models the solver-layer scope lifecycle: a
// retracted activation scope asserts ¬act at level 0, and the next
// Inprocess pass must clean every guard clause of that scope out of the
// database while leaving the solver sound.
func TestInprocessRetractedScope(t *testing.T) {
	s := New()
	act, x, y := s.NewVar(), s.NewVar(), s.NewVar()
	for _, v := range []Var{act, x, y} {
		s.Freeze(v)
	}
	// Scoped assertions: act → x, act → ¬y.
	s.AddClause(MkLit(act, true), MkLit(x, false))
	s.AddClause(MkLit(act, true), MkLit(y, true))
	if got := s.Solve(MkLit(act, false)); got != Sat {
		t.Fatalf("inside scope: got %v, want Sat", got)
	}
	if !s.Value(x) || s.Value(y) {
		t.Fatalf("inside scope want x=true y=false")
	}
	// Retract: ¬act becomes a level-0 fact.
	s.AddClause(MkLit(act, true))
	res := s.Inprocess(InprocessOptions{})
	if res.Deleted != 2 {
		t.Fatalf("Deleted = %d, want 2 (both guard clauses satisfied by ¬act)", res.Deleted)
	}
	if s.NumClauses() != 0 {
		t.Fatalf("NumClauses = %d, want 0", s.NumClauses())
	}
	// x and y are unconstrained again.
	if got := s.Solve(MkLit(x, true), MkLit(y, false)); got != Sat {
		t.Fatalf("after retract: got %v, want Sat", got)
	}
}

// inprocessTrial adds the same random CNF to a plain reference solver and
// to a solver that interleaves Inprocess passes, then compares Solve
// results under random assumptions over frozen variables and checks that
// the (reconstructed) model satisfies every original clause.
func inprocessTrial(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	nVars := 4 + rng.Intn(12)
	s, ref := New(), New()
	var frozen []Var
	for i := 0; i < nVars; i++ {
		v := s.NewVar()
		ref.NewVar()
		if rng.Intn(2) == 0 {
			s.Freeze(v)
			frozen = append(frozen, v)
		}
	}
	var all [][]Lit
	addBatch := func(vars []Var, n int) {
		for i := 0; i < n; i++ {
			k := 1 + rng.Intn(3)
			var cl []Lit
			for j := 0; j < k; j++ {
				cl = append(cl, MkLit(vars[rng.Intn(len(vars))], rng.Intn(2) == 0))
			}
			all = append(all, cl)
			s.AddClause(cl...)
			ref.AddClause(cl...)
		}
	}
	allVars := make([]Var, nVars)
	for i := range allVars {
		allVars[i] = Var(i)
	}
	batches := 1 + rng.Intn(3)
	for b := 0; b < batches; b++ {
		if b == 0 {
			addBatch(allVars, 5+rng.Intn(25))
		} else if len(frozen) > 0 {
			// After inprocessing, only frozen variables may be mentioned.
			addBatch(frozen, rng.Intn(8))
		}
		var assumptions []Lit
		for _, v := range frozen {
			if rng.Intn(3) == 0 {
				assumptions = append(assumptions, MkLit(v, rng.Intn(2) == 0))
			}
		}
		got, want := s.Solve(assumptions...), ref.Solve(assumptions...)
		if got != want {
			t.Fatalf("seed %d batch %d: inprocessed solver %v, reference %v (assumptions %v)",
				seed, b, got, want, assumptions)
		}
		if got == Sat {
			for _, cl := range all {
				ok := false
				for _, l := range cl {
					if s.ValueLit(l) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("seed %d batch %d: reconstructed model violates clause %v", seed, b, cl)
				}
			}
		}
		res := s.Inprocess(InprocessOptions{})
		for _, v := range res.Eliminated {
			if s.Frozen(v) {
				t.Fatalf("seed %d: frozen var %d eliminated", seed, v)
			}
		}
	}
}

func TestInprocessEquivalenceRandom(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		inprocessTrial(t, seed)
	}
}

// FuzzInprocess drives the same equivalence property from fuzzed seeds:
// interleaving Inprocess passes (with frozen literals protected) must
// never change a Solve verdict, and reconstructed models must satisfy the
// original clause set.
func FuzzInprocess(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(1 << 30))
	f.Fuzz(func(t *testing.T, seed int64) {
		inprocessTrial(t, seed)
	})
}
