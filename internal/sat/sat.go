// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver with two-literal watching, VSIDS branching, first-UIP clause
// learning, Luby restarts, phase saving, and assumption-based incremental
// solving with unsat-core extraction over the assumptions.
//
// The solver is the decision substrate for the bitvector SMT layer
// (internal/bitblast, internal/solver): bf4's reachability queries and the
// Infer algorithm's model/unsat-core loop both bottom out here. The paper
// uses Z3; this package provides the subset of Z3's functionality those
// algorithms need (check, model, failed assumptions) with identical
// semantics.
package sat

import "fmt"

// Var is a propositional variable, numbered from 0.
type Var int32

// Lit is a literal: variable 2*v for the positive phase, 2*v+1 for the
// negated phase. The zero value is the positive literal of variable 0;
// use LitUndef for "no literal".
type Lit int32

// LitUndef is a sentinel meaning "no literal".
const LitUndef Lit = -1

// MkLit returns the literal for v, negated if neg is true.
func MkLit(v Var, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the variable of l.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg returns the complement of l.
func (l Lit) Neg() Lit { return l ^ 1 }

// Sign reports whether l is a negated literal.
func (l Lit) Sign() bool { return l&1 == 1 }

// String renders the literal in DIMACS-like form (1-based, minus = negated).
func (l Lit) String() string {
	if l == LitUndef {
		return "undef"
	}
	if l.Sign() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// lbool is a three-valued boolean.
type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

// clause is a disjunction of literals. Learnt clauses carry an activity
// used for clause-database reduction.
type clause struct {
	lits     []Lit
	activity float64
	learnt   bool
	deleted  bool
}

type watcher struct {
	cref    int // index into Solver.clauses
	blocker Lit // quick satisfaction check without touching the clause
}

// Result is the outcome of a Solve call.
type Result int8

const (
	// Unknown means the solver was interrupted by budget exhaustion.
	Unknown Result = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula (under the given assumptions) is
	// unsatisfiable.
	Unsat
)

func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Solver is a CDCL SAT solver. The zero value is ready to use. Clauses may
// be added between Solve calls (incremental use); variables are created
// with NewVar or implicitly by AddClause.
type Solver struct {
	clauses []clause
	watches [][]watcher // indexed by Lit

	assigns  []lbool // indexed by Var
	level    []int32 // decision level of each assigned var
	reason   []int32 // clause ref that implied the var, or -1
	polarity []bool  // phase saving: last assigned sign
	activity []float64
	seen     []bool // scratch for conflict analysis

	trail    []Lit
	trailLim []int32 // trail index at each decision level
	qhead    int

	heap    varHeap
	varInc  float64
	claInc  float64
	okState bool // false once the clause set is unsat at level 0

	model      []lbool
	conflictCs []Lit // failed assumptions (negated), valid after Unsat

	// frozen marks variables that outside code holds references to
	// (bitblast memo entries, activation literals): inprocessing must
	// never eliminate them, since their semantics are observed across
	// Solve calls.
	frozen []bool
	// eliminated marks variables removed by bounded variable elimination.
	// They occur in no clause, are never branched on, and their model
	// values are reconstructed from elimStack after a Sat result.
	eliminated []bool
	// elimStack records, in elimination order, every problem clause
	// deleted by variable elimination; extendModel walks it in reverse
	// (Järvisalo & Biere style reconstruction) to assign eliminated vars.
	elimStack []elimEntry

	// Budget limits a single Solve call; 0 means unlimited.
	Budget struct {
		Conflicts int64
	}

	numLearnt    int
	maxLearnt    float64
	propagations int64
	conflicts    int64
	decisions    int64
	restarts     int64
	learned      int64
	problemCs    int // cached count of live non-learnt clauses

	subsumedCs     int64
	strengthenedCs int64
	elimVars       int64
	inprocessings  int64
}

// Stats is a snapshot of the solver's cumulative search statistics.
// Callers that need per-query numbers take a snapshot before and after a
// Solve call and subtract (Sub): the counters themselves are cumulative
// across the solver's lifetime, which under solver reuse (incremental
// checks, worker pools) would misattribute work across queries.
type Stats struct {
	// Conflicts is the number of conflicts hit during search.
	Conflicts int64
	// Propagations is the number of unit propagations.
	Propagations int64
	// Decisions is the number of branching decisions.
	Decisions int64
	// Restarts is the number of Luby restarts taken.
	Restarts int64
	// Learned is the number of clauses learned from conflicts (including
	// unit clauses that never enter the clause database).
	Learned int64
}

// Sub returns the component-wise difference a - b: the work done between
// snapshot b and snapshot a.
func (a Stats) Sub(b Stats) Stats {
	return Stats{
		Conflicts:    a.Conflicts - b.Conflicts,
		Propagations: a.Propagations - b.Propagations,
		Decisions:    a.Decisions - b.Decisions,
		Restarts:     a.Restarts - b.Restarts,
		Learned:      a.Learned - b.Learned,
	}
}

// Add returns the component-wise sum a + b.
func (a Stats) Add(b Stats) Stats {
	return Stats{
		Conflicts:    a.Conflicts + b.Conflicts,
		Propagations: a.Propagations + b.Propagations,
		Decisions:    a.Decisions + b.Decisions,
		Restarts:     a.Restarts + b.Restarts,
		Learned:      a.Learned + b.Learned,
	}
}

// StatsSnapshot returns the current cumulative search statistics.
func (s *Solver) StatsSnapshot() Stats {
	return Stats{
		Conflicts:    s.conflicts,
		Propagations: s.propagations,
		Decisions:    s.decisions,
		Restarts:     s.restarts,
		Learned:      s.learned,
	}
}

// New returns an empty solver. Equivalent to new(Solver) but reads better
// at call sites.
func New() *Solver {
	s := &Solver{}
	s.init()
	return s
}

func (s *Solver) init() {
	if s.varInc == 0 {
		s.varInc = 1
		s.claInc = 1
		s.okState = true
		s.maxLearnt = 1000
		s.heap.activity = &s.activity
	}
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of live problem (non-learnt) clauses.
// The count is maintained incrementally on attach/delete, so per-check
// CNF-growth snapshots are O(1) instead of a walk over the clause
// database. Inprocessing may shrink it (satisfied, subsumed, and
// variable-elimination deletions).
func (s *Solver) NumClauses() int { return s.problemCs }

// Conflicts returns the cumulative number of conflicts across Solve calls.
func (s *Solver) Conflicts() int64 { return s.conflicts }

// Propagations returns the cumulative number of unit propagations.
func (s *Solver) Propagations() int64 { return s.propagations }

// Decisions returns the cumulative number of branching decisions.
func (s *Solver) Decisions() int64 { return s.decisions }

// Restarts returns the cumulative number of restarts across Solve calls.
func (s *Solver) Restarts() int64 { return s.restarts }

// Learned returns the cumulative number of learnt clauses.
func (s *Solver) Learned() int64 { return s.learned }

// SubsumedClauses returns the cumulative number of clauses deleted by
// inprocessing subsumption.
func (s *Solver) SubsumedClauses() int64 { return s.subsumedCs }

// StrengthenedClauses returns the cumulative number of self-subsuming
// resolution strengthenings performed by inprocessing.
func (s *Solver) StrengthenedClauses() int64 { return s.strengthenedCs }

// EliminatedVars returns the cumulative number of variables removed by
// bounded variable elimination.
func (s *Solver) EliminatedVars() int64 { return s.elimVars }

// Inprocessings returns the number of Inprocess passes run.
func (s *Solver) Inprocessings() int64 { return s.inprocessings }

// Freeze marks v as off-limits for variable elimination. Any variable
// whose value or clauses are observed from outside the solver — bitblast
// memo roots, activation literals, future assumption literals — must be
// frozen before the first Inprocess call.
func (s *Solver) Freeze(v Var) {
	s.init()
	s.ensureVar(v)
	s.frozen[v] = true
}

// Frozen reports whether v is protected from elimination.
func (s *Solver) Frozen(v Var) bool {
	return int(v) < len(s.frozen) && s.frozen[v]
}

// IsEliminated reports whether v was removed by variable elimination.
// Eliminated variables must not appear in new clauses or assumptions.
func (s *Solver) IsEliminated(v Var) bool {
	return int(v) < len(s.eliminated) && s.eliminated[v]
}

// NewVar creates a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	s.init()
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, -1)
	s.polarity = append(s.polarity, true) // default phase: false (sign=true)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.frozen = append(s.frozen, false)
	s.eliminated = append(s.eliminated, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.insert(v)
	return v
}

func (s *Solver) ensureVar(v Var) {
	for Var(len(s.assigns)) <= v {
		s.NewVar()
	}
}

func (s *Solver) value(l Lit) lbool {
	a := s.assigns[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Sign() {
		if a == lTrue {
			return lFalse
		}
		return lTrue
	}
	return a
}

// AddClause adds a disjunction of literals. It returns false if the clause
// set became trivially unsatisfiable (conflicting unit clauses at level 0).
// AddClause must be called at decision level 0, i.e. not during Solve.
func (s *Solver) AddClause(lits ...Lit) bool {
	s.init()
	if !s.okState {
		return false
	}
	for _, l := range lits {
		s.ensureVar(l.Var())
		if s.eliminated[l.Var()] {
			panic("sat: AddClause on eliminated variable (missing Freeze before Inprocess?)")
		}
	}
	// Normalize: drop duplicate and false literals; detect tautology and
	// already-satisfied clauses.
	out := lits[:0:0]
	seen := map[Lit]bool{}
	for _, l := range lits {
		switch {
		case s.value(l) == lTrue || seen[l.Neg()]:
			return true // satisfied or tautological
		case s.value(l) == lFalse || seen[l]:
			continue
		default:
			seen[l] = true
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.okState = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], -1)
		if s.propagate() != -1 {
			s.okState = false
			return false
		}
		return true
	}
	s.attachClause(clause{lits: out})
	return true
}

func (s *Solver) attachClause(c clause) int {
	cref := len(s.clauses)
	if !c.learnt {
		s.problemCs++
	}
	s.clauses = append(s.clauses, c)
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.Neg()] = append(s.watches[l0.Neg()], watcher{cref, l1})
	s.watches[l1.Neg()] = append(s.watches[l1.Neg()], watcher{cref, l0})
	return cref
}

func (s *Solver) uncheckedEnqueue(l Lit, from int32) {
	v := l.Var()
	s.assigns[v] = boolToLbool(!l.Sign())
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.polarity[v] = l.Sign()
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; returns the conflicting clause ref
// or -1 if no conflict.
func (s *Solver) propagate() int {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		ws := s.watches[p]
		n := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				ws[n] = w
				n++
				continue
			}
			c := &s.clauses[w.cref]
			s.propagations++
			// Ensure the false literal is lits[1].
			if c.lits[0] == p.Neg() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				ws[n] = watcher{w.cref, first}
				n++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nl := c.lits[1].Neg()
					s.watches[nl] = append(s.watches[nl], watcher{w.cref, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[n] = watcher{w.cref, first}
			n++
			if s.value(first) == lFalse {
				// Conflict: copy remaining watchers and bail.
				for i++; i < len(ws); i++ {
					ws[n] = ws[i]
					n++
				}
				s.watches[p] = ws[:n]
				s.qhead = len(s.trail)
				return w.cref
			}
			s.uncheckedEnqueue(first, int32(w.cref))
		}
		s.watches[p] = ws[:n]
	}
	return -1
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, int32(len(s.trail)))
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		v := s.trail[i].Var()
		s.assigns[v] = lUndef
		s.reason[v] = -1
		if !s.heap.inHeap(v) {
			s.heap.insert(v)
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.heap.inHeap(v) {
		s.heap.decrease(v)
	}
}

func (s *Solver) bumpClause(cref int) {
	c := &s.clauses[cref]
	if !c.learnt {
		return
	}
	c.activity += s.claInc
	if c.activity > 1e20 {
		for i := range s.clauses {
			if s.clauses[i].learnt {
				s.clauses[i].activity *= 1e-20
			}
		}
		s.claInc *= 1e-20
	}
}

// analyze computes the first-UIP learnt clause from the conflicting clause
// and returns it together with the backtrack level.
func (s *Solver) analyze(confl int) ([]Lit, int) {
	learnt := []Lit{LitUndef} // slot 0 reserved for the asserting literal
	counter := 0
	p := LitUndef
	idx := len(s.trail) - 1

	for {
		c := &s.clauses[confl]
		s.bumpClause(confl)
		start := 0
		if p != LitUndef {
			start = 1
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal on the trail to resolve on.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		confl = int(s.reason[v])
	}
	learnt[0] = p.Neg()

	// Minimize: remove literals implied by the rest (simple self-subsumption
	// over direct reasons). Clear seen flags of removed literals here; the
	// kept ones are cleared below.
	out := learnt[:1]
	for _, q := range learnt[1:] {
		if s.redundant(q) {
			s.seen[q.Var()] = false
		} else {
			out = append(out, q)
		}
	}
	learnt = out

	// Compute backtrack level: second-highest level in the clause.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	for _, q := range learnt {
		s.seen[q.Var()] = false
	}
	// seen flags for removed redundant literals are cleared in redundant().
	return learnt, btLevel
}

// redundant reports whether literal q is implied by the other literals in
// the learnt clause, looking one reason step deep.
func (s *Solver) redundant(q Lit) bool {
	r := s.reason[q.Var()]
	if r < 0 {
		return false
	}
	for _, l := range s.clauses[r].lits {
		if l.Var() == q.Var() {
			continue
		}
		if !s.seen[l.Var()] && s.level[l.Var()] != 0 {
			return false
		}
	}
	return true
}

// analyzeFinal computes the set of assumption literals responsible for
// assumption p being falsified. The result — a subset of the original
// assumptions, including p itself — is stored in s.conflictCs.
func (s *Solver) analyzeFinal(p Lit) {
	s.conflictCs = s.conflictCs[:0]
	s.conflictCs = append(s.conflictCs, p)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= int(s.trailLim[0]); i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if s.reason[v] == -1 {
			if s.level[v] > 0 {
				// Decisions above level 0 are exactly the enqueued
				// assumptions, in their original polarity.
				s.conflictCs = append(s.conflictCs, s.trail[i])
			}
		} else {
			for _, l := range s.clauses[s.reason[v]].lits {
				if s.level[l.Var()] > 0 {
					s.seen[l.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.Var()] = false
}

// analyzeFinalConfl is like analyzeFinal but starts from a conflicting
// clause instead of a single failed assumption.
func (s *Solver) analyzeFinalConfl(confl int) {
	s.conflictCs = s.conflictCs[:0]
	if s.decisionLevel() == 0 {
		return
	}
	for _, l := range s.clauses[confl].lits {
		if s.level[l.Var()] > 0 {
			s.seen[l.Var()] = true
		}
	}
	for i := len(s.trail) - 1; i >= int(s.trailLim[0]); i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if s.reason[v] == -1 {
			s.conflictCs = append(s.conflictCs, s.trail[i])
		} else {
			for _, l := range s.clauses[s.reason[v]].lits {
				if s.level[l.Var()] > 0 {
					s.seen[l.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
}

func (s *Solver) reduceDB() {
	// Collect learnt clause refs sorted by activity; delete the lower half,
	// keeping binary clauses and current reasons.
	type ca struct {
		cref int
		act  float64
	}
	var learnts []ca
	for i := range s.clauses {
		c := &s.clauses[i]
		if c.learnt && !c.deleted && len(c.lits) > 2 {
			learnts = append(learnts, ca{i, c.activity})
		}
	}
	// Insertion sort by activity ascending (learnts lists are modest).
	for i := 1; i < len(learnts); i++ {
		for j := i; j > 0 && learnts[j].act < learnts[j-1].act; j-- {
			learnts[j], learnts[j-1] = learnts[j-1], learnts[j]
		}
	}
	locked := map[int]bool{}
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r >= 0 {
			locked[int(r)] = true
		}
	}
	for _, e := range learnts[:len(learnts)/2] {
		if locked[e.cref] {
			continue
		}
		s.detachClause(e.cref)
		s.clauses[e.cref].deleted = true
		s.numLearnt--
	}
}

func (s *Solver) detachClause(cref int) {
	c := &s.clauses[cref]
	for _, wl := range []Lit{c.lits[0].Neg(), c.lits[1].Neg()} {
		ws := s.watches[wl]
		n := 0
		for _, w := range ws {
			if w.cref != cref {
				ws[n] = w
				n++
			}
		}
		s.watches[wl] = ws[:n]
	}
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i >= 1<<k {
			continue
		}
		return luby(i - (1 << (k - 1)) + 1)
	}
}

// Solve determines satisfiability of the added clauses under the given
// assumptions. On Sat, Value reports the model; on Unsat, FailedAssumptions
// returns a subset of the assumptions sufficient for unsatisfiability.
func (s *Solver) Solve(assumptions ...Lit) Result {
	s.init()
	if !s.okState {
		s.conflictCs = s.conflictCs[:0]
		return Unsat
	}
	for _, a := range assumptions {
		s.ensureVar(a.Var())
		if s.eliminated[a.Var()] {
			panic("sat: Solve assumption on eliminated variable (missing Freeze before Inprocess?)")
		}
	}
	defer s.cancelUntil(0)

	restartNum := int64(0)
	conflictBudget := s.Budget.Conflicts
	var conflictsThisCall int64

	for {
		restartNum++
		limit := luby(restartNum) * 100
		res := s.search(assumptions, limit, &conflictsThisCall)
		if res != Unknown {
			return res
		}
		if conflictBudget > 0 && conflictsThisCall >= conflictBudget {
			return Unknown
		}
		s.restarts++
		s.cancelUntil(0)
	}
}

// search runs CDCL until a result, a restart limit, or budget exhaustion.
func (s *Solver) search(assumptions []Lit, conflictLimit int64, conflictsThisCall *int64) Result {
	var conflictC int64
	for {
		confl := s.propagate()
		if confl != -1 {
			s.conflicts++
			conflictC++
			*conflictsThisCall++
			if s.decisionLevel() == 0 {
				s.okState = false
				s.conflictCs = s.conflictCs[:0]
				return Unsat
			}
			if s.decisionLevel() <= len(assumptions) {
				// Conflict within the assumption prefix: the assumptions
				// are jointly unsatisfiable.
				s.analyzeFinalConfl(confl)
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.learned++
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.cancelUntil(0)
				s.uncheckedEnqueue(learnt[0], -1)
				// Re-establish assumptions on the next loop iterations.
			} else {
				cref := s.attachClause(clause{lits: learnt, learnt: true, activity: s.claInc})
				s.numLearnt++
				s.uncheckedEnqueue(learnt[0], int32(cref))
			}
			s.varInc /= 0.95
			s.claInc /= 0.999
			if float64(s.numLearnt) > s.maxLearnt {
				s.maxLearnt *= 1.3
				s.reduceDB()
			}
			continue
		}
		if conflictC >= conflictLimit {
			return Unknown
		}
		// Establish assumptions one decision level at a time.
		if s.decisionLevel() < len(assumptions) {
			p := assumptions[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				s.newDecisionLevel() // dummy level to keep indices aligned
				continue
			case lFalse:
				s.analyzeFinal(p)
				return Unsat
			default:
				s.newDecisionLevel()
				s.uncheckedEnqueue(p, -1)
				continue
			}
		}
		// Pick a branching variable.
		next := s.pickBranch()
		if next == LitUndef {
			// All variables assigned: model found. Eliminated variables are
			// unassigned; reconstruct their values from the elimination stack.
			s.model = append(s.model[:0], s.assigns...)
			s.extendModel()
			return Sat
		}
		s.decisions++
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, -1)
	}
}

func (s *Solver) pickBranch() Lit {
	for {
		v, ok := s.heap.removeMin()
		if !ok {
			return LitUndef
		}
		if s.assigns[v] == lUndef && !s.eliminated[v] {
			return MkLit(v, s.polarity[v])
		}
	}
}

// Value reports the model value of variable v after a Sat result.
func (s *Solver) Value(v Var) bool {
	if int(v) >= len(s.model) {
		return false
	}
	return s.model[v] == lTrue
}

// ValueLit reports the model value of literal l after a Sat result.
func (s *Solver) ValueLit(l Lit) bool {
	v := s.Value(l.Var())
	if l.Sign() {
		return !v
	}
	return v
}

// FailedAssumptions returns, after an Unsat result, a subset of the Solve
// assumptions that is sufficient for unsatisfiability (an unsat core over
// the assumptions). The returned slice is valid until the next Solve.
func (s *Solver) FailedAssumptions() []Lit {
	return s.conflictCs
}

// Okay reports whether the clause database is still possibly satisfiable
// (false after a level-0 conflict).
func (s *Solver) Okay() bool {
	s.init()
	return s.okState
}
