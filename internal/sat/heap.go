package sat

// varHeap is a binary max-heap of variables ordered by VSIDS activity,
// with an index map enabling decrease-key when activities are bumped.
type varHeap struct {
	heap     []Var
	indices  []int // position of each var in heap, -1 if absent
	activity *[]float64
}

func (h *varHeap) less(a, b Var) bool {
	act := *h.activity
	return act[a] > act[b]
}

func (h *varHeap) inHeap(v Var) bool {
	return int(v) < len(h.indices) && h.indices[v] >= 0
}

func (h *varHeap) insert(v Var) {
	for Var(len(h.indices)) <= v {
		h.indices = append(h.indices, -1)
	}
	if h.indices[v] >= 0 {
		return
	}
	h.indices[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.percolateUp(h.indices[v])
}

// decrease restores the heap property after v's activity increased
// (named after the classical decrease-key, since a higher activity means a
// smaller key in the ordering).
func (h *varHeap) decrease(v Var) {
	h.percolateUp(h.indices[v])
}

func (h *varHeap) removeMin() (Var, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	top := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[top] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.indices[last] = 0
		h.percolateDown(0)
	}
	return top, true
}

func (h *varHeap) percolateUp(i int) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(v, h.heap[parent]) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.indices[h.heap[i]] = i
		i = parent
	}
	h.heap[i] = v
	h.indices[v] = i
}

func (h *varHeap) percolateDown(i int) {
	v := h.heap[i]
	for {
		left, right := 2*i+1, 2*i+2
		if left >= len(h.heap) {
			break
		}
		child := left
		if right < len(h.heap) && h.less(h.heap[right], h.heap[left]) {
			child = right
		}
		if !h.less(h.heap[child], v) {
			break
		}
		h.heap[i] = h.heap[child]
		h.indices[h.heap[i]] = i
		i = child
	}
	h.heap[i] = v
	h.indices[v] = i
}
