package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce determines satisfiability of a CNF over nVars variables by
// exhaustive enumeration. Used as a reference oracle in property tests.
func bruteForce(nVars int, cnf [][]Lit) bool {
	for assign := 0; assign < 1<<nVars; assign++ {
		ok := true
		for _, cl := range cnf {
			clauseSat := false
			for _, l := range cl {
				val := assign&(1<<int(l.Var())) != 0
				if l.Sign() {
					val = !val
				}
				if val {
					clauseSat = true
					break
				}
			}
			if !clauseSat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func solveCNF(cnf [][]Lit) (*Solver, Result) {
	s := New()
	for _, cl := range cnf {
		if !s.AddClause(cl...) {
			return s, Unsat
		}
	}
	return s, s.Solve()
}

func TestLitBasics(t *testing.T) {
	l := MkLit(3, false)
	if l.Var() != 3 || l.Sign() {
		t.Fatalf("MkLit(3,false) = %v", l)
	}
	n := l.Neg()
	if n.Var() != 3 || !n.Sign() {
		t.Fatalf("Neg() = %v", n)
	}
	if n.Neg() != l {
		t.Fatalf("double negation is not identity")
	}
	if l.String() != "4" || n.String() != "-4" {
		t.Fatalf("String() = %q, %q", l.String(), n.String())
	}
}

func TestEmptySolverIsSat(t *testing.T) {
	s := New()
	if got := s.Solve(); got != Sat {
		t.Fatalf("empty solver: got %v, want Sat", got)
	}
}

func TestUnitPropagation(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(a, true), MkLit(b, false))
	s.AddClause(MkLit(b, true), MkLit(c, false))
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want Sat", got)
	}
	for _, v := range []Var{a, b, c} {
		if !s.Value(v) {
			t.Errorf("var %d: got false, want true", v)
		}
	}
}

func TestTrivialConflict(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if s.AddClause(MkLit(a, true)) {
		t.Fatalf("conflicting units: AddClause returned true")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v, want Unsat", got)
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	if !s.AddClause(MkLit(a, false), MkLit(a, true)) {
		t.Fatalf("tautology rejected")
	}
	if !s.AddClause(MkLit(b, false), MkLit(b, false)) {
		t.Fatalf("duplicate-literal clause rejected")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want Sat", got)
	}
	if !s.Value(b) {
		t.Fatalf("b must be true")
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons in n holes, classically unsat
// and exercises clause learning.
func pigeonhole(s *Solver, pigeons, holes int) {
	lit := func(p, h int) Lit { return MkLit(Var(p*holes+h), false) }
	for p := 0; p < pigeons; p++ {
		var cl []Lit
		for h := 0; h < holes; h++ {
			cl = append(cl, lit(p, h))
		}
		s.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(lit(p1, h).Neg(), lit(p2, h).Neg())
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := New()
		pigeonhole(s, n+1, n)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d,%d): got %v, want Unsat", n+1, n, got)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 5)
	if got := s.Solve(); got != Sat {
		t.Fatalf("PHP(5,5): got %v, want Sat", got)
	}
}

func TestModelSatisfiesClauses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		nVars := 3 + rng.Intn(10)
		nClauses := 1 + rng.Intn(40)
		var cnf [][]Lit
		for i := 0; i < nClauses; i++ {
			k := 1 + rng.Intn(3)
			var cl []Lit
			for j := 0; j < k; j++ {
				cl = append(cl, MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			cnf = append(cnf, cl)
		}
		s, res := solveCNF(cnf)
		if res != Sat {
			continue
		}
		for _, cl := range cnf {
			ok := false
			for _, l := range cl {
				if s.ValueLit(l) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("iter %d: model does not satisfy clause %v", iter, cl)
			}
		}
	}
}

func TestAgainstBruteForce(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 2 + rng.Intn(8)
		nClauses := rng.Intn(25)
		var cnf [][]Lit
		for i := 0; i < nClauses; i++ {
			k := 1 + rng.Intn(3)
			var cl []Lit
			for j := 0; j < k; j++ {
				cl = append(cl, MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			cnf = append(cnf, cl)
		}
		_, res := solveCNF(cnf)
		want := bruteForce(nVars, cnf)
		return (res == Sat) == want
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, true), MkLit(b, false)) // a -> b
	if got := s.Solve(MkLit(a, false)); got != Sat {
		t.Fatalf("assume a: got %v, want Sat", got)
	}
	if !s.Value(a) || !s.Value(b) {
		t.Fatalf("model must set a and b")
	}
	if got := s.Solve(MkLit(a, false), MkLit(b, true)); got != Unsat {
		t.Fatalf("assume a, !b: got %v, want Unsat", got)
	}
	// Solver remains usable and consistent after Unsat under assumptions.
	if got := s.Solve(); got != Sat {
		t.Fatalf("no assumptions after conflict: got %v, want Sat", got)
	}
}

func TestFailedAssumptionsCore(t *testing.T) {
	s := New()
	a, b, c, d := s.NewVar(), s.NewVar(), s.NewVar(), s.NewVar()
	// a & b -> false; c, d are irrelevant padding assumptions.
	s.AddClause(MkLit(a, true), MkLit(b, true))
	assumptions := []Lit{MkLit(c, false), MkLit(a, false), MkLit(d, false), MkLit(b, false)}
	if got := s.Solve(assumptions...); got != Unsat {
		t.Fatalf("got %v, want Unsat", got)
	}
	core := s.FailedAssumptions()
	inCore := map[Var]bool{}
	for _, l := range core {
		inCore[l.Var()] = true
	}
	if !inCore[a] || !inCore[b] {
		t.Fatalf("core %v must contain a and b", core)
	}
	if inCore[c] && inCore[d] {
		t.Errorf("core %v should not contain both irrelevant assumptions", core)
	}
	// The core itself must be unsatisfiable when re-assumed.
	var coreAssumptions []Lit
	coreAssumptions = append(coreAssumptions, core...)
	if got := s.Solve(coreAssumptions...); got != Unsat {
		t.Fatalf("re-solving the core: got %v, want Unsat", got)
	}
}

func TestCorePropertyRandom(t *testing.T) {
	// Property: after Unsat under assumptions, the failed assumptions alone
	// are unsatisfiable with the clause set.
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 150; iter++ {
		s := New()
		nVars := 3 + rng.Intn(7)
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		nClauses := 3 + rng.Intn(20)
		for i := 0; i < nClauses; i++ {
			k := 1 + rng.Intn(3)
			var cl []Lit
			for j := 0; j < k; j++ {
				cl = append(cl, MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			s.AddClause(cl...)
		}
		var assumptions []Lit
		for v := 0; v < nVars; v++ {
			if rng.Intn(2) == 0 {
				assumptions = append(assumptions, MkLit(Var(v), rng.Intn(2) == 0))
			}
		}
		if s.Solve(assumptions...) != Unsat {
			continue
		}
		core := append([]Lit(nil), s.FailedAssumptions()...)
		if got := s.Solve(core...); got != Unsat {
			t.Fatalf("iter %d: core %v not unsat on its own", iter, core)
		}
	}
}

func TestIncrementalAddAfterSolve(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	if s.Solve() != Sat {
		t.Fatal("want Sat")
	}
	s.AddClause(MkLit(a, true))
	if s.Solve() != Sat {
		t.Fatal("want Sat after adding !a")
	}
	if s.Value(a) || !s.Value(b) {
		t.Fatalf("want a=false b=true, got a=%v b=%v", s.Value(a), s.Value(b))
	}
	s.AddClause(MkLit(b, true))
	if s.Solve() != Unsat {
		t.Fatal("want Unsat after adding !b")
	}
}

func TestBudget(t *testing.T) {
	s := New()
	pigeonhole(s, 9, 8)
	s.Budget.Conflicts = 10
	res := s.Solve()
	if res == Sat {
		t.Fatalf("PHP(9,8) cannot be Sat")
	}
	// Either it proved Unsat within budget or gave up; both are acceptable,
	// but the solver must remain usable.
	s.Budget.Conflicts = 0
	if got := s.Solve(); got != Unsat {
		t.Fatalf("unbudgeted solve: got %v, want Unsat", got)
	}
}

func TestNumVarsAndClauses(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	if s.NumVars() != 2 {
		t.Fatalf("NumVars = %d, want 2", s.NumVars())
	}
	s.AddClause(MkLit(a, false), MkLit(b, false))
	if s.NumClauses() != 1 {
		t.Fatalf("NumClauses = %d, want 1", s.NumClauses())
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestHardRandom3SAT(t *testing.T) {
	// Random 3-SAT at ratio ~4.2 near the phase transition; verify against
	// brute force on small instances.
	rng := rand.New(rand.NewSource(1234))
	for iter := 0; iter < 30; iter++ {
		nVars := 12
		nClauses := 50
		var cnf [][]Lit
		for i := 0; i < nClauses; i++ {
			var cl []Lit
			for j := 0; j < 3; j++ {
				cl = append(cl, MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			cnf = append(cnf, cl)
		}
		_, res := solveCNF(cnf)
		want := bruteForce(nVars, cnf)
		if (res == Sat) != want {
			t.Fatalf("iter %d: got %v, brute force says sat=%v", iter, res, want)
		}
	}
}

func BenchmarkSolvePigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		pigeonhole(s, 8, 7)
		if s.Solve() != Unsat {
			b.Fatal("want Unsat")
		}
	}
}

func BenchmarkSolveRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	var cnf [][]Lit
	nVars := 100
	for i := 0; i < 420; i++ {
		var cl []Lit
		for j := 0; j < 3; j++ {
			cl = append(cl, MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0))
		}
		cnf = append(cnf, cl)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solveCNF(cnf)
	}
}
