// Package cfg provides control-flow-graph analyses over the IR: dominator
// and postdominator trees (Cooper–Harvey–Kennedy), dominance queries (the
// paper computes which assert point dominates each bug), and control
// dependence, which feeds the program-dependence-graph slicer.
package cfg

import (
	"bf4/internal/ir"
)

// Dominators holds an immediate-dominator tree over the nodes reachable
// from the root.
type Dominators struct {
	idom  map[*ir.Node]*ir.Node
	order map[*ir.Node]int // reverse postorder index
}

// NewDominators computes the dominator tree of the graph rooted at
// p.Start.
func NewDominators(p *ir.Program) *Dominators {
	topo := p.Topo()
	return computeDoms(topo, func(n *ir.Node) []*ir.Node { return n.Preds })
}

// NewPostDominators computes the postdominator tree. Terminal nodes are
// joined through a virtual exit (represented by nil); a node whose idom is
// the virtual exit reports Idom == nil.
func NewPostDominators(p *ir.Program) *Dominators {
	topo := p.Topo()
	rev := make([]*ir.Node, len(topo))
	for i, n := range topo {
		rev[len(topo)-1-i] = n
	}
	// Build with a virtual exit: terminals have no succs; treat them as
	// preds of the virtual root by seeding them as roots.
	return computeDomsMulti(rev, func(n *ir.Node) []*ir.Node { return n.Succs })
}

// computeDoms runs CHK with the first node of order as the unique root.
func computeDoms(order []*ir.Node, preds func(*ir.Node) []*ir.Node) *Dominators {
	d := &Dominators{idom: map[*ir.Node]*ir.Node{}, order: map[*ir.Node]int{}}
	for i, n := range order {
		d.order[n] = i
	}
	root := order[0]
	d.idom[root] = root
	changed := true
	for changed {
		changed = false
		for _, n := range order[1:] {
			var newIdom *ir.Node
			for _, p := range preds(n) {
				if _, ok := d.idom[p]; !ok {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom == nil {
				continue
			}
			if d.idom[n] != newIdom {
				d.idom[n] = newIdom
				changed = true
			}
		}
	}
	return d
}

// computeDomsMulti handles multiple roots (all terminals, for
// postdominance) via a virtual root: nodes with no successors are treated
// as immediately dominated by the virtual root (nil).
func computeDomsMulti(order []*ir.Node, preds func(*ir.Node) []*ir.Node) *Dominators {
	d := &Dominators{idom: map[*ir.Node]*ir.Node{}, order: map[*ir.Node]int{}}
	virtual := &ir.Node{ID: -1}
	d.order[virtual] = -1
	d.idom[virtual] = virtual
	for i, n := range order {
		d.order[n] = i
	}
	changed := true
	for changed {
		changed = false
		for _, n := range order {
			var newIdom *ir.Node
			ps := preds(n)
			if len(ps) == 0 {
				newIdom = virtual
			}
			for _, p := range ps {
				if _, ok := d.idom[p]; !ok {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = d.intersectV(p, newIdom, virtual)
				}
			}
			if newIdom == nil {
				continue
			}
			if d.idom[n] != newIdom {
				d.idom[n] = newIdom
				changed = true
			}
		}
	}
	// Normalize: virtual root becomes nil.
	for n, m := range d.idom {
		if m == virtual {
			d.idom[n] = nil
		}
	}
	return d
}

func (d *Dominators) intersect(a, b *ir.Node) *ir.Node {
	for a != b {
		for d.order[a] > d.order[b] {
			a = d.idom[a]
		}
		for d.order[b] > d.order[a] {
			b = d.idom[b]
		}
	}
	return a
}

func (d *Dominators) intersectV(a, b, virtual *ir.Node) *ir.Node {
	for a != b {
		if a == virtual || b == virtual {
			return virtual
		}
		for d.order[a] > d.order[b] {
			a = d.idom[a]
			if a == nil {
				return virtual
			}
		}
		for d.order[b] > d.order[a] {
			b = d.idom[b]
			if b == nil {
				return virtual
			}
		}
	}
	return a
}

// Idom returns the immediate dominator of n (nil for the root, the
// virtual exit, or unreachable nodes).
func (d *Dominators) Idom(n *ir.Node) *ir.Node {
	m := d.idom[n]
	if m == n {
		return nil
	}
	return m
}

// Dominates reports whether a dominates b (reflexively).
func (d *Dominators) Dominates(a, b *ir.Node) bool {
	for n := b; n != nil; {
		if n == a {
			return true
		}
		m := d.idom[n]
		if m == n || m == nil {
			return false
		}
		n = m
	}
	return false
}

// DominatingAssertPoint returns the nearest assert point (table apply)
// that dominates n, or nil. This implements the paper's bug→assert-point
// assignment (footnote 2: dominance means all runs to the bug pass
// through the assert point).
func DominatingAssertPoint(d *Dominators, n *ir.Node) *ir.Node {
	for m := d.idom[n]; m != nil; {
		if m.Kind == ir.AssertPoint {
			return m
		}
		next := d.idom[m]
		if next == m {
			return nil
		}
		m = next
	}
	return nil
}

// ControlDeps computes, for each node, the set of branch nodes it is
// control-dependent on (classic CD via postdominance: n is
// control-dependent on branch b if b has a successor from which n is
// always reached — n postdominates that successor — while n does not
// postdominate b itself).
func ControlDeps(p *ir.Program, pdom *Dominators) map[*ir.Node][]*ir.Node {
	deps := map[*ir.Node][]*ir.Node{}
	for _, b := range p.Topo() {
		if b.Kind != ir.Branch {
			continue
		}
		for _, s := range b.Succs {
			// Walk the postdominator chain from s up to (but excluding)
			// b's postdominator; everything on it is control-dependent
			// on b.
			stop := pdom.idom[b]
			for n := s; n != nil && n != stop; {
				deps[n] = append(deps[n], b)
				next := pdom.idom[n]
				if next == n {
					break
				}
				n = next
			}
		}
	}
	return deps
}
