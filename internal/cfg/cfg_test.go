package cfg

import (
	"testing"

	"bf4/internal/ir"
	"bf4/internal/smt"
)

// diamond builds: start -> branch -> (a | b) -> join -> exit.
func diamond(t *testing.T) (*ir.Program, map[string]*ir.Node) {
	t.Helper()
	p := ir.NewProgram("diamond")
	nodes := map[string]*ir.Node{}
	mk := func(name string, kind ir.NodeKind) *ir.Node {
		n := p.NewNode(kind)
		n.Comment = name
		nodes[name] = n
		return n
	}
	start := mk("start", ir.Nop)
	br := mk("br", ir.Branch)
	br.Expr = p.F.BoolVar("c")
	a := mk("a", ir.Nop)
	b := mk("b", ir.Nop)
	join := mk("join", ir.Nop)
	exit := mk("exit", ir.AcceptTerm)
	p.Start = start
	p.Edge(start, br)
	p.Edge(br, a)
	p.Edge(br, b)
	p.Edge(a, join)
	p.Edge(b, join)
	p.Edge(join, exit)
	return p, nodes
}

func TestDominatorsDiamond(t *testing.T) {
	p, n := diamond(t)
	d := NewDominators(p)
	cases := []struct{ node, idom string }{
		{"br", "start"},
		{"a", "br"},
		{"b", "br"},
		{"join", "br"},
		{"exit", "join"},
	}
	for _, c := range cases {
		if got := d.Idom(n[c.node]); got != n[c.idom] {
			t.Errorf("idom(%s) = %v, want %s", c.node, got, c.idom)
		}
	}
	if d.Idom(n["start"]) != nil {
		t.Error("root must have no idom")
	}
	if !d.Dominates(n["br"], n["exit"]) {
		t.Error("br must dominate exit")
	}
	if d.Dominates(n["a"], n["exit"]) {
		t.Error("a must not dominate exit")
	}
	if !d.Dominates(n["a"], n["a"]) {
		t.Error("dominance is reflexive")
	}
}

func TestPostDominatorsDiamond(t *testing.T) {
	p, n := diamond(t)
	pd := NewPostDominators(p)
	if got := pd.Idom(n["a"]); got != n["join"] {
		t.Errorf("pidom(a) = %v, want join", got)
	}
	if got := pd.Idom(n["br"]); got != n["join"] {
		t.Errorf("pidom(br) = %v, want join", got)
	}
	if !pd.Dominates(n["exit"], n["start"]) {
		t.Error("exit must postdominate start")
	}
	if pd.Dominates(n["a"], n["start"]) {
		t.Error("a must not postdominate start")
	}
}

func TestControlDepsDiamond(t *testing.T) {
	p, n := diamond(t)
	pd := NewPostDominators(p)
	deps := ControlDeps(p, pd)
	hasDep := func(x string) bool {
		for _, b := range deps[n[x]] {
			if b == n["br"] {
				return true
			}
		}
		return false
	}
	if !hasDep("a") || !hasDep("b") {
		t.Error("a and b must be control-dependent on br")
	}
	if hasDep("join") {
		t.Error("join must not be control-dependent on br")
	}
}

func TestDominatingAssertPoint(t *testing.T) {
	p := ir.NewProgram("ap")
	start := p.NewNode(ir.Nop)
	p.Start = start
	ap := p.NewNode(ir.AssertPoint)
	inst := &ir.TableInstance{Table: &ir.Table{Name: "t"}, ActIndex: map[string]int{}}
	ap.Instance = inst
	inst.Apply = ap
	br := p.NewNode(ir.Branch)
	br.Expr = p.F.BoolVar("c")
	bug := p.NewNode(ir.BugTerm)
	okN := p.NewNode(ir.AcceptTerm)
	p.Edge(start, ap)
	p.Edge(ap, br)
	p.Edge(br, bug)
	p.Edge(br, okN)
	d := NewDominators(p)
	if got := DominatingAssertPoint(d, bug); got != ap {
		t.Fatalf("dominating assert point = %v, want ap", got)
	}
	if got := DominatingAssertPoint(d, ap); got != nil {
		t.Fatalf("assert point itself has no dominating AP, got %v", got)
	}
}

// TestDominatorsOnRealProgram sanity-checks on a compiled corpus-like CFG:
// the start node dominates every reachable node.
func TestDominatorsStartDominatesAll(t *testing.T) {
	p, _ := diamond(t)
	d := NewDominators(p)
	for n := range p.Reachable() {
		if !d.Dominates(p.Start, n) {
			t.Errorf("start must dominate n%d", n.ID)
		}
	}
	_ = smt.BoolSort
}
