package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"bf4/internal/driver"
	"bf4/internal/obs"
	"bf4/internal/progs"
	"bf4/internal/shim"
	"bf4/internal/spec"
	"bf4/internal/trace"
)

// ShimFleetResult reports the fleet-shim experiment: a sharded shim
// service driven through a deterministic update trace with scripted
// shard kills and queued-write replay. Every field is a deterministic
// counter — no wall-clock — so CI can diff the JSON artifact across
// runs and machines.
type ShimFleetResult struct {
	Shards             int   `json:"shards"`
	UpdatesPerShard    int   `json:"updates_per_shard"`
	UpdatesApplied     int64 `json:"updates_applied"`
	UpdatesRejected    int64 `json:"updates_rejected"`
	DedupHits          int64 `json:"dedup_hits"`
	Restores           int64 `json:"restores"`
	ReplayedBatches    int64 `json:"replayed_batches"`
	Checkpoints        int64 `json:"checkpoints"`
	JournalAppends     int64 `json:"journal_appends"`
	AnnotationCompiles int64 `json:"annotation_compiles"`
	AnnotationHits     int64 `json:"annotation_cache_hits"`
}

// ShimFleet runs the fleet experiment: shards switches all running one
// generated program (compiled once through the annotation cache), each
// fed a deterministic per-shard trace of n updates with idempotency
// keys. Every shard is killed and restored from its snapshot+journal
// at two scripted points, each time with one write parked in the
// degraded queue and replayed on restore; one in three applied keys is
// retried to exercise the dedup window.
func ShimFleet(scale, n int) (*ShimFleetResult, error) {
	src := progs.GenerateSwitch(scale)
	res, err := driver.Run("switch", src, driver.DefaultConfig())
	if err != nil {
		return nil, err
	}
	pl := res.Fixed
	if pl == nil {
		pl = res.Initial
	}
	file := spec.Build("switch", pl.IR, res.InitialRep, res.FinalInfer, res.Fixes.Special)

	root, err := os.MkdirTemp("", "bf4-shimfleet-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	reg := obs.NewRegistry()
	fleet := shim.NewFleet(shim.FleetConfig{
		StateRoot:    root,
		OnShardDown:  shim.DownQueue,
		CompactEvery: 64,
		NoSync:       true, // deterministic counters; skip per-record fsync
		Obs:          reg,
	})
	defer fleet.Close()

	const shards = 4
	ids := make([]string, shards)
	for i := range ids {
		ids[i] = fmt.Sprintf("sw%d", i)
		if _, err := fleet.AddShard(ids[i], file); err != nil {
			return nil, err
		}
	}

	perShard := n / shards
	if perShard < 1 {
		perShard = 1
	}
	out := &ShimFleetResult{Shards: shards, UpdatesPerShard: perShard}
	// No supervisor: kills and restores are scripted, so every counter
	// below is a pure function of (scale, n).
	killAt := []int{perShard / 3, 2 * perShard / 3}
	for i, id := range ids {
		sd := fleet.Shard(id)
		gen := trace.NewGenerator(int64(i+1), file)
		updates := gen.Updates(perShard)
		for j, u := range updates {
			for _, k := range killAt {
				if j == k {
					if err := killRestoreWithParkedWrite(fleet, sd, fmt.Sprintf("park-%s-%d", id, j), u); err != nil {
						return nil, err
					}
				}
			}
			key := fmt.Sprintf("bench-%s:%d", id, j)
			err := sd.ApplyWithKey(key, u)
			if err != nil {
				out.UpdatesRejected++
			} else {
				out.UpdatesApplied++
			}
			if j%3 == 0 {
				// Idempotent retry: must return the recorded outcome
				// without re-validating or double-applying.
				if rerr := sd.ApplyWithKey(key, u); (rerr == nil) != (err == nil) {
					return nil, fmt.Errorf("shimfleet: retry of %s changed outcome: %v vs %v", key, err, rerr)
				}
			}
		}
	}

	out.DedupHits = reg.CounterValue("bf4_shim_dedup_hits_total")
	out.Restores = reg.CounterValue("bf4_fleet_restores_total")
	out.ReplayedBatches = reg.CounterValue("bf4_fleet_replayed_batches_total")
	out.Checkpoints = reg.CounterValue("bf4_shim_checkpoints_total")
	out.JournalAppends = reg.CounterValue("bf4_shim_journal_appends_total")
	out.AnnotationCompiles = reg.CounterValue("bf4_fleet_annotation_compiles_total")
	out.AnnotationHits = reg.CounterValue("bf4_fleet_annotation_cache_hits_total")

	if out.AnnotationCompiles != 1 {
		return nil, fmt.Errorf("shimfleet: %d annotation compiles for one program across %d shards, want 1",
			out.AnnotationCompiles, shards)
	}
	if out.Restores != int64(shards*len(killAt)) {
		return nil, fmt.Errorf("shimfleet: %d restores, want %d", out.Restores, shards*len(killAt))
	}
	if out.ReplayedBatches != out.Restores {
		return nil, fmt.Errorf("shimfleet: %d replayed batches for %d restores, want one parked write per restore",
			out.ReplayedBatches, out.Restores)
	}
	return out, nil
}

// killRestoreWithParkedWrite fences a shard, parks one write in the
// degraded queue, then restores — the write must be replayed during the
// restore drain, exactly once.
func killRestoreWithParkedWrite(fleet *shim.Fleet, sd *shim.Shard, key string, u *shim.Update) error {
	sd.Kill()
	parked := make(chan error, 1)
	go func() { parked <- sd.ApplyWithKey(key, u) }()
	deadline := time.Now().Add(10 * time.Second)
	for sd.QueueLen() == 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("shimfleet: write never parked on shard %s", sd.ID())
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := fleet.RestoreNow(sd.ID()); err != nil {
		return err
	}
	<-parked // outcome (applied or rejected) does not matter; delivery does
	return nil
}

// ShimFleetJSON renders the result as the BENCH_shimfleet.json
// artifact.
func ShimFleetJSON(r *ShimFleetResult) ([]byte, error) {
	doc := struct {
		Experiment string           `json:"experiment"`
		Result     *ShimFleetResult `json:"result"`
	}{Experiment: "shimfleet", Result: r}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
