package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"bf4/internal/driver"
	"bf4/internal/obs"
	"bf4/internal/pool"
	"bf4/internal/progs"
)

// Table1JSONRow is one program of BENCH_table1.json: the Table 1 verdict
// columns joined with the deterministic solver counters for that run.
// Every field is reproducible bit-for-bit across machines and worker
// counts — no wall-clock — so CI can compare two artifacts numerically.
type Table1JSONRow struct {
	Program        string `json:"program"`
	LoC            int    `json:"loc"`
	Bugs           int    `json:"bugs"`
	BugsAfterInfer int    `json:"bugs_after_infer"`
	BugsAfterFixes int    `json:"bugs_after_fixes"`
	KeysAdded      int    `json:"keys_added"`
	SolverChecks   int64  `json:"solver_checks"`
	Sat            int64  `json:"sat"`
	Unsat          int64  `json:"unsat"`
	Conflicts      int64  `json:"conflicts"`
	Propagations   int64  `json:"propagations"`
	LearnedClauses int64  `json:"learned_clauses"`
	CNFVars        int64  `json:"cnf_vars"`
	CNFClauses     int64  `json:"cnf_clauses"`
	Discharged     int64  `json:"discharged"`
	InferCalls     int64  `json:"infer_calls"`
	GateHits       int64  `json:"gate_hits"`
	Inprocessings  int64  `json:"inprocessings"`
	InprocDeleted  int64  `json:"inprocess_deleted"`
	InprocElimVars int64  `json:"inprocess_elim_vars"`
}

// Table1JSON marshals the table1 rows and their metric summaries as the
// BENCH_table1.json artifact. Incremental records which solver-core mode
// produced the artifact so tools/benchcmp can label its comparison.
func Table1JSON(rows []Table1Row, ms []Table1Metrics, incremental bool) ([]byte, error) {
	if len(rows) != len(ms) {
		return nil, fmt.Errorf("table1 json: %d rows but %d metric summaries", len(rows), len(ms))
	}
	var totalConflicts, totalProps int64
	out := make([]Table1JSONRow, len(rows))
	for i, r := range rows {
		m := ms[i]
		if m.Program != r.Program {
			return nil, fmt.Errorf("table1 json: row %d is %s but metrics are %s", i, r.Program, m.Program)
		}
		out[i] = Table1JSONRow{
			Program:        r.Program,
			LoC:            r.LoC,
			Bugs:           r.Bugs,
			BugsAfterInfer: r.BugsAfterInfer,
			BugsAfterFixes: r.BugsAfterFixes,
			KeysAdded:      r.KeysAdded,
			SolverChecks:   m.SolverChecks,
			Sat:            m.Sat,
			Unsat:          m.Unsat,
			Conflicts:      m.Conflicts,
			Propagations:   m.Propagations,
			LearnedClauses: m.LearnedCls,
			CNFVars:        m.CNFVars,
			CNFClauses:     m.CNFClauses,
			Discharged:     m.Discharged,
			InferCalls:     m.InferCalls,
			GateHits:       m.GateHits,
			Inprocessings:  m.Inprocessings,
			InprocDeleted:  m.InprocDeleted,
			InprocElimVars: m.InprocElim,
		}
		totalConflicts += m.Conflicts
		totalProps += m.Propagations
	}
	return json.MarshalIndent(struct {
		Bench             string          `json:"bench"`
		Incremental       bool            `json:"incremental"`
		Programs          int             `json:"programs"`
		TotalConflicts    int64           `json:"total_conflicts"`
		TotalPropagations int64           `json:"total_propagations"`
		Rows              []Table1JSONRow `json:"rows"`
	}{"table1", incremental, len(out), totalConflicts, totalProps, out}, "", "  ")
}

// IncrementalRow compares one corpus program verified with the
// incremental solver core on vs off. Incremental mode keeps one
// persistent solver per slice (clause reuse across activation scopes,
// structurally-hashed CNF, inprocessing between checks), so what should
// move is solver effort — conflicts and propagations — while every
// verdict stays byte-identical.
type IncrementalRow struct {
	Program string `json:"program"`
	// ConflictsOn/Off and PropagationsOn/Off are the whole-run solver
	// effort counters in each mode.
	ConflictsOn     int64 `json:"conflicts_on"`
	ConflictsOff    int64 `json:"conflicts_off"`
	PropagationsOn  int64 `json:"propagations_on"`
	PropagationsOff int64 `json:"propagations_off"`
	// ClausesOn/Off are the initial bug-finding solver's final CNF sizes;
	// structural hashing plus inprocessing should keep On at or below Off.
	ClausesOn  int64 `json:"cnf_clauses_on"`
	ClausesOff int64 `json:"cnf_clauses_off"`
	// GateHits counts CNF emissions avoided by structural hashing;
	// Inprocessings counts cleanup passes between checks.
	GateHits      int64 `json:"gate_hits"`
	Inprocessings int64 `json:"inprocessings"`
	// Identical reports whether the two runs produced byte-identical
	// verification verdicts and inferred annotations. The incremental
	// core is only sound if this is true for every program.
	Identical bool `json:"identical"`
}

// IncrementalAblation runs every corpus program twice — incremental
// solver core on and off — and reports per-program solver-effort deltas
// plus verdict identity.
func IncrementalAblation(switchScale, workers int) ([]IncrementalRow, error) {
	type job struct{ name, src string }
	var jobs []job
	for _, p := range progs.All() {
		src := p.Source
		if p.Name == "switch" {
			if switchScale == 0 {
				continue
			}
			src = progs.GenerateSwitch(switchScale)
		}
		jobs = append(jobs, job{p.Name, src})
	}
	rows, err := pool.MapErr(workers, len(jobs), func(i int) (IncrementalRow, error) {
		name, src := jobs[i].name, jobs[i].src

		runArm := func(incremental bool) (*driver.Result, *obs.Registry, error) {
			cfg := driver.DefaultConfig()
			cfg.Incremental = incremental
			reg := obs.NewRegistry()
			cfg.Obs = reg
			res, err := driver.Run(name, src, cfg)
			return res, reg, err
		}
		resOn, regOn, err := runArm(true)
		if err != nil {
			return IncrementalRow{}, fmt.Errorf("%s (incremental on): %w", name, err)
		}
		resOff, regOff, err := runArm(false)
		if err != nil {
			return IncrementalRow{}, fmt.Errorf("%s (incremental off): %w", name, err)
		}
		return IncrementalRow{
			Program:         name,
			ConflictsOn:     regOn.CounterValue("bf4_solver_conflicts_total"),
			ConflictsOff:    regOff.CounterValue("bf4_solver_conflicts_total"),
			PropagationsOn:  regOn.CounterValue("bf4_solver_propagations_total"),
			PropagationsOff: regOff.CounterValue("bf4_solver_propagations_total"),
			ClausesOn:       int64(resOn.InitialRep.CNFClauses),
			ClausesOff:      int64(resOff.InitialRep.CNFClauses),
			GateHits:        regOn.CounterValue("bf4_solver_gate_hits_total"),
			Inprocessings:   regOn.CounterValue("bf4_solver_inprocessings_total"),
			Identical:       verdictFingerprint(resOn) == verdictFingerprint(resOff),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Program < rows[j].Program })
	return rows, nil
}

// RenderIncrementalStable prints the ablation without timing columns;
// every field is deterministic, so CI can diff the output.
func RenderIncrementalStable(rows []IncrementalRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %10s %10s %12s %12s %10s %11s %9s %7s %9s\n",
		"Program", "conflicts", "conflicts0", "propagations", "props0", "clauses", "clauses0", "gatehits", "inproc", "identical")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %10d %10d %12d %12d %10d %11d %9d %7d %9v\n",
			r.Program, r.ConflictsOn, r.ConflictsOff, r.PropagationsOn, r.PropagationsOff,
			r.ClausesOn, r.ClausesOff, r.GateHits, r.Inprocessings, r.Identical)
	}
	return b.String()
}

// IncrementalJSON marshals the ablation for BENCH_incremental.json.
func IncrementalJSON(rows []IncrementalRow) ([]byte, error) {
	reducedConflicts, reducedProps := 0, 0
	identical := true
	var onTotal, offTotal int64
	for _, r := range rows {
		if r.ConflictsOn < r.ConflictsOff {
			reducedConflicts++
		}
		if r.PropagationsOn < r.PropagationsOff {
			reducedProps++
		}
		onTotal += r.ConflictsOn
		offTotal += r.ConflictsOff
		identical = identical && r.Identical
	}
	return json.MarshalIndent(struct {
		Bench             string           `json:"bench"`
		Programs          int              `json:"programs"`
		ReducedConflicts  int              `json:"reduced_conflicts"`
		ReducedProps      int              `json:"reduced_propagations"`
		TotalConflictsOn  int64            `json:"total_conflicts_on"`
		TotalConflictsOff int64            `json:"total_conflicts_off"`
		AllIdentical      bool             `json:"all_identical"`
		Rows              []IncrementalRow `json:"rows"`
	}{"incremental", len(rows), reducedConflicts, reducedProps, onTotal, offTotal, identical, rows}, "", "  ")
}
