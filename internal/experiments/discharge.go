package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"bf4/internal/driver"
	"bf4/internal/pool"
	"bf4/internal/progs"
	"bf4/internal/solver"
	"bf4/internal/spec"
)

// DischargeRow compares one corpus program verified with the
// static-analysis pre-pass on vs off.
type DischargeRow struct {
	Program string
	// Checks is the number of instrumented bug checks the abstract
	// interpretation saw (the CFG-reachable solver workload).
	Checks int
	// Discharged is how many the pre-pass proved unreachable without a
	// solver query; Validity is the subset the header-validity lattice
	// alone handled.
	Discharged int
	Validity   int
	// QueriesOn/QueriesOff count initial-report solver Checks with the
	// pre-pass on and off.
	QueriesOn, QueriesOff int
	// SolveOn/SolveOff are the initial bug-finding solve times.
	SolveOn, SolveOff time.Duration
	// Identical reports whether the two runs produced byte-identical
	// verification verdicts and inferred annotations (bug counts, per-bug
	// verdicts, fixes, and the rendered controller spec).
	Identical bool
	// CrossChecked counts discharged queries re-proven unsat by the
	// solver inside a Push/Pop scope (0 unless cross-checking is on).
	CrossChecked int
	// Diags is the number of lint diagnostics.
	Diags int
}

// Discharge runs every corpus program twice — static-analysis pre-pass
// on and off — and reports per-program discharge counts, solver-time
// delta, and whether the verdicts and inferred annotations are
// byte-identical (the pre-pass must be a pure optimization). With
// crossCheck set, each discharged reachability condition is additionally
// re-proven unsatisfiable by the solver inside a Push/Pop scope — an
// end-to-end soundness audit of the abstract interpretation.
func Discharge(switchScale, workers int, crossCheck bool) ([]DischargeRow, error) {
	type job struct{ name, src string }
	var jobs []job
	for _, p := range progs.All() {
		src := p.Source
		if p.Name == "switch" {
			if switchScale == 0 {
				continue
			}
			src = progs.GenerateSwitch(switchScale)
		}
		jobs = append(jobs, job{p.Name, src})
	}
	rows, err := pool.MapErr(workers, len(jobs), func(i int) (DischargeRow, error) {
		name, src := jobs[i].name, jobs[i].src

		on := driver.DefaultConfig()
		on.Analysis = true
		resOn, err := driver.Run(name, src, on)
		if err != nil {
			return DischargeRow{}, fmt.Errorf("%s (analysis on): %w", name, err)
		}
		off := driver.DefaultConfig()
		off.Analysis = false
		resOff, err := driver.Run(name, src, off)
		if err != nil {
			return DischargeRow{}, fmt.Errorf("%s (analysis off): %w", name, err)
		}

		row := DischargeRow{
			Program:    name,
			QueriesOn:  resOn.InitialRep.Checks,
			QueriesOff: resOff.InitialRep.Checks,
			SolveOn:    resOn.InitialRep.SolveTime,
			SolveOff:   resOff.InitialRep.SolveTime,
			Identical:  verdictFingerprint(resOn) == verdictFingerprint(resOff),
		}
		if ar := resOn.Analysis; ar != nil {
			row.Checks = ar.Stats.BugChecks
			row.Discharged = ar.Stats.Discharged
			row.Validity = ar.Stats.DischargedValidity
			row.Diags = len(ar.Diags)
		}

		if crossCheck && resOn.Analysis != nil {
			// Audit: every discharged condition must be unsat. Each probe
			// runs in its own Push/Pop scope so the assertions never
			// pollute one another while the solver stays incremental.
			s := solver.New(resOn.Initial.IR.F)
			for _, b := range resOn.InitialRep.Bugs {
				if !b.Discharged || b.Cond == nil {
					continue
				}
				s.Push()
				s.Assert(b.Cond)
				res := s.Check()
				s.Pop()
				if res != solver.Unsat {
					return DischargeRow{}, fmt.Errorf(
						"%s: discharged bug %s is not unsat (%v) — analysis unsound",
						name, b.Description(), res)
				}
				row.CrossChecked++
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Program < rows[j].Program })
	return rows, nil
}

// verdictFingerprint renders everything verification-relevant about a
// run: per-bug verdicts of the initial report, bug counts at every
// stage, the proposed fixes, and the rendered controller assertions.
// Two runs agree iff their fingerprints are byte-identical.
func verdictFingerprint(res *driver.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bugs=%d afterInfer=%d afterFixes=%d keys=%d tables=%d rounds=%d\n",
		res.Bugs, res.BugsAfterInfer, res.BugsAfterFixes, res.KeysAdded, res.TablesTouched, res.Rounds)
	for _, bug := range res.InitialRep.Bugs {
		fmt.Fprintf(&b, "bug %d %s reachable=%v\n", bug.Node.ID, bug.Kind, bug.Reachable)
	}
	fmt.Fprintf(&b, "fixes:%s\n", res.Fixes.Describe())
	finalPl := res.Fixed
	if finalPl == nil {
		finalPl = res.Initial
	}
	file := spec.Build(res.Name, finalPl.IR, res.InitialRep, res.FinalInfer, res.Fixes.Special)
	b.WriteString(file.Render())
	return b.String()
}

// RenderDischarge prints the discharge comparison with timings.
func RenderDischarge(rows []DischargeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %7s %10s %9s %9s %10s %10s %10s %9s %6s\n",
		"Program", "checks", "discharged", "validity", "queries", "queries0", "solve", "solve0", "identical", "diags")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %7d %10d %9d %9d %10d %10s %10s %9v %6d\n",
			r.Program, r.Checks, r.Discharged, r.Validity, r.QueriesOn, r.QueriesOff,
			r.SolveOn.Round(time.Millisecond), r.SolveOff.Round(time.Millisecond), r.Identical, r.Diags)
	}
	return b.String()
}

// RenderDischargeStable prints the comparison without timing columns;
// the remaining fields are deterministic, so CI can diff the output.
func RenderDischargeStable(rows []DischargeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %7s %10s %9s %9s %10s %9s %6s\n",
		"Program", "checks", "discharged", "validity", "queries", "queries0", "identical", "diags")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %7d %10d %9d %9d %10d %9v %6d\n",
			r.Program, r.Checks, r.Discharged, r.Validity, r.QueriesOn, r.QueriesOff, r.Identical, r.Diags)
	}
	return b.String()
}
