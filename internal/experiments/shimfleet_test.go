package experiments

import (
	"bytes"
	"testing"
)

func TestShimFleetSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: full loop + fleet trace")
	}
	r, err := ShimFleet(1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if r.UpdatesApplied+r.UpdatesRejected != int64(r.Shards*r.UpdatesPerShard) {
		t.Fatalf("applied %d + rejected %d != %d updates issued",
			r.UpdatesApplied, r.UpdatesRejected, r.Shards*r.UpdatesPerShard)
	}
	if r.AnnotationCompiles != 1 || r.AnnotationHits != int64(r.Shards-1) {
		t.Fatalf("verify-once broken: %d compiles, %d hits for %d shards",
			r.AnnotationCompiles, r.AnnotationHits, r.Shards)
	}
	if r.DedupHits == 0 {
		t.Fatal("retry loop never hit the dedup window")
	}
	if r.JournalAppends == 0 {
		t.Fatal("no journal appends — persistence was not exercised")
	}

	// The artifact is a deterministic function of (scale, n): a second
	// run must serialize byte-identically (the CI trajectory gate diffs
	// exactly this).
	r2, err := ShimFleet(1, 40)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ShimFleetJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ShimFleetJSON(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("shimfleet not deterministic:\nrun1 %s\nrun2 %s", a, b)
	}
}
