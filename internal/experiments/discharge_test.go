package experiments

import "testing"

// TestDischargePureOptimization re-verifies the corpus (switch skipped;
// the golden lint test covers it) with the pre-pass on vs off: verdicts
// must match byte-for-byte, a nonzero fraction of checks must be
// discharged somewhere, and every discharged condition must re-prove
// unsat under the solver (crossCheck).
func TestDischargePureOptimization(t *testing.T) {
	rows, err := Discharge(0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	totalChecks, totalDischarged := 0, 0
	for _, r := range rows {
		if !r.Identical {
			t.Errorf("%s: verdicts differ between -analysis=on and off", r.Program)
		}
		if r.Discharged > r.Checks {
			t.Errorf("%s: discharged %d of only %d checks", r.Program, r.Discharged, r.Checks)
		}
		totalChecks += r.Checks
		totalDischarged += r.Discharged
	}
	if totalDischarged == 0 {
		t.Errorf("no checks discharged across the corpus (of %d)", totalChecks)
	}
}
