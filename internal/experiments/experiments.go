// Package experiments regenerates every table and quantitative claim of
// the paper's evaluation (the experiment index in DESIGN.md): Table 1
// across the corpus, the slicing ablation (§4.1), Fast-Infer vs Infer
// (§4.2), the multi-table and dontCare heuristics (§4.2), the p4v and
// Vera comparisons (§5.2), the shim latency study (§5.3), the key
// overhead analysis (§5) and the stage-cost motivation (§3). The cmd/
// bf4-bench binary and the repository's Go benchmarks both drive these
// entry points.
//
// Experiments that run several independent verifications (the corpus
// loop of Table1, the two arms of each ablation) accept a workers knob
// and fan the runs out over a bounded pool (<= 0 means GOMAXPROCS).
// Each run compiles its own pipeline — term factories and solvers are
// never shared across programs — and results are collected in a fixed
// order, so every output except wall-clock timings is identical for
// every worker count. Pass workers=1 to reproduce the paper's serial
// timing methodology.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"bf4/internal/baseline"
	"bf4/internal/core"
	"bf4/internal/cost"
	"bf4/internal/dataplane"
	"bf4/internal/driver"
	"bf4/internal/infer"
	"bf4/internal/ir"
	"bf4/internal/obs"
	"bf4/internal/pool"
	"bf4/internal/progs"
	"bf4/internal/shim"
	"bf4/internal/spec"
	"bf4/internal/trace"
)

// ---------------------------------------------------------------- E1

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Program        string
	LoC            int
	Bugs           int
	BugsAfterInfer int
	Runtime        time.Duration
	BugsAfterFixes int
	KeysAdded      int
}

// Table1 runs the full pipeline over the corpus, fanning the programs
// out over workers goroutines (<= 0 means GOMAXPROCS). Every program is
// an independent verification — its own parse, term factory, and
// solvers — so the rows are identical for any worker count; only the
// Runtime column is load-dependent. switchScale overrides the generated
// switch's scale (0 = skip switch, for quick runs).
func Table1(switchScale, workers int) ([]Table1Row, error) {
	rows, _, err := table1(switchScale, workers, false, nil)
	return rows, err
}

// Table1Metrics is one program's deterministic metric summary for the
// bf4-bench -metrics table: solver and pipeline counters only, no
// timings, so the rendering is byte-stable across worker counts and
// machines (search effort is deterministic per program — each run owns
// its factory and solvers).
type Table1Metrics struct {
	Program       string
	SolverChecks  int64
	Sat, Unsat    int64
	Conflicts     int64
	Propagations  int64
	LearnedCls    int64
	CNFVars       int64
	CNFClauses    int64
	InferCalls    int64
	Discharged    int64 // analysis + fold pre-discharges
	PoolInferRuns int64 // instances handed to the infer pool
	// Incremental-core counters (0 when -incremental=off): structural
	// gate-hash hits in the bit-blaster, inprocessing passes, and what
	// those passes removed from the clause database.
	GateHits      int64
	Inprocessings int64
	InprocDeleted int64
	InprocElim    int64
}

// Table1WithMetrics is Table1 plus a per-program metric summary gathered
// through a private obs.Registry per run. The Table1Row values are
// byte-identical to Table1's — the observability contract — which CI
// enforces by diffing the table1 section with -metrics on and off.
func Table1WithMetrics(switchScale, workers int) ([]Table1Row, []Table1Metrics, error) {
	return table1(switchScale, workers, true, nil)
}

// Table1Incremental is Table1WithMetrics with the incremental solver
// core pinned on or off (instead of the driver default). The Table1Row
// values must be identical either way — incremental mode changes solver
// effort, never verdicts — which the bench-trajectory CI job enforces by
// diffing the stable renderings; the metrics (conflicts, propagations,
// CNF size) are what the two BENCH_table1.json artifacts compare.
func Table1Incremental(switchScale, workers int, incremental bool) ([]Table1Row, []Table1Metrics, error) {
	return table1(switchScale, workers, true, func(cfg *driver.Config) { cfg.Incremental = incremental })
}

func table1(switchScale, workers int, withMetrics bool, mutate func(*driver.Config)) ([]Table1Row, []Table1Metrics, error) {
	type job struct{ name, src string }
	var jobs []job
	for _, p := range progs.All() {
		src := p.Source
		if p.Name == "switch" {
			if switchScale == 0 {
				continue
			}
			src = progs.GenerateSwitch(switchScale)
		}
		jobs = append(jobs, job{p.Name, src})
	}
	type out struct {
		row Table1Row
		m   Table1Metrics
	}
	outs, err := pool.MapErr(workers, len(jobs), func(i int) (out, error) {
		cfg := driver.DefaultConfig()
		if mutate != nil {
			mutate(&cfg)
		}
		var reg *obs.Registry
		if withMetrics {
			reg = obs.NewRegistry()
			cfg.Obs = reg
		}
		res, err := driver.Run(jobs[i].name, jobs[i].src, cfg)
		if err != nil {
			return out{}, fmt.Errorf("%s: %w", jobs[i].name, err)
		}
		o := out{row: Table1Row{
			Program:        jobs[i].name,
			LoC:            res.LoC,
			Bugs:           res.Bugs,
			BugsAfterInfer: res.BugsAfterInfer,
			Runtime:        res.Runtime,
			BugsAfterFixes: res.BugsAfterFixes,
			KeysAdded:      res.KeysAdded,
		}}
		if withMetrics {
			o.m = Table1Metrics{
				Program:      jobs[i].name,
				SolverChecks: reg.CounterValue("bf4_solver_checks_total"),
				Sat:          reg.CounterValue("bf4_solver_sat_total"),
				Unsat:        reg.CounterValue("bf4_solver_unsat_total"),
				Conflicts:    reg.CounterValue("bf4_solver_conflicts_total"),
				Propagations: reg.CounterValue("bf4_solver_propagations_total"),
				LearnedCls:   reg.CounterValue("bf4_solver_learned_clauses_total"),
				CNFVars:      reg.GaugeValue("bf4_solver_cnf_vars"),
				CNFClauses:   reg.GaugeValue("bf4_solver_cnf_clauses"),
				InferCalls:   reg.CounterValue("bf4_infer_calls_total"),
				Discharged: reg.CounterValue("bf4_core_discharged_analysis_total") +
					reg.CounterValue("bf4_core_discharged_fold_total"),
				PoolInferRuns: reg.CounterValue("bf4_pool_infer_tasks_total"),
				GateHits:      reg.CounterValue("bf4_solver_gate_hits_total"),
				Inprocessings: reg.CounterValue("bf4_solver_inprocessings_total"),
				InprocDeleted: reg.CounterValue("bf4_solver_inprocess_deleted_total"),
				InprocElim:    reg.CounterValue("bf4_solver_inprocess_elim_vars_total"),
			}
		}
		return o, nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i].row.Program < outs[j].row.Program })
	rows := make([]Table1Row, len(outs))
	var ms []Table1Metrics
	for i, o := range outs {
		rows[i] = o.row
		if withMetrics {
			ms = append(ms, o.m)
		}
	}
	return rows, ms, nil
}

// RenderTable1Metrics prints the -metrics companion table. Every column
// is a deterministic counter, so the output is byte-stable.
func RenderTable1Metrics(ms []Table1Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %7s %5s %6s %9s %12s %8s %8s %9s %6s %6s\n",
		"Program", "checks", "sat", "unsat", "conflicts", "propagations", "cnfvars", "cnfcls", "inferiter", "disch", "learnt")
	for _, m := range ms {
		fmt.Fprintf(&b, "%-22s %7d %5d %6d %9d %12d %8d %8d %9d %6d %6d\n",
			m.Program, m.SolverChecks, m.Sat, m.Unsat, m.Conflicts, m.Propagations,
			m.CNFVars, m.CNFClauses, m.InferCalls, m.Discharged, m.LearnedCls)
	}
	return b.String()
}

// RenderTable1 prints rows in the paper's column order.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %6s %6s %12s %12s %12s %6s\n",
		"Program", "LoC", "#bugs", "after-Infer", "runtime", "after-fixes", "keys")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %6d %6d %12d %12s %12d %6d\n",
			r.Program, r.LoC, r.Bugs, r.BugsAfterInfer,
			r.Runtime.Round(time.Millisecond), r.BugsAfterFixes, r.KeysAdded)
	}
	return b.String()
}

// RenderTable1Stable prints rows without the Runtime column: every
// remaining field is deterministic, so two renderings produced with
// different worker counts (or on different machines) must be
// byte-identical. CI diffs this output for -j 1 vs -j 2.
func RenderTable1Stable(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %6s %6s %12s %12s %6s\n",
		"Program", "LoC", "#bugs", "after-Infer", "after-fixes", "keys")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %6d %6d %12d %12d %6d\n",
			r.Program, r.LoC, r.Bugs, r.BugsAfterInfer, r.BugsAfterFixes, r.KeysAdded)
	}
	return b.String()
}

// ---------------------------------------------------------------- E2

// SlicingResult is the §4.1 ablation. Times cover the model-checking
// phase only (per-bug reachability queries), since that is what the
// formula size affects; both configurations share the frontend cost.
type SlicingResult struct {
	TotalInstructions int
	SliceInstructions int
	TimeWithSlicing   time.Duration
	TimeWithout       time.Duration
	BugsWith          int
	BugsWithout       int
	// FormulaWith/FormulaWithout: total DAG nodes across the reachability
	// conditions checked (the paper's formula-size effect; also drives
	// the 10x-simpler counterexample-trace claim).
	FormulaWith    int
	FormulaWithout int
	// SAT-level propagations, a machine-independent effort metric.
	PropagationsWith    int64
	PropagationsWithout int64
}

// Slicing measures model-checking time with and without the slice on
// the generated switch. The two arms are independent compiles and run
// concurrently when workers > 1; use workers=1 when the timing columns
// must not contend for cores (bug counts, instruction counts, formula
// sizes, and propagations are deterministic either way).
func Slicing(scale, workers int) (*SlicingResult, error) {
	src := progs.GenerateSwitch(scale)
	type arm struct {
		pl  *core.Pipeline
		rep *core.Report
	}
	arms, err := pool.MapErr(workers, 2, func(i int) (arm, error) {
		pl, err := core.Compile(src, ir.DefaultOptions(), i == 0)
		if err != nil {
			return arm{}, err
		}
		return arm{pl, pl.FindBugs()}, nil
	})
	if err != nil {
		return nil, err
	}
	out := &SlicingResult{}
	plS, repS := arms[0].pl, arms[0].rep
	out.TotalInstructions = plS.SliceStats.TotalInstructions
	out.SliceInstructions = plS.SliceStats.SliceInstructions
	out.TimeWithSlicing = repS.SolveTime
	out.BugsWith = repS.NumReachable()
	out.FormulaWith = formulaNodes(repS)
	_, _, _, out.PropagationsWith = repS.S.Stats()

	repU := arms[1].rep
	out.TimeWithout = repU.SolveTime
	out.BugsWithout = repU.NumReachable()
	out.FormulaWithout = formulaNodes(repU)
	_, _, _, out.PropagationsWithout = repU.S.Stats()
	return out, nil
}

// formulaNodes sums the DAG sizes of all checked bug conditions.
func formulaNodes(rep *core.Report) int {
	n := 0
	for _, b := range rep.Bugs {
		if b.Cond != nil {
			n += b.Cond.Size()
		}
	}
	return n
}

// ---------------------------------------------------------------- E3

// InferAblationResult compares Fast-Infer against full Infer (§4.2).
type InferAblationResult struct {
	FastInferTime       time.Duration
	FastInferControlled int
	InferTime           time.Duration
	InferControlled     int
	TotalBugs           int
	InferIterations     int
}

// InferAblation runs each algorithm alone on the generated switch. The
// two arms (Fast-Infer only, Infer only) are independent compiles and
// run concurrently when workers > 1.
func InferAblation(scale, workers int) (*InferAblationResult, error) {
	src := progs.GenerateSwitch(scale)
	type arm struct {
		controlled, total, iters int
		dur                      time.Duration
	}
	arms, err := pool.MapErr(workers, 2, func(i int) (arm, error) {
		fast := i == 0
		pl, err := core.Compile(src, ir.DefaultOptions(), true)
		if err != nil {
			return arm{}, err
		}
		rep := pl.FindBugs()
		opts := infer.DefaultOptions()
		opts.UseFastInfer, opts.UseInfer = fast, !fast
		opts.UseMultiTable = false
		start := time.Now()
		res := infer.Run(pl, rep, opts)
		return arm{
			controlled: rep.NumReachable() - len(res.Uncontrolled),
			total:      rep.NumReachable(),
			iters:      res.InferCalls,
			dur:        time.Since(start),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out := &InferAblationResult{TotalBugs: arms[0].total}
	out.FastInferControlled, out.FastInferTime = arms[0].controlled, arms[0].dur
	out.InferControlled, out.InferTime, out.InferIterations = arms[1].controlled, arms[1].dur, arms[1].iters
	return out, nil
}

// ---------------------------------------------------------------- E4/E5

// HeuristicResult reports how many additional bugs one heuristic
// controls.
type HeuristicResult struct {
	Baseline        int // bugs controlled without the heuristic
	WithHeuristic   int
	TotalBugs       int
	BaselineTime    time.Duration
	HeuristicTime   time.Duration
	ExtraControlled int
}

func heuristic(scale, workers int, enable func(*infer.Options, bool)) (*HeuristicResult, error) {
	src := progs.GenerateSwitch(scale)
	type arm struct {
		controlled, total int
		dur               time.Duration
	}
	arms, err := pool.MapErr(workers, 2, func(i int) (arm, error) {
		on := i == 1
		pl, err := core.Compile(src, ir.DefaultOptions(), true)
		if err != nil {
			return arm{}, err
		}
		rep := pl.FindBugs()
		opts := infer.DefaultOptions()
		enable(&opts, on)
		start := time.Now()
		res := infer.Run(pl, rep, opts)
		return arm{
			controlled: rep.NumReachable() - len(res.Uncontrolled),
			total:      rep.NumReachable(),
			dur:        time.Since(start),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out := &HeuristicResult{TotalBugs: arms[0].total}
	out.Baseline, out.BaselineTime = arms[0].controlled, arms[0].dur
	out.WithHeuristic, out.HeuristicTime = arms[1].controlled, arms[1].dur
	out.ExtraControlled = out.WithHeuristic - out.Baseline
	return out, nil
}

// MultiTable measures the §4.2 multi-table heuristic.
func MultiTable(scale, workers int) (*HeuristicResult, error) {
	return heuristic(scale, workers, func(o *infer.Options, on bool) { o.UseMultiTable = on })
}

// DontCare measures the §4.2 dontCare heuristic. The IR must be built
// with dontCare nodes either way; only the OK constraint changes.
func DontCare(scale, workers int) (*HeuristicResult, error) {
	return heuristic(scale, workers, func(o *infer.Options, on bool) { o.UseDontCare = on })
}

// ---------------------------------------------------------------- E6

// P4VComparison is the §5.2 p4v contrast.
type P4VComparison struct {
	P4VTime         time.Duration
	P4VFoundBug     bool
	BF4Time         time.Duration
	BF4Bugs         int
	BF4AfterFixes   int
	BF4KeysInferred int
}

// P4V runs the monolithic p4v-style query and the full bf4 loop.
func P4V(scale int) (*P4VComparison, error) {
	src := progs.GenerateSwitch(scale)
	out := &P4VComparison{}

	pl, err := core.Compile(src, ir.DefaultOptions(), true)
	if err != nil {
		return nil, err
	}
	r := baseline.P4VApprox(pl)
	out.P4VTime = pl.CompileTime + r.Duration
	out.P4VFoundBug = r.AnyBugReachable

	res, err := driver.Run("switch", src, driver.DefaultConfig())
	if err != nil {
		return nil, err
	}
	out.BF4Time = res.Runtime
	out.BF4Bugs = res.Bugs
	out.BF4AfterFixes = res.BugsAfterFixes
	out.BF4KeysInferred = res.KeysAdded
	return out, nil
}

// ---------------------------------------------------------------- E7

// VeraComparison is the §5.2 Vera contrast.
type VeraComparison struct {
	ConcretePaths    int
	ConcreteBugs     int
	ConcreteTime     time.Duration
	ConcreteCoverage float64
	ConcreteComplete bool
	SymbolicPaths    int
	SymbolicBugs     int
	SymbolicTime     time.Duration
	SymbolicCoverage float64
	SymbolicComplete bool
}

// VeraCompare explores the generated switch concretely (one populated
// snapshot) and symbolically (budgeted).
func VeraCompare(scale int, symbolicBudget time.Duration) (*VeraComparison, error) {
	src := progs.GenerateSwitch(scale)
	pl, err := core.Compile(src, ir.DefaultOptions(), true)
	if err != nil {
		return nil, err
	}
	out := &VeraComparison{}

	// Concrete mode: a small sane snapshot (one entry per table).
	snap := dataplane.NewSnapshot()
	for _, inst := range pl.IR.Instances {
		t := inst.Table
		e := &dataplane.Entry{Action: t.Actions[0].Name}
		for _, k := range t.Keys {
			switch k.MatchKind {
			case "ternary":
				e.Keys = append(e.Keys, dataplane.NewTernary(0, 0))
			case "lpm":
				e.Keys = append(e.Keys, dataplane.NewLpm(0, 0))
			default:
				e.Keys = append(e.Keys, dataplane.NewExact(1))
			}
		}
		for range t.Actions[0].Params {
			e.Params = append(e.Params, dataplane.NewExact(1).Value)
		}
		snap.Insert(t.Name, e)
	}
	rc := baseline.Vera(pl, baseline.VeraOptions{Snapshot: snap, Timeout: symbolicBudget})
	out.ConcretePaths = rc.Paths
	out.ConcreteBugs = len(rc.BugsHit)
	out.ConcreteTime = rc.Duration
	out.ConcreteCoverage = rc.Coverage()
	out.ConcreteComplete = rc.Completed

	rs := baseline.Vera(pl, baseline.VeraOptions{Timeout: symbolicBudget})
	out.SymbolicPaths = rs.Paths
	out.SymbolicBugs = len(rs.BugsHit)
	out.SymbolicTime = rs.Duration
	out.SymbolicCoverage = rs.Coverage()
	out.SymbolicComplete = rs.Completed
	return out, nil
}

// ---------------------------------------------------------------- E8

// ShimLatency is the §5.3 study.
type ShimLatency struct {
	Updates       int
	Assertions    int
	Rejected      int
	PerAssertion  Percentiles
	PerUpdate     Percentiles
	TablesCovered int
}

// Percentiles summarizes a latency distribution.
type Percentiles struct {
	P50, P90, P99, Max time.Duration
}

func percentilesOf(ns []int64) Percentiles {
	if len(ns) == 0 {
		return Percentiles{}
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)-1))
		return time.Duration(sorted[i])
	}
	return Percentiles{P50: at(0.50), P90: at(0.90), P99: at(0.99), Max: time.Duration(sorted[len(sorted)-1])}
}

// Shim replays a synthetic controller trace of n updates against the
// generated switch's inferred assertions.
func Shim(scale, n int) (*ShimLatency, error) {
	src := progs.GenerateSwitch(scale)
	res, err := driver.Run("switch", src, driver.DefaultConfig())
	if err != nil {
		return nil, err
	}
	pl := res.Fixed
	if pl == nil {
		pl = res.Initial
	}
	file := spec.Build("switch", pl.IR, res.InitialRep, res.FinalInfer, res.Fixes.Special)
	sh, err := shim.New(file)
	if err != nil {
		return nil, err
	}
	// Size the latency reservoirs so no sample of this bounded replay is
	// evicted: percentiles stay exact, identical to the unbounded
	// accounting the shim used to keep.
	terms := 0
	for _, a := range file.Assertions {
		terms += len(a.Forbidden)
	}
	if terms < 1 {
		terms = 1
	}
	sh.SetStatsCap((n + 1) * terms)
	gen := trace.NewGenerator(1, file)
	updates := gen.Updates(n)
	for _, u := range updates {
		_ = sh.Apply(u)
	}
	st := sh.Stats()
	out := &ShimLatency{
		Updates:      st.Validated,
		Assertions:   len(file.Assertions),
		Rejected:     st.Rejected,
		PerAssertion: percentilesOf(st.PerAssertion.SampleNs),
		PerUpdate:    percentilesOf(st.PerUpdate.SampleNs),
	}
	seen := map[string]bool{}
	for _, a := range file.Assertions {
		seen[a.Table] = true
	}
	out.TablesCovered = len(seen)
	return out, nil
}

// ---------------------------------------------------------------- E9

// Overhead is the §5 key-addition cost analysis.
type Overhead struct {
	KeysBefore     int
	KeysAdded      int
	KeyPercent     float64
	BitsAdded      int
	BitsPerTable   float64
	TablesTotal    int
	TablesTouched  int
	TablePercent   float64
	AvgBitsPerRule float64
}

// KeyOverhead measures the fix overhead on the generated switch.
func KeyOverhead(scale int) (*Overhead, error) {
	src := progs.GenerateSwitch(scale)
	res, err := driver.Run("switch", src, driver.DefaultConfig())
	if err != nil {
		return nil, err
	}
	pl := res.Fixed
	if pl == nil {
		pl = res.Initial
	}
	st := cost.Estimate(pl.IR)
	out := &Overhead{
		KeysAdded:     res.KeysAdded,
		BitsAdded:     st.ExtraMatchBits,
		TablesTouched: res.TablesTouched,
		TablesTotal:   len(pl.IR.Tables),
	}
	for _, t := range res.Initial.IR.Tables {
		out.KeysBefore += len(t.Keys)
	}
	if out.KeysBefore > 0 {
		out.KeyPercent = 100 * float64(out.KeysAdded) / float64(out.KeysBefore)
	}
	if out.TablesTotal > 0 {
		out.TablePercent = 100 * float64(out.TablesTouched) / float64(out.TablesTotal)
	}
	if out.TablesTotal > 0 {
		out.BitsPerTable = float64(st.ExtraMatchBits) / float64(out.TablesTotal)
	}
	if res.KeysAdded > 0 {
		out.AvgBitsPerRule = float64(st.ExtraMatchBits) / float64(out.TablesTotal)
	}
	return out, nil
}

// ---------------------------------------------------------------- E10

// StageCost is the §3 motivation: guard instrumentation vs key fixes.
type StageCost struct {
	Program    string
	Original   int
	WithGuards int
	WithKeys   int
}

// Stages evaluates the stage model on a corpus program (the paper uses
// simple_nat: instrumentation doubles the stage count).
func Stages(name string) (*StageCost, error) {
	p := progs.Get(name)
	if p == nil {
		return nil, fmt.Errorf("unknown program %q", name)
	}
	res, err := driver.Run(p.Name, p.Source, driver.DefaultConfig())
	if err != nil {
		return nil, err
	}
	pl := res.Fixed
	if pl == nil {
		pl = res.Initial
	}
	st := cost.Estimate(pl.IR)
	return &StageCost{Program: name, Original: st.Original, WithGuards: st.WithGuards, WithKeys: st.WithKeys}, nil
}
