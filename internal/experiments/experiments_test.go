package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestTable1WithoutSwitch(t *testing.T) {
	rows, err := Table1(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 24 {
		t.Fatalf("rows = %d, want 24 (switch skipped)", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Program] = r
		if r.Bugs < r.BugsAfterInfer || r.BugsAfterInfer < r.BugsAfterFixes {
			t.Errorf("%s: bug counts not monotone: %d -> %d -> %d",
				r.Program, r.Bugs, r.BugsAfterInfer, r.BugsAfterFixes)
		}
	}
	// The paper's signature rows.
	if r := byName["arp"]; r.BugsAfterInfer != 0 || r.KeysAdded != 0 {
		t.Errorf("arp row: %+v", r)
	}
	if r := byName["simple_nat"]; r.KeysAdded != 1 || r.BugsAfterFixes != 0 {
		t.Errorf("simple_nat row: %+v", r)
	}
	if r := byName["mplb_router-ppc"]; r.BugsAfterFixes != 1 {
		t.Errorf("mplb row: %+v", r)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "simple_nat") || !strings.Contains(out, "after-Infer") {
		t.Fatalf("render:\n%s", out)
	}
	stable := RenderTable1Stable(rows)
	if !strings.Contains(stable, "simple_nat") || strings.Contains(stable, "runtime") {
		t.Fatalf("stable render must drop the runtime column:\n%s", stable)
	}
}

// TestTable1DeterministicAcrossWorkerCounts is the corpus-level half of
// the parallel-engine guarantee (the per-instance half lives in
// internal/infer): the stable rendering of Table 1 is byte-identical
// for serial and parallel corpus runs. CI re-checks this through the
// bf4-bench binary (-j 1 vs -j 2, -stable).
func TestTable1DeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: two full corpus runs")
	}
	render := func(workers int) string {
		rows, err := Table1(0, workers)
		if err != nil {
			t.Fatal(err)
		}
		return RenderTable1Stable(rows)
	}
	serial := render(1)
	if got := render(2); got != serial {
		t.Errorf("workers=2 table differs from workers=1:\n--- j1:\n%s--- j2:\n%s", serial, got)
	}
}

func TestStagesExperiment(t *testing.T) {
	r, err := Stages("simple_nat")
	if err != nil {
		t.Fatal(err)
	}
	if r.WithGuards <= r.Original {
		t.Fatalf("guards must cost stages: %+v", r)
	}
	if r.WithKeys != r.Original {
		t.Fatalf("key fixes must be stage-neutral: %+v", r)
	}
	if _, err := Stages("not_a_program"); err == nil {
		t.Fatal("unknown program accepted")
	}
}

func TestSlicingAgreesOnVerdicts(t *testing.T) {
	r, err := Slicing(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.BugsWith != r.BugsWithout {
		t.Fatalf("slicing changed verdicts: %d vs %d", r.BugsWith, r.BugsWithout)
	}
	if r.SliceInstructions >= r.TotalInstructions {
		t.Fatalf("slice did not shrink instructions: %d/%d",
			r.SliceInstructions, r.TotalInstructions)
	}
	if r.FormulaWith > r.FormulaWithout {
		t.Fatalf("sliced formulas larger than full: %d vs %d",
			r.FormulaWith, r.FormulaWithout)
	}
}

func TestPercentiles(t *testing.T) {
	ns := []int64{5, 1, 9, 3, 7, 2, 8, 4, 6, 10}
	p := percentilesOf(ns)
	if p.P50 != 5 && p.P50 != 6 {
		t.Fatalf("p50 = %v", p.P50)
	}
	if p.Max != 10 {
		t.Fatalf("max = %v", p.Max)
	}
	if p.P90 < p.P50 || p.P99 < p.P90 || p.Max < p.P99 {
		t.Fatalf("percentiles not monotone: %+v", p)
	}
	if got := percentilesOf(nil); got.Max != 0 {
		t.Fatalf("empty percentiles: %+v", got)
	}
}

func TestShimExperimentSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: full loop + 100 updates")
	}
	r, err := Shim(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Updates != 100 {
		t.Fatalf("updates = %d", r.Updates)
	}
	if r.Assertions == 0 {
		t.Fatal("no assertions inferred for switch@1")
	}
	// The paper's headline: per-update validation far below snapshot
	// verification. Even generously, p90 must be far under a millisecond
	// in-process.
	if r.PerUpdate.P90 > 100*time.Millisecond {
		t.Fatalf("per-update p90 = %v", r.PerUpdate.P90)
	}
	if r.Rejected == 0 {
		t.Fatal("workload rejected nothing; faulty fraction not exercised")
	}
}

func TestVeraCompareSmall(t *testing.T) {
	r, err := VeraCompare(1, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.SymbolicPaths == 0 || r.ConcretePaths == 0 {
		t.Fatalf("no exploration: %+v", r)
	}
	if r.SymbolicCoverage <= 0 || r.SymbolicCoverage > 1 {
		t.Fatalf("coverage = %v", r.SymbolicCoverage)
	}
}

func TestP4VSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: full bf4 loop")
	}
	r, err := P4V(1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.P4VFoundBug {
		t.Fatal("p4v query found no bug in switch@1")
	}
	if r.BF4AfterFixes != 0 {
		t.Fatalf("bf4 left %d bugs", r.BF4AfterFixes)
	}
	if r.P4VTime >= r.BF4Time {
		t.Fatalf("single query (%v) should be cheaper than the full loop (%v)",
			r.P4VTime, r.BF4Time)
	}
}

func TestKeyOverheadSmall(t *testing.T) {
	r, err := KeyOverhead(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.KeysAdded == 0 || r.BitsAdded == 0 {
		t.Fatalf("no fixes measured: %+v", r)
	}
	// The paper's structural claim: added keys are (almost all) validity
	// bits — about one bit each.
	if float64(r.BitsAdded)/float64(r.KeysAdded) > 2 {
		t.Fatalf("added keys average %.1f bits; expected ~1 (validity checks)",
			float64(r.BitsAdded)/float64(r.KeysAdded))
	}
}
