package experiments

import "testing"

// TestRewritePureOptimization re-verifies the corpus (switch skipped;
// the rewrite-ablation CI job covers it at scale) with the term-level
// rewrite engine on vs off: verdicts must match byte-for-byte, the
// rewriter must never enlarge the on-arm's query count, at least one
// condition must fold-discharge somewhere, and the blasted CNF must
// shrink on at least half the programs — the two halves of the
// acceptance contract (sound, and worth having).
func TestRewritePureOptimization(t *testing.T) {
	rows, err := RewriteAblation(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	totalFolded, reduced := 0, 0
	for _, r := range rows {
		if !r.Identical {
			t.Errorf("%s: verdicts differ between -rewrite=on and off", r.Program)
		}
		if r.QueriesOn > r.QueriesOff {
			t.Errorf("%s: rewriting increased query count %d -> %d", r.Program, r.QueriesOff, r.QueriesOn)
		}
		if r.QueriesOff-r.QueriesOn != r.FoldDischarged {
			t.Errorf("%s: %d queries skipped but %d conditions fold-discharged",
				r.Program, r.QueriesOff-r.QueriesOn, r.FoldDischarged)
		}
		totalFolded += r.FoldDischarged
		if r.ClausesOn < r.ClausesOff || r.VarsOn < r.VarsOff {
			reduced++
		}
	}
	if totalFolded == 0 {
		t.Error("no condition fold-discharged across the corpus")
	}
	if reduced*2 < len(rows) {
		t.Errorf("CNF shrank on only %d of %d programs", reduced, len(rows))
	}
}
