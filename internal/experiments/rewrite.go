package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"bf4/internal/driver"
	"bf4/internal/pool"
	"bf4/internal/progs"
)

// RewriteRow compares one corpus program verified with the term-level
// rewrite engine on vs off. The rewrite pass is evaluation-preserving, so
// the two runs must agree on every verdict; what changes is the size of
// the blasted CNF and the number of solver queries (conditions that fold
// to false are discharged without one).
type RewriteRow struct {
	Program string `json:"program"`
	// QueriesOn/QueriesOff count initial-report solver Checks.
	QueriesOn  int `json:"queries_on"`
	QueriesOff int `json:"queries_off"`
	// FoldDischarged counts bug conditions the rewriter folded to false
	// (skipped queries beyond the dataflow pre-pass's discharge set).
	FoldDischarged int `json:"fold_discharged"`
	// VarsOn/ClausesOn are the CNF size of the initial bug-finding solver
	// with rewriting on; VarsOff/ClausesOff with it off. Rewriting shrinks
	// the circuit, never the other way around.
	VarsOn     int `json:"cnf_vars_on"`
	VarsOff    int `json:"cnf_vars_off"`
	ClausesOn  int `json:"cnf_clauses_on"`
	ClausesOff int `json:"cnf_clauses_off"`
	// SolveOnMS/SolveOffMS are the initial bug-finding solve times.
	SolveOnMS  float64 `json:"solve_on_ms"`
	SolveOffMS float64 `json:"solve_off_ms"`
	// Identical reports whether the two runs produced byte-identical
	// verification verdicts and inferred annotations (bug counts, per-bug
	// verdicts, fixes, and the rendered controller spec). The rewrite
	// engine is only sound if this is true for every program.
	Identical bool `json:"identical"`
}

// RewriteAblation runs every corpus program twice — term-level rewriting
// on and off — and reports per-program CNF-size and solve-time deltas plus
// verdict identity. Both arms run with the dataflow pre-pass
// (Config.Analysis) off: the pre-pass discharges many of the same
// impossible checks at the CFG level, and turning it off isolates what the
// term-level engine contributes on its own. Production runs keep both on —
// the layers are complementary (the rewriter also serves Infer's queries,
// which the pre-pass never sees).
func RewriteAblation(switchScale, workers int) ([]RewriteRow, error) {
	type job struct{ name, src string }
	var jobs []job
	for _, p := range progs.All() {
		src := p.Source
		if p.Name == "switch" {
			if switchScale == 0 {
				continue
			}
			src = progs.GenerateSwitch(switchScale)
		}
		jobs = append(jobs, job{p.Name, src})
	}
	rows, err := pool.MapErr(workers, len(jobs), func(i int) (RewriteRow, error) {
		name, src := jobs[i].name, jobs[i].src

		on := driver.DefaultConfig()
		on.Analysis = false
		on.Rewrite = true
		resOn, err := driver.Run(name, src, on)
		if err != nil {
			return RewriteRow{}, fmt.Errorf("%s (rewrite on): %w", name, err)
		}
		off := driver.DefaultConfig()
		off.Analysis = false
		off.Rewrite = false
		resOff, err := driver.Run(name, src, off)
		if err != nil {
			return RewriteRow{}, fmt.Errorf("%s (rewrite off): %w", name, err)
		}

		vOn, cOn := resOn.InitialRep.CNFVars, resOn.InitialRep.CNFClauses
		vOff, cOff := resOff.InitialRep.CNFVars, resOff.InitialRep.CNFClauses
		return RewriteRow{
			Program:        name,
			QueriesOn:      resOn.InitialRep.Checks,
			QueriesOff:     resOff.InitialRep.Checks,
			FoldDischarged: resOn.InitialRep.FoldDischarged,
			VarsOn:         vOn,
			VarsOff:        vOff,
			ClausesOn:      cOn,
			ClausesOff:     cOff,
			SolveOnMS:      float64(resOn.InitialRep.SolveTime) / float64(time.Millisecond),
			SolveOffMS:     float64(resOff.InitialRep.SolveTime) / float64(time.Millisecond),
			Identical:      verdictFingerprint(resOn) == verdictFingerprint(resOff),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Program < rows[j].Program })
	return rows, nil
}

// RenderRewrite prints the ablation with timings.
func RenderRewrite(rows []RewriteRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %9s %6s %9s %10s %10s %11s %9s %10s %9s\n",
		"Program", "queries", "queries0", "folded", "vars", "vars0", "clauses", "clauses0", "solve", "solve0", "identical")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %8d %9d %6d %9d %10d %10d %11d %8.0fms %9.0fms %9v\n",
			r.Program, r.QueriesOn, r.QueriesOff, r.FoldDischarged,
			r.VarsOn, r.VarsOff, r.ClausesOn, r.ClausesOff,
			r.SolveOnMS, r.SolveOffMS, r.Identical)
	}
	return b.String()
}

// RenderRewriteStable prints the ablation without timing columns; every
// remaining field is deterministic, so CI can diff the output.
func RenderRewriteStable(rows []RewriteRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %9s %6s %9s %10s %10s %11s %9s\n",
		"Program", "queries", "queries0", "folded", "vars", "vars0", "clauses", "clauses0", "identical")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %8d %9d %6d %9d %10d %10d %11d %9v\n",
			r.Program, r.QueriesOn, r.QueriesOff, r.FoldDischarged,
			r.VarsOn, r.VarsOff, r.ClausesOn, r.ClausesOff, r.Identical)
	}
	return b.String()
}

// RewriteJSON marshals the ablation for BENCH_rewrite.json.
func RewriteJSON(rows []RewriteRow) ([]byte, error) {
	reduced := 0
	identical := true
	for _, r := range rows {
		if r.ClausesOn < r.ClausesOff {
			reduced++
		}
		identical = identical && r.Identical
	}
	return json.MarshalIndent(struct {
		Bench        string       `json:"bench"`
		Programs     int          `json:"programs"`
		ReducedCNF   int          `json:"reduced_cnf"`
		AllIdentical bool         `json:"all_identical"`
		Rows         []RewriteRow `json:"rows"`
	}{"rewrite", len(rows), reduced, identical, rows}, "", "  ")
}
