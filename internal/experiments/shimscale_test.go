package experiments

import (
	"bytes"
	"testing"
)

// TestShimScaleTiersAgree runs the scale bench small with the fast path
// on and off: decision logs must be byte-identical (the CI smoke job
// repeats this at larger scale with bf4-bench), counters must match, and
// each arm must run on its own tier.
func TestShimScaleTiersAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("verifies a generated switch; skipped in -short")
	}
	const scale, updates = 1, 600
	setup, err := NewShimScaleSetup(scale, updates)
	if err != nil {
		t.Fatal(err)
	}
	var logOn, logOff bytes.Buffer
	on, err := setup.Run(updates, true, &logOn)
	if err != nil {
		t.Fatal(err)
	}
	off, err := setup.Run(updates, false, &logOff)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(logOn.Bytes(), logOff.Bytes()) {
		t.Fatal("decision logs differ between fastpath on and off")
	}
	if on.Accepted != off.Accepted || on.Rejected != off.Rejected {
		t.Fatalf("verdict counts differ: on=%d/%d off=%d/%d",
			on.Accepted, on.Rejected, off.Accepted, off.Rejected)
	}
	if on.Rejected == 0 {
		t.Fatal("trace should include faulty updates")
	}
	if on.FastHits == 0 {
		t.Fatal("fastpath=on never used the bytecode tier")
	}
	if off.FastHits != 0 {
		t.Fatalf("fastpath=off used the bytecode tier %d times", off.FastHits)
	}
	if on.FastHits+on.SlowHits != off.SlowHits {
		t.Fatalf("assertion evaluation counts differ: on=%d+%d off=%d",
			on.FastHits, on.SlowHits, off.SlowHits)
	}
	if on.Updates != updates || off.Updates != updates {
		t.Fatalf("update counts: on=%d off=%d, want %d", on.Updates, off.Updates, updates)
	}
}

// TestShimScaleJSON checks the artifact shape benchcmp consumes.
func TestShimScaleJSON(t *testing.T) {
	r := &ShimScaleResult{Bench: "shimscale", Fastpath: true, Scale: 4,
		Updates: 10, Accepted: 7, Rejected: 3, FastHits: 20, SlowHits: 2,
		ElapsedNs: 1000, UpdatesPerSec: 1e7}
	data, err := ShimScaleJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"bench": "shimscale"`, `"fastpath": true`,
		`"updates_per_sec"`, `"fast_hits": 20`} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("artifact missing %s:\n%s", want, data)
		}
	}
}
