package experiments

import "testing"

// TestHeuristicsFireOnGeneratedSwitch asserts E4/E5's qualitative claim:
// the multi-table and dontCare heuristics each control bugs that the
// baseline configuration cannot.
func TestHeuristicsFireOnGeneratedSwitch(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: two full inference runs on the generated switch")
	}
	mt, err := MultiTable(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("multitable: base=%d with=%d (+%d) of %d", mt.Baseline, mt.WithHeuristic, mt.ExtraControlled, mt.TotalBugs)
	if mt.ExtraControlled <= 0 {
		t.Errorf("multi-table heuristic controlled nothing extra")
	}
	dc, err := DontCare(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("dontcare: base=%d with=%d (+%d) of %d", dc.Baseline, dc.WithHeuristic, dc.ExtraControlled, dc.TotalBugs)
	if dc.ExtraControlled <= 0 {
		t.Errorf("dontCare heuristic controlled nothing extra")
	}
}
