package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"bf4/internal/driver"
	"bf4/internal/progs"
	"bf4/internal/shim"
	"bf4/internal/spec"
	"bf4/internal/trace"
)

// ShimScaleResult is the BENCH_shimscale.json artifact: update
// throughput of the runtime shim at controller-fleet scale, with the
// bytecode fast path on or off. Decisions (accepted/rejected and the
// fast/slow hit split) are deterministic functions of (scale, updates);
// only elapsed_ns and updates_per_sec move between machines.
type ShimScaleResult struct {
	Bench         string  `json:"bench"` // always "shimscale"
	Fastpath      bool    `json:"fastpath"`
	Scale         int     `json:"scale"`
	Updates       int64   `json:"updates"`
	Accepted      int64   `json:"accepted"`
	Rejected      int64   `json:"rejected"`
	FastHits      int64   `json:"fast_hits"`
	SlowHits      int64   `json:"slow_hits"`
	ElapsedNs     int64   `json:"elapsed_ns"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
}

// shimScaleEpoch is the deterministic controller-session trace that gets
// replayed until the requested update count: the paper's shim evaluation
// uses a 2000-update trace, and longer runs model sessions that install
// a bounded table state and start over (which also keeps shadow-table
// size — and therefore slow-path linked-assertion cost — a constant
// across epochs instead of an unbounded accumulator).
const shimScaleEpoch = 2000

// ShimScaleSetup is the fixed part of the scale bench: the verified
// program's compiled annotations and the deterministic epoch trace.
// Building it costs a full verification run, so the CLI builds it once
// and replays both tiers against it.
type ShimScaleSetup struct {
	scale int
	cp    *shim.Compiled
	epoch []*shim.Update
}

// NewShimScaleSetup verifies the generated switch at the given scale and
// prepares the epoch trace (capped at total when shorter than an epoch).
func NewShimScaleSetup(scale, total int) (*ShimScaleSetup, error) {
	src := progs.GenerateSwitch(scale)
	res, err := driver.Run("switch", src, driver.DefaultConfig())
	if err != nil {
		return nil, err
	}
	pl := res.Fixed
	if pl == nil {
		pl = res.Initial
	}
	file := spec.Build("switch", pl.IR, res.InitialRep, res.FinalInfer, res.Fixes.Special)
	cp, err := shim.Compile(file)
	if err != nil {
		return nil, err
	}
	epochLen := shimScaleEpoch
	if total < epochLen {
		epochLen = total
	}
	epoch := trace.NewGenerator(1, file).Updates(epochLen)
	if len(epoch) == 0 {
		return nil, fmt.Errorf("shimscale: trace generator produced no updates for scale %d", scale)
	}
	return &ShimScaleSetup{scale: scale, cp: cp, epoch: epoch}, nil
}

// ShimScale replays total controller updates through one shim, the
// bytecode fast path on or off, and reports throughput. decisions, when
// non-nil, receives one line per update ("seq table verdict [message]");
// the CI smoke job byte-diffs that log between the two tiers.
func ShimScale(scale, total int, fastpath bool, decisions io.Writer) (*ShimScaleResult, error) {
	st, err := NewShimScaleSetup(scale, total)
	if err != nil {
		return nil, err
	}
	return st.Run(total, fastpath, decisions)
}

// Run replays total updates against the prepared setup on one tier.
func (st *ShimScaleSetup) Run(total int, fastpath bool, decisions io.Writer) (*ShimScaleResult, error) {
	cp, epoch := st.cp, st.epoch
	out := &ShimScaleResult{Bench: "shimscale", Fastpath: fastpath, Scale: st.scale}
	var s *shim.Shim
	start := time.Now()
	for seq := 0; seq < total; seq++ {
		j := seq % len(epoch)
		if j == 0 {
			// New controller session: fresh shadow state, shared Compiled.
			s = shim.NewFromCompiled(cp)
			s.SetFastpath(fastpath)
		}
		u := epoch[j]
		err := s.Apply(u)
		if err != nil {
			out.Rejected++
		} else {
			out.Accepted++
		}
		if decisions != nil {
			if err != nil {
				fmt.Fprintf(decisions, "%d %s REJECT %s\n", seq, u.Table, err)
			} else {
				fmt.Fprintf(decisions, "%d %s ACCEPT\n", seq, u.Table)
			}
		}
		if j == len(epoch)-1 || seq == total-1 {
			st := s.Counters()
			out.FastHits += int64(st.FastpathHits)
			out.SlowHits += int64(st.SlowpathHits)
		}
	}
	out.ElapsedNs = int64(time.Since(start))
	out.Updates = int64(total)
	if out.ElapsedNs > 0 {
		out.UpdatesPerSec = float64(total) / (float64(out.ElapsedNs) / 1e9)
	}
	if fastpath && out.FastHits == 0 {
		return nil, fmt.Errorf("shimscale: fast path enabled but never hit")
	}
	return out, nil
}

// ShimScaleJSON renders the BENCH_shimscale.json artifact.
func ShimScaleJSON(r *ShimScaleResult) ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
