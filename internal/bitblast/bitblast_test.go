package bitblast

import (
	"math/big"
	"math/rand"
	"testing"

	"bf4/internal/sat"
	"bf4/internal/smt"
)

// fixVar pins every bit of a blasted variable to the given value.
func fixVar(c *Context, v *smt.Term, val *big.Int) {
	if v.Sort().IsBool() {
		l := c.Literal(v)
		if val.Sign() != 0 {
			c.Solver().AddClause(l)
		} else {
			c.Solver().AddClause(l.Neg())
		}
		return
	}
	for i, l := range c.Bits(v) {
		if val.Bit(i) == 1 {
			c.Solver().AddClause(l)
		} else {
			c.Solver().AddClause(l.Neg())
		}
	}
}

// TestCircuitsMatchEval is the central property test: for random terms and
// random concrete inputs, the blasted circuit computes exactly what
// smt.Eval computes.
func TestCircuitsMatchEval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const w = 6
	for iter := 0; iter < 400; iter++ {
		f := smt.NewFactory()
		a, b := f.BVVar("a", w), f.BVVar("b", w)

		var term *smt.Term
		switch iter % 14 {
		case 0:
			term = f.Add(a, b)
		case 1:
			term = f.Sub(a, b)
		case 2:
			term = f.Mul(a, b)
		case 3:
			term = f.Neg(a)
		case 4:
			term = f.BVAnd(a, b)
		case 5:
			term = f.BVOr(a, b)
		case 6:
			term = f.BVXor(a, b)
		case 7:
			term = f.BVNot(a)
		case 8:
			term = f.Shl(a, b)
		case 9:
			term = f.Lshr(a, b)
		case 10:
			term = f.Ashr(a, b)
		case 11:
			term = f.Concat(f.Extract(a, 3, 1), b)
		case 12:
			term = f.Ite(f.Ult(a, b), f.Add(a, b), f.Sub(a, b))
		case 13:
			term = f.SExt(f.Extract(a, 2, 0), w)
		}

		solver := sat.New()
		c := New(f, solver)
		bits := c.Bits(term)
		av := new(big.Int).SetUint64(rng.Uint64() & (1<<w - 1))
		bv := new(big.Int).SetUint64(rng.Uint64() & (1<<w - 1))
		fixVar(c, a, av)
		fixVar(c, b, bv)
		if res := solver.Solve(); res != sat.Sat {
			t.Fatalf("iter %d: fixed-input circuit unsat for %s", iter, term)
		}
		got := new(big.Int)
		for i, l := range bits {
			if solver.ValueLit(l) {
				got.SetBit(got, i, 1)
			}
		}
		env := smt.Env{"a": av, "b": bv}
		want := smt.Eval(term, env)
		if got.Cmp(want) != 0 {
			t.Fatalf("iter %d: %s with a=%v b=%v: circuit %v, eval %v", iter, term, av, bv, got, want)
		}
	}
}

func TestBooleanPredicatesMatchEval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const w = 5
	for iter := 0; iter < 300; iter++ {
		f := smt.NewFactory()
		a, b := f.BVVar("a", w), f.BVVar("b", w)
		p := f.BoolVar("p")

		var term *smt.Term
		switch iter % 8 {
		case 0:
			term = f.Ult(a, b)
		case 1:
			term = f.Ule(a, b)
		case 2:
			term = f.Slt(a, b)
		case 3:
			term = f.Sle(a, b)
		case 4:
			term = f.Eq(a, b)
		case 5:
			term = f.And(p, f.Ult(a, b))
		case 6:
			term = f.Or(f.Not(p), f.Eq(f.Add(a, b), f.BVConst64(7, w)))
		case 7:
			term = f.Xor(p, f.Slt(f.Sub(a, b), f.BVConst64(0, w)))
		}

		solver := sat.New()
		c := New(f, solver)
		lit := c.Literal(term)
		av := new(big.Int).SetUint64(rng.Uint64() & (1<<w - 1))
		bv := new(big.Int).SetUint64(rng.Uint64() & (1<<w - 1))
		pv := big.NewInt(int64(rng.Intn(2)))
		fixVar(c, a, av)
		fixVar(c, b, bv)
		fixVar(c, p, pv)
		if res := solver.Solve(); res != sat.Sat {
			t.Fatalf("iter %d: fixed-input circuit unsat", iter)
		}
		got := solver.ValueLit(lit)
		want := smt.EvalBool(term, smt.Env{"a": av, "b": bv, "p": pv})
		if got != want {
			t.Fatalf("iter %d: %s with a=%v b=%v p=%v: circuit %v, eval %v", iter, term, av, bv, pv, got, want)
		}
	}
}

// TestModelSoundness: any model the solver returns for an asserted formula
// must actually satisfy the formula under reference evaluation.
func TestModelSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const w = 8
	for iter := 0; iter < 100; iter++ {
		f := smt.NewFactory()
		a, b, x := f.BVVar("a", w), f.BVVar("b", w), f.BVVar("x", w)
		k := f.BVConst64(int64(rng.Intn(256)), w)
		phi := f.And(
			f.Eq(f.Add(a, b), x),
			f.Ult(a, k),
			f.Not(f.Eq(b, f.BVConst64(0, w))),
		)
		solver := sat.New()
		c := New(f, solver)
		c.AssertTrue(phi)
		// Ensure variables are blasted for model extraction.
		c.Bits(a)
		c.Bits(b)
		c.Bits(x)
		res := solver.Solve()
		if k.Const().Sign() == 0 {
			if res != sat.Unsat {
				t.Fatalf("iter %d: a < 0 must be unsat", iter)
			}
			continue
		}
		if res != sat.Sat {
			t.Fatalf("iter %d: expected sat", iter)
		}
		env := smt.Env{
			"a": c.ModelBV(a),
			"b": c.ModelBV(b),
			"x": c.ModelBV(x),
		}
		if !smt.EvalBool(phi, env) {
			t.Fatalf("iter %d: model %v does not satisfy %s", iter, env, phi)
		}
	}
}

func TestValidities(t *testing.T) {
	const w = 8
	cases := []struct {
		name string
		mk   func(f *smt.Factory, a, b *smt.Term) *smt.Term
	}{
		{"add-comm", func(f *smt.Factory, a, b *smt.Term) *smt.Term {
			return f.Eq(f.Add(a, b), f.Add(b, a))
		}},
		{"sub-add-inverse", func(f *smt.Factory, a, b *smt.Term) *smt.Term {
			return f.Eq(f.Add(f.Sub(a, b), b), a)
		}},
		{"demorgan", func(f *smt.Factory, a, b *smt.Term) *smt.Term {
			return f.Eq(f.BVNot(f.BVAnd(a, b)), f.BVOr(f.BVNot(a), f.BVNot(b)))
		}},
		{"neg-is-sub-zero", func(f *smt.Factory, a, b *smt.Term) *smt.Term {
			return f.Eq(f.Neg(a), f.Sub(f.BVConst64(0, w), a))
		}},
		{"ult-total", func(f *smt.Factory, a, b *smt.Term) *smt.Term {
			return f.Or(f.Ult(a, b), f.Ult(b, a), f.Eq(a, b))
		}},
		{"mul-by-two-is-shl", func(f *smt.Factory, a, b *smt.Term) *smt.Term {
			return f.Eq(f.Mul(a, f.BVConst64(2, w)), f.Shl(a, f.BVConst64(1, w)))
		}},
		{"slt-vs-ult-same-sign", func(f *smt.Factory, a, b *smt.Term) *smt.Term {
			sameSign := f.Eq(f.Extract(a, w-1, w-1), f.Extract(b, w-1, w-1))
			return f.Implies(sameSign, f.Eq(f.Bool(true), f.Iff(f.Slt(a, b), f.Ult(a, b))))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := smt.NewFactory()
			a, b := f.BVVar("a", w), f.BVVar("b", w)
			valid := tc.mk(f, a, b)
			solver := sat.New()
			c := New(f, solver)
			c.AssertTrue(f.Not(valid))
			if res := solver.Solve(); res != sat.Unsat {
				env := smt.Env{"a": c.ModelBV(a), "b": c.ModelBV(b)}
				t.Fatalf("counterexample to validity: %v", env)
			}
		})
	}
}

func TestIncrementalSolvingWithAssumptions(t *testing.T) {
	f := smt.NewFactory()
	a := f.BVVar("a", 8)
	solver := sat.New()
	c := New(f, solver)
	c.AssertTrue(f.Ult(a, f.BVConst64(10, 8)))
	c.Bits(a)

	assumeBig := c.Literal(f.Ugt(a, f.BVConst64(5, 8)))
	assumeSmall := c.Literal(f.Ult(a, f.BVConst64(3, 8)))

	if res := solver.Solve(assumeBig); res != sat.Sat {
		t.Fatalf("a in (5,10): got %v", res)
	}
	v := c.ModelBV(a).Int64()
	if v <= 5 || v >= 10 {
		t.Fatalf("model a=%d out of range (5,10)", v)
	}
	if res := solver.Solve(assumeBig, assumeSmall); res != sat.Unsat {
		t.Fatalf("contradictory assumptions: got %v", res)
	}
	if res := solver.Solve(assumeSmall); res != sat.Sat {
		t.Fatalf("a < 3: got %v", res)
	}
}

func TestWidthOneVectors(t *testing.T) {
	f := smt.NewFactory()
	a, b := f.BVVar("a", 1), f.BVVar("b", 1)
	solver := sat.New()
	c := New(f, solver)
	// a + b wraps at width 1: 1 + 1 = 0.
	c.AssertTrue(f.Eq(a, f.BVConst64(1, 1)))
	c.AssertTrue(f.Eq(b, f.BVConst64(1, 1)))
	sum := f.Add(a, b)
	c.AssertTrue(f.Eq(sum, f.BVConst64(0, 1)))
	if res := solver.Solve(); res != sat.Sat {
		t.Fatalf("1+1=0 at width 1: got %v", res)
	}
	// Shifting a 1-bit vector by 1 yields zero.
	solver2 := sat.New()
	c2 := New(f, solver2)
	c2.AssertTrue(f.Eq(f.Shl(a, b), f.BVConst64(1, 1)))
	c2.AssertTrue(f.Eq(a, f.BVConst64(1, 1)))
	c2.AssertTrue(f.Eq(b, f.BVConst64(1, 1)))
	if res := solver2.Solve(); res != sat.Unsat {
		t.Fatalf("1<<1 must be 0 at width 1: got %v", res)
	}
}

func TestSharedSubtermsBlastedOnce(t *testing.T) {
	f := smt.NewFactory()
	a, b := f.BVVar("a", 16), f.BVVar("b", 16)
	sum := f.Add(a, b)
	solver := sat.New()
	c := New(f, solver)
	c.AssertTrue(f.Eq(sum, f.BVConst64(100, 16)))
	n1 := solver.NumVars()
	// Re-asserting a formula over the same shared subterm must not re-blast
	// the adder.
	c.AssertTrue(f.Ult(sum, f.BVConst64(200, 16)))
	n2 := solver.NumVars()
	if n2-n1 > 40 {
		t.Fatalf("re-use of shared subterm created %d new vars", n2-n1)
	}
	if res := solver.Solve(); res != sat.Sat {
		t.Fatalf("got %v", res)
	}
}

func BenchmarkBlastAdd32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := smt.NewFactory()
		x, y := f.BVVar("x", 32), f.BVVar("y", 32)
		solver := sat.New()
		c := New(f, solver)
		c.AssertTrue(f.Eq(f.Add(x, y), f.BVConst64(12345, 32)))
		solver.Solve()
	}
}

func BenchmarkSolveMulFactor(b *testing.B) {
	// Find factors of a small product: classic nontrivial circuit query.
	for i := 0; i < b.N; i++ {
		f := smt.NewFactory()
		x, y := f.BVVar("x", 12), f.BVVar("y", 12)
		solver := sat.New()
		c := New(f, solver)
		c.AssertTrue(f.Eq(f.Mul(x, y), f.BVConst64(1517, 12))) // 37*41
		c.AssertTrue(f.Ugt(x, f.BVConst64(1, 12)))
		c.AssertTrue(f.Ugt(y, f.BVConst64(1, 12)))
		if solver.Solve() != sat.Sat {
			b.Fatal("factoring query must be sat")
		}
	}
}
