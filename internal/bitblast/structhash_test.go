package bitblast

import (
	"math/big"
	"math/rand"
	"testing"

	"bf4/internal/sat"
	"bf4/internal/smt"
)

// TestGateMemoCanonicalization exercises the structural-hash canonical
// forms directly: commuted inputs, negation pulling, and branch swapping
// must all land on the same gate.
func TestGateMemoCanonicalization(t *testing.T) {
	f := smt.NewFactory()
	c := New(f, sat.New())
	c.SetStructHash(true)
	c.ensureConsts()
	x, y, z := c.freshLit(), c.freshLit(), c.freshLit()

	if g1, g2 := c.mkAnd([]sat.Lit{x, y, z}), c.mkAnd([]sat.Lit{z, x, y}); g1 != g2 {
		t.Fatalf("commuted AND not shared: %v vs %v", g1, g2)
	}
	if g := c.mkAnd([]sat.Lit{x, y, x}); g != c.mkAnd([]sat.Lit{x, y}) {
		t.Fatalf("duplicate AND input not deduped")
	}
	if g := c.mkAnd([]sat.Lit{x, y, x.Neg()}); g != c.litFalse {
		t.Fatalf("complementary AND inputs: got %v, want false", g)
	}

	x1 := c.mkXor(x, y)
	if x2 := c.mkXor(y, x); x2 != x1 {
		t.Fatalf("commuted XOR not shared")
	}
	if x3 := c.mkXor(x.Neg(), y); x3 != x1.Neg() {
		t.Fatalf("negated XOR input must negate the shared output")
	}
	if x4 := c.mkXor(x.Neg(), y.Neg()); x4 != x1 {
		t.Fatalf("doubly-negated XOR must reuse the positive gate")
	}

	i1 := c.mkIte(x, y, z)
	if i2 := c.mkIte(x.Neg(), z, y); i2 != i1 {
		t.Fatalf("condition-negated ITE with swapped branches not shared")
	}
	if i3 := c.mkIte(x, y.Neg(), z.Neg()); i3 != i1.Neg() {
		t.Fatalf("branch-negated ITE must negate the shared output")
	}

	if c.GateHits() == 0 {
		t.Fatalf("GateHits = 0, want > 0")
	}
}

// TestStructHashReducesCNF: blasting two syntactically different terms
// with identical sub-circuits must emit less CNF with hashing on.
func TestStructHashReducesCNF(t *testing.T) {
	build := func(hash bool) (*Context, *sat.Solver) {
		f := smt.NewFactory()
		s := sat.New()
		c := New(f, s)
		c.SetStructHash(hash)
		a, b := f.BVVar("a", 8), f.BVVar("b", 8)
		// Distinct terms, shared gates: Eq(a,b) builds xor(aᵢ,bᵢ) per bit,
		// the adder in Add(a,b) rebuilds the same xors, and the subtractor
		// in Sub(a,b) builds their negations (xor(aᵢ,¬bᵢ)).
		c.Literal(f.Eq(a, b))
		c.Literal(f.Ult(f.Add(a, b), f.BVConst64(10, 8)))
		c.Literal(f.Ult(f.Sub(a, b), f.BVConst64(10, 8)))
		return c, s
	}
	cOn, sOn := build(true)
	_, sOff := build(false)
	if sOn.NumClauses() >= sOff.NumClauses() {
		t.Fatalf("struct hashing did not reduce clauses: on=%d off=%d", sOn.NumClauses(), sOff.NumClauses())
	}
	if cOn.GateHits() == 0 {
		t.Fatalf("no gate hits recorded")
	}
}

// TestStructHashMatchesEval re-runs the central circuit-correctness
// property with structural hashing enabled.
func TestStructHashMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const w = 6
	for iter := 0; iter < 300; iter++ {
		f := smt.NewFactory()
		a, b := f.BVVar("a", w), f.BVVar("b", w)
		var term *smt.Term
		switch iter % 10 {
		case 0:
			term = f.Add(a, b)
		case 1:
			term = f.Sub(a, b)
		case 2:
			term = f.Mul(a, b)
		case 3:
			term = f.BVXor(f.Add(a, b), f.Sub(a, b))
		case 4:
			term = f.Ite(f.Ult(a, b), f.Add(a, b), f.Sub(a, b))
		case 5:
			term = f.Shl(a, b)
		case 6:
			term = f.Ashr(a, b)
		case 7:
			term = f.BVOr(f.BVAnd(a, b), f.BVNot(a))
		case 8:
			term = f.Mul(f.Add(a, b), a)
		case 9:
			term = f.SExt(f.Extract(f.Add(a, b), 2, 0), w)
		}
		solver := sat.New()
		c := New(f, solver)
		c.SetStructHash(true)
		bits := c.Bits(term)
		av := new(big.Int).SetUint64(rng.Uint64() & (1<<w - 1))
		bv := new(big.Int).SetUint64(rng.Uint64() & (1<<w - 1))
		fixVar(c, a, av)
		fixVar(c, b, bv)
		if res := solver.Solve(); res != sat.Sat {
			t.Fatalf("iter %d: fixed-input circuit unsat for %s", iter, term)
		}
		got := new(big.Int)
		for i, l := range bits {
			if solver.ValueLit(l) {
				got.SetBit(got, i, 1)
			}
		}
		want := smt.Eval(term, smt.Env{"a": av, "b": bv})
		if got.Cmp(want) != 0 {
			t.Fatalf("iter %d: %s with a=%v b=%v: circuit %v, eval %v", iter, term, av, bv, got, want)
		}
	}
}

// TestAssertImplied: guard → (p ∧ q ∧ r) must split into guarded unit
// implications that bind only while the guard holds.
func TestAssertImplied(t *testing.T) {
	f := smt.NewFactory()
	s := sat.New()
	c := New(f, s)
	g := f.BoolVar("g")
	p, q := f.BoolVar("p"), f.BoolVar("q")
	x := f.BVVar("x", 4)
	c.AssertImplied(g, f.And(p, f.And(q, f.Eq(x, f.BVConst64(9, 4)))))
	gl := c.Literal(g)
	// With the guard assumed, all conjuncts must hold.
	if res := s.Solve(gl); res != sat.Sat {
		t.Fatalf("guard on: got %v, want Sat", res)
	}
	if !c.ModelBool(p) || !c.ModelBool(q) || c.ModelBV(x).Int64() != 9 {
		t.Fatalf("guard on: conjuncts not forced (p=%v q=%v x=%v)",
			c.ModelBool(p), c.ModelBool(q), c.ModelBV(x))
	}
	// With the guard negated, the conjuncts are unconstrained.
	if res := s.Solve(gl.Neg(), c.Literal(p).Neg(), c.Literal(q).Neg()); res != sat.Sat {
		t.Fatalf("guard off: got %v, want Sat", res)
	}
}

// TestForgetEliminated: after inprocessing eliminates internal gate
// variables, purged memo entries must be rebuilt with fresh, correctly
// defined gates rather than reusing orphaned outputs.
func TestForgetEliminated(t *testing.T) {
	f := smt.NewFactory()
	s := sat.New()
	c := New(f, s)
	c.SetStructHash(true)
	a, b := f.BVVar("a", 6), f.BVVar("b", 6)
	t1 := f.Ult(f.Add(a, b), f.BVConst64(20, 6))
	l1 := c.Literal(t1)
	if res := s.Solve(l1); res != sat.Sat {
		t.Fatalf("initial solve: got %v, want Sat", res)
	}
	res := s.Inprocess(sat.InprocessOptions{})
	c.ForgetEliminated(res.Eliminated)
	// Blast a new term over the same sub-circuits; correctness must hold
	// whether entries were purged or reused.
	t2 := f.Eq(f.Add(a, b), f.BVConst64(63, 6))
	l2 := c.Literal(t2)
	if got := s.Solve(l2); got != sat.Sat {
		t.Fatalf("a+b=63 should be satisfiable, got %v", got)
	}
	av, bv := c.ModelBV(a), c.ModelBV(b)
	sum := new(big.Int).And(new(big.Int).Add(av, bv), big.NewInt(63))
	if sum.Int64() != 63 {
		t.Fatalf("model a=%v b=%v does not satisfy a+b=63", av, bv)
	}
	// And the original constraint must still be respected: a+b < 20
	// conflicts with a+b = 63.
	if got := s.Solve(l2, l1); got != sat.Unsat {
		t.Fatalf("a+b<20 ∧ a+b=63: got %v, want Unsat", got)
	}
}
